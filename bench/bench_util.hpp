#pragma once

#include <cstdio>
#include <string>
#include <vector>

/// Minimal fixed-width table printer shared by the experiment harnesses.
/// Each bench binary regenerates one paper artifact (see DESIGN.md section 3)
/// and prints it as rows; EXPERIMENTS.md records the paper-vs-measured
/// comparison.

namespace benchutil {

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void print() const {
    std::vector<std::size_t> w(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < w.size(); ++c) {
        w[c] = std::max(w[c], r[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& r) {
      std::printf("|");
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        std::printf(" %-*s |", static_cast<int>(w[c]),
                    c < r.size() ? r[c].c_str() : "");
      }
      std::printf("\n");
    };
    line(headers_);
    std::printf("|");
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      std::printf("%s|", std::string(w[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& r : rows_) line(r);
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string num(std::uint64_t v) { return std::to_string(v); }
inline std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

}  // namespace benchutil
