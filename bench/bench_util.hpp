#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <utility>
#include <string>
#include <vector>

#include "agc/exec/executor.hpp"
#include "agc/graph/spec.hpp"

/// Minimal fixed-width table printer shared by the experiment harnesses,
/// plus the shared bench flags (--threads/AGC_THREADS, --json) and a JSON
/// emitter so the perf trajectory is machine-readable (BENCH_*.json).
/// Each bench binary regenerates one paper artifact (see DESIGN.md section 3)
/// and prints it as rows; EXPERIMENTS.md records the paper-vs-measured
/// comparison.

namespace benchutil {

/// Shared command-line surface of every bench binary:
///   --threads N   run vertex programs on N threads (0 = hardware); defaults
///                 to the AGC_THREADS environment variable, else 1
///   --json FILE   also emit the measured rows as JSON
struct Options {
  std::size_t threads = 1;
  std::string json_path;

  /// The execution backend the flags ask for (sequential for threads <= 1).
  [[nodiscard]] std::shared_ptr<agc::runtime::RoundExecutor> executor() const {
    return agc::exec::make_executor(threads);
  }
};

inline Options parse_options(int argc, char** argv) {
  Options o;
  o.threads = agc::exec::default_threads();
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads" && i + 1 < argc) {
      o.threads = std::strtoull(argv[++i], nullptr, 10);
      // --threads 0: all hardware threads.
      if (o.threads == 0) o.threads = agc::exec::make_executor(0)->threads();
    } else if (arg == "--json" && i + 1 < argc) {
      o.json_path = argv[++i];
    } else {
      std::fprintf(stderr, "warning: ignoring unknown bench flag '%s'\n",
                   arg.c_str());
    }
  }
  return o;
}

/// Resolve a canonical GraphSpec string to the frozen CSR backend — bench
/// binaries never mutate topology, so ReadOnly is always right
/// (docs/SCALE.md).  Benches tag their rows with the same spec string, so
/// the instance a row measures and the instance `agc-trace diff` keys on are
/// spelled identically.
[[nodiscard]] inline agc::graph::ResolvedGraph resolve_graph(
    const std::string& spec) {
  return agc::graph::GraphSpec::parse(spec).resolve(
      agc::graph::Mutability::ReadOnly);
}

/// Canonical "regular:" spec string — the bench binaries' staple instance.
[[nodiscard]] inline std::string regular_spec(std::size_t n, std::size_t d,
                                              std::uint64_t seed) {
  return "regular:n=" + std::to_string(n) + ",d=" + std::to_string(d) +
         ",seed=" + std::to_string(seed);
}

/// Wall-clock stopwatch for speedup reporting.
class WallClock {
 public:
  WallClock() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Collects rows of key/value pairs and writes them as a JSON document:
///   {"bench": ..., "threads": N, "rows": [{...}, ...]}
/// Every row is tagged with the thread count, and `row(graph_spec)` adds the
/// canonical GraphSpec string, so `agc-trace diff` matches rows structurally
/// (graph/threads/delta composite key) instead of by position.
class JsonEmitter {
 public:
  JsonEmitter(std::string bench, std::size_t threads)
      : bench_(std::move(bench)), threads_(threads) {}

  JsonEmitter& row() {
    rows_.emplace_back();
    return kv("threads", std::uint64_t{threads_});
  }
  JsonEmitter& row(const std::string& graph_spec) {
    row();
    return kv("graph", graph_spec);
  }
  JsonEmitter& kv(const std::string& key, std::uint64_t v) {
    return raw(key, std::to_string(v));
  }
  JsonEmitter& kv(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", v);
    return raw(key, buf);
  }
  JsonEmitter& kv(const std::string& key, const std::string& v) {
    return raw(key, "\"" + v + "\"");
  }

  /// No-op when `path` is empty (no --json given).
  void write(const std::string& path) const {
    if (path.empty()) return;
    std::ofstream out(path);
    out << "{\"bench\": \"" << bench_ << "\", \"threads\": " << threads_
        << ", \"rows\": [\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      out << "  {";
      for (std::size_t f = 0; f < rows_[r].size(); ++f) {
        out << (f == 0 ? "" : ", ") << "\"" << rows_[r][f].first
            << "\": " << rows_[r][f].second;
      }
      out << "}" << (r + 1 < rows_.size() ? "," : "") << "\n";
    }
    out << "]}\n";
    std::printf("wrote %zu rows to %s\n", rows_.size(), path.c_str());
  }

 private:
  JsonEmitter& raw(const std::string& key, std::string value) {
    // Last write wins: lets a bench overwrite the row() auto-tags (e.g. a
    // per-row "threads" counter that differs from the harness-level flag).
    for (auto& [k, v] : rows_.back()) {
      if (k == key) {
        v = std::move(value);
        return *this;
      }
    }
    rows_.back().emplace_back(key, std::move(value));
    return *this;
  }

  std::string bench_;
  std::size_t threads_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void print() const {
    std::vector<std::size_t> w(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) w[c] = headers_[c].size();
    for (const auto& r : rows_) {
      for (std::size_t c = 0; c < r.size() && c < w.size(); ++c) {
        w[c] = std::max(w[c], r[c].size());
      }
    }
    auto line = [&](const std::vector<std::string>& r) {
      std::printf("|");
      for (std::size_t c = 0; c < headers_.size(); ++c) {
        std::printf(" %-*s |", static_cast<int>(w[c]),
                    c < r.size() ? r[c].c_str() : "");
      }
      std::printf("\n");
    };
    line(headers_);
    std::printf("|");
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      std::printf("%s|", std::string(w[c] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& r : rows_) line(r);
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string num(std::uint64_t v) { return std::to_string(v); }
inline std::string num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2f", v);
  return buf;
}

}  // namespace benchutil
