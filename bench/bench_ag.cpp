// Experiments E1 + E9 — the AG core bounds:
//   Corollary 3.5: AG takes a proper O(Delta^2)-coloring to O(Delta) colors
//     within q <= ~4*Delta rounds, every intermediate coloring proper.
//   Corollary 3.6: the full pipeline runs in O(Delta) + log* n rounds; the
//     log* n term is isolated by sweeping the ID-space size at fixed Delta.
//   Corollary 7.2: 3AG reduces p^3 colors to p in O(p) rounds.
//   Section 7:     the mixed rule lands on exactly Delta+1 colors with no
//     standard color reduction.

#include <cstdio>

#include "agc/coloring/ag.hpp"
#include "agc/coloring/ag3.hpp"
#include "agc/coloring/linial.hpp"
#include "agc/coloring/pipeline.hpp"
#include "agc/graph/generators.hpp"
#include "agc/math/iterated_log.hpp"
#include "agc/math/primes.hpp"
#include "bench_util.hpp"

using namespace agc;

namespace {

/// Execution backend from --threads/AGC_THREADS (null = sequential engine).
std::shared_ptr<runtime::RoundExecutor> g_exec;

void delta_sweep() {
  std::printf("-- E1a: AG rounds vs Delta (random regular, n=1500) --\n\n");
  benchutil::Table t({"Delta", "q", "AG rounds", "bound q", "colors out",
                      "proper each round"});
  for (std::size_t delta : {4, 8, 16, 32, 64, 128}) {
    const auto rg = benchutil::resolve_graph(benchutil::regular_spec(1500, delta, 99 + delta));
    const graph::GraphView g = rg.view();
    runtime::IterativeOptions io;
    io.executor = g_exec;
    auto lin = coloring::linial_color(g, coloring::identity_coloring(g.n()), g.n(),
                                      delta, io);
    const std::uint64_t palette = graph::max_color(lin.colors) + 1;
    const std::uint64_t q = coloring::ag_modulus(delta, palette);
    auto ag = coloring::additive_group_color(g, std::move(lin.colors), delta, io);
    t.add_row({benchutil::num(std::uint64_t{delta}), benchutil::num(q),
               benchutil::num(std::uint64_t{ag.rounds}), benchutil::num(q),
               benchutil::num(std::uint64_t{graph::palette_size(ag.colors)}),
               ag.proper_each_round && ag.converged ? "yes" : "NO"});
  }
  t.print();
}

void logstar_sweep() {
  std::printf("-- E1b: pipeline rounds vs ID-space size (Delta=16, n=800) --\n\n");
  benchutil::Table t({"id-space factor", "log*(space)", "Linial rounds",
                      "total rounds", "palette"});
  const auto rg = benchutil::resolve_graph(benchutil::regular_spec(800, 16, 7));
  const graph::GraphView g = rg.view();
  for (std::uint64_t f : {1ULL, 1ULL << 8, 1ULL << 24, 1ULL << 50}) {
    coloring::PipelineOptions opts;
    opts.iter.executor = g_exec;
    opts.id_space_factor = f;
    const auto rep = coloring::color_delta_plus_one(g, opts);
    t.add_row({benchutil::num(f),
               benchutil::num(std::uint64_t(math::log_star(f * g.n()))),
               benchutil::num(std::uint64_t{rep.rounds_linial}),
               benchutil::num(std::uint64_t{rep.rounds}),
               benchutil::num(std::uint64_t{rep.palette})});
  }
  t.print();
}

void three_ag() {
  std::printf("-- E9a: 3AG(p) — p^3 colors -> p colors in O(p) rounds --\n\n");
  benchutil::Table t({"Delta", "p", "init palette", "rounds", "bound 2p+2",
                      "colors out", "proper each round"});
  for (std::size_t delta : {4, 8, 16, 32}) {
    const auto rg = benchutil::resolve_graph(benchutil::regular_spec(1200, delta, 3 + delta));
    const graph::GraphView g = rg.view();
    // Start from a proper coloring in [0, p^3): identity IDs padded modulo a
    // p^3 space via Linial against a p^3 bound.
    const std::uint64_t p = coloring::three_ag_modulus(delta, g.n());
    auto init = coloring::identity_coloring(g.n());
    coloring::ThreeAgRule rule(p);
    runtime::IterativeOptions io;
    io.executor = g_exec;
    io.max_rounds = 2 * p + 2;
    auto res = runtime::run_locally_iterative(g, std::move(init), rule, io);
    t.add_row({benchutil::num(std::uint64_t{delta}), benchutil::num(p),
               benchutil::num(std::uint64_t{g.n()}),
               benchutil::num(std::uint64_t{res.rounds}),
               benchutil::num(2 * p + 2),
               benchutil::num(std::uint64_t{graph::palette_size(res.colors)}),
               res.proper_each_round && res.converged ? "yes" : "NO"});
  }
  t.print();
}

void mixed_exact() {
  std::printf("-- E9b: Section 7 mixed rule — exactly Delta+1 colors, no "
              "standard reduction --\n\n");
  benchutil::Table t({"Delta", "rounds(core)", "bound", "palette", "Delta+1",
                      "proper each round"});
  for (std::size_t delta : {4, 8, 16, 32, 64}) {
    const auto rg = benchutil::resolve_graph(benchutil::regular_spec(1200, delta, 17 + delta));
    const graph::GraphView g = rg.view();
    coloring::PipelineOptions popts;
    popts.iter.executor = g_exec;
    const auto rep = coloring::color_delta_plus_one_exact(g, popts);
    coloring::MixedRule rule(delta, /*palette=*/2);  // only for round_bound()
    t.add_row({benchutil::num(std::uint64_t{delta}),
               benchutil::num(std::uint64_t{rep.rounds_core}),
               benchutil::num(std::uint64_t{rule.round_bound()}),
               benchutil::num(std::uint64_t{rep.palette}),
               benchutil::num(std::uint64_t{delta + 1}),
               rep.proper_each_round && rep.converged ? "yes" : "NO"});
  }
  t.print();
}

void composite_ablation() {
  std::printf("-- Ablation: why the modulus must be prime (Lemma 3.3) --\n");
  std::printf("AG with composite q can re-collide before q rounds; we count\n");
  std::printf("vertex-rounds with conflicts under prime vs composite modulus.\n\n");
  benchutil::Table t({"Delta", "q", "prime?", "converged", "rounds",
                      "proper each round"});
  const std::size_t delta = 20;
  const auto rg = benchutil::resolve_graph(benchutil::regular_spec(900, delta, 5));
  const graph::GraphView g = rg.view();
  auto lin = coloring::linial_color(g, coloring::identity_coloring(g.n()), g.n(),
                                    delta);
  for (std::uint64_t q : {43ULL, 44ULL, 45ULL, 47ULL}) {  // 44 = 4*11, 45 = 9*5
    coloring::AgRule rule(q);
    runtime::IterativeOptions io;
    io.executor = g_exec;
    io.max_rounds = 3 * q;
    auto res = runtime::run_locally_iterative(g, lin.colors, rule, io);
    t.add_row({benchutil::num(std::uint64_t{delta}), benchutil::num(q),
               math::is_prime(q) ? "yes" : "no", res.converged ? "yes" : "no",
               benchutil::num(std::uint64_t{res.rounds}),
               res.proper_each_round ? "yes" : "NO"});
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = benchutil::parse_options(argc, argv);
  g_exec = opts.executor();
  if (!opts.json_path.empty()) {
    std::fprintf(stderr, "note: --json is emitted by bench_table1 only\n");
  }
  std::printf("== E1/E9: Additive-Group core (Sections 3 and 7, threads=%zu) ==\n\n",
              opts.threads);
  delta_sweep();
  logstar_sweep();
  three_ag();
  mixed_exact();
  composite_ablation();
  return 0;
}
