// bench_scale: the web-graph-scale campaign (docs/SCALE.md).
//
// Sweeps G(n,p) at average degree ~16 from n = 10^5 up to n = 10^7, building
// each instance directly into the frozen CSR (stream_gnp_frozen — the graph
// is never materialized in adjacency-vector form) and running the full
// (Delta+1) pipeline on the flat runner.  Rows report build and coloring
// throughput plus the two memory figures the substrate is designed around:
// CSR bytes per vertex and peak packed-state bytes per vertex.
//
//   --threads N   sweep threads for the flat runner (0 = hardware)
//   --max-n N     largest instance to run (default 10^7; CI's scale-smoke
//                 job caps at 10^6 to fit the shared-runner RSS ceiling)
//   --json FILE   emit rows as BENCH_scale.json for the perf gate
//
// n = 10^8 is documented, not swept: the CSR model (spec.estimated_bytes)
// puts gnp n=10^8 avgdeg=16 at ~7.2 GB for topology alone, which exceeds
// what the default campaign should assume of a host; see docs/SCALE.md for
// the extrapolation.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>

#include "agc/graph/frozen.hpp"
#include "agc/graph/spec.hpp"
#include "agc/graph/view.hpp"
#include "agc/scale/flat.hpp"
#include "bench_util.hpp"

namespace {

struct ScaleArgs {
  benchutil::Options base;
  std::uint64_t max_n = 10'000'000;
};

ScaleArgs parse(int argc, char** argv) {
  // Peel --max-n off before the shared parser sees (and warns about) it.
  ScaleArgs a;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--max-n" && i + 1 < argc) {
      a.max_n = std::strtoull(argv[++i], nullptr, 10);
    } else {
      rest.push_back(argv[i]);
    }
  }
  a.base = benchutil::parse_options(static_cast<int>(rest.size()), rest.data());
  return a;
}

/// Canonical gnp spec at average degree ~16 (p = 16/n).  %.17g makes the
/// probability round-trip exactly through GraphSpec's float parser, so the
/// spec string names the same instance everywhere.
std::string gnp16_spec(std::uint64_t n) {
  char buf[96];
  std::snprintf(buf, sizeof buf, "gnp:n=%" PRIu64 ",p=%.17g,seed=1", n,
                16.0 / static_cast<double>(n));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace agc;

  const ScaleArgs args = parse(argc, argv);
  benchutil::JsonEmitter json("bench_scale", args.base.threads);
  benchutil::Table table({"graph", "n", "m", "delta", "rounds", "palette",
                          "build_s", "color_s", "rounds/s", "csr B/v",
                          "state B/v"});

  for (const std::uint64_t n : {std::uint64_t{100'000}, std::uint64_t{1'000'000},
                                std::uint64_t{10'000'000}}) {
    if (n > args.max_n) continue;
    const std::string spec_str = gnp16_spec(n);
    const auto spec = graph::GraphSpec::parse(spec_str);

    const benchutil::WallClock build_clock;
    const graph::FrozenGraph f = spec.build_frozen();
    const double build_s = build_clock.seconds();

    scale::FlatOptions fo;
    fo.threads = args.base.threads;
    const benchutil::WallClock color_clock;
    const auto res = scale::color_delta_plus_one_flat(graph::GraphView(f), fo);
    const double color_s = color_clock.seconds();

    if (!res.proper || !res.converged) {
      std::fprintf(stderr, "bench_scale: %s did not converge to a proper coloring\n",
                   spec_str.c_str());
      return 1;
    }

    const double nv = static_cast<double>(f.n());
    const double csr_bpv = static_cast<double>(f.memory_bytes()) / nv;
    const double state_bpv = static_cast<double>(res.state_bytes) / nv;
    const double rounds_per_sec =
        color_s > 0 ? static_cast<double>(res.rounds) / color_s : 0.0;
    const double edges_per_sec =
        build_s > 0 ? static_cast<double>(f.m()) / build_s : 0.0;

    table.add_row({spec_str, benchutil::num(std::uint64_t{f.n()}),
                   benchutil::num(std::uint64_t{f.m()}),
                   benchutil::num(std::uint64_t{f.max_degree()}),
                   benchutil::num(std::uint64_t{res.rounds}),
                   benchutil::num(std::uint64_t{res.palette}),
                   benchutil::num(build_s), benchutil::num(color_s),
                   benchutil::num(rounds_per_sec), benchutil::num(csr_bpv),
                   benchutil::num(state_bpv)});

    json.row(spec_str)
        .kv("n", std::uint64_t{f.n()})
        .kv("m", std::uint64_t{f.m()})
        .kv("delta", std::uint64_t{f.max_degree()})
        .kv("rounds", std::uint64_t{res.rounds})
        .kv("rounds_linial", std::uint64_t{res.rounds_linial})
        .kv("rounds_core", std::uint64_t{res.rounds_core})
        .kv("rounds_finish", std::uint64_t{res.rounds_finish})
        .kv("palette", std::uint64_t{res.palette})
        .kv("build_s", build_s)
        .kv("color_s", color_s)
        .kv("rounds_per_sec", rounds_per_sec)
        .kv("build_edges_per_sec", edges_per_sec)
        .kv("csr_bytes", std::uint64_t{f.memory_bytes()})
        .kv("csr_bytes_per_vertex", csr_bpv)
        .kv("state_bytes_per_vertex", state_bpv);
  }

  table.print();
  json.write(args.base.json_path);
  return 0;
}
