#pragma once

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench_util.hpp"

/// Bridge between google-benchmark binaries and the repo's shared bench
/// surface (bench_util.hpp): the same `--json FILE` flag and BENCH_*.json row
/// format the table regenerators emit, so CI can diff google-benchmark
/// results (bench_micro) with the exact tooling it uses for bench_table1.
///
/// Usage (see bench_micro.cpp):
///   int main(int argc, char** argv) {
///     return benchutil::run_gbench_main(argc, argv, "micro");
///   }

namespace benchutil {

/// Remove `--flag VALUE` from argv (so google-benchmark's own parser does not
/// reject it) and return VALUE, or "" if absent.
inline std::string extract_flag(int& argc, char** argv, const std::string& flag) {
  std::string value;
  int w = 1;
  for (int r = 1; r < argc; ++r) {
    if (argv[r] == flag && r + 1 < argc) {
      value = argv[++r];
      continue;
    }
    argv[w++] = argv[r];
  }
  argc = w;
  return value;
}

/// Console reporter that additionally records one JsonEmitter row per run:
/// name, iterations, per-iteration real/cpu time, and every user counter
/// (items_per_second shows up here for benchmarks that SetItemsProcessed).
class JsonRowReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonRowReporter(JsonEmitter& json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const double iters = run.iterations > 0
                               ? static_cast<double>(run.iterations)
                               : 1.0;
      auto& row = json_.row();  // row() tags "threads" for structural keying
      row.kv("name", run.benchmark_name())
          .kv("iterations", static_cast<std::uint64_t>(run.iterations))
          .kv("real_time_per_iter_s", run.real_accumulated_time / iters)
          .kv("cpu_time_per_iter_s", run.cpu_accumulated_time / iters);
      for (const auto& [key, counter] : run.counters) {
        row.kv(key, static_cast<double>(counter.value));
      }
    }
  }

 private:
  JsonEmitter& json_;
};

/// Shared main() body for google-benchmark binaries: honors AGC_THREADS via
/// default_threads() (exposed to benchmarks as benchutil::gbench_threads())
/// and `--json FILE` via the row reporter above.
inline std::size_t& gbench_threads() {
  static std::size_t threads = 1;
  return threads;
}

inline int run_gbench_main(int argc, char** argv, const std::string& bench_name) {
  const std::string json_path = extract_flag(argc, argv, "--json");
  const std::string threads_flag = extract_flag(argc, argv, "--threads");
  gbench_threads() = threads_flag.empty()
                         ? agc::exec::default_threads()
                         : std::strtoull(threads_flag.c_str(), nullptr, 10);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonEmitter json(bench_name, gbench_threads());
  JsonRowReporter reporter(json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  json.write(json_path);
  return 0;
}

}  // namespace benchutil
