// M1 — google-benchmark microbenchmarks for the substrate hot paths: field
// arithmetic, Linial polynomial evaluation, AG rule steps, full engine
// rounds, and the raw message path (send/validate/deliver/receive).  These
// bound the simulator's throughput, not the paper's claims.
//
// Flags: everything google-benchmark accepts, plus the repo-wide
// `--json FILE` (BENCH_micro.json rows via bench_gbench.hpp) and
// `--threads N` / AGC_THREADS (picked up by the *Threaded benchmarks).

#include <benchmark/benchmark.h>

#include "agc/coloring/ag.hpp"
#include "agc/coloring/fyz.hpp"
#include "agc/coloring/linial.hpp"
#include "agc/coloring/luby.hpp"
#include "agc/graph/generators.hpp"
#include "agc/math/polynomial.hpp"
#include "agc/math/primes.hpp"
#include "agc/exec/async_executor.hpp"
#include "agc/exec/executor.hpp"
#include "agc/faultlab/channel.hpp"
#include "agc/obs/event_sink.hpp"
#include "agc/obs/phase_timer.hpp"
#include "agc/runtime/engine.hpp"
#include "agc/runtime/iterative.hpp"
#include "bench_gbench.hpp"

using namespace agc;

namespace {

void BM_IsPrime(benchmark::State& state) {
  std::uint64_t n = 1'000'000'007ULL;
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::is_prime(n));
    n += 2;
  }
}
BENCHMARK(BM_IsPrime);

void BM_NextPrime(benchmark::State& state) {
  std::uint64_t n = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::next_prime(n));
    n += 1009;
    if (n > 1'000'000) n = 1000;
  }
}
BENCHMARK(BM_NextPrime);

void BM_PolynomialEval(benchmark::State& state) {
  const math::GF field(1009);
  const auto poly = math::Polynomial::from_digits(field, 123456789, 6);
  std::uint64_t x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(poly.eval(x));
    x = (x + 1) % 1009;
  }
}
BENCHMARK(BM_PolynomialEval);

void BM_AgStep(benchmark::State& state) {
  const auto delta = static_cast<std::size_t>(state.range(0));
  coloring::AgRule rule(coloring::ag_modulus(delta, 4 * delta * delta));
  graph::Rng rng(7);
  std::vector<coloring::Color> nbrs(delta);
  const std::uint64_t q = rule.q();
  for (auto& c : nbrs) c = rng.below(q * q);
  std::sort(nbrs.begin(), nbrs.end());
  coloring::Color own = q * q - 1;
  for (auto _ : state) {
    own = rule.step(own, nbrs);
    benchmark::DoNotOptimize(own);
  }
}
BENCHMARK(BM_AgStep)->Arg(8)->Arg(64)->Arg(512);

void BM_EngineRound(benchmark::State& state) {
  const auto delta = static_cast<std::size_t>(state.range(0));
  const auto rg = benchutil::resolve_graph(benchutil::regular_spec(1000, delta, 3));
  const graph::GraphView g = rg.view();
  coloring::AgRule rule(coloring::ag_modulus(delta, 1000));
  // Measure raw synchronous rounds through the SET-LOCAL transport.
  for (auto _ : state) {
    state.PauseTiming();
    runtime::IterativeOptions io;
    io.max_rounds = 8;
    io.check_proper_each_round = false;
    auto init = coloring::identity_coloring(g.n());
    state.ResumeTiming();
    auto res = runtime::run_locally_iterative(g, std::move(init), rule, io);
    benchmark::DoNotOptimize(res.rounds);
  }
  state.SetItemsProcessed(state.iterations() * 8 * g.n());
}
BENCHMARK(BM_EngineRound)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

// Same engine rounds on the exec subsystem's thread pool; range(1) is the
// thread count (0 = hardware concurrency, honoring AGC_THREADS semantics).
void BM_EngineRoundThreaded(benchmark::State& state) {
  const auto delta = static_cast<std::size_t>(state.range(0));
  const auto threads = static_cast<std::size_t>(state.range(1));
  const auto rg = benchutil::resolve_graph(benchutil::regular_spec(1000, delta, 3));
  const graph::GraphView g = rg.view();
  coloring::AgRule rule(coloring::ag_modulus(delta, 1000));
  const auto executor = exec::make_executor(threads);
  for (auto _ : state) {
    state.PauseTiming();
    runtime::IterativeOptions io;
    io.max_rounds = 8;
    io.check_proper_each_round = false;
    io.executor = executor;
    auto init = coloring::identity_coloring(g.n());
    state.ResumeTiming();
    auto res = runtime::run_locally_iterative(g, std::move(init), rule, io);
    benchmark::DoNotOptimize(res.rounds);
  }
  state.SetItemsProcessed(state.iterations() * 8 * g.n());
  state.counters["threads"] = static_cast<double>(executor->threads());
}
BENCHMARK(BM_EngineRoundThreaded)
    ->Args({32, 1})
    ->Args({32, 2})
    ->Args({32, 0})
    ->Unit(benchmark::kMillisecond);

void BM_LinialScheduleBuild(benchmark::State& state) {
  for (auto _ : state) {
    coloring::LinialSchedule sched(1ULL << 40, 64);
    benchmark::DoNotOptimize(sched.stages());
  }
}
BENCHMARK(BM_LinialScheduleBuild);

// ---------------------------------------------------------------------------
// Message path: rounds/sec through the engine's send -> validate -> deliver
// -> receive loop, isolated from any algorithmic work.  One broadcast word
// per vertex per round plus a multiset read per receive — the exact shape of
// every locally-iterative rule — so this measures the mailbox machinery
// (allocation, delivery, accounting), nothing else.  The arena refactor's
// acceptance gate: >= 1.5x items/sec at Delta=64 vs the committed baseline.
// ---------------------------------------------------------------------------

/// Never halts; folds the received multiset into a checksum so delivery and
/// the multiset view cannot be optimized away.
class BroadcastFoldProgram final : public runtime::VertexProgram {
 public:
  void on_send(const runtime::VertexEnv& env, runtime::OutboxRef& out) override {
    out.broadcast(
        runtime::Word{sum_ % env.n_bound, runtime::width_of(env.n_bound - 1)});
  }
  void on_receive(const runtime::VertexEnv&,
                  const runtime::InboxRef& in) override {
    std::uint64_t s = 0;
    for (const std::uint64_t v : in.multiset()) s += v;
    sum_ = s + 1;
  }

 private:
  std::uint64_t sum_ = 1;
};

void message_path_rounds(benchmark::State& state, graph::GraphView g,
                         runtime::Model model, std::size_t threads,
                         obs::PhaseProfile* profile = nullptr,
                         obs::EventSink* sink = nullptr) {
  runtime::Engine engine(g, runtime::Transport(model));
  engine.set_executor(exec::make_executor(threads));
  engine.set_profile(profile);
  engine.set_sink(sink);
  engine.install([](const runtime::VertexEnv&) {
    return std::make_unique<BroadcastFoldProgram>();
  });
  engine.step();  // warm the mailbox path before the timed region
  for (auto _ : state) {
    engine.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["rounds_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["threads"] =
      static_cast<double>(engine.executor() ? engine.executor()->threads() : 1);
}

void BM_MessagePathRegular(benchmark::State& state) {
  const auto delta = static_cast<std::size_t>(state.range(0));
  const auto rg = benchutil::resolve_graph(benchutil::regular_spec(4096, delta, 97 + delta));
  const graph::GraphView g = rg.view();
  message_path_rounds(state, g, runtime::Model::SET_LOCAL, 1);
}
BENCHMARK(BM_MessagePathRegular)->Arg(8)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_MessagePathGnp(benchmark::State& state) {
  const auto delta = static_cast<std::size_t>(state.range(0));
  char spec[96];
  std::snprintf(spec, sizeof spec, "gnp:n=4096,p=%.17g,seed=%zu",
                static_cast<double>(delta) / 4096.0, 55 + delta);
  const auto rg = benchutil::resolve_graph(spec);
  message_path_rounds(state, rg.view(), runtime::Model::SET_LOCAL, 1);
}
BENCHMARK(BM_MessagePathGnp)->Arg(8)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// The same loop with full observability attached: per-shard phase timers and
// a preallocated ring sink.  The plain BM_MessagePathRegular rows above ARE
// the null-sink configuration (timers compiled in, disabled behind one
// branch); this row documents the enabled cost, so the gap between the two is
// the whole price of the obs subsystem when someone turns it on.
void BM_MessagePathObserved(benchmark::State& state) {
  const auto delta = static_cast<std::size_t>(state.range(0));
  const auto rg = benchutil::resolve_graph(benchutil::regular_spec(4096, delta, 97 + delta));
  const graph::GraphView g = rg.view();
  obs::PhaseProfile profile;
  obs::RingSink sink(1024);
  message_path_rounds(state, g, runtime::Model::SET_LOCAL, 1, &profile, &sink);
}
BENCHMARK(BM_MessagePathObserved)->Arg(64)->Unit(benchmark::kMillisecond);

// The same loop with a ChannelAdversary on the wire (all four fault kinds at
// 1% each).  The gap to BM_MessagePathRegular is the full price of fault
// injection: one hash roll per nonempty port per round plus the doubled spill
// lane reservation; steady-state allocation-free (tests/test_alloc_hook.cpp).
void BM_MessagePathChannelAdversary(benchmark::State& state) {
  const auto delta = static_cast<std::size_t>(state.range(0));
  const auto rg = benchutil::resolve_graph(benchutil::regular_spec(4096, delta, 97 + delta));
  const graph::GraphView g = rg.view();
  faultlab::ChannelFaultConfig cfg;
  cfg.seed = 11;
  cfg.drop_per_million = 10'000;
  cfg.corrupt_per_million = 10'000;
  cfg.duplicate_per_million = 10'000;
  cfg.delay_per_million = 10'000;
  faultlab::ChannelAdversary chan(cfg);
  runtime::Engine engine(g, runtime::Transport(runtime::Model::SET_LOCAL));
  engine.set_executor(exec::make_executor(1));
  engine.set_channel(&chan);
  engine.install([](const runtime::VertexEnv&) {
    return std::make_unique<BroadcastFoldProgram>();
  });
  engine.step();  // warm the mailbox path, lanes and delay stash
  for (auto _ : state) {
    engine.step();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["rounds_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.counters["threads"] = 1.0;
}
BENCHMARK(BM_MessagePathChannelAdversary)->Arg(64)
    ->Unit(benchmark::kMillisecond);

// End-to-end round throughput of the two new registry entries: one complete
// pipeline run per iteration on the BM_MessagePathRegular graph, counting
// engine rounds actually executed.  Named BM_MessagePath* so the CI
// perf-gate filter ('MessagePath|AsyncVsBarrier') tracks their
// rounds_per_sec against the committed baseline with no workflow change.
void BM_MessagePathFyz(benchmark::State& state) {
  const auto delta = static_cast<std::size_t>(state.range(0));
  const auto rg = benchutil::resolve_graph(benchutil::regular_spec(4096, delta, 97 + delta));
  const graph::GraphView g = rg.view();
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    const auto rep = coloring::color_fyz(g);
    rounds += rep.rounds;
    benchmark::DoNotOptimize(rep.palette);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["rounds_per_sec"] = benchmark::Counter(
      static_cast<double>(rounds), benchmark::Counter::kIsRate);
  state.counters["threads"] = 1.0;
}
BENCHMARK(BM_MessagePathFyz)->Arg(64)->Unit(benchmark::kMillisecond);

void BM_MessagePathLuby(benchmark::State& state) {
  const auto delta = static_cast<std::size_t>(state.range(0));
  const auto rg = benchutil::resolve_graph(benchutil::regular_spec(4096, delta, 97 + delta));
  const graph::GraphView g = rg.view();
  coloring::PipelineOptions po;
  po.run().seed = 1;
  std::uint64_t rounds = 0;
  for (auto _ : state) {
    const auto rep = coloring::color_luby(g, po);
    rounds += rep.rounds;
    benchmark::DoNotOptimize(rep.palette);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["rounds_per_sec"] = benchmark::Counter(
      static_cast<double>(rounds), benchmark::Counter::kIsRate);
  state.counters["threads"] = 1.0;
}
BENCHMARK(BM_MessagePathLuby)->Arg(64)->Unit(benchmark::kMillisecond);

// Barrier-free vs barriered rounds/sec on the identical message-path load:
// range(0) picks the backend (0 = BSP per-step, 1 = async windowed).  The
// async row drives 32-round windows through Engine::step_window, letting the
// shards pipeline rounds dependency-wise with no global barrier between
// them; the BSP row steps the same 32 rounds through the barriered
// executor.  Both report rounds_per_sec — the perf gate tracks the pair.
void BM_AsyncVsBarrier(benchmark::State& state) {
  constexpr std::size_t kDelta = 64;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kWindow = 32;
  const bool async = state.range(0) != 0;
  const auto rg = benchutil::resolve_graph(benchutil::regular_spec(4096, kDelta, 97 + kDelta));
  const graph::GraphView g = rg.view();
  runtime::Engine engine(g, runtime::Transport(runtime::Model::SET_LOCAL));
  engine.set_executor(async ? exec::make_async_executor(kThreads)
                            : exec::make_executor(kThreads));
  engine.install([](const runtime::VertexEnv&) {
    return std::make_unique<BroadcastFoldProgram>();
  });
  engine.step();  // warm the mailbox path before the timed region
  std::uint64_t rounds = 0;
  const std::uint64_t t0 = obs::monotonic_ns();
  for (auto _ : state) {
    if (async) {
      rounds += engine.step_window(kWindow);
    } else {
      for (std::size_t r = 0; r < kWindow; ++r) engine.step();
      rounds += kWindow;
    }
  }
  // Wall-clock rate, not the CPU-time rate kIsRate reports: the driving
  // thread sleeps while the pool works, so its CPU time says nothing about
  // throughput.  This is the number the perf gate tracks for both rows.
  const double wall_s =
      static_cast<double>(obs::monotonic_ns() - t0) / 1e9;
  state.SetItemsProcessed(static_cast<std::int64_t>(rounds));
  state.counters["rounds_per_sec"] =
      wall_s > 0.0 ? static_cast<double>(rounds) / wall_s : 0.0;
  state.counters["threads"] = static_cast<double>(kThreads);
}
BENCHMARK(BM_AsyncVsBarrier)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// The same loop on the exec backend's threads (--threads/AGC_THREADS).
void BM_MessagePathRegularThreaded(benchmark::State& state) {
  const auto delta = static_cast<std::size_t>(state.range(0));
  const auto rg = benchutil::resolve_graph(benchutil::regular_spec(4096, delta, 97 + delta));
  const graph::GraphView g = rg.view();
  message_path_rounds(state, g, runtime::Model::SET_LOCAL,
                      benchutil::gbench_threads());
}
BENCHMARK(BM_MessagePathRegularThreaded)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return benchutil::run_gbench_main(argc, argv, "micro");
}
