// bench_service — the serving benchmark for the coloring service (ROADMAP
// item 2; docs/SERVICE.md).  Drives one Service with a seeded YCSB-style
// workload of >= 100k mutations plus queries, closed-loop, and reports the
// serving metrics the perf gate tracks: sustained mutations/s, p50/p99
// mutation-to-legal-color latency, and the mean adjustment-set size per
// epoch (the incremental-recoloring win the paper's adjustment-radius-1
// theorem buys).
//
// Exit is nonzero if any op was rejected (the eager-mirror workload
// guarantees none) or any epoch failed to reach a legal coloring — so the
// benchmark is also the end-to-end correctness run for the service under
// sustained churn.  The committed artifact is BENCH_service.json; CI gates
// p99_latency_us and mutations_per_sec against it (agc-trace diff).

#include <cstdio>

#include "agc/svc/service.hpp"
#include "agc/svc/workload.hpp"
#include "bench_util.hpp"

namespace {

using namespace agc;

struct Case {
  const char* graph;
  std::uint64_t ops;
  std::size_t batch;
};

int run_case(const Case& c, const benchutil::Options& opts,
             benchutil::JsonEmitter& json, benchutil::Table& table) {
  svc::ServiceConfig cfg;
  cfg.spec = graph::GraphSpec::parse(c.graph);
  cfg.epoch_batch = c.batch;
  cfg.run.executor = opts.executor();
  svc::Service service(cfg);

  svc::WorkloadSpec ws;
  ws.seed = 42;
  ws.ops = c.ops;
  ws.clients = c.batch;

  const benchutil::WallClock clock;
  const auto rep = svc::run_workload(service, ws);
  const double wall_s = clock.seconds();
  const auto& st = service.stats();

  const double mut_per_sec = wall_s > 0.0 ? st.mutations / wall_s : 0.0;
  table.add_row({cfg.spec.to_string(), benchutil::num(st.ops),
                 benchutil::num(st.mutations), benchutil::num(st.epochs),
                 benchutil::num(st.latency_rounds.quantile(0.5)),
                 benchutil::num(st.latency_rounds.quantile(0.99)),
                 benchutil::num(st.latency_us.quantile(0.5)),
                 benchutil::num(st.latency_us.quantile(0.99)),
                 benchutil::num(st.mean_adjusted()),
                 benchutil::num(mut_per_sec), benchutil::num(wall_s)});
  json.row(cfg.spec.to_string())
      .kv("name", std::string("service_workload"))
      .kv("ops", st.ops)
      .kv("mutations", st.mutations)
      .kv("queries", st.queries)
      .kv("epochs", st.epochs)
      .kv("repair_rounds", st.repair_rounds)
      .kv("mean_adjusted", st.mean_adjusted())
      .kv("latency_rounds_p50", st.latency_rounds.quantile(0.5))
      .kv("latency_rounds_p99", st.latency_rounds.quantile(0.99))
      .kv("p50_latency_us", st.latency_us.quantile(0.5))
      .kv("p99_latency_us", st.latency_us.quantile(0.99))
      .kv("mutations_per_sec", mut_per_sec)
      .kv("wall_s", wall_s);

  if (rep.rejected != 0) {
    std::fprintf(stderr, "FAIL %s: %llu rejected ops (mirror drift)\n",
                 c.graph, static_cast<unsigned long long>(rep.rejected));
    return 1;
  }
  if (st.legality_violations != 0) {
    std::fprintf(stderr, "FAIL %s: %llu epochs never reached legality\n",
                 c.graph, static_cast<unsigned long long>(st.legality_violations));
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = benchutil::parse_options(argc, argv);
  benchutil::JsonEmitter json("service", opts.threads);
  benchutil::Table table({"graph", "ops", "mutations", "epochs", "p50_rnd",
                          "p99_rnd", "p50_us", "p99_us", "mean_adj", "mut/s",
                          "wall_s"});

  // One small warm case (fast signal when something is broken) plus the
  // acceptance case: >= 100k mutations under sustained churn.
  const Case cases[] = {
      {"regular:400,8,7", 20'000, 128},
      {"gnp:4000,0.002,11", 160'000, 256},
  };
  int rc = 0;
  for (const Case& c : cases) rc |= run_case(c, opts, json, table);

  std::printf("\nservice workload (seed 42, closed-loop, threads=%zu)\n\n",
              opts.threads);
  table.print();
  json.write(opts.json_path);
  return rc;
}
