// Experiment E8 — the SET-LOCAL model (Section 1.2.3).
//
// In SET-LOCAL, vertices have no IDs, can only broadcast, and receive the
// sender-anonymous multiset of neighbor values.  Starting from a given proper
// O(Delta^2)-coloring, the AG family runs unchanged (its rules are pure
// functions of the 1-hop color multiset) and reaches Delta+1 colors in
// O(Delta) rounds, beating the previous best O(Delta log Delta) of
// Kuhn-Wattenhofer/Szegedy-Vishwanathan.  The engine's SET-LOCAL transport
// enforces the model: any per-port send throws.

#include <cstdio>

#include "agc/coloring/ag.hpp"
#include "agc/coloring/ag3.hpp"
#include "agc/coloring/kuhn_wattenhofer.hpp"
#include "agc/coloring/reduction.hpp"
#include "agc/graph/generators.hpp"
#include "bench_util.hpp"

using namespace agc;

namespace {

/// A proper O(Delta^2)-coloring assumed given by the model.  The paper's
/// bound is worst-case over ALL proper seeds, so the colors are spread over
/// the whole palette (a hash start point per vertex) rather than greedily
/// compacted — a compact seed would be trivially final already.
std::vector<coloring::Color> seed_coloring(graph::GraphView g,
                                           std::uint64_t palette) {
  std::vector<coloring::Color> colors(g.n(), palette);
  for (graph::Vertex v = 0; v < g.n(); ++v) {
    const std::uint64_t start = (v * 0x9E3779B97F4A7C15ULL) % palette;
    for (std::uint64_t k = 0; k < palette; ++k) {
      const coloring::Color c = (start + k) % palette;
      bool used = false;
      for (graph::Vertex u : g.neighbors(v)) {
        if (colors[u] == c) {
          used = true;
          break;
        }
      }
      if (!used) {
        colors[v] = c;
        break;
      }
    }
  }
  return colors;
}

}  // namespace

int main(int argc, char** argv) {
  const auto bopts = benchutil::parse_options(argc, argv);
  const auto executor = bopts.executor();
  if (!bopts.json_path.empty()) {
    std::fprintf(stderr, "note: --json is emitted by bench_table1 only\n");
  }
  std::printf("== E8: SET-LOCAL model — Delta+1 from a given O(Delta^2)-"
              "coloring (n=1000, threads=%zu) ==\n\n", bopts.threads);
  benchutil::Table t({"Delta", "AG+reduce (ours)", "mixed exact (ours)",
                      "KW (prior best)", "palette", "proper"});
  for (std::size_t delta : {8, 16, 32, 64, 128}) {
    const auto rg = benchutil::resolve_graph(benchutil::regular_spec(1000, delta, 5 * delta));
    const graph::GraphView g = rg.view();
    const std::uint64_t q0 = coloring::ag_modulus(delta, (delta + 1) * (delta + 1));
    const auto seed = seed_coloring(g, q0 * q0);

    runtime::IterativeOptions io;
    io.model = runtime::Model::SET_LOCAL;
    io.executor = executor;

    auto ag = coloring::additive_group_color(g, seed, delta, io);
    auto ours = coloring::reduce_colors(g, std::move(ag.colors), delta + 1, io);
    const std::size_t ours_rounds = ag.rounds + ours.rounds;

    auto exact = coloring::exact_delta_plus_one(g, seed, delta, io);

    auto kw = coloring::kuhn_wattenhofer_reduce(g, seed, delta, io);

    const bool ok = ours.converged && exact.converged && kw.converged &&
                    graph::is_proper_coloring(g, ours.colors) &&
                    graph::is_proper_coloring(g, exact.colors) &&
                    graph::is_proper_coloring(g, kw.colors);
    t.add_row({benchutil::num(std::uint64_t{delta}),
               benchutil::num(std::uint64_t{ours_rounds}),
               benchutil::num(std::uint64_t{exact.rounds}),
               benchutil::num(std::uint64_t{kw.rounds}),
               benchutil::num(std::uint64_t{graph::palette_size(ours.colors)}),
               ok ? "yes" : "NO"});
  }
  t.print();
  std::printf("Shape check: ours ~ c*Delta, KW ~ c*Delta*log(Delta/ ): the "
              "ratio grows with Delta.\nLower bound context: Omega(Delta^{1/3}) "
              "holds in this model [Hefetz et al.].\n");
  return 0;
}
