// Experiment E5 — edge coloring in restricted-bandwidth models (Section 5):
//   Lemma 5.1:   O(Delta)-edge-coloring in O(Delta + log* n) CONGEST rounds.
//   Lemma 5.2:   O(Delta + log n) bits per edge.
//   Theorem 5.3: exactly (2Delta-1)-edge-coloring; Bit-Round model in
//                O(Delta + log n) rounds.
// Baseline: simulating the Kuhn-Wattenhofer vertex-coloring on the line
// graph (the pre-paper state of the art), whose round count carries the
// extra log-Delta factor and whose messages are full colors, not bits.

#include <cstdio>

#include "agc/coloring/pipeline.hpp"
#include "agc/edge/edge_coloring.hpp"
#include "agc/graph/generators.hpp"
#include "agc/graph/line_graph.hpp"
#include "bench_util.hpp"

using namespace agc;

namespace {

/// Execution backend from --threads/AGC_THREADS (null = sequential engine).
std::shared_ptr<runtime::RoundExecutor> g_exec;

void congest_sweep() {
  std::printf("-- E5a: CONGEST rounds and bits/edge vs Delta (n=700) --\n\n");
  benchutil::Table t({"Delta", "rounds", "palette", "=2D-1", "bits/edge avg",
                      "bits/edge max", "KW-on-L(G) rounds", "proper"});
  for (std::size_t delta : {4, 8, 16, 32, 64}) {
    const auto rg = benchutil::resolve_graph(benchutil::regular_spec(400, delta, 11 * delta));
    const graph::GraphView g = rg.view();
    edge::EdgeColoringOptions eopts;
    eopts.executor = g_exec;
    const auto res = edge::color_edges_distributed(g, eopts);

    // Baseline: KW vertex coloring of the line graph; the x2 accounts for the
    // standard simulation overhead of one L(G) round per two G rounds.  The
    // line graph explodes quadratically, so the baseline is run up to
    // Delta=16 only.
    std::string kw_rounds = "-";
    if (delta <= 16) {
      const auto lg = graph::line_graph(g);
      coloring::PipelineOptions popts;
      popts.iter.executor = g_exec;
      const auto kw = coloring::color_kuhn_wattenhofer(lg.graph, popts);
      kw_rounds = benchutil::num(std::uint64_t{2 * kw.rounds});
    }

    t.add_row({benchutil::num(std::uint64_t{delta}),
               benchutil::num(std::uint64_t{res.rounds}),
               benchutil::num(std::uint64_t{res.palette}),
               benchutil::num(std::uint64_t{2 * delta - 1}),
               benchutil::num(res.avg_bits_per_edge),
               benchutil::num(res.max_bits_per_edge), kw_rounds,
               res.proper && res.converged ? "yes" : "NO"});
  }
  t.print();
}

void bit_round_sweep() {
  std::printf("-- E5b: Bit-Round model — rounds vs n at Delta=8 (the log n "
              "term) and vs Delta at n=400 --\n\n");
  benchutil::Table t({"n", "Delta", "bit rounds", "schedule bits (worst case)",
                      "palette", "proper"});
  edge::EdgeColoringOptions opts;
  opts.executor = g_exec;
  opts.bit_round = true;
  auto row = [&](std::size_t n, std::size_t delta) {
    const auto rg = benchutil::resolve_graph(benchutil::regular_spec(n, delta, n + delta));
    const graph::GraphView g = rg.view();
    const auto res = edge::color_edges_distributed(g, opts);
    const edge::EdgeSchedule sched(g.n(), delta, true);
    t.add_row({benchutil::num(std::uint64_t{n}), benchutil::num(std::uint64_t{delta}),
               benchutil::num(std::uint64_t{res.rounds}),
               benchutil::num(std::uint64_t{sched.total_bits()}),
               benchutil::num(std::uint64_t{res.palette}),
               res.proper && res.converged ? "yes" : "NO"});
  };
  for (std::size_t n : {100, 400, 1600, 6400, 25600}) row(n, 8);
  for (std::size_t delta : {4, 16, 32}) row(400, delta);
  t.print();
}

void stage_ablation() {
  std::printf("-- E5c: ablation — O(Delta) palette (stage 3 only) vs exact "
              "2Delta-1 (stage 4) --\n\n");
  benchutil::Table t({"Delta", "rounds O(D)", "palette O(D)", "rounds exact",
                      "palette exact"});
  for (std::size_t delta : {8, 16, 32}) {
    const auto rg = benchutil::resolve_graph(benchutil::regular_spec(500, delta, delta + 1));
    const graph::GraphView g = rg.view();
    edge::EdgeColoringOptions coarse;
    coarse.executor = g_exec;
    coarse.exact = false;
    const auto a = edge::color_edges_distributed(g, coarse);
    edge::EdgeColoringOptions fine;
    fine.executor = g_exec;
    const auto b = edge::color_edges_distributed(g, fine);
    t.add_row({benchutil::num(std::uint64_t{delta}),
               benchutil::num(std::uint64_t{a.rounds}),
               benchutil::num(std::uint64_t{a.palette}),
               benchutil::num(std::uint64_t{b.rounds}),
               benchutil::num(std::uint64_t{b.palette})});
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = benchutil::parse_options(argc, argv);
  g_exec = opts.executor();
  if (!opts.json_path.empty()) {
    std::fprintf(stderr, "note: --json is emitted by bench_table1 only\n");
  }
  std::printf("== E5: (2Delta-1)-edge-coloring, CONGEST and Bit-Round "
              "(Section 5, threads=%zu) ==\n\n", opts.threads);
  congest_sweep();
  bit_round_sweep();
  stage_ablation();
  return 0;
}
