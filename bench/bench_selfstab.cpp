// Experiments E2/E3/E4 — self-stabilization (Section 4):
//   Theorem 4.3: (Delta+1)-coloring stabilizes in O(Delta + log* n) rounds
//     after the last fault, with adjustment radius 1.
//   Theorem 4.5/4.6: MIS stabilizes in O(Delta + log* n), adjustment radius 2.
//   Theorem 4.7: maximal matching and (2Delta-1)-edge-coloring via the
//     line-graph simulation, same stabilization bound.
//
// The shape to check: stabilization time is flat in the number of
// simultaneous faults (worst-case over batches), linear-ish in Delta, and
// recoloring stays inside the 1-hop neighborhood of faults.

#include <cstdio>

#include "agc/graph/checks.hpp"
#include "agc/graph/generators.hpp"
#include "agc/graph/spec.hpp"
#include "agc/runtime/faults.hpp"
#include "agc/sched/campaign.hpp"
#include "agc/selfstab/ss_coloring.hpp"
#include "agc/selfstab/ss_line.hpp"
#include "agc/selfstab/ss_mis.hpp"
#include "bench_util.hpp"

using namespace agc;
using selfstab::PaletteMode;
using selfstab::SsConfig;

namespace {

/// Execution backend from --threads/AGC_THREADS (null = sequential engine).
std::shared_ptr<runtime::RoundExecutor> g_exec;

runtime::Engine make_engine(graph::GraphView g, std::size_t delta_bound) {
  runtime::EngineOptions opts;
  opts.delta_bound = delta_bound;
  runtime::Engine engine(g, runtime::Transport(runtime::Model::LOCAL), opts);
  engine.set_executor(g_exec);
  return engine;
}

void fault_batch_sweep() {
  std::printf("-- E2a: coloring stabilization vs simultaneous fault count "
              "(Delta=10, n=600) --\n\n");
  benchutil::Table t({"faults", "stab rounds (ODelta)", "stab rounds (exact)",
                      "stabilized"});
  const std::size_t dmax = 10;
  const auto g = graph::random_bounded_degree(600, dmax, 2200, 42);
  for (std::size_t k : {1, 4, 16, 64, 256}) {
    std::size_t rounds[2] = {0, 0};
    bool ok = true;
    int idx = 0;
    for (PaletteMode mode : {PaletteMode::ODelta, PaletteMode::ExactDeltaPlusOne}) {
      SsConfig cfg(g.n(), dmax, mode);
      auto engine = make_engine(g, dmax);
      engine.install(selfstab::ss_coloring_factory(cfg));
      auto pre = selfstab::run_until_stable(engine, cfg, 20000);
      ok = ok && pre.stabilized;
      runtime::Adversary adv(1000 + k);
      adv.corrupt_random(engine, k, cfg.span());
      adv.clone_neighbor(engine, k / 2 + 1);
      auto rep = selfstab::run_until_stable(engine, cfg, 20000);
      ok = ok && rep.stabilized;
      rounds[idx++] = rep.rounds_to_stable;
    }
    t.add_row({benchutil::num(std::uint64_t{k}), benchutil::num(std::uint64_t{rounds[0]}),
               benchutil::num(std::uint64_t{rounds[1]}), ok ? "yes" : "NO"});
  }
  t.print();
}

void delta_sweep() {
  std::printf("-- E2b: stabilization vs Delta (64 faults, n=600) --\n\n");
  benchutil::Table t({"Delta", "coloring", "MIS", "stabilized"});
  for (std::size_t delta : {4, 8, 16, 32}) {
    const auto rg = benchutil::resolve_graph(benchutil::regular_spec(600, delta, 7 * delta));
    const graph::GraphView g = rg.view();
    bool ok = true;

    SsConfig cfg(g.n(), delta, PaletteMode::ODelta);
    auto engine = make_engine(g, delta);
    engine.install(selfstab::ss_coloring_factory(cfg));
    ok &= selfstab::run_until_stable(engine, cfg, 40000).stabilized;
    runtime::Adversary adv(delta);
    adv.corrupt_random(engine, 64, cfg.span());
    auto col = selfstab::run_until_stable(engine, cfg, 40000);
    ok &= col.stabilized;

    auto engine2 = make_engine(g, delta);
    engine2.install(selfstab::ss_mis_factory(cfg));
    ok &= selfstab::run_until_mis_stable(engine2, cfg, 40000).stabilized;
    runtime::Adversary adv2(delta + 1);
    adv2.corrupt_random(engine2, 64, cfg.span(), 0);
    adv2.corrupt_random(engine2, 64, 4, 1);
    auto mis = selfstab::run_until_mis_stable(engine2, cfg, 40000);
    ok &= mis.stabilized;

    t.add_row({benchutil::num(std::uint64_t{delta}),
               benchutil::num(std::uint64_t{col.rounds_to_stable}),
               benchutil::num(std::uint64_t{mis.rounds_to_stable}),
               ok ? "yes" : "NO"});
  }
  t.print();
}

void adjustment_radius() {
  std::printf("-- E2c/E3: adjustment radius — recolored vertices by distance "
              "from the single fault --\n\n");
  benchutil::Table t({"trial", "changed d=0", "d=1", "d=2", "d>2 (must be 0)"});
  const auto rg = benchutil::resolve_graph(benchutil::regular_spec(400, 8, 9));
  const graph::GraphView g = rg.view();
  SsConfig cfg(g.n(), 8, PaletteMode::ODelta);
  for (int trial = 0; trial < 4; ++trial) {
    auto engine = make_engine(g, 8);
    engine.install(selfstab::ss_coloring_factory(cfg));
    (void)selfstab::run_until_stable(engine, cfg, 20000);
    const auto before = selfstab::current_colors(engine);
    const auto victim = static_cast<graph::Vertex>(37 * (trial + 1));
    engine.corrupt_ram(victim, 0, before[g.neighbors(victim)[0]]);
    auto rep = selfstab::run_until_stable(engine, cfg, 20000);

    // BFS distances from the victim.
    std::vector<int> dist(g.n(), -1);
    std::vector<graph::Vertex> queue{victim};
    dist[victim] = 0;
    for (std::size_t h = 0; h < queue.size(); ++h) {
      for (graph::Vertex u : g.neighbors(queue[h])) {
        if (dist[u] < 0) {
          dist[u] = dist[queue[h]] + 1;
          queue.push_back(u);
        }
      }
    }
    std::size_t byd[4] = {0, 0, 0, 0};
    for (graph::Vertex v = 0; v < g.n(); ++v) {
      if (rep.colors[v] != before[v]) {
        ++byd[dist[v] <= 2 ? dist[v] : 3];
      }
    }
    t.add_row({benchutil::num(std::uint64_t(trial)), benchutil::num(std::uint64_t{byd[0]}),
               benchutil::num(std::uint64_t{byd[1]}), benchutil::num(std::uint64_t{byd[2]}),
               benchutil::num(std::uint64_t{byd[3]})});
  }
  t.print();
}

void line_graph_tasks() {
  std::printf("-- E4: line-graph simulation — MM and (2Delta-1)-edge-coloring "
              "stabilization (engine rounds; 2 per algorithm round) --\n\n");
  benchutil::Table t({"Delta", "edge-coloring", "palette", "matching",
                      "stabilized"});
  for (std::size_t delta : {3, 5, 8}) {
    const auto rg = benchutil::resolve_graph(benchutil::regular_spec(200, delta, 3 * delta));
    const graph::GraphView g = rg.view();
    bool ok = true;

    selfstab::SsLineConfig ec(g.n(), delta, selfstab::LineTask::EdgeColoring);
    auto e1 = make_engine(g, delta);
    e1.install(selfstab::ss_line_factory(ec));
    auto r1 = selfstab::run_until_line_stable(e1, ec, 60000);
    ok &= r1.stabilized;
    const auto palette = graph::palette_size(selfstab::current_edge_colors(e1));

    selfstab::SsLineConfig mm(g.n(), delta, selfstab::LineTask::MaximalMatching);
    auto e2 = make_engine(g, delta);
    e2.install(selfstab::ss_line_factory(mm));
    auto r2 = selfstab::run_until_line_stable(e2, mm, 60000);
    ok &= r2.stabilized;

    t.add_row({benchutil::num(std::uint64_t{delta}),
               benchutil::num(std::uint64_t{r1.rounds_to_stable}),
               benchutil::num(std::uint64_t{palette}),
               benchutil::num(std::uint64_t{r2.rounds_to_stable}),
               ok ? "yes" : "NO"});
  }
  t.print();
}

double value_of(const sched::JobResult& r, const std::string& key) {
  for (const auto& [k, v] : r.values) {
    if (k == key) return v;
  }
  return 0.0;
}

/// The EXPERIMENTS.md stabilization sweep as a scheduler campaign: one
/// ss-color job per (Delta, n) cell under a seeded lossy channel plus the
/// periodic RAM/clone adversary, executed by run_campaign with watchdog
/// retries.  The aggregate is scheduling-independent (bit-identical JSONL
/// for any worker count), so the table below is reproducible byte for byte.
void stabilization_campaign(std::size_t threads) {
  std::printf("-- E2d: Delta x n stabilization sweep as a campaign "
              "(ss-color, 2%% channel drop + periodic RAM faults, "
              "%zu workers) --\n\n", threads);
  sched::Campaign c;
  for (const std::size_t n : {300, 600}) {
    for (const std::size_t delta : {4, 8, 16}) {
      sched::JobSpec job;
      job.algorithm = "ss-color";
      job.graph = graph::GraphSpec::parse(
          "regular:n=" + std::to_string(n) + ",d=" + std::to_string(delta) +
          ",seed=" + std::to_string(7 * delta + n));
      job.seed = delta + n;
      job.faults.channel.drop_per_million = 20'000;
      job.faults.channel.first_round = 1;
      job.faults.channel.last_round = 24;
      job.faults.periodic = {.period = 6,
                             .last_round = 24,
                             .corrupt = 2,
                             .clones = 1,
                             .dmax = delta + 2};
      job.faults.recovery_budget = 20'000;
      c.add(std::move(job));
    }
  }

  sched::ScheduleOptions so;
  so.threads = threads;
  so.max_attempts = 2;  // one watchdog retry with a re-rolled fault seed
  const auto report = sched::run_campaign(c, so);

  benchutil::Table t({"n", "Delta", "recovery rounds", "adjusted", "faults",
                      "attempts", "stabilized"});
  for (const auto& job : report.jobs) {
    const auto spec = graph::GraphSpec::parse(job.graph);
    t.add_row({benchutil::num(std::uint64_t{spec.num("n")}),
               benchutil::num(std::uint64_t{spec.num("d")}),
               benchutil::num(std::uint64_t(value_of(job, "recovery_rounds"))),
               benchutil::num(std::uint64_t(value_of(job, "adjusted"))),
               benchutil::num(std::uint64_t{job.fault_events}),
               benchutil::num(std::uint64_t{job.attempts}),
               job.ok ? "yes" : "NO"});
  }
  t.print();
  std::printf("E2d campaign: %zu jobs, %zu graph builds, %zu cache hits, "
              "%zu retries, all ok: %s\n\n",
              report.jobs.size(), report.cache_misses, report.cache_hits,
              report.retries, report.all_ok() ? "yes" : "NO");
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = benchutil::parse_options(argc, argv);
  g_exec = opts.executor();
  if (!opts.json_path.empty()) {
    std::fprintf(stderr, "note: --json is emitted by bench_table1 only\n");
  }
  std::printf("== E2/E3/E4: fully-dynamic self-stabilization (Section 4, "
              "threads=%zu) ==\n\n", opts.threads);
  fault_batch_sweep();
  delta_sweep();
  adjustment_radius();
  line_graph_tasks();
  stabilization_campaign(opts.threads);
  return 0;
}
