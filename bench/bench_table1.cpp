// Experiment T1 — regenerates Table 1 of the paper empirically: measured
// round counts of the locally-iterative (Delta+1)-coloring algorithms on the
// same graphs.
//
//   Goldberg-Plotkin-Shannon / Linial + standard reduction:  O(Delta^2 + log* n)
//   Szegedy-Vishwanathan / Kuhn-Wattenhofer:                 O(Delta log Delta + log* n)
//   This paper (Linial + AG + O(Delta) reduction):           O(Delta + log* n)
//   This paper, exact variant (Linial + mixed AG, Sec. 7):   O(Delta + log* n)
//
// The shape to check: the GPS column grows quadratically in Delta, KW grows
// Delta*log(Delta), both AG columns grow linearly; every run ends at exactly
// Delta+1 colors with every intermediate coloring proper.

#include <cstdio>

#include "agc/coloring/ag.hpp"
#include "agc/coloring/ag3.hpp"
#include "agc/coloring/kuhn_wattenhofer.hpp"
#include "agc/coloring/pipeline.hpp"
#include "agc/coloring/reduction.hpp"
#include "agc/graph/generators.hpp"
#include "bench_util.hpp"

int main() {
  using namespace agc;
  std::printf("== T1: locally-iterative (Delta+1)-coloring round counts "
              "(random Delta-regular, n=1500) ==\n\n");

  benchutil::Table table({"Delta", "GPS O(D^2)", "KW O(D logD)", "AG (ours)",
                          "AG exact (ours)", "palette", "all proper/rnd"});

  for (std::size_t delta : {4, 8, 16, 32, 64, 96, 128}) {
    const auto g = graph::random_regular(1500, delta, 1234 + delta);
    const auto gps = coloring::color_linial_greedy(g);
    const auto kw = coloring::color_kuhn_wattenhofer(g);
    const auto ag = coloring::color_delta_plus_one(g);
    const auto ex = coloring::color_delta_plus_one_exact(g);

    const bool ok = gps.converged && kw.converged && ag.converged && ex.converged &&
                    gps.proper && kw.proper && ag.proper && ex.proper;
    const bool li = gps.proper_each_round && kw.proper_each_round &&
                    ag.proper_each_round && ex.proper_each_round;
    table.add_row({benchutil::num(std::uint64_t{delta}),
                   benchutil::num(std::uint64_t{gps.total_rounds}),
                   benchutil::num(std::uint64_t{kw.total_rounds}),
                   benchutil::num(std::uint64_t{ag.total_rounds}),
                   benchutil::num(std::uint64_t{ex.total_rounds}),
                   benchutil::num(std::uint64_t{ag.palette}),
                   ok && li ? "yes" : "NO"});
  }
  table.print();

  std::printf("Shape check: GPS/AG ratio should grow ~Delta, KW/AG ~log Delta.\n\n");

  // The Szegedy-Vishwanathan setting proper: reduce a SATURATED, adversarially
  // spread O(Delta^2)-coloring to Delta+1 (no Linial phase to flatter anyone;
  // the same seed is fed to all four reducers).  This is where the worst-case
  // separations live: the greedy tail pays ~palette rounds, KW ~Delta*log,
  // AG at most its 2Delta window.
  std::printf("== T1b: reduction from an adversarial O(Delta^2)-seed "
              "(random regular, n=3000) ==\n\n");
  benchutil::Table hard({"Delta", "seed colors", "greedy O(D^2)", "KW O(D logD)",
                         "AG+greedy (ours)", "AG exact (ours)", "all ok"});
  for (std::size_t delta : {8, 16, 32, 64}) {
    const auto g = graph::random_regular(3000, delta, 5 * delta + 1);
    // Hash-spread proper seed over the whole q^2 palette.
    const std::uint64_t q =
        coloring::ag_modulus(delta, (delta + 1) * (delta + 1));
    const std::uint64_t palette = q * q;
    std::vector<coloring::Color> seed(g.n(), palette);
    for (graph::Vertex v = 0; v < g.n(); ++v) {
      const std::uint64_t start = (v * 0x9E3779B97F4A7C15ULL) % palette;
      for (std::uint64_t k = 0; k < palette; ++k) {
        const coloring::Color c = (start + k) % palette;
        bool used = false;
        for (graph::Vertex u : g.neighbors(v)) used |= seed[u] == c;
        if (!used) {
          seed[v] = c;
          break;
        }
      }
    }

    const auto greedy = coloring::reduce_colors(g, seed, delta + 1);
    const auto kw = coloring::kuhn_wattenhofer_reduce(g, seed, delta);
    auto ag = coloring::additive_group_color(g, seed, delta);
    const std::size_t ag_rounds = ag.rounds;
    const auto ag_tail =
        coloring::reduce_colors(g, std::move(ag.colors), delta + 1);
    const auto exact = coloring::exact_delta_plus_one(g, seed, delta);

    const bool ok = greedy.converged && kw.converged && ag_tail.converged &&
                    exact.converged &&
                    graph::is_proper_coloring(g, greedy.colors) &&
                    graph::is_proper_coloring(g, kw.colors) &&
                    graph::is_proper_coloring(g, ag_tail.colors) &&
                    graph::is_proper_coloring(g, exact.colors);
    hard.add_row({benchutil::num(std::uint64_t{delta}),
                  benchutil::num(std::uint64_t{graph::palette_size(seed)}),
                  benchutil::num(std::uint64_t{greedy.rounds}),
                  benchutil::num(std::uint64_t{kw.rounds}),
                  benchutil::num(std::uint64_t{ag_rounds + ag_tail.rounds}),
                  benchutil::num(std::uint64_t{exact.rounds}),
                  ok ? "yes" : "NO"});
  }
  hard.print();
  return 0;
}
