// Experiment T1 — regenerates Table 1 of the paper empirically: measured
// round counts of the locally-iterative (Delta+1)-coloring algorithms on the
// same graphs.
//
//   Goldberg-Plotkin-Shannon / Linial + standard reduction:  O(Delta^2 + log* n)
//   Szegedy-Vishwanathan / Kuhn-Wattenhofer:                 O(Delta log Delta + log* n)
//   This paper (Linial + AG + O(Delta) reduction):           O(Delta + log* n)
//   This paper, exact variant (Linial + mixed AG, Sec. 7):   O(Delta + log* n)
//
// The shape to check: the GPS column grows quadratically in Delta, KW grows
// Delta*log(Delta), both AG columns grow linearly; every run ends at exactly
// Delta+1 colors with every intermediate coloring proper.
//
// Flags: --threads N runs the vertex programs on the exec subsystem's
// N-thread backend (results are bit-identical to sequential; when N > 1 the
// sweep is also rerun on 1 thread to report the wall-clock speedup), and
// --json FILE emits the per-row rounds/messages/bits + wall time.

#include <cstdio>

#include "agc/coloring/ag.hpp"
#include "agc/coloring/ag3.hpp"
#include "agc/coloring/kuhn_wattenhofer.hpp"
#include "agc/coloring/pipeline.hpp"
#include "agc/coloring/reduction.hpp"
#include "agc/graph/generators.hpp"
#include "bench_util.hpp"

namespace {

using namespace agc;

struct RowResult {
  coloring::PipelineReport gps, kw, ag, ex;
  double wall_s = 0;
};

RowResult run_row(const graph::Graph& g,
                  const std::shared_ptr<runtime::RoundExecutor>& executor) {
  coloring::PipelineOptions opts;
  opts.iter.executor = executor;
  RowResult r;
  benchutil::WallClock clock;
  r.gps = coloring::color_linial_greedy(g, opts);
  r.kw = coloring::color_kuhn_wattenhofer(g, opts);
  r.ag = coloring::color_delta_plus_one(g, opts);
  r.ex = coloring::color_delta_plus_one_exact(g, opts);
  r.wall_s = clock.seconds();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace agc;
  const auto opts = benchutil::parse_options(argc, argv);
  const auto executor = opts.executor();
  std::printf("== T1: locally-iterative (Delta+1)-coloring round counts "
              "(random Delta-regular, n=1500, threads=%zu) ==\n\n",
              opts.threads);

  benchutil::Table table({"Delta", "GPS O(D^2)", "KW O(D logD)", "AG (ours)",
                          "AG exact (ours)", "palette", "all proper/rnd",
                          "wall s", "speedup"});
  benchutil::JsonEmitter json("table1", opts.threads);
  double wall_total = 0, wall_seq_total = 0;

  for (std::size_t delta : {4, 8, 16, 32, 64, 96, 128}) {
    const auto g = graph::random_regular(1500, delta, 1234 + delta);
    const RowResult r = run_row(g, executor);
    wall_total += r.wall_s;

    // Sequential baseline for the speedup column (and a live determinism
    // check: the parallel run must match it bit for bit).
    double speedup = 1.0;
    std::string speedup_cell = "-";
    if (opts.threads > 1) {
      const RowResult seq = run_row(g, nullptr);
      wall_seq_total += seq.wall_s;
      speedup = r.wall_s > 0 ? seq.wall_s / r.wall_s : 0.0;
      speedup_cell = benchutil::num(speedup) + "x";
      if (seq.ag.colors != r.ag.colors ||
          seq.ag.rounds != r.ag.rounds ||
          seq.ag.metrics.total_bits != r.ag.metrics.total_bits) {
        std::printf("DETERMINISM VIOLATION at Delta=%zu\n", delta);
        return 1;
      }
    }

    const bool ok = r.gps.converged && r.kw.converged && r.ag.converged &&
                    r.ex.converged && r.gps.proper && r.kw.proper &&
                    r.ag.proper && r.ex.proper;
    const bool li = r.gps.proper_each_round && r.kw.proper_each_round &&
                    r.ag.proper_each_round && r.ex.proper_each_round;
    table.add_row({benchutil::num(std::uint64_t{delta}),
                   benchutil::num(std::uint64_t{r.gps.rounds}),
                   benchutil::num(std::uint64_t{r.kw.rounds}),
                   benchutil::num(std::uint64_t{r.ag.rounds}),
                   benchutil::num(std::uint64_t{r.ex.rounds}),
                   benchutil::num(std::uint64_t{r.ag.palette}),
                   ok && li ? "yes" : "NO", benchutil::num(r.wall_s),
                   speedup_cell});
    json.row()
        .kv("delta", std::uint64_t{delta})
        .kv("rounds_gps", std::uint64_t{r.gps.rounds})
        .kv("rounds_kw", std::uint64_t{r.kw.rounds})
        .kv("rounds_ag", std::uint64_t{r.ag.rounds})
        .kv("rounds_ag_exact", std::uint64_t{r.ex.rounds})
        .kv("palette", std::uint64_t{r.ag.palette})
        .kv("messages_ag", r.ag.metrics.messages)
        .kv("total_bits_ag", r.ag.metrics.total_bits)
        .kv("max_edge_bits_ag", r.ag.metrics.max_edge_bits)
        .kv("wall_s", r.wall_s)
        .kv("speedup_vs_1_thread", speedup)
        .kv("ok", std::string(ok && li ? "yes" : "NO"));
  }
  table.print();

  if (opts.threads > 1) {
    std::printf("T1 wall: %.2fs on %zu threads vs %.2fs sequential — "
                "overall speedup %.2fx (results bit-identical)\n\n",
                wall_total, opts.threads, wall_seq_total,
                wall_total > 0 ? wall_seq_total / wall_total : 0.0);
  }
  std::printf("Shape check: GPS/AG ratio should grow ~Delta, KW/AG ~log Delta.\n\n");

  // The Szegedy-Vishwanathan setting proper: reduce a SATURATED, adversarially
  // spread O(Delta^2)-coloring to Delta+1 (no Linial phase to flatter anyone;
  // the same seed is fed to all four reducers).  This is where the worst-case
  // separations live: the greedy tail pays ~palette rounds, KW ~Delta*log,
  // AG at most its 2Delta window.
  std::printf("== T1b: reduction from an adversarial O(Delta^2)-seed "
              "(random regular, n=3000) ==\n\n");
  benchutil::Table hard({"Delta", "seed colors", "greedy O(D^2)", "KW O(D logD)",
                         "AG+greedy (ours)", "AG exact (ours)", "all ok"});
  runtime::IterativeOptions iter;
  iter.executor = executor;
  for (std::size_t delta : {8, 16, 32, 64}) {
    const auto g = graph::random_regular(3000, delta, 5 * delta + 1);
    // Hash-spread proper seed over the whole q^2 palette.
    const std::uint64_t q =
        coloring::ag_modulus(delta, (delta + 1) * (delta + 1));
    const std::uint64_t palette = q * q;
    std::vector<coloring::Color> seed(g.n(), palette);
    for (graph::Vertex v = 0; v < g.n(); ++v) {
      const std::uint64_t start = (v * 0x9E3779B97F4A7C15ULL) % palette;
      for (std::uint64_t k = 0; k < palette; ++k) {
        const coloring::Color c = (start + k) % palette;
        bool used = false;
        for (graph::Vertex u : g.neighbors(v)) used |= seed[u] == c;
        if (!used) {
          seed[v] = c;
          break;
        }
      }
    }

    const auto greedy = coloring::reduce_colors(g, seed, delta + 1, iter);
    const auto kw = coloring::kuhn_wattenhofer_reduce(g, seed, delta, iter);
    auto ag = coloring::additive_group_color(g, seed, delta, iter);
    const std::size_t ag_rounds = ag.rounds;
    const auto ag_tail =
        coloring::reduce_colors(g, std::move(ag.colors), delta + 1, iter);
    const auto exact = coloring::exact_delta_plus_one(g, seed, delta, iter);

    const bool ok = greedy.converged && kw.converged && ag_tail.converged &&
                    exact.converged &&
                    graph::is_proper_coloring(g, greedy.colors) &&
                    graph::is_proper_coloring(g, kw.colors) &&
                    graph::is_proper_coloring(g, ag_tail.colors) &&
                    graph::is_proper_coloring(g, exact.colors);
    hard.add_row({benchutil::num(std::uint64_t{delta}),
                  benchutil::num(std::uint64_t{graph::palette_size(seed)}),
                  benchutil::num(std::uint64_t{greedy.rounds}),
                  benchutil::num(std::uint64_t{kw.rounds}),
                  benchutil::num(std::uint64_t{ag_rounds + ag_tail.rounds}),
                  benchutil::num(std::uint64_t{exact.rounds}),
                  ok ? "yes" : "NO"});
  }
  hard.print();
  json.write(opts.json_path);
  return 0;
}
