// Experiment T1 — the living Table 1: measured round counts of the
// (Delta+1)-coloring algorithms on the same graphs, extended past the
// paper's own columns to its successor and the classic randomized baseline.
//
//   Goldberg-Plotkin-Shannon / Linial + standard reduction:  O(Delta^2 + log* n)
//   Szegedy-Vishwanathan / Kuhn-Wattenhofer:                 O(Delta log Delta + log* n)
//   This paper (Linial + AG + O(Delta) reduction):           O(Delta + log* n)
//   This paper, exact variant (Linial + mixed AG, Sec. 7):   O(Delta + log* n)
//   Fu-Yin-Zheng (arXiv 2207.14458):                         O(Delta^(3/4) log Delta + log* n)
//   Luby-style randomized (seeded):                          O(log n) expected
//
// The shape to check: GPS grows quadratically in Delta, KW grows
// Delta*log(Delta), both AG columns grow linearly, FYZ grows strictly slower
// than AG (crossing below it well before Delta=256), and Luby is flat-ish in
// Delta; every deterministic run ends at exactly Delta+1 colors with every
// intermediate coloring proper (Luby is measured on final properness only —
// it holds no proper coloring mid-run).
//
// The T1 sweep runs through the campaign scheduler (src/sched): one job per
// (algorithm, Delta) cell, dispatched by registry name (coloring::
// AlgoRegistry), all algorithm columns of a row sharing one cached graph
// build.  --threads N gives the scheduler N workers (per-cell results are
// bit-identical to the 1-thread run — checked live when N > 1, along with
// the wall-clock speedup); --json FILE emits the per-row rounds/messages/
// bits + wall time tagged with the GraphSpec string.

#include <cstdio>
#include <string>

#include "agc/coloring/ag.hpp"
#include "agc/coloring/ag3.hpp"
#include "agc/coloring/kuhn_wattenhofer.hpp"
#include "agc/coloring/reduction.hpp"
#include "agc/graph/generators.hpp"
#include "agc/graph/spec.hpp"
#include "agc/sched/campaign.hpp"
#include "bench_util.hpp"

namespace {

using namespace agc;

constexpr std::size_t kDeltas[] = {4, 8, 16, 32, 64, 96, 128, 192, 256};
constexpr const char* kAlgos[] = {"gps", "kw", "ag", "exact", "fyz", "luby"};
constexpr std::size_t kStride = std::size(kAlgos);

/// The T1 grid: one column per registry algorithm x 9 Delta rows, row-major,
/// so the job for (delta index di, algorithm index ai) is campaign job
/// kStride*di + ai.
sched::Campaign make_t1_campaign() {
  sched::Campaign c;
  for (const std::size_t delta : kDeltas) {
    const auto spec = graph::GraphSpec::parse(
        "regular:n=1500,d=" + std::to_string(delta) +
        ",seed=" + std::to_string(1234 + delta));
    for (const char* algo : kAlgos) {
      sched::JobSpec job;
      job.algorithm = algo;
      job.graph = spec;
      c.add(std::move(job));
    }
  }
  return c;
}

double value_of(const sched::JobResult& r, const std::string& key) {
  for (const auto& [k, v] : r.values) {
    if (k == key) return v;
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace agc;
  const auto opts = benchutil::parse_options(argc, argv);
  std::printf("== T1: locally-iterative (Delta+1)-coloring round counts "
              "(random Delta-regular, n=1500, campaign on %zu threads) ==\n\n",
              opts.threads);

  const auto campaign = make_t1_campaign();
  sched::ScheduleOptions sopts;
  sopts.threads = opts.threads;
  benchutil::WallClock clock;
  const auto report = sched::run_campaign(campaign, sopts);
  const double wall_total = clock.seconds();

  // Sequential baseline when parallel: wall-clock speedup plus a live
  // determinism check — the aggregate JSONL must match bit for bit.
  double wall_seq_total = 0;
  if (opts.threads > 1) {
    sched::ScheduleOptions seq = sopts;
    seq.threads = 1;
    benchutil::WallClock seq_clock;
    const auto seq_report = sched::run_campaign(campaign, seq);
    wall_seq_total = seq_clock.seconds();
    if (seq_report.to_jsonl() != report.to_jsonl()) {
      std::printf("DETERMINISM VIOLATION: campaign aggregates differ between "
                  "%zu threads and 1 thread\n", opts.threads);
      return 1;
    }
  }

  benchutil::Table table({"Delta", "GPS O(D^2)", "KW O(D logD)", "AG (ours)",
                          "AG exact (ours)", "FYZ O(D^3/4)", "Luby rnd",
                          "palette", "all proper/rnd", "wall s"});
  benchutil::JsonEmitter json("table1", opts.threads);

  for (std::size_t di = 0; di < std::size(kDeltas); ++di) {
    const auto& gps = report.jobs[kStride * di + 0];
    const auto& kw = report.jobs[kStride * di + 1];
    const auto& ag = report.jobs[kStride * di + 2];
    const auto& ex = report.jobs[kStride * di + 3];
    const auto& fyz = report.jobs[kStride * di + 4];
    const auto& luby = report.jobs[kStride * di + 5];
    const bool ok =
        gps.ok && kw.ok && ag.ok && ex.ok && fyz.ok && luby.ok;
    // Luby holds no proper coloring mid-run by construction, so the
    // locally-iterative invariant column covers the deterministic entries.
    const bool li = value_of(gps, "proper_each_round") == 1.0 &&
                    value_of(kw, "proper_each_round") == 1.0 &&
                    value_of(ag, "proper_each_round") == 1.0 &&
                    value_of(ex, "proper_each_round") == 1.0 &&
                    value_of(fyz, "proper_each_round") == 1.0;
    const double row_wall =
        static_cast<double>(gps.wall_ns + kw.wall_ns + ag.wall_ns +
                            ex.wall_ns + fyz.wall_ns + luby.wall_ns) / 1e9;
    table.add_row({benchutil::num(std::uint64_t{kDeltas[di]}),
                   benchutil::num(std::uint64_t{gps.rounds}),
                   benchutil::num(std::uint64_t{kw.rounds}),
                   benchutil::num(std::uint64_t{ag.rounds}),
                   benchutil::num(std::uint64_t{ex.rounds}),
                   benchutil::num(std::uint64_t{fyz.rounds}),
                   benchutil::num(std::uint64_t{luby.rounds}),
                   benchutil::num(std::uint64_t{ag.palette}),
                   ok && li ? "yes" : "NO", benchutil::num(row_wall)});
    json.row(ag.graph)
        .kv("delta", std::uint64_t{kDeltas[di]})
        .kv("rounds_gps", std::uint64_t{gps.rounds})
        .kv("rounds_kw", std::uint64_t{kw.rounds})
        .kv("rounds_ag", std::uint64_t{ag.rounds})
        .kv("rounds_ag_exact", std::uint64_t{ex.rounds})
        .kv("rounds_fyz", std::uint64_t{fyz.rounds})
        .kv("rounds_luby", std::uint64_t{luby.rounds})
        .kv("palette", std::uint64_t{ag.palette})
        .kv("messages_ag", ag.metrics.messages)
        .kv("total_bits_ag", ag.metrics.total_bits)
        .kv("max_edge_bits_ag", ag.metrics.max_edge_bits)
        .kv("wall_s", row_wall)
        .kv("ok", std::string(ok && li ? "yes" : "NO"));
  }
  table.print();

  std::printf("T1 campaign: %zu jobs, %zu graph builds shared across %zu "
              "cache hits, wall %.2fs on %zu threads",
              report.jobs.size(), report.cache_misses, report.cache_hits,
              wall_total, opts.threads);
  if (opts.threads > 1) {
    std::printf(" vs %.2fs sequential — speedup %.2fx (aggregates "
                "bit-identical)",
                wall_seq_total,
                wall_total > 0 ? wall_seq_total / wall_total : 0.0);
  }
  std::printf("\n\nShape check: GPS/AG ratio should grow ~Delta, KW/AG "
              "~log Delta.\n\n");

  // The Szegedy-Vishwanathan setting proper: reduce a SATURATED, adversarially
  // spread O(Delta^2)-coloring to Delta+1 (no Linial phase to flatter anyone;
  // the same seed is fed to all four reducers).  This is where the worst-case
  // separations live: the greedy tail pays ~palette rounds, KW ~Delta*log,
  // AG at most its 2Delta window.
  std::printf("== T1b: reduction from an adversarial O(Delta^2)-seed "
              "(random regular, n=3000) ==\n\n");
  benchutil::Table hard({"Delta", "seed colors", "greedy O(D^2)", "KW O(D logD)",
                         "AG+greedy (ours)", "AG exact (ours)", "all ok"});
  runtime::IterativeOptions iter;
  iter.executor = opts.executor();
  for (std::size_t delta : {8, 16, 32, 64}) {
    const auto rg = benchutil::resolve_graph(benchutil::regular_spec(3000, delta, 5 * delta + 1));
    const graph::GraphView g = rg.view();
    // Hash-spread proper seed over the whole q^2 palette.
    const std::uint64_t q =
        coloring::ag_modulus(delta, (delta + 1) * (delta + 1));
    const std::uint64_t palette = q * q;
    std::vector<coloring::Color> seed(g.n(), palette);
    for (graph::Vertex v = 0; v < g.n(); ++v) {
      const std::uint64_t start = (v * 0x9E3779B97F4A7C15ULL) % palette;
      for (std::uint64_t k = 0; k < palette; ++k) {
        const coloring::Color c = (start + k) % palette;
        bool used = false;
        for (graph::Vertex u : g.neighbors(v)) used |= seed[u] == c;
        if (!used) {
          seed[v] = c;
          break;
        }
      }
    }

    const auto greedy = coloring::reduce_colors(g, seed, delta + 1, iter);
    const auto kw = coloring::kuhn_wattenhofer_reduce(g, seed, delta, iter);
    auto ag = coloring::additive_group_color(g, seed, delta, iter);
    const std::size_t ag_rounds = ag.rounds;
    const auto ag_tail =
        coloring::reduce_colors(g, std::move(ag.colors), delta + 1, iter);
    const auto exact = coloring::exact_delta_plus_one(g, seed, delta, iter);

    const bool ok = greedy.converged && kw.converged && ag_tail.converged &&
                    exact.converged &&
                    graph::is_proper_coloring(g, greedy.colors) &&
                    graph::is_proper_coloring(g, kw.colors) &&
                    graph::is_proper_coloring(g, ag_tail.colors) &&
                    graph::is_proper_coloring(g, exact.colors);
    hard.add_row({benchutil::num(std::uint64_t{delta}),
                  benchutil::num(std::uint64_t{graph::palette_size(seed)}),
                  benchutil::num(std::uint64_t{greedy.rounds}),
                  benchutil::num(std::uint64_t{kw.rounds}),
                  benchutil::num(std::uint64_t{ag_rounds + ag_tail.rounds}),
                  benchutil::num(std::uint64_t{exact.rounds}),
                  ok ? "yes" : "NO"});
  }
  hard.print();
  json.write(opts.json_path);
  return 0;
}
