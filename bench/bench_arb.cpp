// Experiments E6/E7 — arbdefective coloring and its applications (Section 6):
//   Lemmas 6.1-6.3: O(p)-arbdefective O(Delta/p)-coloring in
//     O(Delta/p + log* n) rounds.
//   Theorem 6.4: (1+eps)Delta-coloring in ~sqrt(Delta) rounds and
//     (Delta+1)-coloring with sublinear-in-Delta rounds; the crossover
//     against the linear-in-Delta AG pipeline is the shape to check.

#include <cstdio>

#include "agc/arb/arbag.hpp"
#include "agc/arb/eps_coloring.hpp"
#include "agc/coloring/pipeline.hpp"
#include "agc/graph/generators.hpp"
#include "bench_util.hpp"

using namespace agc;

namespace {

/// Execution backend from --threads/AGC_THREADS (null = sequential engine).
std::shared_ptr<runtime::RoundExecutor> g_exec;

/// The unified options spelling of the same backend, for RunOptions entry
/// points.
runtime::RunOptions run_opts() {
  runtime::RunOptions o;
  o.executor = g_exec;
  return o;
}

void p_sweep() {
  std::printf("-- E6a: ArbAG p-sweep at Delta=64 (n=900) — rounds ~ Delta/p, "
              "classes ~ Delta/p, arbdefect <= p + seed defect --\n\n");
  benchutil::Table t({"p", "rounds", "window 2D/p+1", "classes",
                      "arbdefect witness", "p+seed defect", "converged"});
  const auto rg = benchutil::resolve_graph(benchutil::regular_spec(900, 64, 21));
  const graph::GraphView g = rg.view();
  for (std::size_t p : {1, 2, 4, 8, 16, 32}) {
    const auto arb = arb::arbdefective_color(g, p, g.n(), run_opts());
    t.add_row({benchutil::num(std::uint64_t{p}),
               benchutil::num(std::uint64_t{arb.rounds}),
               benchutil::num(std::uint64_t{arb.window}),
               benchutil::num(arb.num_classes),
               benchutil::num(std::uint64_t{arb::measured_arbdefect(g, arb)}),
               benchutil::num(std::uint64_t{p + arb.seed_defect}),
               arb.converged ? "yes" : "NO"});
  }
  t.print();
}

void delta_sweep() {
  std::printf("-- E6b: ArbAG Delta-sweep at p = sqrt(Delta) (n=900) --\n\n");
  benchutil::Table t(
      {"Delta", "p", "rounds", "window 2D/p+1", "seed rounds", "converged"});
  for (std::size_t delta : {16, 36, 64, 100, 144}) {
    const auto rg = benchutil::resolve_graph(benchutil::regular_spec(900, delta, delta));
    const graph::GraphView g = rg.view();
    std::size_t p = 1;
    while ((p + 1) * (p + 1) <= delta) ++p;
    const auto arb = arb::arbdefective_color(g, p, g.n(), run_opts());
    t.add_row({benchutil::num(std::uint64_t{delta}), benchutil::num(std::uint64_t{p}),
               benchutil::num(std::uint64_t{arb.rounds}),
               benchutil::num(std::uint64_t{arb.window}),
               benchutil::num(std::uint64_t{arb.seed_rounds}),
               arb.converged ? "yes" : "NO"});
  }
  t.print();
}

void eps_and_sublinear() {
  std::printf("-- E7: (1+eps)Delta and (Delta+1) via arbdefective classes vs "
              "the linear AG pipeline (n=900) --\n\n");
  benchutil::Table t({"Delta", "eps=0.5 rounds", "eps palette", "(D+1) rounds",
                      "AG pipeline rounds", "all proper"});
  for (std::size_t delta : {16, 32, 64, 128}) {
    const auto rg = benchutil::resolve_graph(benchutil::regular_spec(900, delta, 2 * delta + 1));
    const graph::GraphView g = rg.view();
    const auto eps = arb::eps_delta_coloring(g, 0.5, g.n(), run_opts());
    const auto sub = arb::sublinear_delta_plus_one(g, g.n(), run_opts());
    coloring::PipelineOptions popts;
    popts.iter.executor = g_exec;
    const auto ag = coloring::color_delta_plus_one(g, popts);
    t.add_row({benchutil::num(std::uint64_t{delta}),
               benchutil::num(std::uint64_t{eps.rounds}),
               benchutil::num(std::uint64_t{eps.palette}),
               benchutil::num(std::uint64_t{sub.rounds}),
               benchutil::num(std::uint64_t{ag.rounds}),
               eps.proper && sub.proper && ag.proper ? "yes" : "NO"});
  }
  t.print();
  std::printf("Shape check: the E7 columns should grow ~sqrt(Delta) while the "
              "AG pipeline grows ~Delta;\nthe crossover favors the "
              "arbdefective route for large Delta.\n");
}

void threshold_ablation() {
  std::printf("\n-- Ablation: finalize threshold 0 (proper AG) vs p (ArbAG) — "
              "rounds for the same graph --\n\n");
  benchutil::Table t({"Delta", "AG rounds (threshold 0)", "ArbAG rounds "
                      "(threshold sqrt(D))"});
  for (std::size_t delta : {16, 64, 144}) {
    const auto rg = benchutil::resolve_graph(benchutil::regular_spec(900, delta, delta + 5));
    const graph::GraphView g = rg.view();
    coloring::PipelineOptions popts;
    popts.iter.executor = g_exec;
    const auto ag = coloring::color_o_delta(g, popts);
    std::size_t p = 1;
    while ((p + 1) * (p + 1) <= delta) ++p;
    const auto arb = arb::arbdefective_color(g, p, g.n(), run_opts());
    t.add_row({benchutil::num(std::uint64_t{delta}),
               benchutil::num(std::uint64_t{ag.rounds}),
               benchutil::num(std::uint64_t{arb.rounds})});
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = benchutil::parse_options(argc, argv);
  g_exec = opts.executor();
  if (!opts.json_path.empty()) {
    std::fprintf(stderr, "note: --json is emitted by bench_table1 only\n");
  }
  std::printf("== E6/E7: arbdefective coloring and sublinear-in-Delta proper "
              "coloring (Section 6, threads=%zu) ==\n\n", opts.threads);
  p_sweep();
  delta_sweep();
  eps_and_sublinear();
  threshold_ablation();
  return 0;
}
