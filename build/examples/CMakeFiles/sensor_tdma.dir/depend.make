# Empty dependencies file for sensor_tdma.
# This may be replaced when dependencies are built.
