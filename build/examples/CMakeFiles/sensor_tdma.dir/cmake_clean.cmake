file(REMOVE_RECURSE
  "CMakeFiles/sensor_tdma.dir/sensor_tdma.cpp.o"
  "CMakeFiles/sensor_tdma.dir/sensor_tdma.cpp.o.d"
  "sensor_tdma"
  "sensor_tdma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sensor_tdma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
