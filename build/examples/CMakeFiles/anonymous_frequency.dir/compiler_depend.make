# Empty compiler generated dependencies file for anonymous_frequency.
# This may be replaced when dependencies are built.
