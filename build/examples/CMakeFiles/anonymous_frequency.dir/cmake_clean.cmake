file(REMOVE_RECURSE
  "CMakeFiles/anonymous_frequency.dir/anonymous_frequency.cpp.o"
  "CMakeFiles/anonymous_frequency.dir/anonymous_frequency.cpp.o.d"
  "anonymous_frequency"
  "anonymous_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymous_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
