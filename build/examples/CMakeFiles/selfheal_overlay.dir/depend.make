# Empty dependencies file for selfheal_overlay.
# This may be replaced when dependencies are built.
