file(REMOVE_RECURSE
  "CMakeFiles/selfheal_overlay.dir/selfheal_overlay.cpp.o"
  "CMakeFiles/selfheal_overlay.dir/selfheal_overlay.cpp.o.d"
  "selfheal_overlay"
  "selfheal_overlay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfheal_overlay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
