file(REMOVE_RECURSE
  "CMakeFiles/sudden_collapse.dir/sudden_collapse.cpp.o"
  "CMakeFiles/sudden_collapse.dir/sudden_collapse.cpp.o.d"
  "sudden_collapse"
  "sudden_collapse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sudden_collapse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
