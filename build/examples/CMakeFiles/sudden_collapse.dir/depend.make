# Empty dependencies file for sudden_collapse.
# This may be replaced when dependencies are built.
