# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "400" "12" "1")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sensor_tdma "/root/repo/build/examples/sensor_tdma" "150" "0.12" "1")
set_tests_properties(example_sensor_tdma PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_selfheal "/root/repo/build/examples/selfheal_overlay" "120" "10" "3" "1")
set_tests_properties(example_selfheal PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_anonymous "/root/repo/build/examples/anonymous_frequency" "12" "18")
set_tests_properties(example_anonymous PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_collapse "/root/repo/build/examples/sudden_collapse" "600" "16" "1")
set_tests_properties(example_collapse PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
