# Empty compiler generated dependencies file for bench_setlocal.
# This may be replaced when dependencies are built.
