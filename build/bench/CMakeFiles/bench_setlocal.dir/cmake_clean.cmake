file(REMOVE_RECURSE
  "CMakeFiles/bench_setlocal.dir/bench_setlocal.cpp.o"
  "CMakeFiles/bench_setlocal.dir/bench_setlocal.cpp.o.d"
  "bench_setlocal"
  "bench_setlocal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_setlocal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
