file(REMOVE_RECURSE
  "CMakeFiles/bench_edge.dir/bench_edge.cpp.o"
  "CMakeFiles/bench_edge.dir/bench_edge.cpp.o.d"
  "bench_edge"
  "bench_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
