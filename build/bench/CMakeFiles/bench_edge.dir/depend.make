# Empty dependencies file for bench_edge.
# This may be replaced when dependencies are built.
