# Empty compiler generated dependencies file for bench_ag.
# This may be replaced when dependencies are built.
