file(REMOVE_RECURSE
  "CMakeFiles/bench_ag.dir/bench_ag.cpp.o"
  "CMakeFiles/bench_ag.dir/bench_ag.cpp.o.d"
  "bench_ag"
  "bench_ag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
