file(REMOVE_RECURSE
  "CMakeFiles/bench_arb.dir/bench_arb.cpp.o"
  "CMakeFiles/bench_arb.dir/bench_arb.cpp.o.d"
  "bench_arb"
  "bench_arb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_arb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
