# Empty compiler generated dependencies file for bench_arb.
# This may be replaced when dependencies are built.
