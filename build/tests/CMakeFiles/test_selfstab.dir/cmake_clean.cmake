file(REMOVE_RECURSE
  "CMakeFiles/test_selfstab.dir/test_selfstab.cpp.o"
  "CMakeFiles/test_selfstab.dir/test_selfstab.cpp.o.d"
  "test_selfstab"
  "test_selfstab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selfstab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
