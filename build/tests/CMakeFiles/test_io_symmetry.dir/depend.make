# Empty dependencies file for test_io_symmetry.
# This may be replaced when dependencies are built.
