file(REMOVE_RECURSE
  "CMakeFiles/test_io_symmetry.dir/test_io_symmetry.cpp.o"
  "CMakeFiles/test_io_symmetry.dir/test_io_symmetry.cpp.o.d"
  "test_io_symmetry"
  "test_io_symmetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_io_symmetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
