# Empty compiler generated dependencies file for test_stream_gens_ss.
# This may be replaced when dependencies are built.
