file(REMOVE_RECURSE
  "CMakeFiles/test_stream_gens_ss.dir/test_stream_gens_ss.cpp.o"
  "CMakeFiles/test_stream_gens_ss.dir/test_stream_gens_ss.cpp.o.d"
  "test_stream_gens_ss"
  "test_stream_gens_ss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stream_gens_ss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
