file(REMOVE_RECURSE
  "CMakeFiles/test_arb.dir/test_arb.cpp.o"
  "CMakeFiles/test_arb.dir/test_arb.cpp.o.d"
  "test_arb"
  "test_arb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
