file(REMOVE_RECURSE
  "CMakeFiles/test_integration_matrix.dir/test_integration_matrix.cpp.o"
  "CMakeFiles/test_integration_matrix.dir/test_integration_matrix.cpp.o.d"
  "test_integration_matrix"
  "test_integration_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
