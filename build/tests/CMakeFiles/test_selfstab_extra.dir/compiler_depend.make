# Empty compiler generated dependencies file for test_selfstab_extra.
# This may be replaced when dependencies are built.
