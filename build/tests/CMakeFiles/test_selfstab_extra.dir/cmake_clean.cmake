file(REMOVE_RECURSE
  "CMakeFiles/test_selfstab_extra.dir/test_selfstab_extra.cpp.o"
  "CMakeFiles/test_selfstab_extra.dir/test_selfstab_extra.cpp.o.d"
  "test_selfstab_extra"
  "test_selfstab_extra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selfstab_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
