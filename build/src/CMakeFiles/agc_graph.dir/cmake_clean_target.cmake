file(REMOVE_RECURSE
  "libagc_graph.a"
)
