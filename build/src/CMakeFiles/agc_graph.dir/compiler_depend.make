# Empty compiler generated dependencies file for agc_graph.
# This may be replaced when dependencies are built.
