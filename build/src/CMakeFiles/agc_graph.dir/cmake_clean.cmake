file(REMOVE_RECURSE
  "CMakeFiles/agc_graph.dir/graph/checks.cpp.o"
  "CMakeFiles/agc_graph.dir/graph/checks.cpp.o.d"
  "CMakeFiles/agc_graph.dir/graph/generators.cpp.o"
  "CMakeFiles/agc_graph.dir/graph/generators.cpp.o.d"
  "CMakeFiles/agc_graph.dir/graph/graph.cpp.o"
  "CMakeFiles/agc_graph.dir/graph/graph.cpp.o.d"
  "CMakeFiles/agc_graph.dir/graph/io.cpp.o"
  "CMakeFiles/agc_graph.dir/graph/io.cpp.o.d"
  "CMakeFiles/agc_graph.dir/graph/line_graph.cpp.o"
  "CMakeFiles/agc_graph.dir/graph/line_graph.cpp.o.d"
  "CMakeFiles/agc_graph.dir/graph/orientation.cpp.o"
  "CMakeFiles/agc_graph.dir/graph/orientation.cpp.o.d"
  "libagc_graph.a"
  "libagc_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agc_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
