
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/checks.cpp" "src/CMakeFiles/agc_graph.dir/graph/checks.cpp.o" "gcc" "src/CMakeFiles/agc_graph.dir/graph/checks.cpp.o.d"
  "/root/repo/src/graph/generators.cpp" "src/CMakeFiles/agc_graph.dir/graph/generators.cpp.o" "gcc" "src/CMakeFiles/agc_graph.dir/graph/generators.cpp.o.d"
  "/root/repo/src/graph/graph.cpp" "src/CMakeFiles/agc_graph.dir/graph/graph.cpp.o" "gcc" "src/CMakeFiles/agc_graph.dir/graph/graph.cpp.o.d"
  "/root/repo/src/graph/io.cpp" "src/CMakeFiles/agc_graph.dir/graph/io.cpp.o" "gcc" "src/CMakeFiles/agc_graph.dir/graph/io.cpp.o.d"
  "/root/repo/src/graph/line_graph.cpp" "src/CMakeFiles/agc_graph.dir/graph/line_graph.cpp.o" "gcc" "src/CMakeFiles/agc_graph.dir/graph/line_graph.cpp.o.d"
  "/root/repo/src/graph/orientation.cpp" "src/CMakeFiles/agc_graph.dir/graph/orientation.cpp.o" "gcc" "src/CMakeFiles/agc_graph.dir/graph/orientation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/agc_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
