# Empty compiler generated dependencies file for agc_coloring.
# This may be replaced when dependencies are built.
