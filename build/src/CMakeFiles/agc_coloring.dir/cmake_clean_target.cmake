file(REMOVE_RECURSE
  "libagc_coloring.a"
)
