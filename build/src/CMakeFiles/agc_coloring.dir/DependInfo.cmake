
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/coloring/ag.cpp" "src/CMakeFiles/agc_coloring.dir/coloring/ag.cpp.o" "gcc" "src/CMakeFiles/agc_coloring.dir/coloring/ag.cpp.o.d"
  "/root/repo/src/coloring/ag3.cpp" "src/CMakeFiles/agc_coloring.dir/coloring/ag3.cpp.o" "gcc" "src/CMakeFiles/agc_coloring.dir/coloring/ag3.cpp.o.d"
  "/root/repo/src/coloring/cole_vishkin.cpp" "src/CMakeFiles/agc_coloring.dir/coloring/cole_vishkin.cpp.o" "gcc" "src/CMakeFiles/agc_coloring.dir/coloring/cole_vishkin.cpp.o.d"
  "/root/repo/src/coloring/kuhn_wattenhofer.cpp" "src/CMakeFiles/agc_coloring.dir/coloring/kuhn_wattenhofer.cpp.o" "gcc" "src/CMakeFiles/agc_coloring.dir/coloring/kuhn_wattenhofer.cpp.o.d"
  "/root/repo/src/coloring/linial.cpp" "src/CMakeFiles/agc_coloring.dir/coloring/linial.cpp.o" "gcc" "src/CMakeFiles/agc_coloring.dir/coloring/linial.cpp.o.d"
  "/root/repo/src/coloring/linial_stream.cpp" "src/CMakeFiles/agc_coloring.dir/coloring/linial_stream.cpp.o" "gcc" "src/CMakeFiles/agc_coloring.dir/coloring/linial_stream.cpp.o.d"
  "/root/repo/src/coloring/palette.cpp" "src/CMakeFiles/agc_coloring.dir/coloring/palette.cpp.o" "gcc" "src/CMakeFiles/agc_coloring.dir/coloring/palette.cpp.o.d"
  "/root/repo/src/coloring/pipeline.cpp" "src/CMakeFiles/agc_coloring.dir/coloring/pipeline.cpp.o" "gcc" "src/CMakeFiles/agc_coloring.dir/coloring/pipeline.cpp.o.d"
  "/root/repo/src/coloring/reduction.cpp" "src/CMakeFiles/agc_coloring.dir/coloring/reduction.cpp.o" "gcc" "src/CMakeFiles/agc_coloring.dir/coloring/reduction.cpp.o.d"
  "/root/repo/src/coloring/symmetry.cpp" "src/CMakeFiles/agc_coloring.dir/coloring/symmetry.cpp.o" "gcc" "src/CMakeFiles/agc_coloring.dir/coloring/symmetry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/agc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agc_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
