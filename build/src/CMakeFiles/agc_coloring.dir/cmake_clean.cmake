file(REMOVE_RECURSE
  "CMakeFiles/agc_coloring.dir/coloring/ag.cpp.o"
  "CMakeFiles/agc_coloring.dir/coloring/ag.cpp.o.d"
  "CMakeFiles/agc_coloring.dir/coloring/ag3.cpp.o"
  "CMakeFiles/agc_coloring.dir/coloring/ag3.cpp.o.d"
  "CMakeFiles/agc_coloring.dir/coloring/cole_vishkin.cpp.o"
  "CMakeFiles/agc_coloring.dir/coloring/cole_vishkin.cpp.o.d"
  "CMakeFiles/agc_coloring.dir/coloring/kuhn_wattenhofer.cpp.o"
  "CMakeFiles/agc_coloring.dir/coloring/kuhn_wattenhofer.cpp.o.d"
  "CMakeFiles/agc_coloring.dir/coloring/linial.cpp.o"
  "CMakeFiles/agc_coloring.dir/coloring/linial.cpp.o.d"
  "CMakeFiles/agc_coloring.dir/coloring/linial_stream.cpp.o"
  "CMakeFiles/agc_coloring.dir/coloring/linial_stream.cpp.o.d"
  "CMakeFiles/agc_coloring.dir/coloring/palette.cpp.o"
  "CMakeFiles/agc_coloring.dir/coloring/palette.cpp.o.d"
  "CMakeFiles/agc_coloring.dir/coloring/pipeline.cpp.o"
  "CMakeFiles/agc_coloring.dir/coloring/pipeline.cpp.o.d"
  "CMakeFiles/agc_coloring.dir/coloring/reduction.cpp.o"
  "CMakeFiles/agc_coloring.dir/coloring/reduction.cpp.o.d"
  "CMakeFiles/agc_coloring.dir/coloring/symmetry.cpp.o"
  "CMakeFiles/agc_coloring.dir/coloring/symmetry.cpp.o.d"
  "libagc_coloring.a"
  "libagc_coloring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agc_coloring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
