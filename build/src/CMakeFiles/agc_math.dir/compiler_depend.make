# Empty compiler generated dependencies file for agc_math.
# This may be replaced when dependencies are built.
