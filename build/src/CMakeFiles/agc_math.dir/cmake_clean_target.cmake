file(REMOVE_RECURSE
  "libagc_math.a"
)
