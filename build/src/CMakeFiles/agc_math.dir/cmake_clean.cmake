file(REMOVE_RECURSE
  "CMakeFiles/agc_math.dir/math/gf.cpp.o"
  "CMakeFiles/agc_math.dir/math/gf.cpp.o.d"
  "CMakeFiles/agc_math.dir/math/iterated_log.cpp.o"
  "CMakeFiles/agc_math.dir/math/iterated_log.cpp.o.d"
  "CMakeFiles/agc_math.dir/math/polynomial.cpp.o"
  "CMakeFiles/agc_math.dir/math/polynomial.cpp.o.d"
  "CMakeFiles/agc_math.dir/math/primes.cpp.o"
  "CMakeFiles/agc_math.dir/math/primes.cpp.o.d"
  "libagc_math.a"
  "libagc_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agc_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
