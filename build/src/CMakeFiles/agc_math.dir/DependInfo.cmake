
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/gf.cpp" "src/CMakeFiles/agc_math.dir/math/gf.cpp.o" "gcc" "src/CMakeFiles/agc_math.dir/math/gf.cpp.o.d"
  "/root/repo/src/math/iterated_log.cpp" "src/CMakeFiles/agc_math.dir/math/iterated_log.cpp.o" "gcc" "src/CMakeFiles/agc_math.dir/math/iterated_log.cpp.o.d"
  "/root/repo/src/math/polynomial.cpp" "src/CMakeFiles/agc_math.dir/math/polynomial.cpp.o" "gcc" "src/CMakeFiles/agc_math.dir/math/polynomial.cpp.o.d"
  "/root/repo/src/math/primes.cpp" "src/CMakeFiles/agc_math.dir/math/primes.cpp.o" "gcc" "src/CMakeFiles/agc_math.dir/math/primes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
