file(REMOVE_RECURSE
  "CMakeFiles/agc_runtime.dir/runtime/engine.cpp.o"
  "CMakeFiles/agc_runtime.dir/runtime/engine.cpp.o.d"
  "CMakeFiles/agc_runtime.dir/runtime/faults.cpp.o"
  "CMakeFiles/agc_runtime.dir/runtime/faults.cpp.o.d"
  "CMakeFiles/agc_runtime.dir/runtime/iterative.cpp.o"
  "CMakeFiles/agc_runtime.dir/runtime/iterative.cpp.o.d"
  "CMakeFiles/agc_runtime.dir/runtime/metrics.cpp.o"
  "CMakeFiles/agc_runtime.dir/runtime/metrics.cpp.o.d"
  "CMakeFiles/agc_runtime.dir/runtime/trace.cpp.o"
  "CMakeFiles/agc_runtime.dir/runtime/trace.cpp.o.d"
  "CMakeFiles/agc_runtime.dir/runtime/transport.cpp.o"
  "CMakeFiles/agc_runtime.dir/runtime/transport.cpp.o.d"
  "libagc_runtime.a"
  "libagc_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agc_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
