
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/engine.cpp" "src/CMakeFiles/agc_runtime.dir/runtime/engine.cpp.o" "gcc" "src/CMakeFiles/agc_runtime.dir/runtime/engine.cpp.o.d"
  "/root/repo/src/runtime/faults.cpp" "src/CMakeFiles/agc_runtime.dir/runtime/faults.cpp.o" "gcc" "src/CMakeFiles/agc_runtime.dir/runtime/faults.cpp.o.d"
  "/root/repo/src/runtime/iterative.cpp" "src/CMakeFiles/agc_runtime.dir/runtime/iterative.cpp.o" "gcc" "src/CMakeFiles/agc_runtime.dir/runtime/iterative.cpp.o.d"
  "/root/repo/src/runtime/metrics.cpp" "src/CMakeFiles/agc_runtime.dir/runtime/metrics.cpp.o" "gcc" "src/CMakeFiles/agc_runtime.dir/runtime/metrics.cpp.o.d"
  "/root/repo/src/runtime/trace.cpp" "src/CMakeFiles/agc_runtime.dir/runtime/trace.cpp.o" "gcc" "src/CMakeFiles/agc_runtime.dir/runtime/trace.cpp.o.d"
  "/root/repo/src/runtime/transport.cpp" "src/CMakeFiles/agc_runtime.dir/runtime/transport.cpp.o" "gcc" "src/CMakeFiles/agc_runtime.dir/runtime/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/agc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agc_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
