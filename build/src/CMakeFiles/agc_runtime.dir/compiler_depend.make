# Empty compiler generated dependencies file for agc_runtime.
# This may be replaced when dependencies are built.
