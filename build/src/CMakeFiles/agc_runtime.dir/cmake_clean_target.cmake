file(REMOVE_RECURSE
  "libagc_runtime.a"
)
