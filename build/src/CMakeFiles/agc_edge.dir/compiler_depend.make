# Empty compiler generated dependencies file for agc_edge.
# This may be replaced when dependencies are built.
