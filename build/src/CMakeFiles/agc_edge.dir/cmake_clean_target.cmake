file(REMOVE_RECURSE
  "libagc_edge.a"
)
