file(REMOVE_RECURSE
  "CMakeFiles/agc_edge.dir/edge/defective_edge.cpp.o"
  "CMakeFiles/agc_edge.dir/edge/defective_edge.cpp.o.d"
  "CMakeFiles/agc_edge.dir/edge/edge_ag.cpp.o"
  "CMakeFiles/agc_edge.dir/edge/edge_ag.cpp.o.d"
  "libagc_edge.a"
  "libagc_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agc_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
