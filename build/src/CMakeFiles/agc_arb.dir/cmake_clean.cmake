file(REMOVE_RECURSE
  "CMakeFiles/agc_arb.dir/arb/arbag.cpp.o"
  "CMakeFiles/agc_arb.dir/arb/arbag.cpp.o.d"
  "CMakeFiles/agc_arb.dir/arb/defective.cpp.o"
  "CMakeFiles/agc_arb.dir/arb/defective.cpp.o.d"
  "CMakeFiles/agc_arb.dir/arb/eps_coloring.cpp.o"
  "CMakeFiles/agc_arb.dir/arb/eps_coloring.cpp.o.d"
  "libagc_arb.a"
  "libagc_arb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agc_arb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
