# Empty compiler generated dependencies file for agc_arb.
# This may be replaced when dependencies are built.
