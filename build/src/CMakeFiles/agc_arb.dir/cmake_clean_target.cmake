file(REMOVE_RECURSE
  "libagc_arb.a"
)
