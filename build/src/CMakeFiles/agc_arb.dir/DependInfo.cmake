
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arb/arbag.cpp" "src/CMakeFiles/agc_arb.dir/arb/arbag.cpp.o" "gcc" "src/CMakeFiles/agc_arb.dir/arb/arbag.cpp.o.d"
  "/root/repo/src/arb/defective.cpp" "src/CMakeFiles/agc_arb.dir/arb/defective.cpp.o" "gcc" "src/CMakeFiles/agc_arb.dir/arb/defective.cpp.o.d"
  "/root/repo/src/arb/eps_coloring.cpp" "src/CMakeFiles/agc_arb.dir/arb/eps_coloring.cpp.o" "gcc" "src/CMakeFiles/agc_arb.dir/arb/eps_coloring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/agc_coloring.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agc_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agc_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/agc_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
