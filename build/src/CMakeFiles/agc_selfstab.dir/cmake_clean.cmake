file(REMOVE_RECURSE
  "CMakeFiles/agc_selfstab.dir/selfstab/ss_coloring.cpp.o"
  "CMakeFiles/agc_selfstab.dir/selfstab/ss_coloring.cpp.o.d"
  "CMakeFiles/agc_selfstab.dir/selfstab/ss_line.cpp.o"
  "CMakeFiles/agc_selfstab.dir/selfstab/ss_line.cpp.o.d"
  "CMakeFiles/agc_selfstab.dir/selfstab/ss_mis.cpp.o"
  "CMakeFiles/agc_selfstab.dir/selfstab/ss_mis.cpp.o.d"
  "libagc_selfstab.a"
  "libagc_selfstab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agc_selfstab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
