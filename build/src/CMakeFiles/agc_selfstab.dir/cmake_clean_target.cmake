file(REMOVE_RECURSE
  "libagc_selfstab.a"
)
