# Empty compiler generated dependencies file for agc_selfstab.
# This may be replaced when dependencies are built.
