# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_color "/root/repo/build/tools/agccli" "color" "--graph" "regular:200,8,1" "--algo" "exact")
set_tests_properties(cli_color PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_edges "/root/repo/build/tools/agccli" "edges" "--graph" "grid:8,10")
set_tests_properties(cli_edges PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_mis "/root/repo/build/tools/agccli" "mis" "--graph" "gnp:100,0.06,2")
set_tests_properties(cli_mis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_selfstab "/root/repo/build/tools/agccli" "selfstab" "--graph" "regular:100,6,3" "--exact" "--epochs" "2")
set_tests_properties(cli_selfstab PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
