file(REMOVE_RECURSE
  "CMakeFiles/agccli.dir/agccli.cpp.o"
  "CMakeFiles/agccli.dir/agccli.cpp.o.d"
  "agccli"
  "agccli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/agccli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
