# Empty compiler generated dependencies file for agccli.
# This may be replaced when dependencies are built.
