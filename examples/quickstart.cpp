// Quickstart: (Delta+1)-color a graph with the locally-iterative AG pipeline
// (Corollary 3.6) and inspect the run report.
//
//   $ ./quickstart [n] [delta] [seed] [trace.jsonl]

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "agc/coloring/pipeline.hpp"
#include "agc/graph/generators.hpp"
#include "agc/obs/event_sink.hpp"

int main(int argc, char** argv) {
  using namespace agc;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2000;
  const std::size_t delta = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 24;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 7;

  // 1. A workload graph: random Delta-regular.
  const graph::Graph g = graph::random_regular(n, delta, seed);
  std::printf("graph: n=%zu m=%zu Delta=%zu\n", g.n(), g.m(), g.max_degree());

  // 2. One RunOptions drives every entry point in the library.  Here: collect
  //    per-phase timings, and stream structured run events as JSONL (analyze
  //    with `agc-trace summary quickstart.jsonl`) when a path is given.
  runtime::RunOptions run;
  run.collect_phase_times = true;
  std::ofstream trace_out;
  obs::JsonlSink trace(trace_out);
  if (argc > 4) {
    trace_out.open(argv[4]);
    run.sink = &trace;
  }

  // 3. Run the pipeline: Linial's reduction to O(Delta^2) colors in log* n
  //    rounds, the additive-group algorithm down to O(Delta), and the final
  //    O(Delta)-round reduction to exactly Delta+1.
  const coloring::PipelineReport rep = coloring::color_delta_plus_one(g, run);

  // 4. Everything worth knowing is in the report.
  std::printf("rounds: linial=%zu  ag=%zu  reduce=%zu  total=%zu\n",
              rep.rounds_linial, rep.rounds_core, rep.rounds_finish,
              rep.rounds);
  std::printf("palette: %zu colors (Delta+1 = %zu)\n", rep.palette, delta + 1);
  std::printf("proper: %s   proper after EVERY round (locally-iterative): %s\n",
              rep.proper ? "yes" : "no", rep.proper_each_round ? "yes" : "no");
  std::printf("messages: %llu   total bits: %llu\n",
              static_cast<unsigned long long>(rep.metrics.messages),
              static_cast<unsigned long long>(rep.metrics.total_bits));

  // 5. The phase breakdown collected through RunOptions, as one telemetry
  //    registry (counters + per-phase times + derived gauges).
  rep.telemetry().write_summary(std::cout);

  // 6. The colors themselves.
  std::printf("first vertices: ");
  for (graph::Vertex v = 0; v < 10 && v < g.n(); ++v) {
    std::printf("v%u=%llu ", v, static_cast<unsigned long long>(rep.colors[v]));
  }
  std::printf("\n");
  return rep.proper && rep.converged ? 0 : 1;
}
