// Frequency assignment in an ANONYMOUS network — the SET-LOCAL model
// (Section 1.2.3): radio towers have no IDs and cannot tell which neighbor
// sent which message; each round a tower only sees the multiset of channels
// currently used around it.  Starting from any proper channel assignment
// with O(Delta^2) channels (e.g. factory-preset), the additive-group rules
// compress it to exactly Delta+1 channels in O(Delta) rounds.
//
// The engine's SET-LOCAL transport *enforces* anonymity: a per-port send
// would throw.
//
//   $ ./anonymous_frequency [rows] [cols]

#include <cstdio>
#include <cstdlib>

#include "agc/coloring/ag.hpp"
#include "agc/coloring/ag3.hpp"
#include "agc/graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace agc;
  const std::size_t rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 30;
  const std::size_t cols = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 40;

  const graph::Graph grid = graph::grid(rows, cols);
  const std::size_t delta = grid.max_degree();
  std::printf("tower grid: %zux%zu, interference degree <= %zu\n", rows, cols,
              delta);

  // Factory preset: channel = position-derived, a proper O(Delta^2)-palette
  // assignment that any anonymous deployment can ship with (here: the
  // standard 2D coloring by coordinates modulo a q x q tile).
  const std::uint64_t q = coloring::ag_modulus(delta, (delta + 1) * (delta + 1));
  std::vector<coloring::Color> channels(grid.n());
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      channels[r * cols + c] = (r % q) * q + ((r + 2 * c) % q);
    }
  }
  std::printf("preset palette: up to %llu channels\n",
              static_cast<unsigned long long>(q * q));

  runtime::IterativeOptions anonymous;
  anonymous.model = runtime::Model::SET_LOCAL;

  // One uniform, ID-free rule per round; every intermediate assignment stays
  // interference-free.
  const auto result =
      coloring::exact_delta_plus_one(grid, channels, delta, anonymous);

  std::printf("converged in %zu anonymous rounds\n", result.rounds);
  std::printf("channels in use: %zu (Delta+1 = %zu)\n",
              graph::palette_size(result.colors), delta + 1);
  std::printf("interference-free after every round: %s\n",
              result.proper_each_round ? "yes" : "NO");

  // Show a corner of the final channel map.
  std::printf("\nchannel map (top-left 8x12):\n");
  for (std::size_t r = 0; r < std::min<std::size_t>(rows, 8); ++r) {
    std::printf("  ");
    for (std::size_t c = 0; c < std::min<std::size_t>(cols, 12); ++c) {
      std::printf("%llu ",
                  static_cast<unsigned long long>(result.colors[r * cols + c]));
    }
    std::printf("\n");
  }
  return result.converged && result.proper_each_round ? 0 : 1;
}
