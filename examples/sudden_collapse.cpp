// The phenomenon that breaks the Szegedy-Vishwanathan barrier, visualized.
//
// SV's heuristic lower bound assumed every locally-iterative algorithm must
// shrink the palette gradually — Theta(Delta log(a/b)) rounds to go from
// a*Delta to b*Delta colors.  The AG coloring does nothing of the sort: the
// palette stays Omega(Delta^2)-ish for most of the run while the special
// pair structure quietly aligns, then collapses to O(Delta) colors in the
// final rounds ("a very special type of coloring that can be very
// efficiently reduced" — exactly what SV said would be needed).
//
//   $ ./sudden_collapse [n] [delta] [seed]

#include <cstdlib>
#include <iostream>

#include "agc/coloring/ag.hpp"
#include "agc/coloring/linial.hpp"
#include "agc/runtime/trace.hpp"
#include "agc/graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace agc;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3000;
  const std::size_t delta = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 48;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 3;

  const auto g = graph::random_regular(n, delta, seed);
  std::cout << "graph: n=" << g.n() << " m=" << g.m() << " Delta=" << delta
            << "\n\n";

  // Seed with an O(Delta^2)-coloring spread over the whole palette (the
  // worst-case shape for a gradual reducer).
  auto lin =
      coloring::linial_color(g, coloring::identity_coloring(g.n()), g.n(), delta);
  const std::uint64_t q =
      coloring::ag_modulus(delta, graph::max_color(lin.colors) + 1);
  const coloring::AgRule rule(q);

  runtime::TraceRecorder trace(g, [&](runtime::Color c) { return rule.is_final(c); });
  runtime::IterativeOptions opts;
  opts.on_round = trace.observer();
  auto res = runtime::run_locally_iterative(g, std::move(lin.colors), rule, opts);

  std::cout << "AG with q=" << q << ": converged=" << res.converged
            << " rounds=" << res.rounds
            << " proper_each_round=" << res.proper_each_round << "\n\n";
  trace.write_ascii(std::cout);
  std::cout << "\nThe palette implodes to <= " << q
            << " = O(Delta) colors within a handful of rounds — far faster\n"
               "than the Theta(Delta log Delta) gradual reduction the SV "
               "barrier argument assumed\n(and the worst case is still only "
            << q << " rounds, Corollary 3.5).\n";
  return res.converged ? 0 : 1;
}
