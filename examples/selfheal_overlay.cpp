// A self-healing peer-to-peer overlay (Section 4): peers crash, reconnect,
// and suffer memory corruption, yet the network continuously re-converges to
// a proper (Delta+1)-coloring and an MIS of cluster heads — with
// stabilization time independent of n and no coordination after deployment.
//
// Timeline:  epoch = (adversary event burst) -> (rounds until quiescent).
//
//   $ ./selfheal_overlay [n] [dmax] [epochs] [seed]

#include <cstdio>
#include <cstdlib>

#include "agc/graph/checks.hpp"
#include "agc/graph/generators.hpp"
#include "agc/runtime/faults.hpp"
#include "agc/selfstab/ss_mis.hpp"

int main(int argc, char** argv) {
  using namespace agc;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 300;
  const std::size_t dmax = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 12;
  const int epochs = argc > 3 ? std::atoi(argv[3]) : 6;
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 11;

  graph::Graph overlay = graph::random_bounded_degree(n, dmax, 3 * n, seed);
  std::printf("overlay: %zu peers, %zu links, degree cap %zu\n", overlay.n(),
              overlay.m(), dmax);

  // ROM: every peer knows only n, the degree cap, and its own ID.  RAM (one
  // color word + one MIS status word) is fair game for the adversary.
  selfstab::SsConfig cfg(n, dmax, selfstab::PaletteMode::ExactDeltaPlusOne);
  runtime::EngineOptions eo;
  eo.delta_bound = dmax;
  runtime::Engine engine(std::move(overlay),
                         runtime::Transport(runtime::Model::LOCAL), eo);
  engine.install(selfstab::ss_mis_factory(cfg));

  runtime::Adversary adversary(seed * 31);
  std::printf("\n%-6s %-34s %-12s %-14s\n", "epoch", "adversary burst",
              "stab rounds", "cluster heads");

  for (int epoch = 0; epoch <= epochs; ++epoch) {
    if (epoch > 0) {
      switch (epoch % 3) {
        case 1:  // memory corruption storm
          adversary.corrupt_random(engine, n / 5, cfg.span(), 0);
          adversary.corrupt_random(engine, n / 5, 4, 1);
          break;
        case 2:  // link churn
          adversary.churn_edges(engine, n / 8, n / 8, dmax);
          break;
        case 0:  // peer crash/rejoin
          adversary.churn_vertices(engine, n / 20, 4, dmax);
          break;
      }
    }
    const auto rep = selfstab::run_until_mis_stable(engine, cfg, 100000);
    if (!rep.stabilized) {
      std::printf("epoch %d FAILED to stabilize\n", epoch);
      return 1;
    }
    std::size_t heads = 0;
    for (bool b : rep.in_mis) heads += b;
    const char* burst = epoch == 0            ? "(cold start)"
                        : epoch % 3 == 1      ? "RAM corruption: 40% of peers"
                        : epoch % 3 == 2      ? "link churn: add+drop n/8 links"
                                              : "crash/rejoin: n/20 peers";
    std::printf("%-6d %-34s %-12zu %-14zu\n", epoch, burst, rep.rounds_to_stable,
                heads);
  }

  const auto colors = selfstab::current_colors(engine);
  std::printf("\nfinal state: proper=%s, palette <= Delta+1=%zu, "
              "MIS valid=%s\n",
              graph::is_proper_coloring(engine.graph(), colors) ? "yes" : "no",
              dmax + 1,
              graph::is_mis(engine.graph(), selfstab::current_mis(engine))
                  ? "yes"
                  : "no");
  return 0;
}
