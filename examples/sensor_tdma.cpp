// Sensor-network TDMA scheduling via distributed (2*Delta-1)-edge-coloring
// (Section 5) — the paper's motivating application class: each edge color is
// a time slot in which the two endpoints may exchange data without their
// radios colliding at either endpoint.
//
// The network is a random geometric graph (sensors in the unit square, radio
// range r), the classic sensor-network model.  The whole schedule is computed
// with at most O(log n) bits per edge up front and ONE BIT per edge per round
// thereafter — exactly what low-power radios can afford.
//
//   $ ./sensor_tdma [n] [range] [seed]

#include <cstdio>
#include <cstdlib>

#include "agc/edge/edge_coloring.hpp"
#include "agc/graph/generators.hpp"

int main(int argc, char** argv) {
  using namespace agc;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400;
  const double range = argc > 2 ? std::strtod(argv[2], nullptr) : 0.08;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  const graph::Graph net = graph::random_geometric(n, range, seed);
  const std::size_t delta = net.max_degree();
  std::printf("sensor field: %zu nodes, %zu links, max radio degree %zu\n",
              net.n(), net.m(), delta);

  // Distributed schedule computation in the CONGEST model.
  const auto schedule = edge::color_edges_distributed(net);
  std::printf("schedule computed in %zu rounds; %zu slots (2*Delta-1 = %zu)\n",
              schedule.rounds, schedule.palette, 2 * delta - 1);
  std::printf("collision-free: %s\n", schedule.proper ? "yes" : "NO");
  std::printf("radio cost: %.1f bits/link on average, %llu bits on the "
              "busiest link\n",
              schedule.avg_bits_per_edge,
              static_cast<unsigned long long>(schedule.max_bits_per_edge));

  // Slot utilization histogram.
  std::vector<std::size_t> slot_load(2 * delta + 1, 0);
  for (edge::Color c : schedule.colors) {
    if (c < slot_load.size()) ++slot_load[c];
  }
  std::printf("\nslot utilization (links per TDMA slot):\n");
  for (std::size_t s = 0; s < slot_load.size(); ++s) {
    if (slot_load[s] == 0) continue;
    std::printf("  slot %2zu: %4zu links  ", s, slot_load[s]);
    for (std::size_t k = 0; k < slot_load[s] / 4 + 1; ++k) std::printf("#");
    std::printf("\n");
  }

  // The same schedule under the harsher Bit-Round model (1 bit/link/round).
  edge::EdgeColoringOptions bits;
  bits.bit_round = true;
  const auto harsh = edge::color_edges_distributed(net, bits);
  std::printf("\nBit-Round model: %zu one-bit rounds, still %zu slots, "
              "collision-free: %s\n",
              harsh.rounds, harsh.palette, harsh.proper ? "yes" : "NO");
  return schedule.proper && harsh.proper ? 0 : 1;
}
