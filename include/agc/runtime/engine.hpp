#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "agc/graph/view.hpp"
#include "agc/runtime/message.hpp"
#include "agc/runtime/metrics.hpp"
#include "agc/runtime/transport.hpp"

/// \file engine.hpp
/// The synchronous message-passing round engine.
///
/// Every algorithm in this library is a per-vertex state machine
/// (VertexProgram).  Each round the engine (1) asks every vertex for its
/// outgoing messages, (2) validates them against the communication model,
/// (3) delivers them, and (4) lets every vertex update its state.  The engine
/// also hosts the adversary interface for the fully-dynamic self-stabilizing
/// setting: RAM corruption, edge churn and vertex churn between rounds.

namespace agc::obs {
class EventSink;     // obs/event_sink.hpp
class PhaseProfile;  // obs/phase_timer.hpp
}  // namespace agc::obs

namespace agc::runtime {

/// Hard-wired, fault-free per-vertex knowledge: the paper's ROM contents
/// (ID, bounds on n and Delta).  `padded_id` lives in a possibly much larger
/// ID space than [0, n) — Linial-style reductions depend only on the ID-space
/// size, which experiments sweep independently of n.
struct VertexEnv {
  graph::Vertex id = 0;
  std::uint64_t padded_id = 0;
  std::size_t degree = 0;
  std::uint64_t n_bound = 0;
  std::uint64_t id_space = 0;  ///< padded_id < id_space
  std::size_t delta_bound = 0;
  /// Current neighbor IDs in port order.  Standard knowledge in LOCAL /
  /// CONGEST (one round of ID exchange); SET-LOCAL programs must not use it.
  std::span<const graph::Vertex> neighbors;
  /// Global synchronous round number (a shared clock; used only for phase
  /// parity in multi-phase protocols such as the line-graph simulation).
  std::uint64_t round = 0;
};

class VertexProgram {
 public:
  virtual ~VertexProgram() = default;

  /// Called once when the program is installed (and again if the adversary
  /// resets the vertex).
  virtual void on_start(const VertexEnv& /*env*/) {}

  /// Produce this round's outgoing messages.  `out` is a view into the
  /// engine's mailbox arena, valid only for the duration of the call.
  virtual void on_send(const VertexEnv& env, OutboxRef& out) = 0;

  /// Consume this round's incoming messages and update state.  `in` reads
  /// the senders' words in place; the view (and any span it returns) is
  /// valid only for the duration of the call.
  virtual void on_receive(const VertexEnv& env, const InboxRef& in) = 0;

  /// A halted program stops the run() loop once every vertex reports halted.
  /// Self-stabilizing programs never halt.
  ///
  /// Contract for dependency-driven (async) execution: a program may report
  /// halted only if its current on_send output is identical to the message
  /// it broadcast in the round just completed.  The async executor freezes a
  /// halted vertex by mirroring its LAST PUBLISHED message into both mailbox
  /// epochs; halting while the next broadcast would differ makes neighbors
  /// read a stale message forever.  In practice: require one quiescent round
  /// (state unchanged by the last step) before returning true.
  [[nodiscard]] virtual bool halted(const VertexEnv& /*env*/) const { return false; }

  /// Volatile state exposed to the adversary.  Everything returned here may
  /// be overwritten with arbitrary values between rounds; a self-stabilizing
  /// algorithm must recover.  Static algorithms keep their state private.
  virtual std::span<std::uint64_t> ram() { return {}; }
};

using ProgramFactory =
    std::function<std::unique_ptr<VertexProgram>(const VertexEnv&)>;

struct EngineOptions {
  /// Multiplier applied to n to form the ID space (padded_id = id, but the
  /// *bound* the algorithms see is id_space).  Sweeping this exercises the
  /// log* dependence without growing the graph.
  std::uint64_t id_space_factor = 1;
  /// Override for the Delta bound in ROM; 0 means "use the graph's max
  /// degree".  Dynamic runs must set this to the maximum degree that can ever
  /// occur.
  std::size_t delta_bound = 0;
  /// Override for the n bound in ROM; 0 means "use g.n()".
  std::uint64_t n_bound = 0;
};

class RoundExecutor;   // round.hpp — the engine's execution backend
class FaultEventSink;  // faults.hpp — fault recording hook

class Engine {
 public:
  /// Owning: the engine takes the graph by value and mutates it directly
  /// through the adversary interface below.
  Engine(graph::Graph g, Transport transport, EngineOptions opts = {});

  /// View-backed: the engine runs read-only over the caller's topology
  /// backend (a Graph or FrozenGraph that must outlive the engine) without
  /// copying it.  The adversary interface still works: the first successful
  /// topology mutation materializes a private mutable copy (copy-on-churn),
  /// after which the run proceeds exactly as if the engine had owned the
  /// graph from the start.
  Engine(graph::GraphView g, Transport transport, EngineOptions opts = {});

  /// Create a program for every vertex.  Must be called before stepping.
  void install(const ProgramFactory& factory);

  /// Swap the execution backend (null = built-in sequential).  The exec
  /// subsystem's parallel backend is bit-identical to sequential for every
  /// thread count (see docs/EXEC.md), so this only changes wall-clock time.
  void set_executor(std::shared_ptr<RoundExecutor> executor) {
    executor_ = std::move(executor);
  }
  [[nodiscard]] const std::shared_ptr<RoundExecutor>& executor() const noexcept {
    return executor_;
  }

  /// Run one synchronous round.
  void step();

  /// Run up to `max_rounds` rounds as one dependency-driven window: no
  /// global barrier, every vertex firing as soon as its in-neighbors'
  /// previous-round values have arrived and halting individually via
  /// VertexProgram::halted().  Falls back to a per-round step() loop
  /// (stopping once all_halted()) when the executor is not
  /// dependency-driven, or a channel hook / per-round observer needs
  /// round-boundary callbacks.  Returns the rounds fired by the
  /// most-advanced vertex; metrics().rounds advances by the same amount.
  std::size_t step_window(std::size_t max_rounds);

  /// Run until every program reports halted(), or `max_rounds` elapse.
  /// Returns the number of rounds executed.
  std::size_t run(std::size_t max_rounds);

  [[nodiscard]] bool all_halted() const;

  [[nodiscard]] graph::GraphView graph() const noexcept { return view_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] const Transport& transport() const noexcept { return transport_; }
  [[nodiscard]] std::size_t rounds() const noexcept { return metrics_.rounds; }

  [[nodiscard]] VertexProgram& program(graph::Vertex v) { return *programs_[v]; }
  [[nodiscard]] const VertexProgram& program(graph::Vertex v) const {
    return *programs_[v];
  }
  [[nodiscard]] const VertexEnv& env(graph::Vertex v) const { return envs_[v]; }

  /// The engine-owned mailbox storage (exposed for tests and allocation
  /// accounting; programs only ever see it through Outbox/Inbox views).
  [[nodiscard]] const MailboxArena& arena() const noexcept { return arena_; }

  /// Observer invoked after every round (used by tests to assert invariants
  /// such as "the coloring is proper after every round").
  void set_observer(std::function<void(const Engine&, std::size_t round)> obs) {
    observer_ = std::move(obs);
  }

  // --- Observability hooks (src/obs; wired by runners from RunOptions) -----

  /// Per-shard phase-timing accumulator (non-owning; null = timing off, the
  /// default — each phase then costs one branch and no clock read).
  void set_profile(obs::PhaseProfile* profile) noexcept { profile_ = profile; }
  [[nodiscard]] obs::PhaseProfile* profile() const noexcept { return profile_; }

  /// Structured event sink (non-owning; null = no events).  The engine emits
  /// one RoundEnd event per step carrying the cumulative message count;
  /// runners layer run/stage/fault events on top.
  void set_sink(obs::EventSink* sink) noexcept { sink_ = sink; }
  [[nodiscard]] obs::EventSink* sink() const noexcept { return sink_; }

  /// Message-path fault hook (non-owning; null = clean wire, the default).
  /// Runs inside every send phase after transport validation — see
  /// ChannelHook in transport.hpp for the concurrency contract.
  void set_channel(ChannelHook* channel) noexcept { channel_ = channel; }
  [[nodiscard]] ChannelHook* channel() const noexcept { return channel_; }

  /// Fault recorder (non-owning; null = no recording).  The adversary
  /// interface below reports every successful mutation to it, so a recorded
  /// plan replays exactly what happened — including mutations an adversary
  /// attempted that silently no-opped (those are *not* recorded).
  void set_fault_recorder(FaultEventSink* recorder) noexcept {
    fault_recorder_ = recorder;
  }
  [[nodiscard]] FaultEventSink* fault_recorder() const noexcept {
    return fault_recorder_;
  }

  // --- Adversary interface (fully-dynamic self-stabilizing setting) -------

  /// Overwrite one RAM word of v.  No-op if the program exposes no RAM.
  void corrupt_ram(graph::Vertex v, std::size_t word, std::uint64_t value);

  /// Read v's RAM (adversaries peek to craft worst-case faults).
  [[nodiscard]] std::span<std::uint64_t> ram(graph::Vertex v) {
    return programs_[v]->ram();
  }

  bool add_edge(graph::Vertex u, graph::Vertex v);
  bool remove_edge(graph::Vertex u, graph::Vertex v);

  /// Append a fresh vertex running a new program instance.
  graph::Vertex add_vertex();

  /// Crash/recover: drop all edges of v and restart its program.
  void reset_vertex(graph::Vertex v);

 private:
  void refresh_env(graph::Vertex v);

  /// Copy-on-churn: the mutable backing graph, materializing a private copy
  /// of a view-backed topology (and re-pointing every env's neighbor span at
  /// it) on first use.
  graph::Graph& mutable_graph();

  /// Heap-allocated so its address — which view_ and every env's neighbor
  /// span may point into — survives Engine moves.  Null while the engine is
  /// view-backed and unchurned.
  std::unique_ptr<graph::Graph> owned_;
  graph::GraphView view_;
  Transport transport_;
  EngineOptions opts_;
  ProgramFactory factory_;
  std::vector<std::unique_ptr<VertexProgram>> programs_;
  std::vector<VertexEnv> envs_;
  Metrics metrics_;
  EdgeBitLedger edge_bits_;
  MailboxArena arena_;
  std::shared_ptr<RoundExecutor> executor_;
  std::function<void(const Engine&, std::size_t)> observer_;
  obs::PhaseProfile* profile_ = nullptr;
  obs::EventSink* sink_ = nullptr;
  ChannelHook* channel_ = nullptr;
  FaultEventSink* fault_recorder_ = nullptr;
};

}  // namespace agc::runtime
