#pragma once

#include <cstddef>
#include <cstdint>

#include "agc/obs/phase_timer.hpp"
#include "agc/obs/telemetry.hpp"
#include "agc/runtime/metrics.hpp"

/// \file run_report.hpp
/// The common core every `run_*` entry point's result embeds.
///
/// Per-algorithm result structs (IterativeResult, PipelineReport,
/// EdgeColoringResult, the selfstab stabilization reports, ...) derive from
/// RunReport, so `rounds`, `converged`, `metrics` and the telemetry accessor
/// are spelled identically across the whole API instead of once per struct.
/// Algorithm-specific fields (colors, palette, stage round splits, ...) stay
/// on the derived structs.

namespace agc::runtime {

struct RunReport {
  std::size_t rounds = 0;   ///< engine rounds this run executed
  bool converged = false;   ///< the entry point's success predicate
  Metrics metrics;          ///< rounds/messages/bits accounting

  /// Folded per-shard phase timings (all-zero unless the run's RunOptions
  /// set collect_phase_times).
  obs::PhaseStats phases;
  /// End-to-end wall time of the run, including runner-side work.
  std::uint64_t wall_ns = 0;
  /// Total adversary events injected through RunOptions::adversary.
  std::size_t fault_events = 0;

  /// The unified counters/gauges view: everything Metrics, the edge-bit
  /// ledger and the phase timers counted, as one registry (assembled on
  /// call; fine to invoke once at end of run, not per round).
  [[nodiscard]] obs::Telemetry telemetry() const;

  /// Stage accumulation: counters add, metrics merge (max_edge_bits is a
  /// max), phase stats merge, convergence ANDs.  Used by run_stages and the
  /// pipelines.
  void absorb(const RunReport& stage);
};

}  // namespace agc::runtime
