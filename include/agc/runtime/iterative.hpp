#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "agc/graph/checks.hpp"
#include "agc/graph/graph.hpp"
#include "agc/runtime/engine.hpp"
#include "agc/runtime/run_options.hpp"
#include "agc/runtime/run_report.hpp"

/// \file iterative.hpp
/// The locally-iterative harness.
///
/// A locally-iterative algorithm maintains a proper coloring phi_1, phi_2,...
/// where each vertex computes its next color *only* from the colors in its
/// 1-hop neighborhood (Szegedy-Vishwanathan [62]).  An IterativeRule is the
/// per-round update function; crucially it receives the neighbors' colors as
/// a sorted, sender-anonymous multiset, which makes every rule expressed this
/// way directly executable in the SET-LOCAL model of [33] (Section 1.2.3 of
/// the paper).
///
/// The runner executes the rule on the round engine (one broadcast per vertex
/// per round), optionally asserting after every round that the coloring is
/// still proper — the defining invariant of the class.

namespace agc::runtime {

using graph::Color;

class IterativeRule {
 public:
  virtual ~IterativeRule() = default;

  /// The next color of a vertex currently colored `own`, whose neighbors'
  /// colors form the sorted multiset `neighbors`.  Must be a pure function.
  [[nodiscard]] virtual Color step(Color own,
                                   std::span<const Color> neighbors) const = 0;

  /// True once a color has reached its final form (a fixed point of step()
  /// for every possible neighborhood that can still occur).
  [[nodiscard]] virtual bool is_final(Color c) const = 0;

  /// Declared width of a color broadcast, for transport accounting.
  [[nodiscard]] virtual std::uint32_t color_bits() const = 0;
};

/// Harness configuration: the unified RunOptions core (model, congest_bits,
/// max_rounds, executor, adversary, observability hooks) plus the fields only
/// the locally-iterative harness understands.  Implicitly constructible from
/// a bare RunOptions so a shared RunOptions can parameterize any entry point.
struct IterativeOptions : RunOptions {
  IterativeOptions() = default;
  /*implicit*/ IterativeOptions(const RunOptions& base) : RunOptions(base) {}

  /// Assert (via the result flag) that every intermediate coloring is proper.
  bool check_proper_each_round = true;
  /// Observer invoked after every round with the current coloring (round 0 =
  /// the initial coloring, before any step).  Used by the trace recorder.
  std::function<void(std::size_t round, std::span<const Color>)> on_round;
};

/// RunReport core (rounds, converged, metrics, telemetry) plus the coloring
/// itself and the harness's defining invariant flag.
struct IterativeResult : RunReport {
  std::vector<Color> colors;
  bool proper_each_round = true;   ///< locally-iterative invariant held
};

/// Run `rule` from the initial coloring until every color is final.
[[nodiscard]] IterativeResult run_locally_iterative(graph::GraphView g,
                                                    std::vector<Color> initial,
                                                    const IterativeRule& rule,
                                                    const IterativeOptions& opts = {});

/// Convenience: run a sequence of rules back to back (a staged pipeline, as
/// in Corollary 3.6), feeding each stage's final coloring to the next.
/// Metrics and round counts accumulate into the returned result.
[[nodiscard]] IterativeResult run_stages(
    graph::GraphView g, std::vector<Color> initial,
    std::span<const IterativeRule* const> stages, const IterativeOptions& opts = {});

}  // namespace agc::runtime
