#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "agc/runtime/transport.hpp"

/// \file run_options.hpp
/// The unified run configuration shared by every `run_*` entry point.
///
/// Before this header existed, each entry point grew its own option spelling:
/// IterativeOptions carried model/congest/max_rounds/executor, the edge
/// colorer had a private congest_bits + executor pair, the arb entry points
/// took a bare executor parameter, and fault adversaries were reachable only
/// by hand-driving a selfstab engine.  RunOptions is the one core those
/// structs now embed (IterativeOptions and EdgeColoringOptions derive from
/// it; PipelineOptions nests it through its iterative stage options), so the
/// execution backend, the fault adversary and the observability hooks are
/// spelled — and threaded — identically everywhere.

namespace agc::obs {
class EventSink;
}  // namespace agc::obs

namespace agc::runtime {

class RoundExecutor;    // round.hpp
class FaultAdversary;   // faults.hpp

struct RunOptions {
  /// Communication model of the engine's transport.  Entry points whose
  /// protocol fixes the model (e.g. the CONGEST/Bit-Round edge colorer)
  /// ignore this field and document what they use instead.
  Model model = Model::SET_LOCAL;
  std::uint32_t congest_bits = 64;
  std::size_t max_rounds = 1'000'000;

  /// Execution backend for the round engine (null = sequential).  The exec
  /// subsystem's sharded backend is bit-identical for any thread count, so
  /// this only affects wall-clock time.
  std::shared_ptr<RoundExecutor> executor;

  /// Fault adversary invoked between rounds (non-owning; null = fault-free).
  /// Works for iterative, pipeline and edge runs as well as the selfstab
  /// runners; see faults.hpp for the hook contract.
  FaultAdversary* adversary = nullptr;

  /// Message-path fault hook run inside every send phase (non-owning; null =
  /// clean wire).  Unlike the adversary it attacks messages, not RAM or
  /// topology; see ChannelHook in transport.hpp and src/faultlab for the
  /// seeded implementation.  Channel events count into
  /// RunReport::fault_events like adversary events do.
  ChannelHook* channel = nullptr;

  /// Structured event sink (non-owning; null = observability off, the
  /// default — emission is skipped behind one branch and the steady-state
  /// round loop stays allocation-free).
  obs::EventSink* sink = nullptr;

  /// Collect per-shard phase timings into the result's telemetry.  Off by
  /// default; when off the timers cost one branch per phase per shard.
  bool collect_phase_times = false;

  /// Static tag attached to emitted events (stage name, algorithm name).
  const char* tag = nullptr;

  /// Seed for randomized algorithms (coloring::luby today).  Determinism
  /// contract: any randomized entry point must derive its per-vertex
  /// randomness as a pure function of (seed, round, vertex id) — never of
  /// thread count, executor choice, or scheduling — so a run replays
  /// bit-identically across 1/2/8 threads and the bsp/async executors.
  /// This is the ONE seed spelling for algorithm randomness; per-call seed
  /// parameters on coloring entry points are not accepted (CI grep-gates
  /// include/agc/coloring for them).  Deterministic algorithms ignore it.
  std::uint64_t seed = 1;

  [[nodiscard]] bool observing() const noexcept {
    return sink != nullptr || collect_phase_times;
  }
};

}  // namespace agc::runtime
