#pragma once

#include <cstdint>
#include <string>

#include "agc/runtime/message.hpp"

/// \file transport.hpp
/// Communication models.  The transport validates every outgoing message
/// against the model's bandwidth and structure rules and feeds the metrics.
///
///   LOCAL      — unbounded messages (model of [49], [3], [22]).
///   CONGEST(B) — at most B bits per edge per round (B = O(log n) classically).
///   BIT        — 1 bit per edge per round (Bit-Round model of [43]).
///   SET_LOCAL  — broadcast-only, sender-anonymous; receivers see only the
///                multiset of neighbor values (weak LOCAL model of [33]).

namespace agc::runtime {

enum class Model : std::uint8_t { LOCAL, CONGEST, BIT, SET_LOCAL };

[[nodiscard]] std::string to_string(Model m);

class Transport {
 public:
  /// `congest_bits` is only meaningful for Model::CONGEST.
  explicit Transport(Model model, std::uint32_t congest_bits = 64)
      : model_(model), congest_bits_(congest_bits) {}

  [[nodiscard]] Model model() const noexcept { return model_; }
  [[nodiscard]] std::uint32_t congest_bits() const noexcept { return congest_bits_; }

  /// Maximum declared message width admitted on one edge in one round, or
  /// 0 for unbounded.
  [[nodiscard]] std::uint32_t width_cap() const noexcept;

  /// Throws std::logic_error if the outbox violates the model (over-wide
  /// message, or a directed send in SET_LOCAL).  Reads the arena-backed view
  /// in place — no message is copied for validation.
  void validate(const OutboxRef& out) const;

 private:
  Model model_;
  std::uint32_t congest_bits_;
};

/// The message-path fault hook (src/faultlab implements it).
///
/// While the FaultAdversary of faults.hpp attacks RAM and topology *between*
/// rounds, a ChannelHook attacks messages *inside* a round: it runs right
/// after a sender's outbox passed model validation — the sender was honest,
/// the wire is not — and may drop, duplicate, corrupt or delay the words
/// queued at that sender's ports, in place in the MailboxArena.
///
/// Concurrency contract: apply(v) is called by the shard that owns sender v,
/// so an implementation may keep per-port state (e.g. a delay stash) as long
/// as slots are only touched through the owning sender's ports.  Any decision
/// an implementation takes must be a pure function of (its own seed/plan,
/// round, sender, receiver) so trajectories are bit-identical for every shard
/// count.  begin_round runs on the driving thread between rounds and is the
/// only place an implementation may allocate (rebinding per-port state after
/// topology churn); steady-state apply() must not allocate.
class ChannelHook {
 public:
  virtual ~ChannelHook() = default;

  /// Driving thread, once per engine step, after the arena's port tables are
  /// rebuilt (if churned) and before any send.  `round` is the 0-based engine
  /// round about to execute.
  virtual void begin_round(const MailboxArena& arena, graph::GraphView g,
                           std::uint64_t round) = 0;

  /// Attack the validated outgoing ports of sender `v` for round `round`.
  /// Executed by shard `shard` inside the send phase.
  virtual void apply(MailboxArena& arena, graph::GraphView g,
                     graph::Vertex v, std::uint64_t round,
                     std::size_t shard) = 0;

  /// Static-lifetime label used in emitted fault events.
  [[nodiscard]] virtual const char* name() const noexcept { return "channel"; }

  /// Total channel fault events injected so far.  Implementations accumulate
  /// with relaxed atomics, so the sum is shard-count-independent.
  [[nodiscard]] virtual std::uint64_t events() const noexcept = 0;
};

}  // namespace agc::runtime
