#pragma once

#include <cstdint>
#include <string>

#include "agc/runtime/message.hpp"

/// \file transport.hpp
/// Communication models.  The transport validates every outgoing message
/// against the model's bandwidth and structure rules and feeds the metrics.
///
///   LOCAL      — unbounded messages (model of [49], [3], [22]).
///   CONGEST(B) — at most B bits per edge per round (B = O(log n) classically).
///   BIT        — 1 bit per edge per round (Bit-Round model of [43]).
///   SET_LOCAL  — broadcast-only, sender-anonymous; receivers see only the
///                multiset of neighbor values (weak LOCAL model of [33]).

namespace agc::runtime {

enum class Model : std::uint8_t { LOCAL, CONGEST, BIT, SET_LOCAL };

[[nodiscard]] std::string to_string(Model m);

class Transport {
 public:
  /// `congest_bits` is only meaningful for Model::CONGEST.
  explicit Transport(Model model, std::uint32_t congest_bits = 64)
      : model_(model), congest_bits_(congest_bits) {}

  [[nodiscard]] Model model() const noexcept { return model_; }
  [[nodiscard]] std::uint32_t congest_bits() const noexcept { return congest_bits_; }

  /// Maximum declared message width admitted on one edge in one round, or
  /// 0 for unbounded.
  [[nodiscard]] std::uint32_t width_cap() const noexcept;

  /// Throws std::logic_error if the outbox violates the model (over-wide
  /// message, or a directed send in SET_LOCAL).  Reads the arena-backed view
  /// in place — no message is copied for validation.
  void validate(const OutboxRef& out) const;

 private:
  Model model_;
  std::uint32_t congest_bits_;
};

}  // namespace agc::runtime
