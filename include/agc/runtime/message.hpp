#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

/// \file message.hpp
/// Messages and mailboxes for the synchronous round engine.
///
/// A message is a sequence of machine words, each with a *declared width in
/// bits*.  The transport accounts the summed width per edge per round
/// (CONGEST caps it at B bits, the Bit-Round model at 1 bit), so
/// bit-complexity results such as Lemma 5.2 are measured properties of an
/// execution, not assertions.  LOCAL-model algorithms (e.g. the line-graph
/// simulations of Section 4.2) may send arbitrarily many words per edge.

namespace agc::runtime {

struct Word {
  std::uint64_t value = 0;
  std::uint32_t bits = 64;  ///< declared width; must satisfy value < 2^bits

  friend bool operator==(const Word&, const Word&) = default;
};

/// Helper: the narrowest width that can carry `value`.
[[nodiscard]] constexpr std::uint32_t width_of(std::uint64_t value) noexcept {
  std::uint32_t w = 0;
  while (value != 0) {
    ++w;
    value >>= 1;
  }
  return w == 0 ? 1 : w;
}

/// Outgoing messages of one vertex for one round.  Ports are indices into the
/// vertex's (sorted) neighbor list.
class Outbox {
 public:
  Outbox() = default;  ///< zero ports; placeholder slot in pre-sized buffers
  explicit Outbox(std::size_t ports) : slots_(ports) {}

  /// Append one word to the message for the neighbor at `port`.
  void send(std::size_t port, Word w) {
    slots_[port].push_back(w);
    broadcast_only_ = false;
  }

  /// Send the same single word to every neighbor.  This is the only
  /// primitive available in the SET-LOCAL model.
  void broadcast(Word w) {
    for (auto& s : slots_) s.push_back(w);
  }

  [[nodiscard]] std::size_t ports() const noexcept { return slots_.size(); }
  [[nodiscard]] std::span<const Word> at(std::size_t port) const {
    return slots_[port];
  }
  [[nodiscard]] bool used_broadcast_only() const noexcept { return broadcast_only_; }

 private:
  std::vector<std::vector<Word>> slots_;
  bool broadcast_only_ = true;  ///< no directed send() has occurred
};

/// Incoming messages of one vertex for one round.
class Inbox {
 public:
  Inbox() = default;
  explicit Inbox(std::size_t ports) : slots_(ports) {}

  void deliver(std::size_t port, Word w) { slots_[port].push_back(w); }

  [[nodiscard]] std::size_t ports() const noexcept { return slots_.size(); }

  /// Message from the neighbor at `port` (empty if it sent nothing).
  [[nodiscard]] std::span<const Word> from_port(std::size_t port) const {
    return slots_[port];
  }

  /// First word from `port`, or `fallback` if none arrived.
  [[nodiscard]] std::uint64_t value_or(std::size_t port, std::uint64_t fallback) const {
    return slots_[port].empty() ? fallback : slots_[port].front().value;
  }

  /// SET-LOCAL view: the sorted multiset of first-word values, stripped of
  /// sender identity.  Algorithms that only use this view are directly
  /// executable in the SET-LOCAL model (Section 1.2.3 of the paper).
  [[nodiscard]] std::vector<std::uint64_t> multiset() const {
    std::vector<std::uint64_t> vals;
    vals.reserve(slots_.size());
    for (const auto& s : slots_) {
      if (!s.empty()) vals.push_back(s.front().value);
    }
    std::sort(vals.begin(), vals.end());
    return vals;
  }

 private:
  std::vector<std::vector<Word>> slots_;
};

}  // namespace agc::runtime
