#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "agc/graph/view.hpp"

/// \file message.hpp
/// Messages and the flat mailbox arena of the synchronous round engine.
///
/// A message is a sequence of machine words, each with a *declared width in
/// bits*.  The transport accounts the summed width per edge per round
/// (CONGEST caps it at B bits, the Bit-Round model at 1 bit), so
/// bit-complexity results such as Lemma 5.2 are measured properties of an
/// execution, not assertions.  LOCAL-model algorithms (e.g. the line-graph
/// simulations of Section 4.2) may send arbitrarily many words per edge.
///
/// Storage is one MailboxArena per engine, not one container per vertex: a
/// CSR offset table maps every directed edge (a *port* of its sender) to one
/// inline Word slot in a flat buffer, with a per-shard spill lane for the
/// rare ports that carry more than one word per round (LOCAL-model
/// multi-word messages).  The arena is sized from the graph's degree
/// structure once per topology (Graph::topology_version) and *reset — not
/// reallocated — each round*, so the steady-state round loop performs zero
/// heap allocations for bounded models.  Programs interact with it only
/// through the non-owning OutboxRef / InboxRef views below.

namespace agc::runtime {

struct Word {
  std::uint64_t value = 0;
  std::uint32_t bits = 64;  ///< declared width; must satisfy value < 2^bits

  friend bool operator==(const Word&, const Word&) = default;
};

/// Helper: the narrowest width that can carry `value`.
[[nodiscard]] constexpr std::uint32_t width_of(std::uint64_t value) noexcept {
  std::uint32_t w = 0;
  while (value != 0) {
    ++w;
    value >>= 1;
  }
  return w == 0 ? 1 : w;
}

class OutboxRef;
class InboxRef;

/// Flat CSR-backed mailbox storage for every vertex's outgoing messages of
/// one round.
///
/// Layout:
///   * `base_[v] .. base_[v+1]` are the global port indices of v, one per
///     directed edge (v, neighbor), in neighbor-sorted (port) order.
///   * Each port owns kInline Word slot(s) in `inline_`; the first word of a
///     port — all of it, for single-word protocols like every bounded-model
///     broadcast — lives there, with no indirection.
///   * A port that outgrows its inline slot relocates *wholly* into the spill
///     lane of the shard that owns its sender, so `words()` always returns
///     one contiguous span.  Runs grow geometrically and lane buffers are
///     never shrunk, so spill allocation stops once the protocol's message
///     sizes stabilize.
///   * `peer_port_[base_[v] + p]` is the global port of v in its p-th
///     neighbor's table — the precomputed reverse-port map that lets
///     delivery and InboxRef read the sender's words directly (no per-round
///     binary search, no copy).
///
/// Concurrency contract (matches docs/EXEC.md): during the send phase, shard
/// s writes only the ports of its own contiguous vertex range and only lane
/// s; after the send barrier the arena is read-only until the next round's
/// send phase resets it.  Port *contents* are therefore independent of the
/// shard count; only the (unobservable) lane layout varies.
///
/// Dynamic topology: the arena is rebuilt from the graph whenever
/// Graph::topology_version() changes (adversarial add_edge / remove_edge /
/// add_vertex / reset_vertex between rounds), so port tables never go stale
/// — see the churn regression tests in tests/test_mailbox_arena.cpp.  Views
/// handed to a program are valid only within the callback that received
/// them.
///
/// Two-epoch mode (dependency-driven executors, docs/EXEC.md): set_async(true)
/// gives every port *two* header/inline slots, indexed by round parity, so the
/// messages of rounds r and r+1 coexist with no copy.  Two slots suffice
/// because neighboring vertices' epochs never differ by more than one: before
/// a sender may overwrite its parity-p slot (round r+2) every neighbor must
/// have finished reading round r from that slot — the readiness rule forces
/// it.  Spilled ports use a per-slot stable run (`runs_`) instead of the
/// shard lanes, because lanes grow by reallocation and in async mode
/// neighbors read the arena while the owner shard is still writing other
/// ports.  BSP mode (stride 1) keeps the exact layout and behavior above.
class MailboxArena {
 public:
  static constexpr std::uint32_t kInline = 1;       ///< words per port, inline
  static constexpr std::uint32_t kNoLane = 0xffffffffu;
  /// Sentinel lane id: the slot's words live in its own stable run (`runs_`),
  /// used for every spill in two-epoch mode.
  static constexpr std::uint32_t kAsyncLane = 0xfffffffeu;

  /// Rebuild the port tables iff the graph's topology changed since the last
  /// call.  O(1) when unchanged; O(n + m) after churn.
  void ensure(graph::GraphView g) {
    if (built_ && version_ == g.topology_version()) return;
    rebuild(g);
  }

  /// Switch between the one-epoch (BSP) and two-epoch (dependency-driven)
  /// port layouts.  A mode change forces a rebuild on the next ensure().
  void set_async(bool on) noexcept {
    const std::uint32_t stride = on ? 2u : 1u;
    if (stride == stride_) return;
    stride_ = stride;
    built_ = false;
  }
  [[nodiscard]] bool two_epoch() const noexcept { return stride_ == 2; }

  /// The parity slot round `round` publishes into (always 0 in BSP mode).
  [[nodiscard]] std::uint32_t parity_for(std::uint64_t round) const noexcept {
    return stride_ == 2 ? static_cast<std::uint32_t>(round & 1) : 0;
  }

  /// Size the per-shard spill lanes and multiset scratch.  Allocation happens
  /// only when the shard count changes (executors call this every round).
  void ensure_shards(std::size_t shards) {
    if (lanes_.size() < shards) lanes_.resize(shards);
    if (scratch_.size() < shards) scratch_.resize(shards);
  }

  /// Reset the spill lane of `shard` for a new round (capacity retained).
  void begin_shard(std::size_t shard) noexcept { lanes_[shard].used = 0; }

  /// Reset all ports of sender `v` in the `parity` slot (called by v's shard
  /// before on_send).
  void reset_ports(graph::Vertex v, std::uint32_t parity = 0) noexcept {
    for (std::uint32_t gp = base_[v]; gp < base_[v + 1]; ++gp) {
      Port& h = headers_[slot(gp, parity)];
      h.count = 0;
      h.lane = kNoLane;
    }
  }

  /// Append one word to the message at global port `gp`, spilling into
  /// `shard`'s lane (BSP) or the slot's stable run (two-epoch) when the
  /// inline slot is full.
  void push(std::uint32_t gp, std::size_t shard, Word w,
            std::uint32_t parity = 0) {
    const std::uint32_t sl = slot(gp, parity);
    Port& h = headers_[sl];
    if (h.lane == kNoLane) {
      if (h.count < kInline) {
        inline_[sl * kInline + h.count++] = w;
        return;
      }
      spill(sl, shard);
    } else if (h.count == h.cap) {
      grow(sl, shard);
    }
    Port& hh = headers_[sl];  // spill/grow rewrote the header
    Word* buf =
        hh.lane == kAsyncLane ? runs_[sl].data() : lanes_[hh.lane].buf.data();
    buf[hh.begin + hh.count++] = w;
  }

  /// The words queued at global port `gp` for the round of `parity` (always
  /// contiguous).
  [[nodiscard]] std::span<const Word> words(
      std::uint32_t gp, std::uint32_t parity = 0) const noexcept {
    const std::uint32_t sl = slot(gp, parity);
    const Port& h = headers_[sl];
    if (h.count == 0) return {};
    const Word* p = h.lane == kNoLane      ? &inline_[sl * kInline]
                    : h.lane == kAsyncLane ? runs_[sl].data() + h.begin
                                           : &lanes_[h.lane].buf[h.begin];
    return {p, h.count};
  }

  // --- Channel-fault mutation (runtime::ChannelHook implementations) -------
  // A hook runs inside the send phase on the shard that owns the sender, so
  // these touch only state that shard already owns; see transport.hpp.

  /// Mutable view of the words at `gp` (corrupt-in-place).
  [[nodiscard]] std::span<Word> words_mutable(std::uint32_t gp,
                                              std::uint32_t parity = 0) noexcept {
    const std::uint32_t sl = slot(gp, parity);
    const Port& h = headers_[sl];
    if (h.count == 0) return {};
    Word* p = h.lane == kNoLane      ? &inline_[sl * kInline]
              : h.lane == kAsyncLane ? runs_[sl].data() + h.begin
                                     : &lanes_[h.lane].buf[h.begin];
    return {p, h.count};
  }

  /// Drop everything queued at `gp` this round.  The spill run (if any) stays
  /// accounted in its lane until the next round's reset — capacity, not
  /// contents, so nothing leaks.
  void clear_port(std::uint32_t gp, std::uint32_t parity = 0) noexcept {
    Port& h = headers_[slot(gp, parity)];
    h.count = 0;
    h.lane = kNoLane;
  }

  /// Copy every port of `v` from parity slot `from` into the other parity
  /// slot.  A vertex that halts mid-window calls this once so readers of
  /// every future epoch keep seeing its final message.  Safe without locks:
  /// once v has completed receive of the epoch it halts at, every neighbor
  /// has already consumed the destination parity's previous contents (the
  /// readiness rule — see docs/EXEC.md).
  void mirror_port_epochs(graph::Vertex v, std::uint32_t from) {
    assert(stride_ == 2);
    for (std::uint32_t gp = base_[v]; gp < base_[v + 1]; ++gp) {
      const std::uint32_t src = slot(gp, from);
      const std::uint32_t dst = slot(gp, 1u - from);
      const Port& hs = headers_[src];
      Port& hd = headers_[dst];
      if (hs.lane == kNoLane) {
        for (std::uint32_t i = 0; i < hs.count; ++i) {
          inline_[dst * kInline + i] = inline_[src * kInline + i];
        }
        hd.count = hs.count;
        hd.lane = kNoLane;
      } else {
        auto& run = runs_[dst];
        if (run.size() < hs.count) run.resize(hs.count);
        const auto w = words(gp, from);
        std::copy(w.begin(), w.end(), run.begin());
        hd.count = hs.count;
        hd.lane = kAsyncLane;
        hd.begin = 0;
        hd.cap = static_cast<std::uint32_t>(run.size());
      }
    }
  }

  /// Grow lane `shard` to at least `words` total capacity up front, so a
  /// channel hook's in-round pushes (duplicate / delayed arrivals) never
  /// reallocate mid-phase.  No-op once the lane is big enough — the
  /// steady-state guarantee of test_alloc_hook.
  void reserve_lane(std::size_t shard, std::size_t words) {
    if (lanes_[shard].buf.size() < words) lanes_[shard].buf.resize(words);
  }

  [[nodiscard]] std::size_t n() const noexcept { return base_.size() - 1; }
  [[nodiscard]] std::uint32_t base(graph::Vertex v) const noexcept {
    return base_[v];
  }
  [[nodiscard]] std::uint32_t ports(graph::Vertex v) const noexcept {
    return base_[v + 1] - base_[v];
  }
  /// Reverse-port table slice for receiver `v`: entry p is the global port
  /// of v at its p-th neighbor.
  [[nodiscard]] const std::uint32_t* peer_ports(graph::Vertex v) const noexcept {
    return peer_port_.data() + base_[v];
  }

  [[nodiscard]] std::vector<std::uint64_t>& scratch(std::size_t shard) noexcept {
    return scratch_[shard];
  }

  [[nodiscard]] OutboxRef outbox(graph::Vertex v, std::size_t shard,
                                 std::uint32_t parity = 0) noexcept;
  [[nodiscard]] InboxRef inbox(graph::Vertex v, std::size_t shard,
                               std::uint32_t parity = 0) noexcept;

  // --- Introspection (tests, allocation accounting) ------------------------

  /// Words currently held in spill runs (partition-independent: a port's
  /// contents never depend on the shard layout).
  [[nodiscard]] std::uint64_t spilled_words() const noexcept {
    std::uint64_t total = 0;
    for (const Port& h : headers_)
      if (h.lane != kNoLane) total += h.count;
    return total;
  }
  /// Sum of lane run capacities in use this round (partition-*dependent*;
  /// deterministic for a fixed shard count).
  [[nodiscard]] std::uint64_t lane_words_used() const noexcept {
    std::uint64_t total = 0;
    for (const Lane& l : lanes_) total += l.used;
    return total;
  }
  /// Heap capacity currently reserved across all spill lanes.
  [[nodiscard]] std::uint64_t lane_capacity() const noexcept {
    std::uint64_t total = 0;
    for (const Lane& l : lanes_) total += l.buf.size();
    return total;
  }
  [[nodiscard]] std::uint64_t topology_version() const noexcept {
    return version_;
  }

 private:
  struct Port {
    std::uint32_t count = 0;
    std::uint32_t lane = kNoLane;  ///< kNoLane = inline storage
    std::uint32_t begin = 0;       ///< run offset in lanes_[lane].buf
    std::uint32_t cap = 0;         ///< run capacity (spilled ports only)
  };
  struct Lane {
    std::vector<Word> buf;  ///< grows geometrically, never shrinks
    std::size_t used = 0;   ///< high-water mark of this round's runs
  };

  /// Header/inline index of port `gp`'s `parity` slot (gp itself in BSP mode).
  [[nodiscard]] std::uint32_t slot(std::uint32_t gp,
                                   std::uint32_t parity) const noexcept {
    return gp * stride_ + parity;
  }

  void rebuild(graph::GraphView g);
  void spill(std::uint32_t sl, std::size_t shard);  // inline slot -> run
  void grow(std::uint32_t sl, std::size_t shard);   // double a full run

  std::vector<std::uint32_t> base_;       ///< n+1 CSR port offsets
  std::vector<std::uint32_t> peer_port_;  ///< reverse-port map, 2m entries
  std::vector<Port> headers_;             ///< per-slot state, 2m * stride
  std::vector<Word> inline_;              ///< kInline words per slot
  std::vector<Lane> lanes_;               ///< one spill lane per shard (BSP)
  std::vector<std::vector<Word>> runs_;   ///< stable per-slot spills (async)
  std::vector<std::vector<std::uint64_t>> scratch_;  ///< multiset, per shard
  std::uint32_t stride_ = 1;              ///< slots per port: 1 BSP, 2 async
  std::uint64_t version_ = 0;
  bool built_ = false;
};

/// Non-owning view of one vertex's outgoing ports for one round.  Ports are
/// indices into the vertex's (sorted) neighbor list.  Valid only inside the
/// on_send callback it was created for.
class OutboxRef {
 public:
  OutboxRef(MailboxArena& arena, std::uint32_t base, std::uint32_t ports,
            std::size_t shard, std::uint32_t parity = 0) noexcept
      : arena_(&arena), base_(base), ports_(ports), shard_(shard),
        parity_(parity) {}

  /// Append one word to the message for the neighbor at `port`.
  void send(std::size_t port, Word w) {
    assert(port < ports_);
    arena_->push(base_ + static_cast<std::uint32_t>(port), shard_, w, parity_);
    broadcast_only_ = false;
  }

  /// Send the same single word to every neighbor.  This is the only
  /// primitive available in the SET-LOCAL model.
  void broadcast(Word w) {
    for (std::uint32_t p = 0; p < ports_; ++p)
      arena_->push(base_ + p, shard_, w, parity_);
  }

  [[nodiscard]] std::size_t ports() const noexcept { return ports_; }
  [[nodiscard]] std::span<const Word> at(std::size_t port) const {
    return arena_->words(base_ + static_cast<std::uint32_t>(port), parity_);
  }
  [[nodiscard]] bool used_broadcast_only() const noexcept {
    return broadcast_only_;
  }

 private:
  MailboxArena* arena_;
  std::uint32_t base_;
  std::uint32_t ports_;
  std::size_t shard_;
  std::uint32_t parity_;
  bool broadcast_only_ = true;  ///< no directed send() has occurred
};

/// Non-owning view of one vertex's incoming ports for one round: reads the
/// senders' words in place through the arena's reverse-port map (delivery
/// copies nothing).  Valid only inside the on_receive callback it was
/// created for — after the adversary churns topology between rounds the
/// arena rebuilds its port tables, so views never see stale ports.
class InboxRef {
 public:
  InboxRef(const MailboxArena& arena, const std::uint32_t* peer_ports,
           std::uint32_t ports, std::vector<std::uint64_t>& scratch,
           std::uint32_t parity = 0) noexcept
      : arena_(&arena), peer_(peer_ports), ports_(ports), scratch_(&scratch),
        parity_(parity) {}

  [[nodiscard]] std::size_t ports() const noexcept { return ports_; }

  /// Message from the neighbor at `port` (empty if it sent nothing).
  [[nodiscard]] std::span<const Word> from_port(std::size_t port) const {
    assert(port < ports_);
    return arena_->words(peer_[port], parity_);
  }

  /// First word from `port`, or `fallback` if none arrived.
  [[nodiscard]] std::uint64_t value_or(std::size_t port,
                                       std::uint64_t fallback) const {
    const auto w = from_port(port);
    return w.empty() ? fallback : w.front().value;
  }

  /// SET-LOCAL view: the sorted multiset of first-word values, stripped of
  /// sender identity.  Algorithms that only use this view are directly
  /// executable in the SET-LOCAL model (Section 1.2.3 of the paper).  The
  /// values are materialized into the shard's reusable scratch buffer, so
  /// the returned span is invalidated by the next multiset() call on this
  /// shard (i.e. by the next vertex's on_receive).
  [[nodiscard]] std::span<const std::uint64_t> multiset() const {
    auto& vals = *scratch_;
    vals.clear();
    for (std::uint32_t p = 0; p < ports_; ++p) {
      const auto w = arena_->words(peer_[p], parity_);
      if (!w.empty()) vals.push_back(w.front().value);
    }
    std::sort(vals.begin(), vals.end());
    return vals;
  }

 private:
  const MailboxArena* arena_;
  const std::uint32_t* peer_;
  std::uint32_t ports_;
  std::vector<std::uint64_t>* scratch_;
  std::uint32_t parity_;
};

inline OutboxRef MailboxArena::outbox(graph::Vertex v, std::size_t shard,
                                      std::uint32_t parity) noexcept {
  return OutboxRef(*this, base_[v], ports(v), shard, parity);
}

inline InboxRef MailboxArena::inbox(graph::Vertex v, std::size_t shard,
                                    std::uint32_t parity) noexcept {
  return InboxRef(*this, peer_ports(v), ports(v), scratch_[shard], parity);
}

}  // namespace agc::runtime
