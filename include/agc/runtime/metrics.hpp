#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

/// \file metrics.hpp
/// Execution accounting: rounds, messages, and bits.  Bits are attributed per
/// directed message using the sender's declared width, so "bits per edge"
/// (Lemma 5.2) is `total_bits / (2 * m)` for a both-directions protocol.

namespace agc::runtime {

struct Metrics {
  std::size_t rounds = 0;
  std::uint64_t messages = 0;     ///< directed messages delivered
  std::uint64_t total_bits = 0;   ///< sum of declared widths
  std::uint64_t max_edge_bits = 0;  ///< max bits sent over a single directed edge, cumulative

  void reset() { *this = Metrics{}; }

  /// Deterministic reduce, used both for per-shard accounting (the parallel
  /// executor folds one Metrics per shard, in shard order) and for stage
  /// accumulation (run_stages, the pipelines).  Counters add; max_edge_bits
  /// is a maximum — summing it would double-count the heaviest edge.
  void merge(const Metrics& other) {
    rounds += other.rounds;
    messages += other.messages;
    total_bits += other.total_bits;
    max_edge_bits = std::max(max_edge_bits, other.max_edge_bits);
  }

  [[nodiscard]] double bits_per_message() const {
    return messages == 0 ? 0.0 : static_cast<double>(total_bits) / messages;
  }

  [[nodiscard]] std::string summary() const;
};

/// Cumulative bits per directed edge, stored per *receiver*.  Each directed
/// edge u->v lives in the bucket of v, so a parallel executor that shards
/// delivery by receiver updates the ledger without any synchronization: a
/// bucket is only ever touched by the one shard that owns its receiver.
/// Buckets are degree-sized, so the linear sender scan beats a hash map.
class EdgeBitLedger {
 public:
  /// Grow to cover receivers [0, n).  Never shrinks: the ledger is a
  /// cumulative record, entries survive edge removal (as they did when this
  /// was a flat map keyed by directed edge).
  void ensure(std::size_t n) {
    if (by_receiver_.size() < n) by_receiver_.resize(n);
  }

  /// Accumulate `bits` onto the directed edge sender->receiver and return
  /// the new cumulative total for that edge.
  std::uint64_t add(std::uint32_t sender, std::uint32_t receiver,
                    std::uint64_t bits) {
    auto& bucket = by_receiver_[receiver];
    for (auto& [s, acc] : bucket) {
      if (s == sender) return acc += bits;
    }
    bucket.emplace_back(sender, bits);
    return bits;
  }

  [[nodiscard]] std::uint64_t get(std::uint32_t sender,
                                  std::uint32_t receiver) const {
    if (receiver >= by_receiver_.size()) return 0;
    for (const auto& [s, acc] : by_receiver_[receiver]) {
      if (s == sender) return acc;
    }
    return 0;
  }

 private:
  std::vector<std::vector<std::pair<std::uint32_t, std::uint64_t>>> by_receiver_;
};

}  // namespace agc::runtime
