#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

/// \file metrics.hpp
/// Execution accounting: rounds, messages, and bits.  Bits are attributed per
/// directed message using the sender's declared width, so "bits per edge"
/// (Lemma 5.2) is `total_bits / (2 * m)` for a both-directions protocol.

namespace agc::runtime {

struct Metrics {
  std::size_t rounds = 0;
  std::uint64_t messages = 0;     ///< directed messages delivered
  std::uint64_t total_bits = 0;   ///< sum of declared widths
  std::uint64_t max_edge_bits = 0;  ///< max bits sent over a single directed edge, cumulative

  void reset() { *this = Metrics{}; }

  [[nodiscard]] double bits_per_message() const {
    return messages == 0 ? 0.0 : static_cast<double>(total_bits) / messages;
  }

  [[nodiscard]] std::string summary() const;
};

}  // namespace agc::runtime
