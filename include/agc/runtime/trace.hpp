#pragma once

#include <ostream>
#include <vector>

#include "agc/graph/checks.hpp"
#include "agc/graph/view.hpp"
#include "agc/runtime/iterative.hpp"

/// \file trace.hpp
/// Per-round convergence traces for locally-iterative runs: palette size,
/// number of finalized vertices and monochromatic edges after every round.
/// Plug a TraceRecorder into IterativeOptions::on_round and dump CSV, or
/// print an ASCII convergence curve.

namespace agc::runtime {

struct RoundTracePoint {
  std::size_t round = 0;
  std::size_t distinct_colors = 0;
  std::size_t finalized = 0;
  std::size_t monochromatic_edges = 0;  ///< 0 whenever the coloring is proper
};

class TraceRecorder {
 public:
  /// `is_final` mirrors the rule's predicate (passed separately so the
  /// recorder stays independent of the rule object's lifetime).
  TraceRecorder(graph::GraphView g, std::function<bool(Color)> is_final)
      : g_(g), is_final_(std::move(is_final)) {}

  /// The observer to install into IterativeOptions::on_round.
  [[nodiscard]] std::function<void(std::size_t, std::span<const Color>)> observer() {
    return [this](std::size_t round, std::span<const Color> colors) {
      record(round, colors);
    };
  }

  void record(std::size_t round, std::span<const Color> colors);

  [[nodiscard]] const std::vector<RoundTracePoint>& points() const noexcept {
    return points_;
  }

  /// CSV: round,distinct_colors,finalized,monochromatic_edges
  void write_csv(std::ostream& out) const;

  /// A terminal-friendly curve of palette size per round.
  void write_ascii(std::ostream& out, std::size_t width = 60) const;

 private:
  graph::GraphView g_;
  std::function<bool(Color)> is_final_;
  std::size_t offset_ = 0;  ///< cumulative rounds across pipeline stages
  std::vector<RoundTracePoint> points_;
};

}  // namespace agc::runtime
