#pragma once

#include <cstdint>
#include <limits>

#include "agc/graph/generators.hpp"
#include "agc/runtime/engine.hpp"

/// \file faults.hpp
/// The adversary of the fully-dynamic self-stabilizing setting (Section 4).
///
/// Between rounds the adversary may overwrite any RAM word of any vertex with
/// any value, insert or delete edges, and crash/recover vertices — the only
/// promises are that the bounds on n and Delta hold and that faults
/// eventually stop.  Stabilization time is measured from the last adversary
/// event.
///
/// Two layers live here: the low-level `Adversary` toolbox of fault
/// primitives (corrupt / clone / churn), and the `FaultAdversary` hook that
/// RunOptions threads through every entry point — iterative, pipeline, edge
/// and selfstab runs alike — so fault injection is no longer a selfstab-only
/// capability driven by hand.

namespace agc::runtime {

/// What one injected fault did.  The engine's adversary interface records
/// RAM/topology kinds with the engine round they happened *after*; channel
/// hooks record wire kinds with the 0-based round they happened *inside*.
/// The two domains replay at different points of the round loop, so a plan
/// orders them independently (see faultlab/plan.hpp).
enum class FaultKind : std::uint8_t {
  Ram = 0,      ///< RAM word `word` of vertex v overwritten with `value`
  AddEdge,      ///< edge {u, v} inserted
  RemoveEdge,   ///< edge {u, v} deleted
  ResetVertex,  ///< vertex v crashed/recovered (edges dropped, program reset)
  AddVertex,    ///< a fresh vertex appended (its id is `v`)
  Drop,         ///< message u -> v discarded on the wire
  Corrupt,      ///< bit `value` of word `word` of message u -> v flipped
  Duplicate,    ///< word `word` of message u -> v delivered twice
  Delay,        ///< message u -> v held back one round
  Lie,          ///< word 0 of message u -> v replaced with `value` (same width)
};

[[nodiscard]] const char* to_string(FaultKind k) noexcept;
[[nodiscard]] constexpr bool is_channel_fault(FaultKind k) noexcept {
  return k >= FaultKind::Drop;
}

/// One fault, fully determined: replaying the same record reproduces the
/// same mutation.  Trivially copyable so recording never allocates per event.
struct FaultEvent {
  std::uint64_t round = 0;  ///< engine round (see FaultKind for the anchor)
  FaultKind kind = FaultKind::Ram;
  std::uint32_t u = 0;      ///< channel sender / edge endpoint (else unused)
  std::uint32_t v = 0;      ///< vertex / channel receiver / edge endpoint
  std::uint32_t word = 0;   ///< RAM word index, or word index within a message
  std::uint64_t value = 0;  ///< RAM value, or flipped bit index for Corrupt

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Recording hook: the engine calls record() from its adversary-interface
/// methods (corrupt_ram / add_edge / remove_edge / reset_vertex /
/// add_vertex), channel hooks call it from apply().  Channel records arrive
/// from executor shards concurrently, so implementations must be
/// thread-safe; faultlab::FaultPlanRecorder is the canonical one.
class FaultEventSink {
 public:
  virtual ~FaultEventSink() = default;
  virtual void record(const FaultEvent& event) = 0;
};

class Adversary {
 public:
  explicit Adversary(std::uint64_t seed) : rng_(seed) {}

  /// Overwrite RAM word `word` of `count` random vertices with random values
  /// in [0, value_range).
  void corrupt_random(Engine& engine, std::size_t count, std::uint64_t value_range,
                      std::size_t word = 0);

  /// Worst-case color fault: copy a random neighbor's RAM word into the
  /// vertex, guaranteeing a monochromatic edge.  `count` random vertices.
  void clone_neighbor(Engine& engine, std::size_t count, std::size_t word = 0);

  /// Insert up to `adds` random edges (respecting the degree cap `dmax`) and
  /// delete up to `removes` random existing edges.
  void churn_edges(Engine& engine, std::size_t adds, std::size_t removes,
                   std::size_t dmax);

  /// Crash/recover `count` random vertices: all incident edges drop and the
  /// program restarts from scratch, then reconnect each with up to
  /// `reconnect` random edges under the degree cap.
  void churn_vertices(Engine& engine, std::size_t count, std::size_t reconnect,
                      std::size_t dmax);

  [[nodiscard]] std::size_t events() const noexcept { return events_; }

 private:
  graph::Rng rng_;
  std::size_t events_ = 0;
};

/// The hook RunOptions::adversary points at.  Runners call inject() between
/// rounds (after deliver/receive, before the next send) with the 1-based
/// index of the round that just completed; the return value is the number of
/// fault events injected this call, which the runner adds to
/// RunReport::fault_events and uses to decide whether stabilization clocks
/// must reset.
///
/// Implementations may mutate RAM words and churn edges; runners that mirror
/// program state (e.g. the iterative harness) resynchronize after a non-zero
/// return.  Adding vertices mid-run is only supported by the selfstab
/// runners.
class FaultAdversary {
 public:
  virtual ~FaultAdversary() = default;

  virtual std::size_t inject(Engine& engine, std::size_t round) = 0;

  /// Static-lifetime label used in emitted fault events.
  [[nodiscard]] virtual const char* name() const noexcept { return "adversary"; }
};

/// Deterministic, seeded adversary that fires every `period` rounds up to
/// `last_round` (inclusive), then goes quiet — matching the paper's promise
/// that faults eventually stop.  Each firing applies the configured mix of
/// primitives from the `Adversary` toolbox.
///
/// Boundary semantics (pinned by tests/test_faultlab.cpp):
///   * Runners pass the 1-based index of the round that just completed, and
///     inject() additionally guards round == 0 — so "round % period == 0"
///     NEVER fires before the first round, for any period.
///   * `last_round` quiescence is inclusive: a round equal to last_round
///     still fires (if the period divides it); last_round + 1 never does.
///   * Every primitive the toolbox applies counts exactly one event —
///     including the reconnect edges of churn_vertices — so after any
///     multi-stage RunReport::absorb() rollup, fault_events equals
///     Adversary::events().
class PeriodicAdversary final : public FaultAdversary {
 public:
  struct Schedule {
    std::size_t period = 1;       ///< fire when round % period == 0 (round >= 1)
    std::size_t last_round =      ///< quiesce after this round (inclusive)
        std::numeric_limits<std::size_t>::max();
    std::size_t corrupt = 0;        ///< vertices to corrupt_random per firing
    std::uint64_t value_range = 0;  ///< corruption value range (0 = full word)
    std::size_t clones = 0;         ///< vertices to clone_neighbor per firing
    std::size_t edge_adds = 0;      ///< edges to insert per firing
    std::size_t edge_removes = 0;   ///< edges to delete per firing
    std::size_t dmax = 0;           ///< degree cap for edge churn
  };

  PeriodicAdversary(std::uint64_t seed, Schedule schedule)
      : adversary_(seed), schedule_(schedule) {}

  std::size_t inject(Engine& engine, std::size_t round) override;

  [[nodiscard]] const char* name() const noexcept override { return "periodic"; }

  [[nodiscard]] const Schedule& schedule() const noexcept { return schedule_; }
  [[nodiscard]] std::size_t total_events() const noexcept {
    return adversary_.events();
  }

 private:
  Adversary adversary_;
  Schedule schedule_;
};

}  // namespace agc::runtime
