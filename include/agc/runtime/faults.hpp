#pragma once

#include <cstdint>

#include "agc/graph/generators.hpp"
#include "agc/runtime/engine.hpp"

/// \file faults.hpp
/// The adversary of the fully-dynamic self-stabilizing setting (Section 4).
///
/// Between rounds the adversary may overwrite any RAM word of any vertex with
/// any value, insert or delete edges, and crash/recover vertices — the only
/// promises are that the bounds on n and Delta hold and that faults
/// eventually stop.  Stabilization time is measured from the last adversary
/// event.

namespace agc::runtime {

class Adversary {
 public:
  explicit Adversary(std::uint64_t seed) : rng_(seed) {}

  /// Overwrite RAM word `word` of `count` random vertices with random values
  /// in [0, value_range).
  void corrupt_random(Engine& engine, std::size_t count, std::uint64_t value_range,
                      std::size_t word = 0);

  /// Worst-case color fault: copy a random neighbor's RAM word into the
  /// vertex, guaranteeing a monochromatic edge.  `count` random vertices.
  void clone_neighbor(Engine& engine, std::size_t count, std::size_t word = 0);

  /// Insert up to `adds` random edges (respecting the degree cap `dmax`) and
  /// delete up to `removes` random existing edges.
  void churn_edges(Engine& engine, std::size_t adds, std::size_t removes,
                   std::size_t dmax);

  /// Crash/recover `count` random vertices: all incident edges drop and the
  /// program restarts from scratch, then reconnect each with up to
  /// `reconnect` random edges under the degree cap.
  void churn_vertices(Engine& engine, std::size_t count, std::size_t reconnect,
                      std::size_t dmax);

  [[nodiscard]] std::size_t events() const noexcept { return events_; }

 private:
  graph::Rng rng_;
  std::size_t events_ = 0;
};

}  // namespace agc::runtime
