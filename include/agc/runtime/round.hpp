#pragma once

#include <memory>
#include <span>
#include <vector>

#include "agc/obs/phase_timer.hpp"
#include "agc/runtime/engine.hpp"

/// \file round.hpp
/// One synchronous round, decomposed into shardable phases.
///
/// The engine delegates each round to a RoundExecutor.  Both backends — the
/// in-tree SequentialExecutor and the thread-pool ParallelExecutor in
/// `src/exec` — drive the *same* RoundContext phase methods, so validation
/// and accounting live in exactly one place.
///
/// Shard-determinism contract (see docs/EXEC.md):
///   * Vertices are partitioned into contiguous shards.  send() and
///     receive() touch only the programs/envs/ports of their own shard
///     (plus, for receive, read-only views of the frozen arena), so
///     concurrent shards never alias writable state.
///   * deliver() is sharded by *receiver*: shard [b, e) walks, for each of
///     its receivers v in ascending order and each port p of v in ascending
///     order, the words its neighbor queued for v — reading them in place
///     through the arena's reverse-port map.  Accounting per (sender,
///     receiver) edge happens in exactly the order the sequential engine
///     uses, so delivery is bit-identical for every shard count, including 1.
///   * Accounting is folded per shard into a local Metrics and reduced in
///     shard order (Metrics::merge: sums for counters, max for
///     max_edge_bits), so metrics are bit-identical too.

namespace agc::runtime {

/// Recompute the ROM view of `v` for round `round`.  Shared by the engine's
/// topology-change hooks and the per-round send phase.
void refresh_vertex_env(graph::GraphView g, const EngineOptions& opts,
                        std::uint64_t round, graph::Vertex v, VertexEnv& env);

/// All state one round touches.  Messages live in the engine's MailboxArena;
/// the context only hands out views.  Phase methods accept a vertex range
/// plus the executing shard's id so executors can shard them; ranges passed
/// to one phase must partition [0, n) between its barriers, and the same
/// shard id must always own the same range within a round.
class RoundContext {
 public:
  RoundContext(graph::GraphView graph, const Transport& transport,
               const EngineOptions& opts,
               std::vector<std::unique_ptr<VertexProgram>>& programs,
               std::vector<VertexEnv>& envs, EdgeBitLedger& ledger,
               MailboxArena& arena, std::uint64_t round,
               obs::PhaseProfile* profile = nullptr,
               ChannelHook* channel = nullptr);

  [[nodiscard]] std::size_t n() const noexcept { return graph_.n(); }

  /// Null unless this round collects phase timings.  Shard s's phase methods
  /// accumulate into profile()->shard(s); executors use it for barrier
  /// accounting (into the extra set, driving thread only).
  [[nodiscard]] obs::PhaseProfile* profile() const noexcept { return profile_; }

  /// Called once per round by the executor before any phase: sizes the
  /// arena's per-shard lanes and scratch (no-op at steady state).
  void prepare(std::size_t shards) {
    arena_.ensure_shards(shards);
    if (profile_ != nullptr) profile_->ensure_shards(shards);
  }

  /// Phase 1: refresh envs, reset the shard's ports and spill lane, collect
  /// and validate outgoing messages of senders [begin, end).  When a channel
  /// hook is installed it attacks each sender's validated ports right here,
  /// still inside the shard that owns them — faults need no extra phase or
  /// barrier, and the per-sender order is identical for every shard count.
  void send(graph::Vertex begin, graph::Vertex end, std::size_t shard);

  /// Phase 2: account every message addressed to receivers [begin, end),
  /// folding into `metrics`, executed by shard `shard`.  Reads the frozen
  /// arena in place — nothing is copied.  Requires send() to have completed
  /// for ALL vertices (the executor's barrier).
  void deliver(graph::Vertex begin, graph::Vertex end, Metrics& metrics,
               std::size_t shard);

  /// Fold per-shard deliver() accounting into `total`, in shard order.
  static void reduce(std::span<const Metrics> shards, Metrics& total);

  /// Phase 3: state updates of vertices [begin, end).  Requires deliver()
  /// to have completed for the same range (receive reads the whole frozen
  /// arena through inbox views; executors barrier globally).
  void receive(graph::Vertex begin, graph::Vertex end, std::size_t shard);

  // --- Dependency-driven (async) per-vertex phases -------------------------
  // Used by executors whose dependency_driven() is true: the arena is in
  // two-epoch mode and `round` is the absolute round the vertex is firing
  // (base_round() + its window-local epoch), which selects the parity slot.
  // Each method touches only vertex-owned state — v's parity ports, env and
  // program for send/receive, and v's receiver bucket of the ledger for
  // deliver — so shards interleave them freely; the *executor* supplies the
  // ordering guarantee that all of v's in-neighbors have published `round`
  // before deliver/receive run (the readiness rule, docs/EXEC.md).

  /// Reset v's parity ports, refresh its env for `round`, run on_send,
  /// validate, and apply the channel hook.  Always enabled.
  void send_vertex(graph::Vertex v, std::size_t shard, std::uint64_t round);

  /// Account every message addressed to v for `round` into `metrics`.
  void deliver_vertex(graph::Vertex v, Metrics& metrics, std::uint64_t round);

  /// Run v's on_receive over the `round`-parity inbox.
  void receive_vertex(graph::Vertex v, std::size_t shard, std::uint64_t round);

  /// Whether v's program reports halted() (per-vertex early exit from a
  /// dependency-driven window).
  [[nodiscard]] bool vertex_halted(graph::Vertex v) const {
    return programs_[v]->halted(envs_[v]);
  }

  /// Mirror v's `round`-parity ports into the other parity slot, so readers
  /// of every later epoch keep seeing the halted vertex's final message.
  void mirror_vertex(graph::Vertex v, std::uint64_t round);

  /// The absolute round number of window-local epoch 0.
  [[nodiscard]] std::uint64_t base_round() const noexcept { return round_; }
  [[nodiscard]] graph::GraphView graph() const noexcept { return graph_; }

 private:
  graph::GraphView graph_;
  const Transport& transport_;
  const EngineOptions& opts_;
  std::vector<std::unique_ptr<VertexProgram>>& programs_;
  std::vector<VertexEnv>& envs_;
  EdgeBitLedger& ledger_;
  MailboxArena& arena_;
  std::uint64_t round_;
  obs::PhaseProfile* profile_;
  ChannelHook* channel_;
};

/// Execution backend interface: runs the three phases of one round with
/// whatever parallelism it owns, honoring the barriers between phases.
class RoundExecutor {
 public:
  virtual ~RoundExecutor() = default;

  /// OS threads this executor runs vertex programs on (1 = sequential).
  [[nodiscard]] virtual std::size_t threads() const noexcept = 0;

  /// Execute one full round, folding accounting into `total`.
  virtual void round(RoundContext& ctx, Metrics& total) = 0;

  /// True when this backend fires vertices on per-vertex readiness instead
  /// of global phase barriers.  The engine switches the mailbox arena into
  /// two-epoch mode for such executors.
  [[nodiscard]] virtual bool dependency_driven() const noexcept { return false; }

  /// Dependency-driven multi-round window: run up to `rounds` rounds with no
  /// global barrier, each vertex halting individually once its program
  /// reports halted().  Returns the rounds fired by the most-advanced
  /// vertex.  Only dependency-driven backends implement this; the base
  /// throws (Engine::step_window falls back to a per-round step loop).
  virtual std::size_t run_window(RoundContext& ctx, Metrics& total,
                                 std::size_t rounds);
};

/// The default single-thread backend: one shard spanning [0, n).
class SequentialExecutor final : public RoundExecutor {
 public:
  [[nodiscard]] std::size_t threads() const noexcept override { return 1; }
  void round(RoundContext& ctx, Metrics& total) override;
};

}  // namespace agc::runtime
