#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "agc/selfstab/ss_coloring.hpp"

/// \file ss_mis.hpp
/// Self-stabilizing maximal independent set (Section 4.2, Theorems 4.5/4.6).
///
/// Every vertex runs the self-stabilizing coloring and additionally keeps an
/// MIS status in {MIS, NOTMIS, UNDECIDED}.  Per round:
///   * an MIS vertex with an MIS neighbor becomes Undecided;
///   * a NOTMIS vertex with no MIS neighbor becomes Undecided;
///   * an Undecided vertex with an MIS neighbor becomes NOTMIS;
///   * an Undecided vertex with no MIS neighbor whose color is smaller than
///     all Undecided neighbors' joins the MIS.
/// Stabilization takes O(Delta + log* n) rounds after the last fault and the
/// adjustment radius is 2.

namespace agc::selfstab {

enum MisStatus : std::uint64_t { kUndecided = 0, kMis = 1, kNotMis = 2 };

/// Pack (color, status) into one broadcast word.
[[nodiscard]] constexpr std::uint64_t pack_cs(std::uint64_t color,
                                              std::uint64_t status) noexcept {
  return (color << 2) | (status & 3);
}
[[nodiscard]] constexpr std::uint64_t packed_color(std::uint64_t w) noexcept {
  return w >> 2;
}
[[nodiscard]] constexpr MisStatus packed_status(std::uint64_t w) noexcept {
  const auto s = w & 3;
  return s <= 2 ? static_cast<MisStatus>(s) : kUndecided;  // normalize corruption
}

/// One MIS status update (pure; shared with the line-graph MM simulation).
/// `neighbors` are packed (color,status) words of the 1-hop neighborhood.
[[nodiscard]] MisStatus mis_update(std::uint64_t my_color, MisStatus my_status,
                                   std::span<const std::uint64_t> neighbors);

/// The forever-running coloring + MIS program.
/// RAM: word 0 = color, word 1 = status.
class SsMisProgram final : public runtime::VertexProgram {
 public:
  explicit SsMisProgram(const SsConfig& cfg) : cfg_(cfg) {}

  void on_start(const runtime::VertexEnv& env) override {
    ram_[0] = cfg_.reset_color(env.padded_id);
    ram_[1] = kUndecided;
  }
  void on_send(const runtime::VertexEnv&, runtime::OutboxRef& out) override {
    ram_[0] = cfg_.truncate(ram_[0]);
    ram_[1] &= 3;
    out.broadcast(
        runtime::Word{pack_cs(ram_[0], ram_[1]), cfg_.color_bits() + 2});
  }
  void on_receive(const runtime::VertexEnv& env,
                  const runtime::InboxRef& in) override;
  std::span<std::uint64_t> ram() override { return {ram_, 2}; }

  [[nodiscard]] std::uint64_t color() const noexcept { return ram_[0]; }
  [[nodiscard]] MisStatus status() const noexcept {
    return packed_status(ram_[1] & 3);
  }

 private:
  const SsConfig& cfg_;
  std::uint64_t ram_[2] = {0, 0};  ///< [0] color, [1] status
};

[[nodiscard]] runtime::ProgramFactory ss_mis_factory(const SsConfig& cfg);

/// Read the MIS membership flags out of an engine running SsMisProgram.
[[nodiscard]] std::vector<bool> current_mis(runtime::Engine& engine);

struct MisStabilizationReport : runtime::RunReport {
  std::size_t rounds_to_stable = 0;
  bool stabilized = false;
  std::vector<bool> in_mis;
};

/// Run until the coloring is stable AND the status vector is a valid MIS,
/// then confirm it is a fixed point.  RunOptions supplies the round budget,
/// fault adversary (injections reset the stabilization clock) and
/// observability hooks; see run_until_stable for the contract.
[[nodiscard]] MisStabilizationReport run_until_mis_stable(
    runtime::Engine& engine, const SsConfig& cfg,
    const runtime::RunOptions& opts, std::size_t confirm_rounds = 8);

/// Convenience spelling: a bare round budget, no adversary, no hooks.
[[nodiscard]] MisStabilizationReport run_until_mis_stable(
    runtime::Engine& engine, const SsConfig& cfg, std::size_t max_rounds,
    std::size_t confirm_rounds = 8);

}  // namespace agc::selfstab
