#pragma once

#include <cstdint>

#include "agc/obs/event_sink.hpp"
#include "agc/obs/phase_timer.hpp"
#include "agc/runtime/engine.hpp"
#include "agc/runtime/faults.hpp"
#include "agc/runtime/run_options.hpp"
#include "agc/runtime/run_report.hpp"

/// \file run_loop.hpp
/// The shared skeleton of the three `run_until_*` selfstab runners: drive the
/// engine until a stability predicate holds, confirm quiescence, and wire the
/// unified RunOptions hooks (fault adversary, event sink, phase timers) plus
/// the RunReport accounting in exactly one place.
///
/// Stabilization time is measured from the last adversary event: every
/// injection resets the rounds_to_stable clock, matching the paper's promise
/// that faults eventually stop.  An adversary that never quiesces therefore
/// never lets the loop terminate — PeriodicAdversary::Schedule::last_round is
/// the enforcement knob.

namespace agc::selfstab::detail {

/// `Report` must expose rounds_to_stable/stabilized and derive RunReport.
/// `stable` is the task predicate; `snapshot` captures the state compared
/// across the confirmation window (any equality-comparable value).
template <typename Report, typename Stable, typename Snapshot>
void run_until(runtime::Engine& engine, const runtime::RunOptions& opts,
               std::size_t confirm_rounds, Stable&& stable,
               Snapshot&& snapshot, Report& rep) {
  const std::uint64_t t0 = obs::monotonic_ns();
  obs::PhaseProfile profile;
  obs::PhaseProfile* const prev_profile = engine.profile();
  obs::EventSink* const prev_sink = engine.sink();
  obs::PhaseStats* extra = nullptr;
  if (opts.collect_phase_times) {
    engine.set_profile(&profile);
    extra = profile.extra();
  }
  if (opts.sink != nullptr) {
    engine.set_sink(opts.sink);
    obs::Event ev;
    ev.kind = obs::EventKind::RunStart;
    ev.round = engine.rounds();
    ev.label = opts.tag;
    ev.value = engine.graph().n();
    opts.sink->emit(ev);
  }
  runtime::ChannelHook* const prev_channel = engine.channel();
  if (opts.channel != nullptr) engine.set_channel(opts.channel);
  std::uint64_t channel_seen =
      opts.channel != nullptr ? opts.channel->events() : 0;
  // Channel faults injected by a step count as adversary events: they reset
  // the stabilization clock (the wire being attacked means faults have not
  // stopped yet) and roll into RunReport::fault_events.
  auto drain_channel = [&](bool reset_clock) {
    if (opts.channel == nullptr) return;
    const std::uint64_t now = opts.channel->events();
    if (now > channel_seen) {
      rep.fault_events += now - channel_seen;
      if (reset_clock) rep.rounds_to_stable = 0;
      if (opts.sink != nullptr) {
        obs::Event ev;
        ev.kind = obs::EventKind::Fault;
        ev.round = engine.rounds();
        ev.label = opts.channel->name();
        ev.value = now - channel_seen;
        opts.sink->emit(ev);
      }
      channel_seen = now;
    }
  };
  const runtime::Metrics before = engine.metrics();

  auto check = [&] {
    obs::ScopedPhaseTimer timer(extra, obs::Phase::Check);
    return stable();
  };

  std::size_t executed = 0;
  bool ok = check();
  while (true) {
    while (rep.rounds_to_stable < opts.max_rounds && !ok) {
      engine.step();
      ++executed;
      ++rep.rounds_to_stable;
      drain_channel(/*reset_clock=*/true);
      if (opts.adversary != nullptr) {
        std::size_t injected = 0;
        {
          obs::ScopedPhaseTimer timer(extra, obs::Phase::Fault);
          injected = opts.adversary->inject(engine, executed);
        }
        if (injected > 0) {
          rep.fault_events += injected;
          rep.rounds_to_stable = 0;  // the clock restarts at the last fault
          if (opts.sink != nullptr) {
            obs::Event ev;
            ev.kind = obs::EventKind::Fault;
            ev.round = engine.rounds();
            ev.label = opts.adversary->name();
            ev.value = injected;
            opts.sink->emit(ev);
          }
        }
      }
      ok = check();
    }
    if (!ok) break;  // stabilization budget exhausted

    // Confirm quiescence: the configuration must be a fixed point.  A wire
    // fault mid-window resets the stabilization clock like any other fault
    // (the predicate held only transiently — e.g. a ChannelAdversary whose
    // active window is still open), so on a changed snapshot the search
    // RESUMES instead of giving up, until the round budget runs dry.
    const auto snap = snapshot();
    rep.stabilized = true;
    for (std::size_t i = 0; i < confirm_rounds; ++i) {
      engine.step();
      ++executed;
      drain_channel(/*reset_clock=*/true);
      if (snapshot() != snap) {
        rep.stabilized = false;  // not actually stable
        break;
      }
    }
    if (rep.stabilized || executed >= opts.max_rounds) break;
    ok = check();
  }

  rep.rounds = executed;
  rep.converged = rep.stabilized;
  // This run's share of the engine's cumulative accounting.  The per-edge
  // ledger never resets, so max_edge_bits stays the cumulative maximum.
  const runtime::Metrics after = engine.metrics();
  rep.metrics.rounds = after.rounds - before.rounds;
  rep.metrics.messages = after.messages - before.messages;
  rep.metrics.total_bits = after.total_bits - before.total_bits;
  rep.metrics.max_edge_bits = after.max_edge_bits;
  if (opts.collect_phase_times) {
    engine.set_profile(prev_profile);
    rep.phases = profile.folded();
  }
  rep.wall_ns = obs::monotonic_ns() - t0;
  if (opts.channel != nullptr) engine.set_channel(prev_channel);
  if (opts.sink != nullptr) {
    obs::Event ev;
    ev.kind = obs::EventKind::RunEnd;
    ev.round = engine.rounds();
    ev.label = opts.tag;
    ev.value = rep.rounds;
    ev.ns = rep.wall_ns;
    opts.sink->emit(ev);
    engine.set_sink(prev_sink);
  }
}

}  // namespace agc::selfstab::detail
