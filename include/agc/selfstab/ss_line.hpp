#pragma once

#include <cstdint>
#include <vector>

#include "agc/selfstab/ss_coloring.hpp"
#include "agc/selfstab/ss_mis.hpp"

/// \file ss_line.hpp
/// Self-stabilizing maximal matching and (2*Delta-1)-edge-coloring via a
/// consistent line-graph simulation (Section 4.2, Theorem 4.7).
///
/// Every vertex hosts one virtual vertex per incident edge; the edge's state
/// is replicated at both endpoints.  An algorithm round takes two engine
/// rounds:
///   phase A — endpoints exchange their replicas of the shared edge; on a
///             mismatch both adopt the smaller-ID endpoint's value.
///   phase B — endpoints exchange the (now reconciled) states of all their
///             incident edges; both endpoints then run the identical
///             self-stabilizing step for the shared edge, so the replicas
///             stay equal in the absence of faults.
///
/// The virtual vertices run SsConfig::step (coloring) and, for maximal
/// matching, additionally mis_update — i.e. exactly the vertex algorithms on
/// L(G).  The line graph of a graph with maximum degree Delta has maximum
/// degree 2*Delta-2, so the exact palette mode yields a proper
/// (2*Delta-1)-edge-coloring.

namespace agc::selfstab {

enum class LineTask { EdgeColoring, MaximalMatching };

/// Configuration for the line-graph simulation.  `delta_g` is the degree
/// bound of the *host* graph; virtual IDs live in [0, n_bound^2).
class SsLineConfig {
 public:
  SsLineConfig(std::uint64_t n_bound, std::size_t delta_g, LineTask task,
               PaletteMode mode = PaletteMode::ExactDeltaPlusOne)
      : n_bound_(n_bound),
        task_(task),
        coloring_(n_bound * n_bound,
                  std::max<std::size_t>(delta_g >= 1 ? 2 * delta_g - 2 : 0, 1),
                  mode) {}

  [[nodiscard]] const SsConfig& coloring() const noexcept { return coloring_; }
  [[nodiscard]] LineTask task() const noexcept { return task_; }

  /// Unique virtual-vertex ID of the edge {u, v}.
  [[nodiscard]] std::uint64_t edge_id(graph::Vertex u, graph::Vertex v) const {
    const auto lo = std::min(u, v);
    const auto hi = std::max(u, v);
    return static_cast<std::uint64_t>(lo) * n_bound_ + hi;
  }

 private:
  std::uint64_t n_bound_;
  LineTask task_;
  SsConfig coloring_;
};

/// The per-vertex host program.  RAM exposes one word per incident edge (the
/// packed (color,status) replica), in neighbor-sorted order.
class SsLineProgram final : public runtime::VertexProgram {
 public:
  explicit SsLineProgram(const SsLineConfig& cfg) : cfg_(cfg) {}

  void on_start(const runtime::VertexEnv& env) override;
  void on_send(const runtime::VertexEnv& env, runtime::OutboxRef& out) override;
  void on_receive(const runtime::VertexEnv& env,
                  const runtime::InboxRef& in) override;
  std::span<std::uint64_t> ram() override { return vals_; }

  /// Replica state for the edge to neighbor `w` (packed color|status), or
  /// nullopt if not incident.
  [[nodiscard]] std::optional<std::uint64_t> replica(graph::Vertex w) const;

 private:
  void sync_keys(const runtime::VertexEnv& env);

  const SsLineConfig& cfg_;
  std::vector<graph::Vertex> keys_;   ///< neighbor ids, sorted (port order)
  std::vector<std::uint64_t> vals_;   ///< replica per key (RAM)
};

[[nodiscard]] runtime::ProgramFactory ss_line_factory(const SsLineConfig& cfg);

/// Edge colors aligned with edge_list(engine.graph()), read from the smaller
/// endpoint's replica.
[[nodiscard]] std::vector<Color> current_edge_colors(runtime::Engine& engine);

/// Matched edges (replica status == kMis at the smaller endpoint).
[[nodiscard]] std::vector<graph::Edge> current_matching(runtime::Engine& engine);

struct LineStabilizationReport : runtime::RunReport {
  std::size_t rounds_to_stable = 0;  ///< engine rounds (2 per algorithm round)
  bool stabilized = false;
};

/// Run until the task's predicate holds (proper final-palette edge coloring,
/// or maximal matching with stable colors) and is a fixed point.  RunOptions
/// supplies the round budget, fault adversary (injections reset the
/// stabilization clock) and observability hooks; see run_until_stable.
[[nodiscard]] LineStabilizationReport run_until_line_stable(
    runtime::Engine& engine, const SsLineConfig& cfg,
    const runtime::RunOptions& opts, std::size_t confirm_rounds = 8);

/// Convenience spelling: a bare round budget, no adversary, no hooks.
[[nodiscard]] LineStabilizationReport run_until_line_stable(
    runtime::Engine& engine, const SsLineConfig& cfg, std::size_t max_rounds,
    std::size_t confirm_rounds = 8);

}  // namespace agc::selfstab
