#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "agc/coloring/ag3.hpp"
#include "agc/coloring/linial.hpp"
#include "agc/runtime/engine.hpp"
#include "agc/runtime/run_options.hpp"
#include "agc/runtime/run_report.hpp"

/// \file ss_coloring.hpp
/// The fully-dynamic self-stabilizing coloring algorithm (Section 4.1 of the
/// paper, plus the Section 7 extension that stabilizes to exactly Delta+1
/// colors).
///
/// Every vertex stores exactly one RAM word — its color — which the adversary
/// may overwrite arbitrarily between rounds (as may edge and vertex churn).
/// Each round, every vertex broadcasts its color and runs one pure step:
///
///   1. Check-Error: a color that clashes with a neighbor or is structurally
///      invalid resets to the ID interval I_r.
///   2. Colors in interval I_j (j >= 2) descend one Linial interval
///      (Mod-Linial).
///   3. Colors in I_1 descend via Excl-Linial, dodging the set S' of all
///      colors that I_0 neighbors might hold next round.
///   4. Colors in I_0 run the additive-group machinery: plain AG for the
///      O(Delta)-color mode, or the mixed 3AG/AG(N) rule for the exact
///      (Delta+1)-color mode.
///
/// Once faults stop, the coloring stabilizes within O(Delta + log* n) rounds
/// and only vertices adjacent to a fault ever recompute (adjustment
/// radius 1).

namespace agc::selfstab {

using graph::Color;

enum class PaletteMode {
  ODelta,             ///< stabilize to O(Delta) colors (Lemma 4.2)
  ExactDeltaPlusOne,  ///< stabilize to exactly Delta+1 colors (Theorem 7.5)
};

/// Immutable per-run configuration (ROM contents): the interval schedule and
/// the I_0 rule.  Shared by all vertices; must outlive the engine.
class SsConfig {
 public:
  SsConfig(std::uint64_t id_space, std::size_t delta, PaletteMode mode);

  /// The complete self-stabilizing step: pure function of (own id, own
  /// color, sorted multiset of neighbor colors).  Used verbatim by vertex
  /// programs and by the line-graph virtual vertices of Section 4.2.
  [[nodiscard]] std::uint64_t step(std::uint64_t id, std::uint64_t color,
                                   std::span<const std::uint64_t> neighbors) const;

  /// The initial state of a vertex with this id (also the Check-Error reset).
  [[nodiscard]] std::uint64_t reset_color(std::uint64_t id) const;

  /// Is this color in the final palette (stable once neighbors are stable)?
  [[nodiscard]] bool is_final(std::uint64_t color) const;

  /// One past the largest final color: q = O(Delta) in ODelta mode,
  /// Delta+1 in exact mode.
  [[nodiscard]] std::uint64_t final_palette() const;

  /// One past the largest representable state.
  [[nodiscard]] std::uint64_t span() const { return span_; }

  [[nodiscard]] std::uint32_t color_bits() const {
    return runtime::width_of(span_ - 1);
  }

  /// Truncate a (possibly adversarially corrupted) RAM word to the message
  /// field width, as fixed-width hardware would.  Check-Error rejects the
  /// resulting garbage value on the next step.
  [[nodiscard]] std::uint64_t truncate(std::uint64_t ram_word) const {
    const std::uint32_t b = color_bits();
    return b >= 64 ? ram_word : ram_word & ((1ULL << b) - 1);
  }

  [[nodiscard]] PaletteMode mode() const noexcept { return mode_; }
  [[nodiscard]] std::size_t delta() const noexcept { return delta_; }
  [[nodiscard]] const coloring::LinialSchedule& schedule() const { return sched_; }

 private:
  std::size_t delta_;
  PaletteMode mode_;
  coloring::LinialSchedule sched_;
  std::optional<coloring::Mixed3Rule> mixed_;  ///< exact mode only
  std::uint64_t ag_q_ = 0;                     ///< ODelta mode: I_0 field size
  std::uint64_t span_ = 0;
};

/// The forever-running coloring program.  RAM word 0 is the color.
class SsColoringProgram final : public runtime::VertexProgram {
 public:
  explicit SsColoringProgram(const SsConfig& cfg) : cfg_(cfg) {}

  void on_start(const runtime::VertexEnv& env) override {
    color_ = cfg_.reset_color(env.padded_id);
  }
  void on_send(const runtime::VertexEnv&, runtime::OutboxRef& out) override {
    color_ = cfg_.truncate(color_);
    out.broadcast(runtime::Word{color_, cfg_.color_bits()});
  }
  void on_receive(const runtime::VertexEnv& env,
                  const runtime::InboxRef& in) override {
    const auto nbrs = in.multiset();
    color_ = cfg_.step(env.padded_id, cfg_.truncate(color_), nbrs);
  }
  std::span<std::uint64_t> ram() override { return {&color_, 1}; }

  [[nodiscard]] std::uint64_t color() const noexcept { return color_; }

 private:
  const SsConfig& cfg_;
  std::uint64_t color_ = 0;
};

/// Factory for Engine::install.  `cfg` must outlive the engine.
[[nodiscard]] runtime::ProgramFactory ss_coloring_factory(const SsConfig& cfg);

/// Read the current coloring out of an engine running SsColoringProgram (or
/// any program whose RAM word 0 is the color).
[[nodiscard]] std::vector<Color> current_colors(runtime::Engine& engine);

/// RunReport core (rounds = engine rounds this call executed including the
/// confirmation window, converged == stabilized, per-run Metrics) plus the
/// stabilization clock.
struct StabilizationReport : runtime::RunReport {
  std::size_t rounds_to_stable = 0;  ///< rounds after the last fault
  bool stabilized = false;
  std::vector<Color> colors;
};

/// Run the engine until the coloring is proper with every color in the final
/// palette, then keep going `confirm_rounds` more rounds asserting it stays
/// that way.  Measures stabilization time from the current state — or, when
/// `opts.adversary` is set, from the last injected fault (every injection
/// resets the clock; the adversary must eventually quiesce, e.g. via
/// PeriodicAdversary::Schedule::last_round).  RunOptions also supplies the
/// round budget and the observability hooks (attached to the engine for the
/// duration of the call, then restored).
[[nodiscard]] StabilizationReport run_until_stable(runtime::Engine& engine,
                                                   const SsConfig& cfg,
                                                   const runtime::RunOptions& opts,
                                                   std::size_t confirm_rounds = 8);

/// Convenience spelling: a bare round budget, no adversary, no hooks.
[[nodiscard]] StabilizationReport run_until_stable(runtime::Engine& engine,
                                                   const SsConfig& cfg,
                                                   std::size_t max_rounds,
                                                   std::size_t confirm_rounds = 8);

}  // namespace agc::selfstab
