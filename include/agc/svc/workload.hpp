#pragma once

#include <cstdint>
#include <set>
#include <vector>

#include "agc/svc/service.hpp"

/// \file workload.hpp
/// A YCSB-style client workload for the coloring service: a seeded operation
/// mix (parts-per-million per kind, remainder queries) driven closed-loop —
/// each simulated client keeps one op in flight, so `clients` ops are
/// submitted per epoch and the driver waits for the epoch to commit before
/// submitting more.
///
/// The generator is an *eager mirror*: it maintains its own copy of the
/// service's graph/liveness state and applies every op it emits under the
/// same validation rules the service enforces (degree cap, vertex cap,
/// duplicate edges, retired vertices).  Every generated op is therefore
/// valid by construction — a seeded run completes with zero rejects, and
/// generation never needs result feedback, which keeps the op stream a pure
/// function of (spec, seed) and the whole run deterministic
/// (tests/test_svc.cpp pins seed reproducibility and 1/2/8-thread identity).

namespace agc::svc {

struct WorkloadSpec {
  std::uint64_t seed = 1;
  std::uint64_t ops = 100'000;
  /// Operation mix in parts-per-million; the remainder to 1'000'000 is
  /// QueryColor.  A kind whose precondition cannot be met (graph full, no
  /// removable edge, ...) degrades to a query for that draw.
  std::uint32_t add_edge_ppm = 350'000;
  std::uint32_t remove_edge_ppm = 250'000;
  std::uint32_t add_vertex_ppm = 20'000;
  std::uint32_t remove_vertex_ppm = 30'000;
  /// Closed-loop client count: ops submitted per driver iteration before
  /// waiting for the service to commit them.
  std::size_t clients = 64;
};

class Workload {
 public:
  /// Mirrors `svc`'s current graph, liveness and caps.  The service must not
  /// be mutated behind the workload's back afterwards (ops generated here
  /// and submitted in order are the only traffic).
  Workload(const Service& svc, const WorkloadSpec& spec);

  /// The next valid op.  Pure function of construction state and call count.
  [[nodiscard]] Op next();

  [[nodiscard]] std::uint64_t generated() const noexcept { return count_; }

 private:
  [[nodiscard]] std::uint64_t rnd();  ///< splitmix64 draw

  WorkloadSpec spec_;
  std::size_t delta_bound_;
  std::uint64_t max_vertices_;
  std::uint64_t state_;  ///< rng state
  std::uint64_t count_ = 0;

  // Mirror of the service-side graph: adjacency + degree + liveness, plus a
  // dense edge list for O(1) uniform removal draws.
  std::vector<std::set<graph::Vertex>> adj_;
  std::vector<bool> live_;
  std::vector<graph::Vertex> live_list_;  ///< compact list of live vertices
  std::vector<std::size_t> live_pos_;     ///< vertex -> index in live_list_
  std::vector<std::pair<graph::Vertex, graph::Vertex>> edges_;

  void apply_mirror(const Op& op);
  [[nodiscard]] bool try_add_edge(Op& op);
  [[nodiscard]] bool try_remove_edge(Op& op);
  [[nodiscard]] bool try_remove_vertex(Op& op);
  [[nodiscard]] Op make_query();
};

struct WorkloadReport {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t mutations = 0;
  std::uint64_t queries = 0;
  std::uint64_t rejected = 0;  ///< eager mirror: 0 on every seeded run
};

/// Drive `svc` with `spec.ops` generated ops, closed-loop: submit
/// `spec.clients` ops, drain, repeat.  Returns the client-side tally; the
/// service's own stats() carries the latency/adjustment aggregate.
WorkloadReport run_workload(Service& svc, const WorkloadSpec& spec);

}  // namespace agc::svc
