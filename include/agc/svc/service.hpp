#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "agc/faultlab/harness.hpp"
#include "agc/graph/spec.hpp"
#include "agc/runtime/engine.hpp"
#include "agc/runtime/run_options.hpp"
#include "agc/runtime/run_report.hpp"
#include "agc/selfstab/ss_coloring.hpp"
#include "agc/svc/histogram.hpp"

/// \file service.hpp
/// Coloring-as-a-service: a long-lived Service owns one engine running the
/// self-stabilizing coloring and serves a mutation/query API on top of it
/// (ROADMAP item 2).  Clients submit operations; the service batches them
/// into *epochs*, applies each batch through the engine's adversary
/// interface, and calls faultlab::resettle() to drive the coloring back to
/// legal — recoloring only the affected region (the paper's adjustment
/// radius 1 is what makes an epoch O(batch * (Delta + log* n)) instead of a
/// from-scratch run).
///
/// Epoch semantics (docs/SERVICE.md has the long form):
///   - submit() only enqueues; nothing observes the op until pump().
///   - pump() takes up to `epoch_batch` ops in submission order, applies the
///     mutations, repairs, then answers queries against the *post-epoch*
///     settled coloring (read-your-writes within an epoch).  Query liveness
///     is judged at the op's position in the submission order, so a query
///     racing a remove_vertex in the same batch keeps sequential semantics.
///   - Per-op latency is measured from submit to the end of the op's epoch,
///     once in engine rounds (deterministic) and once in wall-clock ns
///     (timing; excluded from the deterministic aggregate).
///
/// Determinism contract: with a fixed config and submission sequence, every
/// OpResult field except latency_ns — and every ServiceStats field except
/// the timing block — is bit-identical for any RunOptions::executor thread
/// count (the exec backend is shard-deterministic; tests/test_svc.cpp pins
/// this at 1/2/8 threads).

namespace agc::svc {

enum class OpKind : std::uint8_t {
  AddEdge,       ///< u, v
  RemoveEdge,    ///< u, v
  AddVertex,     ///< result value = new vertex id
  RemoveVertex,  ///< u; retires the vertex (isolated + excluded from the API)
  QueryColor,    ///< u; result value = settled color
};

[[nodiscard]] const char* to_string(OpKind k) noexcept;

enum class OpStatus : std::uint8_t {
  Pending,   ///< submitted, epoch not pumped yet
  Ok,        ///< applied / answered
  Rejected,  ///< failed validation (see service.cpp apply rules)
};

/// A client operation.  `u`/`v` are vertex ids; AddVertex ignores both,
/// single-vertex ops use `u`.
struct Op {
  OpKind kind = OpKind::QueryColor;
  graph::Vertex u = 0;
  graph::Vertex v = 0;
};

struct OpResult {
  std::uint64_t op_id = 0;  ///< submission order, from 0
  OpKind kind = OpKind::QueryColor;
  OpStatus status = OpStatus::Pending;
  /// QueryColor: the color; AddVertex: the new vertex id; otherwise 0.
  std::uint64_t value = 0;
  std::uint64_t epoch = 0;  ///< epoch index the op completed in
  /// Engine rounds from submit to the end of the op's epoch (legal coloring
  /// with the op's effect visible).  Deterministic.
  std::uint64_t latency_rounds = 0;
  /// Same interval in wall-clock ns.  Timing-only: never part of the
  /// deterministic aggregate.
  std::uint64_t latency_ns = 0;
};

struct ServiceConfig {
  /// Initial graph.  The spec stays the identity of the service's graph
  /// however much churn follows (GraphSpec::estimated_bytes(extra_v, extra_e)
  /// gives the headroom-adjusted footprint).
  graph::GraphSpec spec;
  /// Hard degree cap — the Delta bound baked into every vertex's ROM, so it
  /// must hold for the *lifetime* of the service, not just the initial graph
  /// (0 = twice the initial max degree).  AddEdge ops that would exceed it
  /// are rejected.
  std::size_t delta_bound = 0;
  /// Hard vertex cap — fixes the Linial ID space (engine n_bound), so
  /// appended vertices keep valid padded ids (0 = twice the initial n).
  /// AddVertex ops beyond it are rejected.
  std::uint64_t max_vertices = 0;
  selfstab::PaletteMode mode = selfstab::PaletteMode::ODelta;
  /// Max ops consumed per pump() epoch.
  std::size_t epoch_batch = 64;
  /// faultlab watchdog: abort an epoch's repair after this many rounds
  /// without reaching legality (counts as a legality violation in stats).
  std::size_t repair_budget = 50'000;
  /// Consecutive legal rounds before an epoch commits.
  std::size_t confirm_rounds = 2;
  /// Executor / observability / round budget for the underlying engine.
  /// run.sink receives the engine's RoundEnd stream plus one StageStart /
  /// StageEnd pair per epoch; run.collect_phase_times folds per-epoch phase
  /// timings into stats().phases.
  runtime::RunOptions run;
};

/// Aggregate service counters.  Everything above the timing block is part of
/// the deterministic contract.
struct ServiceStats {
  std::uint64_t epochs = 0;
  std::uint64_t ops = 0;        ///< completed (Ok + Rejected)
  std::uint64_t mutations = 0;  ///< accepted mutations
  std::uint64_t queries = 0;    ///< accepted queries
  std::uint64_t rejected = 0;
  std::uint64_t repair_rounds = 0;  ///< engine rounds spent in resettle()
  std::uint64_t adjusted_total = 0;  ///< sum of per-epoch adjustment sets
  std::uint64_t max_adjusted = 0;
  /// Epochs whose repair did not reach a legal coloring within
  /// repair_budget.  The acceptance bar for every committed artifact is 0.
  std::uint64_t legality_violations = 0;
  LatencyHistogram latency_rounds;  ///< per-op, in engine rounds

  // --- timing block (excluded when include_timing=false) ------------------
  LatencyHistogram latency_us;  ///< per-op, in microseconds
  std::uint64_t wall_ns = 0;    ///< total time inside pump()

  [[nodiscard]] double mean_adjusted() const noexcept {
    return epochs == 0 ? 0.0
                       : static_cast<double>(adjusted_total) / epochs;
  }

  /// One JSON object.  include_timing=false drops the timing block and is
  /// the byte-identical-across-thread-counts aggregate the service smoke
  /// golden pins (ci/service_smoke_golden.json).
  [[nodiscard]] std::string to_json(bool include_timing) const;
};

class Service {
 public:
  explicit Service(ServiceConfig cfg);

  /// Enqueue an op; returns its op_id (submission index).  The op is not
  /// validated or visible until its epoch is pumped.
  std::uint64_t submit(const Op& op);

  /// Process one epoch: up to epoch_batch queued ops.  Returns the results
  /// of exactly the ops consumed (empty when the queue is empty).  After
  /// pump() returns, the coloring is legal (or legality_violations grew).
  std::vector<OpResult> pump();

  /// pump() until the queue is empty; concatenated results.
  std::vector<OpResult> drain();

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] const ServiceStats& stats() const noexcept { return stats_; }

  /// Cumulative engine-level report (rounds, metrics, phase timings).
  [[nodiscard]] runtime::RunReport report() const;

  /// The settled coloring as of the last committed epoch, truncated to the
  /// palette field width.  Retired vertices keep their last color.
  [[nodiscard]] std::vector<graph::Color> colors() const;

  [[nodiscard]] graph::GraphView graph() const noexcept {
    return engine_.graph();
  }
  [[nodiscard]] const selfstab::SsConfig& coloring_config() const noexcept {
    return ss_cfg_;
  }
  [[nodiscard]] const ServiceConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] bool live(graph::Vertex v) const noexcept {
    return v < live_.size() && live_[v];
  }
  /// Live (non-retired) vertex count.
  [[nodiscard]] std::size_t live_vertices() const noexcept { return n_live_; }

 private:
  struct Queued {
    Op op;
    std::uint64_t op_id;
    std::uint64_t submit_round;
    std::uint64_t submit_ns;
  };

  /// Apply one mutation through the engine's adversary interface; fills
  /// result.status / result.value.  Returns true when the engine changed.
  bool apply(const Op& op, OpResult& result);

  ServiceConfig cfg_;
  selfstab::SsConfig ss_cfg_;
  runtime::Engine engine_;
  faultlab::StabilizationSpec spec_;
  std::vector<std::uint64_t> settled_;  ///< outputs at last committed epoch
  std::vector<bool> live_;
  std::size_t n_live_ = 0;
  std::deque<Queued> queue_;
  std::uint64_t next_op_ = 0;
  ServiceStats stats_;
};

}  // namespace agc::svc
