#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "agc/svc/service.hpp"

/// \file wire.hpp
/// The agcd wire protocol, split from the socket so every layer is testable
/// in-process (tests/test_svc.cpp) and the daemon (tools/agcd.cpp) is a thin
/// poll loop.
///
/// Framing: every message — both directions — is a 4-byte little-endian
/// length prefix followed by that many bytes of UTF-8 text.  Commands:
///
///   add_edge U V      -> "queued N"        (op id; committed on next pump)
///   remove_edge U V   -> "queued N"
///   add_vertex        -> "queued N"
///   remove_vertex V   -> "queued N"
///   query V           -> "ok C" | "rej"    (drains first: read-your-writes)
///   pump              -> "pumped N"        (ops committed this drain)
///   stats             -> ServiceStats JSON (drains first; includes timing)
///   quit              -> "bye"             (daemon closes the connection)
///
/// Mutations only enqueue (one round-trip, no repair on the submit path);
/// query/stats/pump force the pending epoch(s) to commit, so a client that
/// wants synchronous semantics follows each mutation with "pump".

namespace agc::svc {

/// Prefix `payload` with its 4-byte little-endian length.
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Consume one complete frame from the front of `buffer` into `payload`.
/// Returns false (and leaves both untouched) while the frame is incomplete.
[[nodiscard]] bool decode_frame(std::string& buffer, std::string& payload);

/// Execute one command line against the service and return the reply
/// payload (unframed).  Unknown/malformed commands reply "err <reason>".
[[nodiscard]] std::string handle_command(Service& svc, std::string_view line);

/// True when the command asks the daemon to close this connection ("quit").
[[nodiscard]] bool is_quit(std::string_view line);

}  // namespace agc::svc
