#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "agc/svc/service.hpp"

/// \file wire.hpp
/// The agcd wire protocol, split from the socket so every layer is testable
/// in-process (tests/test_svc.cpp) and the daemon (tools/agcd.cpp) is a thin
/// poll loop.
///
/// Framing: every message — both directions — is a 4-byte little-endian
/// length prefix followed by that many bytes of UTF-8 text.  Commands:
///
///   add_edge U V      -> "queued N"        (op id; committed on next pump)
///   remove_edge U V   -> "queued N"
///   add_vertex        -> "queued N"
///   remove_vertex V   -> "queued N"
///   query V           -> "ok C" | "rej"    (drains first: read-your-writes)
///   pump              -> "pumped N"        (ops committed this drain)
///   stats             -> ServiceStats JSON (drains first; includes timing)
///   quit              -> "bye"             (daemon closes the connection)
///
/// Mutations only enqueue (one round-trip, no repair on the submit path);
/// query/stats/pump force the pending epoch(s) to commit, so a client that
/// wants synchronous semantics follows each mutation with "pump".

namespace agc::svc {

/// Prefix `payload` with its 4-byte little-endian length.
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Consume one complete frame from the front of `buffer` into `payload`.
/// Returns false (and leaves both untouched) while the frame is incomplete.
/// No length cap — trusted in-process streams only; the daemon's socket path
/// goes through FrameReader below.
[[nodiscard]] bool decode_frame(std::string& buffer, std::string& payload);

/// Largest frame payload the daemon will buffer.  Every real command fits in
/// well under a kilobyte; anything bigger is a confused or hostile client.
inline constexpr std::size_t kMaxFramePayload = 1u << 20;

enum class FrameStatus : std::uint8_t {
  Incomplete,  ///< need more bytes; payload untouched
  Ok,          ///< one complete frame extracted into payload
  TooLarge,    ///< declared length exceeds the cap; frame discarded
};

/// Incremental frame scanner with bounded memory for untrusted sockets.
/// feed() raw bytes as they arrive, then call next() until Incomplete.
///
/// A frame whose declared length exceeds `max_payload` yields TooLarge
/// exactly once — the caller replies with an error frame — and the reader
/// then discards the declared number of payload bytes as they stream in
/// (never buffering them) before resynchronizing on the next length prefix.
/// A garbage byte stream thus costs O(max_payload) memory at worst and the
/// connection keeps serving once the declared bytes have passed; it never
/// desyncs the framing or kills the daemon.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_payload = kMaxFramePayload)
      : max_(max_payload) {}

  /// Append raw socket bytes (oversized-frame bytes are dropped, not kept).
  void feed(std::string_view bytes);

  [[nodiscard]] FrameStatus next(std::string& payload);

  /// Bytes currently held (always <= max_payload + 4 + one read chunk).
  [[nodiscard]] std::size_t buffered() const noexcept { return buffer_.size(); }

 private:
  std::string buffer_;
  std::uint64_t skip_ = 0;  ///< oversized-frame payload bytes left to discard
  std::size_t max_;
};

/// Execute one command line against the service and return the reply
/// payload (unframed).  Unknown/malformed commands reply "err <reason>".
[[nodiscard]] std::string handle_command(Service& svc, std::string_view line);

/// True when the command asks the daemon to close this connection ("quit").
[[nodiscard]] bool is_quit(std::string_view line);

}  // namespace agc::svc
