#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

/// \file histogram.hpp
/// An HDR-style latency histogram: fixed-size log-linear buckets (32
/// sub-buckets per power of two, exact below 32) covering the full uint64
/// range, so recording is O(1), allocation-free after construction, and
/// quantiles are read without keeping individual samples.  Values are unitful
/// only by convention — the service records one histogram in engine rounds
/// (deterministic) and one in microseconds (timing; excluded from the
/// deterministic aggregate, docs/SERVICE.md).
///
/// Quantiles report the recorded bucket's upper bound, so they are exact
/// below 32 and pessimistic by < 1/32 above — the YCSB-style resolution
/// tradeoff serving benches make (ROADMAP item 2).

namespace agc::svc {

class LatencyHistogram {
 public:
  LatencyHistogram() : counts_(kBuckets, 0) {}

  void record(std::uint64_t value) {
    ++counts_[bucket_of(value)];
    ++count_;
    sum_ += value;
    if (value > max_) max_ = value;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_) / count_;
  }

  /// Value at quantile q in [0, 1]: the upper bound of the smallest bucket
  /// whose cumulative count reaches ceil(q * count).  0 when empty.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept {
    if (count_ == 0) return 0;
    if (q < 0.0) q = 0.0;
    if (q > 1.0) q = 1.0;
    std::uint64_t rank = static_cast<std::uint64_t>(q * count_ + 0.5);
    if (rank == 0) rank = 1;
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += counts_[b];
      if (seen >= rank) return bucket_upper(b);
    }
    return max_;
  }

  /// Counters add; merging is associative and order-independent.
  void merge(const LatencyHistogram& other) noexcept {
    for (std::size_t b = 0; b < kBuckets; ++b) counts_[b] += other.counts_[b];
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.max_ > max_) max_ = other.max_;
  }

 private:
  static constexpr unsigned kSubBits = 5;  ///< 32 sub-buckets per octave
  static constexpr std::size_t kBuckets = (64 - kSubBits) << kSubBits;

  static std::size_t bucket_of(std::uint64_t v) noexcept {
    if (v < (1ull << kSubBits)) return static_cast<std::size_t>(v);
    const unsigned msb = 63 - static_cast<unsigned>(std::countl_zero(v));
    const unsigned shift = msb - kSubBits;
    return (static_cast<std::size_t>(msb - kSubBits + 1) << kSubBits) +
           ((v >> shift) & ((1u << kSubBits) - 1));
  }

  static std::uint64_t bucket_upper(std::size_t b) noexcept {
    const std::size_t octave = b >> kSubBits;
    const std::uint64_t sub = b & ((1u << kSubBits) - 1);
    if (octave == 0) return sub;  // exact region
    const unsigned msb = static_cast<unsigned>(octave) + kSubBits - 1;
    const std::uint64_t lo = (1ull << msb) + (sub << (msb - kSubBits));
    return lo + ((1ull << (msb - kSubBits)) - 1);
  }

  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace agc::svc
