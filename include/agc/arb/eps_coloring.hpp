#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "agc/arb/arbag.hpp"

/// \file eps_coloring.hpp
/// Proper colorings built on top of Arbdefective-Color (Theorem 6.4):
///
///   * (1+eps)*Delta-coloring in O(sqrt(Delta) + log* n)-style round counts,
///   * (Delta+1)-coloring with sublinear-in-Delta round counts.
///
/// Structure (after [3], Algorithm 1): compute a beta-arbdefective
/// k-coloring; process the k classes sequentially; within the active class,
/// every uncolored vertex proposes the smallest palette color unused by any
/// finalized neighbor and commits unless an out-neighbor (under the Lemma
/// 6.2 acyclic orientation, out-degree <= O(beta)) proposed the same color.
///
/// Substitution note (recorded in DESIGN.md): the paper reaches the
/// worst-case O~(sqrt(Delta)) bound for (Delta+1) via the local conflict
/// coloring machinery of Fraigniaud-Heinrich-Kosowski [22]; this library
/// replaces that subroutine with the orientation-guided proposal/commit
/// resolution above, which preserves the algorithm's shape and is measured
/// (not asserted) to be sublinear on the benchmark workloads.

namespace agc::arb {

/// RunReport core (rounds = seed + ArbAG + class phases) plus the coloring.
struct ClasswiseResult : runtime::RunReport {
  std::vector<Color> colors;
  std::size_t arb_rounds = 0;  ///< seed + ArbAG part
  std::size_t palette = 0;     ///< distinct colors used
  bool proper = false;
};

/// Proper coloring with palette floor((1+eps)*Delta)+1, eps >= 0.
[[nodiscard]] ClasswiseResult eps_delta_coloring(
    graph::GraphView g, double eps, std::uint64_t id_space = 0,
    const runtime::RunOptions& opts = {});

/// Proper (Delta+1)-coloring via the same machinery with zero palette slack
/// and beta = sqrt(Delta / log Delta) (the Theorem 6.4 parameterization).
[[nodiscard]] ClasswiseResult sublinear_delta_plus_one(
    graph::GraphView g, std::uint64_t id_space = 0,
    const runtime::RunOptions& opts = {});

}  // namespace agc::arb
