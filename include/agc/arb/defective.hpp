#pragma once

#include <cstdint>
#include <vector>

#include "agc/graph/checks.hpp"
#include "agc/graph/graph.hpp"

/// \file defective.hpp
/// p-defective O((Delta/p)^2)-coloring in log* n + O(1) rounds, in the style
/// of Barenboim-Elkin-Kuhn [9] — the seed coloring of Section 6's
/// Arbdefective-Color.
///
/// The construction is defective Linial: at every reduction stage a vertex
/// evaluates its digit polynomial at the point with the FEWEST collisions
/// among same-interval neighbors instead of requiring zero.  With field size
/// q >= d*Delta/b, the chosen point has at most b new collisions
/// (pigeonhole); merged neighbors (identical colors, hence identical
/// polynomials) may stay merged, so per-stage budgets b_t summing to p bound
/// the final defect by p.

namespace agc::arb {

using graph::Color;

struct DefectiveResult {
  std::vector<Color> colors;
  std::size_t rounds = 0;
  std::size_t palette_bound = 0;  ///< the final interval size, O((Delta/p)^2)
  std::size_t max_defect = 0;     ///< measured
  bool converged = false;
};

/// Compute a p-defective coloring of g starting from the identity ID-coloring
/// over `id_space` (>= g.n()).
[[nodiscard]] DefectiveResult defective_color(graph::GraphView g, std::size_t p,
                                              std::uint64_t id_space);

}  // namespace agc::arb
