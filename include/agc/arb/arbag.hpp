#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "agc/arb/defective.hpp"
#include "agc/graph/orientation.hpp"
#include "agc/runtime/iterative.hpp"

/// \file arbag.hpp
/// Algorithm Arbdefective-Color (Section 6): an O(p)-arbdefective
/// O(Delta/p)-coloring in O(Delta/p + log* n) rounds.
///
/// Seeded by a p-defective O((Delta/p)^2)-coloring psi, every vertex runs the
/// AG iteration over Z_q (q = Theta(Delta/p) prime) with a *tolerant*
/// finalize rule: it freezes on <0,b> as soon as at most p neighbors of a
/// DIFFERENT psi-color share its second coordinate.  Within 2*ceil(Delta/p)+1
/// rounds every vertex freezes (Lemma 6.1); orienting every monochromatic
/// edge toward the endpoint that froze first bounds each color class's
/// out-degree by p + (seed defect), i.e. arboricity O(p) (Lemma 6.2).

namespace agc::arb {

/// The ArbAG update rule as a locally-iterative color function (so it runs
/// on the engine, in SET-LOCAL included).  A state packs the immutable seed
/// color with the AG pair: state = psi * q^2 + a*q + b; <0,b> (a == 0) is
/// frozen.  The tolerant finalize rule freezes when at most `p` neighbors of
/// a DIFFERENT seed color share b.
///
/// Note: unlike AG proper, the maintained colorings are arbdefective rather
/// than proper, so run it with check_proper_each_round = false.
class ArbAgRule final : public runtime::IterativeRule {
 public:
  ArbAgRule(std::uint64_t q, std::size_t p) : q_(q), p_(p) {}

  [[nodiscard]] Color step(Color own,
                           std::span<const Color> neighbors) const override;
  [[nodiscard]] bool is_final(Color c) const override {
    return (c % (q_ * q_)) / q_ == 0;  // a == 0
  }
  [[nodiscard]] std::uint32_t color_bits() const override { return 64; }

  [[nodiscard]] static Color pack(std::uint64_t psi, std::uint64_t a,
                                  std::uint64_t b, std::uint64_t q) {
    return psi * q * q + a * q + b;
  }
  [[nodiscard]] std::uint64_t q() const noexcept { return q_; }

  /// The final class of a frozen state: its b coordinate.
  [[nodiscard]] Color class_of(Color c) const { return c % q_; }

 private:
  std::uint64_t q_;
  std::size_t p_;
};

/// RunReport core (rounds = AG + seed rounds as measured, converged, metrics,
/// telemetry) plus the arbdefective classes and their witnesses.
struct ArbdefectiveResult : runtime::RunReport {
  std::vector<Color> classes;                ///< final b-values, < num_classes
  std::vector<std::size_t> finalize_round;   ///< freeze round per vertex
  std::uint64_t num_classes = 0;             ///< q = O(Delta/p)
  std::size_t window = 0;                    ///< worst-case AG rounds, 2*ceil(D/p)+1
  std::size_t seed_rounds = 0;
  std::size_t seed_defect = 0;
};

/// Compute an O(p)-arbdefective O(Delta/p)-coloring of g.  `opts` supplies
/// the unified run configuration (executor backend, adversary, observability
/// hooks); the AG stage's round cap is the algorithm's own window, so
/// RunOptions::max_rounds is ignored.
[[nodiscard]] ArbdefectiveResult arbdefective_color(
    graph::GraphView g, std::size_t p, std::uint64_t id_space,
    const runtime::RunOptions& opts = {});

/// The witness orientation of Lemma 6.2: monochromatic edges point toward
/// the endpoint with the lexicographically smaller (finalize_round, id); its
/// max out-degree bounds the arbdefect.  Edges between different classes are
/// oriented arbitrarily (they do not matter for arboricity of the classes).
[[nodiscard]] graph::Orientation arb_orientation(graph::GraphView g,
                                                 const ArbdefectiveResult& arb);

/// Max out-degree of arb_orientation over monochromatic edges only — the
/// measured arbdefect witness.
[[nodiscard]] std::size_t measured_arbdefect(graph::GraphView g,
                                             const ArbdefectiveResult& arb);

}  // namespace agc::arb
