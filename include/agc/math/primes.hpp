#pragma once

#include <cstdint>
#include <optional>

/// \file primes.hpp
/// Deterministic primality testing and prime search for 64-bit integers.
///
/// The additive-group algorithms (AG, 3AG, ArbAG) require a prime modulus q
/// with 2*Delta < q = O(Delta); Linial's color reduction requires prime field
/// sizes of order Delta * polylog.  All moduli in this library fit comfortably
/// in 64 bits, so a deterministic Miller-Rabin witness set suffices.

namespace agc::math {

/// Deterministic Miller-Rabin primality test, valid for all n < 2^64.
/// Uses the standard 12-witness set {2,3,5,7,11,13,17,19,23,29,31,37}.
[[nodiscard]] bool is_prime(std::uint64_t n) noexcept;

/// Smallest prime p with p >= n.  n must be <= 2^63 (always true here).
[[nodiscard]] std::uint64_t next_prime(std::uint64_t n) noexcept;

/// Smallest prime p with p > n.
[[nodiscard]] std::uint64_t next_prime_above(std::uint64_t n) noexcept;

/// A prime in the half-open interval [lo, hi), if one exists.
/// By Bertrand's postulate, [n, 2n) always contains a prime for n >= 1.
[[nodiscard]] std::optional<std::uint64_t> prime_in_range(std::uint64_t lo,
                                                          std::uint64_t hi) noexcept;

/// (a * b) mod m without overflow, for m < 2^63.
[[nodiscard]] std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b,
                                    std::uint64_t m) noexcept;

/// (base ^ exp) mod m without overflow, for m < 2^63.
[[nodiscard]] std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp,
                                    std::uint64_t m) noexcept;

}  // namespace agc::math
