#pragma once

#include <cstdint>

/// \file iterated_log.hpp
/// log2 helpers and the iterated logarithm log* n, the canonical yardstick for
/// Linial-style color reductions.

namespace agc::math {

/// floor(log2(n)) for n >= 1.
[[nodiscard]] int log2_floor(std::uint64_t n) noexcept;

/// ceil(log2(n)) for n >= 1.
[[nodiscard]] int log2_ceil(std::uint64_t n) noexcept;

/// log* n: the number of times log2 must be iterated, starting from n, until
/// the value drops below 2.  log*(1) = 0, log*(2) = 1, log*(16) = 3,
/// log*(65536) = 4.
[[nodiscard]] int log_star(std::uint64_t n) noexcept;

}  // namespace agc::math
