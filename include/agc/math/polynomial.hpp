#pragma once

#include <cstdint>
#include <vector>

#include "agc/math/gf.hpp"

/// \file polynomial.hpp
/// Polynomials over GF(q), the engine of Linial's color reduction.
///
/// Linial's algorithm maps a color c (an integer) to the polynomial g_c over
/// GF(q) whose coefficients are the base-q digits of c.  Two distinct colors
/// map to distinct polynomials of degree <= d, which agree on at most d
/// points; if q > d * Delta, some evaluation point x gives a pair <x, g_c(x)>
/// different from every neighbor's pair, shrinking the palette from q^{d+1}
/// to q^2 in one round.

namespace agc::math {

/// A dense polynomial over GF(q), lowest-degree coefficient first.
class Polynomial {
 public:
  Polynomial(GF field, std::vector<std::uint64_t> coeffs)
      : field_(field), coeffs_(std::move(coeffs)) {
    for (auto& c : coeffs_) c = field_.reduce(c);
    trim();
  }

  /// The polynomial whose coefficient vector is the base-q representation of
  /// `value` (so distinct values in [0, q^{max_degree+1}) yield distinct
  /// polynomials of degree <= max_degree).
  static Polynomial from_digits(GF field, std::uint64_t value, int max_degree);

  [[nodiscard]] std::uint64_t eval(std::uint64_t x) const noexcept;

  [[nodiscard]] int degree() const noexcept {
    return static_cast<int>(coeffs_.size()) - 1;  // -1 for the zero polynomial
  }

  [[nodiscard]] const std::vector<std::uint64_t>& coefficients() const noexcept {
    return coeffs_;
  }

  [[nodiscard]] const GF& field() const noexcept { return field_; }

  friend bool operator==(const Polynomial& a, const Polynomial& b) noexcept {
    return a.field_.modulus() == b.field_.modulus() && a.coeffs_ == b.coeffs_;
  }

 private:
  void trim() {
    while (!coeffs_.empty() && coeffs_.back() == 0) coeffs_.pop_back();
  }

  GF field_;
  std::vector<std::uint64_t> coeffs_;
};

}  // namespace agc::math
