#pragma once

#include <cassert>
#include <cstdint>

#include "agc/math/primes.hpp"

/// \file gf.hpp
/// Arithmetic in Z_m (additive group modulo m) and GF(p) (prime field).
///
/// The AG family of algorithms performs its color updates in Z_q for a prime
/// q (Section 3 of the paper), but the exact-(Delta+1) finisher AG(N) works in
/// Z_N for a *composite* N = Delta+1 (Section 7).  `Zm` models the additive
/// group (addition/subtraction only); `GF` additionally provides
/// multiplication and inversion, and asserts a prime modulus.

namespace agc::math {

/// The additive group of integers modulo m.  Values are canonical (< m).
class Zm {
 public:
  explicit Zm(std::uint64_t modulus) : m_(modulus) { assert(m_ >= 1); }

  [[nodiscard]] std::uint64_t modulus() const noexcept { return m_; }

  [[nodiscard]] std::uint64_t reduce(std::uint64_t x) const noexcept { return x % m_; }

  [[nodiscard]] std::uint64_t add(std::uint64_t a, std::uint64_t b) const noexcept {
    assert(a < m_ && b < m_);
    std::uint64_t s = a + b;
    return s >= m_ ? s - m_ : s;
  }

  [[nodiscard]] std::uint64_t sub(std::uint64_t a, std::uint64_t b) const noexcept {
    assert(a < m_ && b < m_);
    return a >= b ? a - b : a + m_ - b;
  }

  [[nodiscard]] std::uint64_t neg(std::uint64_t a) const noexcept {
    assert(a < m_);
    return a == 0 ? 0 : m_ - a;
  }

 private:
  std::uint64_t m_;
};

/// The prime field GF(p).  Construction asserts primality.
class GF : public Zm {
 public:
  explicit GF(std::uint64_t p) : Zm(p) { assert(is_prime(p)); }

  [[nodiscard]] std::uint64_t mul(std::uint64_t a, std::uint64_t b) const noexcept {
    assert(a < modulus() && b < modulus());
    return mul_mod(a, b, modulus());
  }

  [[nodiscard]] std::uint64_t pow(std::uint64_t a, std::uint64_t e) const noexcept {
    return pow_mod(a, e, modulus());
  }

  /// Multiplicative inverse via Fermat's little theorem; a must be non-zero.
  [[nodiscard]] std::uint64_t inv(std::uint64_t a) const noexcept {
    assert(a != 0 && a < modulus());
    return pow(a, modulus() - 2);
  }
};

}  // namespace agc::math
