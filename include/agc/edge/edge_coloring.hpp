#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "agc/coloring/ag3.hpp"
#include "agc/graph/checks.hpp"
#include "agc/runtime/engine.hpp"
#include "agc/runtime/metrics.hpp"
#include "agc/runtime/run_options.hpp"
#include "agc/runtime/run_report.hpp"

/// \file edge_coloring.hpp
/// The distributed (2*Delta-1)-edge-coloring of Section 5, in the CONGEST and
/// Bit-Round models.
///
/// Stage 1  ID + (i,j) exchange: Kuhn's 2-defective Delta^2-edge-coloring
///          (one O(log n)-bit and one O(log Delta)-bit message per edge).
/// Stage 2  Cole-Vishkin over each color class's edge-chains: the tail of an
///          edge computes the shrinking label and forwards it to the head
///          (O(log n) bits total per edge, the widths halving each round),
///          then three 3-bit shift-down rounds; yields a proper
///          3*Delta^2-edge-coloring.
/// Stage 3  AG on the edges: each endpoint tests for second-coordinate
///          conflicts among its incident edges and sends ONE BIT per edge
///          per round; both endpoints then apply the identical AG update.
///          O(Delta) rounds to an O(Delta)-edge-coloring (Lemma 5.1).
/// Stage 4  (optional) the mixed AG(p)/AG(N) rule on the line graph via a
///          2-bit-per-edge exchange, finishing at exactly 2*Delta-1 colors
///          (Theorem 5.3).
///
/// With `bit_round` set, every multi-bit message is serialized one bit per
/// round (the schedule's widths are ROM-computable, so sender and receiver
/// agree on framing), which realizes the O(Delta + log n) Bit-Round bound.

namespace agc::edge {

using graph::Color;

/// The lockstep logical-round schedule; all parameters are ROM-computable
/// from (id_space, delta), so every vertex derives the same schedule.
class EdgeSchedule {
 public:
  enum class Phase : std::uint8_t { Id, IJ, Cv, Shift, Ag, Exact };

  struct Slot {
    Phase phase;
    std::size_t index;    ///< index within the phase
    std::uint32_t width;  ///< message width in bits (per direction)
  };

  EdgeSchedule(std::uint64_t id_space, std::size_t delta, bool exact);

  [[nodiscard]] std::size_t logical_rounds() const { return slots_.size(); }
  [[nodiscard]] const Slot& slot(std::size_t lr) const { return slots_[lr]; }
  /// Total engine rounds when every message is serialized to 1 bit/round.
  [[nodiscard]] std::size_t total_bits() const;

  [[nodiscard]] std::uint64_t id_space() const { return id_space_; }
  [[nodiscard]] std::size_t delta() const { return delta_; }
  [[nodiscard]] std::uint64_t q() const { return q_; }
  [[nodiscard]] bool exact() const { return mixed_.has_value(); }
  [[nodiscard]] const coloring::MixedRule& mixed() const { return *mixed_; }

 private:
  std::uint64_t id_space_;
  std::size_t delta_;
  std::uint64_t q_ = 0;
  std::optional<coloring::MixedRule> mixed_;
  std::vector<Slot> slots_;
};

/// The per-vertex program driving its incident edges through the schedule.
class EdgeColoringProgram final : public runtime::VertexProgram {
 public:
  EdgeColoringProgram(const EdgeSchedule& sched, bool serialize)
      : sched_(sched), serialize_(serialize) {}

  void on_start(const runtime::VertexEnv& env) override;
  void on_send(const runtime::VertexEnv& env, runtime::OutboxRef& out) override;
  void on_receive(const runtime::VertexEnv& env,
                  const runtime::InboxRef& in) override;
  [[nodiscard]] bool halted(const runtime::VertexEnv&) const override {
    return lr_ >= sched_.logical_rounds();
  }

  /// Final color of the edge to neighbor `w` (valid once halted).
  [[nodiscard]] std::optional<Color> edge_color(graph::Vertex w) const;

 private:
  struct EdgeSlot {
    bool out = false;         ///< this endpoint is the tail (smaller ID)
    std::uint32_t mine = 0;   ///< i if out, j if in
    std::uint32_t other = 0;  ///< j if out, i if in
    std::uint64_t label = 0;  ///< Cole-Vishkin label
    std::uint64_t color = 0;  ///< AG / mixed state
  };

  [[nodiscard]] std::optional<std::uint64_t> word_for_port(
      const runtime::VertexEnv& env, std::size_t p);
  void apply(const runtime::VertexEnv& env,
             const std::vector<std::optional<std::uint64_t>>& in_words);

  /// Port of the class-predecessor of edge p (incoming with matching (i,j)),
  /// or npos.
  [[nodiscard]] std::size_t pred_port(std::size_t p) const;
  /// Port of the class-successor of edge p (outgoing with matching (i,j)).
  [[nodiscard]] std::size_t succ_port(std::size_t p) const;

  const EdgeSchedule& sched_;
  bool serialize_;
  std::size_t lr_ = 0;    ///< logical round
  std::uint32_t bit_ = 0; ///< bit cursor within the logical round (serialized)
  std::vector<graph::Vertex> nbrs_;
  std::vector<EdgeSlot> slots_;
  std::vector<std::optional<std::uint64_t>> pending_out_;
  std::vector<std::uint64_t> pending_new_label_;
  std::vector<std::optional<std::uint64_t>> in_acc_;
};

/// Unified RunOptions core (congest_bits, executor, adversary, observability
/// hooks) plus the edge colorer's own switches.  The protocol fixes the
/// communication model itself — CONGEST, or Bit-Round with `bit_round` set —
/// so RunOptions::model is ignored here.
struct EdgeColoringOptions : runtime::RunOptions {
  EdgeColoringOptions() = default;
  /*implicit*/ EdgeColoringOptions(const runtime::RunOptions& base)
      : runtime::RunOptions(base) {}

  bool exact = true;      ///< finish at exactly 2*Delta-1 colors
  bool bit_round = false; ///< Bit-Round model: 1 bit per edge per round
};

/// RunReport core plus the edge coloring and its bandwidth accounting.
struct EdgeColoringResult : runtime::RunReport {
  std::vector<Color> colors;  ///< aligned with edge_list(g)
  std::size_t palette = 0;
  bool proper = false;
  double avg_bits_per_edge = 0.0;
  std::uint64_t max_bits_per_edge = 0;  ///< over directed edges
};

/// Run the full distributed edge-coloring pipeline on g.
[[nodiscard]] EdgeColoringResult color_edges_distributed(
    graph::GraphView g, const EdgeColoringOptions& opts = {});

}  // namespace agc::edge
