#pragma once

#include <cstdint>
#include <vector>

#include "agc/graph/checks.hpp"
#include "agc/graph/graph.hpp"

/// \file defective_edge.hpp
/// Kuhn's 2-defective Delta^2-edge-coloring (the first stage of Section 5)
/// and the chain structure its color classes induce.
///
/// Every edge is oriented toward its larger-ID endpoint; the tail assigns it
/// a color i from the tail's outgoing palette {1..Delta}, the head a color j
/// from the head's incoming palette.  Any vertex touches at most one class-
/// <i,j> edge as a tail and one as a head, so each color class is a disjoint
/// union of directed edge-chains (paths/cycles) — exactly what Cole-Vishkin
/// 3-colors to remove the defect.
///
/// These are host-side reference implementations used by tests and by the
/// benchmark harness; the distributed CONGEST/Bit-Round program in
/// edge_coloring.hpp computes the same objects with messages.

namespace agc::edge {

using graph::Color;

struct EdgePair {
  std::uint32_t i = 0;  ///< tail's outgoing color, 1-based
  std::uint32_t j = 0;  ///< head's incoming color, 1-based
};

/// The 2-defective pair coloring, aligned with edge_list(g).  Edge (u,v) with
/// u < v is oriented u -> v (toward the larger ID).
[[nodiscard]] std::vector<EdgePair> kuhn_defective_pairs(graph::GraphView g);

/// Within-class successor links: succ[e] is the index (into edge_list(g)) of
/// the class-<i,j> edge leaving e's head, or SIZE_MAX if none.
[[nodiscard]] std::vector<std::size_t> class_successors(
    graph::GraphView g, const std::vector<EdgePair>& pairs);

/// The proper 3*Delta^2-edge-coloring after Cole-Vishkin defect removal:
/// color(e) = ((i-1)*Delta + (j-1))*3 + k with k in {0,1,2}.  `rounds_out`,
/// if non-null, receives the simulated round count (log* + O(1)).
[[nodiscard]] std::vector<Color> defect_free_edge_coloring(
    graph::GraphView g, std::size_t* rounds_out = nullptr);

}  // namespace agc::edge
