#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "agc/faultlab/channel.hpp"
#include "agc/faultlab/zoo.hpp"
#include "agc/graph/spec.hpp"
#include "agc/runtime/faults.hpp"
#include "agc/runtime/run_options.hpp"
#include "agc/runtime/run_report.hpp"

/// \file campaign.hpp
/// The campaign scheduler: batched multi-run execution of simulation fleets.
///
/// A Campaign is a declarative list of jobs — (algorithm, GraphSpec, seed,
/// RunOptions overrides, optional fault plan) — with optional dependencies
/// between them.  run_campaign() executes the list on a two-level scheduler:
/// worker threads steal whole jobs from a shared ready set (lowest eligible
/// job id first) while each job's round engine runs on its worker's own
/// sharded executor (`threads_per_job`).  Identical GraphSpecs are built
/// once and shared immutably across jobs (the Engine copies its graph), and
/// a memory budget gates admission so a fleet of large graphs cannot pile
/// into RAM at once.
///
/// Determinism contract (docs/SCHED.md): every job's outcome is a pure
/// function of its JobSpec — never of scheduling — and the CampaignReport is
/// folded in job-id order after all jobs complete.  The default JSONL
/// rendering excludes wall-clock fields, so a campaign's aggregate output is
/// bit-identical for 1, 2 or 8 workers and any completion order; pass
/// include_timing to trade that for wall times.
///
/// Fault integration: a JobSpec may carry a declarative FaultSpec (seeded
/// channel + periodic RAM/topology adversary, or a recorded plan to replay).
/// Such jobs run under the faultlab stabilization harness; when the watchdog
/// reports a violation the scheduler retries the job up to `max_attempts`
/// times with a per-attempt derived seed — the nightly fuzz campaigns are
/// exactly this loop.

namespace agc::obs {
class EventSink;
}  // namespace agc::obs

namespace agc::sched {

/// Declarative fault configuration for one job.  Value-type (unlike the live
/// hook pointers in RunOptions) so a job can be re-run for retries and
/// replayed anywhere.  Seeds are rotated per attempt via attempt_seed().
struct FaultSpec {
  /// Wire faults (faultlab::ChannelAdversary); all-zero rates = clean wire.
  /// The seed field is ignored: both fault streams derive from the job seed
  /// (see attempt_seed), so sweeping JobSpec::seed re-rolls the faults.
  faultlab::ChannelFaultConfig channel;
  /// RAM/topology faults (runtime::PeriodicAdversary); default Schedule with
  /// no primitives configured = no adversary.
  runtime::PeriodicAdversary::Schedule periodic;
  /// Production-shaped adversaries (faultlab::zoo): regional outages,
  /// flapping links, Byzantine neighbors, adaptive targeting, churn traces.
  /// All-disabled by default; stream seeds derive from the job seed.
  faultlab::ZooSpec zoo;
  /// Replay a recorded fault plan instead of injecting fresh faults; the
  /// channel/periodic arms are ignored when set.
  std::string plan_path;
  /// Record the injected faults and, when the job's final attempt still
  /// fails, save the plan here — the artifact the nightly fuzz campaign
  /// uploads for `agc-faultplan shrink` + replay.
  std::string plan_out;
  /// Stabilization-harness knobs (see faultlab::StabilizationSpec).
  std::size_t recovery_budget = 100'000;
  std::size_t confirm_rounds = 8;

  [[nodiscard]] bool any() const noexcept {
    return !plan_path.empty() || channel.total_per_million() > 0 ||
           periodic.corrupt + periodic.clones + periodic.edge_adds +
                   periodic.edge_removes >
               0 ||
           zoo.any();
  }
};

/// One cell of a campaign grid.  The scheduler owns the executor and the
/// fault/sink hook pointers: whatever `opts` carries in those fields is
/// replaced (executor) or ignored (adversary/channel/sink — use `faults`).
struct JobSpec {
  std::string algorithm;       ///< registry name; see runners()
  graph::GraphSpec graph;      ///< also the cache key (content_hash)
  std::uint64_t seed = 1;      ///< fault-seed base, rotated per retry attempt
  std::string tag;             ///< freeform label copied into the result row
  runtime::RunOptions opts;    ///< model / congest_bits / max_rounds overrides
  std::uint64_t id_space_factor = 1;
  FaultSpec faults;
  std::vector<std::size_t> deps;  ///< job ids that must complete first
};

/// Per-job outcome: the unified RunReport core plus campaign bookkeeping.
/// Everything except `wall_ns` (inherited) is a deterministic function of
/// the JobSpec.
struct JobResult : runtime::RunReport {
  std::size_t job = 0;
  std::string algorithm;
  std::string graph;  ///< canonical GraphSpec spelling
  std::string tag;
  std::uint64_t seed = 1;
  bool ok = false;           ///< the runner's success predicate
  std::size_t palette = 0;   ///< colors used (0 where meaningless)
  /// Runner-specific extras in a fixed, runner-declared order
  /// (e.g. recovery_rounds, adjusted, mis_size).
  std::vector<std::pair<std::string, double>> values;
  std::string error;         ///< exception / watchdog violation text
  bool watchdog = false;     ///< true when `error` is a watchdog violation
  bool cache_hit = false;    ///< graph shared from an earlier job
  std::size_t attempts = 1;  ///< 1 + retries taken
};

/// The declarative job list.  Plain text file format (one job per line,
/// whitespace-separated key=value tokens, `#` comments):
///
///   algo=ag graph=regular:n=1500,d=8,seed=1242 seed=1 tag=d8
///
/// Keys: algo graph seed tag model congest max-rounds idspace deps
/// chan-seed chan-drop chan-corrupt chan-dup chan-delay chan-first chan-last
/// adv-period adv-last adv-corrupt adv-range adv-clones adv-eadds
/// adv-eremoves adv-dmax plan budget confirm, plus the adversary-zoo
/// families (docs/FAULTS.md): out-lo out-hi out-first out-last, flap-down
/// flap-up flap-first flap-last, byz-liars byz-rate byz-first byz-last,
/// adapt-period adapt-count adapt-last adapt-target(degree|recent),
/// churn-events churn-alpha churn-attach churn-resets churn-first
/// churn-last churn-dmax churn-grow.  Probabilities are floats in [0,1];
/// deps is a comma list of 0-based job line indexes.
class Campaign {
 public:
  /// Append one job; returns its id (= index, = execution priority).
  std::size_t add(JobSpec job);

  /// Expand the cross product algorithms x graphs x seeds, cloning
  /// `base` (its algorithm/graph/seed fields are overwritten) — jobs are
  /// appended in axis order: algorithm-major, then graph, then seed.
  void add_grid(const std::vector<std::string>& algorithms,
                const std::vector<graph::GraphSpec>& graphs,
                const std::vector<std::uint64_t>& seeds,
                const JobSpec& base = {});

  /// `job` will not start before `dep` completed.  Both must already exist.
  void depend(std::size_t job, std::size_t dep);

  [[nodiscard]] std::size_t size() const noexcept { return jobs_.size(); }
  [[nodiscard]] bool empty() const noexcept { return jobs_.empty(); }
  [[nodiscard]] const JobSpec& job(std::size_t id) const { return jobs_.at(id); }
  [[nodiscard]] const std::vector<JobSpec>& jobs() const noexcept { return jobs_; }

  /// Parse the file format above; throws std::invalid_argument on unknown
  /// keys/algorithms, bad graph specs, or out-of-range deps.
  [[nodiscard]] static Campaign parse(std::istream& in);
  [[nodiscard]] static Campaign parse_file(const std::string& path);  ///< throws

  /// Render back to the file format (non-default keys only); round-trips
  /// through parse().
  [[nodiscard]] std::string format() const;

 private:
  std::vector<JobSpec> jobs_;
};

struct ScheduleOptions {
  /// Across-job worker threads (level 1 of the scheduler).  1 = run inline.
  std::size_t threads = 1;
  /// Executor threads per job (level 2, within-run sharding).  1 = sequential
  /// round engine; results are bit-identical either way (docs/EXEC.md).
  std::size_t threads_per_job = 1;
  /// Backpressure: a job is admitted only while the estimated_bytes() of
  /// running jobs stays within this budget (a lone job always admits, so a
  /// tiny budget degrades to serial execution instead of deadlocking).
  /// 0 = unlimited.
  std::size_t memory_budget_bytes = 0;
  /// Retry budget per job for watchdog violations (fault jobs only); each
  /// attempt re-derives its fault seeds via attempt_seed().
  std::size_t max_attempts = 1;
  /// Campaign-level sink: receives RunStart, one StageEnd per job (in job-id
  /// order, emitted at fold time on the driving thread), and RunEnd.
  obs::EventSink* sink = nullptr;
  /// Include wall-clock fields in to_jsonl()/sink events.  Off by default —
  /// timing is the one thing scheduling may change.
  bool include_timing = false;
};

/// The folded campaign outcome.  `jobs` is in job-id order regardless of
/// completion order; every field except wall_ns/peak_bytes_in_flight is
/// deterministic (thread-count- and scheduling-independent).
struct CampaignReport {
  std::vector<JobResult> jobs;
  std::size_t ok_count = 0;
  std::size_t cache_hits = 0;    ///< jobs served a previously-built graph
  std::size_t cache_misses = 0;  ///< distinct GraphSpecs built
  std::size_t retries = 0;       ///< sum of (attempts - 1)
  runtime::Metrics totals;       ///< job-id-order fold of per-job metrics
  std::uint64_t wall_ns = 0;               ///< timing: excluded from JSONL
  std::size_t peak_bytes_in_flight = 0;    ///< scheduling: excluded from JSONL

  [[nodiscard]] bool all_ok() const noexcept { return ok_count == jobs.size(); }

  /// One JSON object per job (job-id order) plus a trailing aggregate line.
  /// Bit-identical across thread counts unless include_timing is set.
  [[nodiscard]] std::string to_jsonl(bool include_timing = false) const;
};

/// Execute the campaign.  Throws std::invalid_argument on unknown algorithm
/// names or dependency cycles (validated before any job starts); per-job
/// runtime failures land in JobResult::error instead of propagating.
[[nodiscard]] CampaignReport run_campaign(const Campaign& campaign,
                                          const ScheduleOptions& opts = {});

// --- Algorithm registry (src/sched/registry.cpp) ---------------------------

/// What a registry runner sees: the cached graph, the job's spec, and the
/// RunOptions to thread through (executor preset by the scheduler; the fault
/// hooks are wired by the runner from spec.faults using attempt_seed()).
struct RunnerContext {
  graph::GraphView g;
  const JobSpec& spec;
  runtime::RunOptions opts;
  std::size_t attempt = 1;  ///< 1-based retry attempt
};

/// Runners fill ok/palette/values and the RunReport core; the scheduler owns
/// job/graph/tag/cache_hit/attempts.
using RunnerFn = JobResult (*)(const RunnerContext&);

struct Runner {
  const char* name;     ///< registry key; static lifetime (used as event label)
  const char* summary;  ///< one line for `campaign ls`
  RunnerFn fn;
  /// Whether this runner executes FaultSpecs (the ss-* stabilization
  /// runners).  Campaigns reject fault jobs on other runners up front.
  bool faults = false;
};

/// All built-in runners: gps, kw, ag, exact, odelta, mis, matching,
/// ss-color, ss-color-exact.
[[nodiscard]] std::span<const Runner> runners();

/// Lookup by name; null when unknown.
[[nodiscard]] const Runner* find_runner(std::string_view name);

/// Deterministic per-attempt fault seed: attempt 1 returns `base` unchanged;
/// later attempts mix the attempt index in (splitmix64 finalizer), so a
/// retried job faces fresh-but-reproducible faults.  The ss runners use
/// attempt_seed(spec.seed, attempt) for the RAM/topology stream and
/// attempt_seed(spec.seed ^ kChannelStream, attempt) for the wire stream.
[[nodiscard]] std::uint64_t attempt_seed(std::uint64_t base,
                                         std::size_t attempt) noexcept;

}  // namespace agc::sched
