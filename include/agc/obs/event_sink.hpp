#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "agc/obs/phase_timer.hpp"

/// \file event_sink.hpp
/// Pluggable structured event sinks for run telemetry.
///
/// Runners and the engine emit fixed-size Event records at round and stage
/// boundaries; a sink decides what to do with them.  The default is no sink
/// at all (a null pointer in RunOptions): emission is skipped behind one
/// branch and the steady-state round loop stays allocation-free.  NullSink
/// exists for call sites that want an EventSink& unconditionally; RingSink
/// keeps the last N events in a preallocated buffer (also allocation-free at
/// steady state, honoring the arena discipline of docs/EXEC.md); JsonlSink
/// streams one JSON object per line for offline analysis with `agc-trace`.
///
/// Threading contract: events are emitted between round phases by the thread
/// driving the engine, never from executor shards, so sinks need no locks.

namespace agc::obs {

enum class EventKind : std::uint8_t {
  RunStart = 0,  ///< value = n (vertices); label = run tag
  RoundEnd,      ///< value = directed messages delivered this round; ns = round wall
  StageStart,    ///< value = stage index; label = stage tag
  StageEnd,      ///< value = stage rounds; label = stage tag
  Fault,         ///< value = adversary events injected; round = rounds so far
  Check,         ///< value = 1 if the per-round predicate held, else 0
  RunEnd,        ///< value = total rounds; ns = run wall
  kCount,
};

[[nodiscard]] std::string_view event_kind_name(EventKind k) noexcept;

/// A fixed-size, trivially-copyable event record.  `label` must point at
/// storage that outlives the sink's consumption of the event; emitters use
/// string literals (stage tags, adversary names).
struct Event {
  EventKind kind = EventKind::RoundEnd;
  std::uint64_t round = 0;      ///< engine rounds completed when emitted
  const char* label = nullptr;  ///< static tag, may be null
  std::uint64_t value = 0;      ///< kind-specific payload (see EventKind)
  std::uint64_t ns = 0;         ///< kind-specific wall time, 0 if n/a
};

class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void emit(const Event& event) = 0;
};

/// Swallows everything.  Behaviorally identical to passing no sink; exists so
/// APIs that want a non-null EventSink& have a canonical off state.
class NullSink final : public EventSink {
 public:
  void emit(const Event&) override {}
};

/// Fixed-capacity in-memory ring: keeps the newest `capacity` events, never
/// allocates after construction.
class RingSink final : public EventSink {
 public:
  explicit RingSink(std::size_t capacity);

  void emit(const Event& event) override;

  /// Total events ever emitted (>= stored count).
  [[nodiscard]] std::size_t seen() const noexcept { return seen_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return buf_.size(); }

  /// The retained events, oldest first.  Allocates; not for the hot path.
  [[nodiscard]] std::vector<Event> snapshot() const;

 private:
  std::vector<Event> buf_;
  std::size_t next_ = 0;  ///< next write slot
  std::size_t seen_ = 0;
};

/// Append `in` to `out` with JSON string escaping (quotes, backslashes,
/// control characters as \uXXXX; multi-byte UTF-8 passes through).
void json_escape(std::string_view in, std::string& out);

/// One JSON object per line, e.g.
///   {"kind":"round_end","round":12,"value":4096,"ns":18234}
/// The stream must outlive the sink.  Buffers one line at a time; reuses the
/// line buffer so steady-state emission does not allocate once the longest
/// line has been seen.
class JsonlSink final : public EventSink {
 public:
  explicit JsonlSink(std::ostream& out) : out_(&out) {}

  void emit(const Event& event) override;

  [[nodiscard]] std::size_t lines() const noexcept { return lines_; }

 private:
  std::ostream* out_;
  std::string line_;
  std::size_t lines_ = 0;
};

}  // namespace agc::obs
