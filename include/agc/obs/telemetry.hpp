#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "agc/obs/phase_timer.hpp"

/// \file telemetry.hpp
/// The unified counters/gauges registry a run exports.
///
/// Metrics (rounds/messages/bits), the per-edge bit ledger's maximum, the
/// trace recorder's convergence gauges and the phase timers all count things
/// about one run; Telemetry is the single object that collects them, reached
/// through RunReport::telemetry().  It is assembled once at run end (so it
/// may allocate freely) and renders itself as JSON or as a per-phase
/// flamegraph-style summary for terminals and `agc-trace`.

namespace agc::obs {

struct TelemetryCounter {
  std::string name;
  std::uint64_t value = 0;
};

class Telemetry {
 public:
  /// Folded phase timings (all-zero when phase collection was off).
  PhaseStats phases;
  /// End-to-end wall time of the run, including runner-side work.
  std::uint64_t wall_ns = 0;

  /// Set (or overwrite) a named counter.
  void set(std::string_view name, std::uint64_t value);

  [[nodiscard]] std::uint64_t get(std::string_view name,
                                  std::uint64_t dflt = 0) const noexcept;

  [[nodiscard]] const std::vector<TelemetryCounter>& counters() const noexcept {
    return counters_;
  }

  /// Derived gauge: rounds per wall second (0 when either is unknown).
  [[nodiscard]] double rounds_per_sec() const noexcept;

  /// One JSON object: counters, wall_ns, and a nested phases object with ns
  /// and call counts per phase.
  [[nodiscard]] std::string to_json() const;

  /// Terminal flamegraph-style view: one bar per phase, widest first, with
  /// percentages of the total attributed time.
  void write_summary(std::ostream& out, std::size_t width = 44) const;

 private:
  std::vector<TelemetryCounter> counters_;
};

}  // namespace agc::obs
