#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

/// \file phase_timer.hpp
/// Scoped phase timers for the round engine's observability layer.
///
/// A synchronous round decomposes into phases (send, deliver, receive, the
/// executor's barrier waits, plus runner-level work such as the per-round
/// properness check).  When profiling is enabled, each shard accumulates
/// nanoseconds and call counts per phase into its own PhaseStats; the profile
/// folds them in shard order — exactly the deterministic reduce discipline
/// Metrics uses — so a report's phase breakdown is reproducible modulo the
/// clock itself.
///
/// Everything here is allocation-free at steady state: PhaseStats is a pair
/// of fixed arrays, ScopedPhaseTimer is two monotonic-clock reads, and
/// PhaseProfile only allocates when the shard count grows.  A null stats
/// pointer disables a timer entirely (one branch, no clock read), which is
/// how the default run configuration stays out of the hot path.

namespace agc::obs {

/// The phase taxonomy (see docs/OBSERVABILITY.md).  Engine phases come from
/// RoundContext; Barrier is the executor's fork/join idle time; Check and
/// Observer are runner-level (properness assertion, on_round callbacks).
enum class Phase : std::uint8_t {
  Send = 0,  ///< on_send + transport validation (compute)
  Deliver,   ///< receiver-sharded accounting over the frozen arena
  Receive,   ///< on_receive state updates (compute)
  Barrier,   ///< executor fork/join idle: shards waiting on the slowest shard
  Check,     ///< per-round properness / stability predicate evaluation
  Observer,  ///< on_round observers (trace recorders, user callbacks)
  Fault,     ///< adversary injection between rounds
  kCount,
};

inline constexpr std::size_t kPhaseCount = static_cast<std::size_t>(Phase::kCount);

[[nodiscard]] std::string_view phase_name(Phase p) noexcept;

/// Monotonic wall clock in nanoseconds (steady_clock, never adjusted).
[[nodiscard]] inline std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One accumulator set: nanoseconds and invocation counts per phase.
struct PhaseStats {
  std::array<std::uint64_t, kPhaseCount> ns{};
  std::array<std::uint64_t, kPhaseCount> calls{};

  void add(Phase p, std::uint64_t delta_ns) noexcept {
    ns[static_cast<std::size_t>(p)] += delta_ns;
    ++calls[static_cast<std::size_t>(p)];
  }

  [[nodiscard]] std::uint64_t phase_ns(Phase p) const noexcept {
    return ns[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] std::uint64_t phase_calls(Phase p) const noexcept {
    return calls[static_cast<std::size_t>(p)];
  }

  /// Deterministic reduce: both counters add (there is no max-typed field),
  /// mirroring Metrics::merge so stage accumulation composes the same way.
  void merge(const PhaseStats& other) noexcept {
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      ns[i] += other.ns[i];
      calls[i] += other.calls[i];
    }
  }

  [[nodiscard]] std::uint64_t total_ns() const noexcept {
    std::uint64_t t = 0;
    for (const auto v : ns) t += v;
    return t;
  }

  [[nodiscard]] bool empty() const noexcept {
    for (const auto c : calls) {
      if (c != 0) return false;
    }
    return true;
  }
};

/// RAII phase timer.  A null stats pointer is the disabled state: the
/// constructor and destructor each cost one branch and no clock read.
class ScopedPhaseTimer {
 public:
  ScopedPhaseTimer(PhaseStats* stats, Phase phase) noexcept
      : stats_(stats), phase_(phase), start_(stats ? monotonic_ns() : 0) {}
  ~ScopedPhaseTimer() {
    if (stats_ != nullptr) stats_->add(phase_, monotonic_ns() - start_);
  }

  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;

 private:
  PhaseStats* stats_;
  Phase phase_;
  std::uint64_t start_;
};

/// Per-shard phase accumulators plus one extra set for work that is not owned
/// by any shard (executor barriers, runner-level checks and observers).
///
/// Concurrency contract: during a phase, shard s writes only shard(s) — the
/// same ownership discipline the executor already enforces for programs and
/// Metrics — and the pool's join barrier orders those writes before folded()
/// runs on the driving thread.  The extra set is written by the driving
/// thread only.
class PhaseProfile {
 public:
  /// Grow to cover `shards` accumulator sets (never shrinks; no-op and
  /// allocation-free once the executor's shard count is stable).
  void ensure_shards(std::size_t shards) {
    if (shards_.size() < shards) shards_.resize(shards);
  }

  [[nodiscard]] PhaseStats* shard(std::size_t s) noexcept { return &shards_[s]; }
  [[nodiscard]] PhaseStats* extra() noexcept { return &extra_; }
  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Sum of `p`-phase busy time over all shards (used by executors to derive
  /// barrier idle time from a phase's wall clock).
  [[nodiscard]] std::uint64_t busy_ns(Phase p) const noexcept {
    std::uint64_t t = 0;
    for (const auto& s : shards_) t += s.phase_ns(p);
    return t;
  }

  /// Fold in shard order (then the extra set) — deterministic like
  /// RoundContext::reduce.
  [[nodiscard]] PhaseStats folded() const noexcept {
    PhaseStats total;
    for (const auto& s : shards_) total.merge(s);
    total.merge(extra_);
    return total;
  }

  void reset() noexcept {
    for (auto& s : shards_) s = PhaseStats{};
    extra_ = PhaseStats{};
  }

 private:
  std::vector<PhaseStats> shards_;
  PhaseStats extra_;
};

}  // namespace agc::obs
