#pragma once

#include <cstdint>

#include "agc/coloring/pipeline.hpp"

/// \file luby.hpp
/// Seeded Luby-style randomized (Delta+1)-coloring — the classic baseline
/// every distributed-coloring table is measured against.
///
/// Per round, every still-uncolored vertex draws a candidate uniformly from
/// its free list (the (Delta+1)-palette minus the colors of finalized
/// neighbors) and commits unless a neighbor holds that color or an active
/// neighbor drew the same candidate this round (symmetric defer — fresh
/// randomness next round breaks the tie).  With a fresh draw per round this
/// finishes in O(log n) rounds in expectation.
///
/// Determinism contract (RunOptions::seed): the candidate drawn by vertex v
/// in round r is H(seed, r, v) reduced onto the free list — a pure function
/// of (seed, round, vertex id), never of thread count, executor choice or
/// message arrival order.  A fixed seed therefore replays bit-identically
/// across 1/2/8 threads and per-step across the bsp/async executors (async
/// windowed driving may trim trailing bookkeeping rounds, like every
/// pipeline; the colors and per-vertex commit rounds are identical).
/// Distinct seeds give distinct trajectories.
///
/// Unlike everything else in coloring/, Luby is NOT locally-iterative: an
/// uncolored vertex has no proper color to maintain, so PipelineReport::
/// proper_each_round is reported false by construction.  That contrast —
/// randomized O(log n) without the invariant vs deterministic sublinear with
/// it — is exactly what the extended Table 1 measures.

namespace agc::coloring {

/// Run the seeded Luby-style coloring.  rounds_core carries the full round
/// count; palette <= Delta+1; RunOptions::seed selects the trajectory.
[[nodiscard]] PipelineReport color_luby(graph::GraphView g,
                                        const PipelineOptions& opts = {});

}  // namespace agc::coloring
