#pragma once

#include <vector>

#include "agc/coloring/pipeline.hpp"
#include "agc/graph/line_graph.hpp"

/// \file symmetry.hpp
/// The classic symmetry-breaking corollaries of fast (Delta+1)-coloring, in
/// their static distributed form: a proper k-coloring yields an MIS in <= k
/// additional rounds (each vertex decides once all smaller-colored neighbors
/// have), and MIS / vertex coloring on the line graph yield maximal matching
/// and (2Delta-1)-edge-coloring.  With the AG pipeline these all run in
/// O(Delta + log* n) rounds — the bounds the self-stabilizing variants of
/// Section 4 match under faults.

namespace agc::coloring {

/// RunReport core (rounds = coloring + MIS wave, converged == valid) plus
/// the membership flags and the per-phase round split.
struct MisReport : runtime::RunReport {
  std::vector<bool> in_mis;
  std::size_t rounds_coloring = 0;
  std::size_t rounds_mis = 0;  ///< <= palette of the input coloring
  bool valid = false;
};

/// Reduce a proper coloring to an MIS on the engine (one broadcast per round;
/// a vertex decides once every smaller-colored neighbor has decided, joining
/// iff no neighbor joined).
[[nodiscard]] MisReport mis_from_coloring(graph::GraphView g,
                                          const std::vector<Color>& colors,
                                          const runtime::IterativeOptions& opts = {});

/// End to end: AG pipeline + MIS reduction, O(Delta + log* n) rounds total.
[[nodiscard]] MisReport maximal_independent_set(graph::GraphView g,
                                                const PipelineOptions& opts = {});

/// RunReport core; `rounds` counts line-graph rounds (2x in the host graph).
struct MatchingReport : runtime::RunReport {
  std::vector<graph::Edge> matching;
  bool valid = false;
};

/// Maximal matching = MIS on the line graph (Section 4.2's reduction, static
/// form).  Round counts are line-graph rounds; a host-graph implementation
/// pays the standard factor-2 simulation overhead.
[[nodiscard]] MatchingReport maximal_matching(graph::GraphView g,
                                              const PipelineOptions& opts = {});

/// RunReport core; `rounds` counts line-graph rounds.
struct LineEdgeColoringReport : runtime::RunReport {
  std::vector<Color> colors;  ///< aligned with edge_list(g)
  std::size_t palette = 0;
  bool proper = false;
};

/// (2Delta-1)-edge-coloring by (Delta_L+1)-vertex-coloring L(G) — the LOCAL-
/// model baseline that Section 5's direct CONGEST algorithm replaces.
[[nodiscard]] LineEdgeColoringReport edge_coloring_via_line_graph(
    graph::GraphView g, const PipelineOptions& opts = {});

}  // namespace agc::coloring
