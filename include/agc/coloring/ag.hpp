#pragma once

#include <cstdint>

#include "agc/coloring/palette.hpp"
#include "agc/runtime/iterative.hpp"

/// \file ag.hpp
/// The Additive-Group (AG) coloring algorithm — Section 3 of the paper, and
/// the special coloring Szegedy-Vishwanathan conjectured not to exist.
///
/// Starting from a proper k-coloring with k <= q^2 for a prime q > 2*Delta,
/// every vertex repeats one uniform step: writing its color as <a,b> over
/// Z_q, if no neighbor shares its second coordinate b it finalizes to <0,b>;
/// otherwise it moves to <a, b+a mod q>.  Every intermediate coloring is
/// proper (Lemma 3.2) and all vertices finalize within q = O(Delta) rounds
/// (Corollary 3.5), yielding a proper q-coloring — below the
/// Omega(Delta log Delta) SV barrier.

namespace agc::coloring {

/// The prime modulus AG needs: the smallest prime q with q > 2*delta and
/// q^2 >= palette (so every initial color fits in a pair <a,b>).
[[nodiscard]] std::uint64_t ag_modulus(std::size_t delta, std::uint64_t palette);

/// The AG update rule (locally-iterative, SET-LOCAL executable).
class AgRule final : public runtime::IterativeRule {
 public:
  explicit AgRule(std::uint64_t q) : code_{q} {}

  [[nodiscard]] Color step(Color own,
                           std::span<const Color> neighbors) const override;
  [[nodiscard]] bool is_final(Color c) const override { return code_.is_final(c); }
  [[nodiscard]] std::uint32_t color_bits() const override;

  [[nodiscard]] std::uint64_t q() const noexcept { return code_.q; }

 private:
  PairCode code_;
};

/// Run AG to completion: proper k-coloring -> proper q-coloring in <= q
/// rounds.  `delta` is the degree bound the modulus is sized for.
[[nodiscard]] runtime::IterativeResult additive_group_color(
    graph::GraphView g, std::vector<Color> initial, std::size_t delta,
    const runtime::IterativeOptions& opts = {});

}  // namespace agc::coloring
