#pragma once

#include <cstdint>
#include <vector>

#include "agc/graph/checks.hpp"

/// \file palette.hpp
/// Color encodings shared by the AG family.
///
/// The paper represents a color as a pair <a,b> over Z_q (Section 3) or a
/// triple <c,b,a> over Z_p (Section 7).  We pack these into a single integer
/// color so they flow through the locally-iterative harness unchanged:
///   pair   <a,b>   ->  a*q + b          (a = "working" digit, b = value)
///   triple <c,b,a> ->  (c*p + b)*p + a

namespace agc::coloring {

using graph::Color;

/// Pair encoding over Z_q: color = a*q + b with 0 <= a,b < q.
struct PairCode {
  std::uint64_t q;

  [[nodiscard]] constexpr Color encode(std::uint64_t a, std::uint64_t b) const {
    return a * q + b;
  }
  [[nodiscard]] constexpr std::uint64_t a(Color c) const { return c / q; }
  [[nodiscard]] constexpr std::uint64_t b(Color c) const { return c % q; }
  [[nodiscard]] constexpr bool in_range(Color c) const { return c < q * q; }
  /// Final form <0,b>.
  [[nodiscard]] constexpr bool is_final(Color c) const { return c < q; }
};

/// Triple encoding over Z_p: color = (c*p + b)*p + a with 0 <= a,b,c < p.
struct TripleCode {
  std::uint64_t p;

  [[nodiscard]] constexpr Color encode(std::uint64_t c, std::uint64_t b,
                                       std::uint64_t a) const {
    return (c * p + b) * p + a;
  }
  [[nodiscard]] constexpr std::uint64_t c(Color x) const { return x / (p * p); }
  [[nodiscard]] constexpr std::uint64_t b(Color x) const { return (x / p) % p; }
  [[nodiscard]] constexpr std::uint64_t a(Color x) const { return x % p; }
  [[nodiscard]] constexpr bool in_range(Color x) const { return x < p * p * p; }
  /// Final form <0,0,a>.
  [[nodiscard]] constexpr bool is_final(Color x) const { return x < p; }
};

/// The identity coloring phi(v) = id(v): the canonical proper n-coloring that
/// every static run starts from.
[[nodiscard]] std::vector<Color> identity_coloring(std::size_t n);

}  // namespace agc::coloring
