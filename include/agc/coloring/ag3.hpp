#pragma once

#include <cstdint>

#include "agc/coloring/palette.hpp"
#include "agc/runtime/iterative.hpp"

/// \file ag3.hpp
/// Section 7: the 3-dimensional AG algorithm and the exact-(Delta+1)
/// machinery that avoids the standard color reduction altogether.
///
/// * ThreeAgRule  — 3AG(p): one uniform step that takes a proper p^3-coloring
///   to a proper p-coloring in O(p) rounds (Corollary 7.2).  Its uniformity
///   (all vertices always run the same step, no phases) is what makes it
///   suitable for self-stabilization.
/// * AgnRule      — AG(N): works in the additive group Z_N for a *composite*
///   N = Delta+1; takes a proper (<2N)-coloring to exactly Delta+1 colors in
///   N rounds.
/// * MixedRule    — the combined high/low algorithm: high colors run AG(p)
///   (gated so a high vertex cannot finalize while a low neighbor is still
///   working), low colors run AG(N).  Takes a proper O(Delta^2)-coloring to
///   exactly Delta+1 colors in O(Delta) rounds, one uniform locally-iterative
///   step throughout.

namespace agc::coloring {

/// Modulus for 3AG: smallest prime p with p >= 3*delta+1 and p^3 >= palette.
[[nodiscard]] std::uint64_t three_ag_modulus(std::size_t delta, std::uint64_t palette);

class ThreeAgRule final : public runtime::IterativeRule {
 public:
  explicit ThreeAgRule(std::uint64_t p) : code_{p} {}

  [[nodiscard]] Color step(Color own,
                           std::span<const Color> neighbors) const override;
  [[nodiscard]] bool is_final(Color x) const override { return code_.is_final(x); }
  [[nodiscard]] std::uint32_t color_bits() const override;

  [[nodiscard]] std::uint64_t p() const noexcept { return code_.p; }

 private:
  TripleCode code_;
};

/// AG(N) over the (possibly composite) additive group Z_N.  States are
/// <b,a> = b*N + a with b in {0,1}; <0,a> is final.  Input must be a proper
/// coloring with all colors < 2N.
class AgnRule final : public runtime::IterativeRule {
 public:
  explicit AgnRule(std::uint64_t n_colors) : n_(n_colors) {}

  [[nodiscard]] Color step(Color own,
                           std::span<const Color> neighbors) const override;
  [[nodiscard]] bool is_final(Color c) const override { return c < n_; }
  [[nodiscard]] std::uint32_t color_bits() const override {
    return runtime::width_of(2 * n_ - 1);
  }

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }

 private:
  std::uint64_t n_;
};

/// The combined high/low rule of Section 7.
///
/// Color ranges (disjoint, so the composed coloring stays proper):
///   [0, N)        — final colors (the target Delta+1 palette)
///   [N, 2N)       — AG(N) working states <1, a-N>
///   [2N, 2N+p^2)  — AG(p) high states <b,a> with b >= 1
///
/// A high vertex finalizes (drops to the low range) only when it has no
/// conflict AND no low neighbor is still working; otherwise it keeps
/// circling <b, a+b mod p>.
class MixedRule final : public runtime::IterativeRule {
 public:
  /// `delta` sizes N = delta+1; `palette` is the size of the proper input
  /// coloring (must be <= p^2 for the largest prime p <= 2*delta+1).
  MixedRule(std::size_t delta, std::uint64_t palette);

  [[nodiscard]] Color step(Color own,
                           std::span<const Color> neighbors) const override;
  [[nodiscard]] bool is_final(Color c) const override { return c < n_; }
  [[nodiscard]] std::uint32_t color_bits() const override;

  /// Map a proper input color (< palette) into the rule's state space.
  [[nodiscard]] Color lift(Color proper_color) const;

  /// The core transition given the two neighborhood predicates.  The edge
  /// variant (Section 5) evaluates the predicates with a 2-bit exchange per
  /// edge per round and then applies this same function at both endpoints.
  [[nodiscard]] Color transition(Color own, bool value_conflict,
                                 bool low_working_neighbor) const;

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t p() const noexcept { return p_; }

  /// A generous upper bound on rounds to convergence, used as the run cap.
  [[nodiscard]] std::size_t round_bound() const;

 private:
  std::uint64_t n_;  ///< N = delta+1
  std::uint64_t p_;  ///< prime, (1+eps)*delta <= p <= 2*delta+1
  std::size_t delta_;
};

/// Run MixedRule to completion: proper `initial` coloring (palette <= ~4Δ²)
/// -> proper (Delta+1)-coloring, all in O(Delta) uniform locally-iterative
/// rounds (no standard color reduction).
[[nodiscard]] runtime::IterativeResult exact_delta_plus_one(
    graph::GraphView g, std::vector<Color> initial, std::size_t delta,
    const runtime::IterativeOptions& opts = {});

/// The 3-dimensional combined high/low rule (end of Section 7): high colors
/// run 3AG(p) with the finalize gate, low colors run AG(N).  Hosts input
/// palettes up to p^3 (enough for the Excl-Linial output), so the
/// self-stabilizing exact-(Delta+1) algorithm runs it inside interval I_0.
///
/// Color ranges:
///   [0, N)           — final colors
///   [N, 2N)          — AG(N) working states
///   [2N, 2N + p^3)   — 3AG(p) high states <c,b,a> (never <0,0,a>: a vertex
///                      reaching that form exits to the low range instead)
class Mixed3Rule final : public runtime::IterativeRule {
 public:
  /// Requires p^3 >= palette for the largest prime p <= 2*delta+1; throws
  /// std::logic_error otherwise (pre-reduce with AG first).
  Mixed3Rule(std::size_t delta, std::uint64_t palette);

  [[nodiscard]] Color step(Color own,
                           std::span<const Color> neighbors) const override;
  [[nodiscard]] bool is_final(Color c) const override { return c < n_; }
  [[nodiscard]] std::uint32_t color_bits() const override;

  /// Map a proper input color (< palette) into the rule's state space.
  [[nodiscard]] Color lift(Color proper_color) const;

  /// The (at most 2) colors a vertex in state c can hold next round, besides
  /// c itself.  Excl-Linial forbids exactly these (the set S' of Sec. 4.1).
  [[nodiscard]] std::vector<Color> candidates(Color c) const;

  /// One past the largest state value (the room interval I_0 must provide).
  [[nodiscard]] std::uint64_t space() const { return 2 * n_ + p_ * p_ * p_; }

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t p() const noexcept { return p_; }
  [[nodiscard]] std::size_t round_bound() const;

 private:
  std::uint64_t n_;  ///< N = delta+1
  std::uint64_t p_;  ///< prime <= 2*delta+1 with p^3 >= palette
  std::size_t delta_;
};

}  // namespace agc::coloring
