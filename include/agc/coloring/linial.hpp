#pragma once

#include <cstdint>
#include <vector>

#include "agc/coloring/palette.hpp"
#include "agc/math/polynomial.hpp"
#include "agc/runtime/iterative.hpp"

/// \file linial.hpp
/// Linial's color reduction [49] in the interval-encoded ("Mod-Linial") form
/// of Section 4.1: each palette of the log* n-step reduction is mapped to its
/// own disjoint interval of colors, so a vertex can read its own progress off
/// its color.  This makes the reduction a pure locally-iterative rule — and
/// exactly the form the self-stabilizing algorithm runs forever.
///
/// One step: a vertex with palette-index x in interval j forms the polynomial
/// g_x over GF(q_j) whose coefficients are the base-q_j digits of x, and picks
/// the smallest evaluation point e where g_x differs from the polynomial of
/// every same-interval neighbor; its next color encodes the pair <e, g_x(e)>
/// in interval j-1.  Since distinct degree-d polynomials agree on at most d
/// points and q_j > d*Delta, such a point always exists.

namespace agc::coloring {

struct LinialStage {
  std::uint64_t from_palette;  ///< palette size before the stage
  std::uint64_t q;             ///< prime field size, q > d*Delta
  std::uint32_t d;             ///< polynomial degree
  std::uint64_t to_palette;    ///< q*q
};

class LinialSchedule {
 public:
  /// Build the reduction schedule from an initial `id_space`-coloring down to
  /// the O(Delta^2) fixed point.  With `excl_headroom`, the last stage uses
  /// degree 2 and a field of size > 4*Delta so that Excl-Linial can dodge up
  /// to 2*Delta forbidden colors (Section 4.1's set S').
  /// `final_room`, if non-zero, widens interval 0 to at least that many
  /// colors — the self-stabilizing exact-(Delta+1) algorithm hosts its mixed
  /// 3AG/AG(N) state space there (Section 7), which is larger than the plain
  /// final palette.
  LinialSchedule(std::uint64_t id_space, std::size_t delta,
                 bool excl_headroom = false, std::uint64_t final_room = 0);

  /// Number of reduction stages r (= number of working intervals).
  [[nodiscard]] std::size_t stages() const noexcept { return stages_.size(); }
  /// Stage i (0-based) maps interval r-i to interval r-i-1.
  [[nodiscard]] const LinialStage& stage(std::size_t i) const { return stages_[i]; }

  /// Interval j holds the palette after r-j stages; interval 0 is final,
  /// interval r holds the initial ID space.
  [[nodiscard]] std::uint64_t interval_size(std::size_t j) const;
  [[nodiscard]] std::uint64_t offset(std::size_t j) const { return offsets_[j]; }
  [[nodiscard]] std::size_t interval_of(Color c) const;
  /// One past the largest color any vertex can ever hold.
  [[nodiscard]] std::uint64_t total_span() const;

  [[nodiscard]] std::uint64_t final_palette() const { return interval_size(0); }
  [[nodiscard]] std::size_t delta() const noexcept { return delta_; }

 private:
  std::size_t delta_;
  std::uint64_t final_room_ = 0;
  std::vector<LinialStage> stages_;    ///< stage 0 applies first (widest palette)
  std::vector<std::uint64_t> offsets_;  ///< offsets_[j], j = 0..r
};

/// One Mod-Linial update for a vertex in interval j >= 1 with palette index
/// x.  `same_interval_xs` are the palette indices of neighbors currently in
/// interval j; `forbidden_next` are absolute colors in interval j-1 the new
/// color must avoid (Excl-Linial; pass {} for the plain algorithm).  Returns
/// the new absolute color in interval j-1.
[[nodiscard]] Color mod_linial_step(const LinialSchedule& sched, std::size_t j,
                                    std::uint64_t x,
                                    std::span<const std::uint64_t> same_interval_xs,
                                    std::span<const Color> forbidden_next);

class LinialRule final : public runtime::IterativeRule {
 public:
  explicit LinialRule(LinialSchedule schedule) : sched_(std::move(schedule)) {}

  [[nodiscard]] Color step(Color own,
                           std::span<const Color> neighbors) const override;
  [[nodiscard]] bool is_final(Color c) const override {
    return c < sched_.interval_size(0);
  }
  [[nodiscard]] std::uint32_t color_bits() const override;

  [[nodiscard]] const LinialSchedule& schedule() const noexcept { return sched_; }

 private:
  LinialSchedule sched_;
};

/// Run Linial's reduction: the identity n-coloring (or any proper coloring
/// over `id_space`) down to the O(Delta^2) fixed point in log* n + O(1)
/// rounds.  Initial colors are lifted into the top interval automatically.
[[nodiscard]] runtime::IterativeResult linial_color(
    graph::GraphView g, std::vector<Color> initial_ids, std::uint64_t id_space,
    std::size_t delta, const runtime::IterativeOptions& opts = {});

}  // namespace agc::coloring
