#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

/// \file cole_vishkin.hpp
/// Cole-Vishkin deterministic coin tossing [15]: 3-coloring of directed
/// chains (paths and cycles) in log* n + O(1) rounds.
///
/// Section 5 uses it to remove the defect of Kuhn's 2-defective
/// Delta^2-edge-coloring: each color class of that coloring is a disjoint
/// union of edge-chains, and Cole-Vishkin 3-colors every chain in parallel.
/// The core step is a pure label function, so the edge-coloring vertex
/// programs can drive it over their incident edges while the transport
/// accounts the shrinking label widths (Lemma 5.2).

namespace agc::coloring::cv {

inline constexpr std::size_t npos = static_cast<std::size_t>(-1);

/// One deterministic-coin-tossing step: the new label encodes the position
/// of the lowest bit where `own` differs from `pred`, plus own's bit there.
/// Requires own != pred; adjacent outputs are then guaranteed distinct.
[[nodiscard]] std::uint64_t step(std::uint64_t own, std::uint64_t pred) noexcept;

/// Label a chain head uses in place of a predecessor (differs from own in
/// bit 0, so step() stays well-defined).
[[nodiscard]] constexpr std::uint64_t virtual_pred(std::uint64_t own) noexcept {
  return own ^ 1ULL;
}

/// Number of step() iterations that take any labels below `id_space` to
/// labels < 6 (the fixed point of the width recurrence): log* + O(1).
[[nodiscard]] int rounds_to_six(std::uint64_t id_space) noexcept;

/// One shift-down round removing color `c` (c in {5,4,3}): an element labeled
/// c recolors to the smallest of {0,1,2} unused by its chain neighbors.
/// `pred`/`succ` pass npos-marked sentinels via has_pred/has_succ.
[[nodiscard]] std::uint64_t reduce_step(std::uint64_t own, bool has_pred,
                                        std::uint64_t pred, bool has_succ,
                                        std::uint64_t succ,
                                        std::uint64_t c) noexcept;

struct ChainColoring {
  std::vector<std::uint64_t> colors;  ///< final labels, all < 3
  std::size_t rounds = 0;             ///< synchronous rounds consumed
};

/// 3-color a disjoint union of directed chains/cycles given successor links
/// (succ[i] == npos for a tail) and distinct initial ids < id_space.
/// Lockstep simulation of the distributed algorithm; `rounds` is its exact
/// round count (log* id_space + O(1)).
[[nodiscard]] ChainColoring three_color_chains(std::span<const std::size_t> succ,
                                               std::span<const std::uint64_t> ids,
                                               std::uint64_t id_space);

}  // namespace agc::coloring::cv
