#pragma once

#include <cstdint>
#include <span>

#include "agc/coloring/linial.hpp"

/// \file linial_stream.hpp
/// The O(1)-words-of-memory variant of Linial's step (end of Section 3).
///
/// The standard implementation materializes every neighbor's digit
/// polynomial.  The paper observes that a vertex can instead stream: for each
/// candidate evaluation point e it re-reads each neighbor's color from its
/// receive buffer, evaluates that neighbor's polynomial AT e on the fly
/// (Horner over the base-q digits of the color — O(d) time, O(1) words), and
/// keeps only (e, g_own(e)) plus a loop counter.  Same output as
/// mod_linial_step, constant working memory.

namespace agc::coloring {

/// Evaluate the digit polynomial of `value` (base-q digits, degree <= d) at
/// point e over GF(q), using O(1) words of memory.
[[nodiscard]] std::uint64_t eval_digit_poly(std::uint64_t q, std::uint64_t value,
                                            std::uint32_t d,
                                            std::uint64_t e) noexcept;

/// Drop-in replacement for mod_linial_step (plain variant, no forbidden set)
/// that uses O(1) working memory.  `same_interval_xs` stands in for the
/// per-neighbor receive buffers B_u of the paper: it is re-read once per
/// candidate point, never copied or transformed.
[[nodiscard]] Color mod_linial_step_stream(
    const LinialSchedule& sched, std::size_t j, std::uint64_t x,
    std::span<const std::uint64_t> same_interval_xs);

/// LinialRule with the streaming evaluator; bit-for-bit the same colorings.
class StreamLinialRule final : public runtime::IterativeRule {
 public:
  explicit StreamLinialRule(LinialSchedule schedule) : sched_(std::move(schedule)) {}

  [[nodiscard]] Color step(Color own,
                           std::span<const Color> neighbors) const override;
  [[nodiscard]] bool is_final(Color c) const override {
    return c < sched_.interval_size(0);
  }
  [[nodiscard]] std::uint32_t color_bits() const override {
    return runtime::width_of(sched_.total_span() - 1);
  }

 private:
  LinialSchedule sched_;
};

}  // namespace agc::coloring
