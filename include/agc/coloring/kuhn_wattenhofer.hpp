#pragma once

#include <cstdint>
#include <vector>

#include "agc/coloring/palette.hpp"
#include "agc/runtime/iterative.hpp"

/// \file kuhn_wattenhofer.hpp
/// The Kuhn-Wattenhofer / Szegedy-Vishwanathan O(Delta log Delta) color
/// reduction [47, 62] — the barrier baseline our AG algorithm beats.
///
/// The palette is cut into blocks of 2*(Delta+1) colors.  Within every block,
/// in parallel, vertices in the upper half recolor greedily into the lower
/// half (one local maximum at a time), halving the palette in O(Delta)
/// rounds; log(m/Delta) halvings reduce m colors to Delta+1 in
/// O(Delta log(m/Delta)) rounds.  Phase progress is encoded in disjoint color
/// intervals (the same trick as Mod-Linial), which keeps the rule a pure
/// function of 1-hop colors and therefore SET-LOCAL executable.

namespace agc::coloring {

/// Interval layout for the halving phases: phase k shrinks palette m_k to
/// m_{k+1} = ceil(m_k / (2*(Delta+1))) * (Delta+1); the final interval
/// [0, Delta+1) holds the result.
class KwSchedule {
 public:
  KwSchedule(std::uint64_t initial_palette, std::size_t delta);

  [[nodiscard]] std::size_t phases() const noexcept { return sizes_.size() - 1; }
  /// Palette size at phase k (k = 0 is the initial palette).
  [[nodiscard]] std::uint64_t size(std::size_t k) const { return sizes_[k]; }
  /// First color of interval k.  Later phases sit at lower offsets; the last
  /// interval starts at 0.
  [[nodiscard]] std::uint64_t offset(std::size_t k) const { return offsets_[k]; }
  /// Which interval does color c lie in?
  [[nodiscard]] std::size_t interval_of(Color c) const;
  [[nodiscard]] std::size_t delta() const noexcept { return delta_; }
  /// Total rounds the whole reduction can need (used as the run cap).
  [[nodiscard]] std::size_t round_bound() const;

 private:
  std::size_t delta_;
  std::vector<std::uint64_t> sizes_;    ///< m_0, m_1, ..., m_L (m_L <= Delta+1)
  std::vector<std::uint64_t> offsets_;  ///< offsets_[k] = sum of sizes_[j], j > k
};

class KwRule final : public runtime::IterativeRule {
 public:
  explicit KwRule(KwSchedule schedule) : sched_(std::move(schedule)) {}

  [[nodiscard]] Color step(Color own,
                           std::span<const Color> neighbors) const override;
  [[nodiscard]] bool is_final(Color c) const override {
    return c < sched_.size(sched_.phases());
  }
  [[nodiscard]] std::uint32_t color_bits() const override;

  [[nodiscard]] const KwSchedule& schedule() const noexcept { return sched_; }

 private:
  KwSchedule sched_;
};

/// Run the full KW reduction: proper k-coloring -> proper (Delta+1)-coloring
/// in O(Delta log(k/Delta)) rounds.
[[nodiscard]] runtime::IterativeResult kuhn_wattenhofer_reduce(
    graph::GraphView g, std::vector<Color> initial, std::size_t delta,
    const runtime::IterativeOptions& opts = {});

}  // namespace agc::coloring
