#pragma once

#include <cstdint>

#include "agc/coloring/palette.hpp"
#include "agc/runtime/iterative.hpp"

/// \file reduction.hpp
/// The standard color reduction, in locally-iterative (round-oblivious) form.
///
/// A vertex whose color is >= target and is a local maximum among its
/// neighbors recolors to the smallest free color in [0, target).  The global
/// maximum strictly decreases every round, so a k-coloring becomes a
/// target-coloring within k - target rounds.  With target = Delta+1 this is
/// the classic O(Delta^2)-rounds-from-O(Delta^2)-colors reduction used by
/// Goldberg-Plotkin-Shannon and by Corollary 3.6's last stage (where it only
/// has O(Delta) colors left to remove).

namespace agc::coloring {

class GreedyReduceRule final : public runtime::IterativeRule {
 public:
  /// Reduce to palette [0, target).  target must be >= Delta+1 for the free
  /// color to exist.  `palette_bound` is the initial palette size, used only
  /// for message-width accounting.
  GreedyReduceRule(std::uint64_t target, std::uint64_t palette_bound)
      : target_(target), palette_bound_(palette_bound) {}

  [[nodiscard]] Color step(Color own,
                           std::span<const Color> neighbors) const override;
  [[nodiscard]] bool is_final(Color c) const override { return c < target_; }
  [[nodiscard]] std::uint32_t color_bits() const override {
    return runtime::width_of(palette_bound_ - 1);
  }

  [[nodiscard]] std::uint64_t target() const noexcept { return target_; }

 private:
  std::uint64_t target_;
  std::uint64_t palette_bound_;
};

/// Run the reduction to completion: proper k-coloring -> proper
/// target-coloring in <= k - target rounds.
[[nodiscard]] runtime::IterativeResult reduce_colors(
    graph::GraphView g, std::vector<Color> initial, std::uint64_t target,
    const runtime::IterativeOptions& opts = {});

}  // namespace agc::coloring
