#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "agc/coloring/pipeline.hpp"

/// \file registry.hpp
/// The unified algorithm registry — the one table every front end (agccli,
/// bench_table1, the campaign scheduler) dispatches coloring algorithms
/// through.  Adding an algorithm here makes it reachable from the CLI, the
/// living Table 1 and declarative job grids with no per-tool switch to edit.
///
/// Every entry runs under the same contract: GraphView in (either topology
/// backend), unified PipelineOptions (implicitly constructible from a bare
/// runtime::RunOptions) carrying the executor/model/observability hooks and
/// the RunOptions::seed, PipelineReport out.  `requires_seed` marks the
/// randomized entries whose trajectory is selected by RunOptions::seed
/// (deterministic algorithms ignore it).

namespace agc::coloring {

struct AlgoSpec {
  const char* name;     ///< registry key (CLI --algo, campaign `algo`)
  const char* family;   ///< "locally-iterative" | "classwise" | "randomized"
  const char* summary;  ///< one-liner for listings and error messages
  /// Worst-case palette bound as a function of the max degree (and, for the
  /// eps entry, PipelineOptions::eps).  Tests assert measured palettes
  /// against this instead of hard-coding per-algorithm constants.
  std::uint64_t (*palette_bound)(std::size_t delta, const PipelineOptions& opts);
  /// True for randomized algorithms: RunOptions::seed selects the
  /// trajectory under the documented (seed, round, vertex id) contract.
  bool requires_seed;
  PipelineReport (*run)(graph::GraphView g, const PipelineOptions& opts);
};

/// Every registered algorithm, in listing order.
[[nodiscard]] std::span<const AlgoSpec> algos() noexcept;

/// Lookup by registry key; nullptr when unknown.
[[nodiscard]] const AlgoSpec* find_algo(std::string_view name) noexcept;

/// "gps, kw, ag, ..." — for uniform unknown-algorithm error messages.
[[nodiscard]] std::string algo_list();

}  // namespace agc::coloring
