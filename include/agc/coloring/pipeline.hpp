#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "agc/coloring/palette.hpp"
#include "agc/runtime/iterative.hpp"

/// \file pipeline.hpp
/// End-to-end (Delta+1)-coloring pipelines — the library's front door.
///
/// Every pipeline starts from the identity ID-coloring, runs Linial's
/// reduction to O(Delta^2) colors in log* n + O(1) rounds, and then differs
/// in how it closes the O(Delta^2) -> Delta+1 gap:
///
///   color_delta_plus_one       — AG, then the O(Delta)-color greedy
///                                reduction (Corollary 3.6): O(Delta + log* n).
///   color_delta_plus_one_exact — AG, then the Section 7 mixed AG(p)/AG(N)
///                                rule; no standard reduction at all.
///   color_kuhn_wattenhofer     — the KW/SV barrier baseline:
///                                O(Delta log Delta + log* n).
///   color_linial_greedy        — Goldberg-Plotkin-Shannon-style baseline:
///                                greedy reduction straight from O(Delta^2)
///                                colors, O(Delta^2 + log* n).
///   color_o_delta              — stop after AG with O(Delta) colors (the
///                                palette the self-stabilizing algorithm of
///                                Section 4.1 maintains).

namespace agc::coloring {

struct PipelineOptions {
  PipelineOptions() = default;
  /// A bare RunOptions parameterizes the pipeline's iterative stages, so the
  /// same options object drives any entry point in the library.
  /*implicit*/ PipelineOptions(const runtime::RunOptions& base) : iter(base) {}

  runtime::IterativeOptions iter;
  /// ID space = id_space_factor * n; sweeping it exercises the log* term.
  std::uint64_t id_space_factor = 1;
  /// Palette slack for the (1+eps)Delta entry point (registry algo "eps");
  /// every other pipeline ignores it.
  double eps = 0.5;

  /// The unified RunOptions core the stages run under (== iter's base).
  [[nodiscard]] runtime::RunOptions& run() noexcept { return iter; }
  [[nodiscard]] const runtime::RunOptions& run() const noexcept { return iter; }
};

/// RunReport core (rounds, converged, metrics, telemetry) plus the coloring,
/// the palette size and the per-stage round split.
struct PipelineReport : runtime::RunReport {
  std::vector<Color> colors;
  std::size_t palette = 0;        ///< number of distinct colors used
  std::size_t rounds_linial = 0;  ///< log* phase
  std::size_t rounds_core = 0;    ///< AG / KW / greedy phase
  std::size_t rounds_finish = 0;  ///< final reduction phase (if any)
  bool proper = false;
  bool proper_each_round = false;  ///< the locally-iterative invariant
};

[[nodiscard]] PipelineReport color_delta_plus_one(graph::GraphView g,
                                                  const PipelineOptions& opts = {});

[[nodiscard]] PipelineReport color_delta_plus_one_exact(
    graph::GraphView g, const PipelineOptions& opts = {});

[[nodiscard]] PipelineReport color_kuhn_wattenhofer(graph::GraphView g,
                                                    const PipelineOptions& opts = {});

[[nodiscard]] PipelineReport color_linial_greedy(graph::GraphView g,
                                                 const PipelineOptions& opts = {});

[[nodiscard]] PipelineReport color_o_delta(graph::GraphView g,
                                           const PipelineOptions& opts = {});

}  // namespace agc::coloring
