#pragma once

#include <cstdint>

#include "agc/coloring/pipeline.hpp"

/// \file fyz.hpp
/// The Fu–Yin–Zheng locally-iterative (Delta+1)-coloring (arXiv 2207.14458)
/// — the direct successor that broke this paper's O(Delta) barrier with an
/// O(Delta^{3/4} log Delta + log* n) round bound.
///
/// Structure (all four stages are locally-iterative rules on the round
/// engine; every intermediate packed coloring is proper):
///
///   1. linial     — the shared log* n preamble: identity IDs down to the
///                   O(Delta^2) palette L.
///   2. partition  — defective-Linial stages with slack budget
///                   p = ceil(Delta^{1/4}) compress L to the class space
///                   K = O((Delta/p)^2) = O(Delta^{3/2}) in O(1) rounds.
///   3. fyz-arb    — a carrier-packed Arbdefective-Color (Section 6 of the
///                   source paper): the tolerant AG iteration over Z_q,
///                   q = O(Delta/p) = O(Delta^{3/4}) prime, freezes every
///                   vertex into one of q classes within 2*ceil(Delta/p)+1
///                   rounds.
///   4. fyz-list   — a proposal-in-the-color list-coloring wave: a frozen
///                   vertex's state packs (priority, proposed color); it
///                   commits its proposal exactly when no done neighbor holds
///                   it and no same-proposal active neighbor has smaller
///                   priority.  Class-spread initial proposals keep the
///                   contention intra-class, so the wave drains in O(q)-ish
///                   measured rounds.
///
/// The carrier trick makes stages 2–4 locally-iterative in the strict
/// Szegedy–Vishwanathan sense even though defective/arbdefective colorings
/// are improper: every working state rides on top of the immutable proper
/// Linial color (state = lin * span + machinery), so adjacent full states
/// always differ and check_proper_each_round holds at every round of the
/// whole pipeline.  This mirrors FYZ's own tuple encoding; DESIGN.md records
/// where the wave rule substitutes for their exact finisher.
///
/// Determinism: the pipeline is deterministic and bit-identical at any
/// thread count and on both executors (it is pure rules on the engine); it
/// ignores RunOptions::seed.

namespace agc::coloring {

/// The arbdefect/slack budget p used for Delta: ceil(Delta^{1/4}), >= 1.
/// Exposed so tests and the bench can report the induced class count.
[[nodiscard]] std::uint64_t fyz_budget(std::size_t delta);

/// Compute a (Delta+1)-coloring with the four-stage FYZ pipeline.  Round
/// split in the report: rounds_linial = stage 1, rounds_core = stages 2+3,
/// rounds_finish = stage 4.  Throws std::invalid_argument if Delta is large
/// enough that the packed state space leaves 64-bit colors (Delta ~ 2^13+ —
/// far beyond the CSR workloads this repo drives).
[[nodiscard]] PipelineReport color_fyz(graph::GraphView g,
                                       const PipelineOptions& opts = {});

}  // namespace agc::coloring
