#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "agc/exec/thread_pool.hpp"
#include "agc/runtime/round.hpp"

/// \file async_executor.hpp
/// The dependency-driven (barrier-free) backend of the round engine.
///
/// A locally-iterative algorithm updates vertex v's round-r state from only
/// its neighbors' round-(r-1) states, so the BSP barrier is stricter than
/// the model requires: v may fire the moment every in-neighbor's round-r
/// mailbox is filled.  AsyncExecutor exploits exactly that.  Each shard
/// walks a work queue of its own vertices; a vertex alternates
///
///   send_k  — publish epoch-k messages into the parity-(k&1) mailbox slots,
///             then advance its atomic sent counter (release) — always
///             enabled;
///   recv_k  — deliver-account and run on_receive over the parity-(k&1)
///             inbox — enabled once every neighbor u has sent_u >= k+1
///             (acquire) or has halted.
///
/// Two mailbox slots per port suffice (MailboxArena two-epoch mode) because
/// the readiness rule bounds neighboring epochs to differ by at most one.  A
/// shard whose whole pass fires nothing parks on a condvar (ParkingLot)
/// instead of spinning.  Per-shard Metrics fold in shard order at the window
/// end, so all results — states, messages, total_bits, max_edge_bits — are
/// bit-identical across thread counts, and a fixed-length window with no
/// early halts is bit-identical to the same number of BSP rounds (the
/// differential oracle tests/test_async.cpp pins).  See docs/EXEC.md.
namespace agc::exec {

/// Order a shard's work queue is scanned in.
enum class AsyncSchedule {
  VertexOrder,  ///< ascending vertex id (the default)
  DegreeOrder,  ///< high-degree vertices first — a DAG-style priority that
                ///< publishes the most-depended-on mailboxes earliest
};

class AsyncExecutor final : public runtime::RoundExecutor {
 public:
  explicit AsyncExecutor(std::size_t threads,
                         AsyncSchedule schedule = AsyncSchedule::VertexOrder);

  [[nodiscard]] std::size_t threads() const noexcept override {
    return pool_.size();
  }
  [[nodiscard]] bool dependency_driven() const noexcept override {
    return true;
  }

  /// One engine round == a window of one: every vertex fires exactly once,
  /// so states *and* metrics are bit-identical to the BSP backends.
  void round(runtime::RoundContext& ctx, runtime::Metrics& total) override;

  std::size_t run_window(runtime::RoundContext& ctx, runtime::Metrics& total,
                         std::size_t rounds) override;

  /// Rounds fired per vertex in the last window — the per-vertex counts the
  /// theorem bounds speak about (test introspection).
  [[nodiscard]] const std::vector<std::uint32_t>& last_fired() const noexcept {
    return fired_;
  }

 private:
  void shard_window(runtime::RoundContext& ctx, std::size_t shard,
                    std::size_t rounds);
  [[nodiscard]] bool vertex_ready(graph::GraphView g, graph::Vertex v,
                                  std::uint32_t k) const noexcept;

  ThreadPool pool_;
  ParkingLot lot_;
  AsyncSchedule schedule_;
  /// Completed sends per vertex: written by the owner shard (release), read
  /// by neighbor shards' readiness checks (acquire).
  std::unique_ptr<std::atomic<std::uint32_t>[]> sent_;
  /// Halt flags: set (release) after the halted vertex mirrored its final
  /// message into both parity slots, so readers skip its sent_ counter.
  std::unique_ptr<std::atomic<std::uint8_t>[]> halted_;
  std::size_t slots_ = 0;  ///< allocated length of sent_ / halted_
  std::vector<std::uint32_t> fired_;  ///< completed receives (owner-only)
  std::vector<runtime::Metrics> per_shard_;
  std::atomic<bool> abort_{false};
  /// Window-scoped inputs of the reusable pool task (no per-round closures).
  runtime::RoundContext* ctx_ = nullptr;
  std::size_t window_rounds_ = 0;
  std::function<void(std::size_t)> window_task_;
};

/// Factory mirroring make_executor(): 0 = hardware concurrency.  A single
/// thread still runs the dependency-driven loop (useful for differential
/// tests); it never parks because one shard always has an enabled vertex.
[[nodiscard]] std::shared_ptr<runtime::RoundExecutor> make_async_executor(
    std::size_t threads, AsyncSchedule schedule = AsyncSchedule::VertexOrder);

}  // namespace agc::exec
