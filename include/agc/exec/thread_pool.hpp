#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.hpp
/// A fixed-size, work-stealing-free thread pool, plus the park/wake point
/// dependency-driven executors idle on.
///
/// Task i of a batch always runs on worker i % size() — static assignment,
/// never stealing — so a batch of size() shard tasks maps one shard to one
/// thread, the same way every round.  run() blocks until the whole batch has
/// finished; that wait is the barrier between the round engine's send,
/// deliver, and receive phases.  Determinism never depends on scheduling:
/// shards write disjoint state and are reduced in shard order afterwards
/// (see docs/EXEC.md), the static assignment just keeps caches warm.
/// Workers sleep on a condition variable between batches, so an idle pool
/// burns no CPU.

namespace agc::exec {

class ThreadPool {
 public:
  /// Spawns `threads` (>= 1) workers that live until destruction.
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Run body(0) .. body(tasks-1) across the workers and wait for all of
  /// them.  If any task throws, the exception of the lowest-indexed failing
  /// task is rethrown here after the batch drains (so the choice of
  /// propagated error is deterministic too).  Batches of at most one task
  /// run inline on the caller.
  void run(std::size_t tasks, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop(std::size_t worker);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable start_;
  std::condition_variable done_;
  const std::function<void(std::size_t)>* body_ = nullptr;
  std::size_t tasks_ = 0;
  std::uint64_t epoch_ = 0;      ///< bumped per batch; workers wake on change
  std::size_t running_ = 0;      ///< workers still inside the current batch
  bool stop_ = false;
  std::size_t error_task_ = SIZE_MAX;
  std::exception_ptr error_;
};

/// Condvar park/wake point for dependency-driven shard loops: a shard whose
/// whole pass found no runnable vertex parks here instead of spinning, and is
/// woken when any shard publishes new mailbox state.  The tick/parked
/// handshake is the classic two-flag (Dekker) pattern — publisher bumps the
/// tick then reads the parked count, parker bumps the parked count then reads
/// the tick, all seq_cst — so either the publisher sees the parker (and
/// notifies under the mutex) or the parker sees the new tick (and never
/// sleeps).  A wakeup can never be lost.
class ParkingLot {
 public:
  /// Snapshot the wake tick *before* scanning for work; pass it to park().
  [[nodiscard]] std::uint64_t tick() const noexcept {
    return tick_.load(std::memory_order_seq_cst);
  }

  /// Sleep until the tick moves past `seen` (returns immediately if it
  /// already has; spurious wakeups are allowed and harmless).
  void park(std::uint64_t seen);

  /// Publish: advance the tick and wake every parked shard.  Cheap when
  /// nobody is parked — one RMW plus one load, no lock.
  void wake_all() noexcept;

 private:
  std::atomic<std::uint64_t> tick_{0};
  std::atomic<std::size_t> parked_{0};
  std::mutex mu_;
  std::condition_variable cv_;
};

}  // namespace agc::exec
