#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "agc/exec/thread_pool.hpp"
#include "agc/runtime/round.hpp"

/// \file executor.hpp
/// The shard-deterministic parallel backend of the round engine.
///
/// ParallelExecutor partitions the vertex set into size() contiguous shards
/// and runs each round's send, deliver, and receive phases shard-per-thread
/// on a fixed ThreadPool, with a barrier between phases.  Delivery is
/// sharded by receiver and per-shard accounting is reduced in shard order
/// (RoundContext::reduce), so final colorings, round counts, messages,
/// total_bits and max_edge_bits are bit-identical to the sequential engine
/// for every thread count — the contract docs/EXEC.md spells out and
/// tests/test_exec.cpp pins.
///
/// The per-round state (shard Metrics, phase task closures) is owned by the
/// executor and reused, so a steady-state round makes no heap allocation
/// here — matching the engine's arena-backed message path.

namespace agc::exec {

class ParallelExecutor final : public runtime::RoundExecutor {
 public:
  /// `threads` >= 2 OS threads (use make_executor for the general case).
  explicit ParallelExecutor(std::size_t threads);

  [[nodiscard]] std::size_t threads() const noexcept override {
    return pool_.size();
  }

  void round(runtime::RoundContext& ctx, runtime::Metrics& total) override;

  /// The degree-aware shard boundaries the current round uses (bounds_[s]
  /// .. bounds_[s+1] is shard s's vertex range).  Exposed for tests.
  [[nodiscard]] const std::vector<graph::Vertex>& bounds() const noexcept {
    return bounds_;
  }

 private:
  /// Recompute degree-balanced shard boundaries when the topology changed.
  /// Shards stay contiguous (the arena's lane contract), but cuts fall on
  /// cumulative-degree quantiles instead of vertex-count quantiles, so a
  /// skewed degree distribution no longer piles all edge work onto a few
  /// shards.  Any contiguous partition yields bit-identical results (the
  /// shard-determinism contract), so rebalancing is purely a wall-clock
  /// optimization.
  void refresh_bounds(const runtime::RoundContext& ctx);

  ThreadPool pool_;
  /// Round-scoped context pointer read by the reusable phase tasks.  Only
  /// valid inside round(); engines never run rounds concurrently on one
  /// executor.
  runtime::RoundContext* ctx_ = nullptr;
  std::vector<runtime::Metrics> per_shard_;
  std::vector<graph::Vertex> bounds_;  ///< size() + 1 cut points over [0, n)
  std::size_t bounds_n_ = 0;
  std::uint64_t bounds_version_ = 0;
  bool bounds_built_ = false;
  std::function<void(std::size_t)> send_task_;
  std::function<void(std::size_t)> deliver_task_;
  std::function<void(std::size_t)> receive_task_;
};

/// Shard s of [0, n) split into `shards` contiguous, balanced ranges.
[[nodiscard]] inline std::pair<graph::Vertex, graph::Vertex> shard_range(
    std::size_t n, std::size_t shards, std::size_t s) noexcept {
  return {static_cast<graph::Vertex>(n * s / shards),
          static_cast<graph::Vertex>(n * (s + 1) / shards)};
}

/// Backend factory: 0 means "hardware concurrency"; 1 yields the sequential
/// backend; anything larger a ParallelExecutor with that many threads.
[[nodiscard]] std::shared_ptr<runtime::RoundExecutor> make_executor(
    std::size_t threads);

/// The fleet-wide default thread count: the AGC_THREADS environment variable
/// if set (0 = hardware concurrency), else 1.  Benches and the CLI use this
/// as the fallback when --threads is not given.
[[nodiscard]] std::size_t default_threads();

}  // namespace agc::exec
