#pragma once

#include <cstdint>

#include "agc/graph/frozen.hpp"
#include "agc/graph/graph.hpp"

/// \file generators.hpp
/// Deterministic (seeded) graph generators used by tests, examples and the
/// benchmark harness.  Every generator is reproducible: the same (parameters,
/// seed) pair yields the same graph on every platform.

namespace agc::graph {

/// Path v0 - v1 - ... - v_{n-1}.
[[nodiscard]] Graph path(std::size_t n);

/// Cycle on n >= 3 vertices.
[[nodiscard]] Graph cycle(std::size_t n);

/// Star: vertex 0 joined to 1..n-1.
[[nodiscard]] Graph star(std::size_t n);

/// Complete graph K_n.
[[nodiscard]] Graph complete(std::size_t n);

/// Complete bipartite graph K_{a,b} (left part 0..a-1, right part a..a+b-1).
[[nodiscard]] Graph complete_bipartite(std::size_t a, std::size_t b);

/// rows x cols 2D grid (4-neighborhood).
[[nodiscard]] Graph grid(std::size_t rows, std::size_t cols);

/// Complete binary tree on n vertices (vertex 0 is the root, children of i
/// are 2i+1 and 2i+2).
[[nodiscard]] Graph binary_tree(std::size_t n);

/// Erdos-Renyi G(n, p).
[[nodiscard]] Graph random_gnp(std::size_t n, double p, std::uint64_t seed);

/// Random d-regular(ish) graph via the pairing model with repair: every
/// vertex ends with degree exactly d when n*d is even and d < n (duplicate /
/// self-loop pairings are re-matched; a handful of vertices may end one below
/// d if repair is impossible).
[[nodiscard]] Graph random_regular(std::size_t n, std::size_t d, std::uint64_t seed);

/// Random graph with maximum degree capped at dmax: m edge slots are drawn
/// uniformly, an edge is kept only if both endpoints are below the cap.
[[nodiscard]] Graph random_bounded_degree(std::size_t n, std::size_t dmax,
                                          std::size_t target_m, std::uint64_t seed);

/// Random geometric graph: n points in the unit square, edge iff distance
/// <= radius.  The classic model for sensor-network workloads.
[[nodiscard]] Graph random_geometric(std::size_t n, double radius, std::uint64_t seed);

/// Preferential-attachment (Barabasi-Albert): each new vertex attaches to
/// `attach` existing vertices with probability proportional to degree.
[[nodiscard]] Graph barabasi_albert(std::size_t n, std::size_t attach,
                                    std::uint64_t seed);

/// d-dimensional hypercube Q_d on 2^d vertices (vertices adjacent iff their
/// labels differ in one bit); Delta = d exactly, a clean regular testbed.
[[nodiscard]] Graph hypercube(std::size_t d);

/// Complete k-partite graph with `part` vertices per part: Delta = (k-1)*part
/// and chromatic number exactly k — the adversarial shape for palette tests.
[[nodiscard]] Graph complete_multipartite(std::size_t k, std::size_t part);

/// Caterpillar: a spine path of `spine` vertices, each with `legs` pendant
/// leaves.  Arboricity 1, Delta = legs + 2; exercises the tree-ish regime.
[[nodiscard]] Graph caterpillar(std::size_t spine, std::size_t legs);

/// Blow-up of a cycle: `blow` copies of each of the `len` cycle positions,
/// complete bipartite between consecutive position classes.  Dense, regular,
/// odd-cycle-like: a classic hard instance for local color reduction.
[[nodiscard]] Graph cycle_blowup(std::size_t len, std::size_t blow);

/// Chung-Lu power-law graph: vertex v's expected degree is proportional to
/// (v + 1)^(-1/(gamma-1)) — a degree sequence whose tail follows a power law
/// with exponent `gamma` — scaled so the mean expected degree is avg_deg.
/// Sampled in O(n + m) with the Miller-Hagberg skip algorithm over the
/// monotone weight sequence, re-seeded every 2^12 source vertices so the
/// stream can be replayed chunk by chunk (the frozen builder's two passes).
[[nodiscard]] Graph random_powerlaw(std::size_t n, double gamma, double avg_deg,
                                    std::uint64_t seed);

// --- Streaming builders (web-graph scale, docs/SCALE.md) --------------------
// Same (parameters, seed) -> bit-identical edge set as the Graph-returning
// generator above, but written straight into a frozen CSR: one counting pass
// and one fill pass over the replayed random stream, so no nested adjacency
// vectors — and no second copy of the edge list — ever exist.

/// G(n, p) streamed into a frozen CSR; equals
/// FrozenGraph::from_graph(random_gnp(n, p, seed)) for every input.
[[nodiscard]] FrozenGraph stream_gnp_frozen(std::size_t n, double p,
                                            std::uint64_t seed);

/// Chung-Lu power-law streamed into a frozen CSR; equals
/// FrozenGraph::from_graph(random_powerlaw(n, gamma, avg_deg, seed)).
[[nodiscard]] FrozenGraph stream_powerlaw_frozen(std::size_t n, double gamma,
                                                 double avg_deg,
                                                 std::uint64_t seed);

/// A small deterministic PRNG (splitmix64 seeded xorshift) shared by the
/// generators, exposed for tests and fault injection.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound).  bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

 private:
  std::uint64_t s_[2];
};

}  // namespace agc::graph
