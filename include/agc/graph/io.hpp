#pragma once

#include <iosfwd>
#include <string>

#include "agc/graph/checks.hpp"
#include "agc/graph/view.hpp"

/// \file io.hpp
/// Graph and coloring I/O so the library runs on user-supplied instances.
///
/// Edge-list format (DIMACS-flavored, whitespace-separated):
///   c <comment>              -- ignored
///   p edge <n> <m>           -- header (m is advisory)
///   e <u> <v>                -- 1-based endpoints, as in DIMACS .col files
/// Bare "<u> <v>" lines (0-based) are also accepted when no header is seen.

namespace agc::graph {

/// Parse a graph from an edge-list stream.  Throws std::runtime_error on
/// malformed input (negative ids, out-of-range endpoints, bad headers).
[[nodiscard]] Graph read_edge_list(std::istream& in);

/// Parse from a file path (convenience wrapper).
[[nodiscard]] Graph read_edge_list_file(const std::string& path);

/// Write in the DIMACS-flavored format above (1-based).
void write_edge_list(std::ostream& out, GraphView g);

/// Graphviz DOT export; when `colors` is non-empty, vertices get a
/// color-class label for quick visual inspection.
void write_dot(std::ostream& out, GraphView g,
               std::span<const Color> colors = {});

/// CSV export of a coloring: "vertex,color" per line with a header row.
void write_coloring_csv(std::ostream& out, std::span<const Color> colors);

}  // namespace agc::graph
