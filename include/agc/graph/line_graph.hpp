#pragma once

#include <vector>

#include "agc/graph/view.hpp"

/// \file line_graph.hpp
/// The line graph L(G): one vertex per edge of G, adjacent iff the edges
/// share an endpoint.  Edge-coloring and maximal-matching problems on G are
/// vertex-coloring and MIS problems on L(G) (Section 4.2 of the paper).

namespace agc::graph {

struct LineGraph {
  Graph graph;                    ///< L(G) itself.
  std::vector<Edge> edge_of;      ///< edge_of[i] = the G-edge behind L(G) vertex i.

  /// Index of a G-edge in L(G), or n() if absent.
  [[nodiscard]] Vertex vertex_of(Edge e) const;
};

/// Build L(G).  Vertices of L(G) are numbered by the lexicographic rank of
/// their canonical G-edge, so the mapping is deterministic.
[[nodiscard]] LineGraph line_graph(GraphView g);

}  // namespace agc::graph
