#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "agc/graph/graph.hpp"

/// \file frozen.hpp
/// FrozenGraph — the immutable web-graph-scale substrate.
///
/// A frozen graph is a plain CSR: a 64-bit offset per vertex plus one packed
/// 32-bit entry per directed edge, nothing else.  Compared to the mutable
/// Graph's vector-of-vectors (a 24-byte header plus a separately allocated
/// heap block per vertex), this is 8 bytes per vertex + 4 bytes per
/// adjacency entry, contiguous, and cache-friendly to scan — the layout that
/// makes n = 10^7..10^8 locally-iterative simulation memory-bound on the
/// edge array instead of allocator-bound (docs/SCALE.md).
///
/// Offsets are 64-bit on purpose: at n = 10^8 and average degree 50 the
/// directed-edge count 2m overflows uint32.  Neighbor lists are sorted, so a
/// FrozenGraph built from a Graph (or streamed by GraphSpec::build_frozen)
/// yields bit-identical executions to the mutable backend — GraphView
/// (view.hpp) is the seam every algorithm reads through.
///
/// Mutation is deliberately absent.  Dynamic workloads (svc churn, faultlab
/// adversaries) stay on the mutable Graph; the round engine materializes a
/// mutable copy on first churn when it was handed a frozen view
/// (Engine::add_edge, engine.hpp).

namespace agc::graph {

class FrozenGraph {
 public:
  FrozenGraph() : offsets_(1, 0) {}

  /// Freeze a mutable graph (adjacency is already sorted, so this is one
  /// O(n + m) copy).
  [[nodiscard]] static FrozenGraph from_graph(const Graph& g);

  /// Adopt a prebuilt CSR.  `offsets` must have n+1 entries with
  /// offsets[0] == 0, be non-decreasing, and offsets[n] == targets.size();
  /// each vertex's target range must be sorted and in [0, n).  Violations
  /// throw std::invalid_argument (cheap shape checks) or assert (per-entry
  /// checks, debug builds only — streaming builders already guarantee them).
  [[nodiscard]] static FrozenGraph from_csr(std::vector<std::uint64_t> offsets,
                                            std::vector<Vertex> targets);

  [[nodiscard]] std::size_t n() const noexcept { return offsets_.size() - 1; }
  [[nodiscard]] std::size_t m() const noexcept { return targets_.size() / 2; }

  [[nodiscard]] std::size_t degree(Vertex v) const noexcept {
    return static_cast<std::size_t>(offsets_[v + 1] - offsets_[v]);
  }

  /// Sorted neighbor list of v.
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const noexcept {
    return {targets_.data() + offsets_[v], degree(v)};
  }

  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const noexcept;

  [[nodiscard]] std::size_t max_degree() const noexcept { return max_degree_; }

  /// Frozen topology never changes; the constant version means engines that
  /// gate arena rebuilds on the version see at most one rebuild.
  [[nodiscard]] std::uint64_t topology_version() const noexcept { return 0; }

  /// Raw CSR access (streaming builders, serialization, shard planners).
  [[nodiscard]] std::span<const std::uint64_t> offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] std::span<const Vertex> targets() const noexcept {
    return targets_;
  }

  /// Resident bytes of the CSR arrays — the substance behind the
  /// bytes-per-vertex rows in BENCH_scale.json (8 per vertex + 4 per
  /// directed edge + O(1)).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return offsets_.capacity() * sizeof(std::uint64_t) +
           targets_.capacity() * sizeof(Vertex) + sizeof(*this);
  }

  friend bool operator==(const FrozenGraph& a, const FrozenGraph& b) {
    return a.offsets_ == b.offsets_ && a.targets_ == b.targets_;
  }

 private:
  std::vector<std::uint64_t> offsets_;  ///< n+1, offsets_[0] == 0
  std::vector<Vertex> targets_;         ///< 2m packed sorted neighbor lists
  std::size_t max_degree_ = 0;
};

}  // namespace agc::graph
