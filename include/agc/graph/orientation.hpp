#pragma once

#include <vector>

#include "agc/graph/view.hpp"

/// \file orientation.hpp
/// Edge orientations.  Kuhn's defective edge-coloring (Section 5) orients
/// every edge toward the endpoint with the larger ID; the arbdefective
/// analysis (Lemma 6.2) orients edges toward the endpoint that finalized
/// first.  An orientation with out-degree <= k on an acyclic ordering
/// witnesses arboricity <= k.

namespace agc::graph {

/// Directed view of a graph's edges: oriented[i] is true iff edges()[i]
/// points first -> second.
struct Orientation {
  std::vector<Edge> edges;       ///< canonical edges, sorted
  std::vector<bool> toward_second;  ///< true: first -> second

  [[nodiscard]] std::vector<std::size_t> out_degrees(std::size_t n) const;
  [[nodiscard]] std::size_t max_out_degree(std::size_t n) const;
};

/// Orient every edge toward the endpoint with the larger id (Kuhn's rule).
[[nodiscard]] Orientation orient_by_id(GraphView g);

/// Orient every edge from the endpoint earlier in `order` toward the one
/// later in it (order[v] = rank, 0 = first).  With a smallest-last
/// (degeneracy) order this gives out-degree <= degeneracy.
[[nodiscard]] Orientation orient_by_order(GraphView g,
                                          std::span<const std::size_t> order);

/// Smallest-last vertex order (rank per vertex); companion to degeneracy().
[[nodiscard]] std::vector<std::size_t> smallest_last_order(GraphView g);

}  // namespace agc::graph
