#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "agc/graph/view.hpp"

/// \file checks.hpp
/// Validity oracles for every object the algorithms produce: proper vertex /
/// edge colorings, defective and arbdefective colorings, MIS and MM.  Tests
/// and the locally-iterative harness lean on these after every round.

namespace agc::graph {

using Color = std::uint64_t;

/// True iff no edge is monochromatic.
[[nodiscard]] bool is_proper_coloring(GraphView g, std::span<const Color> colors);

/// Number of distinct colors used.
[[nodiscard]] std::size_t palette_size(std::span<const Color> colors);

/// Largest color value used (0 for an empty coloring).
[[nodiscard]] Color max_color(std::span<const Color> colors);

/// defect(v) = number of neighbors sharing v's color; returns the per-vertex
/// vector.
[[nodiscard]] std::vector<std::size_t> defect_vector(GraphView g,
                                                     std::span<const Color> colors);

/// True iff every vertex has at most d same-colored neighbors.
[[nodiscard]] bool is_defective_coloring(GraphView g, std::span<const Color> colors,
                                         std::size_t d);

/// Degeneracy of g (smallest-last ordering).  For every graph,
/// arboricity <= degeneracy <= 2*arboricity - 1, so degeneracy is the
/// arbdefect witness used by tests: a b-arbdefective coloring has every color
/// class with degeneracy <= 2b - 1.
[[nodiscard]] std::size_t degeneracy(GraphView g);

/// Max over color classes of the degeneracy of the induced subgraph.
[[nodiscard]] std::size_t max_class_degeneracy(GraphView g,
                                               std::span<const Color> colors);

/// True iff every color class induces a subgraph of degeneracy <= 2b-1
/// (necessary condition for b-arbdefectiveness; also sufficient up to a
/// factor 2 in b, which is how the paper states its O(p) bounds).
[[nodiscard]] bool is_arbdefective_coloring(GraphView g,
                                            std::span<const Color> colors,
                                            std::size_t b);

/// True iff `in_set` marks a maximal independent set of g.
[[nodiscard]] bool is_mis(GraphView g, const std::vector<bool>& in_set);

/// True iff `matched` (indices into `edges`) is a maximal matching of g.
[[nodiscard]] bool is_maximal_matching(GraphView g, std::span<const Edge> matching);

/// True iff no two incident edges share a color.  colors[i] colors edges()[i].
[[nodiscard]] bool is_proper_edge_coloring(GraphView g,
                                           std::span<const Color> edge_colors);

}  // namespace agc::graph
