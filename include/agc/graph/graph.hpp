#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

/// \file graph.hpp
/// The undirected simple graph all algorithms run on.
///
/// Vertices are dense integers 0..n-1.  Adjacency lists are kept sorted, so
/// iteration order (and therefore every simulated execution) is
/// deterministic.  The graph is mutable — edge and vertex churn is a
/// first-class event in the fully-dynamic self-stabilizing setting — but
/// algorithms only ever observe it through the round engine.

namespace agc::graph {

using Vertex = std::uint32_t;
using Edge = std::pair<Vertex, Vertex>;  // canonical: first < second

/// Canonicalize an edge so that e.first < e.second.
[[nodiscard]] constexpr Edge make_edge(Vertex u, Vertex v) noexcept {
  return u < v ? Edge{u, v} : Edge{v, u};
}

class Graph {
 public:
  Graph() = default;
  explicit Graph(std::size_t n) : adj_(n) {}

  /// Build a graph on n vertices from an edge list (duplicates and self-loops
  /// are rejected with an assertion in debug builds, ignored in release).
  static Graph from_edges(std::size_t n, std::span<const Edge> edges);

  [[nodiscard]] std::size_t n() const noexcept { return adj_.size(); }
  [[nodiscard]] std::size_t m() const noexcept { return m_; }

  [[nodiscard]] std::size_t degree(Vertex v) const noexcept { return adj_[v].size(); }

  /// Sorted neighbor list of v.
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const noexcept {
    return adj_[v];
  }

  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const noexcept;

  /// Inserts (u,v); returns false if it already existed or u == v.
  bool add_edge(Vertex u, Vertex v);

  /// Removes (u,v); returns false if it was not present.
  bool remove_edge(Vertex u, Vertex v);

  /// Appends an isolated vertex and returns its id.
  Vertex add_vertex();

  /// Removes all edges incident to v (v stays as an isolated vertex so that
  /// vertex ids remain stable across dynamic updates).
  void isolate(Vertex v);

  [[nodiscard]] std::size_t max_degree() const noexcept;

  /// Monotone counter bumped by every successful topology mutation
  /// (add_edge / remove_edge / add_vertex).  Consumers that cache structure
  /// derived from the adjacency lists — e.g. the round engine's mailbox
  /// arena — compare it to decide in O(1) whether to rebuild.
  [[nodiscard]] std::uint64_t topology_version() const noexcept {
    return version_;
  }

 private:
  std::vector<std::vector<Vertex>> adj_;
  std::size_t m_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace agc::graph
