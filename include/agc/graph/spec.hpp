#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "agc/graph/frozen.hpp"
#include "agc/graph/graph.hpp"
#include "agc/graph/view.hpp"

/// \file spec.hpp
/// GraphSpec — a parse/format round-trippable description of a graph.
///
/// Every generated graph in this repo is fully determined by a generator
/// name plus a handful of numeric parameters, and the spelling used to ask
/// for one ("regular:1500,8,1234") has historically been parsed ad hoc in
/// each tool and bench binary.  GraphSpec centralizes that: it parses both
/// the legacy positional form (`gnp:1000,0.01,7`) and the named form
/// (`gnp:n=1000,p=0.01,seed=7`), formats back to one canonical spelling,
/// and exposes a stable 64-bit content hash of that spelling — the key the
/// campaign scheduler's graph cache shares identical CSRs under
/// (docs/SCHED.md).
///
/// Round-trip contract: `parse(s).to_string()` is canonical (named form,
/// declared parameter order, shortest round-trippable float spelling), and
/// `parse(spec.to_string()) == spec` for every valid spec.  Two specs build
/// the same graph whenever their content hashes agree.

namespace agc::graph {

/// What a consumer intends to do with the graph it asks a spec for.  The
/// algorithm entry points all read through GraphView, so almost every tool
/// and bench wants ReadOnly — the frozen CSR backend, at a fraction of the
/// adjacency-vector footprint.  Only consumers that churn topology (the agcd
/// service, the faultlab adversaries) need Mutable.
enum class Mutability : std::uint8_t { ReadOnly, Mutable };

/// The result of GraphSpec::resolve(): owns whichever backend the caller's
/// mutability need selected and exposes it uniformly as a GraphView.  The
/// backend lives on the heap, so views taken from view() stay valid across
/// moves of the ResolvedGraph itself.
class ResolvedGraph {
 public:
  [[nodiscard]] GraphView view() const noexcept {
    return frozen_ != nullptr ? GraphView(*frozen_) : GraphView(*dyn_);
  }

  /// True when backed by the frozen CSR (resolved ReadOnly).
  [[nodiscard]] bool frozen() const noexcept { return frozen_ != nullptr; }

  /// The mutable backend; throws std::logic_error when resolved ReadOnly.
  [[nodiscard]] Graph& graph();

 private:
  friend class GraphSpec;
  ResolvedGraph() = default;
  std::unique_ptr<Graph> dyn_;
  std::unique_ptr<FrozenGraph> frozen_;
};

class GraphSpec {
 public:
  GraphSpec() = default;

  /// Parse `kind:arg,arg,...` where each arg is positional or `key=value`.
  /// Throws std::invalid_argument on unknown kinds, missing/extra/unknown
  /// parameters, or malformed numbers.
  [[nodiscard]] static GraphSpec parse(const std::string& spec);

  /// The canonical spelling: `kind:k1=v1,k2=v2` in declared parameter order.
  [[nodiscard]] std::string to_string() const;

  /// Stable content hash (FNV-1a over the canonical spelling).  Identical
  /// across platforms and processes, so it can key on-disk artifacts too.
  [[nodiscard]] std::uint64_t content_hash() const;

  /// Generate (or, for `file:` specs, load) the graph.
  [[nodiscard]] Graph build() const;

  /// Generate the graph straight into a frozen CSR.  For the streaming kinds
  /// (`gnp`, `powerlaw`) no adjacency vectors are ever allocated — the edge
  /// stream is replayed twice (count pass, fill pass) into the packed arrays
  /// (docs/SCALE.md); other kinds build and compact.  Contract, pinned by
  /// tests: identical to FrozenGraph::from_graph(build()) for every spec.
  [[nodiscard]] FrozenGraph build_frozen() const;

  /// Build behind the backend the caller's mutability need selects:
  /// ReadOnly -> build_frozen() (CSR), Mutable -> build() (adjacency
  /// vectors).  The one helper every tool and bench resolves its graph
  /// argument through, so "which backend?" is decided in exactly one place.
  [[nodiscard]] ResolvedGraph resolve(Mutability need) const;

  /// Coarse upper bound on the resident bytes of one built graph, from the
  /// parameters alone (no build needed).  The campaign scheduler's memory
  /// budget admits jobs against this estimate (docs/SCHED.md).  Modeled on
  /// the frozen CSR backend the scheduler's cache actually holds: 8-byte
  /// offsets per vertex, two 4-byte directed entries per undirected edge.
  [[nodiscard]] std::size_t estimated_bytes() const {
    return estimated_bytes(0, 0);
  }

  /// The same bound with vertex/edge churn headroom: a long-lived consumer
  /// that mutates its copy of the graph (the agcd service, docs/SERVICE.md)
  /// sizes its arena and admission against the graph it may *grow into*, not
  /// the one the spec builds.  Headroom is charged at the mutable
  /// adjacency-vector rate — churn implies a materialized Graph copy, which
  /// pays per-vertex vector headers the CSR does not.  Churn never changes
  /// the spec itself —
  /// to_string()/content_hash() describe the initial graph only, so cache
  /// keys stay valid however the built copy is mutated afterwards.
  [[nodiscard]] std::size_t estimated_bytes(std::uint64_t extra_vertices,
                                            std::uint64_t extra_edges) const;

  [[nodiscard]] const std::string& kind() const noexcept { return kind_; }

  /// Named parameter lookup (canonical key); throws if absent.
  [[nodiscard]] std::uint64_t num(const std::string& key) const;
  [[nodiscard]] double real(const std::string& key) const;

  friend bool operator==(const GraphSpec& a, const GraphSpec& b) {
    return a.kind_ == b.kind_ && a.values_ == b.values_;
  }

 private:
  std::string kind_;
  /// Canonicalized textual values, aligned with the kind's declared
  /// parameter order (see kKinds in spec.cpp).  `file:` keeps one entry, the
  /// verbatim path.
  std::vector<std::string> values_;
};

}  // namespace agc::graph
