#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "agc/graph/graph.hpp"

/// \file spec.hpp
/// GraphSpec — a parse/format round-trippable description of a graph.
///
/// Every generated graph in this repo is fully determined by a generator
/// name plus a handful of numeric parameters, and the spelling used to ask
/// for one ("regular:1500,8,1234") has historically been parsed ad hoc in
/// each tool and bench binary.  GraphSpec centralizes that: it parses both
/// the legacy positional form (`gnp:1000,0.01,7`) and the named form
/// (`gnp:n=1000,p=0.01,seed=7`), formats back to one canonical spelling,
/// and exposes a stable 64-bit content hash of that spelling — the key the
/// campaign scheduler's graph cache shares identical CSRs under
/// (docs/SCHED.md).
///
/// Round-trip contract: `parse(s).to_string()` is canonical (named form,
/// declared parameter order, shortest round-trippable float spelling), and
/// `parse(spec.to_string()) == spec` for every valid spec.  Two specs build
/// the same graph whenever their content hashes agree.

namespace agc::graph {

class GraphSpec {
 public:
  GraphSpec() = default;

  /// Parse `kind:arg,arg,...` where each arg is positional or `key=value`.
  /// Throws std::invalid_argument on unknown kinds, missing/extra/unknown
  /// parameters, or malformed numbers.
  [[nodiscard]] static GraphSpec parse(const std::string& spec);

  /// The canonical spelling: `kind:k1=v1,k2=v2` in declared parameter order.
  [[nodiscard]] std::string to_string() const;

  /// Stable content hash (FNV-1a over the canonical spelling).  Identical
  /// across platforms and processes, so it can key on-disk artifacts too.
  [[nodiscard]] std::uint64_t content_hash() const;

  /// Generate (or, for `file:` specs, load) the graph.
  [[nodiscard]] Graph build() const;

  /// Coarse upper bound on the resident bytes of one built graph, from the
  /// parameters alone (no build needed).  The campaign scheduler's memory
  /// budget admits jobs against this estimate (docs/SCHED.md).
  [[nodiscard]] std::size_t estimated_bytes() const {
    return estimated_bytes(0, 0);
  }

  /// The same bound with vertex/edge churn headroom: a long-lived consumer
  /// that mutates its copy of the graph (the agcd service, docs/SERVICE.md)
  /// sizes its arena and admission against the graph it may *grow into*, not
  /// the one the spec builds.  Churn never changes the spec itself —
  /// to_string()/content_hash() describe the initial graph only, so cache
  /// keys stay valid however the built copy is mutated afterwards.
  [[nodiscard]] std::size_t estimated_bytes(std::uint64_t extra_vertices,
                                            std::uint64_t extra_edges) const;

  [[nodiscard]] const std::string& kind() const noexcept { return kind_; }

  /// Named parameter lookup (canonical key); throws if absent.
  [[nodiscard]] std::uint64_t num(const std::string& key) const;
  [[nodiscard]] double real(const std::string& key) const;

  friend bool operator==(const GraphSpec& a, const GraphSpec& b) {
    return a.kind_ == b.kind_ && a.values_ == b.values_;
  }

 private:
  std::string kind_;
  /// Canonicalized textual values, aligned with the kind's declared
  /// parameter order (see kKinds in spec.cpp).  `file:` keeps one entry, the
  /// verbatim path.
  std::vector<std::string> values_;
};

}  // namespace agc::graph
