#pragma once

#include <cassert>
#include <concepts>
#include <span>
#include <vector>

#include "agc/graph/frozen.hpp"
#include "agc/graph/graph.hpp"

/// \file view.hpp
/// GraphView — the read-only graph concept every algorithm runs on.
///
/// Two backends carry topology in this repo: the mutable Graph (svc churn,
/// faultlab adversaries) and the immutable CSR FrozenGraph (everything at
/// web-graph scale).  Algorithms never care which one they got — they only
/// read n / m / degrees / sorted neighbor lists — so every entry point
/// outside svc and faultlab takes a GraphView: a two-pointer, non-owning
/// adapter over either backend, cheap to copy and implicit to construct, the
/// way std::span adapts any contiguous container.
///
/// Dispatch is a single well-predicted branch per accessor (no vtable, no
/// template explosion across the compiled subsystem libraries).  Both
/// backends keep neighbor lists sorted, so executions are bit-identical
/// whichever backend sits behind the view — pinned by the cross-backend
/// golden tests in tests/test_scale.cpp.
///
/// Lifetime: like a span, a view never owns.  The backing graph must outlive
/// every view over it; functions taking GraphView must not stash it beyond
/// the call unless their contract says so (Engine documents its own rule).
///
/// The compile-time face of the same idea is the AdjacencyGraph concept
/// below — Graph, FrozenGraph and GraphView itself all satisfy it, which is
/// what the conformance suite iterates over.

namespace agc::graph {

/// Anything that looks like an immutable adjacency structure: the structural
/// concept behind GraphView, satisfied by Graph, FrozenGraph and GraphView.
template <typename G>
concept AdjacencyGraph = requires(const G& g, Vertex v) {
  { g.n() } -> std::convertible_to<std::size_t>;
  { g.m() } -> std::convertible_to<std::size_t>;
  { g.degree(v) } -> std::convertible_to<std::size_t>;
  { g.neighbors(v) } -> std::convertible_to<std::span<const Vertex>>;
  { g.has_edge(v, v) } -> std::convertible_to<bool>;
  { g.max_degree() } -> std::convertible_to<std::size_t>;
  { g.topology_version() } -> std::convertible_to<std::uint64_t>;
};

class GraphView {
 public:
  /*implicit*/ GraphView(const Graph& g) noexcept : dyn_(&g) {}
  /*implicit*/ GraphView(const FrozenGraph& g) noexcept : frz_(&g) {}

  [[nodiscard]] std::size_t n() const noexcept {
    return dyn_ != nullptr ? dyn_->n() : frz_->n();
  }
  [[nodiscard]] std::size_t m() const noexcept {
    return dyn_ != nullptr ? dyn_->m() : frz_->m();
  }
  [[nodiscard]] std::size_t degree(Vertex v) const noexcept {
    return dyn_ != nullptr ? dyn_->degree(v) : frz_->degree(v);
  }
  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const noexcept {
    return dyn_ != nullptr ? dyn_->neighbors(v) : frz_->neighbors(v);
  }
  [[nodiscard]] bool has_edge(Vertex u, Vertex v) const noexcept {
    return dyn_ != nullptr ? dyn_->has_edge(u, v) : frz_->has_edge(u, v);
  }
  [[nodiscard]] std::size_t max_degree() const noexcept {
    return dyn_ != nullptr ? dyn_->max_degree() : frz_->max_degree();
  }
  [[nodiscard]] std::uint64_t topology_version() const noexcept {
    return dyn_ != nullptr ? dyn_->topology_version() : 0;
  }

  /// True when the backend is the immutable CSR.
  [[nodiscard]] bool frozen() const noexcept { return frz_ != nullptr; }

  /// The mutable backend, or null when frozen.  Only svc/faultlab-adjacent
  /// plumbing (e.g. the engine's copy-on-churn) may use this.
  [[nodiscard]] const Graph* mutable_backend() const noexcept { return dyn_; }

  /// Visit every edge once, in canonical (u < v) lexicographic order —
  /// the streaming replacement for the deleted Graph::edges().  The visitor
  /// receives (Vertex u, Vertex v); nothing is materialized.
  template <typename F>
  void for_each_edge(F&& visit) const {
    const std::size_t nn = n();
    for (Vertex u = 0; u < nn; ++u) {
      for (const Vertex v : neighbors(u)) {
        if (u < v) visit(u, v);
      }
    }
  }

 private:
  const Graph* dyn_ = nullptr;
  const FrozenGraph* frz_ = nullptr;
};

static_assert(AdjacencyGraph<Graph>);
static_assert(AdjacencyGraph<FrozenGraph>);
static_assert(AdjacencyGraph<GraphView>);

/// Materialize the canonical sorted edge list.  Only for consumers whose
/// *output* is an edge list (orientations, line graphs); per-edge scans use
/// for_each_edge.  O(m) memory — do not call at web-graph scale.
[[nodiscard]] inline std::vector<Edge> edge_list(GraphView g) {
  std::vector<Edge> out;
  out.reserve(g.m());
  g.for_each_edge([&](Vertex u, Vertex v) { out.emplace_back(u, v); });
  return out;
}

/// Copy a view into a fresh mutable Graph (the engine's copy-on-churn and
/// tests).  Preserves adjacency exactly, so executions over the copy are
/// bit-identical to executions over the view.
[[nodiscard]] Graph materialize(GraphView g);

}  // namespace agc::graph
