#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "agc/graph/generators.hpp"
#include "agc/runtime/faults.hpp"
#include "agc/runtime/transport.hpp"

/// \file zoo.hpp
/// The adversary zoo: production-shaped fault models behind the existing
/// ChannelHook / FaultAdversary seams (ROADMAP item 5).
///
/// Where channel.hpp's ChannelAdversary throws i.i.d. per-edge coins, the zoo
/// models the correlated, stateful, targeted failures production systems
/// actually see:
///
///   RegionalOutage      every edge incident to a contiguous ID range goes
///                       dark for a window of rounds — a rack/region
///                       partition, not independent packet loss.
///   FlappingLinks       each link runs a seeded two-state Markov chain
///                       (Up/Down); while Down the link drops everything, so
///                       loss arrives in bursts with geometric dwell times.
///   ByzantineNeighbors  a seeded vertex subset lies on the wire: outgoing
///                       word 0 is replaced by a width-preserving bounded lie,
///                       so the receiver cannot reject it on format grounds.
///   AdaptiveAdversary   between rounds, re-targets the currently
///                       highest-degree or most-recently-recolored vertices
///                       from a deterministic snapshot and clones a neighbor's
///                       color onto them — the worst-case monochromatic hit.
///   ChurnTrace          a power-law arrival process replayed into the
///                       add/remove-vertex path: heavy-tailed gaps between
///                       arrivals/crashes with degree-biased attachment.
///
/// Determinism contract (same as channel.hpp): every wire decision is a pure
/// splitmix64 hash of (stream seed, round, sender, receiver) — vertex IDs,
/// not port indices — and per-port mutable state is only touched by the shard
/// owning the sender.  State adversaries run on the driving thread between
/// rounds.  Trajectories are therefore bit-identical for 1, 2 or 8 threads;
/// tests/test_zoo.cpp pins this per adversary.
///
/// Round anchors: wire adversaries use 0-based engine rounds (the round the
/// message travels in), state adversaries use the 1-based index of the round
/// that just completed, with PeriodicAdversary's boundary semantics (round 0
/// never fires, last_round is inclusive).

namespace agc::faultlab {

// ---------------------------------------------------------------------------
// Declarative configs (the FaultSpec grammar in sched/campaign.hpp maps
// one key family onto each; see docs/FAULTS.md).
// ---------------------------------------------------------------------------

/// Correlated regional outage: every message with an endpoint in [lo, hi]
/// (inclusive) is dropped during [first_round, last_round].  The region is
/// fully partitioned from the rest of the graph — and internally, since its
/// own edges are incident to it twice.  Disabled while lo > hi.
struct RegionalOutageConfig {
  graph::Vertex lo = 1;
  graph::Vertex hi = 0;
  std::uint64_t first_round = 0;
  std::uint64_t last_round = std::uint64_t(-1);

  [[nodiscard]] bool enabled() const noexcept { return lo <= hi; }
};

/// Flapping links: a two-state Markov chain per link.  Both directions of an
/// edge share one chain (rolls hash the canonical (min, max) endpoint pair),
/// so a Down link is symmetric, like a real dead cable.  Transition
/// probabilities are per round in parts per million; their sum must stay
/// <= 1'000'000.  Links start Up, only evolve inside the window, and are
/// treated as Up outside it — faults eventually stop.
struct FlappingLinksConfig {
  std::uint32_t down_per_million = 0;      ///< P(Up -> Down) per round
  std::uint32_t up_per_million = 500'000;  ///< P(Down -> Up) per round
  std::uint64_t first_round = 0;
  std::uint64_t last_round = std::uint64_t(-1);

  [[nodiscard]] bool enabled() const noexcept { return down_per_million > 0; }
};

/// Byzantine-valued neighbors: a seeded subset of vertices (each vertex is a
/// liar with probability liars_per_million, decided by a pure hash of the
/// vertex ID so the subset survives churn) replaces word 0 of outgoing
/// messages with a seeded lie of the same declared bit width.  The lie always
/// differs from the true value, and each lying send records a
/// FaultKind::Lie event carrying the substituted value for exact replay.
struct ByzantineConfig {
  std::uint32_t liars_per_million = 0;         ///< vertex-is-a-liar probability
  std::uint32_t lie_per_million = 1'000'000;   ///< per-message lie probability
  std::uint64_t first_round = 0;
  std::uint64_t last_round = std::uint64_t(-1);

  [[nodiscard]] bool enabled() const noexcept { return liars_per_million > 0; }
};

/// Adaptive targeted corruption: every `period` completed rounds (up to
/// last_round, inclusive — PeriodicAdversary boundary semantics) pick the
/// `count` currently worst vertices from a deterministic snapshot and clone a
/// hash-chosen neighbor's RAM word 0 onto each, guaranteeing a monochromatic
/// edge at the most valuable target.
struct AdaptiveConfig {
  enum class Target : std::uint8_t {
    HighestDegree,      ///< rank by (degree desc, id asc)
    RecentlyRecolored,  ///< rank by (last round word 0 changed desc, id asc)
  };

  std::size_t period = 1;
  std::size_t last_round = std::numeric_limits<std::size_t>::max();
  std::size_t count = 0;  ///< targets per firing (0 = disabled)
  Target target = Target::HighestDegree;

  [[nodiscard]] bool enabled() const noexcept {
    return count > 0 && period > 0;
  }
};

/// Churn trace: `events` trace entries scheduled from `first_round` with
/// heavy-tailed inter-arrival gaps (bounded Pareto with tail exponent
/// `alpha`, gaps clamped to [1, 1024] rounds), truncated at `last_round`.
/// Each entry is either a vertex arrival (engine.add_vertex + `attach`
/// degree-biased edges, capped by `max_vertices`) or, with probability
/// resets_per_million — or always, once the vertex cap is hit — a
/// crash/recover (engine.reset_vertex + `attach` reconnect edges).  All
/// topology edits respect the degree cap `dmax` and flow through the
/// engine's adversary interface, so they are recorded into fault plans
/// automatically.
struct ChurnTraceConfig {
  std::size_t events = 0;  ///< total trace entries (0 = disabled)
  double alpha = 1.5;      ///< Pareto tail exponent for inter-arrival gaps
  std::size_t attach = 2;  ///< edges attached per arrival / reconnect
  std::uint32_t resets_per_million = 250'000;
  std::size_t first_round = 1;
  std::size_t last_round = std::numeric_limits<std::size_t>::max();
  std::size_t dmax = 16;          ///< degree cap for attached edges
  std::size_t max_vertices = 0;   ///< arrival cap on n (0 = resets only)
  /// Declarative form of max_vertices for campaign grids, where the graph's
  /// n is not known at spec-writing time: allow up to `grow` arrivals above
  /// the initial vertex count.  Runners resolve max_vertices = n + grow when
  /// grow > 0 and max_vertices was left 0.
  std::size_t grow = 0;

  [[nodiscard]] bool enabled() const noexcept { return events > 0; }
};

/// The whole zoo as one declarative value — what sched::FaultSpec embeds and
/// the campaign grammar serializes.  Seeds are not part of the shape: the
/// factories below derive one stream seed per adversary from the job seed.
struct ZooSpec {
  RegionalOutageConfig outage;
  FlappingLinksConfig flap;
  ByzantineConfig byz;
  AdaptiveConfig adapt;
  ChurnTraceConfig churn;

  [[nodiscard]] bool any_channel() const noexcept {
    return outage.enabled() || flap.enabled() || byz.enabled();
  }
  [[nodiscard]] bool any_state() const noexcept {
    return adapt.enabled() || churn.enabled();
  }
  [[nodiscard]] bool any() const noexcept { return any_channel() || any_state(); }
};

/// Per-adversary seed streams, XORed into the job seed so one `seed=` knob
/// yields independent randomness per fault model (the ChannelAdversary's
/// kChannelStream in sched/registry.cpp plays the same role).
inline constexpr std::uint64_t kFlapStream = 0xf1a99c0ffee0d1ceULL;
inline constexpr std::uint64_t kByzStream = 0xb12a7713e5a7b0a7ULL;
inline constexpr std::uint64_t kAdaptStream = 0xada9717e5eed5a17ULL;
inline constexpr std::uint64_t kChurnStream = 0xc0a27ace5eed1234ULL;

// ---------------------------------------------------------------------------
// Wire adversaries (runtime::ChannelHook)
// ---------------------------------------------------------------------------

/// Drops every message crossing into, out of, or inside [lo, hi] during the
/// window.  Stateless: no begin_round work, trivially deterministic.
class RegionalOutage final : public runtime::ChannelHook {
 public:
  explicit RegionalOutage(RegionalOutageConfig config,
                          runtime::FaultEventSink* recorder = nullptr)
      : config_(config), recorder_(recorder) {}

  void begin_round(const runtime::MailboxArena& arena, graph::GraphView g,
                   std::uint64_t round) override;
  void apply(runtime::MailboxArena& arena, graph::GraphView g,
             graph::Vertex v, std::uint64_t round, std::size_t shard) override;

  [[nodiscard]] const char* name() const noexcept override { return "outage"; }
  [[nodiscard]] std::uint64_t events() const noexcept override {
    return events_.load(std::memory_order_relaxed);
  }

 private:
  RegionalOutageConfig config_;
  runtime::FaultEventSink* recorder_;
  std::atomic<std::uint64_t> events_{0};
};

/// Two-state Markov chain per link.  Chain state lives per *port* (sender
/// side), but both directions advance with the same canonical-edge roll each
/// round, so they stay in lockstep — the concurrency contract holds because
/// each port's byte is only touched by the shard owning its sender.
/// Topology churn renumbers ports, so rebinding resets every link to Up
/// (documented in docs/FAULTS.md).
class FlappingLinks final : public runtime::ChannelHook {
 public:
  FlappingLinks(FlappingLinksConfig config, std::uint64_t seed,
                runtime::FaultEventSink* recorder = nullptr)
      : config_(config), seed_(seed), recorder_(recorder) {}

  void begin_round(const runtime::MailboxArena& arena, graph::GraphView g,
                   std::uint64_t round) override;
  void apply(runtime::MailboxArena& arena, graph::GraphView g,
             graph::Vertex v, std::uint64_t round, std::size_t shard) override;

  [[nodiscard]] const char* name() const noexcept override { return "flap"; }
  [[nodiscard]] std::uint64_t events() const noexcept override {
    return events_.load(std::memory_order_relaxed);
  }

 private:
  FlappingLinksConfig config_;
  std::uint64_t seed_;
  runtime::FaultEventSink* recorder_;
  std::atomic<std::uint64_t> events_{0};
  std::vector<std::uint8_t> down_;  ///< per-port chain state, 1 = Down
  std::uint64_t arena_version_ = std::uint64_t(-1);
  bool bound_ = false;
};

/// Width-preserving bounded lies from a seeded vertex subset.  Stateless:
/// liar membership and every lie value are pure hashes, so the subset and
/// the lies survive churn and thread-count changes unchanged.
class ByzantineNeighbors final : public runtime::ChannelHook {
 public:
  ByzantineNeighbors(ByzantineConfig config, std::uint64_t seed,
                     runtime::FaultEventSink* recorder = nullptr)
      : config_(config), seed_(seed), recorder_(recorder) {}

  void begin_round(const runtime::MailboxArena& arena, graph::GraphView g,
                   std::uint64_t round) override;
  void apply(runtime::MailboxArena& arena, graph::GraphView g,
             graph::Vertex v, std::uint64_t round, std::size_t shard) override;

  /// True iff `v` lies under this seed/config — exposed for tests and docs.
  [[nodiscard]] bool is_liar(graph::Vertex v) const noexcept;

  [[nodiscard]] const char* name() const noexcept override { return "byz"; }
  [[nodiscard]] std::uint64_t events() const noexcept override {
    return events_.load(std::memory_order_relaxed);
  }

 private:
  ByzantineConfig config_;
  std::uint64_t seed_;
  runtime::FaultEventSink* recorder_;
  std::atomic<std::uint64_t> events_{0};
};

/// Fans out begin_round/apply to a fixed-order list of hooks so several wire
/// adversaries stack on the engine's single channel-hook slot.  Order is
/// composition order (the order hooks were added); events() sums.
class ChannelHookChain final : public runtime::ChannelHook {
 public:
  /// Non-owning: `hook` must outlive the chain.
  void add(runtime::ChannelHook& hook) { hooks_.push_back(&hook); }
  /// Owning: the chain keeps the hook alive.
  void own(std::unique_ptr<runtime::ChannelHook> hook) {
    hooks_.push_back(hook.get());
    owned_.push_back(std::move(hook));
  }

  [[nodiscard]] bool empty() const noexcept { return hooks_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return hooks_.size(); }

  void begin_round(const runtime::MailboxArena& arena, graph::GraphView g,
                   std::uint64_t round) override;
  void apply(runtime::MailboxArena& arena, graph::GraphView g,
             graph::Vertex v, std::uint64_t round, std::size_t shard) override;

  [[nodiscard]] const char* name() const noexcept override { return "zoo"; }
  [[nodiscard]] std::uint64_t events() const noexcept override;

 private:
  std::vector<runtime::ChannelHook*> hooks_;
  std::vector<std::unique_ptr<runtime::ChannelHook>> owned_;
};

// ---------------------------------------------------------------------------
// State adversaries (runtime::FaultAdversary, driving thread between rounds)
// ---------------------------------------------------------------------------

/// Re-targets the worst vertices each firing.  Tracks "recently recolored"
/// by diffing RAM word 0 against the previous round's snapshot on every
/// inject call (O(n) per round — the zoo runs at test/campaign scale, not at
/// src/scale sizes).  Corruption goes through engine.corrupt_ram, so events
/// are recorded into fault plans by the engine itself.
class AdaptiveAdversary final : public runtime::FaultAdversary {
 public:
  AdaptiveAdversary(AdaptiveConfig config, std::uint64_t seed)
      : config_(config), seed_(seed) {}

  std::size_t inject(runtime::Engine& engine, std::size_t round) override;

  [[nodiscard]] const char* name() const noexcept override { return "adaptive"; }
  [[nodiscard]] std::size_t total_events() const noexcept { return events_; }

 private:
  AdaptiveConfig config_;
  std::uint64_t seed_;
  std::size_t events_ = 0;
  std::vector<std::uint64_t> prev_word0_;
  std::vector<std::uint64_t> last_changed_;  ///< round word 0 last changed, 0 = never
  std::vector<std::uint32_t> targets_;       ///< scratch, reused per firing
};

/// Replays a power-law arrival trace into the add/remove-vertex path.  The
/// schedule (which rounds carry an entry) is precomputed at construction from
/// the seed alone; entry contents consume a private Rng in trace order on the
/// driving thread, so the whole trace is independent of thread count.
class ChurnTrace final : public runtime::FaultAdversary {
 public:
  ChurnTrace(ChurnTraceConfig config, std::uint64_t seed);

  std::size_t inject(runtime::Engine& engine, std::size_t round) override;

  [[nodiscard]] const char* name() const noexcept override { return "churn"; }
  [[nodiscard]] std::size_t total_events() const noexcept { return events_; }
  [[nodiscard]] const std::vector<std::size_t>& schedule() const noexcept {
    return schedule_;
  }

 private:
  ChurnTraceConfig config_;
  graph::Rng rng_;
  std::vector<std::size_t> schedule_;  ///< sorted rounds carrying one entry each
  std::size_t next_ = 0;
  std::size_t events_ = 0;
};

/// Stacks state adversaries on RunOptions' single adversary slot; inject
/// forwards in composition order and sums the injected-event counts.
class FaultAdversaryChain final : public runtime::FaultAdversary {
 public:
  void add(runtime::FaultAdversary& adversary) {
    adversaries_.push_back(&adversary);
  }
  void own(std::unique_ptr<runtime::FaultAdversary> adversary) {
    adversaries_.push_back(adversary.get());
    owned_.push_back(std::move(adversary));
  }

  [[nodiscard]] bool empty() const noexcept { return adversaries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return adversaries_.size(); }

  std::size_t inject(runtime::Engine& engine, std::size_t round) override;

  [[nodiscard]] const char* name() const noexcept override { return "zoo"; }

 private:
  std::vector<runtime::FaultAdversary*> adversaries_;
  std::vector<std::unique_ptr<runtime::FaultAdversary>> owned_;
};

// ---------------------------------------------------------------------------
// Factories: one job seed -> the full configured zoo.
// ---------------------------------------------------------------------------

/// Append every enabled wire adversary of `zoo` to `chain` in the fixed
/// composition order outage -> flap -> byz, deriving stream seeds from
/// `seed`.  No-op for disabled entries.
void append_channel_hooks(ChannelHookChain& chain, const ZooSpec& zoo,
                          std::uint64_t seed,
                          runtime::FaultEventSink* recorder = nullptr);

/// Append every enabled state adversary of `zoo` to `chain` in the fixed
/// composition order adapt -> churn, deriving stream seeds from `seed`.
void append_state_adversaries(FaultAdversaryChain& chain, const ZooSpec& zoo,
                              std::uint64_t seed);

}  // namespace agc::faultlab
