#pragma once

#include <cstddef>
#include <functional>

#include "agc/faultlab/plan.hpp"

/// \file shrink.hpp
/// Delta-debugging minimizer for fault plans.
///
/// A nightly fuzz campaign that finds a failing trajectory records a plan
/// with hundreds of events; almost all of them are irrelevant.  shrink_plan
/// runs classic ddmin over the event list: repeatedly re-execute the system
/// under candidate sub-plans (the caller's `reproduces` predicate — replay
/// determinism makes this sound) and keep the smallest plan that still
/// fails.  The result is 1-minimal: removing any single remaining event
/// makes the failure disappear.

namespace agc::faultlab {

struct ShrinkStats {
  std::size_t initial_events = 0;
  std::size_t final_events = 0;
  std::size_t probes = 0;  ///< predicate evaluations spent
};

/// Minimize `plan` under `reproduces` (which must return true for the input
/// plan itself; if it does not, the input is returned unchanged).  The
/// predicate is called O(k^2) times in the worst case for a k-event result —
/// budget accordingly; `max_probes` hard-caps the spend (0 = unlimited).
[[nodiscard]] FaultPlan shrink_plan(
    const FaultPlan& plan,
    const std::function<bool(const FaultPlan&)>& reproduces,
    ShrinkStats* stats = nullptr, std::size_t max_probes = 0);

}  // namespace agc::faultlab
