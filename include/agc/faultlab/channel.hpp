#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "agc/runtime/faults.hpp"
#include "agc/runtime/transport.hpp"

/// \file channel.hpp
/// Message-path adversaries: the seeded random ChannelAdversary and the
/// plan-driven ChannelPlayback, both implementing runtime::ChannelHook.
///
/// A channel fault attacks the wire, not the sender: it runs after transport
/// validation, so the *program* stayed inside the model's bandwidth budget
/// and the fault is attributable to the channel.  Four fault kinds exist:
///
///   drop       the whole message at one port vanishes this round.
///   corrupt    one bit of the first word flips — the flipped bit stays below
///              the word's declared width, so the corrupted value still fits
///              the model's B-bit budget.
///   duplicate  the first word is appended once more (the receiver's
///              from_port() sees it twice; SET-LOCAL's multiset() view reads
///              only first words, so there a duplicate is absorbed — exactly
///              the sender-anonymity the model promises).
///   delay      a single-word message is held back and *prepended* to the
///              same port's traffic next round.  In-flight delayed words are
///              still flushed after the adversary quiesces.
///
/// Determinism: every decision is a pure hash of (seed, round, sender,
/// receiver) — vertex IDs, not port indices, so decisions survive topology
/// churn — and per-port state is only touched by the shard that owns the
/// sender.  Trajectories are therefore bit-identical for 1, 2 or 8 threads.

namespace agc::faultlab {

/// Per-edge-per-round fault probabilities in parts per million.  The four
/// kinds are disjoint: one die roll per (edge, round) lands in at most one
/// range, so their sum must stay <= 1'000'000.
struct ChannelFaultConfig {
  std::uint64_t seed = 1;
  std::uint32_t drop_per_million = 0;
  std::uint32_t corrupt_per_million = 0;
  std::uint32_t duplicate_per_million = 0;
  std::uint32_t delay_per_million = 0;
  /// Active window, inclusive, in 0-based engine rounds.  Outside the window
  /// the wire is clean (pending delayed words still flush), matching the
  /// paper's promise that faults eventually stop.
  std::uint64_t first_round = 0;
  std::uint64_t last_round = std::uint64_t(-1);

  [[nodiscard]] std::uint32_t total_per_million() const noexcept {
    return drop_per_million + corrupt_per_million + duplicate_per_million +
           delay_per_million;
  }
};

/// The seeded random wire attacker.  Optionally records every injected fault
/// to a FaultEventSink (see plan.hpp) so a fuzz run can be replayed exactly.
class ChannelAdversary final : public runtime::ChannelHook {
 public:
  explicit ChannelAdversary(ChannelFaultConfig config,
                            runtime::FaultEventSink* recorder = nullptr)
      : config_(config), recorder_(recorder) {}

  void begin_round(const runtime::MailboxArena& arena, graph::GraphView g,
                   std::uint64_t round) override;
  void apply(runtime::MailboxArena& arena, graph::GraphView g,
             graph::Vertex v, std::uint64_t round, std::size_t shard) override;

  [[nodiscard]] const char* name() const noexcept override { return "channel"; }
  [[nodiscard]] std::uint64_t events() const noexcept override {
    return events_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const ChannelFaultConfig& config() const noexcept {
    return config_;
  }

 private:
  ChannelFaultConfig config_;
  runtime::FaultEventSink* recorder_;
  std::atomic<std::uint64_t> events_{0};
  // Delay stash, one slot per global port.  A slot is only ever touched by
  // the shard owning its sender, so plain (non-atomic) storage is safe.
  std::vector<runtime::Word> stash_;
  std::vector<std::uint8_t> stash_full_;
  std::uint64_t arena_version_ = std::uint64_t(-1);
  bool bound_ = false;
};

/// Replays the channel-domain events of a recorded fault plan (plan.hpp),
/// reproducing the recorded trajectory bit-for-bit — including the one-round
/// re-emergence of delayed words.  Events must be canonicalized (sorted by
/// round, then sender); PlanAdversary handles the RAM/topology domain.
class ChannelPlayback final : public runtime::ChannelHook {
 public:
  /// `events` must outlive the playback; only channel-kind entries are used.
  explicit ChannelPlayback(const std::vector<runtime::FaultEvent>& events);

  void begin_round(const runtime::MailboxArena& arena, graph::GraphView g,
                   std::uint64_t round) override;
  void apply(runtime::MailboxArena& arena, graph::GraphView g,
             graph::Vertex v, std::uint64_t round, std::size_t shard) override;

  [[nodiscard]] const char* name() const noexcept override { return "channel"; }
  [[nodiscard]] std::uint64_t events() const noexcept override {
    return events_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<runtime::FaultEvent> channel_events_;  ///< sorted (round, u, v)
  std::size_t round_begin_ = 0;  ///< current round's slice, set in begin_round
  std::size_t round_end_ = 0;
  std::atomic<std::uint64_t> events_{0};
  std::vector<runtime::Word> stash_;
  std::vector<std::uint8_t> stash_full_;
  std::uint64_t arena_version_ = std::uint64_t(-1);
  bool bound_ = false;
};

}  // namespace agc::faultlab
