#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "agc/runtime/engine.hpp"
#include "agc/runtime/run_options.hpp"
#include "agc/runtime/run_report.hpp"
#include "agc/selfstab/ss_coloring.hpp"
#include "agc/selfstab/ss_line.hpp"

/// \file harness.hpp
/// The stabilization harness: run any self-stabilizing algorithm under a
/// fault schedule and measure what the paper's theorems talk about —
/// recovery time from the last adversary event, the first legal round, and
/// the adjustment radius (which vertices changed output versus the pre-fault
/// fixed point).  A convergence watchdog aborts runs whose recovery exceeds
/// a budget and reports the first invariant violation it saw (monochromatic
/// edge, out-of-palette color), with round and vertex.
///
/// Protocol: phase 0 stabilizes fault-free and snapshots the output vector;
/// phase 1 steps with the RunOptions fault hooks live (adversary between
/// rounds, channel inside rounds), restarting the recovery clock at every
/// injected event; once the legality check holds for `confirm_rounds`
/// consecutive rounds the run recovered, and the output diff against the
/// phase-0 snapshot is the adjustment set.

namespace agc::faultlab {

enum class ViolationKind : std::uint8_t {
  None = 0,
  MonochromaticEdge,  ///< edge {u, v} shares a color (`value`)
  OutOfPalette,       ///< vertex v holds color `value` outside the palette
  InvalidState,       ///< algorithm-specific predicate failed at v
  NeverSettled,       ///< phase 0 found no fault-free fixed point
};

[[nodiscard]] const char* to_string(ViolationKind k) noexcept;

struct Violation {
  ViolationKind kind = ViolationKind::None;
  std::uint64_t round = 0;  ///< engine round the violation was observed at
  graph::Vertex u = 0;
  graph::Vertex v = 0;
  std::uint64_t value = 0;

  [[nodiscard]] explicit operator bool() const noexcept {
    return kind != ViolationKind::None;
  }
};

/// Legality check: ViolationKind::None means the configuration is legal;
/// anything else pinpoints the first violation found.  Must be pure in the
/// engine state (called once per round).
using CheckFn = std::function<Violation(runtime::Engine&)>;

/// Output snapshot used for the adjustment diff: one word per vertex
/// (color, packed color+status, ... — whatever "output" means for the task).
using OutputFn = std::function<std::vector<std::uint64_t>(runtime::Engine&)>;

struct StabilizationSpec {
  CheckFn check;
  OutputFn outputs;
  /// Watchdog: abort when this many rounds elapse after the last fault event
  /// without the check passing.
  std::size_t recovery_budget = 10'000;
  /// Consecutive legal rounds required to call the run recovered.
  std::size_t confirm_rounds = 8;
  /// Round cap for the fault-free phase 0 (0 = use recovery_budget).
  std::size_t settle_budget = 0;
};

struct StabilizationOutcome : runtime::RunReport {
  bool recovered = false;
  /// Engine round of the last fault event (0 if none fired).
  std::uint64_t last_fault_round = 0;
  /// Engine round at which the check first held after the last fault.
  std::uint64_t first_legal_round = 0;
  /// first_legal_round - last_fault_round: the paper's stabilization time.
  std::size_t recovery_rounds = 0;
  /// Vertices whose output differs from the pre-fault fixed point (vertices
  /// added mid-run always count).  Its size over |faulty set| approximates
  /// the adjustment radius.
  std::vector<graph::Vertex> adjusted;
  /// Set when !recovered: what the watchdog saw when it gave up.
  Violation violation;
};

/// Run the two-phase protocol above on an installed engine.  opts.adversary
/// and opts.channel are live only during phase 1, and the round index passed
/// to FaultAdversary::inject counts from the start of phase 1 (so a
/// PeriodicAdversary schedule is relative to the fault phase, independent of
/// how long phase 0 took to settle).  opts.max_rounds caps the *total* engine
/// rounds across both phases; opts.sink receives Fault events per injection
/// round.  The engine's hooks are restored on return.
[[nodiscard]] StabilizationOutcome run_stabilization(
    runtime::Engine& engine, const runtime::RunOptions& opts,
    const StabilizationSpec& spec);

/// Incremental repair: phase 1 of the protocol alone, started from the
/// engine's *current* (possibly illegal) state with no fault-free settle
/// phase.  This is the entry a long-lived service calls once per mutation
/// epoch — mutate the live engine, then resettle() to drive it back to a
/// legal configuration without paying a from-scratch settle (src/svc).
///
/// `baseline` supplies the pre-mutation output snapshot the adjustment diff
/// is computed against (capture spec.outputs(engine) *before* mutating; an
/// empty baseline counts every vertex as adjusted).  The recovery clock is
/// anchored at the call: when the state is already legal on entry the run
/// recovers in 0 rounds after the confirm window.  opts.adversary /
/// opts.channel stay live exactly as in run_stabilization's phase 1, and
/// opts.collect_phase_times folds the engine's per-shard phase timers into
/// the outcome like every other run_* entry point.
[[nodiscard]] StabilizationOutcome resettle(
    runtime::Engine& engine, const runtime::RunOptions& opts,
    const StabilizationSpec& spec,
    const std::vector<std::uint64_t>& baseline);

/// Legality check for the self-stabilizing coloring: every color in the
/// final palette and no monochromatic edge.
[[nodiscard]] CheckFn coloring_check(const selfstab::SsConfig& cfg);

/// Output snapshot for coloring tasks: RAM word 0 of every vertex.
[[nodiscard]] OutputFn coloring_outputs();

/// Legality check for the self-stabilizing MIS (ss_mis.hpp): proper coloring
/// plus a valid maximal independent set — every MIS vertex independent,
/// every non-MIS vertex dominated, nobody undecided.
[[nodiscard]] CheckFn mis_check(const selfstab::SsConfig& cfg);

/// Output snapshot for MIS tasks: packed (color, status) per vertex.
[[nodiscard]] OutputFn mis_outputs();

/// Legality check for the line-graph simulation (ss_line.hpp): edge coloring
/// mode demands a proper final-palette edge coloring of the *current* host
/// graph; maximal-matching mode demands a valid maximal matching.
[[nodiscard]] CheckFn line_check(const selfstab::SsLineConfig& cfg);

/// Output snapshot for line tasks: an FNV-style hash of each host vertex's
/// per-edge replica words (RAM layout is degree-dependent, so a fixed-width
/// digest stands in for the variable-width output vector).
[[nodiscard]] OutputFn line_outputs();

}  // namespace agc::faultlab
