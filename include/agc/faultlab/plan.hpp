#pragma once

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "agc/runtime/faults.hpp"

/// \file plan.hpp
/// Recorded fault plans: every injected fault — RAM corruption, topology
/// churn, channel fault — serializes to one JSONL line, and a saved plan
/// replays the exact same trajectory (PlanAdversary for the RAM/topology
/// domain, channel.hpp's ChannelPlayback for the wire domain).
///
/// Line format (one event per line, keys always in this order):
///
///   {"round":12,"kind":"drop","u":3,"v":7,"word":0,"value":0}
///
/// `kind` is one of ram / add_edge / remove_edge / reset_vertex / add_vertex
/// / drop / corrupt / duplicate / delay / lie (runtime::to_string(FaultKind)).
/// Unknown top-level fields on a line are preserved verbatim (see
/// FaultPlan::extras): a plan recorded by a newer build with extra
/// annotations round-trips through an older parser unchanged, so committed
/// regression plans keep replaying across releases.
/// Rounds anchor per domain: RAM/topology events carry the number of engine
/// rounds completed when they fired (the adversary acts *between* rounds);
/// channel events carry the 0-based engine round they fired *inside*.
///
/// Plans are the currency of the fault-fuzz CI jobs: a failing campaign run
/// uploads its (shrunk — see shrink.hpp) plan, and `agc-faultplan` +
/// `agccli --fault-plan f.jsonl --replay` reproduce it anywhere.

namespace agc::faultlab {

struct FaultPlan {
  std::vector<runtime::FaultEvent> events;
  /// Raw text of any unknown top-level fields per event line, each a
  /// ready-to-emit `,"key":value` suffix inserted before the closing brace.
  /// Either empty (no line had extras) or exactly events.size() entries;
  /// canonicalize() and the shrinker keep entries attached to their events.
  std::vector<std::string> extras;

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events.size(); }

  /// Deterministic order: by round, RAM/topology domain before channel,
  /// then (u, v, word).  stable_sort, so events of one domain injected in
  /// the same round keep their insertion (= injection) order — which is the
  /// order replay must apply them in.
  void canonicalize();

  [[nodiscard]] std::string to_jsonl() const;
  void save(const std::string& path) const;  ///< throws std::runtime_error

  [[nodiscard]] static FaultPlan parse(std::istream& in);
  [[nodiscard]] static FaultPlan load(const std::string& path);  ///< throws
};

/// Thread-safe FaultEventSink that accumulates a plan.  The engine records
/// RAM/topology mutations from the driving thread; a ChannelAdversary
/// records wire faults from executor shards concurrently — hence the mutex
/// (uncontended in sequential runs, and recording is off the steady-state
/// path unless a recorder is installed).
class FaultPlanRecorder final : public runtime::FaultEventSink {
 public:
  void record(const runtime::FaultEvent& event) override {
    std::lock_guard<std::mutex> lock(mu_);
    plan_.events.push_back(event);
  }

  /// The canonicalized plan recorded so far.
  [[nodiscard]] FaultPlan take() {
    std::lock_guard<std::mutex> lock(mu_);
    FaultPlan p = plan_;
    p.canonicalize();
    return p;
  }

 private:
  std::mutex mu_;
  FaultPlan plan_;
};

/// Replays the RAM/topology domain of a plan through the standard
/// FaultAdversary hook: each inject(engine, round) applies, in order, every
/// non-channel event whose recorded round equals the number of rounds the
/// engine has completed.  Pair with a ChannelPlayback for the wire domain.
class PlanAdversary final : public runtime::FaultAdversary {
 public:
  explicit PlanAdversary(FaultPlan plan);

  std::size_t inject(runtime::Engine& engine, std::size_t round) override;

  [[nodiscard]] const char* name() const noexcept override { return "plan"; }
  [[nodiscard]] std::size_t events() const noexcept { return applied_; }
  /// Rounds with at least one RAM/topology event remaining at or after the
  /// cursor; lets a harness know when the plan is exhausted.
  [[nodiscard]] bool exhausted() const noexcept {
    return cursor_ >= events_.size();
  }
  /// The recorded round of the last event in the plan (either domain), or 0
  /// for an empty plan — the "faults stop here" horizon for watchdogs.
  [[nodiscard]] std::uint64_t last_event_round() const noexcept {
    return last_round_;
  }

 private:
  std::vector<runtime::FaultEvent> events_;  ///< non-channel, sorted by round
  std::size_t cursor_ = 0;
  std::size_t applied_ = 0;
  std::uint64_t last_round_ = 0;
};

}  // namespace agc::faultlab
