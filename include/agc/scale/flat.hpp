#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "agc/graph/checks.hpp"
#include "agc/graph/view.hpp"
#include "agc/runtime/iterative.hpp"

/// \file flat.hpp
/// The web-graph-scale flat runner (docs/SCALE.md).
///
/// The round engine carries per-vertex mailboxes, a transport ledger and
/// program objects — the machinery faults, traces and congestion accounting
/// need.  At n = 10^7 none of that fits the budget, and none of it is needed
/// for the fault-free BSP case: a locally-iterative rule is a pure function
/// of (own color, sorted neighbor multiset), so one double-buffered sweep
/// per round reproduces the engine bit for bit.  The flat runner is exactly
/// that sweep: frozen CSR topology in, two bit-packed color buffers, one
/// pass per round, contiguous vertex shards on the exec thread pool.
///
/// Determinism: next[v] depends only on cur[], so any shard partition gives
/// identical results; shards are word-aligned (multiples of 64 vertices) so
/// packed writes never share a word.  Color contract, pinned by tests:
/// color_delta_plus_one_flat() returns the same colors as
/// coloring::color_delta_plus_one() for every graph and thread count.

namespace agc::scale {

struct FlatOptions {
  /// Worker threads for the per-round sweep (0 = all hardware threads).
  std::size_t threads = 1;
};

struct FlatResult {
  std::vector<graph::Color> colors;
  std::size_t rounds = 0;         ///< total rounds across all stages
  std::size_t rounds_linial = 0;  ///< log* phase
  std::size_t rounds_core = 0;    ///< AG phase
  std::size_t rounds_finish = 0;  ///< greedy palette finish
  bool converged = false;
  bool proper = false;            ///< final coloring verified proper
  std::size_t palette = 0;        ///< distinct colors in the final coloring
  /// Peak bytes of packed working state (both buffers) across stages — the
  /// number BENCH_scale.json reports as state_bytes_per_vertex.
  std::uint64_t state_bytes = 0;
};

/// Run one rule to its fixed point, BSP semantics, at most `max_rounds`
/// rounds.  `palette_bound` is one past the largest color that can occur at
/// any point of the run (initial colors included); it sizes the packed
/// buffers.  Returns the final colors plus rounds/convergence.
[[nodiscard]] FlatResult run_flat(graph::GraphView g,
                                  std::vector<graph::Color> initial,
                                  const runtime::IterativeRule& rule,
                                  std::uint64_t palette_bound,
                                  std::size_t max_rounds,
                                  const FlatOptions& opts = {});

/// The full (Delta+1)-coloring pipeline — Linial, AG, greedy finish — with
/// the exact stage parameterization of coloring::color_delta_plus_one, on
/// the flat runner.
[[nodiscard]] FlatResult color_delta_plus_one_flat(graph::GraphView g,
                                                   const FlatOptions& opts = {});

}  // namespace agc::scale
