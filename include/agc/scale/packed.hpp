#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

/// \file packed.hpp
/// Fixed-width bit-packed color storage for the web-graph-scale flat runner
/// (docs/SCALE.md).
///
/// The engine path stores one 64-bit word per vertex color (plus mailbox
/// state); at n = 10^7 that dominates the resident set.  The flat runner
/// instead keeps its working colors in a PackedColors at exactly the bit
/// width the stage's rule declares — Linial's O(Delta^2) fixed point and the
/// AG pair space both fit well under 32 bits on realistic instances, so the
/// two double-buffered arrays cost a few bits per vertex per buffer instead
/// of 16 bytes.

namespace agc::scale {

/// A vector of n unsigned values, each stored in exactly `bits` bits
/// (1..64), packed back to back across 64-bit words.  Entries may straddle a
/// word boundary; get/set handle the split.
///
/// Concurrency contract: concurrent set() calls are safe only when no two
/// threads touch the same underlying word.  Writers that partition the index
/// space must align their cut points to multiples of 64 entries — 64 entries
/// always span exactly `bits` whole words, for every width — which is what
/// the flat runner's sharding does.
class PackedColors {
 public:
  PackedColors() = default;

  PackedColors(std::size_t n, std::uint32_t bits)
      : n_(n), bits_(bits), words_((n * bits + 63) / 64 + 1, 0) {
    assert(bits >= 1 && bits <= 64);
    // The +1 sentinel word lets get()/set() read/write the straddle partner
    // unconditionally, keeping the hot path branch-free of bounds checks.
  }

  /// Smallest width that can hold `max_value` (>= 1 even for 0).
  [[nodiscard]] static std::uint32_t width_for(std::uint64_t max_value) noexcept {
    std::uint32_t bits = 1;
    while (bits < 64 && (max_value >> bits) != 0) ++bits;
    return bits;
  }

  [[nodiscard]] std::uint64_t get(std::size_t i) const noexcept {
    const std::uint64_t bit = static_cast<std::uint64_t>(i) * bits_;
    const std::size_t w = static_cast<std::size_t>(bit >> 6);
    const std::uint32_t off = static_cast<std::uint32_t>(bit & 63);
    std::uint64_t v = words_[w] >> off;
    if (off != 0) v |= words_[w + 1] << (64 - off);
    return bits_ == 64 ? v : v & mask();
  }

  void set(std::size_t i, std::uint64_t v) noexcept {
    assert(bits_ == 64 || (v & ~mask()) == 0);
    const std::uint64_t bit = static_cast<std::uint64_t>(i) * bits_;
    const std::size_t w = static_cast<std::size_t>(bit >> 6);
    const std::uint32_t off = static_cast<std::uint32_t>(bit & 63);
    const std::uint64_t m = bits_ == 64 ? ~std::uint64_t{0} : mask();
    words_[w] = (words_[w] & ~(m << off)) | (v << off);
    if (off != 0 && off + bits_ > 64) {
      const std::uint32_t spill = 64 - off;
      words_[w + 1] = (words_[w + 1] & ~(m >> spill)) | (v >> spill);
    }
  }

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::uint32_t bits() const noexcept { return bits_; }

  /// Resident bytes of the packed storage (capacity, like Graph::memory_bytes).
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return words_.capacity() * sizeof(std::uint64_t);
  }

 private:
  [[nodiscard]] std::uint64_t mask() const noexcept {
    return (std::uint64_t{1} << (bits_ & 63)) - 1;  // bits_ == 64 handled by callers
  }

  std::size_t n_ = 0;
  std::uint32_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace agc::scale
