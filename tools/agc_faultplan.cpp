// agc-faultplan: the fault-plan toolbox the fault-fuzz CI jobs drive.
//
//   agc-faultplan dump   plan.jsonl
//       Print the plan as a table plus per-kind counts.
//   agc-faultplan diff   a.jsonl b.jsonl
//       Compare two plans event-by-event; exit 1 on the first divergence.
//   agc-faultplan shrink plan.jsonl out.jsonl --graph <spec> [--predicate
//       breaks|unstable] [--budget N] [--max-probes N]
//       ddmin the plan down to a 1-minimal reproducer of the chosen failure
//       predicate (replayed on the self-stabilizing coloring over --graph).
//   agc-faultplan fuzz --graph <spec> --seed S [--rounds N] [--budget N]
//       [--drop P] [--corrupt P] [--dup P] [--delay P] [--period K]
//       [--last-round R] [--ram-corrupt C] [--clones C] [--out plan.jsonl]
//       [--shrink]
//       plus the adversary-zoo knobs (docs/FAULTS.md):
//       [--out-lo V --out-hi V] [--flap-down P [--flap-up P]]
//       [--byz-liars P [--byz-rate P]]
//       [--adapt-count K [--adapt-period N] [--adapt-target degree|recent]]
//       [--churn-events N [--churn-grow N] [--churn-resets P]]
//       One seeded campaign run of ss_coloring under the channel adversary +
//       periodic RAM/topology adversary + any enabled zoo adversaries,
//       recording every injected fault.  Exit 0 when the run restabilizes;
//       exit 1 (after writing --out, shrunk when --shrink is given) when it
//       does not — CI uploads the plan.
//
// Probabilities P are per-edge-per-round, given as floats in [0,1] and
// converted to the parts-per-million grid the adversary uses.  Zoo windows
// default to [1, --last-round] like the channel adversary's.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "agc/exec/executor.hpp"
#include "agc/faultlab/channel.hpp"
#include "agc/faultlab/harness.hpp"
#include "agc/faultlab/plan.hpp"
#include "agc/faultlab/shrink.hpp"
#include "agc/faultlab/zoo.hpp"
#include "agc/graph/spec.hpp"
#include "agc/runtime/faults.hpp"
#include "agc/selfstab/ss_coloring.hpp"

namespace {

using namespace agc;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage: agc-faultplan <dump|diff|shrink|fuzz> [args] "
               "[--options]\nsee the header of tools/agc_faultplan.cpp for "
               "details\n");
  std::exit(2);
}

/// Fault plans inject topology churn into the replay engines, so this tool
/// is one of the two legitimate Mutable consumers of the spec helper
/// (docs/SCALE.md); everything read-only resolves to the frozen CSR instead.
graph::Graph make_graph(const std::string& spec) {
  try {
    auto rg = graph::GraphSpec::parse(spec).resolve(graph::Mutability::Mutable);
    return std::move(rg.graph());
  } catch (const std::invalid_argument& e) {
    usage(e.what());
  }
}

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> kv;
  bool has(const std::string& k) const { return kv.count(k) != 0; }
  std::string get(const std::string& k, const std::string& dflt = "") const {
    const auto it = kv.find(k);
    return it == kv.end() ? dflt : it->second;
  }
  std::uint64_t num(const std::string& k, std::uint64_t dflt) const {
    const auto it = kv.find(k);
    return it == kv.end() ? dflt : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  std::uint32_t ppm(const std::string& k) const {
    const auto it = kv.find(k);
    if (it == kv.end()) return 0;
    const double p = std::strtod(it->second.c_str(), nullptr);
    if (p < 0.0 || p > 1.0) usage("probabilities must be in [0,1]");
    return static_cast<std::uint32_t>(p * 1'000'000.0);
  }
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      a.positional.push_back(key);
      continue;
    }
    key = key.substr(2);
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      a.kv[key] = argv[++i];
    } else {
      a.kv[key] = "1";
    }
  }
  return a;
}

int cmd_dump(const Args& a) {
  if (a.positional.size() != 1) usage("dump takes one plan file");
  const auto plan = faultlab::FaultPlan::load(a.positional[0]);
  std::map<std::string, std::size_t> counts;
  std::printf("%8s  %-12s %6s %6s %5s  %s\n", "round", "kind", "u", "v",
              "word", "value");
  for (const auto& ev : plan.events) {
    std::printf("%8llu  %-12s %6u %6u %5u  %llu\n",
                static_cast<unsigned long long>(ev.round),
                runtime::to_string(ev.kind), ev.u, ev.v, ev.word,
                static_cast<unsigned long long>(ev.value));
    ++counts[runtime::to_string(ev.kind)];
  }
  std::printf("-- %zu events", plan.size());
  for (const auto& [k, c] : counts) std::printf("  %s=%zu", k.c_str(), c);
  std::printf("\n");
  return 0;
}

int cmd_diff(const Args& a) {
  if (a.positional.size() != 2) usage("diff takes two plan files");
  const auto lhs = faultlab::FaultPlan::load(a.positional[0]);
  const auto rhs = faultlab::FaultPlan::load(a.positional[1]);
  const std::size_t common = std::min(lhs.size(), rhs.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (!(lhs.events[i] == rhs.events[i])) {
      std::printf("plans diverge at event %zu:\n  a: round=%llu kind=%s u=%u "
                  "v=%u word=%u value=%llu\n  b: round=%llu kind=%s u=%u v=%u "
                  "word=%u value=%llu\n",
                  i, static_cast<unsigned long long>(lhs.events[i].round),
                  runtime::to_string(lhs.events[i].kind), lhs.events[i].u,
                  lhs.events[i].v, lhs.events[i].word,
                  static_cast<unsigned long long>(lhs.events[i].value),
                  static_cast<unsigned long long>(rhs.events[i].round),
                  runtime::to_string(rhs.events[i].kind), rhs.events[i].u,
                  rhs.events[i].v, rhs.events[i].word,
                  static_cast<unsigned long long>(rhs.events[i].value));
      return 1;
    }
  }
  if (lhs.size() != rhs.size()) {
    std::printf("plans differ in length: %zu vs %zu events\n", lhs.size(),
                rhs.size());
    return 1;
  }
  std::printf("plans identical (%zu events)\n", lhs.size());
  return 0;
}

/// Replay `plan` on a fresh ss_coloring engine over `g`.
/// predicate "breaks":   true iff the coloring becomes illegal at any round.
/// predicate "unstable": true iff the run does not restabilize in `budget`.
bool replay_fails(const graph::Graph& g, const selfstab::SsConfig& cfg,
                  const faultlab::FaultPlan& plan, const std::string& predicate,
                  std::size_t budget) {
  runtime::EngineOptions eo;
  eo.delta_bound = g.max_degree() + 2;
  runtime::Engine engine(g, runtime::Transport(runtime::Model::LOCAL), eo);
  engine.install(selfstab::ss_coloring_factory(cfg));
  runtime::RunOptions settle;
  settle.max_rounds = budget;
  if (!selfstab::run_until_stable(engine, cfg, settle).stabilized) return false;

  faultlab::PlanAdversary adv(plan);
  faultlab::ChannelPlayback chan(plan.events);
  if (predicate == "unstable") {
    runtime::RunOptions opts;
    opts.adversary = &adv;
    opts.channel = &chan;
    opts.max_rounds = budget;
    return !selfstab::run_until_stable(engine, cfg, opts).stabilized;
  }
  engine.set_channel(&chan);
  const auto check = faultlab::coloring_check(cfg);
  bool broke = false;
  const std::size_t horizon =
      static_cast<std::size_t>(adv.last_event_round()) + 4;
  for (std::size_t r = 0; r < horizon; ++r) {
    engine.step();
    adv.inject(engine, r + 1);
    if (check(engine)) {
      broke = true;
      break;
    }
  }
  engine.set_channel(nullptr);
  return broke;
}

int cmd_shrink(const Args& a) {
  if (a.positional.size() != 2) usage("shrink takes <in.jsonl> <out.jsonl>");
  if (!a.has("graph")) usage("shrink needs --graph (the replay substrate)");
  const auto plan = faultlab::FaultPlan::load(a.positional[0]);
  const auto g = make_graph(a.get("graph"));
  const selfstab::SsConfig cfg(g.n(), g.max_degree(),
                               selfstab::PaletteMode::ODelta);
  const std::string predicate = a.get("predicate", "breaks");
  const std::size_t budget = a.num("budget", 5000);
  auto reproduces = [&](const faultlab::FaultPlan& candidate) {
    return replay_fails(g, cfg, candidate, predicate, budget);
  };
  if (!reproduces(plan)) {
    std::fprintf(stderr, "input plan does not reproduce predicate '%s'\n",
                 predicate.c_str());
    return 1;
  }
  faultlab::ShrinkStats stats;
  const auto small = faultlab::shrink_plan(plan, reproduces, &stats,
                                           a.num("max-probes", 0));
  small.save(a.positional[1]);
  std::printf("shrunk %zu -> %zu events in %zu probes\n", stats.initial_events,
              stats.final_events, stats.probes);
  return 0;
}

faultlab::ZooSpec parse_zoo(const Args& a, const graph::Graph& g,
                            std::size_t dmax_bound) {
  const std::uint64_t zoo_last = a.num("last-round", 24);
  faultlab::ZooSpec zoo;
  zoo.outage.lo = static_cast<graph::Vertex>(a.num("out-lo", 1));
  zoo.outage.hi = static_cast<graph::Vertex>(a.num("out-hi", 0));
  zoo.outage.first_round = a.num("out-first", 1);
  zoo.outage.last_round = a.num("out-last", zoo_last);
  zoo.flap.down_per_million = a.ppm("flap-down");
  if (a.has("flap-up")) zoo.flap.up_per_million = a.ppm("flap-up");
  zoo.flap.first_round = a.num("flap-first", 1);
  zoo.flap.last_round = a.num("flap-last", zoo_last);
  zoo.byz.liars_per_million = a.ppm("byz-liars");
  if (a.has("byz-rate")) zoo.byz.lie_per_million = a.ppm("byz-rate");
  zoo.byz.first_round = a.num("byz-first", 1);
  zoo.byz.last_round = a.num("byz-last", zoo_last);
  zoo.adapt.count = a.num("adapt-count", 0);
  zoo.adapt.period = a.num("adapt-period", 1);
  zoo.adapt.last_round = a.num("adapt-last", zoo_last);
  const std::string target = a.get("adapt-target", "degree");
  if (target == "recent") {
    zoo.adapt.target = faultlab::AdaptiveConfig::Target::RecentlyRecolored;
  } else if (target != "degree") {
    usage("--adapt-target must be degree or recent");
  }
  zoo.churn.events = a.num("churn-events", 0);
  zoo.churn.attach = a.num("churn-attach", 2);
  if (a.has("churn-resets")) zoo.churn.resets_per_million = a.ppm("churn-resets");
  zoo.churn.last_round = a.num("churn-last", zoo_last);
  zoo.churn.dmax = std::min<std::size_t>(a.num("churn-dmax", dmax_bound),
                                         dmax_bound);
  zoo.churn.max_vertices = g.n() + a.num("churn-grow", 0);
  return zoo;
}

int cmd_fuzz(const Args& a) {
  if (!a.has("graph")) usage("fuzz needs --graph");
  const auto g = make_graph(a.get("graph"));
  const std::uint64_t seed = a.num("seed", 1);
  const std::size_t dmax_bound = g.max_degree() + 2;
  const faultlab::ZooSpec zoo = parse_zoo(a, g, dmax_bound);
  const std::size_t grow = a.num("churn-grow", 0);
  const selfstab::SsConfig cfg(g.n() + grow, g.max_degree(),
                               selfstab::PaletteMode::ODelta);
  runtime::EngineOptions eo;
  eo.delta_bound = dmax_bound;
  if (grow > 0) eo.n_bound = g.n() + grow;
  runtime::Engine engine(g, runtime::Transport(runtime::Model::LOCAL), eo);
  if (a.has("threads")) {
    engine.set_executor(exec::make_executor(a.num("threads", 1)));
  }
  engine.install(selfstab::ss_coloring_factory(cfg));

  faultlab::FaultPlanRecorder rec;
  engine.set_fault_recorder(&rec);
  faultlab::ChannelFaultConfig ccfg;
  ccfg.seed = seed;
  ccfg.drop_per_million = a.ppm("drop");
  ccfg.corrupt_per_million = a.ppm("corrupt");
  ccfg.duplicate_per_million = a.ppm("dup");
  ccfg.delay_per_million = a.ppm("delay");
  ccfg.first_round = 1;
  ccfg.last_round = a.num("last-round", 24);
  if (ccfg.total_per_million() > 1'000'000) {
    usage("fault probabilities sum above 1");
  }
  faultlab::ChannelAdversary chan(ccfg, &rec);
  runtime::PeriodicAdversary adv(
      seed * 2 + 1,
      {.period = a.num("period", 4),
       .last_round = a.num("last-round", 24),
       .corrupt = a.num("ram-corrupt", 2),
       .clones = a.num("clones", 1),
       .edge_adds = a.num("edge-adds", 0),
       .edge_removes = a.num("edge-removes", 0),
       .dmax = g.max_degree() + 2});

  faultlab::ChannelHookChain hooks;
  if (zoo.any_channel()) {
    hooks.add(chan);
    faultlab::append_channel_hooks(hooks, zoo, seed, &rec);
  }
  faultlab::FaultAdversaryChain advs;
  if (zoo.any_state()) {
    advs.add(adv);
    faultlab::append_state_adversaries(advs, zoo, seed);
  }

  runtime::RunOptions opts;
  opts.adversary = zoo.any_state()
                       ? static_cast<runtime::FaultAdversary*>(&advs)
                       : &adv;
  opts.channel =
      zoo.any_channel() ? static_cast<runtime::ChannelHook*>(&hooks) : &chan;
  opts.max_rounds = a.num("rounds", 8000);
  const auto rep = selfstab::run_until_stable(engine, cfg, opts);
  engine.set_fault_recorder(nullptr);
  faultlab::FaultPlan plan = rec.take();

  std::printf("seed=%llu events=%zu rounds=%zu stabilized=%d "
              "rounds_to_stable=%zu\n",
              static_cast<unsigned long long>(seed), plan.size(), rep.rounds,
              rep.stabilized ? 1 : 0, rep.rounds_to_stable);
  if (rep.stabilized) {
    if (a.has("out")) plan.save(a.get("out"));
    return 0;
  }

  // Failing campaign run: shrink (optionally) and persist the reproducer.
  if (a.has("shrink") && !plan.empty()) {
    const std::size_t budget = a.num("rounds", 8000);
    auto reproduces = [&](const faultlab::FaultPlan& candidate) {
      return replay_fails(g, cfg, candidate, "unstable", budget);
    };
    if (reproduces(plan)) {
      faultlab::ShrinkStats stats;
      plan = faultlab::shrink_plan(plan, reproduces, &stats,
                                   a.num("max-probes", 2000));
      std::printf("shrunk %zu -> %zu events in %zu probes\n",
                  stats.initial_events, stats.final_events, stats.probes);
    }
  }
  if (a.has("out")) plan.save(a.get("out"));
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  const Args a = parse(argc, argv);
  try {
    if (cmd == "dump") return cmd_dump(a);
    if (cmd == "diff") return cmd_diff(a);
    if (cmd == "shrink") return cmd_shrink(a);
    if (cmd == "fuzz") return cmd_fuzz(a);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  usage("unknown command");
}
