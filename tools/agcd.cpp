// agcd — the coloring-as-a-service daemon (docs/SERVICE.md).
//
//   agcd --graph <spec> --socket <path>      listen on a unix socket
//   agcd --graph <spec> --port <port>        listen on 127.0.0.1:<port>
//   agcd --graph <spec> --selfcheck          no sockets: run the wire
//                                            protocol in-process and exit
//
// Options mirroring `agccli svc`: --dmax, --max-vertices, --batch, --exact,
// --threads, --jsonl FILE (structured epoch/round events).
//
// The daemon owns one svc::Service and speaks the length-prefixed frame
// protocol of include/agc/svc/wire.hpp.  It is a single-threaded poll loop:
// determinism comes from the service's epoch batching, so concurrent clients
// are serialized at the frame level and the op stream is exactly the arrival
// order — no worker pool to introduce nondeterminism.  Mutations enqueue and
// return immediately; the pending epoch commits when a batch fills or a
// client forces it (`pump`, `query`, `stats`).

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "agc/exec/executor.hpp"
#include "agc/graph/spec.hpp"
#include "agc/obs/event_sink.hpp"
#include "agc/svc/service.hpp"
#include "agc/svc/wire.hpp"

namespace {

using namespace agc;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage: agcd --graph <spec> (--socket <path> | --port <n> | "
               "--selfcheck)\n            [--dmax <d>] [--max-vertices <m>] "
               "[--batch <b>] [--exact]\n            [--threads <n>] "
               "[--jsonl <file>]\nsee docs/SERVICE.md\n");
  std::exit(2);
}

struct Args {
  std::map<std::string, std::string> kv;
  bool has(const std::string& k) const { return kv.count(k) != 0; }
  std::string get(const std::string& k, const std::string& dflt = "") const {
    const auto it = kv.find(k);
    return it == kv.end() ? dflt : it->second;
  }
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage("options start with --");
    key = key.substr(2);
    if (key == "exact" || key == "selfcheck") {
      a.kv[key] = "1";
      continue;
    }
    if (i + 1 >= argc) usage(("missing value for --" + key).c_str());
    a.kv[key] = argv[++i];
  }
  if (!a.has("graph")) usage("--graph is required");
  if (!a.has("socket") && !a.has("port") && !a.has("selfcheck")) {
    usage("need --socket, --port or --selfcheck");
  }
  return a;
}

/// One connected client: a bounded frame scanner raw bytes feed into.
struct Client {
  int fd;
  svc::FrameReader reader;
};

bool send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + sent, bytes.size() - sent);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

int listen_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) usage("socket() failed");
  ::unlink(path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) usage("--socket path too long");
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    usage("cannot bind unix socket");
  }
  return fd;
}

int listen_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) usage("socket() failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 16) != 0) {
    usage("cannot bind tcp port");
  }
  return fd;
}

/// --selfcheck: exercise the full wire path (framing + command handling +
/// epoch commits) against an in-process byte stream, no sockets.  This is
/// what the CI smoke and `ctest -R agcd` run.
int selfcheck(svc::Service& service) {
  const char* script[] = {
      "add_vertex", "add_edge 0 2", "add_edge 1 3", "pump",
      "query 1",    "remove_edge 0 2", "stats",     "quit",
  };
  // Concatenate the framed requests into one stream, then consume it the way
  // the poll loop does, asserting every frame round-trips.
  std::string stream;
  for (const char* cmd : script) stream += svc::encode_frame(cmd);
  std::string payload;
  std::size_t handled = 0;
  bool saw_quit = false;
  while (svc::decode_frame(stream, payload)) {
    const std::string reply = svc::handle_command(service, payload);
    std::printf("%-16s -> %s\n", payload.c_str(), reply.c_str());
    if (reply.rfind("err", 0) == 0) return 1;
    ++handled;
    if (svc::is_quit(payload)) saw_quit = true;
  }
  if (handled != std::size(script) || !saw_quit || !stream.empty()) return 1;
  if (service.stats().legality_violations != 0 ||
      service.stats().rejected != 0) {
    return 1;
  }

  // Second phase: the bounded reader must survive an oversized garbage frame
  // sandwiched between valid commands and resynchronize on the next prefix.
  svc::FrameReader reader;
  std::string hostile = svc::encode_frame("stats");
  const std::uint32_t huge = svc::kMaxFramePayload + 9;
  for (int i = 0; i < 4; ++i) {
    hostile.push_back(static_cast<char>((huge >> (8 * i)) & 0xff));
  }
  hostile.append(1024, '\xee');  // partial garbage payload, rest never sent...
  std::string tail(huge - 1024, '\xee');
  tail += svc::encode_frame("query 1");  // ...until here
  const svc::FrameStatus s0 = reader.next(payload);
  reader.feed(hostile);
  const svc::FrameStatus s1 = reader.next(payload);
  const bool stats_ok = s1 == svc::FrameStatus::Ok && payload == "stats";
  const svc::FrameStatus s2 = reader.next(payload);
  reader.feed(tail);
  const svc::FrameStatus s3 = reader.next(payload);
  const bool query_ok = s3 == svc::FrameStatus::Ok && payload == "query 1";
  const bool bounded = reader.buffered() < 4096;
  if (s0 != svc::FrameStatus::Incomplete || !stats_ok ||
      s2 != svc::FrameStatus::TooLarge || !query_ok || !bounded ||
      reader.next(payload) != svc::FrameStatus::Incomplete) {
    std::fprintf(stderr, "selfcheck: frame reader failed\n");
    return 1;
  }
  std::printf("selfcheck ok: %zu frames, %s\n", handled,
              service.stats().to_json(/*include_timing=*/false).c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse(argc, argv);

  svc::ServiceConfig cfg;
  try {
    cfg.spec = graph::GraphSpec::parse(a.get("graph"));
  } catch (const std::invalid_argument& e) {
    usage(e.what());
  }
  cfg.delta_bound = std::strtoull(a.get("dmax", "0").c_str(), nullptr, 10);
  cfg.max_vertices =
      std::strtoull(a.get("max-vertices", "0").c_str(), nullptr, 10);
  cfg.mode = a.has("exact") ? selfstab::PaletteMode::ExactDeltaPlusOne
                            : selfstab::PaletteMode::ODelta;
  cfg.epoch_batch = std::strtoull(a.get("batch", "64").c_str(), nullptr, 10);
  cfg.run.executor = exec::make_executor(
      a.has("threads")
          ? std::strtoull(a.get("threads").c_str(), nullptr, 10)
          : exec::default_threads());

  std::ofstream jsonl_out;
  std::unique_ptr<obs::JsonlSink> sink;
  if (a.has("jsonl")) {
    jsonl_out.open(a.get("jsonl"));
    if (!jsonl_out) usage("cannot open --jsonl file");
    sink = std::make_unique<obs::JsonlSink>(jsonl_out);
    cfg.run.sink = sink.get();
  }

  svc::Service service(cfg);
  std::fprintf(stderr, "agcd: graph=%s n=%zu dmax=%zu batch=%zu\n",
               cfg.spec.to_string().c_str(), service.graph().n(),
               service.config().delta_bound, service.config().epoch_batch);

  if (a.has("selfcheck")) return selfcheck(service);

  const int listener = a.has("socket")
                           ? listen_unix(a.get("socket"))
                           : listen_tcp(static_cast<std::uint16_t>(
                                 std::strtoul(a.get("port").c_str(), nullptr, 10)));
  std::fprintf(stderr, "agcd: listening on %s\n",
               a.has("socket") ? a.get("socket").c_str()
                               : a.get("port").c_str());

  std::vector<Client> clients;
  char buf[4096];
  while (true) {
    std::vector<pollfd> fds;
    fds.push_back({listener, POLLIN, 0});
    for (const Client& c : clients) fds.push_back({c.fd, POLLIN, 0});
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if ((fds[0].revents & POLLIN) != 0) {
      const int fd = ::accept(listener, nullptr, nullptr);
      if (fd >= 0) clients.push_back({fd, {}});
    }
    // Walk backwards so dropped clients don't shift pending indices.
    for (std::size_t i = clients.size(); i-- > 0;) {
      if ((fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Client& c = clients[i];
      const ssize_t n = ::read(c.fd, buf, sizeof buf);
      bool drop = n <= 0;
      if (n > 0) {
        c.reader.feed({buf, static_cast<std::size_t>(n)});
        std::string payload;
        while (!drop) {
          const svc::FrameStatus st = c.reader.next(payload);
          if (st == svc::FrameStatus::Incomplete) break;
          // Oversized/garbage frames get an error reply and the connection
          // keeps serving — a confused client must not kill the daemon.
          const std::string reply = st == svc::FrameStatus::TooLarge
                                        ? "err frame too large"
                                        : svc::handle_command(service, payload);
          if (!send_all(c.fd, svc::encode_frame(reply))) drop = true;
          if (st == svc::FrameStatus::Ok && svc::is_quit(payload)) drop = true;
        }
      }
      if (drop) {
        ::close(c.fd);
        clients.erase(clients.begin() + static_cast<std::ptrdiff_t>(i));
      }
    }
  }
  ::close(listener);
  return 0;
}
