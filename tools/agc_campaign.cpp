// agc-campaign — campaign grid authoring for the scheduler (docs/SCHED.md).
//
//   agc-campaign grid --algos ag,kw,gps --graphs "regular:1500,8,1242 gnp:1000,0.01,7"
//                     --seeds 1,2,3 [--tag T] [--model setlocal|local|congest]
//                     [--max-rounds N] [--idspace F]
//                     [--chan-drop P] [--chan-corrupt P] [--chan-dup P]
//                     [--chan-delay P] [--chan-first R] [--chan-last R]
//                     [--adv-period N] [--adv-last R] [--adv-corrupt K]
//                     [--adv-range V] [--adv-clones K] [--adv-eadds K]
//                     [--adv-eremoves K] [--adv-dmax D]
//                     [--out-lo V] [--out-hi V] [--out-first R] [--out-last R]
//                     [--flap-down P] [--flap-up P] [--flap-first R]
//                     [--flap-last R]
//                     [--byz-liars P] [--byz-rate P] [--byz-first R]
//                     [--byz-last R]
//                     [--adapt-period N] [--adapt-count K] [--adapt-last R]
//                     [--adapt-target degree|recent]
//                     [--churn-events N] [--churn-alpha F] [--churn-attach K]
//                     [--churn-resets P] [--churn-first R] [--churn-last R]
//                     [--churn-dmax D] [--churn-grow N]
//                     [--budget N] [--confirm N] [--plan-out-dir DIR]
//                     [--out FILE]
//   agc-campaign ls --file FILE
//
// `grid` expands the cross product algorithms x graphs x seeds into the
// campaign file format (one `key=value ...` job line per cell, graphs in
// canonical GraphSpec spelling) that `agccli campaign run` executes.  With
// --plan-out-dir each fault job records its injected faults and saves a
// replayable plan there when it fails — the nightly fuzz artifact.
// Channel, flap, byz, and churn-reset probabilities are floats in [0,1].
// The out-/flap-/byz-/adapt-/churn- families configure the adversary zoo
// (docs/FAULTS.md): regional outages, flapping links, Byzantine-valued
// neighbors, the adaptive RAM adversary, and power-law churn traces.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "agc/sched/campaign.hpp"

namespace {

using namespace agc;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage: agc-campaign grid --algos a,b --graphs \"spec spec\" "
               "[--seeds 1,2] [options] [--out FILE]\n"
               "       agc-campaign ls --file FILE\n"
               "see the header of tools/agc_campaign.cpp for details\n");
  std::exit(2);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, sep)) {
    if (!tok.empty()) out.push_back(tok);
  }
  return out;
}

struct Args {
  std::map<std::string, std::string> kv;
  bool has(const std::string& k) const { return kv.count(k) != 0; }
  std::string get(const std::string& k, const std::string& dflt = "") const {
    const auto it = kv.find(k);
    return it == kv.end() ? dflt : it->second;
  }
  std::uint64_t num(const std::string& k, std::uint64_t dflt) const {
    const auto it = kv.find(k);
    return it == kv.end() ? dflt : std::strtoull(it->second.c_str(), nullptr, 10);
  }
};

std::uint32_t ppm(const Args& a, const std::string& key) {
  if (!a.has(key)) return 0;
  const double p = std::strtod(a.get(key).c_str(), nullptr);
  if (p < 0.0 || p > 1.0) usage("probabilities must be in [0,1]");
  return static_cast<std::uint32_t>(p * 1'000'000.0);
}

int cmd_grid(const Args& a) {
  if (!a.has("algos") || !a.has("graphs")) {
    usage("grid needs --algos and --graphs");
  }
  const auto algos = split(a.get("algos"), ',');
  const auto graph_specs = split(a.get("graphs"), ' ');
  const auto seed_strs = split(a.get("seeds", "1"), ',');

  sched::JobSpec base;
  base.tag = a.get("tag");
  const std::string model = a.get("model", "setlocal");
  if (model == "local") {
    base.opts.model = runtime::Model::LOCAL;
  } else if (model == "congest") {
    base.opts.model = runtime::Model::CONGEST;
  } else if (model != "setlocal") {
    usage("unknown --model");
  }
  if (a.has("max-rounds")) base.opts.max_rounds = a.num("max-rounds", 0);
  base.id_space_factor = a.num("idspace", 1);
  base.faults.channel.drop_per_million = ppm(a, "chan-drop");
  base.faults.channel.corrupt_per_million = ppm(a, "chan-corrupt");
  base.faults.channel.duplicate_per_million = ppm(a, "chan-dup");
  base.faults.channel.delay_per_million = ppm(a, "chan-delay");
  base.faults.channel.first_round = a.num("chan-first", 0);
  if (a.has("chan-last")) base.faults.channel.last_round = a.num("chan-last", 0);
  base.faults.periodic.period = a.num("adv-period", 1);
  if (a.has("adv-last")) base.faults.periodic.last_round = a.num("adv-last", 0);
  base.faults.periodic.corrupt = a.num("adv-corrupt", 0);
  base.faults.periodic.value_range = a.num("adv-range", 0);
  base.faults.periodic.clones = a.num("adv-clones", 0);
  base.faults.periodic.edge_adds = a.num("adv-eadds", 0);
  base.faults.periodic.edge_removes = a.num("adv-eremoves", 0);
  base.faults.periodic.dmax = a.num("adv-dmax", 0);
  auto& zoo = base.faults.zoo;
  if (a.has("out-lo")) zoo.outage.lo = static_cast<graph::Vertex>(a.num("out-lo", 0));
  if (a.has("out-hi")) zoo.outage.hi = static_cast<graph::Vertex>(a.num("out-hi", 0));
  zoo.outage.first_round = a.num("out-first", zoo.outage.first_round);
  if (a.has("out-last")) zoo.outage.last_round = a.num("out-last", 0);
  if (a.has("flap-down")) zoo.flap.down_per_million = ppm(a, "flap-down");
  if (a.has("flap-up")) zoo.flap.up_per_million = ppm(a, "flap-up");
  zoo.flap.first_round = a.num("flap-first", zoo.flap.first_round);
  if (a.has("flap-last")) zoo.flap.last_round = a.num("flap-last", 0);
  if (a.has("byz-liars")) zoo.byz.liars_per_million = ppm(a, "byz-liars");
  if (a.has("byz-rate")) zoo.byz.lie_per_million = ppm(a, "byz-rate");
  zoo.byz.first_round = a.num("byz-first", zoo.byz.first_round);
  if (a.has("byz-last")) zoo.byz.last_round = a.num("byz-last", 0);
  zoo.adapt.period = a.num("adapt-period", zoo.adapt.period);
  zoo.adapt.count = a.num("adapt-count", 0);
  if (a.has("adapt-last")) zoo.adapt.last_round = a.num("adapt-last", 0);
  if (a.has("adapt-target")) {
    const std::string t = a.get("adapt-target");
    if (t == "degree") {
      zoo.adapt.target = faultlab::AdaptiveConfig::Target::HighestDegree;
    } else if (t == "recent") {
      zoo.adapt.target = faultlab::AdaptiveConfig::Target::RecentlyRecolored;
    } else {
      usage("--adapt-target must be degree or recent");
    }
  }
  zoo.churn.events = a.num("churn-events", 0);
  if (a.has("churn-alpha")) {
    zoo.churn.alpha = std::strtod(a.get("churn-alpha").c_str(), nullptr);
    if (zoo.churn.alpha <= 0.0) usage("--churn-alpha must be positive");
  }
  zoo.churn.attach = a.num("churn-attach", zoo.churn.attach);
  if (a.has("churn-resets")) zoo.churn.resets_per_million = ppm(a, "churn-resets");
  zoo.churn.first_round = a.num("churn-first", zoo.churn.first_round);
  if (a.has("churn-last")) zoo.churn.last_round = a.num("churn-last", 0);
  zoo.churn.dmax = a.num("churn-dmax", zoo.churn.dmax);
  zoo.churn.grow = a.num("churn-grow", 0);
  base.faults.recovery_budget = a.num("budget", base.faults.recovery_budget);
  base.faults.confirm_rounds = a.num("confirm", base.faults.confirm_rounds);

  sched::Campaign c;
  for (const auto& algo : algos) {
    if (sched::find_runner(algo) == nullptr) {
      usage(("unknown algorithm '" + algo + "'").c_str());
    }
    for (const auto& spec_str : graph_specs) {
      const auto spec = graph::GraphSpec::parse(spec_str);
      for (const auto& seed_str : seed_strs) {
        sched::JobSpec job = base;
        job.algorithm = algo;
        job.graph = spec;
        job.seed = std::strtoull(seed_str.c_str(), nullptr, 10);
        if (a.has("plan-out-dir") && job.faults.any()) {
          char h[24];
          std::snprintf(h, sizeof h, "%016llx",
                        static_cast<unsigned long long>(spec.content_hash()));
          job.faults.plan_out = a.get("plan-out-dir") + "/" + algo + "-" + h +
                                "-s" + seed_str + ".jsonl";
        }
        c.add(std::move(job));
      }
    }
  }

  const std::string text = c.format();
  if (a.has("out")) {
    std::ofstream out(a.get("out"));
    if (!out) usage("cannot open --out file");
    out << text;
    std::printf("wrote %zu jobs to %s\n", c.size(), a.get("out").c_str());
  } else {
    std::fputs(text.c_str(), stdout);
  }
  return 0;
}

int cmd_ls(const Args& a) {
  if (!a.has("file")) usage("ls needs --file FILE");
  const auto c = sched::Campaign::parse_file(a.get("file"));
  std::printf("# %zu jobs\n", c.size());
  std::fputs(c.format().c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  Args a;
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage("options start with --");
    if (i + 1 >= argc) usage(("missing value for " + key).c_str());
    a.kv[key.substr(2)] = argv[++i];
  }
  try {
    if (cmd == "grid") return cmd_grid(a);
    if (cmd == "ls") return cmd_ls(a);
    usage("unknown command");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
