// agc-trace: offline analysis of agcolor observability artifacts.
//
//   agc-trace dump <trace.jsonl>             print every event, one per line
//   agc-trace summary <trace.jsonl>          per-kind / per-stage rollup
//   agc-trace diff <base.json> <new.json> [--threshold 0.10] [--metric NAME]
//                                            compare two bench JSON files and
//                                            exit 1 on a regression beyond the
//                                            threshold
//
// The diff subcommand understands the committed BENCH_*.json layout (a top
// level object with a "rows" array; rows keyed by "name" or "delta").  Rate
// metrics (rounds_per_sec, items_per_second) regress when they drop:
// (base - new) / base.  Time metrics (real_time_per_iter_s, wall_s, ...)
// regress when they grow: (new - base) / base.  This is the binary behind the
// CI perf gate; see .github/workflows/ci.yml and docs/OBSERVABILITY.md.

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// A minimal recursive-descent JSON reader — just enough for bench files and
// JSONL traces.  No dependency; errors throw std::runtime_error.
// ---------------------------------------------------------------------------

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue, std::less<>>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string,
               std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
      v = nullptr;

  [[nodiscard]] bool is_object() const {
    return std::holds_alternative<std::shared_ptr<JsonObject>>(v);
  }
  [[nodiscard]] bool is_array() const {
    return std::holds_alternative<std::shared_ptr<JsonArray>>(v);
  }
  [[nodiscard]] bool is_number() const {
    return std::holds_alternative<double>(v);
  }
  [[nodiscard]] bool is_string() const {
    return std::holds_alternative<std::string>(v);
  }
  [[nodiscard]] const JsonObject& object() const {
    return *std::get<std::shared_ptr<JsonObject>>(v);
  }
  [[nodiscard]] const JsonArray& array() const {
    return *std::get<std::shared_ptr<JsonArray>>(v);
  }
  [[nodiscard]] double number() const { return std::get<double>(v); }
  [[nodiscard]] const std::string& string() const {
    return std::get<std::string>(v);
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const char* what) const {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue{parse_string()};
    if (consume_literal("true")) return JsonValue{true};
    if (consume_literal("false")) return JsonValue{false};
    if (consume_literal("null")) return JsonValue{nullptr};
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    auto obj = std::make_shared<JsonObject>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{obj};
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      (*obj)[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return JsonValue{obj};
    }
  }

  JsonValue parse_array() {
    expect('[');
    auto arr = std::make_shared<JsonArray>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{arr};
    }
    while (true) {
      arr->push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return JsonValue{arr};
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      c = text_[pos_++];
      switch (c) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not needed
          // for our own traces; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    return JsonValue{std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(), nullptr)};
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Trace (JSONL) subcommands.
// ---------------------------------------------------------------------------

struct TraceEvent {
  std::string kind;
  std::string label;
  double round = 0;
  double value = 0;
  double ns = 0;
};

std::optional<double> get_number(const JsonObject& obj, std::string_view key) {
  const auto it = obj.find(key);
  if (it == obj.end() || !it->second.is_number()) return std::nullopt;
  return it->second.number();
}

std::optional<std::string> get_string(const JsonObject& obj, std::string_view key) {
  const auto it = obj.find(key);
  if (it == obj.end() || !it->second.is_string()) return std::nullopt;
  return it->second.string();
}

std::vector<TraceEvent> load_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::vector<TraceEvent> events;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    JsonValue value;
    try {
      value = JsonParser(line).parse();
    } catch (const std::exception& e) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) + ": " + e.what());
    }
    if (!value.is_object()) continue;
    const auto& obj = value.object();
    TraceEvent ev;
    ev.kind = get_string(obj, "kind").value_or("?");
    ev.label = get_string(obj, "label").value_or("");
    ev.round = get_number(obj, "round").value_or(0);
    ev.value = get_number(obj, "value").value_or(0);
    ev.ns = get_number(obj, "ns").value_or(0);
    events.push_back(std::move(ev));
  }
  return events;
}

int cmd_dump(const std::string& path) {
  const auto events = load_trace(path);
  for (const auto& ev : events) {
    std::printf("%-12s round=%-8.0f value=%-12.0f ns=%-12.0f %s\n",
                ev.kind.c_str(), ev.round, ev.value, ev.ns, ev.label.c_str());
  }
  std::printf("# %zu events\n", events.size());
  return 0;
}

int cmd_summary(const std::string& path) {
  const auto events = load_trace(path);

  std::map<std::string, std::size_t> kind_counts;
  double rounds = 0, messages = 0, round_ns = 0, max_round_ns = 0;
  double run_wall_ns = 0, faults = 0, fault_events = 0;
  struct Stage { double rounds = 0; double ns = 0; std::size_t runs = 0; };
  std::map<std::string, Stage> stages;

  for (const auto& ev : events) {
    ++kind_counts[ev.kind];
    if (ev.kind == "round_end") {
      rounds += 1;
      messages += ev.value;
      round_ns += ev.ns;
      if (ev.ns > max_round_ns) max_round_ns = ev.ns;
    } else if (ev.kind == "stage_end") {
      auto& s = stages[ev.label.empty() ? "?" : ev.label];
      s.rounds += ev.value;
      s.ns += ev.ns;
      ++s.runs;
    } else if (ev.kind == "fault") {
      faults += 1;
      fault_events += ev.value;
    } else if (ev.kind == "run_end") {
      run_wall_ns += ev.ns;
    }
  }

  std::printf("events: %zu\n", events.size());
  for (const auto& [kind, count] : kind_counts) {
    std::printf("  %-12s %zu\n", kind.c_str(), count);
  }
  if (rounds > 0) {
    std::printf("rounds: %.0f  messages: %.0f  mean round: %.1f us  max round: %.1f us\n",
                rounds, messages, round_ns / rounds / 1e3, max_round_ns / 1e3);
  }
  if (!stages.empty()) {
    std::printf("stages:\n");
    for (const auto& [tag, s] : stages) {
      std::printf("  %-10s runs=%zu rounds=%.0f wall=%.3f ms\n", tag.c_str(),
                  s.runs, s.rounds, s.ns / 1e6);
    }
  }
  if (faults > 0) {
    std::printf("faults: %.0f injections, %.0f corrupted state words/edges\n",
                faults, fault_events);
  }
  if (run_wall_ns > 0) std::printf("run wall: %.3f ms\n", run_wall_ns / 1e6);
  return 0;
}

// ---------------------------------------------------------------------------
// diff: bench JSON comparison, the CI perf gate.
// ---------------------------------------------------------------------------

// direction: +1 = higher is better (rate), -1 = lower is better (time).
struct MetricSpec { const char* name; int direction; };
constexpr MetricSpec kKnownMetrics[] = {
    {"rounds_per_sec", +1}, {"items_per_second", +1},
    {"real_time_per_iter_s", -1}, {"cpu_time_per_iter_s", -1},
    {"wall_s", -1},
    // Serving metrics (bench_service / BENCH_service.json): throughput up is
    // better, latency quantiles down.
    {"mutations_per_sec", +1}, {"p50_latency_us", -1}, {"p99_latency_us", -1},
};

// Structural row identity: benches tag rows with the canonical GraphSpec
// string and thread count (bench_util.hpp), so the key composes every
// identifying field present instead of relying on positional order.
std::string row_key(const JsonObject& row) {
  std::string key;
  auto append = [&](const std::string& part) {
    if (part.empty()) return;
    if (!key.empty()) key += '|';
    key += part;
  };
  if (auto name = get_string(row, "name")) append(*name);
  if (auto graph = get_string(row, "graph")) append(*graph);
  if (auto delta = get_number(row, "delta")) {
    append("delta=" + std::to_string(static_cast<long long>(*delta)));
  }
  if (auto threads = get_number(row, "threads")) {
    append("t" + std::to_string(static_cast<long long>(*threads)));
  }
  return key;
}

JsonValue load_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return JsonParser(ss.str()).parse();
}

int cmd_diff(const std::string& base_path, const std::string& new_path,
             double threshold, const std::string& metric_filter) {
  const JsonValue base = load_json_file(base_path);
  const JsonValue fresh = load_json_file(new_path);
  if (!base.is_object() || !fresh.is_object()) {
    std::fprintf(stderr, "agc-trace diff: expected top-level JSON objects\n");
    return 2;
  }
  const auto rows_of = [](const JsonValue& doc) -> const JsonArray* {
    const auto it = doc.object().find("rows");
    if (it == doc.object().end() || !it->second.is_array()) return nullptr;
    return &it->second.array();
  };
  const JsonArray* base_rows = rows_of(base);
  const JsonArray* new_rows = rows_of(fresh);
  if (base_rows == nullptr || new_rows == nullptr) {
    std::fprintf(stderr, "agc-trace diff: missing \"rows\" array\n");
    return 2;
  }

  std::map<std::string, const JsonObject*> base_by_key;
  for (const auto& row : *base_rows) {
    if (row.is_object()) base_by_key[row_key(row.object())] = &row.object();
  }

  int regressions = 0;
  std::size_t compared = 0;
  for (const auto& row : *new_rows) {
    if (!row.is_object()) continue;
    const auto& nr = row.object();
    const auto it = base_by_key.find(row_key(nr));
    if (it == base_by_key.end()) {
      std::printf("NEW       %-40s (no baseline row)\n", row_key(nr).c_str());
      continue;
    }
    const JsonObject& br = *it->second;
    for (const auto& spec : kKnownMetrics) {
      if (!metric_filter.empty() && metric_filter != spec.name) continue;
      const auto bv = get_number(br, spec.name);
      const auto nv = get_number(nr, spec.name);
      if (!bv || !nv || *bv == 0.0) continue;
      ++compared;
      // Positive change = regression, for both directions.
      const double change = spec.direction > 0 ? (*bv - *nv) / *bv
                                               : (*nv - *bv) / *bv;
      const bool bad = change > threshold;
      if (bad) ++regressions;
      std::printf("%-9s %-40s %-22s base=%-12.4f new=%-12.4f %+.1f%%\n",
                  bad ? "REGRESSED" : "ok", it->first.c_str(), spec.name,
                  *bv, *nv, change * 100.0);
    }
  }

  if (compared == 0) {
    std::fprintf(stderr, "agc-trace diff: no comparable metrics found\n");
    return 2;
  }
  std::printf("# %zu comparisons, %d regression(s) beyond %.0f%%\n", compared,
              regressions, threshold * 100.0);
  return regressions > 0 ? 1 : 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: agc-trace dump <trace.jsonl>\n"
               "       agc-trace summary <trace.jsonl>\n"
               "       agc-trace diff <base.json> <new.json>"
               " [--threshold 0.10] [--metric NAME]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  try {
    if (args.size() == 2 && args[0] == "dump") return cmd_dump(args[1]);
    if (args.size() == 2 && args[0] == "summary") return cmd_summary(args[1]);
    if (args.size() >= 3 && args[0] == "diff") {
      double threshold = 0.10;
      std::string metric;
      for (std::size_t i = 3; i < args.size(); ++i) {
        if (args[i] == "--threshold" && i + 1 < args.size()) {
          threshold = std::strtod(args[++i].c_str(), nullptr);
        } else if (args[i] == "--metric" && i + 1 < args.size()) {
          metric = args[++i];
        } else {
          return usage();
        }
      }
      return cmd_diff(args[1], args[2], threshold, metric);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "agc-trace: %s\n", e.what());
    return 2;
  }
  return usage();
}
