// agccli — command-line front end for the agcolor library.
//
//   agccli color    --graph <spec> [--algo ag|exact|kw|gps|odelta|eps|sublinear]
//                   [--model setlocal|local|congest] [--eps <x>]
//                   [--threads <n>] [--csv <file>] [--dot <file>]
//   agccli edges    --graph <spec> [--bit-round] [--no-exact] [--csv <file>]
//   agccli mis      --graph <spec>
//   agccli match    --graph <spec>
//   agccli selfstab --graph <spec> [--exact] [--faults <k>] [--epochs <e>]
//
// --threads N (or AGC_THREADS) runs the round engine on the exec subsystem's
// N-thread backend (N=0: all hardware threads); results are bit-identical to
// the sequential engine by the shard-determinism contract (docs/EXEC.md).
//
// Observability (every command above):
//   --jsonl FILE   stream structured run events (JSONL) to FILE; analyze with
//                  `agc-trace dump|summary FILE` (docs/OBSERVABILITY.md)
//   --phases       collect per-phase timings and print the telemetry summary
//   agccli gen      --graph <spec> --out <file>
//
// Graph specs:
//   file:PATH                DIMACS-flavored edge list (see graph/io.hpp)
//   gnp:N,P,SEED             Erdos-Renyi
//   regular:N,D,SEED         random D-regular
//   grid:R,C | cycle:N | path:N | complete:N | star:N | tree:N
//   geometric:N,RADIUS,SEED  random geometric (unit square)
//   ba:N,K,SEED              Barabasi-Albert preferential attachment

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "agc/arb/eps_coloring.hpp"
#include "agc/coloring/pipeline.hpp"
#include "agc/obs/event_sink.hpp"
#include "agc/coloring/symmetry.hpp"
#include "agc/edge/edge_coloring.hpp"
#include "agc/exec/executor.hpp"
#include "agc/graph/generators.hpp"
#include "agc/graph/io.hpp"
#include "agc/runtime/faults.hpp"
#include "agc/runtime/trace.hpp"
#include "agc/selfstab/ss_coloring.hpp"

namespace {

using namespace agc;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage: agccli <color|edges|mis|match|selfstab|gen> --graph <spec> "
               "[--threads <n>] [options]\nsee the header of tools/agccli.cpp "
               "for details\n");
  std::exit(2);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string tok;
  while (std::getline(ss, tok, sep)) out.push_back(tok);
  return out;
}

graph::Graph make_graph(const std::string& spec) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos) usage("graph spec needs kind:args");
  const std::string kind = spec.substr(0, colon);
  const auto args = split(spec.substr(colon + 1), ',');
  auto num = [&](std::size_t i) -> std::uint64_t {
    if (i >= args.size()) usage("missing graph argument");
    return std::strtoull(args[i].c_str(), nullptr, 10);
  };
  auto real = [&](std::size_t i) -> double {
    if (i >= args.size()) usage("missing graph argument");
    return std::strtod(args[i].c_str(), nullptr);
  };
  if (kind == "file") return graph::read_edge_list_file(spec.substr(colon + 1));
  if (kind == "gnp") return graph::random_gnp(num(0), real(1), num(2));
  if (kind == "regular") return graph::random_regular(num(0), num(1), num(2));
  if (kind == "grid") return graph::grid(num(0), num(1));
  if (kind == "cycle") return graph::cycle(num(0));
  if (kind == "path") return graph::path(num(0));
  if (kind == "complete") return graph::complete(num(0));
  if (kind == "star") return graph::star(num(0));
  if (kind == "tree") return graph::binary_tree(num(0));
  if (kind == "geometric") return graph::random_geometric(num(0), real(1), num(2));
  if (kind == "ba") return graph::barabasi_albert(num(0), num(1), num(2));
  usage("unknown graph kind");
}

struct Args {
  std::string command;
  std::map<std::string, std::string> kv;
  bool has(const std::string& k) const { return kv.count(k) != 0; }
  std::string get(const std::string& k, const std::string& dflt = "") const {
    const auto it = kv.find(k);
    return it == kv.end() ? dflt : it->second;
  }

  /// Execution backend for --threads/AGC_THREADS (null-free: sequential when 1).
  std::shared_ptr<runtime::RoundExecutor> executor() const {
    const auto it = kv.find("threads");
    const std::size_t threads =
        it == kv.end() ? exec::default_threads()
                       : std::strtoull(it->second.c_str(), nullptr, 10);
    return exec::make_executor(threads);
  }
};

/// --jsonl/--phases wiring: owns the trace stream + sink for one command and
/// applies them to any RunOptions-derived options struct.
struct ObsFlags {
  std::ofstream out;
  std::unique_ptr<obs::JsonlSink> sink;
  bool phases = false;

  explicit ObsFlags(const Args& a) : phases(a.has("phases")) {
    if (a.has("jsonl")) {
      out.open(a.get("jsonl"));
      if (!out) usage("cannot open --jsonl file");
      sink = std::make_unique<obs::JsonlSink>(out);
    }
  }

  void apply(runtime::RunOptions& opts) {
    if (sink) opts.sink = sink.get();
    opts.collect_phase_times = phases;
  }

  void report(const runtime::RunReport& rep) const {
    if (phases) rep.telemetry().write_summary(std::cout);
  }
};

Args parse(int argc, char** argv) {
  if (argc < 2) usage();
  Args a;
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage("options start with --");
    key = key.substr(2);
    // Flags without values.
    if (key == "bit-round" || key == "no-exact" || key == "exact" ||
        key == "phases") {
      a.kv[key] = "1";
      continue;
    }
    if (i + 1 >= argc) usage(("missing value for --" + key).c_str());
    a.kv[key] = argv[++i];
  }
  if (!a.has("graph") && a.command != "help") usage("--graph is required");
  return a;
}

int cmd_color(const Args& a) {
  const auto g = make_graph(a.get("graph"));
  ObsFlags ob(a);
  coloring::PipelineOptions opts;
  opts.iter.executor = a.executor();
  ob.apply(opts.iter);
  runtime::TraceRecorder trace(g, nullptr);
  if (a.has("trace")) opts.iter.on_round = trace.observer();
  const std::string model = a.get("model", "setlocal");
  if (model == "local") {
    opts.iter.model = runtime::Model::LOCAL;
  } else if (model == "congest") {
    opts.iter.model = runtime::Model::CONGEST;
  } else if (model != "setlocal") {
    usage("unknown --model");
  }

  const std::string algo = a.get("algo", "ag");
  std::vector<coloring::Color> colors;
  std::size_t rounds = 0, palette = 0;
  bool ok = false;
  runtime::RunReport core;
  if (algo == "eps" || algo == "sublinear") {
    const auto rep =
        algo == "eps"
            ? arb::eps_delta_coloring(
                  g, std::strtod(a.get("eps", "0.5").c_str(), nullptr), 0,
                  static_cast<const runtime::RunOptions&>(opts.iter))
            : arb::sublinear_delta_plus_one(
                  g, 0, static_cast<const runtime::RunOptions&>(opts.iter));
    colors = rep.colors;
    rounds = rep.rounds;
    palette = rep.palette;
    ok = rep.converged && rep.proper;
    core = rep;
  } else {
    coloring::PipelineReport rep;
    if (algo == "ag") {
      rep = coloring::color_delta_plus_one(g, opts);
    } else if (algo == "exact") {
      rep = coloring::color_delta_plus_one_exact(g, opts);
    } else if (algo == "kw") {
      rep = coloring::color_kuhn_wattenhofer(g, opts);
    } else if (algo == "gps") {
      rep = coloring::color_linial_greedy(g, opts);
    } else if (algo == "odelta") {
      rep = coloring::color_o_delta(g, opts);
    } else {
      usage("unknown --algo");
    }
    colors = rep.colors;
    rounds = rep.rounds;
    palette = rep.palette;
    ok = rep.converged && rep.proper;
    core = rep;
  }

  std::printf("n=%zu m=%zu Delta=%zu algo=%s model=%s\n", g.n(), g.m(),
              g.max_degree(), algo.c_str(), model.c_str());
  std::printf("rounds=%zu palette=%zu proper=%s\n", rounds, palette,
              ok ? "yes" : "NO");
  ob.report(core);
  if (a.has("csv")) {
    std::ofstream out(a.get("csv"));
    graph::write_coloring_csv(out, colors);
  }
  if (a.has("dot")) {
    std::ofstream out(a.get("dot"));
    graph::write_dot(out, g, colors);
  }
  if (a.has("trace")) {
    std::ofstream out(a.get("trace"));
    trace.write_csv(out);
  }
  return ok ? 0 : 1;
}

int cmd_edges(const Args& a) {
  const auto g = make_graph(a.get("graph"));
  ObsFlags ob(a);
  edge::EdgeColoringOptions opts;
  opts.executor = a.executor();
  ob.apply(opts);
  opts.bit_round = a.has("bit-round");
  opts.exact = !a.has("no-exact");
  const auto res = edge::color_edges_distributed(g, opts);
  std::printf("n=%zu m=%zu Delta=%zu model=%s\n", g.n(), g.m(), g.max_degree(),
              opts.bit_round ? "BIT" : "CONGEST");
  std::printf("rounds=%zu palette=%zu (2D-1=%zu) proper=%s bits/edge=%.1f\n",
              res.rounds, res.palette,
              g.max_degree() > 0 ? 2 * g.max_degree() - 1 : 1,
              res.proper ? "yes" : "NO", res.avg_bits_per_edge);
  if (a.has("csv")) {
    std::ofstream out(a.get("csv"));
    graph::write_coloring_csv(out, res.colors);
  }
  ob.report(res);
  return res.proper ? 0 : 1;
}

int cmd_mis(const Args& a) {
  const auto g = make_graph(a.get("graph"));
  ObsFlags ob(a);
  coloring::PipelineOptions opts;
  opts.iter.executor = a.executor();
  ob.apply(opts.iter);
  const auto rep = coloring::maximal_independent_set(g, opts);
  std::size_t size = 0;
  for (bool b : rep.in_mis) size += b;
  std::printf("n=%zu m=%zu Delta=%zu\n", g.n(), g.m(), g.max_degree());
  std::printf("rounds=%zu (coloring %zu + wave %zu) |MIS|=%zu valid=%s\n",
              rep.rounds_coloring + rep.rounds_mis, rep.rounds_coloring,
              rep.rounds_mis, size, rep.valid ? "yes" : "NO");
  ob.report(rep);
  return rep.valid ? 0 : 1;
}

int cmd_match(const Args& a) {
  const auto g = make_graph(a.get("graph"));
  ObsFlags ob(a);
  coloring::PipelineOptions opts;
  opts.iter.executor = a.executor();
  ob.apply(opts.iter);
  const auto rep = coloring::maximal_matching(g, opts);
  std::printf("n=%zu m=%zu Delta=%zu\n", g.n(), g.m(), g.max_degree());
  std::printf("line-graph rounds=%zu |M|=%zu valid=%s\n", rep.rounds,
              rep.matching.size(), rep.valid ? "yes" : "NO");
  ob.report(rep);
  return rep.valid ? 0 : 1;
}

int cmd_selfstab(const Args& a) {
  const auto g = make_graph(a.get("graph"));
  const std::size_t delta = std::max<std::size_t>(g.max_degree(), 1);
  const auto mode = a.has("exact") ? selfstab::PaletteMode::ExactDeltaPlusOne
                                   : selfstab::PaletteMode::ODelta;
  selfstab::SsConfig cfg(g.n(), delta, mode);
  runtime::EngineOptions eo;
  eo.delta_bound = delta;
  runtime::Engine engine(g, runtime::Transport(runtime::Model::LOCAL), eo);
  engine.set_executor(a.executor());
  engine.install(selfstab::ss_coloring_factory(cfg));

  const auto faults = std::strtoull(a.get("faults", "16").c_str(), nullptr, 10);
  const auto epochs = std::strtoull(a.get("epochs", "3").c_str(), nullptr, 10);
  ObsFlags ob(a);
  runtime::RunOptions ro;
  ro.max_rounds = 1000000;
  ob.apply(ro);
  runtime::Adversary adv(1);
  for (std::uint64_t e = 0; e <= epochs; ++e) {
    if (e > 0) {
      adv.corrupt_random(engine, faults, cfg.span());
      adv.clone_neighbor(engine, faults / 2 + 1);
    }
    const auto rep = selfstab::run_until_stable(engine, cfg, ro);
    std::printf("epoch %llu: %s after %zu rounds (palette<=%llu)\n",
                static_cast<unsigned long long>(e),
                rep.stabilized ? "stable" : "NOT STABLE", rep.rounds_to_stable,
                static_cast<unsigned long long>(cfg.final_palette()));
    ob.report(rep);
    if (!rep.stabilized) return 1;
  }
  return 0;
}

int cmd_gen(const Args& a) {
  const auto g = make_graph(a.get("graph"));
  if (!a.has("out")) usage("gen needs --out");
  std::ofstream out(a.get("out"));
  graph::write_edge_list(out, g);
  std::printf("wrote n=%zu m=%zu to %s\n", g.n(), g.m(), a.get("out").c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args a = parse(argc, argv);
    if (a.command == "color") return cmd_color(a);
    if (a.command == "edges") return cmd_edges(a);
    if (a.command == "mis") return cmd_mis(a);
    if (a.command == "match") return cmd_match(a);
    if (a.command == "selfstab") return cmd_selfstab(a);
    if (a.command == "gen") return cmd_gen(a);
    usage("unknown command");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
