// agccli — command-line front end for the agcolor library.
//
//   agccli color    --graph <spec> [--algo <name>]  (names: coloring registry,
//                   `agccli campaign ls --runners`; default ag)
//                   [--model setlocal|local|congest] [--eps <x>] [--seed <s>]
//                   [--threads <n>] [--executor bsp|async]
//                   [--csv <file>] [--dot <file>]
//   agccli edges    --graph <spec> [--bit-round] [--no-exact] [--csv <file>]
//   agccli mis      --graph <spec>
//   agccli match    --graph <spec>
//   agccli selfstab --graph <spec> [--exact] [--faults <k>] [--epochs <e>]
//
// Fault injection (selfstab; see docs/FAULTS.md):
//   --chan-drop P / --chan-corrupt P / --chan-dup P / --chan-delay P
//                  per-edge-per-round wire-fault probabilities in [0,1]
//   --chan-seed S / --chan-last R   channel adversary seed / last active round
//   --fault-plan FILE   record every injected fault to FILE (JSONL), or, with
//   --replay            replay FILE instead of injecting fresh faults
//   Any of these switches the command to the stabilization harness, which
//   prints recovery time and adjustment radius instead of epoch lines.
//
// --threads N (or AGC_THREADS) runs the round engine on the exec subsystem's
// N-thread backend (N=0: all hardware threads); results are bit-identical to
// the sequential engine by the shard-determinism contract (docs/EXEC.md).
// --executor bsp|async picks the barriered backend (default) or the
// dependency-driven one; per-step driving stays bit-identical, while the
// coloring pipeline's windowed mode may trim or add trailing rounds per
// stage (same final colors; docs/EXEC.md).
//
// Observability (every command above):
//   --jsonl FILE   stream structured run events (JSONL) to FILE; analyze with
//                  `agc-trace dump|summary FILE` (docs/OBSERVABILITY.md)
//   --phases       collect per-phase timings and print the telemetry summary
//   agccli gen      --graph <spec> --out <file>
//   agccli svc      --graph <spec> [--ops <n>] [--seed <s>] [--clients <c>]
//                   [--batch <b>] [--dmax <d>] [--max-vertices <m>] [--exact]
//                   [--threads <n>] [--executor bsp|async] [--json] [--timing]
//
// `svc` runs the coloring service in-process against a seeded YCSB-style
// client workload (mutations + queries batched into epochs, incremental
// recoloring per epoch; docs/SERVICE.md) and prints the latency/adjustment
// aggregate.  --json emits ServiceStats JSON (deterministic unless --timing);
// the socket daemon for real clients is `agcd`.
//
//   agccli campaign run --file <grid.campaign> [--threads <n>]
//                   [--job-threads <m>] [--budget-mb <mb>] [--retries <k>]
//                   [--out <report.jsonl>] [--timing]
//   agccli campaign ls  --file <grid.campaign> | --runners
//
// Campaigns execute a declarative grid of jobs concurrently with a shared
// graph cache and deterministic job-id-order aggregation (docs/SCHED.md);
// author grids with `agc-campaign grid`.  Without --timing the report JSONL
// is bit-identical for any --threads value.
//
// Graph specs (graph::GraphSpec — positional or named args, canonical form
// is named, e.g. gnp:n=1000,p=0.01,seed=7):
//   file:PATH                DIMACS-flavored edge list (see graph/io.hpp)
//   gnp:N,P,SEED             Erdos-Renyi
//   regular:N,D,SEED         random D-regular
//   grid:R,C | cycle:N | path:N | complete:N | star:N | tree:N
//   geometric:N,RADIUS,SEED  random geometric (unit square)
//   ba:N,K,SEED              Barabasi-Albert preferential attachment
//   bipartite:A,B | hypercube:D | multipartite:K,PART
//   caterpillar:SPINE,LEGS | blowup:LEN,BLOW | bounded:N,DMAX,M,SEED
//   powerlaw:N,GAMMA,AVGDEG,SEED  Chung-Lu power-law (streamed CSR build)

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>

#include "agc/coloring/registry.hpp"
#include "agc/obs/event_sink.hpp"
#include "agc/coloring/symmetry.hpp"
#include "agc/edge/edge_coloring.hpp"
#include "agc/exec/async_executor.hpp"
#include "agc/exec/executor.hpp"
#include "agc/faultlab/channel.hpp"
#include "agc/faultlab/harness.hpp"
#include "agc/faultlab/plan.hpp"
#include "agc/graph/generators.hpp"
#include "agc/graph/io.hpp"
#include "agc/graph/spec.hpp"
#include "agc/runtime/faults.hpp"
#include "agc/runtime/trace.hpp"
#include "agc/sched/campaign.hpp"
#include "agc/selfstab/ss_coloring.hpp"
#include "agc/svc/service.hpp"
#include "agc/svc/workload.hpp"

namespace {

using namespace agc;

[[noreturn]] void usage(const char* msg = nullptr) {
  if (msg != nullptr) std::fprintf(stderr, "error: %s\n\n", msg);
  std::fprintf(stderr,
               "usage: agccli <color|edges|mis|match|selfstab|gen> --graph <spec> "
               "[--threads <n>] [options]\nsee the header of tools/agccli.cpp "
               "for details\n");
  std::exit(2);
}

/// Resolve --graph through the one spec helper (docs/SCALE.md).  Every
/// agccli command reads through GraphView, so the frozen CSR backend is
/// always right here; commands that churn topology (selfstab faults) do so
/// through the engine, whose copy-on-churn materializes a mutable copy.
graph::ResolvedGraph resolve_graph(const std::string& spec) {
  try {
    return graph::GraphSpec::parse(spec).resolve(graph::Mutability::ReadOnly);
  } catch (const std::invalid_argument& e) {
    usage(e.what());
  }
}

struct Args {
  std::string command;
  std::map<std::string, std::string> kv;
  bool has(const std::string& k) const { return kv.count(k) != 0; }
  std::string get(const std::string& k, const std::string& dflt = "") const {
    const auto it = kv.find(k);
    return it == kv.end() ? dflt : it->second;
  }

  /// Execution backend for --threads/AGC_THREADS (null-free: sequential when
  /// 1) and --executor bsp|async (barriered vs dependency-driven; see
  /// docs/EXEC.md for when async is and is not bit-identical to bsp).
  std::shared_ptr<runtime::RoundExecutor> executor() const {
    const auto it = kv.find("threads");
    const std::size_t threads =
        it == kv.end() ? exec::default_threads()
                       : std::strtoull(it->second.c_str(), nullptr, 10);
    const std::string backend = get("executor", "bsp");
    if (backend == "async") return exec::make_async_executor(threads);
    if (backend != "bsp") usage("unknown --executor (bsp|async)");
    return exec::make_executor(threads);
  }

  /// The backend name as recorded in structured output.
  std::string executor_name() const { return get("executor", "bsp"); }
};

/// --jsonl/--phases wiring: owns the trace stream + sink for one command and
/// applies them to any RunOptions-derived options struct.
struct ObsFlags {
  std::ofstream out;
  std::unique_ptr<obs::JsonlSink> sink;
  bool phases = false;

  explicit ObsFlags(const Args& a) : phases(a.has("phases")) {
    if (a.has("jsonl")) {
      out.open(a.get("jsonl"));
      if (!out) usage("cannot open --jsonl file");
      sink = std::make_unique<obs::JsonlSink>(out);
    }
  }

  void apply(runtime::RunOptions& opts) {
    if (sink) opts.sink = sink.get();
    opts.collect_phase_times = phases;
  }

  void report(const runtime::RunReport& rep) const {
    if (phases) rep.telemetry().write_summary(std::cout);
  }
};

Args parse(int argc, char** argv) {
  if (argc < 2) usage();
  Args a;
  a.command = argv[1];
  int i = 2;
  if (a.command == "campaign") {
    if (argc < 3 || argv[2][0] == '-') usage("campaign needs a subcommand (run|ls)");
    a.kv["sub"] = argv[2];
    i = 3;
  }
  for (; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) usage("options start with --");
    key = key.substr(2);
    // Flags without values.
    if (key == "bit-round" || key == "no-exact" || key == "exact" ||
        key == "phases" || key == "replay" || key == "timing" ||
        key == "runners" || key == "json") {
      a.kv[key] = "1";
      continue;
    }
    if (i + 1 >= argc) usage(("missing value for --" + key).c_str());
    a.kv[key] = argv[++i];
  }
  if (!a.has("graph") && a.command != "help" && a.command != "campaign") {
    usage("--graph is required");
  }
  return a;
}

int cmd_color(const Args& a) {
  const auto rg = resolve_graph(a.get("graph"));
  const graph::GraphView g = rg.view();
  ObsFlags ob(a);
  coloring::PipelineOptions opts;
  opts.iter.executor = a.executor();
  ob.apply(opts.iter);
  runtime::TraceRecorder trace(g, nullptr);
  if (a.has("trace")) opts.iter.on_round = trace.observer();
  const std::string model = a.get("model", "setlocal");
  if (model == "local") {
    opts.iter.model = runtime::Model::LOCAL;
  } else if (model == "congest") {
    opts.iter.model = runtime::Model::CONGEST;
  } else if (model != "setlocal") {
    usage("unknown --model");
  }

  opts.eps = std::strtod(a.get("eps", "0.5").c_str(), nullptr);
  opts.run().seed = std::strtoull(a.get("seed", "1").c_str(), nullptr, 10);

  const std::string algo = a.get("algo", "ag");
  const coloring::AlgoSpec* spec = coloring::find_algo(algo);
  if (spec == nullptr) {
    std::fprintf(stderr,
                 "error: unknown --algo '%s'\navailable algorithms: %s\n",
                 algo.c_str(), coloring::algo_list().c_str());
    std::exit(2);
  }
  const coloring::PipelineReport rep = spec->run(g, opts);
  const bool ok = rep.converged && rep.proper;

  std::printf("n=%zu m=%zu Delta=%zu algo=%s model=%s\n", g.n(), g.m(),
              g.max_degree(), algo.c_str(), model.c_str());
  if (spec->requires_seed) {
    std::printf("rounds=%zu palette=%zu proper=%s seed=%llu\n", rep.rounds,
                rep.palette, ok ? "yes" : "NO",
                static_cast<unsigned long long>(opts.run().seed));
  } else {
    std::printf("rounds=%zu palette=%zu proper=%s\n", rep.rounds, rep.palette,
                ok ? "yes" : "NO");
  }
  ob.report(rep);
  if (a.has("csv")) {
    std::ofstream out(a.get("csv"));
    graph::write_coloring_csv(out, rep.colors);
  }
  if (a.has("dot")) {
    std::ofstream out(a.get("dot"));
    graph::write_dot(out, g, rep.colors);
  }
  if (a.has("trace")) {
    std::ofstream out(a.get("trace"));
    trace.write_csv(out);
  }
  return ok ? 0 : 1;
}

int cmd_edges(const Args& a) {
  const auto rg = resolve_graph(a.get("graph"));
  const graph::GraphView g = rg.view();
  ObsFlags ob(a);
  edge::EdgeColoringOptions opts;
  opts.executor = a.executor();
  ob.apply(opts);
  opts.bit_round = a.has("bit-round");
  opts.exact = !a.has("no-exact");
  const auto res = edge::color_edges_distributed(g, opts);
  std::printf("n=%zu m=%zu Delta=%zu model=%s\n", g.n(), g.m(), g.max_degree(),
              opts.bit_round ? "BIT" : "CONGEST");
  std::printf("rounds=%zu palette=%zu (2D-1=%zu) proper=%s bits/edge=%.1f\n",
              res.rounds, res.palette,
              g.max_degree() > 0 ? 2 * g.max_degree() - 1 : 1,
              res.proper ? "yes" : "NO", res.avg_bits_per_edge);
  if (a.has("csv")) {
    std::ofstream out(a.get("csv"));
    graph::write_coloring_csv(out, res.colors);
  }
  ob.report(res);
  return res.proper ? 0 : 1;
}

int cmd_mis(const Args& a) {
  const auto rg = resolve_graph(a.get("graph"));
  const graph::GraphView g = rg.view();
  ObsFlags ob(a);
  coloring::PipelineOptions opts;
  opts.iter.executor = a.executor();
  ob.apply(opts.iter);
  const auto rep = coloring::maximal_independent_set(g, opts);
  std::size_t size = 0;
  for (bool b : rep.in_mis) size += b;
  std::printf("n=%zu m=%zu Delta=%zu\n", g.n(), g.m(), g.max_degree());
  std::printf("rounds=%zu (coloring %zu + wave %zu) |MIS|=%zu valid=%s\n",
              rep.rounds_coloring + rep.rounds_mis, rep.rounds_coloring,
              rep.rounds_mis, size, rep.valid ? "yes" : "NO");
  ob.report(rep);
  return rep.valid ? 0 : 1;
}

int cmd_match(const Args& a) {
  const auto rg = resolve_graph(a.get("graph"));
  const graph::GraphView g = rg.view();
  ObsFlags ob(a);
  coloring::PipelineOptions opts;
  opts.iter.executor = a.executor();
  ob.apply(opts.iter);
  const auto rep = coloring::maximal_matching(g, opts);
  std::printf("n=%zu m=%zu Delta=%zu\n", g.n(), g.m(), g.max_degree());
  std::printf("line-graph rounds=%zu |M|=%zu valid=%s\n", rep.rounds,
              rep.matching.size(), rep.valid ? "yes" : "NO");
  ob.report(rep);
  return rep.valid ? 0 : 1;
}

/// Per-million probability from a [0,1] float flag.
std::uint32_t ppm_flag(const Args& a, const std::string& key) {
  if (!a.has(key)) return 0;
  const double p = std::strtod(a.get(key).c_str(), nullptr);
  if (p < 0.0 || p > 1.0) usage("probabilities must be in [0,1]");
  return static_cast<std::uint32_t>(p * 1'000'000.0);
}

/// The faultlab path of `agccli selfstab`: run the stabilization harness
/// under a channel adversary and/or a recorded plan, print recovery time and
/// adjustment radius.  Active when any --chan-* / --fault-plan / --replay
/// flag is given.
int selfstab_faultlab(const Args& a, const selfstab::SsConfig& cfg,
                      runtime::Engine& engine) {
  ObsFlags ob(a);
  runtime::RunOptions ro;
  ro.max_rounds = 1000000;
  ob.apply(ro);
  faultlab::StabilizationSpec spec;
  spec.check = faultlab::coloring_check(cfg);
  spec.outputs = faultlab::coloring_outputs();
  spec.recovery_budget =
      std::strtoull(a.get("budget", "100000").c_str(), nullptr, 10);

  // Hook storage must outlive run_stabilization; only one arm is used.
  std::unique_ptr<faultlab::PlanAdversary> plan_adv;
  std::unique_ptr<faultlab::ChannelPlayback> playback;
  std::unique_ptr<runtime::PeriodicAdversary> periodic;
  std::unique_ptr<faultlab::ChannelAdversary> channel;
  faultlab::FaultPlanRecorder recorder;
  faultlab::FaultPlan plan;

  if (a.has("replay")) {
    if (!a.has("fault-plan")) usage("--replay needs --fault-plan FILE");
    plan = faultlab::FaultPlan::load(a.get("fault-plan"));
    plan_adv = std::make_unique<faultlab::PlanAdversary>(plan);
    playback = std::make_unique<faultlab::ChannelPlayback>(plan.events);
    ro.adversary = plan_adv.get();
    ro.channel = playback.get();
    std::printf("replaying %zu recorded fault events from %s\n", plan.size(),
                a.get("fault-plan").c_str());
  } else {
    const bool record = a.has("fault-plan");
    if (record) engine.set_fault_recorder(&recorder);
    faultlab::ChannelFaultConfig ccfg;
    ccfg.seed = std::strtoull(a.get("chan-seed", "1").c_str(), nullptr, 10);
    ccfg.drop_per_million = ppm_flag(a, "chan-drop");
    ccfg.corrupt_per_million = ppm_flag(a, "chan-corrupt");
    ccfg.duplicate_per_million = ppm_flag(a, "chan-dup");
    ccfg.delay_per_million = ppm_flag(a, "chan-delay");
    ccfg.last_round = std::strtoull(a.get("chan-last", "64").c_str(), nullptr, 10);
    if (ccfg.total_per_million() > 1'000'000) {
      usage("channel fault probabilities sum above 1");
    }
    if (ccfg.total_per_million() > 0) {
      channel = std::make_unique<faultlab::ChannelAdversary>(
          ccfg, record ? &recorder : nullptr);
      ro.channel = channel.get();
    }
    const auto faults = std::strtoull(a.get("faults", "16").c_str(), nullptr, 10);
    if (faults > 0) {
      periodic = std::make_unique<runtime::PeriodicAdversary>(
          std::strtoull(a.get("seed", "1").c_str(), nullptr, 10),
          runtime::PeriodicAdversary::Schedule{
              .period = 4,
              .last_round = 16,
              .corrupt = static_cast<std::size_t>(faults),
              .clones = static_cast<std::size_t>(faults / 2 + 1)});
      ro.adversary = periodic.get();
    }
  }

  const auto rep = faultlab::run_stabilization(engine, ro, spec);
  engine.set_fault_recorder(nullptr);
  if (a.has("fault-plan") && !a.has("replay")) {
    plan = recorder.take();
    plan.save(a.get("fault-plan"));
    std::printf("recorded %zu fault events to %s\n", plan.size(),
                a.get("fault-plan").c_str());
  }

  std::printf("faults=%llu last_fault_round=%llu\n",
              static_cast<unsigned long long>(rep.fault_events),
              static_cast<unsigned long long>(rep.last_fault_round));
  if (rep.recovered) {
    std::printf("recovered in %zu rounds (first legal round %llu); "
                "adjustment radius: %zu vertex(es) changed output\n",
                rep.recovery_rounds,
                static_cast<unsigned long long>(rep.first_legal_round),
                rep.adjusted.size());
  } else {
    std::printf("NOT RECOVERED: %s at round %llu (u=%u v=%u value=%llu)\n",
                faultlab::to_string(rep.violation.kind),
                static_cast<unsigned long long>(rep.violation.round),
                rep.violation.u, rep.violation.v,
                static_cast<unsigned long long>(rep.violation.value));
  }
  ob.report(rep);
  return rep.recovered ? 0 : 1;
}

int cmd_selfstab(const Args& a) {
  const auto rg = resolve_graph(a.get("graph"));
  const graph::GraphView g = rg.view();
  const std::size_t delta = std::max<std::size_t>(g.max_degree(), 1);
  const auto mode = a.has("exact") ? selfstab::PaletteMode::ExactDeltaPlusOne
                                   : selfstab::PaletteMode::ODelta;
  selfstab::SsConfig cfg(g.n(), delta, mode);
  runtime::EngineOptions eo;
  eo.delta_bound = delta;
  runtime::Engine engine(g, runtime::Transport(runtime::Model::LOCAL), eo);
  engine.set_executor(a.executor());
  engine.install(selfstab::ss_coloring_factory(cfg));

  if (a.has("chan-drop") || a.has("chan-corrupt") || a.has("chan-dup") ||
      a.has("chan-delay") || a.has("fault-plan") || a.has("replay")) {
    return selfstab_faultlab(a, cfg, engine);
  }

  const auto faults = std::strtoull(a.get("faults", "16").c_str(), nullptr, 10);
  const auto epochs = std::strtoull(a.get("epochs", "3").c_str(), nullptr, 10);
  ObsFlags ob(a);
  runtime::RunOptions ro;
  ro.max_rounds = 1000000;
  ob.apply(ro);
  runtime::Adversary adv(1);
  for (std::uint64_t e = 0; e <= epochs; ++e) {
    if (e > 0) {
      adv.corrupt_random(engine, faults, cfg.span());
      adv.clone_neighbor(engine, faults / 2 + 1);
    }
    const auto rep = selfstab::run_until_stable(engine, cfg, ro);
    std::printf("epoch %llu: %s after %zu rounds (palette<=%llu)\n",
                static_cast<unsigned long long>(e),
                rep.stabilized ? "stable" : "NOT STABLE", rep.rounds_to_stable,
                static_cast<unsigned long long>(cfg.final_palette()));
    ob.report(rep);
    if (!rep.stabilized) return 1;
  }
  return 0;
}

/// `agccli campaign run|ls`: execute or inspect a declarative job grid
/// (docs/SCHED.md).  The report JSONL goes to --out (or stdout) in job-id
/// order; without --timing it is bit-identical for any --threads value.
int cmd_campaign(const Args& a) {
  const std::string sub = a.get("sub");
  if (sub == "ls" && a.has("runners")) {
    for (const auto& r : sched::runners()) {
      std::printf("%-16s %s%s\n", r.name, r.summary,
                  r.faults ? "  [faults]" : "");
    }
    return 0;
  }
  if (!a.has("file")) usage("campaign needs --file FILE (or ls --runners)");
  const auto campaign = sched::Campaign::parse_file(a.get("file"));
  if (sub == "ls") {
    std::printf("# %zu jobs\n", campaign.size());
    std::fputs(campaign.format().c_str(), stdout);
    return 0;
  }
  if (sub != "run") usage("campaign subcommand must be run or ls");

  ObsFlags ob(a);
  sched::ScheduleOptions so;
  std::size_t threads = a.has("threads")
                            ? std::strtoull(a.get("threads").c_str(), nullptr, 10)
                            : exec::default_threads();
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  so.threads = threads;
  so.threads_per_job =
      std::strtoull(a.get("job-threads", "1").c_str(), nullptr, 10);
  so.memory_budget_bytes =
      std::strtoull(a.get("budget-mb", "0").c_str(), nullptr, 10) * 1'000'000;
  so.max_attempts =
      1 + std::strtoull(a.get("retries", "0").c_str(), nullptr, 10);
  so.include_timing = a.has("timing");
  so.sink = ob.sink.get();

  const auto rep = sched::run_campaign(campaign, so);
  const std::string jsonl = rep.to_jsonl(so.include_timing);
  if (a.has("out")) {
    std::ofstream out(a.get("out"));
    if (!out) usage("cannot open --out file");
    out << jsonl;
    std::printf("jobs=%zu ok=%zu cache_hits=%zu cache_misses=%zu retries=%zu "
                "wall_s=%.3f -> %s\n",
                rep.jobs.size(), rep.ok_count, rep.cache_hits, rep.cache_misses,
                rep.retries, rep.wall_ns * 1e-9, a.get("out").c_str());
  } else {
    std::fputs(jsonl.c_str(), stdout);
  }
  return rep.all_ok() ? 0 : 1;
}

/// `agccli svc`: the in-process service demo — build the service, drive it
/// with a seeded closed-loop workload, print the aggregate.  Exit 0 only if
/// every op was accepted (eager-mirror contract) and every epoch recolored
/// to a legal configuration.
int cmd_svc(const Args& a) {
  ObsFlags ob(a);
  svc::ServiceConfig cfg;
  try {
    cfg.spec = graph::GraphSpec::parse(a.get("graph"));
  } catch (const std::invalid_argument& e) {
    usage(e.what());
  }
  cfg.delta_bound = std::strtoull(a.get("dmax", "0").c_str(), nullptr, 10);
  cfg.max_vertices =
      std::strtoull(a.get("max-vertices", "0").c_str(), nullptr, 10);
  cfg.mode = a.has("exact") ? selfstab::PaletteMode::ExactDeltaPlusOne
                            : selfstab::PaletteMode::ODelta;
  cfg.epoch_batch = std::strtoull(a.get("batch", "64").c_str(), nullptr, 10);
  cfg.run.executor = a.executor();
  ob.apply(cfg.run);
  svc::Service service(cfg);

  svc::WorkloadSpec ws;
  ws.seed = std::strtoull(a.get("seed", "1").c_str(), nullptr, 10);
  ws.ops = std::strtoull(a.get("ops", "20000").c_str(), nullptr, 10);
  ws.clients = std::strtoull(a.get("clients", "64").c_str(), nullptr, 10);
  const auto rep = svc::run_workload(service, ws);
  const auto& st = service.stats();

  std::printf("graph=%s dmax=%zu max_vertices=%llu batch=%zu\n",
              cfg.spec.to_string().c_str(), service.config().delta_bound,
              static_cast<unsigned long long>(service.config().max_vertices),
              service.config().epoch_batch);
  std::printf("ops=%llu mutations=%llu queries=%llu rejected=%llu "
              "epochs=%llu\n",
              static_cast<unsigned long long>(st.ops),
              static_cast<unsigned long long>(st.mutations),
              static_cast<unsigned long long>(st.queries),
              static_cast<unsigned long long>(st.rejected),
              static_cast<unsigned long long>(st.epochs));
  std::printf("latency_rounds p50=%llu p99=%llu max=%llu  adjusted "
              "mean=%.2f max=%llu  violations=%llu\n",
              static_cast<unsigned long long>(st.latency_rounds.quantile(0.5)),
              static_cast<unsigned long long>(st.latency_rounds.quantile(0.99)),
              static_cast<unsigned long long>(st.latency_rounds.max()),
              st.mean_adjusted(),
              static_cast<unsigned long long>(st.max_adjusted),
              static_cast<unsigned long long>(st.legality_violations));
  if (a.has("json")) {
    // Tag the aggregate with the executor backend so differential sweeps can
    // tell runs apart; the stats JSON itself stays executor-agnostic.
    std::string js = st.to_json(a.has("timing"));
    js.insert(1, "\"executor\":\"" + a.executor_name() + "\",");
    std::puts(js.c_str());
  }
  ob.report(service.report());
  return rep.rejected == 0 && st.legality_violations == 0 ? 0 : 1;
}

int cmd_gen(const Args& a) {
  const auto rg = resolve_graph(a.get("graph"));
  const graph::GraphView g = rg.view();
  if (!a.has("out")) usage("gen needs --out");
  std::ofstream out(a.get("out"));
  graph::write_edge_list(out, g);
  std::printf("wrote n=%zu m=%zu to %s\n", g.n(), g.m(), a.get("out").c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args a = parse(argc, argv);
    if (a.command == "color") return cmd_color(a);
    if (a.command == "edges") return cmd_edges(a);
    if (a.command == "mis") return cmd_mis(a);
    if (a.command == "match") return cmd_match(a);
    if (a.command == "selfstab") return cmd_selfstab(a);
    if (a.command == "campaign") return cmd_campaign(a);
    if (a.command == "svc") return cmd_svc(a);
    if (a.command == "gen") return cmd_gen(a);
    usage("unknown command");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
