#include "agc/scale/flat.hpp"

#include <algorithm>
#include <functional>
#include <memory>
#include <thread>
#include <utility>

#include "agc/coloring/ag.hpp"
#include "agc/coloring/linial.hpp"
#include "agc/coloring/palette.hpp"
#include "agc/coloring/reduction.hpp"
#include "agc/exec/thread_pool.hpp"
#include "agc/scale/packed.hpp"

namespace agc::scale {

namespace {

using graph::Color;
using graph::Vertex;

/// Degree-weighted contiguous shard bounds, with every cut rounded up to a
/// multiple of 64 vertices — 64 entries span whole words at every packed
/// width, so shards never write the same word (PackedColors contract).
/// Same weighting as ParallelExecutor::refresh_bounds; any contiguous
/// partition is result-identical, the weighting only balances wall clock.
std::vector<Vertex> shard_bounds(graph::GraphView g, std::size_t shards) {
  const std::size_t n = g.n();
  std::vector<Vertex> bounds(shards + 1, static_cast<Vertex>(n));
  bounds[0] = 0;
  const std::uint64_t total = 2 * static_cast<std::uint64_t>(g.m()) + n;
  std::uint64_t acc = 0;
  std::size_t s = 1;
  for (Vertex v = 0; v < n && s < shards; ++v) {
    acc += g.degree(v) + 1;
    while (s < shards && acc * shards >= total * s) {
      const std::uint64_t cut = (std::uint64_t{v} + 1 + 63) & ~std::uint64_t{63};
      bounds[s++] = static_cast<Vertex>(std::min<std::uint64_t>(cut, n));
    }
  }
  for (std::size_t i = 1; i <= shards; ++i) {
    bounds[i] = std::max(bounds[i], bounds[i - 1]);
  }
  return bounds;
}

}  // namespace

FlatResult run_flat(graph::GraphView g, std::vector<Color> initial,
                    const runtime::IterativeRule& rule,
                    std::uint64_t palette_bound, std::size_t max_rounds,
                    const FlatOptions& opts) {
  const std::size_t n = g.n();
  FlatResult res;

  std::size_t threads = opts.threads;
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  const std::size_t shards = std::min(threads, std::max<std::size_t>(n, 1));

  const std::uint32_t width =
      PackedColors::width_for(palette_bound == 0 ? 0 : palette_bound - 1);
  PackedColors cur(n, width);
  PackedColors next(n, width);
  for (std::size_t v = 0; v < n; ++v) cur.set(v, initial[v]);
  res.state_bytes = cur.memory_bytes() + next.memory_bytes();

  const auto bounds = shard_bounds(g, shards);
  std::vector<std::vector<std::uint64_t>> scratch(shards);
  for (auto& s : scratch) s.reserve(g.max_degree());
  // One flag slot per shard; written once per shard per round, read at the
  // barrier — the pool's run() is the synchronization point.
  std::vector<std::uint8_t> shard_final(shards, 0);

  const std::function<void(std::size_t)> sweep = [&](std::size_t s) {
    auto& nbrs = scratch[s];
    bool fin = true;
    for (Vertex v = bounds[s]; v < bounds[s + 1]; ++v) {
      nbrs.clear();
      for (const Vertex u : g.neighbors(v)) nbrs.push_back(cur.get(u));
      // The engine delivers neighbor colors as a sorted, sender-anonymous
      // multiset (InboxRef::multiset); reproduce it exactly.
      std::sort(nbrs.begin(), nbrs.end());
      const Color c = rule.step(cur.get(v), nbrs);
      next.set(v, c);
      fin = fin && rule.is_final(c);
    }
    shard_final[s] = fin ? 1 : 0;
  };

  auto all_final_now = [&] {
    for (std::size_t v = 0; v < n; ++v) {
      if (!rule.is_final(cur.get(v))) return false;
    }
    return true;
  };

  std::unique_ptr<exec::ThreadPool> pool;
  if (shards > 1) pool = std::make_unique<exec::ThreadPool>(shards);

  bool done = all_final_now();
  while (!done && res.rounds < max_rounds) {
    if (pool) {
      pool->run(shards, sweep);
    } else {
      sweep(0);
    }
    std::swap(cur, next);
    ++res.rounds;
    done = std::all_of(shard_final.begin(), shard_final.end(),
                       [](std::uint8_t f) { return f != 0; });
  }
  res.converged = done;

  res.colors.resize(n);
  for (std::size_t v = 0; v < n; ++v) res.colors[v] = cur.get(v);
  return res;
}

FlatResult color_delta_plus_one_flat(graph::GraphView g,
                                     const FlatOptions& opts) {
  const std::size_t n = g.n();
  const std::size_t delta = g.max_degree();
  FlatResult total;
  total.converged = true;

  auto fold = [&total](const FlatResult& stage) {
    total.rounds += stage.rounds;
    total.converged = total.converged && stage.converged;
    total.state_bytes = std::max(total.state_bytes, stage.state_bytes);
  };

  // Stage 1: Linial — identical parameterization to the engine pipeline's
  // run_linial (id_space_factor 1) and coloring::linial_color's lift + cap.
  std::vector<Color> colors = coloring::identity_coloring(n);
  const std::uint64_t id_space = std::max<std::uint64_t>(n, 1);
  const coloring::LinialSchedule sched(id_space, delta);
  if (sched.stages() > 0) {
    const std::uint64_t top = sched.offset(sched.stages());
    for (Color& c : colors) c += top;
    const coloring::LinialRule rule(sched);
    FlatResult lin = run_flat(g, std::move(colors), rule, sched.total_span(),
                              sched.stages() + 2, opts);
    colors = std::move(lin.colors);
    total.rounds_linial = lin.rounds;
    fold(lin);
  }

  // Stage 2: AG — modulus sized to the Linial palette, <= q + 2 rounds.
  {
    const Color k = graph::max_color(colors) + 1;
    const coloring::AgRule rule(coloring::ag_modulus(delta, k));
    const std::uint64_t span = std::max<std::uint64_t>(rule.q() * rule.q(), k);
    FlatResult ag =
        run_flat(g, std::move(colors), rule, span, rule.q() + 2, opts);
    colors = std::move(ag.colors);
    total.rounds_core = ag.rounds;
    fold(ag);
  }

  // Stage 3: greedy finish down to Delta + 1 colors.
  {
    const Color k = graph::max_color(colors) + 1;
    const std::uint64_t target = delta + 1;
    const coloring::GreedyReduceRule rule(target,
                                          std::max<std::uint64_t>(k, target));
    const std::size_t cap =
        k > target ? static_cast<std::size_t>(k - target) + 1 : 1;
    FlatResult red = run_flat(g, std::move(colors), rule,
                              std::max<std::uint64_t>(k, target), cap, opts);
    colors = std::move(red.colors);
    total.rounds_finish = red.rounds;
    fold(red);
  }

  total.colors = std::move(colors);
  total.palette = graph::palette_size(total.colors);
  total.proper = graph::is_proper_coloring(g, total.colors);
  return total;
}

}  // namespace agc::scale
