#include "agc/arb/arbag.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "agc/math/primes.hpp"

namespace agc::arb {

Color ArbAgRule::step(Color own, std::span<const Color> neighbors) const {
  const std::uint64_t qq = q_ * q_;
  const std::uint64_t psi = own / qq;
  const std::uint64_t a = (own % qq) / q_;
  const std::uint64_t b = own % q_;
  if (a == 0) return own;  // frozen (<0,b> is the final form)
  // Tolerant finalize rule: freeze unless MORE than p neighbors of a
  // different seed color share the second coordinate.
  std::size_t conflicts = 0;
  for (Color nc : neighbors) {
    if (nc / qq != psi && nc % q_ == b) ++conflicts;
  }
  if (conflicts <= p_) return pack(psi, 0, b, q_);
  return pack(psi, a, (b + a) % q_, q_);
}

ArbdefectiveResult arbdefective_color(graph::GraphView g, std::size_t p,
                                      std::uint64_t id_space,
                                      const runtime::RunOptions& opts) {
  ArbdefectiveResult result;
  const std::size_t n = g.n();
  const std::size_t delta = std::max<std::size_t>(g.max_degree(), 1);
  p = std::max<std::size_t>(p, 1);

  // Seed: p-defective O((Delta/p)^2)-coloring psi.
  const DefectiveResult seed = defective_color(g, p, id_space);
  result.seed_rounds = seed.rounds;
  result.seed_defect = seed.max_defect;

  // q = Theta(Delta/p): prime exceeding both the round window 2*ceil(D/p)+1
  // and sqrt(seed palette) so every psi-color splits into a pair <a,b>.
  const std::uint64_t window = 2 * ((delta + p - 1) / p) + 1;
  result.window = window;
  const auto sqrt_pal = static_cast<std::uint64_t>(
      std::ceil(std::sqrt(static_cast<double>(seed.palette_bound))));
  const std::uint64_t q =
      math::next_prime(std::max<std::uint64_t>(window + 1, sqrt_pal));
  result.num_classes = q;

  // Pack the seed into ArbAG states; vertices born with a == 0 are frozen
  // from the start.  (Two different psi-colors with a == 0 differ in b, so a
  // born-frozen vertex's monochromatic out-degree is bounded by the seed
  // defect alone.)
  const ArbAgRule rule(q, p);
  std::vector<Color> init(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    const std::uint64_t a = seed.colors[v] / q;
    const std::uint64_t b = seed.colors[v] % q;
    init[v] = ArbAgRule::pack(seed.colors[v], a, b, q);
  }

  // Run on the engine (SET-LOCAL: the rule reads only the color multiset),
  // recording each vertex's freeze round for the Lemma 6.2 orientation.
  result.finalize_round.assign(n, 0);
  runtime::IterativeOptions io(opts);
  io.check_proper_each_round = false;  // ArbAG maintains arbdefective colorings
  io.max_rounds = window;              // the Lemma 6.1 bound, not a user cap
  io.on_round = [&](std::size_t round, std::span<const Color> colors) {
    if (round == 0) return;
    for (graph::Vertex v = 0; v < n; ++v) {
      if (result.finalize_round[v] == 0 && rule.is_final(colors[v])) {
        result.finalize_round[v] = round;
      }
    }
  };
  auto run = runtime::run_locally_iterative(g, std::move(init), rule, io);
  static_cast<runtime::RunReport&>(result) = run;
  result.rounds = run.rounds + result.seed_rounds;
  result.classes.resize(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    result.classes[v] = rule.class_of(run.colors[v]);
  }
  return result;
}

graph::Orientation arb_orientation(graph::GraphView g,
                                   const ArbdefectiveResult& arb) {
  graph::Orientation o;
  o.edges = graph::edge_list(g);
  o.toward_second.resize(o.edges.size());
  auto key = [&](graph::Vertex v) {
    return std::pair{arb.finalize_round[v], v};
  };
  for (std::size_t i = 0; i < o.edges.size(); ++i) {
    const auto& [u, v] = o.edges[i];
    // Tail = later freezer; head = earlier freezer (Lemma 6.2).
    o.toward_second[i] = key(v) < key(u);
  }
  return o;
}

std::size_t measured_arbdefect(graph::GraphView g,
                               const ArbdefectiveResult& arb) {
  const auto o = arb_orientation(g, arb);
  std::vector<std::size_t> out(g.n(), 0);
  for (std::size_t i = 0; i < o.edges.size(); ++i) {
    const auto& [u, v] = o.edges[i];
    if (arb.classes[u] != arb.classes[v]) continue;  // only class edges count
    ++out[o.toward_second[i] ? u : v];
  }
  return out.empty() ? 0 : *std::max_element(out.begin(), out.end());
}

}  // namespace agc::arb
