#include "agc/arb/eps_coloring.hpp"

#include <utility>

#include <algorithm>
#include <cassert>
#include <cmath>

#include "agc/graph/checks.hpp"

namespace agc::arb {

namespace {

constexpr Color kUncolored = ~Color{0};

/// Sequential class phases with proposal/commit conflict resolution.
ClasswiseResult classwise_color(graph::GraphView g, const ArbdefectiveResult& arb,
                                std::uint64_t palette_size) {
  ClasswiseResult result;
  // Carry the arb stage's RunReport core (rounds, metrics, phase timings,
  // fault events); convergence is decided by the class phases below.
  static_cast<runtime::RunReport&>(result) = arb;
  result.converged = false;
  result.arb_rounds = arb.rounds;
  const std::size_t n = g.n();

  auto key = [&](graph::Vertex v) {
    return std::pair{arb.finalize_round[v], v};
  };

  std::vector<Color> final_color(n, kUncolored);
  std::vector<Color> proposal(n, kUncolored);

  // Smallest palette color unused by finalized neighbors; exists because the
  // palette exceeds the degree bound.
  auto propose = [&](graph::Vertex v) {
    std::vector<bool> used(palette_size, false);
    for (graph::Vertex u : g.neighbors(v)) {
      if (final_color[u] != kUncolored) used[final_color[u]] = true;
    }
    for (Color c = 0; c < palette_size; ++c) {
      if (!used[c]) return c;
    }
    return kUncolored;  // palette exhausted: cannot happen if sized correctly
  };

  const std::size_t phase_cap = 4 * n + 64;
  for (Color cls = 0; cls < arb.num_classes; ++cls) {
    std::vector<graph::Vertex> active;
    for (graph::Vertex v = 0; v < n; ++v) {
      if (arb.classes[v] == cls) active.push_back(v);
    }
    std::size_t phase_rounds = 0;
    while (!active.empty() && phase_rounds < phase_cap) {
      ++phase_rounds;
      for (graph::Vertex v : active) proposal[v] = propose(v);
      // Commit unless an out-neighbor (earlier freezer) proposed the same.
      // Decisions are taken against the round-start snapshot and applied
      // together afterwards (all vertices act simultaneously).
      std::vector<graph::Vertex> committing;
      std::vector<graph::Vertex> still;
      for (graph::Vertex v : active) {
        bool deferred = proposal[v] == kUncolored;
        for (graph::Vertex u : g.neighbors(v)) {
          if (deferred) break;
          if (arb.classes[u] == cls && final_color[u] == kUncolored &&
              proposal[u] == proposal[v] && key(u) < key(v)) {
            deferred = true;
          }
        }
        (deferred ? still : committing).push_back(v);
      }
      for (graph::Vertex v : committing) final_color[v] = proposal[v];
      active = std::move(still);
    }
    result.rounds += phase_rounds;
    if (!active.empty()) {
      result.colors = std::move(final_color);
      return result;  // converged stays false
    }
  }

  result.colors = std::move(final_color);
  result.converged = arb.converged;
  result.palette = graph::palette_size(result.colors);
  result.proper = graph::is_proper_coloring(g, result.colors);
  return result;
}

}  // namespace

ClasswiseResult eps_delta_coloring(graph::GraphView g, double eps,
                                   std::uint64_t id_space,
                                   const runtime::RunOptions& opts) {
  const std::size_t delta = std::max<std::size_t>(g.max_degree(), 1);
  if (id_space == 0) id_space = std::max<std::uint64_t>(g.n(), 2);

  const auto p = static_cast<std::size_t>(
      std::max(1.0, std::ceil(std::sqrt(static_cast<double>(delta)))));
  const auto arb = arbdefective_color(g, p, id_space, opts);

  const auto palette = std::max<std::uint64_t>(
      static_cast<std::uint64_t>(std::floor((1.0 + eps) * delta)) + 1, delta + 1);
  return classwise_color(g, arb, palette);
}

ClasswiseResult sublinear_delta_plus_one(graph::GraphView g,
                                         std::uint64_t id_space,
                                         const runtime::RunOptions& opts) {
  const std::size_t delta = std::max<std::size_t>(g.max_degree(), 1);
  if (id_space == 0) id_space = std::max<std::uint64_t>(g.n(), 2);

  const double log_d = std::max(1.0, std::log2(static_cast<double>(delta)));
  const auto beta = static_cast<std::size_t>(
      std::max(1.0, std::ceil(std::sqrt(static_cast<double>(delta) / log_d))));
  const auto arb = arbdefective_color(g, beta, id_space, opts);
  return classwise_color(g, arb, delta + 1);
}

}  // namespace agc::arb
