#include "agc/arb/defective.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "agc/math/iterated_log.hpp"
#include "agc/math/polynomial.hpp"
#include "agc/math/primes.hpp"

namespace agc::arb {

namespace {

std::uint64_t sat_pow(std::uint64_t base, std::uint32_t exp) {
  std::uint64_t r = 1;
  for (std::uint32_t i = 0; i < exp; ++i) {
    if (base != 0 && r > std::numeric_limits<std::uint64_t>::max() / base) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    r *= base;
  }
  return r;
}

std::uint64_t ceil_root(std::uint64_t p, std::uint32_t k) {
  if (p <= 1) return 1;
  auto r = static_cast<std::uint64_t>(
      std::floor(std::pow(static_cast<double>(p), 1.0 / k)));
  while (sat_pow(r, k) < p) ++r;
  while (r > 1 && sat_pow(r - 1, k) >= p) --r;
  return r;
}

struct Stage {
  std::uint64_t q;
  std::uint32_t d;
};

/// One defective-Linial stage: every vertex picks the evaluation point with
/// the fewest collisions.  Colors are palette-local (no interval offsets —
/// the host loop runs stages in lockstep).
std::vector<Color> defective_stage(graph::GraphView g,
                                   const std::vector<Color>& colors,
                                   const Stage& st) {
  const math::GF field(st.q);
  std::vector<math::Polynomial> polys;
  polys.reserve(g.n());
  for (graph::Vertex v = 0; v < g.n(); ++v) {
    polys.push_back(
        math::Polynomial::from_digits(field, colors[v], static_cast<int>(st.d)));
  }
  std::vector<Color> next(g.n());
  // Evaluation tables are small (q entries); per vertex we scan its
  // neighbors' values at each point and take the argmin.
  std::vector<std::uint64_t> own_vals(st.q);
  std::vector<std::size_t> hits(st.q);
  for (graph::Vertex v = 0; v < g.n(); ++v) {
    for (std::uint64_t e = 0; e < st.q; ++e) own_vals[e] = polys[v].eval(e);
    std::fill(hits.begin(), hits.end(), 0);
    for (graph::Vertex u : g.neighbors(v)) {
      for (std::uint64_t e = 0; e < st.q; ++e) {
        if (polys[u].eval(e) == own_vals[e]) ++hits[e];
      }
    }
    const std::uint64_t best = static_cast<std::uint64_t>(
        std::min_element(hits.begin(), hits.end()) - hits.begin());
    next[v] = best * st.q + own_vals[best];
  }
  return next;
}

}  // namespace

namespace {

/// Best (q, d) for one stage: minimize the next palette q^2 subject to
/// coverage q^{d+1} >= palette and per-stage defect d*Delta/q <= budget.
/// Returns to_palette = max() if no stage shrinks the palette.
std::pair<Stage, std::uint64_t> best_stage(std::uint64_t palette, std::size_t delta,
                                           std::uint64_t budget) {
  std::uint64_t best_to = std::numeric_limits<std::uint64_t>::max();
  Stage best{};
  for (std::uint32_t d = 1; d <= 64; ++d) {
    const std::uint64_t slack =
        budget > 0 ? (static_cast<std::uint64_t>(d) * delta + budget - 1) / budget
                   : static_cast<std::uint64_t>(d) * delta;
    const std::uint64_t q = math::next_prime(
        std::max<std::uint64_t>(slack + 1, ceil_root(palette, d + 1)));
    if (q * q < best_to) {
      best_to = q * q;
      best = Stage{q, d};
    }
    if (sat_pow(slack + 1, d + 1) >= palette) break;
  }
  return {best, best_to};
}

}  // namespace

DefectiveResult defective_color(graph::GraphView g, std::size_t p,
                                std::uint64_t id_space) {
  DefectiveResult result;
  const std::size_t delta = std::max<std::size_t>(g.max_degree(), 1);
  id_space = std::max<std::uint64_t>(id_space, g.n());
  id_space = std::max<std::uint64_t>(id_space, 2);

  // Every stage may spend the full slack budget p (the coverage constraint
  // dominates on wide palettes, so only the last stage or two actually uses
  // it).  Per stage the NEW collisions are <= p by pigeonhole; already-merged
  // neighbors carry identical polynomials and usually split again, so the
  // accumulated defect is O(p) — p per slack-using stage — matching the
  // "O(p)-defective" requirement of Section 6 line 1 ([9] proves the sharper
  // constant with heavier machinery).  Tests measure the defect explicitly.
  std::vector<Color> colors(g.n());
  for (graph::Vertex v = 0; v < g.n(); ++v) colors[v] = v;

  const auto max_stages =
      static_cast<std::size_t>(math::log_star(id_space)) + 10;
  std::uint64_t palette = id_space;
  for (std::size_t t = 0; t < max_stages; ++t) {
    const auto [best, best_to] = best_stage(palette, delta, p);
    if (best_to >= palette) break;  // fixed point
    colors = defective_stage(g, colors, best);
    palette = best_to;
    ++result.rounds;
  }

  result.palette_bound = palette;
  result.colors = std::move(colors);
  const auto defects = graph::defect_vector(g, result.colors);
  result.max_defect =
      defects.empty() ? 0 : *std::max_element(defects.begin(), defects.end());
  result.converged = result.max_defect <= std::max<std::size_t>(p, 1);
  return result;
}

}  // namespace agc::arb
