#include "agc/obs/phase_timer.hpp"

namespace agc::obs {

std::string_view phase_name(Phase p) noexcept {
  switch (p) {
    case Phase::Send:
      return "send";
    case Phase::Deliver:
      return "deliver";
    case Phase::Receive:
      return "receive";
    case Phase::Barrier:
      return "barrier";
    case Phase::Check:
      return "check";
    case Phase::Observer:
      return "observer";
    case Phase::Fault:
      return "fault";
    case Phase::kCount:
      break;
  }
  return "unknown";
}

}  // namespace agc::obs
