#include "agc/obs/event_sink.hpp"

#include <cstdio>
#include <ostream>

namespace agc::obs {

std::string_view event_kind_name(EventKind k) noexcept {
  switch (k) {
    case EventKind::RunStart:
      return "run_start";
    case EventKind::RoundEnd:
      return "round_end";
    case EventKind::StageStart:
      return "stage_start";
    case EventKind::StageEnd:
      return "stage_end";
    case EventKind::Fault:
      return "fault";
    case EventKind::Check:
      return "check";
    case EventKind::RunEnd:
      return "run_end";
    case EventKind::kCount:
      break;
  }
  return "unknown";
}

RingSink::RingSink(std::size_t capacity) { buf_.resize(capacity ? capacity : 1); }

void RingSink::emit(const Event& event) {
  buf_[next_] = event;
  next_ = (next_ + 1) % buf_.size();
  ++seen_;
}

std::vector<Event> RingSink::snapshot() const {
  std::vector<Event> out;
  const std::size_t stored = seen_ < buf_.size() ? seen_ : buf_.size();
  out.reserve(stored);
  // Oldest retained event sits at next_ once the ring has wrapped.
  const std::size_t start = seen_ < buf_.size() ? 0 : next_;
  for (std::size_t i = 0; i < stored; ++i) {
    out.push_back(buf_[(start + i) % buf_.size()]);
  }
  return out;
}

void json_escape(std::string_view in, std::string& out) {
  for (const char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // multi-byte UTF-8 sequences pass through unescaped
        }
    }
  }
}

void JsonlSink::emit(const Event& event) {
  line_.clear();
  line_ += "{\"kind\":\"";
  line_ += event_kind_name(event.kind);
  line_ += "\",\"round\":";
  line_ += std::to_string(event.round);
  if (event.label != nullptr) {
    line_ += ",\"label\":\"";
    json_escape(event.label, line_);
    line_ += '"';
  }
  line_ += ",\"value\":";
  line_ += std::to_string(event.value);
  line_ += ",\"ns\":";
  line_ += std::to_string(event.ns);
  line_ += "}\n";
  *out_ << line_;
  ++lines_;
}

}  // namespace agc::obs
