#include "agc/obs/telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "agc/obs/event_sink.hpp"

namespace agc::obs {

void Telemetry::set(std::string_view name, std::uint64_t value) {
  for (auto& c : counters_) {
    if (c.name == name) {
      c.value = value;
      return;
    }
  }
  counters_.push_back({std::string(name), value});
}

std::uint64_t Telemetry::get(std::string_view name,
                             std::uint64_t dflt) const noexcept {
  for (const auto& c : counters_) {
    if (c.name == name) return c.value;
  }
  return dflt;
}

double Telemetry::rounds_per_sec() const noexcept {
  const std::uint64_t rounds = get("rounds");
  if (rounds == 0 || wall_ns == 0) return 0.0;
  return static_cast<double>(rounds) * 1e9 / static_cast<double>(wall_ns);
}

std::string Telemetry::to_json() const {
  std::string out = "{";
  for (const auto& c : counters_) {
    out += '"';
    json_escape(c.name, out);
    out += "\":";
    out += std::to_string(c.value);
    out += ',';
  }
  out += "\"wall_ns\":";
  out += std::to_string(wall_ns);
  out += ",\"phases\":{";
  bool first = true;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const auto p = static_cast<Phase>(i);
    if (phases.phase_calls(p) == 0) continue;
    if (!first) out += ',';
    first = false;
    out += '"';
    out += phase_name(p);
    out += "\":{\"ns\":";
    out += std::to_string(phases.phase_ns(p));
    out += ",\"calls\":";
    out += std::to_string(phases.phase_calls(p));
    out += '}';
  }
  out += "}}";
  return out;
}

void Telemetry::write_summary(std::ostream& out, std::size_t width) const {
  struct Row {
    Phase phase;
    std::uint64_t ns;
    std::uint64_t calls;
  };
  std::vector<Row> rows;
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const auto p = static_cast<Phase>(i);
    if (phases.phase_calls(p) != 0) {
      rows.push_back({p, phases.phase_ns(p), phases.phase_calls(p)});
    }
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const Row& a, const Row& b) { return a.ns > b.ns; });

  const std::uint64_t total = phases.total_ns();
  char buf[160];
  if (rows.empty()) {
    out << "(no phase timings collected — set RunOptions::collect_phase_times)\n";
  }
  for (const Row& r : rows) {
    const double frac =
        total == 0 ? 0.0 : static_cast<double>(r.ns) / static_cast<double>(total);
    const auto bar = static_cast<std::size_t>(frac * static_cast<double>(width));
    std::snprintf(buf, sizeof buf, "%-9s %8.3f ms %6.1f%%  %10llu calls  ",
                  std::string(phase_name(r.phase)).c_str(),
                  static_cast<double>(r.ns) / 1e6, 100.0 * frac,
                  static_cast<unsigned long long>(r.calls));
    out << buf;
    for (std::size_t i = 0; i < bar; ++i) out << '#';
    out << '\n';
  }
  if (wall_ns != 0) {
    const double attributed =
        total == 0 ? 0.0
                   : 100.0 * static_cast<double>(total) / static_cast<double>(wall_ns);
    std::snprintf(buf, sizeof buf,
                  "wall %.3f ms, %.1f%% attributed to phases, %.1f rounds/s\n",
                  static_cast<double>(wall_ns) / 1e6, attributed, rounds_per_sec());
    out << buf;
  }
}

}  // namespace agc::obs
