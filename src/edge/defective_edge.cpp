#include "agc/edge/defective_edge.hpp"

#include <cassert>

#include "agc/coloring/cole_vishkin.hpp"

namespace agc::edge {

std::vector<EdgePair> kuhn_defective_pairs(graph::GraphView g) {
  const auto edges = graph::edge_list(g);
  std::vector<EdgePair> pairs(edges.size());
  // Outgoing rank at the tail / incoming rank at the head.  Edges are
  // canonical (first < second), so first is always the tail.
  std::vector<std::uint32_t> out_rank(g.n(), 0);
  std::vector<std::uint32_t> in_rank(g.n(), 0);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    pairs[e].i = ++out_rank[edges[e].first];
    pairs[e].j = ++in_rank[edges[e].second];
  }
  return pairs;
}

std::vector<std::size_t> class_successors(graph::GraphView g,
                                          const std::vector<EdgePair>& pairs) {
  const auto edges = graph::edge_list(g);
  assert(pairs.size() == edges.size());
  // succ[e] = the edge leaving head(e) whose tail color is i(e) and head
  // color is j(e).  The tail assigns distinct outgoing colors, so there is
  // at most one candidate per (vertex, i); filter by j.
  std::vector<std::size_t> succ(edges.size(), coloring::cv::npos);
  // index (tail, i) -> edge
  std::vector<std::vector<std::size_t>> by_tail(g.n());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    by_tail[edges[e].first].push_back(e);
  }
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const graph::Vertex head = edges[e].second;
    for (std::size_t cand : by_tail[head]) {
      if (pairs[cand].i == pairs[e].i && pairs[cand].j == pairs[e].j) {
        succ[e] = cand;
        break;
      }
    }
  }
  return succ;
}

std::vector<Color> defect_free_edge_coloring(graph::GraphView g,
                                             std::size_t* rounds_out) {
  const auto edges = graph::edge_list(g);
  const auto pairs = kuhn_defective_pairs(g);
  const auto succ = class_successors(g, pairs);

  // Cole-Vishkin over the class chains, with edge IDs as initial labels.
  const std::uint64_t id_space = static_cast<std::uint64_t>(g.n()) * g.n();
  std::vector<std::uint64_t> ids(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    ids[e] = static_cast<std::uint64_t>(edges[e].first) * g.n() + edges[e].second;
  }
  const auto cv = coloring::cv::three_color_chains(succ, ids, id_space);

  const std::uint64_t delta = g.max_degree();
  std::vector<Color> colors(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    colors[e] =
        ((pairs[e].i - 1) * delta + (pairs[e].j - 1)) * 3 + cv.colors[e];
  }
  if (rounds_out != nullptr) {
    *rounds_out = cv.rounds + 2;  // +1 ID exchange, +1 (i,j) exchange
  }
  return colors;
}

}  // namespace agc::edge
