#include "agc/edge/edge_coloring.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>

#include "agc/coloring/cole_vishkin.hpp"
#include "agc/math/primes.hpp"
#include "agc/obs/event_sink.hpp"
#include "agc/runtime/faults.hpp"

namespace agc::edge {

namespace {
constexpr std::size_t npos = static_cast<std::size_t>(-1);
constexpr std::uint64_t kNoChainNeighbor = 6;  ///< sentinel in shift rounds
}  // namespace

// ---------------------------------------------------------------------------
// EdgeSchedule
// ---------------------------------------------------------------------------

EdgeSchedule::EdgeSchedule(std::uint64_t id_space, std::size_t delta, bool exact)
    : id_space_(std::max<std::uint64_t>(id_space, 2)),
      delta_(std::max<std::size_t>(delta, 1)) {
  slots_.push_back({Phase::Id, 0, runtime::width_of(id_space_ - 1)});
  slots_.push_back({Phase::IJ, 0, runtime::width_of(delta_)});

  // Cole-Vishkin width recurrence from the edge-ID space id_space^2.
  std::uint64_t bound = id_space_ * id_space_;
  std::size_t t = 0;
  while (bound > 6) {
    const std::uint32_t w = runtime::width_of(bound - 1);
    bound = 2 * (w - 1) + 2;
    slots_.push_back({Phase::Cv, t++, runtime::width_of(bound - 1)});
  }
  for (std::size_t c = 0; c < 3; ++c) slots_.push_back({Phase::Shift, c, 3});

  // AG over the line graph: degree bound 2*Delta-2, initial palette 3*Delta^2.
  const std::size_t delta_l = std::max<std::size_t>(2 * delta_ - 2, 1);
  const std::uint64_t palette = 3 * static_cast<std::uint64_t>(delta_) * delta_;
  const auto sqrt_pal = static_cast<std::uint64_t>(
      std::ceil(std::sqrt(static_cast<double>(palette))));
  q_ = math::next_prime(std::max<std::uint64_t>(2 * delta_l + 1, sqrt_pal));
  for (std::size_t r = 0; r <= q_; ++r) slots_.push_back({Phase::Ag, r, 1});

  if (exact) {
    mixed_.emplace(delta_l, q_);
    for (std::size_t r = 0; r < mixed_->round_bound(); ++r) {
      slots_.push_back({Phase::Exact, r, 2});
    }
  }
}

std::size_t EdgeSchedule::total_bits() const {
  std::size_t sum = 0;
  for (const auto& s : slots_) sum += s.width;
  return sum;
}

// ---------------------------------------------------------------------------
// EdgeColoringProgram
// ---------------------------------------------------------------------------

void EdgeColoringProgram::on_start(const runtime::VertexEnv& env) {
  nbrs_.assign(env.neighbors.begin(), env.neighbors.end());
  slots_.assign(nbrs_.size(), EdgeSlot{});
  pending_new_label_.assign(nbrs_.size(), 0);
  // Orientation toward the larger ID; (i,j) = rank in port order per side.
  std::uint32_t out_rank = 0;
  std::uint32_t in_rank = 0;
  for (std::size_t p = 0; p < nbrs_.size(); ++p) {
    slots_[p].out = env.id < nbrs_[p];
    slots_[p].mine = slots_[p].out ? ++out_rank : ++in_rank;
  }
}

std::size_t EdgeColoringProgram::pred_port(std::size_t p) const {
  // Predecessor of an outgoing edge p: the incoming edge with i == other's i
  // and j == other's j.  At this endpoint an outgoing slot holds (mine=i,
  // other=j); an incoming slot holds (mine=j, other=i).
  assert(slots_[p].out);
  for (std::size_t q = 0; q < slots_.size(); ++q) {
    if (q == p || slots_[q].out) continue;
    if (slots_[q].other == slots_[p].mine && slots_[q].mine == slots_[p].other) {
      return q;
    }
  }
  return npos;
}

std::size_t EdgeColoringProgram::succ_port(std::size_t p) const {
  // Successor of an incoming edge p: the outgoing edge with the same (i,j).
  assert(!slots_[p].out);
  for (std::size_t q = 0; q < slots_.size(); ++q) {
    if (q == p || !slots_[q].out) continue;
    if (slots_[q].mine == slots_[p].other && slots_[q].other == slots_[p].mine) {
      return q;
    }
  }
  return npos;
}

std::optional<std::uint64_t> EdgeColoringProgram::word_for_port(
    const runtime::VertexEnv& env, std::size_t p) {
  const auto& slot = sched_.slot(lr_);
  EdgeSlot& e = slots_[p];
  switch (slot.phase) {
    case EdgeSchedule::Phase::Id:
      return env.padded_id;
    case EdgeSchedule::Phase::IJ:
      return e.mine;
    case EdgeSchedule::Phase::Cv: {
      if (!e.out) return std::nullopt;  // labels travel tail -> head
      const std::size_t pp = pred_port(p);
      const std::uint64_t pred =
          pp == npos ? coloring::cv::virtual_pred(e.label) : slots_[pp].label;
      pending_new_label_[p] = coloring::cv::step(e.label, pred);
      return pending_new_label_[p];
    }
    case EdgeSchedule::Phase::Shift: {
      // The tail contributes the predecessor's label, the head the
      // successor's; both sides then reduce identically.
      const std::size_t cp = e.out ? pred_port(p) : succ_port(p);
      return cp == npos ? kNoChainNeighbor : slots_[cp].label;
    }
    case EdgeSchedule::Phase::Ag: {
      const std::uint64_t q = sched_.q();
      const std::uint64_t b = e.color % q;
      for (std::size_t o = 0; o < slots_.size(); ++o) {
        if (o != p && slots_[o].color % q == b) return 1;
      }
      return 0;
    }
    case EdgeSchedule::Phase::Exact: {
      const auto& mixed = sched_.mixed();
      const std::uint64_t N = mixed.n();
      const std::uint64_t pr = mixed.p();
      bool low_working = false;
      bool conflict = false;
      const std::uint64_t c = e.color;
      for (std::size_t o = 0; o < slots_.size(); ++o) {
        if (o == p) continue;
        const std::uint64_t oc = slots_[o].color;
        if (oc >= N && oc < 2 * N) low_working = true;
        if (c < 2 * N) {
          // Low state: conflicts with low states sharing the value.
          if (oc < 2 * N && oc % N == c % N) conflict = true;
        } else {
          const std::uint64_t a = (c - 2 * N) % pr;
          if (oc >= 2 * N && (oc - 2 * N) % pr == a) conflict = true;
          if (oc < N && oc == a) conflict = true;
        }
      }
      return (static_cast<std::uint64_t>(conflict) << 1) |
             static_cast<std::uint64_t>(low_working);
    }
  }
  return std::nullopt;
}

void EdgeColoringProgram::on_send(const runtime::VertexEnv& env,
                                  runtime::OutboxRef& out) {
  if (lr_ >= sched_.logical_rounds() || nbrs_.empty()) return;
  const auto& slot = sched_.slot(lr_);
  if (!serialize_ || bit_ == 0) {
    pending_out_.assign(nbrs_.size(), std::nullopt);
    for (std::size_t p = 0; p < nbrs_.size(); ++p) {
      pending_out_[p] = word_for_port(env, p);
    }
  }
  for (std::size_t p = 0; p < nbrs_.size(); ++p) {
    if (!pending_out_[p].has_value()) continue;
    if (serialize_) {
      out.send(p, runtime::Word{(*pending_out_[p] >> bit_) & 1ULL, 1});
    } else {
      out.send(p, runtime::Word{*pending_out_[p], slot.width});
    }
  }
}

void EdgeColoringProgram::on_receive(const runtime::VertexEnv& env,
                                     const runtime::InboxRef& in) {
  if (lr_ >= sched_.logical_rounds()) return;
  const auto& slot = sched_.slot(lr_);

  if (serialize_) {
    if (bit_ == 0) in_acc_.assign(nbrs_.size(), std::nullopt);
    for (std::size_t p = 0; p < nbrs_.size(); ++p) {
      const auto words = in.from_port(p);
      if (words.empty()) continue;
      if (!in_acc_[p]) in_acc_[p] = 0;
      *in_acc_[p] |= (words.front().value & 1ULL) << bit_;
    }
    if (++bit_ < slot.width) return;
    bit_ = 0;
    apply(env, in_acc_);
    ++lr_;
    return;
  }

  std::vector<std::optional<std::uint64_t>> in_words(nbrs_.size());
  for (std::size_t p = 0; p < nbrs_.size(); ++p) {
    const auto words = in.from_port(p);
    if (!words.empty()) in_words[p] = words.front().value;
  }
  apply(env, in_words);
  ++lr_;
}

void EdgeColoringProgram::apply(
    const runtime::VertexEnv& env,
    const std::vector<std::optional<std::uint64_t>>& in_words) {
  const auto& slot = sched_.slot(lr_);
  switch (slot.phase) {
    case EdgeSchedule::Phase::Id:
      // IDs are already in env.neighbors; the exchange exists for honest bit
      // accounting.
      break;

    case EdgeSchedule::Phase::IJ: {
      for (std::size_t p = 0; p < slots_.size(); ++p) {
        if (in_words[p]) slots_[p].other = static_cast<std::uint32_t>(*in_words[p]);
        // Initial Cole-Vishkin label: the edge's globally unique ID.
        const std::uint64_t tail = slots_[p].out ? env.padded_id : nbrs_[p];
        const std::uint64_t head = slots_[p].out ? nbrs_[p] : env.padded_id;
        slots_[p].label = tail * sched_.id_space() + head;
      }
      break;
    }

    case EdgeSchedule::Phase::Cv: {
      for (std::size_t p = 0; p < slots_.size(); ++p) {
        slots_[p].label = slots_[p].out ? pending_new_label_[p]
                                        : in_words[p].value_or(slots_[p].label);
      }
      break;
    }

    case EdgeSchedule::Phase::Shift: {
      const std::uint64_t c = 5 - slot.index;  // removes colors 5, 4, 3
      std::vector<std::uint64_t> next(slots_.size());
      for (std::size_t p = 0; p < slots_.size(); ++p) {
        const EdgeSlot& e = slots_[p];
        const std::size_t local = e.out ? pred_port(p) : succ_port(p);
        const std::uint64_t local_label =
            local == npos ? kNoChainNeighbor : slots_[local].label;
        const std::uint64_t remote_label = in_words[p].value_or(kNoChainNeighbor);
        const std::uint64_t pred = e.out ? local_label : remote_label;
        const std::uint64_t succ = e.out ? remote_label : local_label;
        next[p] = coloring::cv::reduce_step(e.label, pred != kNoChainNeighbor, pred,
                                            succ != kNoChainNeighbor, succ, c);
      }
      for (std::size_t p = 0; p < slots_.size(); ++p) slots_[p].label = next[p];

      if (slot.index == 2) {
        // Defect removed: assemble the proper 3*Delta^2 coloring.
        const std::uint64_t delta = sched_.delta();
        for (std::size_t p = 0; p < slots_.size(); ++p) {
          const EdgeSlot& e = slots_[p];
          const std::uint64_t i = e.out ? e.mine : e.other;
          const std::uint64_t j = e.out ? e.other : e.mine;
          slots_[p].color = ((i - 1) * delta + (j - 1)) * 3 + e.label;
        }
      }
      break;
    }

    case EdgeSchedule::Phase::Ag: {
      const std::uint64_t q = sched_.q();
      std::vector<std::uint64_t> next(slots_.size());
      for (std::size_t p = 0; p < slots_.size(); ++p) {
        const std::uint64_t c = slots_[p].color;
        const std::uint64_t a = c / q;
        const std::uint64_t b = c % q;
        // Conflict anywhere around the edge: at this endpoint (recompute from
        // the same snapshot word_for_port used) or at the other (received bit).
        bool conflict = in_words[p].value_or(0) != 0;
        if (!conflict) {
          for (std::size_t o = 0; o < slots_.size() && !conflict; ++o) {
            conflict = o != p && slots_[o].color % q == b;
          }
        }
        next[p] = conflict ? a * q + (b + a) % q : b;
      }
      for (std::size_t p = 0; p < slots_.size(); ++p) slots_[p].color = next[p];

      if (slot.index == sched_.q() && sched_.exact()) {
        for (auto& e : slots_) e.color = sched_.mixed().lift(e.color);
      }
      break;
    }

    case EdgeSchedule::Phase::Exact: {
      const auto& mixed = sched_.mixed();
      const std::uint64_t N = mixed.n();
      const std::uint64_t pr = mixed.p();
      std::vector<std::uint64_t> next(slots_.size());
      for (std::size_t p = 0; p < slots_.size(); ++p) {
        const std::uint64_t c = slots_[p].color;
        const std::uint64_t remote = in_words[p].value_or(0);
        bool conflict = (remote & 2) != 0;
        bool low_working = (remote & 1) != 0;
        for (std::size_t o = 0; o < slots_.size(); ++o) {
          if (o == p) continue;
          const std::uint64_t oc = slots_[o].color;
          if (oc >= N && oc < 2 * N) low_working = true;
          if (c < 2 * N) {
            if (oc < 2 * N && oc % N == c % N) conflict = true;
          } else {
            const std::uint64_t a = (c - 2 * N) % pr;
            if (oc >= 2 * N && (oc - 2 * N) % pr == a) conflict = true;
            if (oc < N && oc == a) conflict = true;
          }
        }
        next[p] = mixed.transition(c, conflict, low_working);
      }
      for (std::size_t p = 0; p < slots_.size(); ++p) slots_[p].color = next[p];
      break;
    }
  }
}

std::optional<Color> EdgeColoringProgram::edge_color(graph::Vertex w) const {
  const auto it = std::lower_bound(nbrs_.begin(), nbrs_.end(), w);
  if (it == nbrs_.end() || *it != w) return std::nullopt;
  return slots_[static_cast<std::size_t>(it - nbrs_.begin())].color;
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

EdgeColoringResult color_edges_distributed(graph::GraphView g,
                                           const EdgeColoringOptions& opts) {
  const std::uint64_t t0 = obs::monotonic_ns();
  EdgeColoringResult result;
  const std::size_t delta = g.max_degree();
  EdgeSchedule sched(g.n(), delta, opts.exact);

  runtime::Transport transport =
      opts.bit_round ? runtime::Transport(runtime::Model::BIT)
                     : runtime::Transport(runtime::Model::CONGEST, opts.congest_bits);
  runtime::Engine engine(g, transport);
  engine.set_executor(opts.executor);
  if (opts.channel != nullptr) engine.set_channel(opts.channel);
  std::uint64_t channel_seen =
      opts.channel != nullptr ? opts.channel->events() : 0;

  obs::PhaseProfile profile;
  if (opts.collect_phase_times) engine.set_profile(&profile);
  if (opts.sink != nullptr) {
    engine.set_sink(opts.sink);
    obs::Event ev;
    ev.kind = obs::EventKind::RunStart;
    ev.label = opts.tag != nullptr ? opts.tag : "edge";
    ev.value = g.n();
    opts.sink->emit(ev);
  }

  engine.install([&](const runtime::VertexEnv&) {
    return std::make_unique<EdgeColoringProgram>(sched, opts.bit_round);
  });

  const std::size_t cap =
      (opts.bit_round ? sched.total_bits() : sched.logical_rounds()) + 2;
  // The schedule length is the worst-case bound; in practice the coloring
  // settles much earlier, so poll for quiescence (a proper coloring within
  // the final palette is a fixed point of every remaining stage).
  const std::uint64_t final_bound = opts.exact ? sched.mixed().n() : sched.q();
  const std::size_t min_rounds =
      opts.bit_round
          ? sched.total_bits() - (opts.exact ? sched.mixed().round_bound() : 0) * 2
          : sched.logical_rounds() -
                (opts.exact ? sched.mixed().round_bound() : 0) - sched.q();
  auto extract = [&] {
    std::vector<Color> colors;
    colors.reserve(g.m());
    for (const auto& e : graph::edge_list(g)) {
      const auto* prog =
          dynamic_cast<const EdgeColoringProgram*>(&engine.program(e.first));
      colors.push_back(prog->edge_color(e.second).value_or(0));
    }
    return colors;
  };
  auto settled = [&](const std::vector<Color>& colors) {
    return graph::max_color(colors) < final_bound &&
           graph::is_proper_edge_coloring(g, colors);
  };
  while (result.rounds < cap && !engine.all_halted()) {
    engine.step();
    ++result.rounds;
    if (opts.channel != nullptr) {
      const std::uint64_t now = opts.channel->events();
      if (now > channel_seen) {
        result.fault_events += now - channel_seen;
        if (opts.sink != nullptr) {
          obs::Event ev;
          ev.kind = obs::EventKind::Fault;
          ev.round = result.rounds;
          ev.label = opts.channel->name();
          ev.value = now - channel_seen;
          opts.sink->emit(ev);
        }
        channel_seen = now;
      }
    }
    if (opts.adversary != nullptr) {
      // The edge program keeps no adversary-visible RAM (a static protocol),
      // so injections here exercise churn/accounting paths; the proper /
      // converged flags report whatever damage was done.
      obs::ScopedPhaseTimer timer(
          opts.collect_phase_times ? profile.extra() : nullptr,
          obs::Phase::Fault);
      const std::size_t injected = opts.adversary->inject(engine, result.rounds);
      if (injected > 0) {
        result.fault_events += injected;
        if (opts.sink != nullptr) {
          obs::Event ev;
          ev.kind = obs::EventKind::Fault;
          ev.round = result.rounds;
          ev.label = opts.adversary->name();
          ev.value = injected;
          opts.sink->emit(ev);
        }
      }
    }
    if (result.rounds >= min_rounds && result.rounds % 8 == 0) {
      obs::ScopedPhaseTimer timer(
          opts.collect_phase_times ? profile.extra() : nullptr,
          obs::Phase::Check);
      result.colors = extract();
      if (settled(result.colors)) break;
    }
  }
  result.colors = extract();
  result.converged = engine.all_halted() || settled(result.colors);
  result.metrics = engine.metrics();
  result.palette = graph::palette_size(result.colors);
  result.proper = graph::is_proper_edge_coloring(g, result.colors);
  if (g.m() > 0) {
    result.avg_bits_per_edge =
        static_cast<double>(result.metrics.total_bits) / (2.0 * g.m());
    result.max_bits_per_edge = result.metrics.max_edge_bits;
  }
  if (opts.collect_phase_times) {
    engine.set_profile(nullptr);
    result.phases = profile.folded();
  }
  result.wall_ns = obs::monotonic_ns() - t0;
  if (opts.sink != nullptr) {
    obs::Event ev;
    ev.kind = obs::EventKind::RunEnd;
    ev.round = result.rounds;
    ev.label = opts.tag != nullptr ? opts.tag : "edge";
    ev.value = result.rounds;
    ev.ns = result.wall_ns;
    opts.sink->emit(ev);
  }
  return result;
}

}  // namespace agc::edge
