#include "agc/runtime/message.hpp"

namespace agc::runtime {

void MailboxArena::rebuild(graph::GraphView g) {
  const std::size_t n = g.n();
  base_.assign(n + 1, 0);
  for (graph::Vertex v = 0; v < n; ++v) {
    base_[v + 1] = base_[v] + static_cast<std::uint32_t>(g.degree(v));
  }
  const std::size_t total = base_[n];
  headers_.assign(total * stride_, Port{});
  inline_.assign(total * stride_ * kInline, Word{});
  if (stride_ == 2) {
    // Per-slot stable spill runs: resize (not assign) so run capacities
    // survive a topology rebuild, like lane buffers do in BSP mode.
    runs_.resize(total * stride_);
  } else {
    runs_.clear();
    runs_.shrink_to_fit();
  }
  peer_port_.resize(total);

  // Reverse-port map in O(m): scanning senders in ascending order means v
  // appears in each neighbor u's *sorted* list at the next unclaimed slot.
  std::vector<std::uint32_t> cursor(n, 0);
  for (graph::Vertex v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t p = 0; p < nbrs.size(); ++p) {
      const graph::Vertex u = nbrs[p];
      peer_port_[base_[u] + cursor[u]++] = base_[v] + static_cast<std::uint32_t>(p);
    }
  }

  version_ = g.topology_version();
  built_ = true;
}

void MailboxArena::spill(std::uint32_t sl, std::size_t shard) {
  Port& h = headers_[sl];
  const std::uint32_t cap = 2 * kInline;
  if (stride_ == 2) {
    // Two-epoch mode: the slot relocates into its own stable run.  Resizing
    // it here is safe — between the sender's epochs k and k+2 every neighbor
    // has consumed epoch k, so nobody can be reading this slot mid-send.
    auto& run = runs_[sl];
    if (run.size() < cap) run.resize(cap);
    std::copy_n(&inline_[sl * kInline], h.count, run.data());
    h.lane = kAsyncLane;
    h.begin = 0;
    h.cap = static_cast<std::uint32_t>(run.size());
    return;
  }
  Lane& lane = lanes_[shard];
  if (lane.used + cap > lane.buf.size()) {
    lane.buf.resize(std::max(lane.buf.size() * 2, lane.used + cap));
  }
  for (std::uint32_t i = 0; i < h.count; ++i) {
    lane.buf[lane.used + i] = inline_[sl * kInline + i];
  }
  h.lane = static_cast<std::uint32_t>(shard);
  h.begin = static_cast<std::uint32_t>(lane.used);
  h.cap = cap;
  lane.used += cap;
}

void MailboxArena::grow(std::uint32_t sl, std::size_t shard) {
  Port& h = headers_[sl];
  if (h.lane == kAsyncLane) {
    runs_[sl].resize(std::size_t{h.cap} * 2);
    h.cap *= 2;
    return;
  }
  // A shard only writes ports of its own vertices, so the run to grow is
  // always in this shard's lane.
  assert(h.lane == shard);
  Lane& lane = lanes_[shard];
  const std::uint32_t ncap = h.cap * 2;
  if (h.begin + h.cap == lane.used) {
    // The run is the lane tail: extend it in place, no copy.
    if (h.begin + ncap > lane.buf.size()) {
      lane.buf.resize(std::max<std::size_t>(lane.buf.size() * 2, h.begin + ncap));
    }
    lane.used = h.begin + ncap;
    h.cap = ncap;
    return;
  }
  if (lane.used + ncap > lane.buf.size()) {
    lane.buf.resize(std::max(lane.buf.size() * 2, lane.used + ncap));
  }
  std::copy_n(lane.buf.begin() + h.begin, h.count, lane.buf.begin() + lane.used);
  h.begin = static_cast<std::uint32_t>(lane.used);
  h.cap = ncap;
  lane.used += ncap;
}

}  // namespace agc::runtime
