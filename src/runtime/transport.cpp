#include "agc/runtime/transport.hpp"

#include <stdexcept>

namespace agc::runtime {

std::string to_string(Model m) {
  switch (m) {
    case Model::LOCAL: return "LOCAL";
    case Model::CONGEST: return "CONGEST";
    case Model::BIT: return "BIT";
    case Model::SET_LOCAL: return "SET-LOCAL";
  }
  return "?";
}

std::uint32_t Transport::width_cap() const noexcept {
  switch (model_) {
    case Model::LOCAL:
    case Model::SET_LOCAL: return 0;  // unbounded
    case Model::CONGEST: return congest_bits_;
    case Model::BIT: return 1;
  }
  return 0;
}

void Transport::validate(const OutboxRef& out) const {
  if (model_ == Model::SET_LOCAL && !out.used_broadcast_only()) {
    throw std::logic_error(
        "SET-LOCAL model admits broadcast only (no per-port sends)");
  }
  for (std::size_t p = 0; p < out.ports(); ++p) {
    for (const Word& w : out.at(p)) {
      if (w.bits < 64 && (w.value >> w.bits) != 0) {
        throw std::logic_error("message value wider than its declared bit width");
      }
    }
  }
  const std::uint32_t cap = width_cap();
  if (cap == 0) return;
  for (std::size_t p = 0; p < out.ports(); ++p) {
    std::uint64_t total = 0;
    for (const Word& w : out.at(p)) total += w.bits;
    if (total > cap) {
      throw std::logic_error("message of " + std::to_string(total) +
                             " bits exceeds " + to_string(model_) + " cap of " +
                             std::to_string(cap) + " bits");
    }
  }
}

}  // namespace agc::runtime
