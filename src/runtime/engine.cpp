#include "agc/runtime/engine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <unordered_map>

namespace agc::runtime {

namespace {
/// Key for a directed edge in the cumulative bit ledger.
std::uint64_t edge_key(graph::Vertex u, graph::Vertex v) {
  return (static_cast<std::uint64_t>(u) << 32) | v;
}
}  // namespace

Engine::Engine(graph::Graph g, Transport transport, EngineOptions opts)
    : graph_(std::move(g)), transport_(transport), opts_(opts) {
  envs_.resize(graph_.n());
  for (graph::Vertex v = 0; v < graph_.n(); ++v) refresh_env(v);
}

void Engine::refresh_env(graph::Vertex v) {
  VertexEnv& e = envs_[v];
  e.id = v;
  e.padded_id = v;
  e.degree = graph_.degree(v);
  e.n_bound = opts_.n_bound != 0 ? opts_.n_bound : graph_.n();
  e.id_space = e.n_bound * std::max<std::uint64_t>(1, opts_.id_space_factor);
  e.delta_bound = opts_.delta_bound != 0 ? opts_.delta_bound : graph_.max_degree();
  e.neighbors = graph_.neighbors(v);
  e.round = metrics_.rounds;
}

void Engine::install(const ProgramFactory& factory) {
  factory_ = factory;
  programs_.clear();
  programs_.reserve(graph_.n());
  for (graph::Vertex v = 0; v < graph_.n(); ++v) {
    refresh_env(v);
    programs_.push_back(factory(envs_[v]));
    programs_.back()->on_start(envs_[v]);
  }
}

void Engine::step() {
  if (programs_.size() != graph_.n()) {
    throw std::logic_error("Engine::step before install()");
  }
  const std::size_t n = graph_.n();

  // Phase 1: collect and validate outgoing messages.
  std::vector<Outbox> outboxes;
  outboxes.reserve(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    refresh_env(v);
    Outbox out(graph_.degree(v));
    programs_[v]->on_send(envs_[v], out);
    transport_.validate(out);
    outboxes.push_back(std::move(out));
  }

  // Phase 2: deliver.  Port p of sender u reaches neighbor w; the message
  // lands at w's port for u (index of u in w's sorted neighbor list).
  std::vector<Inbox> inboxes;
  inboxes.reserve(n);
  for (graph::Vertex v = 0; v < n; ++v) inboxes.emplace_back(graph_.degree(v));

  for (graph::Vertex u = 0; u < n; ++u) {
    const auto nbrs = graph_.neighbors(u);
    for (std::size_t p = 0; p < nbrs.size(); ++p) {
      const auto words = outboxes[u].at(p);
      if (words.empty()) continue;
      const graph::Vertex tgt = nbrs[p];
      const auto tgt_nbrs = graph_.neighbors(tgt);
      const auto it = std::lower_bound(tgt_nbrs.begin(), tgt_nbrs.end(), u);
      assert(it != tgt_nbrs.end() && *it == u);
      const auto tgt_port = static_cast<std::size_t>(it - tgt_nbrs.begin());
      std::uint64_t msg_bits = 0;
      for (const Word& w : words) {
        inboxes[tgt].deliver(tgt_port, w);
        msg_bits += w.bits;
      }
      ++metrics_.messages;
      metrics_.total_bits += msg_bits;
      auto& acc = edge_bits_[edge_key(u, tgt)];
      acc += msg_bits;
      metrics_.max_edge_bits = std::max(metrics_.max_edge_bits, acc);
    }
  }

  // Phase 3: state updates.
  for (graph::Vertex v = 0; v < n; ++v) {
    programs_[v]->on_receive(envs_[v], inboxes[v]);
  }

  ++metrics_.rounds;
  if (observer_) observer_(*this, metrics_.rounds);
}

std::size_t Engine::run(std::size_t max_rounds) {
  std::size_t executed = 0;
  while (executed < max_rounds && !all_halted()) {
    step();
    ++executed;
  }
  return executed;
}

bool Engine::all_halted() const {
  for (graph::Vertex v = 0; v < graph_.n(); ++v) {
    if (!programs_[v]->halted(envs_[v])) return false;
  }
  return true;
}

void Engine::corrupt_ram(graph::Vertex v, std::size_t word, std::uint64_t value) {
  auto ram = programs_[v]->ram();
  if (word < ram.size()) ram[word] = value;
}

bool Engine::add_edge(graph::Vertex u, graph::Vertex v) {
  const bool ok = graph_.add_edge(u, v);
  if (ok) {
    refresh_env(u);
    refresh_env(v);
  }
  return ok;
}

bool Engine::remove_edge(graph::Vertex u, graph::Vertex v) {
  const bool ok = graph_.remove_edge(u, v);
  if (ok) {
    refresh_env(u);
    refresh_env(v);
  }
  return ok;
}

graph::Vertex Engine::add_vertex() {
  const graph::Vertex v = graph_.add_vertex();
  envs_.emplace_back();
  refresh_env(v);
  programs_.push_back(factory_(envs_[v]));
  programs_.back()->on_start(envs_[v]);
  return v;
}

void Engine::reset_vertex(graph::Vertex v) {
  graph_.isolate(v);
  refresh_env(v);
  programs_[v] = factory_(envs_[v]);
  programs_[v]->on_start(envs_[v]);
}

}  // namespace agc::runtime
