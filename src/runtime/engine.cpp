#include "agc/runtime/engine.hpp"

#include <stdexcept>

#include "agc/obs/event_sink.hpp"
#include "agc/obs/phase_timer.hpp"
#include "agc/runtime/faults.hpp"
#include "agc/runtime/round.hpp"

namespace agc::runtime {

Engine::Engine(graph::Graph g, Transport transport, EngineOptions opts)
    : owned_(std::make_unique<graph::Graph>(std::move(g))),
      view_(*owned_),
      transport_(transport),
      opts_(opts) {
  envs_.resize(view_.n());
  for (graph::Vertex v = 0; v < view_.n(); ++v) refresh_env(v);
}

Engine::Engine(graph::GraphView g, Transport transport, EngineOptions opts)
    : view_(g), transport_(transport), opts_(opts) {
  envs_.resize(view_.n());
  for (graph::Vertex v = 0; v < view_.n(); ++v) refresh_env(v);
}

void Engine::refresh_env(graph::Vertex v) {
  refresh_vertex_env(view_, opts_, metrics_.rounds, v, envs_[v]);
}

graph::Graph& Engine::mutable_graph() {
  if (owned_ == nullptr) {
    owned_ = std::make_unique<graph::Graph>(graph::materialize(view_));
    view_ = graph::GraphView(*owned_);
    // Every env's neighbor span still points into the old backend; re-point
    // them all at the private copy before it diverges.
    for (graph::Vertex v = 0; v < view_.n(); ++v) refresh_env(v);
  }
  return *owned_;
}

void Engine::install(const ProgramFactory& factory) {
  factory_ = factory;
  programs_.clear();
  programs_.reserve(view_.n());
  for (graph::Vertex v = 0; v < view_.n(); ++v) {
    refresh_env(v);
    programs_.push_back(factory(envs_[v]));
    programs_.back()->on_start(envs_[v]);
  }
}

void Engine::step() {
  if (programs_.size() != view_.n()) {
    throw std::logic_error("Engine::step before install()");
  }
  edge_bits_.ensure(view_.n());
  // Dependency-driven backends fire per-vertex, so rounds r and r+1 must
  // coexist in the arena: switch it into two-epoch mode for them (a mode
  // change forces one rebuild, then is O(1) like the topology check).
  arena_.set_async(executor_ != nullptr && executor_->dependency_driven());
  arena_.ensure(view_);  // O(1) unless the adversary churned topology
  if (channel_ != nullptr) {
    channel_->begin_round(arena_, view_, metrics_.rounds);
  }
  const std::uint64_t t0 = sink_ != nullptr ? obs::monotonic_ns() : 0;
  const std::uint64_t messages_before = metrics_.messages;
  RoundContext ctx(view_, transport_, opts_, programs_, envs_, edge_bits_,
                   arena_, metrics_.rounds, profile_, channel_);
  if (executor_) {
    executor_->round(ctx, metrics_);
  } else {
    SequentialExecutor{}.round(ctx, metrics_);
  }
  ++metrics_.rounds;
  if (sink_ != nullptr) {
    obs::Event ev;
    ev.kind = obs::EventKind::RoundEnd;
    ev.round = metrics_.rounds;
    ev.value = metrics_.messages - messages_before;
    ev.ns = obs::monotonic_ns() - t0;
    sink_->emit(ev);
  }
  if (observer_) {
    obs::ScopedPhaseTimer timer(
        profile_ != nullptr ? profile_->extra() : nullptr,
        obs::Phase::Observer);
    observer_(*this, metrics_.rounds);
  }
}

std::size_t Engine::step_window(std::size_t max_rounds) {
  if (programs_.size() != view_.n()) {
    throw std::logic_error("Engine::step_window before install()");
  }
  if (max_rounds == 0) return 0;
  const bool windowable = executor_ != nullptr &&
                          executor_->dependency_driven() &&
                          channel_ == nullptr && !observer_;
  if (!windowable) {
    // Channel hooks need begin_round on the driving thread and observers a
    // global round boundary, so those runs keep the per-round loop (still
    // dependency-driven *within* each round when the executor is async).
    std::size_t executed = 0;
    while (executed < max_rounds && !all_halted()) {
      step();
      ++executed;
    }
    return executed;
  }
  edge_bits_.ensure(view_.n());
  arena_.set_async(true);
  arena_.ensure(view_);
  const std::uint64_t t0 = sink_ != nullptr ? obs::monotonic_ns() : 0;
  const std::uint64_t messages_before = metrics_.messages;
  RoundContext ctx(view_, transport_, opts_, programs_, envs_, edge_bits_,
                   arena_, metrics_.rounds, profile_, nullptr);
  const std::size_t fired = executor_->run_window(ctx, metrics_, max_rounds);
  metrics_.rounds += fired;
  if (sink_ != nullptr) {
    // One RoundEnd per window: per-round events have no barrier to hang on.
    obs::Event ev;
    ev.kind = obs::EventKind::RoundEnd;
    ev.round = metrics_.rounds;
    ev.value = metrics_.messages - messages_before;
    ev.ns = obs::monotonic_ns() - t0;
    sink_->emit(ev);
  }
  return fired;
}

std::size_t Engine::run(std::size_t max_rounds) {
  std::size_t executed = 0;
  while (executed < max_rounds && !all_halted()) {
    step();
    ++executed;
  }
  return executed;
}

bool Engine::all_halted() const {
  for (graph::Vertex v = 0; v < view_.n(); ++v) {
    if (!programs_[v]->halted(envs_[v])) return false;
  }
  return true;
}

void Engine::corrupt_ram(graph::Vertex v, std::size_t word, std::uint64_t value) {
  auto ram = programs_[v]->ram();
  if (word < ram.size()) {
    ram[word] = value;
    if (fault_recorder_ != nullptr) {
      fault_recorder_->record({metrics_.rounds, FaultKind::Ram, 0, v,
                               static_cast<std::uint32_t>(word), value});
    }
  }
}

bool Engine::add_edge(graph::Vertex u, graph::Vertex v) {
  const bool ok = mutable_graph().add_edge(u, v);
  if (ok) {
    refresh_env(u);
    refresh_env(v);
    if (fault_recorder_ != nullptr) {
      fault_recorder_->record({metrics_.rounds, FaultKind::AddEdge, u, v, 0, 0});
    }
  }
  return ok;
}

bool Engine::remove_edge(graph::Vertex u, graph::Vertex v) {
  const bool ok = mutable_graph().remove_edge(u, v);
  if (ok) {
    refresh_env(u);
    refresh_env(v);
    if (fault_recorder_ != nullptr) {
      fault_recorder_->record({metrics_.rounds, FaultKind::RemoveEdge, u, v, 0, 0});
    }
  }
  return ok;
}

graph::Vertex Engine::add_vertex() {
  const graph::Vertex v = mutable_graph().add_vertex();
  envs_.emplace_back();
  refresh_env(v);
  programs_.push_back(factory_(envs_[v]));
  programs_.back()->on_start(envs_[v]);
  if (fault_recorder_ != nullptr) {
    fault_recorder_->record({metrics_.rounds, FaultKind::AddVertex, 0, v, 0, 0});
  }
  return v;
}

void Engine::reset_vertex(graph::Vertex v) {
  mutable_graph().isolate(v);
  refresh_env(v);
  programs_[v] = factory_(envs_[v]);
  programs_[v]->on_start(envs_[v]);
  if (fault_recorder_ != nullptr) {
    fault_recorder_->record({metrics_.rounds, FaultKind::ResetVertex, 0, v, 0, 0});
  }
}

}  // namespace agc::runtime
