#include "agc/runtime/run_report.hpp"

namespace agc::runtime {

obs::Telemetry RunReport::telemetry() const {
  obs::Telemetry t;
  t.phases = phases;
  t.wall_ns = wall_ns;
  t.set("rounds", rounds);
  t.set("converged", converged ? 1 : 0);
  t.set("messages", metrics.messages);
  t.set("total_bits", metrics.total_bits);
  t.set("max_edge_bits", metrics.max_edge_bits);
  t.set("fault_events", fault_events);
  return t;
}

void RunReport::absorb(const RunReport& stage) {
  rounds += stage.rounds;
  converged = converged && stage.converged;
  metrics.merge(stage.metrics);
  phases.merge(stage.phases);
  wall_ns += stage.wall_ns;
  fault_events += stage.fault_events;
}

}  // namespace agc::runtime
