#include "agc/runtime/iterative.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "agc/obs/event_sink.hpp"
#include "agc/runtime/faults.hpp"
#include "agc/runtime/round.hpp"

namespace agc::runtime {

namespace {

/// Adapter: broadcasts the vertex's color, applies the rule on receipt.
/// Colors are mirrored into a shared snapshot vector so the runner can check
/// properness and convergence without touching program internals.
class RuleProgram final : public VertexProgram {
 public:
  RuleProgram(const IterativeRule& rule, Color initial, Color* mirror)
      : rule_(rule), color_(initial), mirror_(mirror) {
    *mirror_ = color_;
  }

  void on_send(const VertexEnv&, OutboxRef& out) override {
    out.broadcast(Word{color_, rule_.color_bits()});
  }

  void on_receive(const VertexEnv&, const InboxRef& in) override {
    const auto nbrs = in.multiset();
    neighbors_final_ = std::all_of(nbrs.begin(), nbrs.end(), [&](Color c) {
      return rule_.is_final(c);
    });
    const Color next = rule_.step(color_, nbrs);
    stable_ = next == color_;
    color_ = next;
    *mirror_ = color_;
  }

  /// Halt once this vertex and — as of the colors it just received — its
  /// whole neighborhood are final, AND the last step left the color
  /// unchanged.  The stability clause enforces the halted() contract: the
  /// async executor mirrors the last *published* message, so a vertex that
  /// became final only on this very step must fire once more to broadcast
  /// the final color before it may freeze.  Final colors are fixed points
  /// of every rule, so this delays each halt by at most one round.  The BSP
  /// runner drives the engine per step and consults its own all-final
  /// check, so this leaves barriered runs byte-identical.
  [[nodiscard]] bool halted(const VertexEnv&) const override {
    return stable_ && neighbors_final_ && rule_.is_final(color_);
  }

  /// The color is the whole volatile state: exposing it lets the unified
  /// RunOptions adversary corrupt iterative runs the same way it corrupts
  /// selfstab ones.  The runner resynchronizes the mirror after injection.
  std::span<std::uint64_t> ram() override { return {&color_, 1}; }

 private:
  const IterativeRule& rule_;
  Color color_;
  Color* mirror_;
  bool neighbors_final_ = false;
  bool stable_ = false;
};

/// Pull every program's color back into the mirror after the adversary may
/// have rewritten RAM behind the runner's back.
void resync_mirror(Engine& engine, std::vector<Color>& mirror) {
  for (graph::Vertex v = 0; v < engine.graph().n(); ++v) {
    const auto ram = engine.ram(v);
    if (!ram.empty()) mirror[v] = ram[0];
  }
}

}  // namespace

IterativeResult run_locally_iterative(graph::GraphView g,
                                      std::vector<Color> initial,
                                      const IterativeRule& rule,
                                      const IterativeOptions& opts) {
  const std::uint64_t t0 = obs::monotonic_ns();
  IterativeResult result;
  result.colors = std::move(initial);

  Engine engine(g, Transport(opts.model, opts.congest_bits));
  if (opts.executor) engine.set_executor(opts.executor);
  if (opts.channel != nullptr) engine.set_channel(opts.channel);

  obs::PhaseProfile profile;
  obs::PhaseStats* extra = nullptr;
  if (opts.collect_phase_times) {
    engine.set_profile(&profile);
    extra = profile.extra();
  }
  if (opts.sink != nullptr) engine.set_sink(opts.sink);

  std::vector<Color>& mirror = result.colors;
  engine.install([&](const VertexEnv& env) {
    if (env.id >= mirror.size()) {
      // The mirror (and the adversary resync) index by vertex id; growing the
      // vertex set mid-run is a selfstab-runner capability only.
      throw std::logic_error(
          "run_locally_iterative: adding vertices mid-run is unsupported");
    }
    return std::make_unique<RuleProgram>(rule, mirror[env.id], &mirror[env.id]);
  });

  if (opts.sink != nullptr) {
    obs::Event ev;
    ev.kind = obs::EventKind::RunStart;
    ev.label = opts.tag;
    ev.value = g.n();
    opts.sink->emit(ev);
  }

  if (opts.check_proper_each_round) {
    obs::ScopedPhaseTimer timer(extra, obs::Phase::Check);
    result.proper_each_round = graph::is_proper_coloring(engine.graph(), mirror);
  }
  if (opts.on_round) {
    obs::ScopedPhaseTimer timer(extra, obs::Phase::Observer);
    opts.on_round(0, mirror);
  }

  auto all_final = [&] {
    return std::all_of(mirror.begin(), mirror.end(),
                       [&](Color c) { return rule.is_final(c); });
  };

  std::uint64_t channel_seen =
      opts.channel != nullptr ? opts.channel->events() : 0;

  // Dependency-driven fast path: with no per-round hooks to honor (channel,
  // adversary, observer), hand the executor one barrier-free window in which
  // every vertex fires on its own readiness and halts individually.  The
  // properness invariant is then checked at window boundaries rather than
  // every round — the one observable weakening async mode is allowed
  // (docs/EXEC.md); final colors still match the BSP oracle bit-for-bit.
  const bool windowed = opts.executor != nullptr &&
                        opts.executor->dependency_driven() &&
                        opts.adversary == nullptr && opts.channel == nullptr &&
                        !opts.on_round;
  if (windowed) {
    while (!all_final() && result.rounds < opts.max_rounds) {
      const std::size_t fired =
          engine.step_window(opts.max_rounds - result.rounds);
      result.rounds += fired;
      if (fired == 0) break;
      if (opts.check_proper_each_round && result.proper_each_round) {
        obs::ScopedPhaseTimer timer(extra, obs::Phase::Check);
        result.proper_each_round =
            graph::is_proper_coloring(engine.graph(), mirror);
      }
    }
  }

  while (!windowed && !all_final() && result.rounds < opts.max_rounds) {
    engine.step();
    ++result.rounds;
    if (opts.channel != nullptr) {
      // Channel faults mutate messages, not RAM, so no mirror resync is
      // needed — the programs already consumed the faulted words.
      const std::uint64_t now = opts.channel->events();
      if (now > channel_seen) {
        result.fault_events += now - channel_seen;
        if (opts.sink != nullptr) {
          obs::Event ev;
          ev.kind = obs::EventKind::Fault;
          ev.round = result.rounds;
          ev.label = opts.channel->name();
          ev.value = now - channel_seen;
          opts.sink->emit(ev);
        }
        channel_seen = now;
      }
    }
    if (opts.adversary != nullptr) {
      std::size_t injected = 0;
      {
        obs::ScopedPhaseTimer timer(extra, obs::Phase::Fault);
        injected = opts.adversary->inject(engine, result.rounds);
      }
      if (injected > 0) {
        result.fault_events += injected;
        resync_mirror(engine, mirror);
        if (opts.sink != nullptr) {
          obs::Event ev;
          ev.kind = obs::EventKind::Fault;
          ev.round = result.rounds;
          ev.label = opts.adversary->name();
          ev.value = injected;
          opts.sink->emit(ev);
        }
      }
    }
    if (opts.check_proper_each_round && result.proper_each_round) {
      obs::ScopedPhaseTimer timer(extra, obs::Phase::Check);
      // The adversary may have churned edges: judge against the live graph.
      result.proper_each_round =
          graph::is_proper_coloring(engine.graph(), mirror);
    }
    if (opts.on_round) {
      obs::ScopedPhaseTimer timer(extra, obs::Phase::Observer);
      opts.on_round(result.rounds, mirror);
    }
  }
  result.converged = all_final();
  result.metrics = engine.metrics();
  if (opts.collect_phase_times) {
    engine.set_profile(nullptr);
    result.phases = profile.folded();
  }
  result.wall_ns = obs::monotonic_ns() - t0;
  if (opts.sink != nullptr) {
    obs::Event ev;
    ev.kind = obs::EventKind::RunEnd;
    ev.round = result.rounds;
    ev.label = opts.tag;
    ev.value = result.rounds;
    ev.ns = result.wall_ns;
    opts.sink->emit(ev);
  }
  return result;
}

IterativeResult run_stages(graph::GraphView g, std::vector<Color> initial,
                           std::span<const IterativeRule* const> stages,
                           const IterativeOptions& opts) {
  IterativeResult total;
  total.colors = std::move(initial);
  total.converged = true;
  std::size_t index = 0;
  for (const IterativeRule* stage : stages) {
    if (opts.sink != nullptr) {
      obs::Event ev;
      ev.kind = obs::EventKind::StageStart;
      ev.round = total.rounds;
      ev.label = opts.tag;
      ev.value = index;
      opts.sink->emit(ev);
    }
    IterativeResult r = run_locally_iterative(g, std::move(total.colors), *stage, opts);
    total.colors = std::move(r.colors);
    total.proper_each_round = total.proper_each_round && r.proper_each_round;
    // Each stage runs a fresh engine with its own per-edge ledger, so the
    // cross-stage max_edge_bits is the max over stages, not their sum
    // (RunReport::absorb delegates to Metrics::merge, which does exactly that).
    total.absorb(r);
    if (opts.sink != nullptr) {
      obs::Event ev;
      ev.kind = obs::EventKind::StageEnd;
      ev.round = total.rounds;
      ev.label = opts.tag;
      ev.value = r.rounds;
      opts.sink->emit(ev);
    }
    ++index;
    if (!total.converged) break;
  }
  return total;
}

}  // namespace agc::runtime
