#include "agc/runtime/iterative.hpp"

#include <algorithm>
#include <memory>

namespace agc::runtime {

namespace {

/// Adapter: broadcasts the vertex's color, applies the rule on receipt.
/// Colors are mirrored into a shared snapshot vector so the runner can check
/// properness and convergence without touching program internals.
class RuleProgram final : public VertexProgram {
 public:
  RuleProgram(const IterativeRule& rule, Color initial, Color* mirror)
      : rule_(rule), color_(initial), mirror_(mirror) {
    *mirror_ = color_;
  }

  void on_send(const VertexEnv&, OutboxRef& out) override {
    out.broadcast(Word{color_, rule_.color_bits()});
  }

  void on_receive(const VertexEnv&, const InboxRef& in) override {
    const auto nbrs = in.multiset();
    color_ = rule_.step(color_, nbrs);
    *mirror_ = color_;
  }

 private:
  const IterativeRule& rule_;
  Color color_;
  Color* mirror_;
};

}  // namespace

IterativeResult run_locally_iterative(const graph::Graph& g,
                                      std::vector<Color> initial,
                                      const IterativeRule& rule,
                                      const IterativeOptions& opts) {
  IterativeResult result;
  result.colors = std::move(initial);

  Engine engine(g, Transport(opts.model, opts.congest_bits));
  if (opts.executor) engine.set_executor(opts.executor);
  std::vector<Color>& mirror = result.colors;
  engine.install([&](const VertexEnv& env) {
    return std::make_unique<RuleProgram>(rule, mirror[env.id], &mirror[env.id]);
  });

  if (opts.check_proper_each_round) {
    result.proper_each_round = graph::is_proper_coloring(g, mirror);
  }
  if (opts.on_round) opts.on_round(0, mirror);

  auto all_final = [&] {
    return std::all_of(mirror.begin(), mirror.end(),
                       [&](Color c) { return rule.is_final(c); });
  };

  while (!all_final() && result.rounds < opts.max_rounds) {
    engine.step();
    ++result.rounds;
    if (opts.check_proper_each_round && result.proper_each_round) {
      result.proper_each_round = graph::is_proper_coloring(g, mirror);
    }
    if (opts.on_round) opts.on_round(result.rounds, mirror);
  }
  result.converged = all_final();
  result.metrics = engine.metrics();
  return result;
}

IterativeResult run_stages(const graph::Graph& g, std::vector<Color> initial,
                           std::span<const IterativeRule* const> stages,
                           const IterativeOptions& opts) {
  IterativeResult total;
  total.colors = std::move(initial);
  total.converged = true;
  for (const IterativeRule* stage : stages) {
    IterativeResult r = run_locally_iterative(g, std::move(total.colors), *stage, opts);
    total.colors = std::move(r.colors);
    total.rounds += r.rounds;
    total.converged = total.converged && r.converged;
    total.proper_each_round = total.proper_each_round && r.proper_each_round;
    // Each stage runs a fresh engine with its own per-edge ledger, so the
    // cross-stage max_edge_bits is the max over stages, not their sum.
    total.metrics.merge(r.metrics);
    if (!total.converged) break;
  }
  return total;
}

}  // namespace agc::runtime
