#include "agc/runtime/trace.hpp"

#include <algorithm>

namespace agc::runtime {

void TraceRecorder::record(std::size_t round, std::span<const Color> colors) {
  // Staged pipelines restart their round counter per stage; splice stages
  // into one cumulative trace (the stage's round-0 snapshot duplicates the
  // previous stage's final state and is dropped).
  if (round == 0 && !points_.empty()) {
    offset_ = points_.back().round;
    return;
  }
  RoundTracePoint pt;
  pt.round = round + offset_;
  pt.distinct_colors = graph::palette_size(colors);
  for (Color c : colors) {
    if (is_final_ && is_final_(c)) ++pt.finalized;
  }
  for (graph::Vertex u = 0; u < g_.n(); ++u) {
    for (graph::Vertex v : g_.neighbors(u)) {
      if (v > u && colors[u] == colors[v]) ++pt.monochromatic_edges;
    }
  }
  points_.push_back(pt);
}

void TraceRecorder::write_csv(std::ostream& out) const {
  out << "round,distinct_colors,finalized,monochromatic_edges\n";
  for (const auto& p : points_) {
    out << p.round << "," << p.distinct_colors << "," << p.finalized << ","
        << p.monochromatic_edges << "\n";
  }
}

void TraceRecorder::write_ascii(std::ostream& out, std::size_t width) const {
  if (points_.empty()) return;
  std::size_t max_colors = 1;
  for (const auto& p : points_) max_colors = std::max(max_colors, p.distinct_colors);
  out << "round | distinct colors (# = " << (max_colors + width - 1) / width
      << ")\n";
  for (const auto& p : points_) {
    const std::size_t bar =
        (p.distinct_colors * width + max_colors - 1) / max_colors;
    out << (p.round < 10 ? "    " : p.round < 100 ? "   " : "  ") << p.round
        << " | ";
    for (std::size_t i = 0; i < bar; ++i) out << '#';
    out << " " << p.distinct_colors << "\n";
  }
}

}  // namespace agc::runtime
