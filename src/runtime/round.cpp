#include "agc/runtime/round.hpp"

#include <algorithm>
#include <stdexcept>

namespace agc::runtime {

void refresh_vertex_env(graph::GraphView g, const EngineOptions& opts,
                        std::uint64_t round, graph::Vertex v, VertexEnv& env) {
  env.id = v;
  env.padded_id = v;
  env.degree = g.degree(v);
  env.n_bound = opts.n_bound != 0 ? opts.n_bound : g.n();
  env.id_space = env.n_bound * std::max<std::uint64_t>(1, opts.id_space_factor);
  env.delta_bound = opts.delta_bound != 0 ? opts.delta_bound : g.max_degree();
  env.neighbors = g.neighbors(v);
  env.round = round;
}

RoundContext::RoundContext(graph::GraphView graph, const Transport& transport,
                           const EngineOptions& opts,
                           std::vector<std::unique_ptr<VertexProgram>>& programs,
                           std::vector<VertexEnv>& envs, EdgeBitLedger& ledger,
                           MailboxArena& arena, std::uint64_t round,
                           obs::PhaseProfile* profile, ChannelHook* channel)
    : graph_(graph),
      transport_(transport),
      opts_(opts),
      programs_(programs),
      envs_(envs),
      ledger_(ledger),
      arena_(arena),
      round_(round),
      profile_(profile),
      channel_(channel) {}

void RoundContext::send(graph::Vertex begin, graph::Vertex end,
                        std::size_t shard) {
  obs::ScopedPhaseTimer timer(
      profile_ != nullptr ? profile_->shard(shard) : nullptr, obs::Phase::Send);
  arena_.begin_shard(shard);
  if (channel_ != nullptr) {
    // Worst case a hook adds one word per port (duplicate, or a delayed word
    // prepended to a full inline slot), relocating the port into a cap-2 lane
    // run.  Pre-sizing the lane to 2 words per owned port keeps the hook's
    // in-phase pushes allocation-free for bounded models.
    arena_.reserve_lane(shard, 2 * std::size_t{arena_.base(end) - arena_.base(begin)});
  }
  for (graph::Vertex v = begin; v < end; ++v) {
    arena_.reset_ports(v);
    refresh_vertex_env(graph_, opts_, round_, v, envs_[v]);
    OutboxRef out = arena_.outbox(v, shard);
    programs_[v]->on_send(envs_[v], out);
    transport_.validate(out);
    if (channel_ != nullptr) {
      channel_->apply(arena_, graph_, v, round_, shard);
    }
  }
}

void RoundContext::deliver(graph::Vertex begin, graph::Vertex end,
                           Metrics& metrics, std::size_t shard) {
  obs::ScopedPhaseTimer timer(
      profile_ != nullptr ? profile_->shard(shard) : nullptr,
      obs::Phase::Deliver);
  for (graph::Vertex v = begin; v < end; ++v) {
    const auto nbrs = graph_.neighbors(v);
    const std::uint32_t* peers = arena_.peer_ports(v);
    for (std::size_t port = 0; port < nbrs.size(); ++port) {
      // v's p-th inbound message sits at v's port in its neighbor's table,
      // precomputed in the arena's reverse-port map.
      const auto words = arena_.words(peers[port]);
      if (words.empty()) continue;
      std::uint64_t msg_bits = 0;
      for (const Word& w : words) msg_bits += w.bits;
      ++metrics.messages;
      metrics.total_bits += msg_bits;
      const std::uint64_t acc = ledger_.add(nbrs[port], v, msg_bits);
      metrics.max_edge_bits = std::max(metrics.max_edge_bits, acc);
    }
  }
}

void RoundContext::reduce(std::span<const Metrics> shards, Metrics& total) {
  for (const Metrics& s : shards) total.merge(s);
}

void RoundContext::receive(graph::Vertex begin, graph::Vertex end,
                           std::size_t shard) {
  obs::ScopedPhaseTimer timer(
      profile_ != nullptr ? profile_->shard(shard) : nullptr,
      obs::Phase::Receive);
  for (graph::Vertex v = begin; v < end; ++v) {
    const InboxRef in = arena_.inbox(v, shard);
    programs_[v]->on_receive(envs_[v], in);
  }
}

void RoundContext::send_vertex(graph::Vertex v, std::size_t shard,
                               std::uint64_t round) {
  const std::uint32_t parity = arena_.parity_for(round);
  arena_.reset_ports(v, parity);
  refresh_vertex_env(graph_, opts_, round, v, envs_[v]);
  OutboxRef out = arena_.outbox(v, shard, parity);
  programs_[v]->on_send(envs_[v], out);
  transport_.validate(out);
  if (channel_ != nullptr) {
    channel_->apply(arena_, graph_, v, round, shard);
  }
}

void RoundContext::deliver_vertex(graph::Vertex v, Metrics& metrics,
                                  std::uint64_t round) {
  const std::uint32_t parity = arena_.parity_for(round);
  const auto nbrs = graph_.neighbors(v);
  const std::uint32_t* peers = arena_.peer_ports(v);
  for (std::size_t port = 0; port < nbrs.size(); ++port) {
    const auto words = arena_.words(peers[port], parity);
    if (words.empty()) continue;
    std::uint64_t msg_bits = 0;
    for (const Word& w : words) msg_bits += w.bits;
    ++metrics.messages;
    metrics.total_bits += msg_bits;
    const std::uint64_t acc = ledger_.add(nbrs[port], v, msg_bits);
    metrics.max_edge_bits = std::max(metrics.max_edge_bits, acc);
  }
}

void RoundContext::receive_vertex(graph::Vertex v, std::size_t shard,
                                  std::uint64_t round) {
  const InboxRef in = arena_.inbox(v, shard, arena_.parity_for(round));
  programs_[v]->on_receive(envs_[v], in);
}

void RoundContext::mirror_vertex(graph::Vertex v, std::uint64_t round) {
  arena_.mirror_port_epochs(v, arena_.parity_for(round));
}

std::size_t RoundExecutor::run_window(RoundContext&, Metrics&, std::size_t) {
  throw std::logic_error(
      "RoundExecutor::run_window requires a dependency-driven backend");
}

void SequentialExecutor::round(RoundContext& ctx, Metrics& total) {
  const auto n = static_cast<graph::Vertex>(ctx.n());
  ctx.prepare(1);
  ctx.send(0, n, 0);
  Metrics shard;
  ctx.deliver(0, n, shard, 0);
  RoundContext::reduce({&shard, 1}, total);
  ctx.receive(0, n, 0);
}

}  // namespace agc::runtime
