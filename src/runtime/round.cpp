#include "agc/runtime/round.hpp"

#include <algorithm>
#include <cassert>

namespace agc::runtime {

void refresh_vertex_env(const graph::Graph& g, const EngineOptions& opts,
                        std::uint64_t round, graph::Vertex v, VertexEnv& env) {
  env.id = v;
  env.padded_id = v;
  env.degree = g.degree(v);
  env.n_bound = opts.n_bound != 0 ? opts.n_bound : g.n();
  env.id_space = env.n_bound * std::max<std::uint64_t>(1, opts.id_space_factor);
  env.delta_bound = opts.delta_bound != 0 ? opts.delta_bound : g.max_degree();
  env.neighbors = g.neighbors(v);
  env.round = round;
}

RoundContext::RoundContext(const graph::Graph& graph, const Transport& transport,
                           const EngineOptions& opts,
                           std::vector<std::unique_ptr<VertexProgram>>& programs,
                           std::vector<VertexEnv>& envs, EdgeBitLedger& ledger,
                           std::uint64_t round)
    : graph_(graph),
      transport_(transport),
      opts_(opts),
      programs_(programs),
      envs_(envs),
      ledger_(ledger),
      round_(round),
      outboxes_(graph.n()),
      inboxes_(graph.n()) {}

void RoundContext::send(graph::Vertex begin, graph::Vertex end) {
  for (graph::Vertex v = begin; v < end; ++v) {
    refresh_vertex_env(graph_, opts_, round_, v, envs_[v]);
    Outbox out(graph_.degree(v));
    programs_[v]->on_send(envs_[v], out);
    transport_.validate(out);
    outboxes_[v] = std::move(out);
  }
}

void RoundContext::deliver(graph::Vertex begin, graph::Vertex end,
                           Metrics& shard) {
  for (graph::Vertex v = begin; v < end; ++v) {
    const auto nbrs = graph_.neighbors(v);
    Inbox in(nbrs.size());
    for (std::size_t port = 0; port < nbrs.size(); ++port) {
      const graph::Vertex u = nbrs[port];
      // u's message for v sits at u's port for v (index of v in u's sorted
      // neighbor list).
      const auto u_nbrs = graph_.neighbors(u);
      const auto it = std::lower_bound(u_nbrs.begin(), u_nbrs.end(), v);
      assert(it != u_nbrs.end() && *it == v);
      const auto u_port = static_cast<std::size_t>(it - u_nbrs.begin());
      const auto words = outboxes_[u].at(u_port);
      if (words.empty()) continue;
      std::uint64_t msg_bits = 0;
      for (const Word& w : words) {
        in.deliver(port, w);
        msg_bits += w.bits;
      }
      ++shard.messages;
      shard.total_bits += msg_bits;
      const std::uint64_t acc = ledger_.add(u, v, msg_bits);
      shard.max_edge_bits = std::max(shard.max_edge_bits, acc);
    }
    inboxes_[v] = std::move(in);
  }
}

void RoundContext::reduce(std::span<const Metrics> shards, Metrics& total) {
  for (const Metrics& s : shards) total.merge(s);
}

void RoundContext::receive(graph::Vertex begin, graph::Vertex end) {
  for (graph::Vertex v = begin; v < end; ++v) {
    programs_[v]->on_receive(envs_[v], inboxes_[v]);
  }
}

void SequentialExecutor::round(RoundContext& ctx, Metrics& total) {
  const auto n = static_cast<graph::Vertex>(ctx.n());
  ctx.send(0, n);
  Metrics shard;
  ctx.deliver(0, n, shard);
  RoundContext::reduce({&shard, 1}, total);
  ctx.receive(0, n);
}

}  // namespace agc::runtime
