#include "agc/runtime/metrics.hpp"

#include <sstream>

namespace agc::runtime {

std::string Metrics::summary() const {
  std::ostringstream os;
  os << "rounds=" << rounds << " messages=" << messages << " bits=" << total_bits
     << " max_edge_bits=" << max_edge_bits;
  return os.str();
}

}  // namespace agc::runtime
