#include "agc/runtime/faults.hpp"

namespace agc::runtime {

const char* to_string(FaultKind k) noexcept {
  switch (k) {
    case FaultKind::Ram: return "ram";
    case FaultKind::AddEdge: return "add_edge";
    case FaultKind::RemoveEdge: return "remove_edge";
    case FaultKind::ResetVertex: return "reset_vertex";
    case FaultKind::AddVertex: return "add_vertex";
    case FaultKind::Drop: return "drop";
    case FaultKind::Corrupt: return "corrupt";
    case FaultKind::Duplicate: return "duplicate";
    case FaultKind::Delay: return "delay";
    case FaultKind::Lie: return "lie";
  }
  return "?";
}

void Adversary::corrupt_random(Engine& engine, std::size_t count,
                               std::uint64_t value_range, std::size_t word) {
  const std::size_t n = engine.graph().n();
  if (n == 0 || value_range == 0) return;
  for (std::size_t i = 0; i < count; ++i) {
    const auto v = static_cast<graph::Vertex>(rng_.below(n));
    engine.corrupt_ram(v, word, rng_.below(value_range));
    ++events_;
  }
}

void Adversary::clone_neighbor(Engine& engine, std::size_t count, std::size_t word) {
  const std::size_t n = engine.graph().n();
  if (n == 0) return;
  for (std::size_t i = 0; i < count; ++i) {
    const auto v = static_cast<graph::Vertex>(rng_.below(n));
    const auto nbrs = engine.graph().neighbors(v);
    if (nbrs.empty()) continue;
    const graph::Vertex u = nbrs[rng_.below(nbrs.size())];
    const auto u_ram = engine.ram(u);
    if (word < u_ram.size()) {
      engine.corrupt_ram(v, word, u_ram[word]);
      ++events_;
    }
  }
}

void Adversary::churn_edges(Engine& engine, std::size_t adds, std::size_t removes,
                            std::size_t dmax) {
  const std::size_t n = engine.graph().n();
  if (n < 2) return;
  std::size_t guard = 0;
  std::size_t done = 0;
  while (done < adds && guard < 20 * adds + 50) {
    ++guard;
    const auto u = static_cast<graph::Vertex>(rng_.below(n));
    const auto v = static_cast<graph::Vertex>(rng_.below(n));
    if (u == v) continue;
    if (engine.graph().degree(u) >= dmax || engine.graph().degree(v) >= dmax) continue;
    if (engine.add_edge(u, v)) {
      ++done;
      ++events_;
    }
  }
  guard = 0;
  done = 0;
  while (done < removes && guard < 20 * removes + 50 && engine.graph().m() > 0) {
    ++guard;
    const auto u = static_cast<graph::Vertex>(rng_.below(n));
    const auto nbrs = engine.graph().neighbors(u);
    if (nbrs.empty()) continue;
    const graph::Vertex v = nbrs[rng_.below(nbrs.size())];
    if (engine.remove_edge(u, v)) {
      ++done;
      ++events_;
    }
  }
}

void Adversary::churn_vertices(Engine& engine, std::size_t count, std::size_t reconnect,
                               std::size_t dmax) {
  const std::size_t n = engine.graph().n();
  if (n == 0) return;
  for (std::size_t i = 0; i < count; ++i) {
    const auto v = static_cast<graph::Vertex>(rng_.below(n));
    engine.reset_vertex(v);
    ++events_;
    std::size_t guard = 0;
    std::size_t added = 0;
    while (added < reconnect && guard < 20 * reconnect + 50) {
      ++guard;
      const auto u = static_cast<graph::Vertex>(rng_.below(n));
      if (u == v) continue;
      if (engine.graph().degree(u) >= dmax || engine.graph().degree(v) >= dmax) {
        continue;
      }
      // Reconnect edges are adversarial topology changes like any other, so
      // they count as events — RunReport::fault_events stays equal to
      // events() however a report is rolled up.
      if (engine.add_edge(u, v)) {
        ++added;
        ++events_;
      }
    }
  }
}

std::size_t PeriodicAdversary::inject(Engine& engine, std::size_t round) {
  // Round 0 is the initial configuration — the adversary only acts between
  // executed rounds, so a period that divides 0 must not fire before round 1.
  if (round == 0) return 0;
  if (schedule_.period == 0 || round > schedule_.last_round) return 0;
  if (round % schedule_.period != 0) return 0;
  const std::size_t before = adversary_.events();
  if (schedule_.corrupt > 0) {
    const std::uint64_t range = schedule_.value_range == 0
                                    ? std::numeric_limits<std::uint64_t>::max()
                                    : schedule_.value_range;
    adversary_.corrupt_random(engine, schedule_.corrupt, range);
  }
  if (schedule_.clones > 0) {
    adversary_.clone_neighbor(engine, schedule_.clones);
  }
  if (schedule_.edge_adds > 0 || schedule_.edge_removes > 0) {
    adversary_.churn_edges(engine, schedule_.edge_adds, schedule_.edge_removes,
                           schedule_.dmax);
  }
  return adversary_.events() - before;
}

}  // namespace agc::runtime
