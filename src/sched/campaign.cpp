#include "agc/sched/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "agc/exec/executor.hpp"
#include "agc/exec/thread_pool.hpp"
#include "agc/obs/event_sink.hpp"

namespace agc::sched {

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::invalid_argument("campaign: " + what);
}

std::uint64_t parse_u64(const std::string& key, const std::string& text) {
  char* end = nullptr;
  const auto v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') bad("bad integer for " + key);
  return v;
}

std::uint32_t parse_ppm(const std::string& key, const std::string& text) {
  char* end = nullptr;
  const double p = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || p < 0.0 || p > 1.0) {
    bad(key + " must be a probability in [0,1]");
  }
  return static_cast<std::uint32_t>(p * 1'000'000.0);
}

double parse_double(const std::string& key, const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0' || v <= 0.0) {
    bad(key + " must be a positive number");
  }
  return v;
}

/// Shortest %.*g spelling that round-trips (same scheme as GraphSpec).
std::string fmt_double(double v) {
  char buf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

const char* model_name(runtime::Model m) {
  switch (m) {
    case runtime::Model::LOCAL: return "local";
    case runtime::Model::CONGEST: return "congest";
    default: return "setlocal";
  }
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::uint64_t attempt_seed(std::uint64_t base, std::size_t attempt) noexcept {
  if (attempt <= 1) return base;
  // splitmix64 finalizer over (base, attempt) — a fresh but reproducible
  // stream per retry.
  std::uint64_t z = base + 0x9e3779b97f4a7c15ULL * attempt;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// --- Campaign building ------------------------------------------------------

std::size_t Campaign::add(JobSpec job) {
  jobs_.push_back(std::move(job));
  return jobs_.size() - 1;
}

void Campaign::add_grid(const std::vector<std::string>& algorithms,
                        const std::vector<graph::GraphSpec>& graphs,
                        const std::vector<std::uint64_t>& seeds,
                        const JobSpec& base) {
  for (const auto& algo : algorithms) {
    for (const auto& g : graphs) {
      for (const auto seed : seeds) {
        JobSpec job = base;
        job.algorithm = algo;
        job.graph = g;
        job.seed = seed;
        job.deps.clear();
        jobs_.push_back(std::move(job));
      }
    }
  }
}

void Campaign::depend(std::size_t job, std::size_t dep) {
  if (job >= jobs_.size() || dep >= jobs_.size()) bad("depend(): no such job");
  if (job == dep) bad("a job cannot depend on itself");
  jobs_[job].deps.push_back(dep);
}

// --- File format ------------------------------------------------------------

Campaign Campaign::parse(std::istream& in) {
  Campaign c;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream toks(line);
    std::string tok;
    JobSpec job;
    bool saw_algo = false, saw_graph = false, comment = false;
    while (toks >> tok && !comment) {
      if (tok[0] == '#') {
        comment = true;
        break;
      }
      const auto eq = tok.find('=');
      if (eq == std::string::npos) {
        bad("line " + std::to_string(lineno) + ": expected key=value, got '" +
            tok + "'");
      }
      const std::string key = tok.substr(0, eq);
      const std::string val = tok.substr(eq + 1);
      if (key == "algo") {
        job.algorithm = val;
        saw_algo = true;
      } else if (key == "graph") {
        job.graph = graph::GraphSpec::parse(val);
        saw_graph = true;
      } else if (key == "seed") {
        job.seed = parse_u64(key, val);
      } else if (key == "tag") {
        job.tag = val;
      } else if (key == "model") {
        if (val == "local") {
          job.opts.model = runtime::Model::LOCAL;
        } else if (val == "congest") {
          job.opts.model = runtime::Model::CONGEST;
        } else if (val == "setlocal") {
          job.opts.model = runtime::Model::SET_LOCAL;
        } else {
          bad("unknown model '" + val + "'");
        }
      } else if (key == "congest") {
        job.opts.congest_bits = static_cast<std::uint32_t>(parse_u64(key, val));
      } else if (key == "max-rounds") {
        job.opts.max_rounds = parse_u64(key, val);
      } else if (key == "idspace") {
        job.id_space_factor = parse_u64(key, val);
      } else if (key == "deps") {
        std::istringstream ds(val);
        std::string d;
        while (std::getline(ds, d, ',')) {
          const auto dep = parse_u64(key, d);
          if (dep >= c.size()) {
            bad("line " + std::to_string(lineno) +
                ": deps may only reference earlier lines");
          }
          job.deps.push_back(dep);
        }
      } else if (key == "chan-drop") {
        job.faults.channel.drop_per_million = parse_ppm(key, val);
      } else if (key == "chan-corrupt") {
        job.faults.channel.corrupt_per_million = parse_ppm(key, val);
      } else if (key == "chan-dup") {
        job.faults.channel.duplicate_per_million = parse_ppm(key, val);
      } else if (key == "chan-delay") {
        job.faults.channel.delay_per_million = parse_ppm(key, val);
      } else if (key == "chan-first") {
        job.faults.channel.first_round = parse_u64(key, val);
      } else if (key == "chan-last") {
        job.faults.channel.last_round = parse_u64(key, val);
      } else if (key == "adv-period") {
        job.faults.periodic.period = parse_u64(key, val);
      } else if (key == "adv-last") {
        job.faults.periodic.last_round = parse_u64(key, val);
      } else if (key == "adv-corrupt") {
        job.faults.periodic.corrupt = parse_u64(key, val);
      } else if (key == "adv-range") {
        job.faults.periodic.value_range = parse_u64(key, val);
      } else if (key == "adv-clones") {
        job.faults.periodic.clones = parse_u64(key, val);
      } else if (key == "adv-eadds") {
        job.faults.periodic.edge_adds = parse_u64(key, val);
      } else if (key == "adv-eremoves") {
        job.faults.periodic.edge_removes = parse_u64(key, val);
      } else if (key == "adv-dmax") {
        job.faults.periodic.dmax = parse_u64(key, val);
      } else if (key == "out-lo") {
        job.faults.zoo.outage.lo = static_cast<graph::Vertex>(parse_u64(key, val));
      } else if (key == "out-hi") {
        job.faults.zoo.outage.hi = static_cast<graph::Vertex>(parse_u64(key, val));
      } else if (key == "out-first") {
        job.faults.zoo.outage.first_round = parse_u64(key, val);
      } else if (key == "out-last") {
        job.faults.zoo.outage.last_round = parse_u64(key, val);
      } else if (key == "flap-down") {
        job.faults.zoo.flap.down_per_million = parse_ppm(key, val);
      } else if (key == "flap-up") {
        job.faults.zoo.flap.up_per_million = parse_ppm(key, val);
      } else if (key == "flap-first") {
        job.faults.zoo.flap.first_round = parse_u64(key, val);
      } else if (key == "flap-last") {
        job.faults.zoo.flap.last_round = parse_u64(key, val);
      } else if (key == "byz-liars") {
        job.faults.zoo.byz.liars_per_million = parse_ppm(key, val);
      } else if (key == "byz-rate") {
        job.faults.zoo.byz.lie_per_million = parse_ppm(key, val);
      } else if (key == "byz-first") {
        job.faults.zoo.byz.first_round = parse_u64(key, val);
      } else if (key == "byz-last") {
        job.faults.zoo.byz.last_round = parse_u64(key, val);
      } else if (key == "adapt-period") {
        job.faults.zoo.adapt.period = parse_u64(key, val);
      } else if (key == "adapt-count") {
        job.faults.zoo.adapt.count = parse_u64(key, val);
      } else if (key == "adapt-last") {
        job.faults.zoo.adapt.last_round = parse_u64(key, val);
      } else if (key == "adapt-target") {
        if (val == "degree") {
          job.faults.zoo.adapt.target =
              faultlab::AdaptiveConfig::Target::HighestDegree;
        } else if (val == "recent") {
          job.faults.zoo.adapt.target =
              faultlab::AdaptiveConfig::Target::RecentlyRecolored;
        } else {
          bad("adapt-target must be 'degree' or 'recent'");
        }
      } else if (key == "churn-events") {
        job.faults.zoo.churn.events = parse_u64(key, val);
      } else if (key == "churn-alpha") {
        job.faults.zoo.churn.alpha = parse_double(key, val);
      } else if (key == "churn-attach") {
        job.faults.zoo.churn.attach = parse_u64(key, val);
      } else if (key == "churn-resets") {
        job.faults.zoo.churn.resets_per_million = parse_ppm(key, val);
      } else if (key == "churn-first") {
        job.faults.zoo.churn.first_round = parse_u64(key, val);
      } else if (key == "churn-last") {
        job.faults.zoo.churn.last_round = parse_u64(key, val);
      } else if (key == "churn-dmax") {
        job.faults.zoo.churn.dmax = parse_u64(key, val);
      } else if (key == "churn-grow") {
        job.faults.zoo.churn.grow = parse_u64(key, val);
      } else if (key == "plan") {
        job.faults.plan_path = val;
      } else if (key == "plan-out") {
        job.faults.plan_out = val;
      } else if (key == "budget") {
        job.faults.recovery_budget = parse_u64(key, val);
      } else if (key == "confirm") {
        job.faults.confirm_rounds = parse_u64(key, val);
      } else {
        bad("line " + std::to_string(lineno) + ": unknown key '" + key + "'");
      }
    }
    if (!saw_algo && !saw_graph) continue;  // blank / comment-only line
    if (!saw_algo || !saw_graph) {
      bad("line " + std::to_string(lineno) + ": algo= and graph= are required");
    }
    const Runner* runner = find_runner(job.algorithm);
    if (runner == nullptr) bad("unknown algorithm '" + job.algorithm + "'");
    if (job.faults.any() && !runner->faults) {
      bad("algorithm '" + job.algorithm + "' does not run fault specs");
    }
    c.jobs_.push_back(std::move(job));
  }
  return c;
}

Campaign Campaign::parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("campaign: cannot open " + path);
  return parse(in);
}

std::string Campaign::format() const {
  const JobSpec dflt;
  std::string out;
  for (const auto& job : jobs_) {
    out += "algo=" + job.algorithm;
    out += " graph=" + job.graph.to_string();
    auto u64 = [&](const char* key, std::uint64_t v, std::uint64_t d) {
      if (v != d) out += std::string(" ") + key + "=" + std::to_string(v);
    };
    auto prob = [&](const char* key, std::uint32_t ppm) {
      if (ppm != 0) {
        out += std::string(" ") + key + "=" + fmt_double(ppm / 1'000'000.0);
      }
    };
    u64("seed", job.seed, dflt.seed);
    if (!job.tag.empty()) out += " tag=" + job.tag;
    if (job.opts.model != dflt.opts.model) {
      out += std::string(" model=") + model_name(job.opts.model);
    }
    u64("congest", job.opts.congest_bits, dflt.opts.congest_bits);
    u64("max-rounds", job.opts.max_rounds, dflt.opts.max_rounds);
    u64("idspace", job.id_space_factor, dflt.id_space_factor);
    if (!job.deps.empty()) {
      out += " deps=";
      for (std::size_t i = 0; i < job.deps.size(); ++i) {
        if (i > 0) out += ',';
        out += std::to_string(job.deps[i]);
      }
    }
    prob("chan-drop", job.faults.channel.drop_per_million);
    prob("chan-corrupt", job.faults.channel.corrupt_per_million);
    prob("chan-dup", job.faults.channel.duplicate_per_million);
    prob("chan-delay", job.faults.channel.delay_per_million);
    u64("chan-first", job.faults.channel.first_round, dflt.faults.channel.first_round);
    u64("chan-last", job.faults.channel.last_round, dflt.faults.channel.last_round);
    u64("adv-period", job.faults.periodic.period, dflt.faults.periodic.period);
    u64("adv-last", job.faults.periodic.last_round, dflt.faults.periodic.last_round);
    u64("adv-corrupt", job.faults.periodic.corrupt, 0);
    u64("adv-range", job.faults.periodic.value_range, 0);
    u64("adv-clones", job.faults.periodic.clones, 0);
    u64("adv-eadds", job.faults.periodic.edge_adds, 0);
    u64("adv-eremoves", job.faults.periodic.edge_removes, 0);
    u64("adv-dmax", job.faults.periodic.dmax, 0);
    // Zoo families render only when they differ from the all-disabled
    // default, keeping clean-wire lines byte-stable.
    auto prob_dflt = [&](const char* key, std::uint32_t ppm, std::uint32_t d) {
      if (ppm != d) {
        out += std::string(" ") + key + "=" + fmt_double(ppm / 1'000'000.0);
      }
    };
    const faultlab::ZooSpec zdflt;
    const faultlab::ZooSpec& zoo = job.faults.zoo;
    u64("out-lo", zoo.outage.lo, zdflt.outage.lo);
    u64("out-hi", zoo.outage.hi, zdflt.outage.hi);
    u64("out-first", zoo.outage.first_round, zdflt.outage.first_round);
    u64("out-last", zoo.outage.last_round, zdflt.outage.last_round);
    prob_dflt("flap-down", zoo.flap.down_per_million, zdflt.flap.down_per_million);
    prob_dflt("flap-up", zoo.flap.up_per_million, zdflt.flap.up_per_million);
    u64("flap-first", zoo.flap.first_round, zdflt.flap.first_round);
    u64("flap-last", zoo.flap.last_round, zdflt.flap.last_round);
    prob_dflt("byz-liars", zoo.byz.liars_per_million, zdflt.byz.liars_per_million);
    prob_dflt("byz-rate", zoo.byz.lie_per_million, zdflt.byz.lie_per_million);
    u64("byz-first", zoo.byz.first_round, zdflt.byz.first_round);
    u64("byz-last", zoo.byz.last_round, zdflt.byz.last_round);
    u64("adapt-period", zoo.adapt.period, zdflt.adapt.period);
    u64("adapt-count", zoo.adapt.count, zdflt.adapt.count);
    u64("adapt-last", zoo.adapt.last_round, zdflt.adapt.last_round);
    if (zoo.adapt.target != zdflt.adapt.target) out += " adapt-target=recent";
    u64("churn-events", zoo.churn.events, zdflt.churn.events);
    if (zoo.churn.alpha != zdflt.churn.alpha) {
      out += " churn-alpha=" + fmt_double(zoo.churn.alpha);
    }
    u64("churn-attach", zoo.churn.attach, zdflt.churn.attach);
    prob_dflt("churn-resets", zoo.churn.resets_per_million,
              zdflt.churn.resets_per_million);
    u64("churn-first", zoo.churn.first_round, zdflt.churn.first_round);
    u64("churn-last", zoo.churn.last_round, zdflt.churn.last_round);
    u64("churn-dmax", zoo.churn.dmax, zdflt.churn.dmax);
    u64("churn-grow", zoo.churn.grow, zdflt.churn.grow);
    if (!job.faults.plan_path.empty()) out += " plan=" + job.faults.plan_path;
    if (!job.faults.plan_out.empty()) out += " plan-out=" + job.faults.plan_out;
    u64("budget", job.faults.recovery_budget, dflt.faults.recovery_budget);
    u64("confirm", job.faults.confirm_rounds, dflt.faults.confirm_rounds);
    out += '\n';
  }
  return out;
}

// --- JSONL rendering --------------------------------------------------------

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  obs::json_escape(s, out);
  out += '"';
}

/// Integral doubles render without a fraction so counts stay grep-able.
std::string fmt_value(double v) {
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::abs(v) < 9.0e15) {
    return std::to_string(static_cast<long long>(v));
  }
  return fmt_double(v);
}

}  // namespace

std::string CampaignReport::to_jsonl(bool include_timing) const {
  std::string out;
  std::uint64_t fault_total = 0;
  for (const auto& r : jobs) {
    fault_total += r.fault_events;
    out += "{\"job\":" + std::to_string(r.job);
    out += ",\"algorithm\":";
    append_json_string(out, r.algorithm);
    out += ",\"graph\":";
    append_json_string(out, r.graph);
    out += ",\"tag\":";
    append_json_string(out, r.tag);
    out += ",\"seed\":" + std::to_string(r.seed);
    out += std::string(",\"ok\":") + (r.ok ? "true" : "false");
    out += std::string(",\"converged\":") + (r.converged ? "true" : "false");
    out += ",\"rounds\":" + std::to_string(r.rounds);
    out += ",\"palette\":" + std::to_string(r.palette);
    out += ",\"messages\":" + std::to_string(r.metrics.messages);
    out += ",\"total_bits\":" + std::to_string(r.metrics.total_bits);
    out += ",\"max_edge_bits\":" + std::to_string(r.metrics.max_edge_bits);
    out += ",\"fault_events\":" + std::to_string(r.fault_events);
    out += ",\"attempts\":" + std::to_string(r.attempts);
    out += std::string(",\"cache_hit\":") + (r.cache_hit ? "true" : "false");
    out += std::string(",\"watchdog\":") + (r.watchdog ? "true" : "false");
    out += ",\"error\":";
    append_json_string(out, r.error);
    out += ",\"values\":{";
    for (std::size_t i = 0; i < r.values.size(); ++i) {
      if (i > 0) out += ',';
      append_json_string(out, r.values[i].first);
      out += ':' + fmt_value(r.values[i].second);
    }
    out += '}';
    if (include_timing) out += ",\"wall_ns\":" + std::to_string(r.wall_ns);
    out += "}\n";
  }
  out += "{\"campaign\":{\"jobs\":" + std::to_string(jobs.size());
  out += ",\"ok\":" + std::to_string(ok_count);
  out += ",\"rounds\":" + std::to_string(totals.rounds);
  out += ",\"messages\":" + std::to_string(totals.messages);
  out += ",\"total_bits\":" + std::to_string(totals.total_bits);
  out += ",\"max_edge_bits\":" + std::to_string(totals.max_edge_bits);
  out += ",\"fault_events\":" + std::to_string(fault_total);
  out += ",\"cache_hits\":" + std::to_string(cache_hits);
  out += ",\"cache_misses\":" + std::to_string(cache_misses);
  out += ",\"retries\":" + std::to_string(retries);
  if (include_timing) out += ",\"wall_ns\":" + std::to_string(wall_ns);
  out += "}}\n";
  return out;
}

// --- Execution --------------------------------------------------------------

namespace {

/// One distinct GraphSpec's shared immutable graph, built at most once by
/// whichever job needs it first (std::call_once handles racing workers; a
/// throwing build is retried by the next job, per call_once semantics).
/// Stored as the frozen CSR: runners read through GraphView, so the cache
/// never needs adjacency vectors, and the admission estimate in
/// GraphSpec::estimated_bytes models exactly this layout (docs/SCALE.md).
struct CacheEntry {
  std::once_flag once;
  graph::FrozenGraph g;
};

JobResult execute_job(std::size_t id, const JobSpec& spec,
                      graph::GraphView g, bool cache_hit,
                      const std::shared_ptr<runtime::RoundExecutor>& executor,
                      std::size_t max_attempts) {
  const Runner* runner = find_runner(spec.algorithm);
  JobResult r;
  const auto start = now_ns();
  for (std::size_t attempt = 1;; ++attempt) {
    RunnerContext ctx{g, spec, spec.opts, attempt};
    // The scheduler owns these hooks: within-run sharding comes from the
    // worker's executor, faults from spec.faults, aggregation from the fold.
    ctx.opts.executor = executor;
    ctx.opts.adversary = nullptr;
    ctx.opts.channel = nullptr;
    ctx.opts.sink = nullptr;
    try {
      r = runner->fn(ctx);
    } catch (const std::exception& e) {
      r = JobResult{};
      r.ok = false;
      r.error = e.what();
    }
    r.attempts = attempt;
    // Retry only what retrying can change: a watchdog violation under
    // re-rolled fault seeds.
    if (r.ok || !r.watchdog || attempt >= max_attempts) break;
  }
  r.job = id;
  r.algorithm = spec.algorithm;
  r.graph = spec.graph.to_string();
  r.tag = spec.tag;
  r.seed = spec.seed;
  r.cache_hit = cache_hit;
  r.wall_ns = now_ns() - start;
  return r;
}

}  // namespace

CampaignReport run_campaign(const Campaign& campaign,
                            const ScheduleOptions& sopts) {
  const auto wall_start = now_ns();
  const auto& jobs = campaign.jobs();
  const std::size_t n = jobs.size();

  // Validate up front so nothing runs on a malformed campaign.
  std::vector<std::size_t> indegree(n, 0);
  std::vector<std::vector<std::size_t>> dependents(n);
  for (std::size_t j = 0; j < n; ++j) {
    const Runner* runner = find_runner(jobs[j].algorithm);
    if (runner == nullptr) bad("unknown algorithm '" + jobs[j].algorithm + "'");
    if (jobs[j].faults.any() && !runner->faults) {
      bad("algorithm '" + jobs[j].algorithm + "' does not run fault specs");
    }
    for (const auto dep : jobs[j].deps) {
      if (dep >= n) bad("job " + std::to_string(j) + " depends on missing job");
      if (dep == j) bad("job " + std::to_string(j) + " depends on itself");
      ++indegree[j];
      dependents[dep].push_back(j);
    }
  }
  {
    auto indeg = indegree;
    std::vector<std::size_t> queue;
    for (std::size_t j = 0; j < n; ++j) {
      if (indeg[j] == 0) queue.push_back(j);
    }
    std::size_t seen = 0;
    while (seen < queue.size()) {
      const auto j = queue[seen++];
      for (const auto d : dependents[j]) {
        if (--indeg[d] == 0) queue.push_back(d);
      }
    }
    if (seen != n) bad("dependency cycle");
  }

  // The graph cache: one entry per distinct content hash, plus deterministic
  // hit accounting — a job is a hit iff an earlier job wants the same graph,
  // independent of which worker actually built it.
  std::unordered_map<std::uint64_t, CacheEntry> cache;
  std::unordered_map<std::uint64_t, std::size_t> first_with;
  std::vector<std::size_t> bytes(n, 0);
  for (std::size_t j = 0; j < n; ++j) {
    const auto h = jobs[j].graph.content_hash();
    cache.try_emplace(h);
    first_with.try_emplace(h, j);
    bytes[j] = jobs[j].graph.estimated_bytes();
  }

  CampaignReport report;
  report.jobs.resize(n);
  report.cache_misses = cache.size();
  report.cache_hits = n - cache.size();

  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    std::set<std::size_t> ready;
    std::size_t started = 0;
    std::size_t bytes_in_flight = 0;
    std::size_t peak_bytes = 0;
  } shared;
  for (std::size_t j = 0; j < n; ++j) {
    if (indegree[j] == 0) shared.ready.insert(j);
  }

  const std::size_t budget = sopts.memory_budget_bytes;
  auto worker_body = [&](std::size_t /*worker*/) {
    // Level 2 of the scheduler: each worker owns one sharded executor and
    // reuses it across every job it steals.
    const auto executor = exec::make_executor(
        sopts.threads_per_job == 0 ? 1 : sopts.threads_per_job);
    std::unique_lock<std::mutex> lock(shared.mu);
    while (true) {
      // Lowest eligible job id first: admission is by id, so the serial
      // order is also the 1-worker order.
      auto eligible = shared.ready.end();
      for (auto it = shared.ready.begin(); it != shared.ready.end(); ++it) {
        if (budget == 0 || shared.bytes_in_flight == 0 ||
            shared.bytes_in_flight + bytes[*it] <= budget) {
          eligible = it;
          break;
        }
      }
      if (eligible == shared.ready.end()) {
        if (shared.started == n) return;  // nothing left for this worker
        shared.cv.wait(lock);
        continue;
      }
      const std::size_t j = *eligible;
      shared.ready.erase(eligible);
      ++shared.started;
      shared.bytes_in_flight += bytes[j];
      shared.peak_bytes = std::max(shared.peak_bytes, shared.bytes_in_flight);
      lock.unlock();

      auto& entry = cache.at(jobs[j].graph.content_hash());
      JobResult result;
      try {
        std::call_once(entry.once, [&] { entry.g = jobs[j].graph.build_frozen(); });
        result = execute_job(j, jobs[j], entry.g,
                             first_with.at(jobs[j].graph.content_hash()) != j,
                             executor, std::max<std::size_t>(1, sopts.max_attempts));
      } catch (const std::exception& e) {
        result.job = j;
        result.algorithm = jobs[j].algorithm;
        result.graph = jobs[j].graph.to_string();
        result.tag = jobs[j].tag;
        result.seed = jobs[j].seed;
        result.error = e.what();
      }

      lock.lock();
      report.jobs[j] = std::move(result);
      shared.bytes_in_flight -= bytes[j];
      for (const auto d : dependents[j]) {
        if (--indegree[d] == 0) shared.ready.insert(d);
      }
      shared.cv.notify_all();
    }
  };

  const std::size_t workers =
      std::max<std::size_t>(1, std::min(sopts.threads, std::max<std::size_t>(n, 1)));
  if (workers <= 1) {
    worker_body(0);
  } else {
    exec::ThreadPool pool(workers);
    pool.run(workers, worker_body);
  }

  // Deterministic fold: job-id order, whatever order the jobs finished in.
  for (const auto& r : report.jobs) {
    if (r.ok) ++report.ok_count;
    report.retries += r.attempts - 1;
    report.totals.merge(r.metrics);
  }
  report.peak_bytes_in_flight = shared.peak_bytes;
  report.wall_ns = now_ns() - wall_start;

  if (sopts.sink != nullptr) {
    sopts.sink->emit(obs::Event{obs::EventKind::RunStart, 0, "campaign", n, 0});
    for (const auto& r : report.jobs) {
      // The runner's static name keeps the Event::label lifetime contract.
      const Runner* runner = find_runner(r.algorithm);
      sopts.sink->emit(obs::Event{
          obs::EventKind::StageEnd, r.rounds,
          runner != nullptr ? runner->name : "job", r.job,
          sopts.include_timing ? r.wall_ns : 0});
    }
    sopts.sink->emit(obs::Event{obs::EventKind::RunEnd, report.totals.rounds,
                                "campaign", report.ok_count,
                                sopts.include_timing ? report.wall_ns : 0});
  }
  return report;
}

}  // namespace agc::sched
