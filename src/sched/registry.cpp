#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "agc/coloring/registry.hpp"
#include "agc/coloring/symmetry.hpp"
#include "agc/faultlab/channel.hpp"
#include "agc/faultlab/harness.hpp"
#include "agc/faultlab/plan.hpp"
#include "agc/faultlab/zoo.hpp"
#include "agc/runtime/engine.hpp"
#include "agc/runtime/faults.hpp"
#include "agc/sched/campaign.hpp"
#include "agc/selfstab/ss_coloring.hpp"
#include "agc/selfstab/ss_line.hpp"
#include "agc/selfstab/ss_mis.hpp"

/// \file registry.cpp
/// The built-in campaign runners: every algorithm entry point the CLI can
/// drive, adapted to the scheduler's RunnerContext -> JobResult shape.  Each
/// runner is a pure function of (graph, JobSpec, attempt) — nothing here may
/// read clocks, global state, or scheduling context, or the campaign
/// determinism contract breaks.

namespace agc::sched {

namespace {

/// Stream separator so the wire and RAM/topology adversaries never share a
/// seed even though both derive from JobSpec::seed.
constexpr std::uint64_t kChannelStream = 0x9e3779b97f4a7c15ULL;

std::size_t distinct_colors(std::vector<graph::Color> colors) {
  std::sort(colors.begin(), colors.end());
  return static_cast<std::size_t>(
      std::unique(colors.begin(), colors.end()) - colors.begin());
}

double d(std::uint64_t v) { return static_cast<double>(v); }

JobResult from_pipeline(const coloring::PipelineReport& rep) {
  JobResult r;
  static_cast<runtime::RunReport&>(r) = rep;
  r.ok = rep.converged && rep.proper;
  r.palette = rep.palette;
  r.values = {{"rounds_linial", d(rep.rounds_linial)},
              {"rounds_core", d(rep.rounds_core)},
              {"rounds_finish", d(rep.rounds_finish)},
              {"proper_each_round", rep.proper_each_round ? 1.0 : 0.0}};
  return r;
}

coloring::PipelineOptions pipeline_options(const RunnerContext& ctx) {
  coloring::PipelineOptions po(ctx.opts);
  po.id_space_factor = ctx.spec.id_space_factor;
  return po;
}

/// The one coloring runner: every algorithm in coloring::algos() dispatches
/// through here by its own registry name — no per-algorithm switch.  The job
/// seed flows into RunOptions::seed (rotated per retry attempt), which is
/// how randomized entries like luby get their trajectory.
JobResult run_registered(const RunnerContext& ctx) {
  const coloring::AlgoSpec* algo = coloring::find_algo(ctx.spec.algorithm);
  if (algo == nullptr) {
    JobResult r;
    r.error = "unknown algorithm '" + ctx.spec.algorithm +
              "' (available: " + coloring::algo_list() + ")";
    return r;
  }
  coloring::PipelineOptions po = pipeline_options(ctx);
  po.run().seed = attempt_seed(ctx.spec.seed, ctx.attempt);
  return from_pipeline(algo->run(ctx.g, po));
}

JobResult run_mis(const RunnerContext& ctx) {
  const auto rep = coloring::maximal_independent_set(ctx.g, pipeline_options(ctx));
  JobResult r;
  static_cast<runtime::RunReport&>(r) = rep;
  r.ok = rep.valid;
  std::size_t size = 0;
  for (const bool b : rep.in_mis) size += b;
  r.values = {{"mis_size", d(size)},
              {"rounds_coloring", d(rep.rounds_coloring)},
              {"rounds_mis", d(rep.rounds_mis)}};
  return r;
}

JobResult run_matching(const RunnerContext& ctx) {
  const auto rep = coloring::maximal_matching(ctx.g, pipeline_options(ctx));
  JobResult r;
  static_cast<runtime::RunReport&>(r) = rep;
  r.ok = rep.valid;
  r.values = {{"matching_size", d(rep.matching.size())}};
  return r;
}

/// Which self-stabilizing program a ss-* runner drives.  The fault plumbing
/// (recording, replay, zoo adversaries, watchdog) is identical across tasks;
/// only the installed program, legality check, and output metrics differ.
enum class SsTask { ColorODelta, ColorExact, Mis, Line };

JobResult run_ss(const RunnerContext& ctx, SsTask task) {
  const auto& g = ctx.g;
  const auto& fs = ctx.spec.faults;
  std::size_t delta = std::max<std::size_t>(g.max_degree(), 1);
  // The periodic adversary grows the topology up to its declared degree cap;
  // a palette sized from the seed graph alone becomes infeasible after an
  // adversarial edge add (ss-line's edge palette most of all), so the bound
  // must absorb the cap up front.
  if (fs.periodic.edge_adds + fs.periodic.clones > 0) {
    delta = std::max(delta, fs.periodic.dmax);
  }

  // Resolve the declarative churn knobs before sizing anything: arrivals need
  // headroom in both the ID space and the engine's n bound, and attachment
  // must respect the ROM degree bound the programs were configured with.
  faultlab::ZooSpec zoo = fs.zoo;
  std::size_t grow = 0;
  if (zoo.churn.enabled()) {
    zoo.churn.dmax = std::min(zoo.churn.dmax, delta);
    if (zoo.churn.grow > 0 && zoo.churn.max_vertices == 0) {
      grow = zoo.churn.grow;
      zoo.churn.max_vertices = g.n() + grow;
    } else if (zoo.churn.max_vertices > g.n()) {
      grow = zoo.churn.max_vertices - g.n();
    }
  }
  const std::uint64_t n_cap = std::max<std::uint64_t>(g.n() + grow, 1);

  const selfstab::PaletteMode mode = task == SsTask::ColorODelta
                                         ? selfstab::PaletteMode::ODelta
                                         : selfstab::PaletteMode::ExactDeltaPlusOne;
  const selfstab::SsConfig cfg(n_cap * ctx.spec.id_space_factor, delta, mode);
  const selfstab::SsLineConfig lcfg(n_cap, delta, selfstab::LineTask::EdgeColoring);

  runtime::EngineOptions eo;
  eo.id_space_factor = ctx.spec.id_space_factor;
  eo.delta_bound = delta;
  if (grow > 0) eo.n_bound = n_cap;
  runtime::Engine engine(g, runtime::Transport(runtime::Model::LOCAL), eo);
  engine.set_executor(ctx.opts.executor);
  switch (task) {
    case SsTask::Mis:
      engine.install(selfstab::ss_mis_factory(cfg));
      break;
    case SsTask::Line:
      engine.install(selfstab::ss_line_factory(lcfg));
      break;
    default:
      engine.install(selfstab::ss_coloring_factory(cfg));
      break;
  }

  JobResult r;
  if (!fs.any()) {
    switch (task) {
      case SsTask::Mis: {
        const auto rep = selfstab::run_until_mis_stable(engine, cfg, ctx.opts,
                                                        fs.confirm_rounds);
        static_cast<runtime::RunReport&>(r) = rep;
        r.ok = rep.stabilized;
        r.palette = distinct_colors(selfstab::current_colors(engine));
        std::size_t size = 0;
        for (const bool b : rep.in_mis) size += b;
        r.values = {{"rounds_to_stable", d(rep.rounds_to_stable)},
                    {"mis_size", d(size)}};
        break;
      }
      case SsTask::Line: {
        const auto rep = selfstab::run_until_line_stable(engine, lcfg, ctx.opts,
                                                         fs.confirm_rounds);
        static_cast<runtime::RunReport&>(r) = rep;
        r.ok = rep.stabilized;
        r.palette = distinct_colors(selfstab::current_edge_colors(engine));
        r.values = {{"rounds_to_stable", d(rep.rounds_to_stable)}};
        break;
      }
      default: {
        const auto rep = selfstab::run_until_stable(engine, cfg, ctx.opts,
                                                    fs.confirm_rounds);
        static_cast<runtime::RunReport&>(r) = rep;
        r.ok = rep.stabilized;
        r.palette = distinct_colors(rep.colors);
        r.values = {{"rounds_to_stable", d(rep.rounds_to_stable)}};
        break;
      }
    }
    return r;
  }

  runtime::RunOptions ro = ctx.opts;
  faultlab::FaultPlanRecorder recorder;
  std::unique_ptr<faultlab::PlanAdversary> plan_adv;
  std::unique_ptr<faultlab::ChannelPlayback> playback;
  std::unique_ptr<runtime::PeriodicAdversary> periodic;
  std::unique_ptr<faultlab::ChannelAdversary> channel;
  faultlab::ChannelHookChain hook_chain;
  faultlab::FaultAdversaryChain adv_chain;
  faultlab::FaultPlan plan;
  const bool record = !fs.plan_out.empty() && fs.plan_path.empty();
  if (record) engine.set_fault_recorder(&recorder);
  if (!fs.plan_path.empty()) {
    plan = faultlab::FaultPlan::load(fs.plan_path);
    plan_adv = std::make_unique<faultlab::PlanAdversary>(plan);
    playback = std::make_unique<faultlab::ChannelPlayback>(plan.events);
    ro.adversary = plan_adv.get();
    ro.channel = playback.get();
  } else {
    runtime::FaultEventSink* sink =
        record ? static_cast<runtime::FaultEventSink*>(&recorder) : nullptr;
    if (fs.channel.total_per_million() > 0) {
      auto ccfg = fs.channel;
      ccfg.seed = attempt_seed(ctx.spec.seed ^ kChannelStream, ctx.attempt);
      channel = std::make_unique<faultlab::ChannelAdversary>(ccfg, sink);
      ro.channel = channel.get();
    }
    if (zoo.any_channel()) {
      // Classic channel noise stays first in the chain so its per-message
      // decisions match the standalone trajectory; zoo hooks stack after it.
      if (channel) hook_chain.add(*channel);
      faultlab::append_channel_hooks(
          hook_chain, zoo, attempt_seed(ctx.spec.seed, ctx.attempt), sink);
      ro.channel = &hook_chain;
    }
    if (fs.periodic.corrupt + fs.periodic.clones + fs.periodic.edge_adds +
            fs.periodic.edge_removes >
        0) {
      periodic = std::make_unique<runtime::PeriodicAdversary>(
          attempt_seed(ctx.spec.seed, ctx.attempt), fs.periodic);
      ro.adversary = periodic.get();
    }
    if (zoo.any_state()) {
      if (periodic) adv_chain.add(*periodic);
      faultlab::append_state_adversaries(
          adv_chain, zoo, attempt_seed(ctx.spec.seed, ctx.attempt));
      ro.adversary = &adv_chain;
    }
  }

  faultlab::StabilizationSpec sspec;
  switch (task) {
    case SsTask::Mis:
      sspec.check = faultlab::mis_check(cfg);
      sspec.outputs = faultlab::mis_outputs();
      break;
    case SsTask::Line:
      sspec.check = faultlab::line_check(lcfg);
      sspec.outputs = faultlab::line_outputs();
      break;
    default:
      sspec.check = faultlab::coloring_check(cfg);
      sspec.outputs = faultlab::coloring_outputs();
      break;
  }
  sspec.recovery_budget = fs.recovery_budget;
  sspec.confirm_rounds = fs.confirm_rounds;
  const auto out = faultlab::run_stabilization(engine, ro, sspec);
  engine.set_fault_recorder(nullptr);

  static_cast<runtime::RunReport&>(r) = out;
  r.ok = out.recovered;
  r.palette = task == SsTask::Line
                  ? distinct_colors(selfstab::current_edge_colors(engine))
                  : distinct_colors(selfstab::current_colors(engine));
  r.values = {{"recovery_rounds", d(out.recovery_rounds)},
              {"adjusted", d(out.adjusted.size())},
              {"last_fault_round", d(out.last_fault_round)}};
  if (task == SsTask::Mis) {
    std::size_t size = 0;
    for (const bool b : selfstab::current_mis(engine)) size += b;
    r.values.push_back({"mis_size", d(size)});
  }
  if (!out.recovered) {
    r.watchdog = true;
    char buf[160];
    std::snprintf(buf, sizeof buf, "%s at round %llu (u=%u v=%u value=%llu)",
                  faultlab::to_string(out.violation.kind),
                  static_cast<unsigned long long>(out.violation.round),
                  out.violation.u, out.violation.v,
                  static_cast<unsigned long long>(out.violation.value));
    r.error = buf;
  }
  if (record) {
    if (!out.recovered) {
      recorder.take().save(fs.plan_out);
    } else {
      // A retried job that recovered leaves no stale reproducer behind.
      std::remove(fs.plan_out.c_str());
    }
  }
  return r;
}

JobResult run_ss_odelta(const RunnerContext& ctx) {
  return run_ss(ctx, SsTask::ColorODelta);
}

JobResult run_ss_exact(const RunnerContext& ctx) {
  return run_ss(ctx, SsTask::ColorExact);
}

JobResult run_ss_mis(const RunnerContext& ctx) {
  return run_ss(ctx, SsTask::Mis);
}

JobResult run_ss_line(const RunnerContext& ctx) {
  return run_ss(ctx, SsTask::Line);
}

/// The non-coloring runners keep bespoke entries; everything in
/// coloring::algos() rides the shared run_registered dispatcher.
const Runner kExtraRunners[] = {
    {"mis", "AG coloring + MIS decision wave", &run_mis, false},
    {"matching", "maximal matching via line-graph MIS", &run_matching, false},
    {"ss-color", "self-stabilizing O(Delta)-coloring under faults",
     &run_ss_odelta, true},
    {"ss-color-exact", "self-stabilizing exact (Delta+1)-coloring under faults",
     &run_ss_exact, true},
    {"ss-mis", "self-stabilizing MIS (coloring + decision wave) under faults",
     &run_ss_mis, true},
    {"ss-line", "self-stabilizing (2Delta-1)-edge-coloring on L(G) under faults",
     &run_ss_line, true},
};

std::vector<Runner> build_runners() {
  std::vector<Runner> out;
  for (const coloring::AlgoSpec& a : coloring::algos()) {
    out.push_back({a.name, a.summary, &run_registered, false});
  }
  out.insert(out.end(), std::begin(kExtraRunners), std::end(kExtraRunners));
  return out;
}

}  // namespace

std::span<const Runner> runners() {
  static const std::vector<Runner> all = build_runners();
  return all;
}

const Runner* find_runner(std::string_view name) {
  for (const auto& r : runners()) {
    if (name == r.name) return &r;
  }
  return nullptr;
}

}  // namespace agc::sched
