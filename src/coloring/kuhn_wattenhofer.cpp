#include "agc/coloring/kuhn_wattenhofer.hpp"

#include <algorithm>
#include <cassert>

namespace agc::coloring {

KwSchedule::KwSchedule(std::uint64_t initial_palette, std::size_t delta)
    : delta_(delta) {
  const std::uint64_t target = delta + 1;
  const std::uint64_t block = 2 * target;
  sizes_.push_back(std::max<std::uint64_t>(initial_palette, 1));
  while (sizes_.back() > target) {
    const std::uint64_t m = sizes_.back();
    const std::uint64_t blocks = (m + block - 1) / block;
    sizes_.push_back(blocks * target);
  }
  // offsets: last interval at 0, earlier intervals stacked above it.
  offsets_.assign(sizes_.size(), 0);
  for (std::size_t k = sizes_.size(); k-- > 0;) {
    if (k + 1 < sizes_.size()) offsets_[k] = offsets_[k + 1] + sizes_[k + 1];
  }
}

std::size_t KwSchedule::interval_of(Color c) const {
  for (std::size_t k = 0; k < sizes_.size(); ++k) {
    if (c >= offsets_[k]) {
      assert(c < offsets_[k] + sizes_[k]);
      return k;
    }
  }
  return sizes_.size() - 1;
}

std::size_t KwSchedule::round_bound() const {
  // Each interval drains in <= Delta+3 rounds once its neighborhood's higher
  // intervals are empty; the local gating pipelines, so the sum bounds it.
  return (phases() + 1) * (delta_ + 4) + 16;
}

Color KwRule::step(Color own, std::span<const Color> neighbors) const {
  const std::size_t last = sched_.phases();
  const std::size_t k = sched_.interval_of(own);
  if (k == last) return own;  // final interval

  const std::uint64_t target = sched_.delta() + 1;
  const std::uint64_t block_size = 2 * target;
  const std::uint64_t x = own - sched_.offset(k);
  const std::uint64_t block = x / block_size;
  const std::uint64_t pos = x % block_size;
  const std::uint64_t down_off = sched_.offset(k + 1);

  // Hold position while any neighbor is still in a higher interval: a late
  // arrival could otherwise land on a color this vertex vacated and collide
  // with it one interval further down.  This locally sequentializes the
  // phases without any global round knowledge.
  for (Color nc : neighbors) {
    if (sched_.interval_of(nc) < k) return own;
  }

  if (pos < target) {
    // Lower half: descend verbatim into the next interval.
    return down_off + block * target + pos;
  }

  // Upper half: act only as the block-local maximum.
  for (Color nc : neighbors) {
    if (sched_.interval_of(nc) != k) continue;
    const std::uint64_t nx = nc - sched_.offset(k);
    if (nx / block_size == block && nx > x) return own;
  }

  // Collect positions occupied by same-block neighbors in this interval and
  // the next one (vertices that already descended from this block).
  std::vector<bool> taken(target, false);
  for (Color nc : neighbors) {
    const std::size_t nk = sched_.interval_of(nc);
    if (nk == k) {
      const std::uint64_t nx = nc - sched_.offset(k);
      if (nx / block_size == block) {
        const std::uint64_t np = nx % block_size;
        if (np < target) taken[np] = true;
      }
    } else if (nk == k + 1) {
      const std::uint64_t ny = nc - down_off;
      if (ny / target == block) taken[ny % target] = true;
    }
  }
  for (std::uint64_t p = 0; p < target; ++p) {
    if (!taken[p]) return down_off + block * target + p;
  }
  // Unreachable: at most Delta neighbors exclude at most Delta of the
  // target = Delta+1 positions.
  assert(false);
  return own;
}

std::uint32_t KwRule::color_bits() const {
  return runtime::width_of(sched_.offset(0) + sched_.size(0) - 1);
}

runtime::IterativeResult kuhn_wattenhofer_reduce(graph::GraphView g,
                                                 std::vector<Color> initial,
                                                 std::size_t delta,
                                                 const runtime::IterativeOptions& opts) {
  const Color k = graph::max_color(initial) + 1;
  KwSchedule sched(k, delta);
  // Initial colors live in the top interval.
  const std::uint64_t top = sched.offset(0);
  for (Color& c : initial) c += top;
  KwRule rule(sched);
  runtime::IterativeOptions capped = opts;
  capped.max_rounds = std::min(opts.max_rounds, sched.round_bound());
  return run_locally_iterative(g, std::move(initial), rule, capped);
}

}  // namespace agc::coloring
