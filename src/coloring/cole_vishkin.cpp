#include "agc/coloring/cole_vishkin.hpp"

#include <bit>
#include <cassert>

#include "agc/runtime/message.hpp"

namespace agc::coloring::cv {

std::uint64_t step(std::uint64_t own, std::uint64_t pred) noexcept {
  assert(own != pred);
  const int i = std::countr_zero(own ^ pred);
  return 2 * static_cast<std::uint64_t>(i) + ((own >> i) & 1ULL);
}

int rounds_to_six(std::uint64_t id_space) noexcept {
  // Width recurrence: labels < 2^w map to labels <= 2*(w-1)+1 < 2^{w'}.
  std::uint64_t bound = id_space;
  int rounds = 0;
  while (bound > 6) {
    const std::uint32_t w = runtime::width_of(bound - 1);
    bound = 2 * (w - 1) + 2;  // labels in [0, 2w-1] -> bound 2w
    ++rounds;
    if (rounds > 64) break;  // unreachable; defensive
  }
  return rounds;
}

std::uint64_t reduce_step(std::uint64_t own, bool has_pred, std::uint64_t pred,
                          bool has_succ, std::uint64_t succ,
                          std::uint64_t c) noexcept {
  if (own != c) return own;
  for (std::uint64_t cand = 0; cand < 3; ++cand) {
    if ((has_pred && pred == cand) || (has_succ && succ == cand)) continue;
    return cand;
  }
  assert(false);  // two chain neighbors cannot block three candidates
  return own;
}

ChainColoring three_color_chains(std::span<const std::size_t> succ,
                                 std::span<const std::uint64_t> ids,
                                 std::uint64_t id_space) {
  const std::size_t n = ids.size();
  assert(succ.size() == n);

  // Derive predecessor links.
  std::vector<std::size_t> pred(n, npos);
  for (std::size_t i = 0; i < n; ++i) {
    if (succ[i] != npos) {
      assert(pred[succ[i]] == npos);
      pred[succ[i]] = i;
    }
  }

  ChainColoring out;
  out.colors.assign(ids.begin(), ids.end());

  // Phase 1: deterministic coin tossing until all labels < 6.
  const int t = rounds_to_six(id_space);
  std::vector<std::uint64_t> next(n);
  for (int round = 0; round < t; ++round) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t p =
          pred[i] == npos ? virtual_pred(out.colors[i]) : out.colors[pred[i]];
      next[i] = step(out.colors[i], p);
    }
    out.colors.swap(next);
    ++out.rounds;
  }

  // Phase 2: shift down 5, 4, 3.
  for (std::uint64_t c = 5; c >= 3; --c) {
    for (std::size_t i = 0; i < n; ++i) {
      const bool hp = pred[i] != npos;
      const bool hs = succ[i] != npos;
      next[i] = reduce_step(out.colors[i], hp, hp ? out.colors[pred[i]] : 0, hs,
                            hs ? out.colors[succ[i]] : 0, c);
    }
    out.colors.swap(next);
    ++out.rounds;
  }
  return out;
}

}  // namespace agc::coloring::cv
