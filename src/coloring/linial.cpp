#include "agc/coloring/linial.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "agc/math/primes.hpp"

namespace agc::coloring {

namespace {

/// base^exp, saturating at uint64 max.
std::uint64_t sat_pow(std::uint64_t base, std::uint32_t exp) {
  std::uint64_t r = 1;
  for (std::uint32_t i = 0; i < exp; ++i) {
    if (r > std::numeric_limits<std::uint64_t>::max() / base) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    r *= base;
  }
  return r;
}

/// Smallest integer r with r^k >= p.
std::uint64_t ceil_root(std::uint64_t p, std::uint32_t k) {
  if (p <= 1) return 1;
  auto r = static_cast<std::uint64_t>(
      std::floor(std::pow(static_cast<double>(p), 1.0 / k)));
  while (sat_pow(r, k) < p) ++r;
  while (r > 1 && sat_pow(r - 1, k) >= p) --r;
  return r;
}

}  // namespace

LinialSchedule::LinialSchedule(std::uint64_t id_space, std::size_t delta,
                               bool excl_headroom, std::uint64_t final_room) {
  delta_ = delta;
  final_room_ = final_room;
  const std::uint64_t dd = std::max<std::uint64_t>(delta, 1);
  std::uint64_t palette = std::max<std::uint64_t>(id_space, 2);

  // Greedy stage construction: among degrees d, the field q must satisfy
  // q > d*Delta (collision slack) and q^{d+1} >= palette (coverage); pick the
  // d minimizing the resulting palette q^2, stop when no stage shrinks.
  while (true) {
    std::uint64_t best_to = std::numeric_limits<std::uint64_t>::max();
    LinialStage best{};
    for (std::uint32_t d = 1; d <= 64; ++d) {
      const std::uint64_t q =
          math::next_prime(std::max<std::uint64_t>(d * dd + 1, ceil_root(palette, d + 1)));
      const std::uint64_t to = q * q;
      if (to < best_to) {
        best_to = to;
        best = LinialStage{palette, q, d, to};
      }
      // Larger d only raises q once coverage is no longer binding.
      if (sat_pow(d * dd + 1, d + 1) >= palette) break;
    }
    if (best_to >= palette) break;  // fixed point: O(Delta^2)
    stages_.push_back(best);
    palette = best_to;
  }

  if (excl_headroom) {
    // Final Excl-Linial stage: degree 2, field large enough to dodge the
    // 2*Delta poly-collisions plus up to 2*Delta forbidden colors.
    const std::uint64_t q = math::next_prime(
        std::max<std::uint64_t>(4 * dd + 1, ceil_root(palette, 3)));
    stages_.push_back(LinialStage{palette, q, 2, q * q});
    palette = q * q;
  }

  // Interval offsets: interval 0 (final palette) at 0, interval j above it.
  const std::size_t r = stages_.size();
  offsets_.assign(r + 1, 0);
  for (std::size_t j = 1; j <= r; ++j) {
    offsets_[j] = offsets_[j - 1] + interval_size(j - 1);
  }
}

std::uint64_t LinialSchedule::interval_size(std::size_t j) const {
  const std::size_t r = stages_.size();
  assert(j <= r);
  if (j == r && r > 0) return stages_.front().from_palette;
  // Interval j holds the output palette of stage r-1-j's successor chain:
  // stage i maps interval r-i -> r-i-1, so interval j's palette is the
  // to_palette of stage r-1-j.
  std::uint64_t size = (j == r) ? 0 : stages_[r - 1 - j].to_palette;
  if (j == 0) size = std::max(size, final_room_);
  return size;
}

std::size_t LinialSchedule::interval_of(Color c) const {
  const std::size_t r = stages_.size();
  for (std::size_t j = r + 1; j-- > 0;) {
    if (c >= offsets_[j]) return j;
  }
  return 0;
}

std::uint64_t LinialSchedule::total_span() const {
  const std::size_t r = stages_.size();
  return offsets_[r] + interval_size(r);
}

Color mod_linial_step(const LinialSchedule& sched, std::size_t j, std::uint64_t x,
                      std::span<const std::uint64_t> same_interval_xs,
                      std::span<const Color> forbidden_next) {
  assert(j >= 1 && j <= sched.stages());
  const LinialStage& st = sched.stage(sched.stages() - j);
  const math::GF field(st.q);
  const auto g_own = math::Polynomial::from_digits(field, x, static_cast<int>(st.d));

  std::vector<math::Polynomial> g_nbrs;
  g_nbrs.reserve(same_interval_xs.size());
  for (std::uint64_t nx : same_interval_xs) {
    g_nbrs.push_back(math::Polynomial::from_digits(field, nx, static_cast<int>(st.d)));
  }

  const std::uint64_t next_off = sched.offset(j - 1);
  for (std::uint64_t e = 0; e < st.q; ++e) {
    const std::uint64_t val = g_own.eval(e);
    bool ok = true;
    for (const auto& g : g_nbrs) {
      if (g.eval(e) == val) {
        ok = false;
        break;
      }
    }
    if (!ok) continue;
    const Color candidate = next_off + e * st.q + val;
    if (std::find(forbidden_next.begin(), forbidden_next.end(), candidate) !=
        forbidden_next.end()) {
      continue;
    }
    return candidate;
  }
  // Sizing guarantees existence: d*Delta collisions + |forbidden| < q.
  throw std::logic_error("mod_linial_step: no admissible evaluation point");
}

Color LinialRule::step(Color own, std::span<const Color> neighbors) const {
  const std::size_t j = sched_.interval_of(own);
  if (j == 0) return own;  // final palette reached
  const std::uint64_t off = sched_.offset(j);
  std::vector<std::uint64_t> xs;
  for (Color nc : neighbors) {
    if (sched_.interval_of(nc) == j) xs.push_back(nc - off);
  }
  return mod_linial_step(sched_, j, own - off, xs, {});
}

std::uint32_t LinialRule::color_bits() const {
  return runtime::width_of(sched_.total_span() - 1);
}

runtime::IterativeResult linial_color(graph::GraphView g,
                                      std::vector<Color> initial_ids,
                                      std::uint64_t id_space, std::size_t delta,
                                      const runtime::IterativeOptions& opts) {
  LinialSchedule sched(id_space, delta);
  if (sched.stages() == 0) {
    // Already at or below the fixed point: nothing to do.
    runtime::IterativeResult r;
    r.colors = std::move(initial_ids);
    r.converged = true;
    return r;
  }
  const std::uint64_t top = sched.offset(sched.stages());
  for (Color& c : initial_ids) {
    assert(c < id_space);
    c += top;
  }
  LinialRule rule(sched);
  runtime::IterativeOptions capped = opts;
  capped.max_rounds = std::min(opts.max_rounds, sched.stages() + 2);
  return run_locally_iterative(g, std::move(initial_ids), rule, capped);
}

}  // namespace agc::coloring
