#include "agc/coloring/ag.hpp"

#include <algorithm>
#include <cmath>

#include "agc/math/iterated_log.hpp"
#include "agc/math/primes.hpp"

namespace agc::coloring {

std::uint64_t ag_modulus(std::size_t delta, std::uint64_t palette) {
  // q > 2*delta guarantees termination within q rounds (Corollary 3.5);
  // q^2 >= palette guarantees every initial color decomposes as <a,b>.
  const auto sqrt_pal = static_cast<std::uint64_t>(
      std::ceil(std::sqrt(static_cast<double>(palette))));
  return math::next_prime(std::max<std::uint64_t>(2 * delta + 1, sqrt_pal));
}

Color AgRule::step(Color own, std::span<const Color> neighbors) const {
  const std::uint64_t a = code_.a(own);
  const std::uint64_t b = code_.b(own);
  // Conflict (Definition 3.1): a neighbor whose second coordinate equals b.
  // Finalized neighbors <0,b'> participate with second coordinate b'.
  // Colors outside [0, q^2) belong to other stages of a composed pipeline
  // and are ignored (they are in disjoint ranges and cannot collide).
  bool conflict = false;
  for (Color nc : neighbors) {
    if (code_.in_range(nc) && code_.b(nc) == b) {
      conflict = true;
      break;
    }
  }
  if (!conflict) return code_.encode(0, b);  // finalize <0,b>
  // <a, b+a mod q>; a no-op for already-final vertices (a == 0).
  return code_.encode(a, (b + a) % code_.q);
}

std::uint32_t AgRule::color_bits() const {
  return runtime::width_of(code_.q * code_.q - 1);
}

runtime::IterativeResult additive_group_color(graph::GraphView g,
                                              std::vector<Color> initial,
                                              std::size_t delta,
                                              const runtime::IterativeOptions& opts) {
  const Color k = graph::max_color(initial) + 1;
  const AgRule rule(ag_modulus(delta, k));
  runtime::IterativeOptions capped = opts;
  // Corollary 3.5: q rounds always suffice; +2 slack for the empty-graph and
  // already-final corner cases.
  capped.max_rounds = std::min<std::size_t>(opts.max_rounds, rule.q() + 2);
  return run_locally_iterative(g, std::move(initial), rule, capped);
}

}  // namespace agc::coloring
