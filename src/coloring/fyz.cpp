#include "agc/coloring/fyz.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "agc/coloring/linial.hpp"
#include "agc/math/gf.hpp"
#include "agc/math/primes.hpp"
#include "agc/obs/event_sink.hpp"
#include "stage.hpp"

namespace agc::coloring {

using detail::finish;
using detail::fresh_report;
using detail::run_stage;

namespace {

std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a != 0 && b > std::numeric_limits<std::uint64_t>::max() / a) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  return a * b;
}

std::uint64_t sat_pow(std::uint64_t base, std::uint32_t exp) {
  std::uint64_t r = 1;
  for (std::uint32_t i = 0; i < exp; ++i) r = sat_mul(r, base);
  return r;
}

std::uint64_t ceil_root(std::uint64_t p, std::uint32_t k) {
  if (p <= 1) return 1;
  auto r = static_cast<std::uint64_t>(
      std::floor(std::pow(static_cast<double>(p), 1.0 / k)));
  while (sat_pow(r, k) < p) ++r;
  while (r > 1 && sat_pow(r - 1, k) >= p) --r;
  return r;
}

// ---------------------------------------------------------------------------
// Stage 2: the carrier-packed defective partition.
//
// The same defective-Linial stage selection as arb::defective_color (minimize
// the next palette q^2 subject to coverage q^{d+1} >= palette and per-stage
// defect d*Delta/q <= p), but run as a locally-iterative rule: the working
// palettes get disjoint intervals (exactly like Mod-Linial), every vertex
// advances one interval per round in lockstep, and the whole machinery rides
// on the immutable Linial color as state = lin * span + machinery so every
// intermediate full coloring is proper.

struct PartStage {
  std::uint64_t q;
  std::uint32_t d;
};

struct PartitionSchedule {
  std::vector<PartStage> stages;      ///< stage t maps interval t -> t+1
  std::vector<std::uint64_t> pal;     ///< pal[t] = palette of interval t
  std::vector<std::uint64_t> off;     ///< off[t] = interval t's color offset
  std::uint64_t span = 0;             ///< one past the largest machinery color

  PartitionSchedule(std::uint64_t palette, std::size_t delta,
                    std::uint64_t budget) {
    pal.push_back(palette);
    for (;;) {
      std::uint64_t best_to = std::numeric_limits<std::uint64_t>::max();
      PartStage best{};
      for (std::uint32_t d = 1; d <= 64; ++d) {
        const std::uint64_t slack =
            (static_cast<std::uint64_t>(d) * delta + budget - 1) / budget;
        const std::uint64_t q = math::next_prime(
            std::max<std::uint64_t>(slack + 1, ceil_root(palette, d + 1)));
        if (q * q < best_to) {
          best_to = q * q;
          best = PartStage{q, d};
        }
        if (sat_pow(slack + 1, d + 1) >= palette) break;
      }
      if (best_to >= palette) break;  // fixed point
      stages.push_back(best);
      pal.push_back(best_to);
      palette = best_to;
    }
    off.resize(pal.size());
    std::uint64_t o = 0;
    for (std::size_t t = 0; t < pal.size(); ++t) {
      off[t] = o;
      o += pal[t];
    }
    span = o;
  }

  [[nodiscard]] std::uint64_t classes() const { return pal.back(); }

  /// Interval of a machinery color (linear scan; <= log* palette entries).
  [[nodiscard]] std::size_t interval_of(std::uint64_t m) const {
    std::size_t t = pal.size() - 1;
    while (m < off[t]) --t;
    return t;
  }
};

/// Evaluate the degree-d digit polynomial of x over GF(q) at every point
/// into `vals` (Horner, no allocation).
void eval_digits(const math::GF& f, std::uint64_t x, std::uint32_t d,
                 std::vector<std::uint64_t>& vals) {
  const std::uint64_t q = f.modulus();
  std::uint64_t digits[65];
  for (std::uint32_t i = 0; i <= d; ++i) {
    digits[i] = x % q;
    x /= q;
  }
  for (std::uint64_t e = 0; e < q; ++e) {
    std::uint64_t acc = digits[d];
    for (std::uint32_t i = d; i-- > 0;) {
      acc = f.add(f.mul(acc, e), digits[i]);
    }
    vals[e] = acc;
  }
}

class PartitionRule final : public runtime::IterativeRule {
 public:
  explicit PartitionRule(PartitionSchedule sched) : s_(std::move(sched)) {}

  [[nodiscard]] Color step(Color own,
                           std::span<const Color> neighbors) const override {
    const std::uint64_t m = own % s_.span;
    const std::size_t t = s_.interval_of(m);
    if (t + 1 == s_.pal.size()) return own;  // final interval
    const PartStage& st = s_.stages[t];
    const math::GF field(st.q);
    std::vector<std::uint64_t> own_vals(st.q);
    std::vector<std::uint64_t> nbr_vals(st.q);
    std::vector<std::size_t> hits(st.q, 0);
    eval_digits(field, m - s_.off[t], st.d, own_vals);
    // All vertices advance one interval per round in lockstep, so every
    // neighbor is in interval t too; duplicates (identical machinery colors)
    // shift every hit count equally and cannot move the argmin, so the
    // sorted multiset lets us skip them.
    Color prev = std::numeric_limits<Color>::max();
    for (const Color nc : neighbors) {
      if (nc == prev) continue;
      prev = nc;
      const std::uint64_t nm = nc % s_.span;
      if (nm < s_.off[t] || nm >= s_.off[t] + s_.pal[t]) continue;
      eval_digits(field, nm - s_.off[t], st.d, nbr_vals);
      for (std::uint64_t e = 0; e < st.q; ++e) {
        hits[e] += nbr_vals[e] == own_vals[e];
      }
    }
    const std::uint64_t best = static_cast<std::uint64_t>(
        std::min_element(hits.begin(), hits.end()) - hits.begin());
    const std::uint64_t next = best * st.q + own_vals[best];
    return (own / s_.span) * s_.span + s_.off[t + 1] + next;
  }

  [[nodiscard]] bool is_final(Color c) const override {
    return c % s_.span >= s_.off.back();
  }
  [[nodiscard]] std::uint32_t color_bits() const override { return 64; }

  [[nodiscard]] const PartitionSchedule& schedule() const { return s_; }

 private:
  PartitionSchedule s_;
};

// ---------------------------------------------------------------------------
// Stage 3: carrier-packed Arbdefective-Color (tolerant AG over Z_q).
//
// state = ((lin * K + psi) * q + a) * q + b; <a == 0> is frozen.  Same
// tolerant finalize rule as arb::ArbAgRule — freeze as soon as at most p
// neighbors of a DIFFERENT psi share b — but packed above the proper Linial
// carrier instead of the bare seed, so the maintained colorings stay proper.

class FyzArbRule final : public runtime::IterativeRule {
 public:
  FyzArbRule(std::uint64_t classes, std::uint64_t q, std::uint64_t p)
      : k_(classes), q_(q), p_(p), m_(classes * q * q) {}

  [[nodiscard]] Color step(Color own,
                           std::span<const Color> neighbors) const override {
    const std::uint64_t m = own % m_;
    const std::uint64_t a = (m / q_) % q_;
    if (a == 0) return own;  // frozen
    const std::uint64_t b = m % q_;
    const std::uint64_t psi = m / (q_ * q_);
    std::uint64_t conflicts = 0;
    for (const Color nc : neighbors) {
      const std::uint64_t nm = nc % m_;
      conflicts += nm % q_ == b && nm / (q_ * q_) != psi;
    }
    if (conflicts <= p_) {
      return own - a * q_;  // freeze: a <- 0, keep psi and b
    }
    const std::uint64_t nb = b + a >= q_ ? b + a - q_ : b + a;
    return own - b + nb;
  }

  [[nodiscard]] bool is_final(Color c) const override {
    return (c % m_ / q_) % q_ == 0;
  }
  [[nodiscard]] std::uint32_t color_bits() const override { return 64; }

  [[nodiscard]] std::uint64_t q() const { return q_; }

 private:
  std::uint64_t k_, q_, p_, m_;
};

// ---------------------------------------------------------------------------
// Stage 4: the list-coloring wave with the proposal packed into the color.
//
// An active state is D1 + prio * D1 + prop where D1 = Delta + 1, prop is the
// currently proposed final color, and prio = b * L + lin totally orders the
// vertices class-major (b = arb class, lin tie-break).  Done states are bare
// colors < D1.  One step, computed from one snapshot of the neighborhood:
//
//   * a done neighbor holds prop      -> re-propose the smallest free color
//                                        (publish first, commit no earlier
//                                        than the next round);
//   * else if no same-prop active     -> commit (become done(prop));
//     neighbor has smaller prio
//   * else                            -> defer, state unchanged.
//
// Adjacent same-round commits of the same color are impossible: both decide
// against the same snapshot, so the larger-prio one of a same-prop pair
// defers, and a freshly re-proposed color was by definition not published in
// the snapshot its neighbor committed against.  Every round stays proper
// (done-done by the commit rule, active-active by distinct lin, done-active
// by the offset) and the globally smallest active priority always commits
// within two rounds, so the wave cannot deadlock.  Initial proposals are
// class-spread (b mod D1), which keeps the startup contention inside the
// size-O(p)-defect classes instead of piling every vertex onto color 0.

class FyzListRule final : public runtime::IterativeRule {
 public:
  explicit FyzListRule(std::uint64_t d1) : d1_(d1) {}

  [[nodiscard]] Color step(Color own,
                           std::span<const Color> neighbors) const override {
    if (own < d1_) return own;  // done
    const std::uint64_t prio = (own - d1_) / d1_;
    const std::uint64_t prop = (own - d1_) % d1_;
    // One pass over the (sorted) multiset: done colors seen, and whether a
    // smaller-priority active neighbor holds the same proposal.
    std::vector<bool> used(d1_, false);
    bool defer = false;
    for (const Color nc : neighbors) {
      if (nc < d1_) {
        used[nc] = true;
      } else if ((nc - d1_) % d1_ == prop && (nc - d1_) / d1_ < prio) {
        defer = true;
      }
    }
    if (used[prop]) {
      std::uint64_t fresh = 0;
      while (used[fresh]) ++fresh;  // < d1_: at most Delta done neighbors
      return d1_ + prio * d1_ + fresh;
    }
    if (!defer) return prop;  // commit
    return own;
  }

  [[nodiscard]] bool is_final(Color c) const override { return c < d1_; }
  [[nodiscard]] std::uint32_t color_bits() const override { return 64; }

 private:
  std::uint64_t d1_;
};

}  // namespace

std::uint64_t fyz_budget(std::size_t delta) {
  const auto p = static_cast<std::uint64_t>(
      std::ceil(std::pow(static_cast<double>(std::max<std::size_t>(delta, 1)),
                         0.25)));
  return std::max<std::uint64_t>(p, 1);
}

PipelineReport color_fyz(graph::GraphView g, const PipelineOptions& opts) {
  if (g.max_degree() == 0) {
    // Edgeless: the Delta+1 palette is the single color 0; no rounds needed.
    PipelineReport rep = fresh_report();
    rep.colors.assign(g.n(), 0);
    finish(rep, g);
    return rep;
  }
  const std::size_t delta = std::max<std::size_t>(g.max_degree(), 1);
  const std::uint64_t p = fyz_budget(delta);
  const std::uint64_t id_space =
      std::max<std::uint64_t>(g.n(), 1) *
      std::max<std::uint64_t>(1, opts.id_space_factor);
  PipelineReport rep = fresh_report();

  // Stage 1: the shared log* n preamble.  L is the Linial fixed point the
  // carrier colors live in.
  auto lin = run_stage(rep, opts, "linial", 0, [&](const auto& iter) {
    return linial_color(g, identity_coloring(g.n()), id_space, delta, iter);
  });
  rep.rounds_linial = lin.rounds;
  const LinialSchedule lsched(std::max<std::uint64_t>(id_space, 2), delta);
  const std::uint64_t big_l =
      lsched.stages() == 0 ? std::max<std::uint64_t>(id_space, 2)
                           : lsched.final_palette();

  // Stage 2: defective partition L -> K = O((Delta/p)^2).
  PartitionSchedule psched(big_l, delta, p);
  const std::uint64_t classes_in = psched.classes();

  // Stage 3 parameters: the tolerant AG field.  q >= window + 1 so a moving
  // b meets each conflicting neighbor at most once inside the window.
  const std::uint64_t window = 2 * ((delta + p - 1) / p) + 1;
  const std::uint64_t q = math::next_prime(
      std::max<std::uint64_t>(window + 1, ceil_root(classes_in, 2)));
  const std::uint64_t d1 = delta + 1;

  // 64-bit packing guard: the widest state is lin * (K * q^2) + machinery.
  if (sat_mul(big_l, std::max(sat_mul(classes_in, q * q), psched.span)) >=
      (std::uint64_t{1} << 62)) {
    throw std::invalid_argument(
        "color_fyz: Delta too large for 64-bit carrier packing");
  }

  if (psched.stages.empty()) {
    // Already at the class-space fixed point (tiny Delta): psi = lin, but
    // stage 3 expects the carrier-packed form.
    for (graph::Vertex v = 0; v < g.n(); ++v) {
      lin.colors[v] = lin.colors[v] * psched.span + lin.colors[v];
    }
    rep.rounds_core = 0;
  } else {
    PartitionRule part(psched);
    auto partition =
        run_stage(rep, opts, "fyz-partition", 1, [&](const auto& iter) {
          std::vector<Color> init(g.n());
          for (graph::Vertex v = 0; v < g.n(); ++v) {
            init[v] = lin.colors[v] * psched.span + lin.colors[v];
          }
          return runtime::run_locally_iterative(g, std::move(init), part, iter);
        });
    lin.colors = std::move(partition.colors);
    rep.rounds_core = partition.rounds;
  }

  // Repack for stage 3: psi from the partition's final interval, carrier
  // unchanged.  psi < K <= q^2 splits into the AG pair <a, b>.
  FyzArbRule arb_rule(classes_in, q, p);
  auto arb = run_stage(rep, opts, "fyz-arb", 2, [&](const auto& iter) {
    std::vector<Color> init(g.n());
    for (graph::Vertex v = 0; v < g.n(); ++v) {
      const std::uint64_t lin_c = lin.colors[v] / psched.span;
      const std::uint64_t psi =
          lin.colors[v] % psched.span - psched.off.back();
      init[v] = ((lin_c * classes_in + psi) * q + psi / q) * q + psi % q;
    }
    return runtime::run_locally_iterative(g, std::move(init), arb_rule, iter);
  });
  rep.rounds_core += arb.rounds;

  // Repack for stage 4: priority = (arb class b) * L + lin, proposal spread
  // by class.
  FyzListRule list_rule(d1);
  auto wave = run_stage(rep, opts, "fyz-list", 3, [&](const auto& iter) {
    std::vector<Color> init(g.n());
    for (graph::Vertex v = 0; v < g.n(); ++v) {
      const std::uint64_t m = arb.colors[v] % (classes_in * q * q);
      const std::uint64_t b = m % q;
      const std::uint64_t lin_c = arb.colors[v] / (classes_in * q * q);
      init[v] = d1 + (b * big_l + lin_c) * d1 + b % d1;
    }
    return runtime::run_locally_iterative(g, std::move(init), list_rule, iter);
  });
  rep.rounds_finish = wave.rounds;

  rep.colors = std::move(wave.colors);
  finish(rep, g);
  return rep;
}

}  // namespace agc::coloring
