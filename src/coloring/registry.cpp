#include "agc/coloring/registry.hpp"

#include <algorithm>

#include "agc/arb/eps_coloring.hpp"
#include "agc/coloring/fyz.hpp"
#include "agc/coloring/luby.hpp"
#include "agc/math/primes.hpp"

/// \file registry.cpp
/// Registry table + the classwise adapters.  Lives in its own library
/// (agc_algoreg) above agc_arb: the registry spans the locally-iterative
/// pipelines AND the arbdefective classwise entry points, and agc_arb itself
/// links agc_coloring — folding this table into either would cycle.

namespace agc::coloring {

namespace {

std::uint64_t bound_delta_plus_one(std::size_t delta, const PipelineOptions&) {
  return static_cast<std::uint64_t>(delta) + 1;
}

/// AG stops at pairs <0,b> over Z_q with q the smallest prime above 2*Delta.
std::uint64_t bound_o_delta(std::size_t delta, const PipelineOptions&) {
  return math::next_prime_above(2 * std::max<std::uint64_t>(delta, 1));
}

std::uint64_t bound_eps(std::size_t delta, const PipelineOptions& opts) {
  const double eps = std::max(0.0, opts.eps);
  return static_cast<std::uint64_t>((1.0 + eps) * static_cast<double>(delta)) + 1;
}

/// Classwise results carry their round split as (arb seed phase, class
/// waves); map that onto the pipeline report's core/finish fields.
PipelineReport from_classwise(arb::ClasswiseResult rep) {
  PipelineReport r;
  static_cast<runtime::RunReport&>(r) = rep;
  r.colors = std::move(rep.colors);
  r.palette = rep.palette;
  r.rounds_core = rep.arb_rounds;
  r.rounds_finish = rep.rounds - std::min(rep.rounds, rep.arb_rounds);
  r.proper = rep.proper;
  // Classwise coloring keeps vertices uncolored until their class's wave, so
  // the locally-iterative invariant does not hold mid-run by construction.
  r.proper_each_round = false;
  return r;
}

std::uint64_t id_space_of(graph::GraphView g, const PipelineOptions& opts) {
  return std::max<std::uint64_t>(g.n(), 1) *
         std::max<std::uint64_t>(1, opts.id_space_factor);
}

PipelineReport run_eps(graph::GraphView g, const PipelineOptions& opts) {
  return from_classwise(
      arb::eps_delta_coloring(g, opts.eps, id_space_of(g, opts), opts.run()));
}

PipelineReport run_sublinear(graph::GraphView g, const PipelineOptions& opts) {
  return from_classwise(
      arb::sublinear_delta_plus_one(g, id_space_of(g, opts), opts.run()));
}

constexpr const char* kIter = "locally-iterative";
constexpr const char* kClasswise = "classwise";

const AlgoSpec kAlgos[] = {
    {"gps", kIter, "Linial + greedy baseline, O(Delta^2 + log* n)",
     &bound_delta_plus_one, false, &color_linial_greedy},
    {"kw", kIter, "Kuhn-Wattenhofer barrier baseline, O(Delta log Delta + log* n)",
     &bound_delta_plus_one, false, &color_kuhn_wattenhofer},
    {"ag", kIter, "AG pipeline, Delta+1 colors in O(Delta + log* n)",
     &bound_delta_plus_one, false, &color_delta_plus_one},
    {"exact", kIter, "mixed 3AG/AG(N) pipeline, exactly Delta+1 colors",
     &bound_delta_plus_one, false, &color_delta_plus_one_exact},
    {"odelta", kIter, "stop after AG with O(Delta) colors",
     &bound_o_delta, false, &color_o_delta},
    {"fyz", kIter, "Fu-Yin-Zheng sublinear-in-Delta (Delta+1), "
     "O(Delta^(3/4) log Delta + log* n)",
     &bound_delta_plus_one, false, &color_fyz},
    {"eps", kClasswise, "arbdefective classwise (1+eps)Delta coloring",
     &bound_eps, false, &run_eps},
    {"sublinear", kClasswise, "arbdefective classwise (Delta+1), sublinear in Delta",
     &bound_delta_plus_one, false, &run_sublinear},
    {"luby", "randomized", "seeded Luby-style (Delta+1), O(log n) expected",
     &bound_delta_plus_one, true, &color_luby},
};

}  // namespace

std::span<const AlgoSpec> algos() noexcept { return kAlgos; }

const AlgoSpec* find_algo(std::string_view name) noexcept {
  for (const AlgoSpec& a : kAlgos) {
    if (name == a.name) return &a;
  }
  return nullptr;
}

std::string algo_list() {
  std::string out;
  for (const AlgoSpec& a : kAlgos) {
    if (!out.empty()) out += ", ";
    out += a.name;
  }
  return out;
}

}  // namespace agc::coloring
