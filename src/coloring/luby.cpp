#include "agc/coloring/luby.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "agc/obs/event_sink.hpp"
#include "agc/runtime/faults.hpp"
#include "agc/runtime/round.hpp"
#include "stage.hpp"

namespace agc::coloring {

namespace {

/// splitmix64 finalizer: the standard 64-bit avalanche.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ULL;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBULL;
  z ^= z >> 31;
  return z;
}

/// The per-vertex randomness: a pure function of (seed, round, id) — the
/// RunOptions::seed determinism contract.  Golden-ratio / MurmurHash odd
/// constants decorrelate the three inputs before the avalanche.
constexpr std::uint64_t draw(std::uint64_t seed, std::uint64_t round,
                             std::uint64_t id) noexcept {
  return mix64(seed + 0x9E3779B97F4A7C15ULL * (round + 1) +
               0xD1B54A32D192ED03ULL * (id + 1));
}

/// One Luby vertex.  The whole volatile state is one packed word:
///   state < d1          — done, holding final color `state`;
///   state = d1 + cand   — active, proposing candidate `cand` this round.
/// The broadcast IS the state word, so neighbors decode done colors and
/// live candidates from the same message.
class LubyProgram final : public runtime::VertexProgram {
 public:
  LubyProgram(std::uint64_t seed, std::uint64_t d1, std::uint32_t bits,
              Color* mirror)
      : seed_(seed), d1_(d1), bits_(bits), used_(d1, 0), mirror_(mirror) {
    state_ = d1_;  // active; the first candidate is drawn at the first send
    *mirror_ = state_;
  }

  void on_send(const runtime::VertexEnv& env, runtime::OutboxRef& out) override {
    // A fresh draw every round (from the free list as of the last receive)
    // is what breaks candidate symmetry between deferring neighbors.
    if (state_ >= d1_) state_ = d1_ + pick(env);
    out.broadcast(runtime::Word{state_, bits_});
    sent_ = state_;
  }

  void on_receive(const runtime::VertexEnv&, const runtime::InboxRef& in) override {
    const auto nbrs = in.multiset();
    std::fill(used_.begin(), used_.end(), std::uint8_t{0});
    used_count_ = 0;
    bool conflict = false;
    // Modulo guards: wire faults (and the RAM adversary) can put arbitrary
    // words on the channel; decode them into the candidate range instead of
    // indexing out of bounds.  Clean runs never take the reduction.
    const std::uint64_t cand = state_ >= d1_ ? (state_ - d1_) % d1_ : 0;
    for (const std::uint64_t nc : nbrs) {
      if (nc < d1_) {
        if (used_[nc] == 0) {
          used_[nc] = 1;
          ++used_count_;
        }
      } else if (state_ >= d1_ && (nc - d1_) % d1_ == cand) {
        // An active neighbor drew the same candidate: both sides see the
        // same symmetric evidence and both defer — no tie-break needed,
        // next round's fresh draws separate them with high probability.
        conflict = true;
      }
    }
    if (state_ >= d1_ && !conflict && used_[cand] == 0) state_ = cand;
    *mirror_ = state_;
  }

  /// halted() contract (engine.hpp): only freeze once the current on_send
  /// output equals the last published message — i.e. the final color has
  /// been broadcast at least once, so async neighbors mirror the right word.
  [[nodiscard]] bool halted(const runtime::VertexEnv&) const override {
    return state_ < d1_ && sent_ == state_;
  }

  /// Expose the packed word so the unified RunOptions adversary can corrupt
  /// Luby runs like any other.  (Luby is not self-stabilizing: a corrupted
  /// done color stays; the end-of-run properness check reports it.)
  std::span<std::uint64_t> ram() override { return {&state_, 1}; }

 private:
  /// Candidate for this round: the draw(seed, round, id) hash reduced onto
  /// the free list — the (Delta+1)-palette minus the done-neighbor colors
  /// seen last round.  The free list is never empty on a static graph
  /// (<= Delta done neighbors vs Delta+1 colors); if adversarial edge
  /// insertion empties it, fall back to the whole palette and keep trying.
  [[nodiscard]] std::uint64_t pick(const runtime::VertexEnv& env) const {
    const std::uint64_t h = draw(seed_, env.round, env.id);
    const std::uint64_t free_count = d1_ - used_count_;
    if (free_count == 0) return h % d1_;
    std::uint64_t idx = h % free_count;
    for (std::uint64_t c = 0; c < d1_; ++c) {
      if (used_[c] != 0) continue;
      if (idx == 0) return c;
      --idx;
    }
    return h % d1_;  // unreachable: the loop visits free_count free colors
  }

  const std::uint64_t seed_;
  const std::uint64_t d1_;
  const std::uint32_t bits_;
  std::uint64_t state_ = 0;
  std::uint64_t sent_ = ~0ULL;
  std::vector<std::uint8_t> used_;  ///< done-neighbor colors, last receive
  std::uint64_t used_count_ = 0;
  Color* mirror_;
};

}  // namespace

PipelineReport color_luby(graph::GraphView g, const PipelineOptions& opts) {
  const std::uint64_t t0 = obs::monotonic_ns();
  PipelineReport rep = detail::fresh_report();
  // An uncolored vertex holds no proper color, so the locally-iterative
  // invariant cannot hold mid-run by construction — reported honestly.
  rep.proper_each_round = false;

  const std::size_t delta = g.max_degree();
  const std::uint64_t d1 = static_cast<std::uint64_t>(delta) + 1;
  const std::uint32_t bits = runtime::width_of(2 * d1);
  const runtime::IterativeOptions iter = detail::stage_opts(opts, "luby");
  const std::uint64_t seed = iter.seed;

  rep.colors.assign(g.n(), d1);  // everyone starts active
  std::vector<Color>& mirror = rep.colors;

  runtime::Engine engine(g, runtime::Transport(iter.model, iter.congest_bits));
  if (iter.executor) engine.set_executor(iter.executor);
  if (iter.channel != nullptr) engine.set_channel(iter.channel);

  obs::PhaseProfile profile;
  obs::PhaseStats* extra = nullptr;
  if (iter.collect_phase_times) {
    engine.set_profile(&profile);
    extra = profile.extra();
  }
  if (iter.sink != nullptr) engine.set_sink(iter.sink);

  engine.install([&](const runtime::VertexEnv& env) {
    if (env.id >= mirror.size()) {
      throw std::logic_error(
          "color_luby: adding vertices mid-run is unsupported");
    }
    return std::make_unique<LubyProgram>(seed, d1, bits, &mirror[env.id]);
  });

  detail::stage_event(opts, obs::EventKind::RunStart, "luby", 0, g.n());

  auto all_done = [&] {
    return std::all_of(mirror.begin(), mirror.end(),
                       [&](Color c) { return c < d1; });
  };

  std::uint64_t channel_seen =
      iter.channel != nullptr ? iter.channel->events() : 0;

  // Same dependency-driven fast path as run_locally_iterative: with no
  // per-round hooks, hand the async executor one barrier-free window.
  const bool windowed = iter.executor != nullptr &&
                        iter.executor->dependency_driven() &&
                        iter.adversary == nullptr && iter.channel == nullptr;
  if (windowed) {
    while (!all_done() && rep.rounds < iter.max_rounds) {
      const std::size_t fired = engine.step_window(iter.max_rounds - rep.rounds);
      rep.rounds += fired;
      if (fired == 0) break;
    }
  }

  while (!windowed && !all_done() && rep.rounds < iter.max_rounds) {
    engine.step();
    ++rep.rounds;
    if (iter.channel != nullptr) {
      const std::uint64_t now = iter.channel->events();
      if (now > channel_seen) {
        rep.fault_events += now - channel_seen;
        detail::stage_event(opts, obs::EventKind::Fault,
                            iter.channel->name(), rep.rounds,
                            now - channel_seen);
        channel_seen = now;
      }
    }
    if (iter.adversary != nullptr) {
      std::size_t injected = 0;
      {
        obs::ScopedPhaseTimer timer(extra, obs::Phase::Fault);
        injected = iter.adversary->inject(engine, rep.rounds);
      }
      if (injected > 0) {
        rep.fault_events += injected;
        // RAM corruption rewrote state words behind the mirror's back.
        for (graph::Vertex v = 0; v < engine.graph().n(); ++v) {
          const auto ram = engine.ram(v);
          if (!ram.empty()) mirror[v] = ram[0];
        }
        detail::stage_event(opts, obs::EventKind::Fault,
                            iter.adversary->name(), rep.rounds, injected);
      }
    }
  }

  rep.converged = all_done();
  rep.rounds_core = rep.rounds;
  rep.metrics = engine.metrics();
  if (iter.collect_phase_times) {
    engine.set_profile(nullptr);
    rep.phases = profile.folded();
  }
  detail::finish(rep, engine.graph());
  rep.wall_ns = obs::monotonic_ns() - t0;
  detail::stage_event(opts, obs::EventKind::RunEnd, "luby", rep.rounds,
                      rep.rounds, rep.wall_ns);
  return rep;
}

}  // namespace agc::coloring
