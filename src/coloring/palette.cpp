#include "agc/coloring/palette.hpp"

#include <numeric>

namespace agc::coloring {

std::vector<Color> identity_coloring(std::size_t n) {
  std::vector<Color> colors(n);
  std::iota(colors.begin(), colors.end(), Color{0});
  return colors;
}

}  // namespace agc::coloring
