#include "agc/coloring/linial_stream.hpp"

#include <cassert>
#include <stdexcept>
#include <vector>

#include "agc/math/primes.hpp"

namespace agc::coloring {

std::uint64_t eval_digit_poly(std::uint64_t q, std::uint64_t value, std::uint32_t d,
                              std::uint64_t e) noexcept {
  // Horner highest-digit-first: digit_i = (value / q^i) % q.  Working set:
  // acc, power, i — O(1) words.
  std::uint64_t acc = 0;
  for (std::uint32_t i = d + 1; i-- > 0;) {
    std::uint64_t power = value;
    for (std::uint32_t k = 0; k < i; ++k) power /= q;
    const std::uint64_t digit = power % q;
    acc = (math::mul_mod(acc, e, q) + digit) % q;
  }
  return acc;
}

Color mod_linial_step_stream(const LinialSchedule& sched, std::size_t j,
                             std::uint64_t x,
                             std::span<const std::uint64_t> same_interval_xs) {
  assert(j >= 1 && j <= sched.stages());
  const LinialStage& st = sched.stage(sched.stages() - j);
  const std::uint64_t next_off = sched.offset(j - 1);
  for (std::uint64_t e = 0; e < st.q; ++e) {
    const std::uint64_t own_val = eval_digit_poly(st.q, x, st.d, e);
    bool ok = true;
    for (std::uint64_t nx : same_interval_xs) {  // re-read the buffers
      if (eval_digit_poly(st.q, nx, st.d, e) == own_val) {
        ok = false;
        break;
      }
    }
    if (ok) return next_off + e * st.q + own_val;
  }
  throw std::logic_error("mod_linial_step_stream: no admissible point");
}

Color StreamLinialRule::step(Color own, std::span<const Color> neighbors) const {
  const std::size_t j = sched_.interval_of(own);
  if (j == 0) return own;
  const std::uint64_t off = sched_.offset(j);
  // The harness materializes the inbox for us; a hardware implementation
  // would walk the per-neighbor buffers in place.  Only interval filtering
  // happens here; the evaluation loop above is the O(1)-memory part.
  std::vector<std::uint64_t> xs;
  for (Color nc : neighbors) {
    if (sched_.interval_of(nc) == j) xs.push_back(nc - off);
  }
  return mod_linial_step_stream(sched_, j, own - off, xs);
}

}  // namespace agc::coloring
