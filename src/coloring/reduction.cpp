#include "agc/coloring/reduction.hpp"

#include <algorithm>
#include <vector>

namespace agc::coloring {

Color GreedyReduceRule::step(Color own, std::span<const Color> neighbors) const {
  if (own < target_) return own;  // final
  // Act only as a local maximum; ties are impossible between neighbors
  // (the coloring is proper), so the global maximum always acts.
  for (Color nc : neighbors) {
    if (nc > own) return own;
  }
  // Smallest color in [0, target) unused by any neighbor.  `neighbors` is
  // sorted, so a single sweep finds the first gap.
  Color candidate = 0;
  for (Color nc : neighbors) {
    if (nc < candidate) continue;  // duplicates / below candidate
    if (nc == candidate) {
      ++candidate;
    } else {
      break;  // gap found before nc
    }
  }
  return candidate;  // <= Delta < target since at most Delta neighbors
}

runtime::IterativeResult reduce_colors(graph::GraphView g,
                                       std::vector<Color> initial,
                                       std::uint64_t target,
                                       const runtime::IterativeOptions& opts) {
  const Color k = graph::max_color(initial) + 1;
  GreedyReduceRule rule(target, std::max<std::uint64_t>(k, target));
  runtime::IterativeOptions capped = opts;
  const std::size_t bound = k > target ? static_cast<std::size_t>(k - target) + 1 : 1;
  capped.max_rounds = std::min(opts.max_rounds, bound);
  return run_locally_iterative(g, std::move(initial), rule, capped);
}

}  // namespace agc::coloring
