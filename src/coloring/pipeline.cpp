#include "agc/coloring/pipeline.hpp"

#include <algorithm>

#include "agc/coloring/ag.hpp"
#include "agc/coloring/ag3.hpp"
#include "agc/coloring/kuhn_wattenhofer.hpp"
#include "agc/coloring/linial.hpp"
#include "agc/coloring/reduction.hpp"

namespace agc::coloring {

namespace {

void fold_metrics(runtime::Metrics& into, const runtime::Metrics& from) {
  // Stages run fresh engines with independent per-edge ledgers: counters
  // add, but max_edge_bits is a max over stages (summing double-counts).
  into.merge(from);
}

/// Shared preamble: identity coloring -> Linial fixed point.
runtime::IterativeResult run_linial(const graph::Graph& g,
                                    const PipelineOptions& opts, std::size_t delta) {
  const std::uint64_t id_space =
      std::max<std::uint64_t>(g.n(), 1) * std::max<std::uint64_t>(1, opts.id_space_factor);
  return linial_color(g, identity_coloring(g.n()), id_space, delta, opts.iter);
}

void finish(PipelineReport& rep, const graph::Graph& g) {
  rep.total_rounds = rep.rounds_linial + rep.rounds_core + rep.rounds_finish;
  rep.palette = graph::palette_size(rep.colors);
  rep.proper = graph::is_proper_coloring(g, rep.colors);
}

}  // namespace

PipelineReport color_delta_plus_one(const graph::Graph& g,
                                    const PipelineOptions& opts) {
  const std::size_t delta = g.max_degree();
  PipelineReport rep;

  auto lin = run_linial(g, opts, delta);
  rep.rounds_linial = lin.rounds;
  fold_metrics(rep.metrics, lin.metrics);
  rep.proper_each_round = lin.proper_each_round;

  auto ag = additive_group_color(g, std::move(lin.colors), delta, opts.iter);
  rep.rounds_core = ag.rounds;
  fold_metrics(rep.metrics, ag.metrics);
  rep.proper_each_round = rep.proper_each_round && ag.proper_each_round;

  auto red = reduce_colors(g, std::move(ag.colors), delta + 1, opts.iter);
  rep.rounds_finish = red.rounds;
  fold_metrics(rep.metrics, red.metrics);
  rep.proper_each_round = rep.proper_each_round && red.proper_each_round;

  rep.converged = lin.converged && ag.converged && red.converged;
  rep.colors = std::move(red.colors);
  finish(rep, g);
  return rep;
}

PipelineReport color_delta_plus_one_exact(const graph::Graph& g,
                                          const PipelineOptions& opts) {
  const std::size_t delta = g.max_degree();
  PipelineReport rep;

  auto lin = run_linial(g, opts, delta);
  rep.rounds_linial = lin.rounds;
  fold_metrics(rep.metrics, lin.metrics);
  rep.proper_each_round = lin.proper_each_round;

  auto mixed = exact_delta_plus_one(g, std::move(lin.colors), delta, opts.iter);
  rep.rounds_core = mixed.rounds;
  fold_metrics(rep.metrics, mixed.metrics);
  rep.proper_each_round = rep.proper_each_round && mixed.proper_each_round;

  rep.converged = lin.converged && mixed.converged;
  rep.colors = std::move(mixed.colors);
  finish(rep, g);
  return rep;
}

PipelineReport color_kuhn_wattenhofer(const graph::Graph& g,
                                      const PipelineOptions& opts) {
  const std::size_t delta = g.max_degree();
  PipelineReport rep;

  auto lin = run_linial(g, opts, delta);
  rep.rounds_linial = lin.rounds;
  fold_metrics(rep.metrics, lin.metrics);
  rep.proper_each_round = lin.proper_each_round;

  auto kw = kuhn_wattenhofer_reduce(g, std::move(lin.colors), delta, opts.iter);
  rep.rounds_core = kw.rounds;
  fold_metrics(rep.metrics, kw.metrics);
  rep.proper_each_round = rep.proper_each_round && kw.proper_each_round;

  rep.converged = lin.converged && kw.converged;
  rep.colors = std::move(kw.colors);
  finish(rep, g);
  return rep;
}

PipelineReport color_linial_greedy(const graph::Graph& g,
                                   const PipelineOptions& opts) {
  const std::size_t delta = g.max_degree();
  PipelineReport rep;

  auto lin = run_linial(g, opts, delta);
  rep.rounds_linial = lin.rounds;
  fold_metrics(rep.metrics, lin.metrics);
  rep.proper_each_round = lin.proper_each_round;

  auto red = reduce_colors(g, std::move(lin.colors), delta + 1, opts.iter);
  rep.rounds_core = red.rounds;
  fold_metrics(rep.metrics, red.metrics);
  rep.proper_each_round = rep.proper_each_round && red.proper_each_round;

  rep.converged = lin.converged && red.converged;
  rep.colors = std::move(red.colors);
  finish(rep, g);
  return rep;
}

PipelineReport color_o_delta(const graph::Graph& g, const PipelineOptions& opts) {
  const std::size_t delta = g.max_degree();
  PipelineReport rep;

  auto lin = run_linial(g, opts, delta);
  rep.rounds_linial = lin.rounds;
  fold_metrics(rep.metrics, lin.metrics);
  rep.proper_each_round = lin.proper_each_round;

  auto ag = additive_group_color(g, std::move(lin.colors), delta, opts.iter);
  rep.rounds_core = ag.rounds;
  fold_metrics(rep.metrics, ag.metrics);
  rep.proper_each_round = rep.proper_each_round && ag.proper_each_round;

  rep.converged = lin.converged && ag.converged;
  rep.colors = std::move(ag.colors);
  finish(rep, g);
  return rep;
}

}  // namespace agc::coloring
