#include "agc/coloring/pipeline.hpp"

#include <algorithm>

#include "agc/coloring/ag.hpp"
#include "agc/coloring/ag3.hpp"
#include "agc/coloring/kuhn_wattenhofer.hpp"
#include "agc/coloring/linial.hpp"
#include "agc/coloring/reduction.hpp"
#include "agc/obs/event_sink.hpp"

namespace agc::coloring {

namespace {

/// Per-stage options: the pipeline's iterative options with the stage's
/// static tag attached, so emitted events and traces name the stage.
runtime::IterativeOptions stage_opts(const PipelineOptions& opts,
                                     const char* tag) {
  runtime::IterativeOptions o = opts.iter;
  o.tag = tag;
  return o;
}

void stage_event(const PipelineOptions& opts, obs::EventKind kind,
                 const char* tag, std::size_t rounds_so_far, std::size_t value,
                 std::uint64_t ns = 0) {
  if (opts.iter.sink == nullptr) return;
  obs::Event ev;
  ev.kind = kind;
  ev.round = rounds_so_far;
  ev.label = tag;
  ev.value = value;
  ev.ns = ns;
  opts.iter.sink->emit(ev);
}

/// Fold one iterative stage into the report: rounds/metrics/wall add,
/// convergence ANDs (RunReport::absorb), and the locally-iterative invariant
/// ANDs.  Stages run fresh engines with independent per-edge ledgers, so
/// max_edge_bits is a max over stages — Metrics::merge already does that.
void fold_stage(PipelineReport& rep, const runtime::IterativeResult& r) {
  rep.absorb(r);
  rep.proper_each_round = rep.proper_each_round && r.proper_each_round;
}

/// Run one stage bracketed by StageStart/StageEnd events and fold it.
/// `runner` is the stage body; it receives the stage-tagged options.
template <typename Runner>
runtime::IterativeResult run_stage(PipelineReport& rep,
                                   const PipelineOptions& opts, const char* tag,
                                   std::size_t index, Runner&& runner) {
  stage_event(opts, obs::EventKind::StageStart, tag, rep.rounds, index);
  runtime::IterativeResult r = runner(stage_opts(opts, tag));
  stage_event(opts, obs::EventKind::StageEnd, tag, rep.rounds + r.rounds,
              r.rounds, r.wall_ns);
  fold_stage(rep, r);
  return r;
}

/// Shared preamble: identity coloring -> Linial fixed point.
runtime::IterativeResult run_linial(graph::GraphView g,
                                    const PipelineOptions& opts,
                                    const runtime::IterativeOptions& iter,
                                    std::size_t delta) {
  const std::uint64_t id_space =
      std::max<std::uint64_t>(g.n(), 1) * std::max<std::uint64_t>(1, opts.id_space_factor);
  return linial_color(g, identity_coloring(g.n()), id_space, delta, iter);
}

void finish(PipelineReport& rep, graph::GraphView g) {
  rep.palette = graph::palette_size(rep.colors);
  rep.proper = graph::is_proper_coloring(g, rep.colors);
}

PipelineReport fresh_report() {
  PipelineReport rep;
  rep.converged = true;         // absorb() ANDs per-stage convergence in
  rep.proper_each_round = true;  // likewise for the iterative invariant
  return rep;
}

}  // namespace

PipelineReport color_delta_plus_one(graph::GraphView g,
                                    const PipelineOptions& opts) {
  const std::size_t delta = g.max_degree();
  PipelineReport rep = fresh_report();

  auto lin = run_stage(rep, opts, "linial", 0, [&](const auto& iter) {
    return run_linial(g, opts, iter, delta);
  });
  rep.rounds_linial = lin.rounds;

  auto ag = run_stage(rep, opts, "ag", 1, [&](const auto& iter) {
    return additive_group_color(g, std::move(lin.colors), delta, iter);
  });
  rep.rounds_core = ag.rounds;

  auto red = run_stage(rep, opts, "reduce", 2, [&](const auto& iter) {
    return reduce_colors(g, std::move(ag.colors), delta + 1, iter);
  });
  rep.rounds_finish = red.rounds;

  rep.colors = std::move(red.colors);
  finish(rep, g);
  return rep;
}

PipelineReport color_delta_plus_one_exact(graph::GraphView g,
                                          const PipelineOptions& opts) {
  const std::size_t delta = g.max_degree();
  PipelineReport rep = fresh_report();

  auto lin = run_stage(rep, opts, "linial", 0, [&](const auto& iter) {
    return run_linial(g, opts, iter, delta);
  });
  rep.rounds_linial = lin.rounds;

  auto mixed = run_stage(rep, opts, "mixed", 1, [&](const auto& iter) {
    return exact_delta_plus_one(g, std::move(lin.colors), delta, iter);
  });
  rep.rounds_core = mixed.rounds;

  rep.colors = std::move(mixed.colors);
  finish(rep, g);
  return rep;
}

PipelineReport color_kuhn_wattenhofer(graph::GraphView g,
                                      const PipelineOptions& opts) {
  const std::size_t delta = g.max_degree();
  PipelineReport rep = fresh_report();

  auto lin = run_stage(rep, opts, "linial", 0, [&](const auto& iter) {
    return run_linial(g, opts, iter, delta);
  });
  rep.rounds_linial = lin.rounds;

  auto kw = run_stage(rep, opts, "kw", 1, [&](const auto& iter) {
    return kuhn_wattenhofer_reduce(g, std::move(lin.colors), delta, iter);
  });
  rep.rounds_core = kw.rounds;

  rep.colors = std::move(kw.colors);
  finish(rep, g);
  return rep;
}

PipelineReport color_linial_greedy(graph::GraphView g,
                                   const PipelineOptions& opts) {
  const std::size_t delta = g.max_degree();
  PipelineReport rep = fresh_report();

  auto lin = run_stage(rep, opts, "linial", 0, [&](const auto& iter) {
    return run_linial(g, opts, iter, delta);
  });
  rep.rounds_linial = lin.rounds;

  auto red = run_stage(rep, opts, "reduce", 1, [&](const auto& iter) {
    return reduce_colors(g, std::move(lin.colors), delta + 1, iter);
  });
  rep.rounds_core = red.rounds;

  rep.colors = std::move(red.colors);
  finish(rep, g);
  return rep;
}

PipelineReport color_o_delta(graph::GraphView g, const PipelineOptions& opts) {
  const std::size_t delta = g.max_degree();
  PipelineReport rep = fresh_report();

  auto lin = run_stage(rep, opts, "linial", 0, [&](const auto& iter) {
    return run_linial(g, opts, iter, delta);
  });
  rep.rounds_linial = lin.rounds;

  auto ag = run_stage(rep, opts, "ag", 1, [&](const auto& iter) {
    return additive_group_color(g, std::move(lin.colors), delta, iter);
  });
  rep.rounds_core = ag.rounds;

  rep.colors = std::move(ag.colors);
  finish(rep, g);
  return rep;
}

}  // namespace agc::coloring
