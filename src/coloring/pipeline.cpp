#include "agc/coloring/pipeline.hpp"

#include <algorithm>

#include "agc/coloring/ag.hpp"
#include "agc/coloring/ag3.hpp"
#include "agc/coloring/kuhn_wattenhofer.hpp"
#include "agc/coloring/linial.hpp"
#include "agc/coloring/reduction.hpp"
#include "agc/obs/event_sink.hpp"
#include "stage.hpp"

namespace agc::coloring {

using detail::finish;
using detail::fresh_report;
using detail::run_stage;

namespace {

/// Shared preamble: identity coloring -> Linial fixed point.
runtime::IterativeResult run_linial(graph::GraphView g,
                                    const PipelineOptions& opts,
                                    const runtime::IterativeOptions& iter,
                                    std::size_t delta) {
  const std::uint64_t id_space =
      std::max<std::uint64_t>(g.n(), 1) * std::max<std::uint64_t>(1, opts.id_space_factor);
  return linial_color(g, identity_coloring(g.n()), id_space, delta, iter);
}

}  // namespace

PipelineReport color_delta_plus_one(graph::GraphView g,
                                    const PipelineOptions& opts) {
  const std::size_t delta = g.max_degree();
  PipelineReport rep = fresh_report();

  auto lin = run_stage(rep, opts, "linial", 0, [&](const auto& iter) {
    return run_linial(g, opts, iter, delta);
  });
  rep.rounds_linial = lin.rounds;

  auto ag = run_stage(rep, opts, "ag", 1, [&](const auto& iter) {
    return additive_group_color(g, std::move(lin.colors), delta, iter);
  });
  rep.rounds_core = ag.rounds;

  auto red = run_stage(rep, opts, "reduce", 2, [&](const auto& iter) {
    return reduce_colors(g, std::move(ag.colors), delta + 1, iter);
  });
  rep.rounds_finish = red.rounds;

  rep.colors = std::move(red.colors);
  finish(rep, g);
  return rep;
}

PipelineReport color_delta_plus_one_exact(graph::GraphView g,
                                          const PipelineOptions& opts) {
  const std::size_t delta = g.max_degree();
  PipelineReport rep = fresh_report();

  auto lin = run_stage(rep, opts, "linial", 0, [&](const auto& iter) {
    return run_linial(g, opts, iter, delta);
  });
  rep.rounds_linial = lin.rounds;

  auto mixed = run_stage(rep, opts, "mixed", 1, [&](const auto& iter) {
    return exact_delta_plus_one(g, std::move(lin.colors), delta, iter);
  });
  rep.rounds_core = mixed.rounds;

  rep.colors = std::move(mixed.colors);
  finish(rep, g);
  return rep;
}

PipelineReport color_kuhn_wattenhofer(graph::GraphView g,
                                      const PipelineOptions& opts) {
  const std::size_t delta = g.max_degree();
  PipelineReport rep = fresh_report();

  auto lin = run_stage(rep, opts, "linial", 0, [&](const auto& iter) {
    return run_linial(g, opts, iter, delta);
  });
  rep.rounds_linial = lin.rounds;

  auto kw = run_stage(rep, opts, "kw", 1, [&](const auto& iter) {
    return kuhn_wattenhofer_reduce(g, std::move(lin.colors), delta, iter);
  });
  rep.rounds_core = kw.rounds;

  rep.colors = std::move(kw.colors);
  finish(rep, g);
  return rep;
}

PipelineReport color_linial_greedy(graph::GraphView g,
                                   const PipelineOptions& opts) {
  const std::size_t delta = g.max_degree();
  PipelineReport rep = fresh_report();

  auto lin = run_stage(rep, opts, "linial", 0, [&](const auto& iter) {
    return run_linial(g, opts, iter, delta);
  });
  rep.rounds_linial = lin.rounds;

  auto red = run_stage(rep, opts, "reduce", 1, [&](const auto& iter) {
    return reduce_colors(g, std::move(lin.colors), delta + 1, iter);
  });
  rep.rounds_core = red.rounds;

  rep.colors = std::move(red.colors);
  finish(rep, g);
  return rep;
}

PipelineReport color_o_delta(graph::GraphView g, const PipelineOptions& opts) {
  const std::size_t delta = g.max_degree();
  PipelineReport rep = fresh_report();

  auto lin = run_stage(rep, opts, "linial", 0, [&](const auto& iter) {
    return run_linial(g, opts, iter, delta);
  });
  rep.rounds_linial = lin.rounds;

  auto ag = run_stage(rep, opts, "ag", 1, [&](const auto& iter) {
    return additive_group_color(g, std::move(lin.colors), delta, iter);
  });
  rep.rounds_core = ag.rounds;

  rep.colors = std::move(ag.colors);
  finish(rep, g);
  return rep;
}

}  // namespace agc::coloring
