#include "agc/coloring/ag3.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "agc/coloring/ag.hpp"
#include "agc/math/primes.hpp"

namespace agc::coloring {

std::uint64_t three_ag_modulus(std::size_t delta, std::uint64_t palette) {
  const auto cbrt_pal = static_cast<std::uint64_t>(
      std::ceil(std::cbrt(static_cast<double>(palette))));
  return math::next_prime(std::max<std::uint64_t>(3 * delta + 1, cbrt_pal));
}

Color ThreeAgRule::step(Color own, std::span<const Color> neighbors) const {
  const std::uint64_t p = code_.p;
  const std::uint64_t cv = code_.c(own);
  const std::uint64_t bv = code_.b(own);
  const std::uint64_t av = code_.a(own);

  auto any_neighbor = [&](auto pred) {
    for (Color nc : neighbors) {
      if (code_.in_range(nc) && pred(nc)) return true;
    }
    return false;
  };

  if (cv != 0) {
    // Working on the b-coordinate.  Neighbors with the SAME first coordinate
    // drift in lockstep, so a shared b would never resolve — but it never
    // needs to: such neighbors finalize to distinct triples (their a's
    // differ by properness), so they are excluded from the conflict test.
    if (!any_neighbor(
            [&](Color nc) { return code_.b(nc) == bv && code_.c(nc) != cv; })) {
      return code_.encode(0, bv, av);
    }
    return code_.encode(cv, (bv + cv) % p, av);
  }
  // c == 0: working on the a-coordinate.
  if (!any_neighbor([&](Color nc) { return code_.a(nc) == av; })) {
    return code_.encode(0, 0, av);
  }
  return code_.encode(0, bv, (av + bv) % p);
}

std::uint32_t ThreeAgRule::color_bits() const {
  return runtime::width_of(code_.p * code_.p * code_.p - 1);
}

Color AgnRule::step(Color own, std::span<const Color> neighbors) const {
  const std::uint64_t b = own / n_;
  const std::uint64_t a = own % n_;
  if (b == 0) return own;  // final
  // Conflict iff some neighbor (working or final) has the same value
  // coordinate.  Working neighbors <1,a'> with a' != a can never drift into
  // conflict (both shift by 1 per round), so only finalized values matter.
  bool conflict = false;
  for (Color nc : neighbors) {
    if (nc < 2 * n_ && nc % n_ == a) {
      conflict = true;
      break;
    }
  }
  if (!conflict) return a;
  return n_ + (a + 1) % n_;
}

namespace {
std::uint64_t largest_prime_at_most(std::uint64_t x) {
  while (x >= 2 && !math::is_prime(x)) --x;
  return x;
}
}  // namespace

MixedRule::MixedRule(std::size_t delta, std::uint64_t palette)
    : n_(delta + 1), p_(largest_prime_at_most(2 * delta + 1)), delta_(delta) {
  if (delta_ == 0) return;  // edgeless graphs: step() collapses everything to 0
  if (p_ < 2) throw std::logic_error("MixedRule: no usable prime");
  if (palette > p_ * p_) {
    throw std::logic_error(
        "MixedRule: input palette exceeds p^2; pre-reduce with AG first");
  }
}

Color MixedRule::lift(Color proper_color) const {
  if (delta_ == 0) return 0;
  if (proper_color < 2 * n_) return proper_color;  // already a low state
  return 2 * n_ + proper_color;                    // high state (b >= 1 since c >= 2N > p)
}

std::size_t MixedRule::round_bound() const {
  if (delta_ == 0) return 1;
  // eps = p/delta - 1; Corollary 7.3: O((1/eps) * p) rounds for the high
  // phase, plus <= N rounds for each low phase, plus slack.
  const double eps =
      std::max(0.05, static_cast<double>(p_) / static_cast<double>(delta_) - 1.0);
  const auto phases = static_cast<std::size_t>(2.0 + 1.0 / eps);
  return static_cast<std::size_t>(2 * n_) + phases * static_cast<std::size_t>(p_ + 1) +
         static_cast<std::size_t>(2 * n_) + 16;
}

Color MixedRule::transition(Color own, bool value_conflict,
                            bool low_working_neighbor) const {
  if (delta_ == 0) return 0;
  const std::uint64_t N = n_;
  if (own < 2 * N) {
    // Low state: AG(N).
    const std::uint64_t b = own / N;
    const std::uint64_t a = own % N;
    if (b == 0) return own;  // final
    if (!value_conflict) return a;
    return N + (a + 1) % N;
  }
  // High state: AG(p) with the finalize gate.
  const std::uint64_t y = own - 2 * N;
  const std::uint64_t b = y / p_;
  const std::uint64_t a = y % p_;
  if (!value_conflict && !low_working_neighbor) return a;  // drop to low range
  return 2 * N + b * p_ + (a + b) % p_;
}

Color MixedRule::step(Color own, std::span<const Color> neighbors) const {
  if (delta_ == 0) return 0;
  const std::uint64_t N = n_;
  if (own < 2 * N) {
    // Low conflict: a neighbor (working or final, high neighbors ignored)
    // with the same value coordinate.
    const std::uint64_t a = own % N;
    bool conflict = false;
    for (Color nc : neighbors) {
      if (nc < 2 * N && nc % N == a) {
        conflict = true;
        break;
      }
    }
    return transition(own, conflict, /*low_working_neighbor=*/false);
  }
  // High conflict: value collision among high neighbors / low finals; the
  // gate closes while any low neighbor is still working.
  const std::uint64_t a = (own - 2 * N) % p_;
  bool gate_closed = false;
  bool conflict = false;
  for (Color nc : neighbors) {
    if (nc >= N && nc < 2 * N) gate_closed = true;
    if (nc >= 2 * N && (nc - 2 * N) % p_ == a) conflict = true;
    if (nc < N && nc == a) conflict = true;
  }
  return transition(own, conflict, gate_closed);
}

std::uint32_t MixedRule::color_bits() const {
  if (delta_ == 0) return 1;
  return runtime::width_of(2 * n_ + p_ * p_ - 1);
}

Mixed3Rule::Mixed3Rule(std::size_t delta, std::uint64_t palette)
    : n_(delta + 1), p_(largest_prime_at_most(2 * delta + 1)), delta_(delta) {
  if (delta_ == 0) return;
  if (p_ < 2 || p_ * p_ * p_ < palette) {
    throw std::logic_error(
        "Mixed3Rule: input palette exceeds p^3; pre-reduce with AG first");
  }
}

Color Mixed3Rule::lift(Color proper_color) const {
  if (delta_ == 0) return 0;
  if (proper_color < 2 * n_) return proper_color;
  return 2 * n_ + proper_color;
}

std::size_t Mixed3Rule::round_bound() const {
  if (delta_ == 0) return 1;
  const double eps =
      std::max(0.05, static_cast<double>(p_) / static_cast<double>(delta_) - 1.0);
  const auto phases = static_cast<std::size_t>(2.0 + 1.0 / eps);
  return 4 * static_cast<std::size_t>(n_) + phases * 3 * static_cast<std::size_t>(p_) +
         32;
}

Color Mixed3Rule::step(Color own, std::span<const Color> neighbors) const {
  if (delta_ == 0) return 0;
  const std::uint64_t N = n_;
  const std::uint64_t p = p_;

  if (own < 2 * N) {
    // Low state: AG(N), ignoring high neighbors.
    const std::uint64_t b = own / N;
    const std::uint64_t a = own % N;
    if (b == 0) return own;
    bool conflict = false;
    for (Color nc : neighbors) {
      if (nc < 2 * N && nc % N == a) {
        conflict = true;
        break;
      }
    }
    if (!conflict) return a;
    return N + (a + 1) % N;
  }

  // High state: 3AG(p) with the finalize gate.
  const std::uint64_t y = own - 2 * N;
  const std::uint64_t cv = y / (p * p);
  const std::uint64_t bv = (y / p) % p;
  const std::uint64_t av = y % p;

  bool gate_open = true;
  bool b_conflict = false;  // vs high neighbors' b-coordinate
  bool a_conflict = false;  // vs high neighbors' a-coordinate and low finals
  for (Color nc : neighbors) {
    if (nc >= N && nc < 2 * N) gate_open = false;
    if (nc >= 2 * N) {
      const std::uint64_t ny = nc - 2 * N;
      // Same-c neighbors drift in lockstep and finalize to distinct states;
      // they are excluded from the b-test (see ThreeAgRule::step).
      if ((ny / p) % p == bv && ny / (p * p) != cv) b_conflict = true;
      if (ny % p == av) a_conflict = true;
    }
    if (nc < N && nc == av) a_conflict = true;
  }

  auto enc = [&](std::uint64_t c, std::uint64_t b, std::uint64_t a) {
    return 2 * N + (c * p + b) * p + a;
  };

  if (cv != 0) {
    if (b_conflict) return enc(cv, (bv + cv) % p, av);
    if (bv != 0) return enc(0, bv, av);  // c-coordinate done, not yet final
    // <c,0,a> would finalize straight to <0,0,a>; allowed only if the value
    // is free and no low neighbor is still working.
    if (!a_conflict && gate_open) return av;  // exit to the low range
    return enc(cv, cv, av);                   // blocked: b circles to c
  }
  // cv == 0 (and bv != 0 — <0,0,a> never persists in the high range).
  if (!a_conflict && gate_open) return av;  // exit to the low range
  return enc(0, bv, (av + bv) % p);
}

std::uint32_t Mixed3Rule::color_bits() const {
  if (delta_ == 0) return 1;
  return runtime::width_of(space() - 1);
}

std::vector<Color> Mixed3Rule::candidates(Color own) const {
  std::vector<Color> out;
  if (delta_ == 0) return out;
  const std::uint64_t N = n_;
  const std::uint64_t p = p_;
  if (own < N) return {own};  // final: keeps its color forever, so forbid it
  if (own < 2 * N) {
    const std::uint64_t a = own % N;
    out = {a, N + (a + 1) % N};
    return out;
  }
  const std::uint64_t y = own - 2 * N;
  const std::uint64_t cv = y / (p * p);
  const std::uint64_t bv = (y / p) % p;
  const std::uint64_t av = y % p;
  auto enc = [&](std::uint64_t c, std::uint64_t b, std::uint64_t a) {
    return 2 * N + (c * p + b) * p + a;
  };
  if (cv != 0) {
    if (bv != 0) {
      out = {enc(0, bv, av), enc(cv, (bv + cv) % p, av)};
    } else {
      out = {av, enc(cv, cv, av)};
    }
  } else {
    out = {av, enc(0, bv, (av + bv) % p)};
  }
  return out;
}

runtime::IterativeResult exact_delta_plus_one(graph::GraphView g,
                                              std::vector<Color> initial,
                                              std::size_t delta,
                                              const runtime::IterativeOptions& opts) {
  const std::uint64_t p = largest_prime_at_most(2 * delta + 1);
  Color palette = graph::max_color(initial) + 1;
  runtime::IterativeResult pre;
  const bool needs_pre = delta > 0 && palette > p * p;
  if (needs_pre) {
    // Input too wide for the mixed encoding: one plain AG pass first.
    pre = additive_group_color(g, std::move(initial), delta, opts);
    initial = std::move(pre.colors);
    palette = graph::max_color(initial) + 1;
  }

  MixedRule rule(delta, palette);
  for (Color& c : initial) c = rule.lift(c);
  runtime::IterativeOptions capped = opts;
  capped.max_rounds = std::min(opts.max_rounds, rule.round_bound());
  auto result = run_locally_iterative(g, std::move(initial), rule, capped);
  if (needs_pre) {
    result.rounds += pre.rounds;
    result.proper_each_round = result.proper_each_round && pre.proper_each_round;
    result.metrics.rounds += pre.metrics.rounds;
    result.metrics.messages += pre.metrics.messages;
    result.metrics.total_bits += pre.metrics.total_bits;
  }
  return result;
}

}  // namespace agc::coloring
