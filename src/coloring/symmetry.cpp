#include "agc/coloring/symmetry.hpp"

#include <memory>

#include "agc/graph/checks.hpp"
#include "agc/obs/event_sink.hpp"
#include "agc/obs/phase_timer.hpp"
#include "agc/runtime/engine.hpp"

namespace agc::coloring {

namespace {

enum Status : std::uint64_t { kUndecided = 0, kIn = 1, kOut = 2 };

/// Broadcasts (color, status); decides once every smaller-colored neighbor
/// has, joining iff no neighbor is in.
class MisWaveProgram final : public runtime::VertexProgram {
 public:
  MisWaveProgram(Color color, std::uint32_t color_bits)
      : color_(color), bits_(color_bits) {}

  void on_send(const runtime::VertexEnv&, runtime::OutboxRef& out) override {
    out.broadcast(runtime::Word{(color_ << 2) | status_, bits_ + 2});
  }

  void on_receive(const runtime::VertexEnv&, const runtime::InboxRef& in) override {
    if (status_ != kUndecided) return;
    bool any_in = false;
    bool smaller_undecided = false;
    for (const auto packed : in.multiset()) {
      const Color c = packed >> 2;
      const auto s = static_cast<Status>(packed & 3);
      if (s == kIn) any_in = true;
      if (s == kUndecided && c < color_) smaller_undecided = true;
    }
    if (any_in) {
      status_ = kOut;
    } else if (!smaller_undecided) {
      status_ = kIn;
    }
  }

  [[nodiscard]] bool halted(const runtime::VertexEnv&) const override {
    return status_ != kUndecided;
  }

  [[nodiscard]] bool in_mis() const noexcept { return status_ == kIn; }

 private:
  Color color_;
  std::uint32_t bits_;
  std::uint64_t status_ = kUndecided;
};

}  // namespace

MisReport mis_from_coloring(graph::GraphView g, const std::vector<Color>& colors,
                            const runtime::IterativeOptions& opts) {
  const std::uint64_t t0 = obs::monotonic_ns();
  MisReport rep;
  const Color palette = graph::max_color(colors) + 1;
  const std::uint32_t bits = runtime::width_of(palette - 1);

  // The MIS wave sends directed status words, which SET-LOCAL cannot; the
  // broadcast here is sender-anonymous, so SET_LOCAL remains allowed.
  runtime::Engine engine(g, runtime::Transport(opts.model, opts.congest_bits));
  if (opts.executor) engine.set_executor(opts.executor);
  obs::PhaseProfile profile;
  if (opts.collect_phase_times) engine.set_profile(&profile);
  if (opts.sink != nullptr) engine.set_sink(opts.sink);
  engine.install([&](const runtime::VertexEnv& env) {
    return std::make_unique<MisWaveProgram>(colors[env.id], bits);
  });

  if (opts.sink != nullptr) {
    obs::Event ev;
    ev.kind = obs::EventKind::StageStart;
    ev.label = opts.tag != nullptr ? opts.tag : "mis-wave";
    ev.value = g.n();
    opts.sink->emit(ev);
  }

  rep.rounds_mis = engine.run(static_cast<std::size_t>(palette) + 2);

  rep.in_mis.resize(g.n());
  for (graph::Vertex v = 0; v < g.n(); ++v) {
    rep.in_mis[v] = dynamic_cast<const MisWaveProgram&>(engine.program(v)).in_mis();
  }
  rep.valid = engine.all_halted() && graph::is_mis(g, rep.in_mis);

  rep.rounds = rep.rounds_mis;
  rep.converged = rep.valid;
  rep.metrics = engine.metrics();
  rep.phases = profile.folded();
  rep.wall_ns = obs::monotonic_ns() - t0;

  if (opts.sink != nullptr) {
    obs::Event ev;
    ev.kind = obs::EventKind::StageEnd;
    ev.label = opts.tag != nullptr ? opts.tag : "mis-wave";
    ev.round = rep.rounds_mis;
    ev.value = rep.valid ? 1 : 0;
    ev.ns = rep.wall_ns;
    opts.sink->emit(ev);
  }
  return rep;
}

MisReport maximal_independent_set(graph::GraphView g,
                                  const PipelineOptions& opts) {
  const auto colored = color_delta_plus_one(g, opts);
  auto rep = mis_from_coloring(g, colored.colors, opts.iter);
  rep.rounds_coloring = colored.rounds;
  rep.valid = rep.valid && colored.converged && colored.proper;
  // Fold the coloring stage's report core into the reduction's.
  rep.absorb(colored);
  rep.converged = rep.valid;
  return rep;
}

MatchingReport maximal_matching(graph::GraphView g, const PipelineOptions& opts) {
  MatchingReport rep;
  const auto lg = graph::line_graph(g);
  const auto mis = maximal_independent_set(lg.graph, opts);
  static_cast<runtime::RunReport&>(rep) = mis;
  for (graph::Vertex i = 0; i < lg.graph.n(); ++i) {
    if (mis.in_mis[i]) rep.matching.push_back(lg.edge_of[i]);
  }
  rep.valid = mis.valid && graph::is_maximal_matching(g, rep.matching);
  rep.converged = rep.valid;
  return rep;
}

LineEdgeColoringReport edge_coloring_via_line_graph(graph::GraphView g,
                                                    const PipelineOptions& opts) {
  LineEdgeColoringReport rep;
  const auto lg = graph::line_graph(g);
  const auto colored = color_delta_plus_one(lg.graph, opts);
  static_cast<runtime::RunReport&>(rep) = colored;
  rep.colors = colored.colors;
  rep.palette = colored.palette;
  rep.proper = colored.converged && graph::is_proper_edge_coloring(g, rep.colors);
  rep.converged = rep.proper;
  return rep;
}

}  // namespace agc::coloring
