#pragma once

#include <cstddef>
#include <cstdint>

#include "agc/coloring/pipeline.hpp"
#include "agc/graph/checks.hpp"
#include "agc/obs/event_sink.hpp"

/// \file stage.hpp (internal)
/// The stage-composition helpers shared by the pipeline front doors
/// (pipeline.cpp, fyz.cpp): per-stage option tagging, StageStart/StageEnd
/// bracketing, report folding and the finishing palette/properness stamp.
/// Internal to src/coloring — the public surface is pipeline.hpp / fyz.hpp.

namespace agc::coloring::detail {

/// Per-stage options: the pipeline's iterative options with the stage's
/// static tag attached, so emitted events and traces name the stage.
inline runtime::IterativeOptions stage_opts(const PipelineOptions& opts,
                                            const char* tag) {
  runtime::IterativeOptions o = opts.iter;
  o.tag = tag;
  return o;
}

inline void stage_event(const PipelineOptions& opts, obs::EventKind kind,
                        const char* tag, std::size_t rounds_so_far,
                        std::size_t value, std::uint64_t ns = 0) {
  if (opts.iter.sink == nullptr) return;
  obs::Event ev;
  ev.kind = kind;
  ev.round = rounds_so_far;
  ev.label = tag;
  ev.value = value;
  ev.ns = ns;
  opts.iter.sink->emit(ev);
}

/// Fold one iterative stage into the report: rounds/metrics/wall add,
/// convergence ANDs (RunReport::absorb), and the locally-iterative invariant
/// ANDs.  Stages run fresh engines with independent per-edge ledgers, so
/// max_edge_bits is a max over stages — Metrics::merge already does that.
inline void fold_stage(PipelineReport& rep, const runtime::IterativeResult& r) {
  rep.absorb(r);
  rep.proper_each_round = rep.proper_each_round && r.proper_each_round;
}

/// Run one stage bracketed by StageStart/StageEnd events and fold it.
/// `runner` is the stage body; it receives the stage-tagged options.
template <typename Runner>
runtime::IterativeResult run_stage(PipelineReport& rep,
                                   const PipelineOptions& opts, const char* tag,
                                   std::size_t index, Runner&& runner) {
  stage_event(opts, obs::EventKind::StageStart, tag, rep.rounds, index);
  runtime::IterativeResult r = runner(stage_opts(opts, tag));
  stage_event(opts, obs::EventKind::StageEnd, tag, rep.rounds + r.rounds,
              r.rounds, r.wall_ns);
  fold_stage(rep, r);
  return r;
}

inline void finish(PipelineReport& rep, graph::GraphView g) {
  rep.palette = graph::palette_size(rep.colors);
  rep.proper = graph::is_proper_coloring(g, rep.colors);
}

inline PipelineReport fresh_report() {
  PipelineReport rep;
  rep.converged = true;          // absorb() ANDs per-stage convergence in
  rep.proper_each_round = true;  // likewise for the iterative invariant
  return rep;
}

}  // namespace agc::coloring::detail
