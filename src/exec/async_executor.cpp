#include "agc/exec/async_executor.hpp"

#include <algorithm>
#include <thread>

#include "agc/exec/executor.hpp"  // shard_range

namespace agc::exec {

AsyncExecutor::AsyncExecutor(std::size_t threads, AsyncSchedule schedule)
    : pool_(threads), schedule_(schedule) {
  // Built once; reads the window-scoped members through `this`, so no
  // std::function is constructed per round (matching ParallelExecutor).
  window_task_ = [this](std::size_t s) {
    try {
      shard_window(*ctx_, s, window_rounds_);
    } catch (...) {
      // A dead shard would leave its neighbors parked forever waiting for
      // sends that will never come: raise the abort flag and wake everyone
      // before letting the pool record the exception (it rethrows the
      // lowest-indexed one after the batch drains).
      abort_.store(true, std::memory_order_seq_cst);
      lot_.wake_all();
      throw;
    }
  };
}

void AsyncExecutor::round(runtime::RoundContext& ctx,
                          runtime::Metrics& total) {
  run_window(ctx, total, 1);
}

std::size_t AsyncExecutor::run_window(runtime::RoundContext& ctx,
                                      runtime::Metrics& total,
                                      std::size_t rounds) {
  if (rounds == 0) return 0;
  const std::size_t n = ctx.n();
  const std::size_t shards = pool_.size();
  ctx.prepare(shards);
  if (slots_ < n) {
    sent_ = std::make_unique<std::atomic<std::uint32_t>[]>(n);
    halted_ = std::make_unique<std::atomic<std::uint8_t>[]>(n);
    slots_ = n;
  }
  for (std::size_t v = 0; v < n; ++v) {
    sent_[v].store(0, std::memory_order_relaxed);
    halted_[v].store(0, std::memory_order_relaxed);
  }
  fired_.assign(n, 0);
  per_shard_.assign(shards, runtime::Metrics{});  // capacity reused
  abort_.store(false, std::memory_order_relaxed);
  ctx_ = &ctx;
  window_rounds_ = rounds;

  pool_.run(shards, window_task_);

  ctx_ = nullptr;
  runtime::RoundContext::reduce(per_shard_, total);
  std::uint32_t fired_max = 0;
  for (const std::uint32_t f : fired_) fired_max = std::max(fired_max, f);
  return fired_max;
}

bool AsyncExecutor::vertex_ready(graph::GraphView g, graph::Vertex v,
                                 std::uint32_t k) const noexcept {
  for (const graph::Vertex u : g.neighbors(v)) {
    if (sent_[u].load(std::memory_order_acquire) >= k + 1) continue;
    // A halted neighbor never advances sent_, but its final message was
    // mirrored into both parity slots before the flag was published.
    if (halted_[u].load(std::memory_order_acquire) != 0) continue;
    return false;
  }
  return true;
}

void AsyncExecutor::shard_window(runtime::RoundContext& ctx, std::size_t shard,
                                 std::size_t rounds) {
  const auto [begin, end] = shard_range(ctx.n(), pool_.size(), shard);
  obs::PhaseProfile* profile = ctx.profile();
  obs::PhaseStats* stats = profile != nullptr ? profile->shard(shard) : nullptr;
  const std::uint64_t base = ctx.base_round();
  const graph::GraphView g = ctx.graph();
  runtime::Metrics& metrics = per_shard_[shard];

  // The shard's work queue: vertices still live in this window, in schedule
  // order.  Finished vertices are compacted out stably, so later passes
  // never revisit them and the priority order survives.
  std::vector<graph::Vertex> queue;
  queue.reserve(end - begin);
  for (graph::Vertex v = begin; v < end; ++v) queue.push_back(v);
  if (schedule_ == AsyncSchedule::DegreeOrder) {
    std::stable_sort(queue.begin(), queue.end(),
                     [&](graph::Vertex a, graph::Vertex b) {
                       return g.degree(a) > g.degree(b);
                     });
  }

  while (!queue.empty()) {
    if (abort_.load(std::memory_order_relaxed)) return;
    // Snapshot the wake tick before scanning: any publish that lands after
    // a failed readiness check below also moves the tick, so park() returns
    // immediately instead of sleeping through it.
    const std::uint64_t seen = lot_.tick();
    bool progress = false;
    std::size_t keep = 0;
    for (std::size_t i = 0; i < queue.size(); ++i) {
      const graph::Vertex v = queue[i];
      const std::uint32_t k = fired_[v];
      if (sent_[v].load(std::memory_order_relaxed) == k) {
        {
          obs::ScopedPhaseTimer timer(stats, obs::Phase::Send);
          ctx.send_vertex(v, shard, base + k);
        }
        sent_[v].store(k + 1, std::memory_order_release);
        lot_.wake_all();
        progress = true;
      }
      bool done = false;
      if (vertex_ready(g, v, k)) {
        {
          obs::ScopedPhaseTimer timer(stats, obs::Phase::Deliver);
          ctx.deliver_vertex(v, metrics, base + k);
        }
        {
          obs::ScopedPhaseTimer timer(stats, obs::Phase::Receive);
          ctx.receive_vertex(v, shard, base + k);
        }
        fired_[v] = k + 1;
        progress = true;
        if (k + 1 >= rounds) {
          done = true;  // window exhausted; neighbors need at most sent_==rounds
        } else if (ctx.vertex_halted(v)) {
          // Halted early: future-epoch readers must keep seeing the final
          // message — mirror it into the other parity slot, then publish
          // the halt so neighbors stop waiting on sent_.
          ctx.mirror_vertex(v, base + k);
          halted_[v].store(1, std::memory_order_release);
          lot_.wake_all();
          done = true;
        }
      }
      if (!done) queue[keep++] = v;
    }
    queue.resize(keep);
    if (queue.empty()) return;
    if (!progress) {
      // Every runnable vertex is waiting on a neighbor: park until someone
      // publishes.  The globally least-advanced vertex always has an
      // enabled action, so the system as a whole cannot deadlock.
      obs::ScopedPhaseTimer timer(stats, obs::Phase::Barrier);
      lot_.park(seen);
    }
  }
}

std::shared_ptr<runtime::RoundExecutor> make_async_executor(
    std::size_t threads, AsyncSchedule schedule) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return std::make_shared<AsyncExecutor>(threads, schedule);
}

}  // namespace agc::exec
