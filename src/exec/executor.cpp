#include "agc/exec/executor.hpp"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

namespace agc::exec {

void ParallelExecutor::round(runtime::RoundContext& ctx,
                             runtime::Metrics& total) {
  const std::size_t shards = pool_.size();
  const std::size_t n = ctx.n();

  pool_.run(shards, [&](std::size_t s) {
    const auto [b, e] = shard_range(n, shards, s);
    ctx.send(b, e);
  });

  std::vector<runtime::Metrics> per_shard(shards);
  pool_.run(shards, [&](std::size_t s) {
    const auto [b, e] = shard_range(n, shards, s);
    ctx.deliver(b, e, per_shard[s]);
  });
  runtime::RoundContext::reduce(per_shard, total);

  pool_.run(shards, [&](std::size_t s) {
    const auto [b, e] = shard_range(n, shards, s);
    ctx.receive(b, e);
  });
}

std::shared_ptr<runtime::RoundExecutor> make_executor(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (threads == 1) return std::make_shared<runtime::SequentialExecutor>();
  return std::make_shared<ParallelExecutor>(threads);
}

std::size_t default_threads() {
  const char* env = std::getenv("AGC_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  const auto v = std::strtoull(env, nullptr, 10);
  if (v == 0) return std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return static_cast<std::size_t>(v);
}

}  // namespace agc::exec
