#include "agc/exec/executor.hpp"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

namespace agc::exec {

ParallelExecutor::ParallelExecutor(std::size_t threads) : pool_(threads) {
  // Built once; each task reads the round-scoped ctx_ through `this`, so
  // round() never constructs a std::function (which would heap-allocate).
  send_task_ = [this](std::size_t s) {
    const auto [b, e] = shard_range(ctx_->n(), pool_.size(), s);
    ctx_->send(b, e, s);
  };
  deliver_task_ = [this](std::size_t s) {
    const auto [b, e] = shard_range(ctx_->n(), pool_.size(), s);
    ctx_->deliver(b, e, per_shard_[s]);
  };
  receive_task_ = [this](std::size_t s) {
    const auto [b, e] = shard_range(ctx_->n(), pool_.size(), s);
    ctx_->receive(b, e, s);
  };
}

void ParallelExecutor::round(runtime::RoundContext& ctx,
                             runtime::Metrics& total) {
  const std::size_t shards = pool_.size();
  ctx.prepare(shards);
  ctx_ = &ctx;
  per_shard_.assign(shards, runtime::Metrics{});  // capacity reused

  pool_.run(shards, send_task_);
  pool_.run(shards, deliver_task_);
  runtime::RoundContext::reduce(per_shard_, total);
  pool_.run(shards, receive_task_);
  ctx_ = nullptr;
}

std::shared_ptr<runtime::RoundExecutor> make_executor(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (threads == 1) return std::make_shared<runtime::SequentialExecutor>();
  return std::make_shared<ParallelExecutor>(threads);
}

std::size_t default_threads() {
  const char* env = std::getenv("AGC_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  const auto v = std::strtoull(env, nullptr, 10);
  if (v == 0) return std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return static_cast<std::size_t>(v);
}

}  // namespace agc::exec
