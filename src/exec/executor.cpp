#include "agc/exec/executor.hpp"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

namespace agc::exec {

ParallelExecutor::ParallelExecutor(std::size_t threads) : pool_(threads) {
  // Built once; each task reads the round-scoped ctx_ through `this`, so
  // round() never constructs a std::function (which would heap-allocate).
  send_task_ = [this](std::size_t s) {
    ctx_->send(bounds_[s], bounds_[s + 1], s);
  };
  deliver_task_ = [this](std::size_t s) {
    ctx_->deliver(bounds_[s], bounds_[s + 1], per_shard_[s], s);
  };
  receive_task_ = [this](std::size_t s) {
    ctx_->receive(bounds_[s], bounds_[s + 1], s);
  };
}

void ParallelExecutor::refresh_bounds(const runtime::RoundContext& ctx) {
  const graph::GraphView g = ctx.graph();
  const std::size_t shards = pool_.size();
  if (bounds_built_ && bounds_n_ == g.n() &&
      bounds_version_ == g.topology_version() &&
      bounds_.size() == shards + 1) {
    return;  // steady state: O(1) per round, like the mailbox arena
  }
  const std::size_t n = g.n();
  bounds_.assign(shards + 1, static_cast<graph::Vertex>(n));
  bounds_[0] = 0;
  // Weight each vertex by degree + 1: edge work dominates send/deliver, the
  // +1 keeps huge runs of isolated vertices from collapsing into one shard.
  const std::uint64_t total = 2 * static_cast<std::uint64_t>(g.m()) + n;
  std::uint64_t acc = 0;
  std::size_t s = 1;
  for (graph::Vertex v = 0; v < n && s < shards; ++v) {
    acc += g.degree(v) + 1;
    // Cut after v once the running weight crosses the s-th quantile.
    while (s < shards && acc * shards >= total * s) {
      bounds_[s++] = v + 1;
    }
  }
  bounds_n_ = n;
  bounds_version_ = g.topology_version();
  bounds_built_ = true;
}

void ParallelExecutor::round(runtime::RoundContext& ctx,
                             runtime::Metrics& total) {
  const std::size_t shards = pool_.size();
  ctx.prepare(shards);
  refresh_bounds(ctx);
  ctx_ = &ctx;
  per_shard_.assign(shards, runtime::Metrics{});  // capacity reused

  obs::PhaseProfile* profile = ctx.profile();
  if (profile == nullptr) {
    pool_.run(shards, send_task_);
    pool_.run(shards, deliver_task_);
    runtime::RoundContext::reduce(per_shard_, total);
    pool_.run(shards, receive_task_);
    ctx_ = nullptr;
    return;
  }

  // Profiled path: barrier idle = the fork/join wall clock times the shard
  // count, minus the time shards spent inside the phase bodies.  The slowest
  // shard dominates the wall, so this is exactly the sum of everyone else's
  // wait (plus fork/join overhead), attributed to the driving thread's extra
  // accumulator — shard accumulators stay owned by their shards.
  std::uint64_t busy_before = 0;
  std::uint64_t idle_ns = 0;
  const auto fork_join = [&](const std::function<void(std::size_t)>& task,
                             obs::Phase phase) {
    busy_before = profile->busy_ns(phase);
    const std::uint64_t t0 = obs::monotonic_ns();
    pool_.run(shards, task);
    const std::uint64_t wall = obs::monotonic_ns() - t0;
    const std::uint64_t busy = profile->busy_ns(phase) - busy_before;
    const std::uint64_t occupied = wall * shards;
    idle_ns += occupied > busy ? occupied - busy : 0;
  };
  fork_join(send_task_, obs::Phase::Send);
  fork_join(deliver_task_, obs::Phase::Deliver);
  runtime::RoundContext::reduce(per_shard_, total);
  fork_join(receive_task_, obs::Phase::Receive);
  profile->extra()->add(obs::Phase::Barrier, idle_ns);
  ctx_ = nullptr;
}

std::shared_ptr<runtime::RoundExecutor> make_executor(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  if (threads == 1) return std::make_shared<runtime::SequentialExecutor>();
  return std::make_shared<ParallelExecutor>(threads);
}

std::size_t default_threads() {
  const char* env = std::getenv("AGC_THREADS");
  if (env == nullptr || *env == '\0') return 1;
  const auto v = std::strtoull(env, nullptr, 10);
  if (v == 0) return std::max<std::size_t>(1, std::thread::hardware_concurrency());
  return static_cast<std::size_t>(v);
}

}  // namespace agc::exec
