#include "agc/exec/thread_pool.hpp"

#include <algorithm>

namespace agc::exec {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = std::max<std::size_t>(1, threads);
  workers_.reserve(count);
  for (std::size_t w = 0; w < count; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  start_.notify_all();
  for (auto& t : workers_) t.join();
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  std::unique_lock lk(mu_);
  for (;;) {
    start_.wait(lk, [&] { return stop_ || epoch_ != seen; });
    if (stop_) return;
    seen = epoch_;
    const std::size_t tasks = tasks_;
    const auto* body = body_;
    lk.unlock();
    for (std::size_t i = worker; i < tasks; i += workers_.size()) {
      try {
        (*body)(i);
      } catch (...) {
        std::lock_guard g(mu_);
        if (i < error_task_) {
          error_task_ = i;
          error_ = std::current_exception();
        }
      }
    }
    lk.lock();
    if (--running_ == 0) done_.notify_all();
  }
}

void ThreadPool::run(std::size_t tasks,
                     const std::function<void(std::size_t)>& body) {
  if (tasks <= 1 || workers_.size() == 1) {
    for (std::size_t i = 0; i < tasks; ++i) body(i);
    return;
  }
  std::unique_lock lk(mu_);
  body_ = &body;
  tasks_ = tasks;
  running_ = workers_.size();
  error_task_ = SIZE_MAX;
  error_ = nullptr;
  ++epoch_;
  start_.notify_all();
  done_.wait(lk, [&] { return running_ == 0; });
  body_ = nullptr;
  if (error_) std::rethrow_exception(error_);
}

void ParkingLot::park(std::uint64_t seen) {
  std::unique_lock lk(mu_);
  parked_.fetch_add(1, std::memory_order_seq_cst);
  cv_.wait(lk, [&] { return tick_.load(std::memory_order_seq_cst) != seen; });
  parked_.fetch_sub(1, std::memory_order_relaxed);
}

void ParkingLot::wake_all() noexcept {
  tick_.fetch_add(1, std::memory_order_seq_cst);
  if (parked_.load(std::memory_order_seq_cst) == 0) return;
  // Taking the mutex orders this notify after any parker that passed its
  // predicate check but has not finished entering the wait.
  { std::lock_guard lk(mu_); }
  cv_.notify_all();
}

}  // namespace agc::exec
