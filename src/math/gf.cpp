// gf.hpp is header-only; this translation unit pins the vtable-free types and
// provides a home for future out-of-line helpers.
#include "agc/math/gf.hpp"

namespace agc::math {

static_assert(sizeof(Zm) == sizeof(std::uint64_t));

}  // namespace agc::math
