#include "agc/math/polynomial.hpp"

namespace agc::math {

Polynomial Polynomial::from_digits(GF field, std::uint64_t value, int max_degree) {
  std::vector<std::uint64_t> digits;
  digits.reserve(static_cast<std::size_t>(max_degree) + 1);
  const std::uint64_t q = field.modulus();
  for (int i = 0; i <= max_degree; ++i) {
    digits.push_back(value % q);
    value /= q;
  }
  return Polynomial(field, std::move(digits));
}

std::uint64_t Polynomial::eval(std::uint64_t x) const noexcept {
  // Horner's rule, highest coefficient first.
  std::uint64_t acc = 0;
  x = field_.reduce(x);
  for (auto it = coeffs_.rbegin(); it != coeffs_.rend(); ++it) {
    acc = field_.add(field_.mul(acc, x), *it);
  }
  return acc;
}

}  // namespace agc::math
