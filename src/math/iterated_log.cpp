#include "agc/math/iterated_log.hpp"

#include <bit>
#include <cassert>
#include <cmath>

namespace agc::math {

int log2_floor(std::uint64_t n) noexcept {
  assert(n >= 1);
  return 63 - std::countl_zero(n);
}

int log2_ceil(std::uint64_t n) noexcept {
  assert(n >= 1);
  return n == 1 ? 0 : 64 - std::countl_zero(n - 1);
}

int log_star(std::uint64_t n) noexcept {
  int count = 0;
  double x = static_cast<double>(n);
  while (x >= 2.0) {
    x = std::log2(x);
    ++count;
  }
  return count;
}

}  // namespace agc::math
