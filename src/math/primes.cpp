#include "agc/math/primes.hpp"

#include <array>

namespace agc::math {

std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b, std::uint64_t m) noexcept {
  return static_cast<std::uint64_t>((static_cast<unsigned __int128>(a) * b) % m);
}

std::uint64_t pow_mod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) noexcept {
  if (m == 1) return 0;
  std::uint64_t result = 1;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = mul_mod(result, base, m);
    base = mul_mod(base, base, m);
    exp >>= 1;
  }
  return result;
}

namespace {

/// One Miller-Rabin round: returns true if `a` witnesses that n is composite.
bool witnesses_composite(std::uint64_t n, std::uint64_t a, std::uint64_t d,
                         int r) noexcept {
  std::uint64_t x = pow_mod(a, d, n);
  if (x == 1 || x == n - 1) return false;
  for (int i = 0; i < r - 1; ++i) {
    x = mul_mod(x, x, n);
    if (x == n - 1) return false;
  }
  return true;
}

}  // namespace

bool is_prime(std::uint64_t n) noexcept {
  if (n < 2) return false;
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (n % p == 0) return n == p;
  }
  // n - 1 = d * 2^r with d odd.
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  // This witness set is deterministic for all n < 2^64 (Sorenson & Webster).
  for (std::uint64_t a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                          23ULL, 29ULL, 31ULL, 37ULL}) {
    if (witnesses_composite(n, a, d, r)) return false;
  }
  return true;
}

std::uint64_t next_prime(std::uint64_t n) noexcept {
  if (n <= 2) return 2;
  if ((n & 1) == 0) ++n;
  while (!is_prime(n)) n += 2;
  return n;
}

std::uint64_t next_prime_above(std::uint64_t n) noexcept { return next_prime(n + 1); }

std::optional<std::uint64_t> prime_in_range(std::uint64_t lo, std::uint64_t hi) noexcept {
  if (lo >= hi) return std::nullopt;
  std::uint64_t p = next_prime(lo);
  if (p < hi) return p;
  return std::nullopt;
}

}  // namespace agc::math
