#include "agc/selfstab/ss_mis.hpp"

#include <algorithm>
#include <utility>

#include "agc/graph/checks.hpp"
#include "agc/selfstab/detail/run_loop.hpp"

namespace agc::selfstab {

MisStatus mis_update(std::uint64_t my_color, MisStatus my_status,
                     std::span<const std::uint64_t> neighbors) {
  bool nbr_mis = false;
  for (std::uint64_t w : neighbors) {
    if (packed_status(w) == kMis) {
      nbr_mis = true;
      break;
    }
  }

  // Transitions into Undecided take effect this round but do NOT permit a
  // same-round join: a joining decision must be based on neighbors that can
  // see us as Undecided, otherwise two NOTMIS neighbors could flip to
  // Undecided and both join on stale information, oscillating forever.
  if (my_status == kMis) return nbr_mis ? kUndecided : kMis;
  if (my_status == kNotMis) return nbr_mis ? kNotMis : kUndecided;

  // Undecided.
  if (nbr_mis) return kNotMis;
  // Join iff strictly locally minimal among undecided neighbors (ties —
  // possible only transiently, while the coloring is still improper — block
  // the join and resolve next round).
  for (std::uint64_t w : neighbors) {
    if (packed_status(w) == kUndecided && packed_color(w) <= my_color) {
      return kUndecided;
    }
  }
  return kMis;
}

void SsMisProgram::on_receive(const runtime::VertexEnv& env,
                              const runtime::InboxRef& in) {
  const auto packed = in.multiset();
  // Color step first (on the color components, which arrive sorted because
  // the status occupies the low bits).
  std::vector<std::uint64_t> colors;
  colors.reserve(packed.size());
  for (std::uint64_t w : packed) colors.push_back(packed_color(w));
  ram_[0] = cfg_.step(env.padded_id, ram_[0], colors);
  ram_[1] = mis_update(ram_[0], packed_status(ram_[1] & 3), packed);
}

runtime::ProgramFactory ss_mis_factory(const SsConfig& cfg) {
  return [&cfg](const runtime::VertexEnv&) {
    return std::make_unique<SsMisProgram>(cfg);
  };
}

std::vector<bool> current_mis(runtime::Engine& engine) {
  std::vector<bool> flags(engine.graph().n(), false);
  for (graph::Vertex v = 0; v < flags.size(); ++v) {
    const auto ram = engine.ram(v);
    flags[v] = ram.size() >= 2 && packed_status(ram[1] & 3) == kMis;
  }
  return flags;
}

MisStabilizationReport run_until_mis_stable(runtime::Engine& engine,
                                            const SsConfig& cfg,
                                            const runtime::RunOptions& opts,
                                            std::size_t confirm_rounds) {
  MisStabilizationReport rep;
  auto stable = [&] {
    const auto colors = current_colors(engine);
    if (!std::all_of(colors.begin(), colors.end(),
                     [&](Color c) { return cfg.is_final(c); })) {
      return false;
    }
    if (!graph::is_proper_coloring(engine.graph(), colors)) return false;
    return graph::is_mis(engine.graph(), current_mis(engine));
  };
  auto snapshot = [&] {
    return std::pair{current_colors(engine), current_mis(engine)};
  };
  detail::run_until(engine, opts, confirm_rounds, stable, snapshot, rep);
  if (rep.stabilized) rep.in_mis = current_mis(engine);
  return rep;
}

MisStabilizationReport run_until_mis_stable(runtime::Engine& engine,
                                            const SsConfig& cfg,
                                            std::size_t max_rounds,
                                            std::size_t confirm_rounds) {
  runtime::RunOptions opts;
  opts.max_rounds = max_rounds;
  return run_until_mis_stable(engine, cfg, opts, confirm_rounds);
}

}  // namespace agc::selfstab
