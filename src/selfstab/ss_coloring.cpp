#include "agc/selfstab/ss_coloring.hpp"

#include <algorithm>
#include <cassert>

#include "agc/graph/checks.hpp"
#include "agc/math/primes.hpp"
#include "agc/selfstab/detail/run_loop.hpp"

namespace agc::selfstab {

SsConfig::SsConfig(std::uint64_t id_space, std::size_t delta, PaletteMode mode)
    : delta_(std::max<std::size_t>(delta, 1)),
      mode_(mode),
      // Exact mode widens I_0 to host the mixed state space; computed below,
      // so build a throwaway schedule first to learn the Excl palette, then
      // rebuild with the right room.
      sched_(id_space, delta_, /*excl_headroom=*/true) {
  if (mode_ == PaletteMode::ExactDeltaPlusOne) {
    mixed_.emplace(delta_, sched_.final_palette());
    sched_ = coloring::LinialSchedule(id_space, delta_, /*excl_headroom=*/true,
                                      /*final_room=*/mixed_->space());
  } else {
    // I_0 runs plain AG over the Excl stage's field.
    const auto& last = sched_.stage(sched_.stages() - 1);
    ag_q_ = last.q;
    assert(ag_q_ * ag_q_ == sched_.final_palette());
    assert(ag_q_ > 2 * delta_);
  }
  span_ = sched_.total_span();
}

std::uint64_t SsConfig::reset_color(std::uint64_t id) const {
  const std::size_t r = sched_.stages();
  assert(id < sched_.interval_size(r));
  return sched_.offset(r) + id;
}

std::uint64_t SsConfig::final_palette() const {
  return mode_ == PaletteMode::ExactDeltaPlusOne ? mixed_->n() : ag_q_;
}

bool SsConfig::is_final(std::uint64_t color) const {
  if (mode_ == PaletteMode::ExactDeltaPlusOne) return color < mixed_->n();
  return color < ag_q_;
}

std::uint64_t SsConfig::step(std::uint64_t id, std::uint64_t color,
                             std::span<const std::uint64_t> neighbors) const {
  // --- Check-Error ---------------------------------------------------------
  bool valid = color < span_;
  if (valid && mode_ == PaletteMode::ExactDeltaPlusOne &&
      sched_.interval_of(color) == 0) {
    // High states <0,0,a> (y < p) are never written by the algorithm; a
    // corrupted one would be a fixed point, so treat it as invalid.
    const std::uint64_t low_span = 2 * mixed_->n();
    if (color >= low_span && color < low_span + mixed_->p()) valid = false;
  }
  if (!valid || std::binary_search(neighbors.begin(), neighbors.end(), color)) {
    return reset_color(id);
  }

  const std::size_t j = sched_.interval_of(color);
  const std::uint64_t i0_size = sched_.interval_size(0);

  if (j == 0) {
    // Interval I_0: the additive-group machinery, among I_0 neighbors only.
    std::vector<std::uint64_t> in_zero;
    for (std::uint64_t nc : neighbors) {
      if (nc < i0_size) in_zero.push_back(nc);
    }
    if (mode_ == PaletteMode::ExactDeltaPlusOne) {
      return mixed_->step(color, in_zero);
    }
    // Plain AG over Z_{ag_q_}.
    const std::uint64_t q = ag_q_;
    const std::uint64_t a = color / q;
    const std::uint64_t b = color % q;
    for (std::uint64_t nc : in_zero) {
      if (nc % q == b) return a * q + (b + a) % q;  // conflict: shift
    }
    return b;  // finalize <0,b>
  }

  // Intervals I_j, j >= 1: Mod-Linial descent.
  const std::uint64_t off = sched_.offset(j);
  std::vector<std::uint64_t> same_interval;
  for (std::uint64_t nc : neighbors) {
    if (nc >= off && nc < off + sched_.interval_size(j)) {
      same_interval.push_back(nc - off);
    }
  }

  std::vector<Color> forbidden;
  if (j == 1) {
    // Excl-Linial: dodge every color an I_0 neighbor might hold next round.
    for (std::uint64_t nc : neighbors) {
      if (nc >= i0_size) continue;
      if (mode_ == PaletteMode::ExactDeltaPlusOne) {
        // Translate mixed-space candidates back to Excl's raw output space
        // (the preimage of lift); candidates beyond it can never collide.
        const std::uint64_t low_span = 2 * mixed_->n();
        for (Color cand : mixed_->candidates(nc)) {
          forbidden.push_back(cand < low_span ? cand : cand - low_span);
        }
      } else {
        const std::uint64_t q = ag_q_;
        const std::uint64_t a = nc / q;
        const std::uint64_t b = nc % q;
        forbidden.push_back(b);                      // <0,b>
        forbidden.push_back(a * q + (b + a) % q);    // <a,b+a>
      }
    }
  }

  const Color raw =
      coloring::mod_linial_step(sched_, j, color - off, same_interval, forbidden);
  if (j == 1 && mode_ == PaletteMode::ExactDeltaPlusOne) {
    return mixed_->lift(raw);
  }
  return raw;
}

runtime::ProgramFactory ss_coloring_factory(const SsConfig& cfg) {
  return [&cfg](const runtime::VertexEnv&) {
    return std::make_unique<SsColoringProgram>(cfg);
  };
}

std::vector<Color> current_colors(runtime::Engine& engine) {
  std::vector<Color> colors(engine.graph().n());
  for (graph::Vertex v = 0; v < colors.size(); ++v) {
    const auto ram = engine.ram(v);
    colors[v] = ram.empty() ? 0 : ram[0];
  }
  return colors;
}

StabilizationReport run_until_stable(runtime::Engine& engine, const SsConfig& cfg,
                                     const runtime::RunOptions& opts,
                                     std::size_t confirm_rounds) {
  StabilizationReport rep;
  auto stable = [&] {
    const auto colors = current_colors(engine);
    return std::all_of(colors.begin(), colors.end(),
                       [&](Color c) { return cfg.is_final(c); }) &&
           graph::is_proper_coloring(engine.graph(), colors);
  };
  detail::run_until(engine, opts, confirm_rounds, stable,
                    [&] { return current_colors(engine); }, rep);
  if (rep.stabilized) rep.colors = current_colors(engine);
  return rep;
}

StabilizationReport run_until_stable(runtime::Engine& engine, const SsConfig& cfg,
                                     std::size_t max_rounds,
                                     std::size_t confirm_rounds) {
  runtime::RunOptions opts;
  opts.max_rounds = max_rounds;
  return run_until_stable(engine, cfg, opts, confirm_rounds);
}

}  // namespace agc::selfstab
