#include "agc/selfstab/ss_line.hpp"

#include <algorithm>
#include <cassert>

#include "agc/graph/checks.hpp"
#include "agc/selfstab/detail/run_loop.hpp"

namespace agc::selfstab {

void SsLineProgram::sync_keys(const runtime::VertexEnv& env) {
  // Merge the replica table with the current neighbor list (both sorted):
  // new edges get the deterministic reset state (same at both endpoints),
  // removed edges drop their replicas.
  std::vector<graph::Vertex> keys;
  std::vector<std::uint64_t> vals;
  keys.reserve(env.neighbors.size());
  vals.reserve(env.neighbors.size());
  std::size_t old = 0;
  for (graph::Vertex w : env.neighbors) {
    while (old < keys_.size() && keys_[old] < w) ++old;
    keys.push_back(w);
    if (old < keys_.size() && keys_[old] == w) {
      vals.push_back(vals_[old]);
    } else {
      const std::uint64_t eid = cfg_.edge_id(env.id, w);
      vals.push_back(pack_cs(cfg_.coloring().reset_color(eid), kUndecided));
    }
  }
  keys_ = std::move(keys);
  vals_ = std::move(vals);
}

void SsLineProgram::on_start(const runtime::VertexEnv& env) {
  keys_.clear();
  vals_.clear();
  sync_keys(env);
}

void SsLineProgram::on_send(const runtime::VertexEnv& env,
                            runtime::OutboxRef& out) {
  sync_keys(env);
  const std::uint32_t bits = cfg_.coloring().color_bits() + 2;
  for (auto& v : vals_) {
    v = pack_cs(cfg_.coloring().truncate(packed_color(v)), v & 3);
  }
  const bool phase_b = (env.round % 2) == 1;
  for (std::size_t p = 0; p < keys_.size(); ++p) {
    out.send(p, runtime::Word{vals_[p], bits});  // replica of the shared edge
    if (phase_b) {
      for (std::size_t q = 0; q < keys_.size(); ++q) {
        if (q != p) out.send(p, runtime::Word{vals_[q], bits});
      }
    }
  }
}

void SsLineProgram::on_receive(const runtime::VertexEnv& env,
                               const runtime::InboxRef& in) {
  assert(keys_.size() == in.ports());
  const bool phase_b = (env.round % 2) == 1;

  if (!phase_b) {
    // Phase A: reconcile the shared-edge replicas; the smaller-ID endpoint's
    // value wins.
    for (std::size_t p = 0; p < keys_.size(); ++p) {
      const auto words = in.from_port(p);
      if (words.empty()) continue;
      const std::uint64_t theirs = words.front().value;
      if (theirs != vals_[p] && keys_[p] < env.id) vals_[p] = theirs;
    }
    return;
  }

  // Phase B: run the virtual-vertex step for every incident edge, from the
  // pre-update snapshot (all virtual vertices move simultaneously).
  std::vector<std::uint64_t> next = vals_;
  for (std::size_t p = 0; p < keys_.size(); ++p) {
    const auto words = in.from_port(p);
    if (words.empty()) continue;

    // The line-graph neighborhood of edge (me, w): my other incident edges
    // plus w's other incident edges (words[1..] of w's message).
    std::vector<std::uint64_t> packed;
    packed.reserve(keys_.size() - 1 + (words.size() - 1));
    for (std::size_t q = 0; q < keys_.size(); ++q) {
      if (q != p) packed.push_back(vals_[q]);
    }
    for (std::size_t i = 1; i < words.size(); ++i) packed.push_back(words[i].value);
    std::sort(packed.begin(), packed.end());

    std::vector<std::uint64_t> colors;
    colors.reserve(packed.size());
    for (std::uint64_t w : packed) colors.push_back(packed_color(w));

    const std::uint64_t state = vals_[p];
    const std::uint64_t eid = cfg_.edge_id(env.id, keys_[p]);
    const std::uint64_t new_color =
        cfg_.coloring().step(eid, packed_color(state), colors);
    std::uint64_t new_status = 0;
    if (cfg_.task() == LineTask::MaximalMatching) {
      new_status = mis_update(new_color, packed_status(state), packed);
    }
    next[p] = pack_cs(new_color, new_status);
  }
  vals_ = std::move(next);
}

std::optional<std::uint64_t> SsLineProgram::replica(graph::Vertex w) const {
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), w);
  if (it == keys_.end() || *it != w) return std::nullopt;
  return vals_[static_cast<std::size_t>(it - keys_.begin())];
}

runtime::ProgramFactory ss_line_factory(const SsLineConfig& cfg) {
  return [&cfg](const runtime::VertexEnv&) {
    return std::make_unique<SsLineProgram>(cfg);
  };
}

namespace {
/// Replicas of edge (u,v) at both endpoints; nullopt if either is missing.
std::optional<std::pair<std::uint64_t, std::uint64_t>> edge_replicas(
    runtime::Engine& engine, graph::Edge e) {
  auto* pu = dynamic_cast<SsLineProgram*>(&engine.program(e.first));
  auto* pv = dynamic_cast<SsLineProgram*>(&engine.program(e.second));
  if (pu == nullptr || pv == nullptr) return std::nullopt;
  const auto ru = pu->replica(e.second);
  const auto rv = pv->replica(e.first);
  if (!ru || !rv) return std::nullopt;
  return std::pair{*ru, *rv};
}
}  // namespace

std::vector<Color> current_edge_colors(runtime::Engine& engine) {
  std::vector<Color> colors;
  for (const auto& e : graph::edge_list(engine.graph())) {
    const auto r = edge_replicas(engine, e);
    colors.push_back(r ? packed_color(r->first) : 0);
  }
  return colors;
}

std::vector<graph::Edge> current_matching(runtime::Engine& engine) {
  std::vector<graph::Edge> matched;
  for (const auto& e : graph::edge_list(engine.graph())) {
    const auto r = edge_replicas(engine, e);
    if (r && packed_status(r->first) == kMis) matched.push_back(e);
  }
  return matched;
}

LineStabilizationReport run_until_line_stable(runtime::Engine& engine,
                                              const SsLineConfig& cfg,
                                              const runtime::RunOptions& opts,
                                              std::size_t confirm_rounds) {
  LineStabilizationReport rep;

  auto snapshot = [&] {
    std::vector<std::uint64_t> s;
    for (const auto& e : graph::edge_list(engine.graph())) {
      const auto r = edge_replicas(engine, e);
      s.push_back(r ? r->first : ~0ULL);
    }
    return s;
  };

  auto stable = [&] {
    // Replicas must agree at both endpoints.
    for (const auto& e : graph::edge_list(engine.graph())) {
      const auto r = edge_replicas(engine, e);
      if (!r || r->first != r->second) return false;
    }
    const auto colors = current_edge_colors(engine);
    if (!std::all_of(colors.begin(), colors.end(),
                     [&](Color c) { return cfg.coloring().is_final(c); })) {
      return false;
    }
    if (!graph::is_proper_edge_coloring(engine.graph(), colors)) return false;
    if (cfg.task() == LineTask::MaximalMatching) {
      return graph::is_maximal_matching(engine.graph(), current_matching(engine));
    }
    return true;
  };

  detail::run_until(engine, opts, confirm_rounds, stable, snapshot, rep);
  return rep;
}

LineStabilizationReport run_until_line_stable(runtime::Engine& engine,
                                              const SsLineConfig& cfg,
                                              std::size_t max_rounds,
                                              std::size_t confirm_rounds) {
  runtime::RunOptions opts;
  opts.max_rounds = max_rounds;
  return run_until_line_stable(engine, cfg, opts, confirm_rounds);
}

}  // namespace agc::selfstab
