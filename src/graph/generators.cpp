#include "agc/graph/generators.hpp"

#include <algorithm>

#include "agc/graph/view.hpp"
#include <cassert>
#include <cmath>
#include <numeric>

namespace agc::graph {

// ---------------------------------------------------------------------------
// Rng: splitmix64 seeding + xorshift128+ stream.
// ---------------------------------------------------------------------------

namespace {
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  s_[0] = splitmix64(seed);
  s_[1] = splitmix64(seed);
  if (s_[0] == 0 && s_[1] == 0) s_[1] = 1;
}

std::uint64_t Rng::next() noexcept {
  std::uint64_t x = s_[0];
  const std::uint64_t y = s_[1];
  s_[0] = y;
  x ^= x << 23;
  s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s_[1] + y;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % bound);
  std::uint64_t r;
  do {
    r = next();
  } while (r >= limit);
  return r % bound;
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

// ---------------------------------------------------------------------------
// Structured generators.
// ---------------------------------------------------------------------------

Graph path(std::size_t n) {
  Graph g(n);
  for (Vertex v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1);
  return g;
}

Graph cycle(std::size_t n) {
  assert(n >= 3);
  Graph g = path(n);
  g.add_edge(static_cast<Vertex>(n - 1), 0);
  return g;
}

Graph star(std::size_t n) {
  Graph g(n);
  for (Vertex v = 1; v < n; ++v) g.add_edge(0, v);
  return g;
}

Graph complete(std::size_t n) {
  Graph g(n);
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) g.add_edge(u, v);
  }
  return g;
}

Graph complete_bipartite(std::size_t a, std::size_t b) {
  Graph g(a + b);
  for (Vertex u = 0; u < a; ++u) {
    for (Vertex v = 0; v < b; ++v) g.add_edge(u, static_cast<Vertex>(a + v));
  }
  return g;
}

Graph grid(std::size_t rows, std::size_t cols) {
  Graph g(rows * cols);
  auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<Vertex>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph binary_tree(std::size_t n) {
  Graph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (2 * i + 1 < n) g.add_edge(static_cast<Vertex>(i), static_cast<Vertex>(2 * i + 1));
    if (2 * i + 2 < n) g.add_edge(static_cast<Vertex>(i), static_cast<Vertex>(2 * i + 2));
  }
  return g;
}

// ---------------------------------------------------------------------------
// Random generators.
// ---------------------------------------------------------------------------

namespace {

/// The G(n, p) edge stream (geometric skipping, Batagelj-Brandes), factored
/// out so the frozen CSR builder can replay the identical stream twice
/// (count pass, fill pass).  Emits (v, w) with w < v, v ascending, w
/// ascending within each v — which keeps CSR neighbor lists sorted with no
/// post-pass (see stream_to_csr).  Callers handle p >= 1 and n < 2.
template <typename Emit>
void gnp_stream(std::size_t n, double p, std::uint64_t seed, Emit&& emit) {
  if (p <= 0.0 || n < 2) return;
  Rng rng(seed);
  const double logq = std::log(1.0 - p);
  std::int64_t v = 1;
  std::int64_t w = -1;
  const auto nn = static_cast<std::int64_t>(n);
  while (v < nn) {
    const double r = rng.uniform();
    w += 1 + static_cast<std::int64_t>(std::floor(std::log(1.0 - r) / logq));
    while (w >= v && v < nn) {
      w -= v;
      ++v;
    }
    if (v < nn) emit(static_cast<Vertex>(v), static_cast<Vertex>(w));
  }
}

/// The Chung-Lu power-law edge stream (Miller-Hagberg skip sampling over the
/// monotone-decreasing weight sequence w_v ∝ (v+1)^(-1/(gamma-1)), scaled to
/// mean avg_deg).  The RNG is re-seeded per 4096-source chunk, so each chunk
/// of the stream depends only on (seed, chunk index) — replayable piecewise.
/// Emits (u, v) with u < v, u ascending, v ascending within each u.
constexpr std::size_t kPowerlawChunk = std::size_t{1} << 12;

template <typename Emit>
void chung_lu_stream(std::size_t n, double gamma, double avg_deg,
                     std::uint64_t seed, Emit&& emit) {
  if (n < 2 || avg_deg <= 0.0 || gamma <= 1.0) return;
  const double alpha = 1.0 / (gamma - 1.0);
  std::vector<double> weight(n);
  double sum = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    weight[v] = std::pow(static_cast<double>(v + 1), -alpha);
    sum += weight[v];
  }
  const double scale = avg_deg * static_cast<double>(n) / sum;
  for (double& x : weight) x *= scale;
  const double total = avg_deg * static_cast<double>(n);  // = sum of weights

  Rng rng(seed);
  for (std::size_t u = 0; u + 1 < n; ++u) {
    if (u % kPowerlawChunk == 0) {
      rng = Rng(seed ^ (0x9E3779B97F4A7C15ULL * (u / kPowerlawChunk + 1)));
    }
    std::size_t v = u + 1;
    double p = std::min(1.0, weight[u] * weight[v] / total);
    while (v < n && p > 0.0) {
      if (p < 1.0) {
        const double r = rng.uniform();
        v += static_cast<std::size_t>(
            std::floor(std::log(1.0 - r) / std::log(1.0 - p)));
      }
      if (v >= n) break;
      // Weights decrease with v, so p bounds the true probability q from
      // above; accept the skipped-to candidate with probability q / p.
      const double q = std::min(1.0, weight[u] * weight[v] / total);
      if (rng.uniform() < q / p) {
        emit(static_cast<Vertex>(u), static_cast<Vertex>(v));
      }
      p = q;
      ++v;
    }
  }
}

/// Replay `stream` twice — once to count degrees, once to fill — writing the
/// emitted undirected edges straight into a frozen CSR.  Both generators
/// above emit each vertex's neighbors in ascending order (smaller endpoints
/// during its own source block, larger ones as later blocks reach it), so
/// the filled target ranges are already sorted.
template <typename Stream>
FrozenGraph stream_to_csr(std::size_t n, Stream&& stream) {
  std::vector<std::uint64_t> offsets(n + 1, 0);
  stream([&](Vertex a, Vertex b) {
    ++offsets[a + 1];
    ++offsets[b + 1];
  });
  for (std::size_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  std::vector<Vertex> targets(offsets[n]);
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  stream([&](Vertex a, Vertex b) {
    targets[cursor[a]++] = b;
    targets[cursor[b]++] = a;
  });
  return FrozenGraph::from_csr(std::move(offsets), std::move(targets));
}

}  // namespace

Graph random_gnp(std::size_t n, double p, std::uint64_t seed) {
  if (p >= 1.0 && n >= 2) return complete(n);
  Graph g(n);
  gnp_stream(n, p, seed,
             [&](Vertex v, Vertex w) { g.add_edge(v, w); });
  return g;
}

Graph random_powerlaw(std::size_t n, double gamma, double avg_deg,
                      std::uint64_t seed) {
  Graph g(n);
  chung_lu_stream(n, gamma, avg_deg, seed,
                  [&](Vertex u, Vertex v) { g.add_edge(u, v); });
  return g;
}

FrozenGraph stream_gnp_frozen(std::size_t n, double p, std::uint64_t seed) {
  if (p >= 1.0 && n >= 2) return FrozenGraph::from_graph(complete(n));
  return stream_to_csr(n, [&](auto&& emit) { gnp_stream(n, p, seed, emit); });
}

FrozenGraph stream_powerlaw_frozen(std::size_t n, double gamma, double avg_deg,
                                   std::uint64_t seed) {
  return stream_to_csr(
      n, [&](auto&& emit) { chung_lu_stream(n, gamma, avg_deg, seed, emit); });
}

Graph random_regular(std::size_t n, std::size_t d, std::uint64_t seed) {
  assert(d < n);
  assert((n * d) % 2 == 0);
  Rng rng(seed);
  Graph g(n);
  // Pairing model: d stubs per vertex, shuffle, pair consecutive stubs.
  // Bad pairs (loops / duplicates) are retried a bounded number of times.
  std::vector<Vertex> stubs;
  stubs.reserve(n * d);
  for (Vertex v = 0; v < n; ++v) {
    for (std::size_t k = 0; k < d; ++k) stubs.push_back(v);
  }
  for (int attempt = 0; attempt < 64; ++attempt) {
    // Fisher-Yates shuffle.
    for (std::size_t i = stubs.size(); i > 1; --i) {
      std::swap(stubs[i - 1], stubs[rng.below(i)]);
    }
    Graph trial(n);
    bool clean = true;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      if (!trial.add_edge(stubs[i], stubs[i + 1])) {
        clean = false;
        break;
      }
    }
    if (clean) return trial;
  }
  // Repair fallback: greedy matching of remaining stubs, skipping bad pairs.
  for (std::size_t i = stubs.size(); i > 1; --i) {
    std::swap(stubs[i - 1], stubs[rng.below(i)]);
  }
  std::vector<Vertex> pending;
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    if (!g.add_edge(stubs[i], stubs[i + 1])) {
      pending.push_back(stubs[i]);
      pending.push_back(stubs[i + 1]);
    }
  }
  for (std::size_t i = 0; i < pending.size(); ++i) {
    for (std::size_t j = i + 1; j < pending.size(); ++j) {
      if (g.add_edge(pending[i], pending[j])) {
        std::swap(pending[j], pending[i + 1]);
        ++i;
        break;
      }
    }
  }
  return g;
}

Graph random_bounded_degree(std::size_t n, std::size_t dmax, std::size_t target_m,
                            std::uint64_t seed) {
  Rng rng(seed);
  Graph g(n);
  if (n < 2) return g;
  std::size_t attempts = 0;
  const std::size_t max_attempts = target_m * 20 + 100;
  while (g.m() < target_m && attempts < max_attempts) {
    ++attempts;
    const auto u = static_cast<Vertex>(rng.below(n));
    const auto v = static_cast<Vertex>(rng.below(n));
    if (u == v) continue;
    if (g.degree(u) >= dmax || g.degree(v) >= dmax) continue;
    g.add_edge(u, v);
  }
  return g;
}

Graph random_geometric(std::size_t n, double radius, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<double, double>> pts(n);
  for (auto& p : pts) p = {rng.uniform(), rng.uniform()};
  Graph g(n);
  const double r2 = radius * radius;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      const double dx = pts[u].first - pts[v].first;
      const double dy = pts[u].second - pts[v].second;
      if (dx * dx + dy * dy <= r2) g.add_edge(u, v);
    }
  }
  return g;
}

Graph barabasi_albert(std::size_t n, std::size_t attach, std::uint64_t seed) {
  assert(attach >= 1 && n > attach);
  Rng rng(seed);
  Graph g(n);
  // Seed clique on attach+1 vertices.
  for (Vertex u = 0; u <= attach; ++u) {
    for (Vertex v = u + 1; v <= attach; ++v) g.add_edge(u, v);
  }
  // Degree-proportional sampling via the repeated-endpoints list.
  std::vector<Vertex> endpoints;
  GraphView(g).for_each_edge([&](Vertex u, Vertex v) {
    endpoints.push_back(u);
    endpoints.push_back(v);
  });
  for (Vertex v = static_cast<Vertex>(attach + 1); v < n; ++v) {
    std::size_t added = 0;
    std::size_t guard = 0;
    while (added < attach && guard < 50 * attach + 100) {
      ++guard;
      const Vertex target = endpoints[rng.below(endpoints.size())];
      if (g.add_edge(v, target)) {
        endpoints.push_back(v);
        endpoints.push_back(target);
        ++added;
      }
    }
  }
  return g;
}

Graph hypercube(std::size_t d) {
  const std::size_t n = std::size_t{1} << d;
  Graph g(n);
  for (std::size_t v = 0; v < n; ++v) {
    for (std::size_t bit = 0; bit < d; ++bit) {
      const std::size_t u = v ^ (std::size_t{1} << bit);
      if (u > v) g.add_edge(static_cast<Vertex>(v), static_cast<Vertex>(u));
    }
  }
  return g;
}

Graph complete_multipartite(std::size_t k, std::size_t part) {
  Graph g(k * part);
  for (std::size_t pa = 0; pa < k; ++pa) {
    for (std::size_t pb = pa + 1; pb < k; ++pb) {
      for (std::size_t i = 0; i < part; ++i) {
        for (std::size_t j = 0; j < part; ++j) {
          g.add_edge(static_cast<Vertex>(pa * part + i),
                     static_cast<Vertex>(pb * part + j));
        }
      }
    }
  }
  return g;
}

Graph caterpillar(std::size_t spine, std::size_t legs) {
  Graph g(spine * (legs + 1));
  for (std::size_t i = 0; i + 1 < spine; ++i) {
    g.add_edge(static_cast<Vertex>(i), static_cast<Vertex>(i + 1));
  }
  for (std::size_t i = 0; i < spine; ++i) {
    for (std::size_t l = 0; l < legs; ++l) {
      g.add_edge(static_cast<Vertex>(i),
                 static_cast<Vertex>(spine + i * legs + l));
    }
  }
  return g;
}

Graph cycle_blowup(std::size_t len, std::size_t blow) {
  assert(len >= 3);
  Graph g(len * blow);
  for (std::size_t pos = 0; pos < len; ++pos) {
    const std::size_t next = (pos + 1) % len;
    for (std::size_t i = 0; i < blow; ++i) {
      for (std::size_t j = 0; j < blow; ++j) {
        g.add_edge(static_cast<Vertex>(pos * blow + i),
                   static_cast<Vertex>(next * blow + j));
      }
    }
  }
  return g;
}

}  // namespace agc::graph
