#include "agc/graph/frozen.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace agc::graph {

FrozenGraph FrozenGraph::from_graph(const Graph& g) {
  FrozenGraph out;
  const std::size_t n = g.n();
  out.offsets_.assign(n + 1, 0);
  for (Vertex v = 0; v < n; ++v) {
    out.offsets_[v + 1] = out.offsets_[v] + g.degree(v);
    out.max_degree_ = std::max(out.max_degree_, g.degree(v));
  }
  out.targets_.resize(out.offsets_[n]);
  for (Vertex v = 0; v < n; ++v) {
    const auto nbrs = g.neighbors(v);
    std::copy(nbrs.begin(), nbrs.end(), out.targets_.begin() +
                                            static_cast<std::ptrdiff_t>(out.offsets_[v]));
  }
  return out;
}

FrozenGraph FrozenGraph::from_csr(std::vector<std::uint64_t> offsets,
                                  std::vector<Vertex> targets) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != targets.size()) {
    throw std::invalid_argument(
        "FrozenGraph::from_csr: offsets must span [0, targets.size()]");
  }
  FrozenGraph out;
  out.offsets_ = std::move(offsets);
  out.targets_ = std::move(targets);
  const std::size_t n = out.n();
  for (Vertex v = 0; v < n; ++v) {
    if (out.offsets_[v + 1] < out.offsets_[v]) {
      throw std::invalid_argument("FrozenGraph::from_csr: offsets decrease");
    }
    out.max_degree_ = std::max(out.max_degree_, out.degree(v));
#ifndef NDEBUG
    const auto nbrs = out.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      assert(nbrs[i] < n && nbrs[i] != v);
      assert(i == 0 || nbrs[i - 1] < nbrs[i]);
    }
#endif
  }
  return out;
}

bool FrozenGraph::has_edge(Vertex u, Vertex v) const noexcept {
  if (u >= n() || v >= n() || u == v) return false;
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

}  // namespace agc::graph
