#include "agc/graph/checks.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <unordered_set>

namespace agc::graph {

bool is_proper_coloring(GraphView g, std::span<const Color> colors) {
  assert(colors.size() == g.n());
  for (Vertex u = 0; u < g.n(); ++u) {
    for (Vertex v : g.neighbors(u)) {
      if (v > u && colors[u] == colors[v]) return false;
    }
  }
  return true;
}

std::size_t palette_size(std::span<const Color> colors) {
  std::unordered_set<Color> seen(colors.begin(), colors.end());
  return seen.size();
}

Color max_color(std::span<const Color> colors) {
  Color m = 0;
  for (Color c : colors) m = std::max(m, c);
  return m;
}

std::vector<std::size_t> defect_vector(GraphView g, std::span<const Color> colors) {
  assert(colors.size() == g.n());
  std::vector<std::size_t> defect(g.n(), 0);
  for (Vertex u = 0; u < g.n(); ++u) {
    for (Vertex v : g.neighbors(u)) {
      if (colors[u] == colors[v]) ++defect[u];
    }
  }
  return defect;
}

bool is_defective_coloring(GraphView g, std::span<const Color> colors,
                           std::size_t d) {
  const auto defect = defect_vector(g, colors);
  return std::all_of(defect.begin(), defect.end(),
                     [d](std::size_t x) { return x <= d; });
}

std::size_t degeneracy(GraphView g) {
  // Smallest-last ordering with bucket queues: O(n + m).
  const std::size_t n = g.n();
  if (n == 0) return 0;
  std::vector<std::size_t> deg(n);
  std::size_t maxdeg = 0;
  for (Vertex v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    maxdeg = std::max(maxdeg, deg[v]);
  }
  std::vector<std::vector<Vertex>> buckets(maxdeg + 1);
  for (Vertex v = 0; v < n; ++v) buckets[deg[v]].push_back(v);
  std::vector<bool> removed(n, false);
  std::size_t degeneracy_val = 0;
  std::size_t cursor = 0;
  for (std::size_t iter = 0; iter < n; ++iter) {
    // Find the non-empty bucket with the smallest degree.  `cursor` can only
    // decrease by one per removal, so we rewind it by one each iteration.
    if (cursor > 0) --cursor;
    while (cursor <= maxdeg) {
      auto& b = buckets[cursor];
      while (!b.empty() && (removed[b.back()] || deg[b.back()] != cursor)) b.pop_back();
      if (!b.empty()) break;
      ++cursor;
    }
    assert(cursor <= maxdeg);
    const Vertex v = buckets[cursor].back();
    buckets[cursor].pop_back();
    removed[v] = true;
    degeneracy_val = std::max(degeneracy_val, cursor);
    for (Vertex u : g.neighbors(v)) {
      if (!removed[u]) {
        --deg[u];
        buckets[deg[u]].push_back(u);
      }
    }
  }
  return degeneracy_val;
}

std::size_t max_class_degeneracy(GraphView g, std::span<const Color> colors) {
  assert(colors.size() == g.n());
  // Partition vertices by color, build each induced subgraph, take degeneracy.
  std::map<Color, std::vector<Vertex>> classes;
  for (Vertex v = 0; v < g.n(); ++v) classes[colors[v]].push_back(v);

  std::size_t worst = 0;
  std::vector<Vertex> local_id(g.n());
  for (const auto& [color, members] : classes) {
    for (std::size_t i = 0; i < members.size(); ++i) {
      local_id[members[i]] = static_cast<Vertex>(i);
    }
    Graph sub(members.size());
    for (Vertex u : members) {
      for (Vertex v : g.neighbors(u)) {
        if (v > u && colors[v] == color) sub.add_edge(local_id[u], local_id[v]);
      }
    }
    worst = std::max(worst, degeneracy(sub));
  }
  return worst;
}

bool is_arbdefective_coloring(GraphView g, std::span<const Color> colors,
                              std::size_t b) {
  return max_class_degeneracy(g, colors) <= (b == 0 ? 0 : 2 * b - 1);
}

bool is_mis(GraphView g, const std::vector<bool>& in_set) {
  assert(in_set.size() == g.n());
  for (Vertex u = 0; u < g.n(); ++u) {
    bool has_set_neighbor = false;
    for (Vertex v : g.neighbors(u)) {
      if (in_set[v]) {
        has_set_neighbor = true;
        if (in_set[u]) return false;  // independence violated
      }
    }
    if (!in_set[u] && !has_set_neighbor) return false;  // maximality violated
  }
  return true;
}

bool is_maximal_matching(GraphView g, std::span<const Edge> matching) {
  std::vector<bool> covered(g.n(), false);
  for (const auto& [u, v] : matching) {
    if (!g.has_edge(u, v)) return false;
    if (covered[u] || covered[v]) return false;  // not a matching
    covered[u] = covered[v] = true;
  }
  // Maximality: every edge has a covered endpoint.
  bool maximal = true;
  g.for_each_edge([&](Vertex u, Vertex v) {
    if (!covered[u] && !covered[v]) maximal = false;
  });
  return maximal;
}

bool is_proper_edge_coloring(GraphView g, std::span<const Color> edge_colors) {
  assert(edge_colors.size() == g.m());
  // For each vertex, the colors of incident edges must be pairwise distinct.
  // Edge i is the i-th edge in canonical (u < v) lexicographic order — the
  // order for_each_edge streams in.
  std::vector<std::vector<Color>> incident(g.n());
  std::size_t i = 0;
  g.for_each_edge([&](Vertex u, Vertex v) {
    incident[u].push_back(edge_colors[i]);
    incident[v].push_back(edge_colors[i]);
    ++i;
  });
  for (auto& cols : incident) {
    std::sort(cols.begin(), cols.end());
    if (std::adjacent_find(cols.begin(), cols.end()) != cols.end()) return false;
  }
  return true;
}

}  // namespace agc::graph
