#include "agc/graph/orientation.hpp"

#include <algorithm>
#include <cassert>

namespace agc::graph {

std::vector<std::size_t> Orientation::out_degrees(std::size_t n) const {
  std::vector<std::size_t> out(n, 0);
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const Vertex tail = toward_second[i] ? edges[i].first : edges[i].second;
    ++out[tail];
  }
  return out;
}

std::size_t Orientation::max_out_degree(std::size_t n) const {
  const auto out = out_degrees(n);
  return out.empty() ? 0 : *std::max_element(out.begin(), out.end());
}

Orientation orient_by_id(GraphView g) {
  Orientation o;
  o.edges = edge_list(g);
  o.toward_second.assign(o.edges.size(), true);  // first < second always
  return o;
}

Orientation orient_by_order(GraphView g, std::span<const std::size_t> order) {
  assert(order.size() == g.n());
  Orientation o;
  o.edges = edge_list(g);
  o.toward_second.resize(o.edges.size());
  for (std::size_t i = 0; i < o.edges.size(); ++i) {
    const auto& [u, v] = o.edges[i];
    // Point toward the endpoint removed later (larger rank): when a vertex is
    // removed by smallest-last, at most `degeneracy` neighbors remain, so the
    // tail (earlier-removed endpoint) has out-degree <= degeneracy.
    o.toward_second[i] = order[u] < order[v];
  }
  return o;
}

std::vector<std::size_t> smallest_last_order(GraphView g) {
  const std::size_t n = g.n();
  std::vector<std::size_t> rank(n, 0);
  if (n == 0) return rank;
  std::vector<std::size_t> deg(n);
  std::size_t maxdeg = 0;
  for (Vertex v = 0; v < n; ++v) {
    deg[v] = g.degree(v);
    maxdeg = std::max(maxdeg, deg[v]);
  }
  std::vector<std::vector<Vertex>> buckets(maxdeg + 1);
  for (Vertex v = 0; v < n; ++v) buckets[deg[v]].push_back(v);
  std::vector<bool> removed(n, false);
  std::size_t cursor = 0;
  for (std::size_t iter = 0; iter < n; ++iter) {
    if (cursor > 0) --cursor;
    while (cursor <= maxdeg) {
      auto& b = buckets[cursor];
      while (!b.empty() && (removed[b.back()] || deg[b.back()] != cursor)) b.pop_back();
      if (!b.empty()) break;
      ++cursor;
    }
    const Vertex v = buckets[cursor].back();
    buckets[cursor].pop_back();
    removed[v] = true;
    rank[v] = iter;  // removal index: 0 = removed first
    for (Vertex u : g.neighbors(v)) {
      if (!removed[u]) {
        --deg[u];
        buckets[deg[u]].push_back(u);
      }
    }
  }
  return rank;
}

}  // namespace agc::graph
