#include "agc/graph/graph.hpp"

#include <algorithm>
#include <cassert>

#include "agc/graph/view.hpp"

namespace agc::graph {

Graph Graph::from_edges(std::size_t n, std::span<const Edge> edges) {
  Graph g(n);
  for (const auto& [u, v] : edges) {
    assert(u < n && v < n && u != v);
    [[maybe_unused]] bool inserted = g.add_edge(u, v);
    assert(inserted);
  }
  return g;
}

bool Graph::has_edge(Vertex u, Vertex v) const noexcept {
  if (u >= n() || v >= n() || u == v) return false;
  const auto& a = adj_[u];
  return std::binary_search(a.begin(), a.end(), v);
}

bool Graph::add_edge(Vertex u, Vertex v) {
  if (u == v || u >= n() || v >= n()) return false;
  auto& au = adj_[u];
  auto it = std::lower_bound(au.begin(), au.end(), v);
  if (it != au.end() && *it == v) return false;
  au.insert(it, v);
  auto& av = adj_[v];
  av.insert(std::lower_bound(av.begin(), av.end(), u), u);
  ++m_;
  ++version_;
  return true;
}

bool Graph::remove_edge(Vertex u, Vertex v) {
  if (u >= n() || v >= n()) return false;
  auto& au = adj_[u];
  auto it = std::lower_bound(au.begin(), au.end(), v);
  if (it == au.end() || *it != v) return false;
  au.erase(it);
  auto& av = adj_[v];
  av.erase(std::lower_bound(av.begin(), av.end(), u));
  --m_;
  ++version_;
  return true;
}

Vertex Graph::add_vertex() {
  adj_.emplace_back();
  ++version_;
  return static_cast<Vertex>(adj_.size() - 1);
}

void Graph::isolate(Vertex v) {
  assert(v < n());
  // Copy: remove_edge mutates adj_[v].
  std::vector<Vertex> nbrs = adj_[v];
  for (Vertex u : nbrs) remove_edge(v, u);
}

std::size_t Graph::max_degree() const noexcept {
  std::size_t d = 0;
  for (const auto& a : adj_) d = std::max(d, a.size());
  return d;
}

Graph materialize(GraphView g) {
  Graph out(g.n());
  // Canonical order means every insertion appends at the tail of both
  // endpoint lists, so the copy is O(m log dmax) with no mid-vector moves.
  g.for_each_edge([&](Vertex u, Vertex v) {
    [[maybe_unused]] const bool inserted = out.add_edge(u, v);
    assert(inserted);
  });
  return out;
}

}  // namespace agc::graph
