#include "agc/graph/spec.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "agc/graph/generators.hpp"
#include "agc/graph/io.hpp"

namespace agc::graph {

namespace {

enum class ParamType : std::uint8_t { U64, F64, Text };

struct ParamDef {
  const char* key;
  ParamType type;
};

struct KindDef {
  const char* kind;
  std::vector<ParamDef> params;
};

/// The one place a generator spelling is declared.  Positional args map onto
/// these in order; the named form may give them in any order.
const std::vector<KindDef>& kinds() {
  static const std::vector<KindDef> defs = {
      {"file", {{"path", ParamType::Text}}},
      {"gnp", {{"n", ParamType::U64}, {"p", ParamType::F64}, {"seed", ParamType::U64}}},
      {"regular", {{"n", ParamType::U64}, {"d", ParamType::U64}, {"seed", ParamType::U64}}},
      {"grid", {{"rows", ParamType::U64}, {"cols", ParamType::U64}}},
      {"cycle", {{"n", ParamType::U64}}},
      {"path", {{"n", ParamType::U64}}},
      {"complete", {{"n", ParamType::U64}}},
      {"star", {{"n", ParamType::U64}}},
      {"tree", {{"n", ParamType::U64}}},
      {"geometric",
       {{"n", ParamType::U64}, {"radius", ParamType::F64}, {"seed", ParamType::U64}}},
      {"ba", {{"n", ParamType::U64}, {"attach", ParamType::U64}, {"seed", ParamType::U64}}},
      {"bipartite", {{"a", ParamType::U64}, {"b", ParamType::U64}}},
      {"hypercube", {{"d", ParamType::U64}}},
      {"multipartite", {{"k", ParamType::U64}, {"part", ParamType::U64}}},
      {"caterpillar", {{"spine", ParamType::U64}, {"legs", ParamType::U64}}},
      {"blowup", {{"len", ParamType::U64}, {"blow", ParamType::U64}}},
      {"bounded",
       {{"n", ParamType::U64},
        {"dmax", ParamType::U64},
        {"m", ParamType::U64},
        {"seed", ParamType::U64}}},
      {"powerlaw",
       {{"n", ParamType::U64},
        {"gamma", ParamType::F64},
        {"avgdeg", ParamType::F64},
        {"seed", ParamType::U64}}},
  };
  return defs;
}

[[noreturn]] void fail(const std::string& spec, const std::string& what) {
  throw std::invalid_argument("graph spec '" + spec + "': " + what);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(sep, start);
    out.push_back(s.substr(start, pos - start));
    if (pos == std::string::npos) return out;
    start = pos + 1;
  }
}

std::string canonical_u64(const std::string& spec, const std::string& text) {
  char* end = nullptr;
  const auto v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') fail(spec, "bad integer '" + text + "'");
  return std::to_string(v);
}

/// Shortest %.*g spelling that strtod round-trips to the same double — so
/// `p=0.01` stays "0.01" and the canonical form is injective on values.
std::string canonical_f64(const std::string& spec, const std::string& text) {
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') fail(spec, "bad number '" + text + "'");
  char buf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

}  // namespace

GraphSpec GraphSpec::parse(const std::string& spec) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos) fail(spec, "expected kind:args");
  GraphSpec out;
  out.kind_ = spec.substr(0, colon);

  const KindDef* def = nullptr;
  for (const auto& k : kinds()) {
    if (out.kind_ == k.kind) def = &k;
  }
  if (def == nullptr) fail(spec, "unknown kind '" + out.kind_ + "'");

  // `file:` takes the remainder verbatim (paths may contain ',' or '=').
  if (def->params.size() == 1 && def->params[0].type == ParamType::Text) {
    out.values_ = {spec.substr(colon + 1)};
    if (out.values_[0].empty()) fail(spec, "missing path");
    return out;
  }

  const auto args = split(spec.substr(colon + 1), ',');
  if (args.size() != def->params.size()) {
    fail(spec, "expected " + std::to_string(def->params.size()) + " args, got " +
                   std::to_string(args.size()));
  }
  out.values_.assign(def->params.size(), std::string());
  std::size_t positional = 0;
  for (const auto& arg : args) {
    const auto eq = arg.find('=');
    std::size_t slot = 0;
    std::string text;
    if (eq == std::string::npos) {
      slot = positional++;
      text = arg;
    } else {
      const std::string key = arg.substr(0, eq);
      text = arg.substr(eq + 1);
      std::size_t found = def->params.size();
      for (std::size_t i = 0; i < def->params.size(); ++i) {
        if (key == def->params[i].key) found = i;
      }
      if (found == def->params.size()) fail(spec, "unknown parameter '" + key + "'");
      slot = found;
    }
    if (slot >= def->params.size()) fail(spec, "too many positional args");
    if (!out.values_[slot].empty()) {
      fail(spec, std::string("duplicate parameter '") + def->params[slot].key + "'");
    }
    out.values_[slot] = def->params[slot].type == ParamType::F64
                            ? canonical_f64(spec, text)
                            : canonical_u64(spec, text);
  }
  for (std::size_t i = 0; i < def->params.size(); ++i) {
    if (out.values_[i].empty()) {
      fail(spec, std::string("missing parameter '") + def->params[i].key + "'");
    }
  }
  return out;
}

std::string GraphSpec::to_string() const {
  const KindDef* def = nullptr;
  for (const auto& k : kinds()) {
    if (kind_ == k.kind) def = &k;
  }
  if (def == nullptr) return kind_ + ":?";
  std::string out = kind_;
  out += ':';
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ',';
    out += def->params[i].key;
    out += '=';
    out += values_[i];
  }
  return out;
}

std::uint64_t GraphSpec::content_hash() const {
  // FNV-1a, 64-bit: stable across platforms, good enough to key a cache
  // whose correctness only needs "equal hash for equal canonical spelling".
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : to_string()) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t GraphSpec::num(const std::string& key) const {
  for (const auto& k : kinds()) {
    if (kind_ != k.kind) continue;
    for (std::size_t i = 0; i < k.params.size(); ++i) {
      if (key == k.params[i].key) {
        return std::strtoull(values_[i].c_str(), nullptr, 10);
      }
    }
  }
  throw std::invalid_argument("GraphSpec::num: no parameter '" + key + "' on '" +
                              kind_ + "'");
}

double GraphSpec::real(const std::string& key) const {
  for (const auto& k : kinds()) {
    if (kind_ != k.kind) continue;
    for (std::size_t i = 0; i < k.params.size(); ++i) {
      if (key == k.params[i].key) return std::strtod(values_[i].c_str(), nullptr);
    }
  }
  throw std::invalid_argument("GraphSpec::real: no parameter '" + key + "' on '" +
                              kind_ + "'");
}

Graph GraphSpec::build() const {
  if (kind_ == "file") return read_edge_list_file(values_[0]);
  if (kind_ == "gnp") return random_gnp(num("n"), real("p"), num("seed"));
  if (kind_ == "regular") return random_regular(num("n"), num("d"), num("seed"));
  if (kind_ == "grid") return grid(num("rows"), num("cols"));
  if (kind_ == "cycle") return cycle(num("n"));
  if (kind_ == "path") return path(num("n"));
  if (kind_ == "complete") return complete(num("n"));
  if (kind_ == "star") return star(num("n"));
  if (kind_ == "tree") return binary_tree(num("n"));
  if (kind_ == "geometric") return random_geometric(num("n"), real("radius"), num("seed"));
  if (kind_ == "ba") return barabasi_albert(num("n"), num("attach"), num("seed"));
  if (kind_ == "bipartite") return complete_bipartite(num("a"), num("b"));
  if (kind_ == "hypercube") return hypercube(num("d"));
  if (kind_ == "multipartite") return complete_multipartite(num("k"), num("part"));
  if (kind_ == "caterpillar") return caterpillar(num("spine"), num("legs"));
  if (kind_ == "blowup") return cycle_blowup(num("len"), num("blow"));
  if (kind_ == "bounded") {
    return random_bounded_degree(num("n"), num("dmax"), num("m"), num("seed"));
  }
  if (kind_ == "powerlaw") {
    return random_powerlaw(num("n"), real("gamma"), real("avgdeg"), num("seed"));
  }
  throw std::invalid_argument("GraphSpec::build: unknown kind '" + kind_ + "'");
}

FrozenGraph GraphSpec::build_frozen() const {
  // The streaming kinds write straight into the CSR; everything else is
  // small enough that build-then-compact is fine.
  if (kind_ == "gnp") return stream_gnp_frozen(num("n"), real("p"), num("seed"));
  if (kind_ == "powerlaw") {
    return stream_powerlaw_frozen(num("n"), real("gamma"), real("avgdeg"),
                                  num("seed"));
  }
  return FrozenGraph::from_graph(build());
}

ResolvedGraph GraphSpec::resolve(Mutability need) const {
  ResolvedGraph out;
  if (need == Mutability::ReadOnly) {
    out.frozen_ = std::make_unique<FrozenGraph>(build_frozen());
  } else {
    out.dyn_ = std::make_unique<Graph>(build());
  }
  return out;
}

Graph& ResolvedGraph::graph() {
  if (dyn_ == nullptr) {
    throw std::logic_error(
        "ResolvedGraph::graph: resolved ReadOnly (frozen CSR backend)");
  }
  return *dyn_;
}

std::size_t GraphSpec::estimated_bytes(std::uint64_t extra_vertices,
                                       std::uint64_t extra_edges) const {
  // n and an expected edge count per kind; the base is charged at the frozen
  // CSR rate (what the scheduler's cache holds), churn headroom at the
  // mutable adjacency-vector rate (what a churning consumer materializes).
  auto nm = [&]() -> std::pair<std::uint64_t, std::uint64_t> {
    if (kind_ == "gnp") {
      const auto n = num("n");
      return {n, static_cast<std::uint64_t>(real("p") * double(n) * double(n) / 2.0)};
    }
    if (kind_ == "regular") return {num("n"), num("n") * num("d") / 2};
    if (kind_ == "grid") return {num("rows") * num("cols"), 2 * num("rows") * num("cols")};
    if (kind_ == "cycle" || kind_ == "path" || kind_ == "tree") return {num("n"), num("n")};
    if (kind_ == "star") return {num("n"), num("n")};
    if (kind_ == "complete") return {num("n"), num("n") * num("n") / 2};
    if (kind_ == "geometric") {
      const auto n = num("n");
      const double r = real("radius");
      return {n, static_cast<std::uint64_t>(3.14 * r * r * double(n) * double(n) / 2.0)};
    }
    if (kind_ == "ba") return {num("n"), num("n") * num("attach")};
    if (kind_ == "bipartite") return {num("a") + num("b"), num("a") * num("b")};
    if (kind_ == "hypercube") return {1ULL << num("d"), (1ULL << num("d")) * num("d") / 2};
    if (kind_ == "multipartite") {
      const auto n = num("k") * num("part");
      return {n, n * (num("k") - 1) * num("part") / 2};
    }
    if (kind_ == "caterpillar") return {num("spine") * (1 + num("legs")), num("spine") * (2 + num("legs"))};
    if (kind_ == "blowup") return {num("len") * num("blow"), num("len") * num("blow") * num("blow")};
    if (kind_ == "bounded") return {num("n"), num("m")};
    if (kind_ == "powerlaw") {
      return {num("n"),
              static_cast<std::uint64_t>(real("avgdeg") * double(num("n")) / 2.0)};
    }
    return {1 << 16, 1 << 18};  // file: and anything unknown — a safe default
  }();
  // CSR: one 8-byte offset per vertex (+ sentinel), two 4-byte directed
  // entries per undirected edge.  Churn headroom: 48/vertex covers the
  // adjacency-vector header plus allocator slack, 16/edge the two directed
  // 4-byte entries plus growth slack.
  return 8 * (nm.first + 1) + 8 * nm.second +
         48 * extra_vertices + 16 * extra_edges;
}

}  // namespace agc::graph
