#include "agc/graph/line_graph.hpp"

#include <algorithm>

namespace agc::graph {

Vertex LineGraph::vertex_of(Edge e) const {
  auto it = std::lower_bound(edge_of.begin(), edge_of.end(), e);
  if (it != edge_of.end() && *it == e) {
    return static_cast<Vertex>(it - edge_of.begin());
  }
  return static_cast<Vertex>(graph.n());
}

LineGraph line_graph(GraphView g) {
  LineGraph lg;
  lg.edge_of = edge_list(g);  // already lexicographically sorted
  lg.graph = Graph(lg.edge_of.size());

  // Group L(G) vertices by shared G-endpoint and connect within each group.
  std::vector<std::vector<Vertex>> incident(g.n());
  for (Vertex i = 0; i < lg.edge_of.size(); ++i) {
    incident[lg.edge_of[i].first].push_back(i);
    incident[lg.edge_of[i].second].push_back(i);
  }
  for (const auto& group : incident) {
    for (std::size_t a = 0; a < group.size(); ++a) {
      for (std::size_t b = a + 1; b < group.size(); ++b) {
        lg.graph.add_edge(group[a], group[b]);
      }
    }
  }
  return lg;
}

}  // namespace agc::graph
