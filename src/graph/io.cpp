#include "agc/graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace agc::graph {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("edge list, line " + std::to_string(line) + ": " + what);
}

}  // namespace

Graph read_edge_list(std::istream& in) {
  std::string line;
  std::size_t lineno = 0;
  bool has_header = false;
  std::size_t n = 0;
  std::vector<Edge> edges;
  std::size_t implicit_max = 0;

  while (std::getline(in, line)) {
    ++lineno;
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok) || tok == "c" || tok[0] == '#') continue;

    if (tok == "p") {
      std::string kind;
      long long nn = -1, mm = -1;
      if (!(ls >> kind >> nn >> mm) || kind != "edge" || nn < 0) {
        fail(lineno, "bad problem header (expected: p edge <n> <m>)");
      }
      n = static_cast<std::size_t>(nn);
      has_header = true;
      continue;
    }

    long long u, v;
    if (tok == "e") {
      if (!(ls >> u >> v)) fail(lineno, "bad edge line");
      if (u < 1 || v < 1) fail(lineno, "DIMACS endpoints are 1-based");
      --u;
      --v;
    } else {
      // Bare "<u> <v>" 0-based.
      std::istringstream both(line);
      if (!(both >> u >> v)) fail(lineno, "unrecognized line");
      if (u < 0 || v < 0) fail(lineno, "negative vertex id");
    }
    if (u == v) fail(lineno, "self-loop");
    if (has_header &&
        (static_cast<std::size_t>(u) >= n || static_cast<std::size_t>(v) >= n)) {
      fail(lineno, "endpoint exceeds declared vertex count");
    }
    implicit_max = std::max({implicit_max, static_cast<std::size_t>(u),
                             static_cast<std::size_t>(v)});
    edges.push_back(make_edge(static_cast<Vertex>(u), static_cast<Vertex>(v)));
  }

  if (!has_header) n = edges.empty() ? 0 : implicit_max + 1;
  Graph g(n);
  for (const auto& [u, v] : edges) g.add_edge(u, v);  // duplicates tolerated
  return g;
}

Graph read_edge_list_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_edge_list(in);
}

void write_edge_list(std::ostream& out, GraphView g) {
  out << "c written by agcolor\n";
  out << "p edge " << g.n() << " " << g.m() << "\n";
  g.for_each_edge([&](Vertex u, Vertex v) {
    out << "e " << (u + 1) << " " << (v + 1) << "\n";
  });
}

void write_dot(std::ostream& out, GraphView g, std::span<const Color> colors) {
  out << "graph agcolor {\n  node [shape=circle];\n";
  for (Vertex v = 0; v < g.n(); ++v) {
    out << "  v" << v;
    if (v < colors.size()) {
      out << " [label=\"" << v << ":" << colors[v] << "\", colorscheme=set312, "
          << "style=filled, fillcolor=" << (colors[v] % 12 + 1) << "]";
    }
    out << ";\n";
  }
  g.for_each_edge([&](Vertex u, Vertex v) {
    out << "  v" << u << " -- v" << v << ";\n";
  });
  out << "}\n";
}

void write_coloring_csv(std::ostream& out, std::span<const Color> colors) {
  out << "vertex,color\n";
  for (std::size_t v = 0; v < colors.size(); ++v) {
    out << v << "," << colors[v] << "\n";
  }
}

}  // namespace agc::graph
