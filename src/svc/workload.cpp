#include "agc/svc/workload.hpp"

#include <algorithm>

namespace agc::svc {

namespace {
constexpr int kDrawRetries = 64;  ///< uniform draws before degrading to query
}  // namespace

Workload::Workload(const Service& svc, const WorkloadSpec& spec)
    : spec_(spec),
      delta_bound_(svc.config().delta_bound),
      max_vertices_(svc.config().max_vertices),
      state_(spec.seed ^ 0x9e3779b97f4a7c15ULL) {
  graph::GraphView g = svc.graph();
  adj_.resize(g.n());
  live_.resize(g.n());
  live_pos_.assign(g.n(), 0);
  for (graph::Vertex v = 0; v < g.n(); ++v) {
    live_[v] = svc.live(v);
    if (live_[v]) {
      live_pos_[v] = live_list_.size();
      live_list_.push_back(v);
    }
    for (const graph::Vertex w : g.neighbors(v)) {
      adj_[v].insert(w);
      if (v < w) edges_.emplace_back(v, w);
    }
  }
}

std::uint64_t Workload::rnd() {
  // splitmix64 — the repo's generator idiom for seeded fixtures.
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void Workload::apply_mirror(const Op& op) {
  switch (op.kind) {
    case OpKind::AddEdge:
      adj_[op.u].insert(op.v);
      adj_[op.v].insert(op.u);
      edges_.emplace_back(std::min(op.u, op.v), std::max(op.u, op.v));
      break;
    case OpKind::RemoveEdge: {
      adj_[op.u].erase(op.v);
      adj_[op.v].erase(op.u);
      const auto key = std::make_pair(std::min(op.u, op.v),
                                      std::max(op.u, op.v));
      const auto it = std::find(edges_.begin(), edges_.end(), key);
      *it = edges_.back();
      edges_.pop_back();
      break;
    }
    case OpKind::AddVertex: {
      const graph::Vertex v = static_cast<graph::Vertex>(adj_.size());
      adj_.emplace_back();
      live_.push_back(true);
      live_pos_.push_back(live_list_.size());
      live_list_.push_back(v);
      break;
    }
    case OpKind::RemoveVertex: {
      // Drop the vertex's edges too — the service's reset_vertex isolates.
      for (const graph::Vertex w : adj_[op.u]) {
        adj_[w].erase(op.u);
        const auto key =
            std::make_pair(std::min(op.u, w), std::max(op.u, w));
        const auto it = std::find(edges_.begin(), edges_.end(), key);
        *it = edges_.back();
        edges_.pop_back();
      }
      adj_[op.u].clear();
      live_[op.u] = false;
      const std::size_t pos = live_pos_[op.u];
      live_list_[pos] = live_list_.back();
      live_pos_[live_list_[pos]] = pos;
      live_list_.pop_back();
      break;
    }
    case OpKind::QueryColor:
      break;
  }
}

bool Workload::try_add_edge(Op& op) {
  if (live_list_.size() < 2) return false;
  for (int i = 0; i < kDrawRetries; ++i) {
    const graph::Vertex u = live_list_[rnd() % live_list_.size()];
    const graph::Vertex v = live_list_[rnd() % live_list_.size()];
    if (u == v || adj_[u].count(v) != 0) continue;
    if (adj_[u].size() >= delta_bound_ || adj_[v].size() >= delta_bound_) {
      continue;
    }
    op = {OpKind::AddEdge, u, v};
    return true;
  }
  return false;
}

bool Workload::try_remove_edge(Op& op) {
  if (edges_.empty()) return false;
  const auto [u, v] = edges_[rnd() % edges_.size()];
  op = {OpKind::RemoveEdge, u, v};
  return true;
}

bool Workload::try_remove_vertex(Op& op) {
  // Keep the graph populated: never retire below half the initial live set.
  if (live_list_.size() < 2 || live_list_.size() * 2 < adj_.size()) {
    return false;
  }
  op = {OpKind::RemoveVertex, live_list_[rnd() % live_list_.size()], 0};
  return true;
}

Op Workload::make_query() {
  // live_list_ is never empty: remove_vertex keeps >= 1 live vertex.
  return {OpKind::QueryColor, live_list_[rnd() % live_list_.size()], 0};
}

Op Workload::next() {
  ++count_;
  const std::uint64_t draw = rnd() % 1'000'000;
  Op op;
  std::uint64_t edge = spec_.add_edge_ppm;
  if (draw < edge && try_add_edge(op)) return apply_mirror(op), op;
  edge += spec_.remove_edge_ppm;
  if (draw < edge && try_remove_edge(op)) return apply_mirror(op), op;
  edge += spec_.add_vertex_ppm;
  if (draw < edge && adj_.size() < max_vertices_) {
    op = {OpKind::AddVertex, 0, 0};
    return apply_mirror(op), op;
  }
  edge += spec_.remove_vertex_ppm;
  if (draw < edge && try_remove_vertex(op)) return apply_mirror(op), op;
  return make_query();
}

WorkloadReport run_workload(Service& svc, const WorkloadSpec& spec) {
  Workload gen(svc, spec);
  WorkloadReport rep;
  const std::size_t clients = std::max<std::size_t>(1, spec.clients);
  while (rep.submitted < spec.ops) {
    const std::size_t burst = static_cast<std::size_t>(
        std::min<std::uint64_t>(clients, spec.ops - rep.submitted));
    for (std::size_t i = 0; i < burst; ++i) {
      svc.submit(gen.next());
      ++rep.submitted;
    }
    for (const OpResult& r : svc.drain()) {
      ++rep.completed;
      if (r.status == OpStatus::Rejected) {
        ++rep.rejected;
      } else if (r.kind == OpKind::QueryColor) {
        ++rep.queries;
      } else {
        ++rep.mutations;
      }
    }
  }
  return rep;
}

}  // namespace agc::svc
