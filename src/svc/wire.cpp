#include "agc/svc/wire.hpp"

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace agc::svc {

namespace {

/// Split on single spaces; no quoting in this protocol.
std::vector<std::string_view> tokens(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (start <= line.size()) {
    const auto pos = line.find(' ', start);
    if (pos == std::string_view::npos) {
      if (start < line.size()) out.push_back(line.substr(start));
      break;
    }
    if (pos > start) out.push_back(line.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::optional<graph::Vertex> parse_vertex(std::string_view text) {
  graph::Vertex v = 0;
  if (text.empty()) return std::nullopt;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<graph::Vertex>(c - '0');
  }
  return v;
}

std::string queued(Service& svc, const Op& op) {
  return "queued " + std::to_string(svc.submit(op));
}

}  // namespace

std::string encode_frame(std::string_view payload) {
  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out.push_back(static_cast<char>(len & 0xff));
  out.push_back(static_cast<char>((len >> 8) & 0xff));
  out.push_back(static_cast<char>((len >> 16) & 0xff));
  out.push_back(static_cast<char>((len >> 24) & 0xff));
  out.append(payload);
  return out;
}

bool decode_frame(std::string& buffer, std::string& payload) {
  if (buffer.size() < 4) return false;
  const auto b = [&](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(buffer[i]));
  };
  const std::uint32_t len = b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
  if (buffer.size() < 4 + static_cast<std::size_t>(len)) return false;
  payload.assign(buffer, 4, len);
  buffer.erase(0, 4 + static_cast<std::size_t>(len));
  return true;
}

void FrameReader::feed(std::string_view bytes) {
  if (skip_ > 0) {
    const std::uint64_t take =
        std::min<std::uint64_t>(skip_, bytes.size());
    skip_ -= take;
    bytes.remove_prefix(static_cast<std::size_t>(take));
  }
  buffer_.append(bytes);
}

FrameStatus FrameReader::next(std::string& payload) {
  if (buffer_.size() < 4) return FrameStatus::Incomplete;
  const auto b = [&](std::size_t i) {
    return static_cast<std::uint32_t>(static_cast<unsigned char>(buffer_[i]));
  };
  const std::uint32_t len = b(0) | (b(1) << 8) | (b(2) << 16) | (b(3) << 24);
  if (len > max_) {
    // Drop the header and whatever payload already arrived; the rest is
    // discarded inside feed() so it never occupies memory.
    buffer_.erase(0, 4);
    const std::uint64_t have =
        std::min<std::uint64_t>(len, buffer_.size());
    buffer_.erase(0, static_cast<std::size_t>(have));
    skip_ = len - have;
    return FrameStatus::TooLarge;
  }
  if (buffer_.size() < 4 + static_cast<std::size_t>(len)) {
    return FrameStatus::Incomplete;
  }
  payload.assign(buffer_, 4, len);
  buffer_.erase(0, 4 + static_cast<std::size_t>(len));
  return FrameStatus::Ok;
}

bool is_quit(std::string_view line) { return line == "quit"; }

std::string handle_command(Service& svc, std::string_view line) {
  const auto tok = tokens(line);
  if (tok.empty()) return "err empty";
  const std::string_view cmd = tok[0];

  if (cmd == "quit") return "bye";

  if (cmd == "pump") {
    return "pumped " + std::to_string(svc.drain().size());
  }

  if (cmd == "stats") {
    (void)svc.drain();
    return svc.stats().to_json(/*include_timing=*/true);
  }

  if (cmd == "add_vertex") {
    return queued(svc, Op{OpKind::AddVertex, 0, 0});
  }

  if (cmd == "add_edge" || cmd == "remove_edge") {
    if (tok.size() != 3) return "err usage: " + std::string(cmd) + " U V";
    const auto u = parse_vertex(tok[1]);
    const auto v = parse_vertex(tok[2]);
    if (!u || !v) return "err bad vertex";
    const OpKind kind =
        cmd == "add_edge" ? OpKind::AddEdge : OpKind::RemoveEdge;
    return queued(svc, Op{kind, *u, *v});
  }

  if (cmd == "remove_vertex") {
    if (tok.size() != 2) return "err usage: remove_vertex V";
    const auto v = parse_vertex(tok[1]);
    if (!v) return "err bad vertex";
    return queued(svc, Op{OpKind::RemoveVertex, *v, 0});
  }

  if (cmd == "query") {
    if (tok.size() != 2) return "err usage: query V";
    const auto v = parse_vertex(tok[1]);
    if (!v) return "err bad vertex";
    (void)svc.drain();  // read-your-writes: commit pending epochs first
    const std::uint64_t id = svc.submit(Op{OpKind::QueryColor, *v, 0});
    for (const OpResult& r : svc.drain()) {
      if (r.op_id != id) continue;
      return r.status == OpStatus::Ok ? "ok " + std::to_string(r.value)
                                      : "rej";
    }
    return "err lost";  // unreachable: drain() returns every queued op
  }

  return "err unknown command";
}

}  // namespace agc::svc
