#include "agc/svc/service.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "agc/obs/event_sink.hpp"
#include "agc/obs/phase_timer.hpp"

namespace agc::svc {

namespace {

using runtime::Engine;

/// One pass of validation shared by the apply rules and documented in
/// docs/SERVICE.md; the workload generator mirrors these exactly so a seeded
/// run completes with zero rejects.
struct Rules {
  const Engine& engine;
  const std::vector<bool>& live;
  std::size_t delta_bound;
  std::uint64_t max_vertices;

  [[nodiscard]] bool known(graph::Vertex v) const {
    return v < engine.graph().n() && live[v];
  }
  [[nodiscard]] bool can_add_edge(graph::Vertex u, graph::Vertex v) const {
    graph::GraphView g = engine.graph();
    return u != v && known(u) && known(v) && !g.has_edge(u, v) &&
           g.degree(u) < delta_bound && g.degree(v) < delta_bound;
  }
  [[nodiscard]] bool can_remove_edge(graph::Vertex u, graph::Vertex v) const {
    return known(u) && known(v) && engine.graph().has_edge(u, v);
  }
  [[nodiscard]] bool can_add_vertex() const {
    return engine.graph().n() < max_vertices;
  }
};

void emit_stage(obs::EventSink* sink, obs::EventKind kind, std::uint64_t round,
                std::uint64_t value) {
  if (sink == nullptr) return;
  obs::Event ev;
  ev.kind = kind;
  ev.round = round;
  ev.label = "svc.epoch";
  ev.value = value;
  sink->emit(ev);
}

void append_u64(std::string& out, const char* key, std::uint64_t v,
                bool comma = true) {
  out += '"';
  out += key;
  out += "\":";
  out += std::to_string(v);
  if (comma) out += ',';
}

/// Doubles in the deterministic aggregate are ratios of integer counters, so
/// the shortest round-trip spelling is itself deterministic.
void append_f64(std::string& out, const char* key, double v,
                bool comma = true) {
  char buf[64];
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof buf, "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out += '"';
  out += key;
  out += "\":";
  out += buf;
  if (comma) out += ',';
}

}  // namespace

const char* to_string(OpKind k) noexcept {
  switch (k) {
    case OpKind::AddEdge: return "add_edge";
    case OpKind::RemoveEdge: return "remove_edge";
    case OpKind::AddVertex: return "add_vertex";
    case OpKind::RemoveVertex: return "remove_vertex";
    case OpKind::QueryColor: return "query";
  }
  return "?";
}

Service::Service(ServiceConfig cfg)
    : cfg_([&] {
        // Resolve the lifetime bounds before any member that bakes them in.
        graph::Graph g0 = cfg.spec.build();
        if (cfg.delta_bound == 0) {
          cfg.delta_bound = 2 * std::max<std::size_t>(1, g0.max_degree());
        }
        if (cfg.max_vertices == 0) cfg.max_vertices = 2 * g0.n();
        cfg.max_vertices = std::max<std::uint64_t>(cfg.max_vertices, g0.n());
        return cfg;
      }()),
      ss_cfg_(cfg_.max_vertices, cfg_.delta_bound, cfg_.mode),
      engine_(cfg_.spec.build(), runtime::Transport(runtime::Model::LOCAL),
              runtime::EngineOptions{.id_space_factor = 1,
                                     .delta_bound = cfg_.delta_bound,
                                     .n_bound = cfg_.max_vertices}) {
  engine_.install(selfstab::ss_coloring_factory(ss_cfg_));
  if (cfg_.run.executor != nullptr) engine_.set_executor(cfg_.run.executor);
  spec_.check = faultlab::coloring_check(ss_cfg_);
  spec_.outputs = faultlab::coloring_outputs();
  spec_.recovery_budget = cfg_.repair_budget;
  spec_.confirm_rounds = cfg_.confirm_rounds;

  live_.assign(engine_.graph().n(), true);
  n_live_ = engine_.graph().n();

  // Settle the initial graph so epoch 0 starts from a legal coloring; this
  // is the only from-scratch stabilization the service ever pays.
  runtime::RunOptions boot = cfg_.run;
  boot.adversary = nullptr;
  boot.channel = nullptr;
  const auto out =
      faultlab::resettle(engine_, boot, spec_, /*baseline=*/{});
  if (!out.recovered) ++stats_.legality_violations;
  settled_ = spec_.outputs(engine_);
}

std::uint64_t Service::submit(const Op& op) {
  queue_.push_back(Queued{op, next_op_, engine_.rounds(),
                          obs::monotonic_ns()});
  return next_op_++;
}

bool Service::apply(const Op& op, OpResult& result) {
  const Rules rules{engine_, live_, cfg_.delta_bound, cfg_.max_vertices};
  switch (op.kind) {
    case OpKind::AddEdge:
      if (!rules.can_add_edge(op.u, op.v)) break;
      engine_.add_edge(op.u, op.v);
      result.status = OpStatus::Ok;
      return true;
    case OpKind::RemoveEdge:
      if (!rules.can_remove_edge(op.u, op.v)) break;
      engine_.remove_edge(op.u, op.v);
      result.status = OpStatus::Ok;
      return true;
    case OpKind::AddVertex: {
      if (!rules.can_add_vertex()) break;
      const graph::Vertex v = engine_.add_vertex();
      live_.push_back(true);
      ++n_live_;
      result.status = OpStatus::Ok;
      result.value = v;
      return true;
    }
    case OpKind::RemoveVertex:
      if (!rules.known(op.u)) break;
      // Retire: drop the vertex's edges and restart its program.  The slot
      // stays in the engine (ids are stable) but leaves the service API.
      engine_.reset_vertex(op.u);
      live_[op.u] = false;
      --n_live_;
      result.status = OpStatus::Ok;
      return true;
    case OpKind::QueryColor:
      // Liveness is judged here — at the op's position in the submission
      // order, so a query racing a remove_vertex in the same epoch keeps
      // sequential semantics — but the color itself is read post-repair.
      if (!rules.known(op.u)) break;
      result.status = OpStatus::Ok;
      return false;
  }
  result.status = OpStatus::Rejected;
  return false;
}

std::vector<OpResult> Service::pump() {
  std::vector<OpResult> results;
  if (queue_.empty()) return results;
  const std::uint64_t t0 = obs::monotonic_ns();
  const std::size_t batch = std::min(cfg_.epoch_batch, queue_.size());
  const std::uint64_t epoch = stats_.epochs;
  emit_stage(cfg_.run.sink, obs::EventKind::StageStart, engine_.rounds(),
             batch);

  std::vector<Queued> taken;
  taken.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    taken.push_back(queue_.front());
    queue_.pop_front();
  }

  // The pre-epoch settled snapshot is the adjustment-diff baseline.  It may
  // be shorter than the post-epoch graph (AddVertex): resettle counts the
  // appended tail as adjusted, which is exactly right.
  const std::vector<std::uint64_t> baseline = settled_;

  results.resize(batch);
  std::size_t mutated = 0;
  for (std::size_t i = 0; i < batch; ++i) {
    OpResult& r = results[i];
    r.op_id = taken[i].op_id;
    r.kind = taken[i].op.kind;
    r.epoch = epoch;
    if (apply(taken[i].op, r)) ++mutated;
  }

  // Repair only when the epoch actually touched the engine; a query-only
  // epoch leaves the settled coloring untouched and costs zero rounds.
  if (mutated > 0) {
    const auto out = faultlab::resettle(engine_, cfg_.run, spec_, baseline);
    stats_.repair_rounds += out.rounds;
    stats_.adjusted_total += out.adjusted.size();
    stats_.max_adjusted =
        std::max<std::uint64_t>(stats_.max_adjusted, out.adjusted.size());
    if (!out.recovered) ++stats_.legality_violations;
    settled_ = spec_.outputs(engine_);
  }

  const std::uint64_t legal_round = engine_.rounds();
  const std::uint64_t legal_ns = obs::monotonic_ns();
  for (std::size_t i = 0; i < batch; ++i) {
    OpResult& r = results[i];
    if (r.kind == OpKind::QueryColor && r.status == OpStatus::Ok) {
      r.value = ss_cfg_.truncate(settled_[taken[i].op.u]);
    }
    r.latency_rounds = legal_round - taken[i].submit_round;
    r.latency_ns = legal_ns - taken[i].submit_ns;
    stats_.latency_rounds.record(r.latency_rounds);
    stats_.latency_us.record(r.latency_ns / 1000);
    ++stats_.ops;
    if (r.status == OpStatus::Rejected) {
      ++stats_.rejected;
    } else if (r.kind == OpKind::QueryColor) {
      ++stats_.queries;
    } else {
      ++stats_.mutations;
    }
  }
  ++stats_.epochs;
  stats_.wall_ns += obs::monotonic_ns() - t0;
  emit_stage(cfg_.run.sink, obs::EventKind::StageEnd, engine_.rounds(),
             mutated);
  return results;
}

std::vector<OpResult> Service::drain() {
  std::vector<OpResult> all;
  while (!queue_.empty()) {
    auto part = pump();
    all.insert(all.end(), part.begin(), part.end());
  }
  return all;
}

runtime::RunReport Service::report() const {
  runtime::RunReport rep;
  rep.rounds = engine_.rounds();
  rep.converged = stats_.legality_violations == 0;
  rep.metrics = engine_.metrics();
  rep.wall_ns = stats_.wall_ns;
  return rep;
}

std::vector<graph::Color> Service::colors() const {
  std::vector<graph::Color> out(settled_.size());
  for (std::size_t v = 0; v < settled_.size(); ++v) {
    out[v] = static_cast<graph::Color>(ss_cfg_.truncate(settled_[v]));
  }
  return out;
}

std::string ServiceStats::to_json(bool include_timing) const {
  std::string out = "{";
  append_u64(out, "epochs", epochs);
  append_u64(out, "ops", ops);
  append_u64(out, "mutations", mutations);
  append_u64(out, "queries", queries);
  append_u64(out, "rejected", rejected);
  append_u64(out, "repair_rounds", repair_rounds);
  append_u64(out, "adjusted_total", adjusted_total);
  append_u64(out, "max_adjusted", max_adjusted);
  append_f64(out, "mean_adjusted", mean_adjusted());
  append_u64(out, "legality_violations", legality_violations);
  append_u64(out, "latency_rounds_p50", latency_rounds.quantile(0.50));
  append_u64(out, "latency_rounds_p99", latency_rounds.quantile(0.99));
  append_u64(out, "latency_rounds_max", latency_rounds.max());
  append_f64(out, "latency_rounds_mean", latency_rounds.mean(),
             /*comma=*/include_timing);
  if (include_timing) {
    append_u64(out, "latency_us_p50", latency_us.quantile(0.50));
    append_u64(out, "latency_us_p99", latency_us.quantile(0.99));
    append_u64(out, "latency_us_max", latency_us.max());
    append_u64(out, "wall_ns", wall_ns, /*comma=*/false);
  }
  out += '}';
  return out;
}

}  // namespace agc::svc
