#include "agc/faultlab/channel.hpp"

#include <algorithm>
#include <cassert>

namespace agc::faultlab {

namespace {

using runtime::FaultEvent;
using runtime::FaultKind;
using runtime::MailboxArena;
using runtime::Word;

/// splitmix64 finalizer — the same mixer graph::Rng seeds with.  Statelessly
/// hashing (seed, round, u, v) instead of streaming an RNG is what makes
/// channel decisions independent of visit order, hence of the shard count.
[[nodiscard]] std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[nodiscard]] std::uint64_t edge_hash(std::uint64_t seed, std::uint64_t round,
                                      graph::Vertex u, graph::Vertex v) noexcept {
  std::uint64_t h = mix(seed ^ mix(round));
  h = mix(h ^ (static_cast<std::uint64_t>(u) << 32 | v));
  return h;
}

/// Re-emit a word delayed in round r-1 at the *front* of port gp's traffic
/// for round r.  For the (bounded-model) single-word case this is an exact
/// prepend; for a LOCAL multi-word message the displaced first word moves to
/// the back (documented in docs/FAULTS.md — delay targets single-word ports
/// only, so this only matters for in-flight flushes after topology churn).
void flush_stash(MailboxArena& arena, std::uint32_t gp, std::size_t shard,
                 std::uint32_t parity, std::vector<Word>& stash,
                 std::vector<std::uint8_t>& full) {
  if (!full[gp]) return;
  full[gp] = 0;
  const Word delayed = stash[gp];
  const auto words = arena.words_mutable(gp, parity);
  if (words.empty()) {
    arena.push(gp, shard, delayed, parity);
  } else {
    const Word displaced = words[0];
    words[0] = delayed;
    arena.push(gp, shard, displaced, parity);
  }
}

/// Rebind per-port stash storage after the arena rebuilt its port tables.
/// Ports are renumbered by churn, so pending delayed words are discarded —
/// the edge they were traveling on may no longer exist.
void rebind(const MailboxArena& arena, std::vector<Word>& stash,
            std::vector<std::uint8_t>& full, std::uint64_t& version,
            bool& bound) {
  if (bound && version == arena.topology_version()) return;
  const std::size_t total_ports =
      arena.n() == 0 ? 0 : arena.base(static_cast<graph::Vertex>(arena.n()));
  stash.assign(total_ports, Word{});
  full.assign(total_ports, 0);
  version = arena.topology_version();
  bound = true;
}

}  // namespace

void ChannelAdversary::begin_round(const MailboxArena& arena,
                                   graph::GraphView /*g*/,
                                   std::uint64_t /*round*/) {
  rebind(arena, stash_, stash_full_, arena_version_, bound_);
}

void ChannelAdversary::apply(MailboxArena& arena, graph::GraphView g,
                             graph::Vertex v, std::uint64_t round,
                             std::size_t shard) {
  const auto nbrs = g.neighbors(v);
  const std::uint32_t base = arena.base(v);
  // Under a dependency-driven executor the arena is in two-epoch mode; every
  // mutation targets the parity slot of the round being attacked.  Decisions
  // stay (seed, round, u, v)-pure, so they are identical to the BSP run.
  const std::uint32_t parity = arena.parity_for(round);
  const bool active =
      round >= config_.first_round && round <= config_.last_round;
  std::uint64_t injected = 0;
  for (std::size_t p = 0; p < nbrs.size(); ++p) {
    const std::uint32_t gp = base + static_cast<std::uint32_t>(p);
    flush_stash(arena, gp, shard, parity, stash_, stash_full_);
    if (!active) continue;
    auto words = arena.words_mutable(gp, parity);
    if (words.empty()) continue;  // nothing on the wire to attack
    const graph::Vertex w = nbrs[p];
    const std::uint64_t h = edge_hash(config_.seed, round, v, w);
    const std::uint32_t roll = static_cast<std::uint32_t>(h % 1'000'000u);
    const std::uint32_t d = config_.drop_per_million;
    const std::uint32_t c = d + config_.corrupt_per_million;
    const std::uint32_t u = c + config_.duplicate_per_million;
    const std::uint32_t l = u + config_.delay_per_million;
    FaultEvent ev;
    ev.round = round;
    ev.u = v;
    ev.v = w;
    if (roll < d) {
      arena.clear_port(gp, parity);
      ev.kind = FaultKind::Drop;
    } else if (roll < c) {
      const std::uint32_t bits = words[0].bits == 0 ? 1 : words[0].bits;
      const std::uint32_t bit = static_cast<std::uint32_t>((h >> 32) % bits);
      words[0].value ^= 1ULL << bit;
      ev.kind = FaultKind::Corrupt;
      ev.value = bit;
    } else if (roll < u) {
      const Word head = words[0];  // push may relocate the span
      arena.push(gp, shard, head, parity);
      ev.kind = FaultKind::Duplicate;
    } else if (roll < l) {
      // Delay targets single-word messages with a free stash slot; anything
      // else passes untouched (and unrecorded) this round.
      if (words.size() != 1 || stash_full_[gp]) continue;
      stash_[gp] = words[0];
      stash_full_[gp] = 1;
      arena.clear_port(gp, parity);
      ev.kind = FaultKind::Delay;
    } else {
      continue;
    }
    ++injected;
    if (recorder_ != nullptr) recorder_->record(ev);
  }
  if (injected != 0) events_.fetch_add(injected, std::memory_order_relaxed);
}

ChannelPlayback::ChannelPlayback(const std::vector<FaultEvent>& events) {
  for (const FaultEvent& ev : events) {
    if (runtime::is_channel_fault(ev.kind)) channel_events_.push_back(ev);
  }
  std::stable_sort(channel_events_.begin(), channel_events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.round != b.round) return a.round < b.round;
                     return a.u < b.u;
                   });
}

void ChannelPlayback::begin_round(const MailboxArena& arena,
                                  graph::GraphView /*g*/,
                                  std::uint64_t round) {
  rebind(arena, stash_, stash_full_, arena_version_, bound_);
  auto lo = std::lower_bound(
      channel_events_.begin(), channel_events_.end(), round,
      [](const FaultEvent& ev, std::uint64_t r) { return ev.round < r; });
  auto hi = std::upper_bound(
      channel_events_.begin(), channel_events_.end(), round,
      [](std::uint64_t r, const FaultEvent& ev) { return r < ev.round; });
  round_begin_ = static_cast<std::size_t>(lo - channel_events_.begin());
  round_end_ = static_cast<std::size_t>(hi - channel_events_.begin());
}

void ChannelPlayback::apply(MailboxArena& arena, graph::GraphView g,
                            graph::Vertex v, std::uint64_t round,
                            std::size_t shard) {
  const auto nbrs = g.neighbors(v);
  const std::uint32_t base = arena.base(v);
  const std::uint32_t parity = arena.parity_for(round);
  // Delayed words re-emerge exactly as in the live run, whether or not any
  // event targets this sender this round.
  for (std::size_t p = 0; p < nbrs.size(); ++p) {
    flush_stash(arena, base + static_cast<std::uint32_t>(p), shard, parity,
                stash_, stash_full_);
  }
  auto lo = std::lower_bound(
      channel_events_.begin() + static_cast<std::ptrdiff_t>(round_begin_),
      channel_events_.begin() + static_cast<std::ptrdiff_t>(round_end_), v,
      [](const FaultEvent& ev, graph::Vertex u) { return ev.u < u; });
  std::uint64_t applied = 0;
  for (; lo != channel_events_.begin() + static_cast<std::ptrdiff_t>(round_end_) &&
         lo->u == v && lo->round == round;
       ++lo) {
    const FaultEvent& ev = *lo;
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), ev.v);
    if (it == nbrs.end() || *it != ev.v) continue;  // edge churned away
    const std::uint32_t gp =
        base + static_cast<std::uint32_t>(it - nbrs.begin());
    auto words = arena.words_mutable(gp, parity);
    if (words.empty()) continue;
    switch (ev.kind) {
      case FaultKind::Drop:
        arena.clear_port(gp, parity);
        break;
      case FaultKind::Corrupt: {
        const std::uint32_t bits = words[0].bits == 0 ? 1 : words[0].bits;
        words[0].value ^= 1ULL << (ev.value % bits);
        break;
      }
      case FaultKind::Duplicate: {
        const Word head = words[0];
        arena.push(gp, shard, head, parity);
        break;
      }
      case FaultKind::Delay:
        if (words.size() != 1 || stash_full_[gp]) continue;
        stash_[gp] = words[0];
        stash_full_[gp] = 1;
        arena.clear_port(gp, parity);
        break;
      case FaultKind::Lie: {
        const std::uint32_t bits = words[0].bits == 0 ? 1 : words[0].bits;
        const std::uint64_t cap =
            bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
        words[0].value = ev.value & cap;
        break;
      }
      default:
        continue;
    }
    ++applied;
  }
  if (applied != 0) events_.fetch_add(applied, std::memory_order_relaxed);
}

}  // namespace agc::faultlab
