#include "agc/faultlab/zoo.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>

namespace agc::faultlab {

namespace {

using runtime::FaultEvent;
using runtime::FaultKind;
using runtime::MailboxArena;

/// splitmix64 finalizer — identical to channel.cpp's, so zoo decisions are
/// pure (seed, round, u, v) hashes with the same independence guarantees.
[[nodiscard]] std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

[[nodiscard]] std::uint64_t edge_hash(std::uint64_t seed, std::uint64_t round,
                                      graph::Vertex u, graph::Vertex v) noexcept {
  std::uint64_t h = mix(seed ^ mix(round));
  h = mix(h ^ (static_cast<std::uint64_t>(u) << 32 | v));
  return h;
}

[[nodiscard]] std::uint64_t width_mask(std::uint32_t bits) noexcept {
  return bits >= 64 ? ~0ULL : ((1ULL << bits) - 1);
}

}  // namespace

// ---------------------------------------------------------------------------
// RegionalOutage
// ---------------------------------------------------------------------------

void RegionalOutage::begin_round(const MailboxArena& /*arena*/,
                                 graph::GraphView /*g*/,
                                 std::uint64_t /*round*/) {}

void RegionalOutage::apply(MailboxArena& arena, graph::GraphView g,
                           graph::Vertex v, std::uint64_t round,
                           std::size_t /*shard*/) {
  if (!config_.enabled()) return;
  if (round < config_.first_round || round > config_.last_round) return;
  const auto in_region = [this](graph::Vertex x) noexcept {
    return x >= config_.lo && x <= config_.hi;
  };
  const auto nbrs = g.neighbors(v);
  const std::uint32_t base = arena.base(v);
  const std::uint32_t parity = arena.parity_for(round);
  const bool sender_dark = in_region(v);
  std::uint64_t injected = 0;
  for (std::size_t p = 0; p < nbrs.size(); ++p) {
    const graph::Vertex w = nbrs[p];
    if (!sender_dark && !in_region(w)) continue;
    const std::uint32_t gp = base + static_cast<std::uint32_t>(p);
    if (arena.words_mutable(gp, parity).empty()) continue;
    arena.clear_port(gp, parity);
    FaultEvent ev;
    ev.round = round;
    ev.kind = FaultKind::Drop;
    ev.u = v;
    ev.v = w;
    ++injected;
    if (recorder_ != nullptr) recorder_->record(ev);
  }
  if (injected != 0) events_.fetch_add(injected, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// FlappingLinks
// ---------------------------------------------------------------------------

void FlappingLinks::begin_round(const MailboxArena& arena,
                                graph::GraphView /*g*/,
                                std::uint64_t /*round*/) {
  if (bound_ && arena_version_ == arena.topology_version()) return;
  const std::size_t total_ports =
      arena.n() == 0 ? 0 : arena.base(static_cast<graph::Vertex>(arena.n()));
  down_.assign(total_ports, 0);
  arena_version_ = arena.topology_version();
  bound_ = true;
}

void FlappingLinks::apply(MailboxArena& arena, graph::GraphView g,
                          graph::Vertex v, std::uint64_t round,
                          std::size_t /*shard*/) {
  if (!config_.enabled()) return;
  if (round < config_.first_round || round > config_.last_round) return;
  const auto nbrs = g.neighbors(v);
  const std::uint32_t base = arena.base(v);
  const std::uint32_t parity = arena.parity_for(round);
  const std::uint32_t up = config_.up_per_million;
  const std::uint32_t dn = config_.down_per_million;
  std::uint64_t injected = 0;
  for (std::size_t p = 0; p < nbrs.size(); ++p) {
    const graph::Vertex w = nbrs[p];
    const std::uint32_t gp = base + static_cast<std::uint32_t>(p);
    // One coupled roll per (link, round): both directions hash the canonical
    // endpoint pair, so the two per-port copies of the chain never diverge.
    const std::uint64_t h =
        edge_hash(seed_, round, std::min(v, w), std::max(v, w));
    const auto roll = static_cast<std::uint32_t>(h % 1'000'000u);
    if (down_[gp] != 0) {
      if (roll < up) down_[gp] = 0;
    } else if (roll >= up && roll < up + dn) {
      down_[gp] = 1;
    }
    if (down_[gp] == 0) continue;
    if (arena.words_mutable(gp, parity).empty()) continue;
    arena.clear_port(gp, parity);
    FaultEvent ev;
    ev.round = round;
    ev.kind = FaultKind::Drop;
    ev.u = v;
    ev.v = w;
    ++injected;
    if (recorder_ != nullptr) recorder_->record(ev);
  }
  if (injected != 0) events_.fetch_add(injected, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// ByzantineNeighbors
// ---------------------------------------------------------------------------

bool ByzantineNeighbors::is_liar(graph::Vertex v) const noexcept {
  if (!config_.enabled()) return false;
  const std::uint64_t h = mix(mix(seed_) ^ v);
  return h % 1'000'000u < config_.liars_per_million;
}

void ByzantineNeighbors::begin_round(const MailboxArena& /*arena*/,
                                     graph::GraphView /*g*/,
                                     std::uint64_t /*round*/) {}

void ByzantineNeighbors::apply(MailboxArena& arena, graph::GraphView g,
                               graph::Vertex v, std::uint64_t round,
                               std::size_t /*shard*/) {
  if (round < config_.first_round || round > config_.last_round) return;
  if (!is_liar(v)) return;
  const auto nbrs = g.neighbors(v);
  const std::uint32_t base = arena.base(v);
  const std::uint32_t parity = arena.parity_for(round);
  std::uint64_t injected = 0;
  for (std::size_t p = 0; p < nbrs.size(); ++p) {
    const std::uint32_t gp = base + static_cast<std::uint32_t>(p);
    auto words = arena.words_mutable(gp, parity);
    if (words.empty()) continue;
    const graph::Vertex w = nbrs[p];
    const std::uint64_t h = edge_hash(seed_, round, v, w);
    if (h % 1'000'000u >= config_.lie_per_million) continue;
    const std::uint32_t bits = words[0].bits == 0 ? 1 : words[0].bits;
    std::uint64_t lie = mix(h) & width_mask(bits);
    // A lie equal to the truth is no lie; flipping bit 0 stays in-width.
    if (lie == words[0].value) lie ^= 1;
    words[0].value = lie;
    FaultEvent ev;
    ev.round = round;
    ev.kind = FaultKind::Lie;
    ev.u = v;
    ev.v = w;
    ev.value = lie;
    ++injected;
    if (recorder_ != nullptr) recorder_->record(ev);
  }
  if (injected != 0) events_.fetch_add(injected, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// ChannelHookChain
// ---------------------------------------------------------------------------

void ChannelHookChain::begin_round(const MailboxArena& arena, graph::GraphView g,
                                   std::uint64_t round) {
  for (runtime::ChannelHook* hook : hooks_) hook->begin_round(arena, g, round);
}

void ChannelHookChain::apply(MailboxArena& arena, graph::GraphView g,
                             graph::Vertex v, std::uint64_t round,
                             std::size_t shard) {
  for (runtime::ChannelHook* hook : hooks_) {
    hook->apply(arena, g, v, round, shard);
  }
}

std::uint64_t ChannelHookChain::events() const noexcept {
  std::uint64_t total = 0;
  for (const runtime::ChannelHook* hook : hooks_) total += hook->events();
  return total;
}

// ---------------------------------------------------------------------------
// AdaptiveAdversary
// ---------------------------------------------------------------------------

std::size_t AdaptiveAdversary::inject(runtime::Engine& engine,
                                      std::size_t round) {
  const std::size_t n = engine.graph().n();
  const std::size_t known = prev_word0_.size();
  if (known < n) {
    prev_word0_.resize(n, 0);
    last_changed_.resize(n, 0);
  }
  // Recency tracking runs on every call (firing or not) so the snapshot the
  // next firing targets is exact, not sampled at the firing period.
  for (std::size_t v = 0; v < n; ++v) {
    const auto ram = engine.ram(static_cast<graph::Vertex>(v));
    const std::uint64_t w0 = ram.empty() ? 0 : ram[0];
    if (v >= known || w0 != prev_word0_[v]) last_changed_[v] = round;
    prev_word0_[v] = w0;
  }
  if (round == 0 || !config_.enabled() || round > config_.last_round ||
      round % config_.period != 0 || n == 0) {
    return 0;
  }
  const std::size_t count = std::min(config_.count, n);
  targets_.resize(n);
  std::iota(targets_.begin(), targets_.end(), 0u);
  const auto by_degree = [&](std::uint32_t a, std::uint32_t b) {
    const std::size_t da = engine.graph().degree(a);
    const std::size_t db = engine.graph().degree(b);
    if (da != db) return da > db;
    return a < b;
  };
  if (config_.target == AdaptiveConfig::Target::RecentlyRecolored) {
    std::partial_sort(targets_.begin(),
                      targets_.begin() + static_cast<std::ptrdiff_t>(count),
                      targets_.end(), [&](std::uint32_t a, std::uint32_t b) {
                        if (last_changed_[a] != last_changed_[b]) {
                          return last_changed_[a] > last_changed_[b];
                        }
                        return by_degree(a, b);
                      });
  } else {
    std::partial_sort(targets_.begin(),
                      targets_.begin() + static_cast<std::ptrdiff_t>(count),
                      targets_.end(), by_degree);
  }
  std::size_t injected = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const auto v = static_cast<graph::Vertex>(targets_[i]);
    const auto nbrs = engine.graph().neighbors(v);
    if (nbrs.empty()) continue;
    const std::uint64_t h = mix(mix(seed_ ^ round) ^ v);
    const graph::Vertex u = nbrs[h % nbrs.size()];
    const auto u_ram = engine.ram(u);
    if (u_ram.empty()) continue;
    // The classic worst case, aimed: a monochromatic edge at the vertex the
    // snapshot says hurts most.
    engine.corrupt_ram(v, 0, u_ram[0]);
    ++injected;
  }
  events_ += injected;
  return injected;
}

// ---------------------------------------------------------------------------
// ChurnTrace
// ---------------------------------------------------------------------------

ChurnTrace::ChurnTrace(ChurnTraceConfig config, std::uint64_t seed)
    : config_(config), rng_(seed) {
  if (!config_.enabled()) return;
  // Bounded Pareto inter-arrival gaps: P(gap >= g) ~ g^-alpha, clamped to
  // [1, 1024] rounds.  The schedule depends on the seed alone, never on
  // engine state, so record and replay see identical entry rounds.
  std::size_t r = config_.first_round;
  for (std::size_t i = 0; i < config_.events; ++i) {
    if (i > 0) {
      double u = rng_.uniform();
      if (u < 1e-12) u = 1e-12;
      const double g = std::pow(u, -1.0 / config_.alpha);
      auto gap = g >= 1024.0 ? std::size_t{1024} : static_cast<std::size_t>(g);
      if (gap < 1) gap = 1;
      r += gap;
    }
    if (r > config_.last_round) break;
    schedule_.push_back(r);
  }
}

std::size_t ChurnTrace::inject(runtime::Engine& engine, std::size_t round) {
  if (round == 0) return 0;
  std::size_t injected = 0;
  while (next_ < schedule_.size() && schedule_[next_] <= round) {
    ++next_;
    const std::size_t n = engine.graph().n();
    if (n == 0) continue;
    const bool want_reset =
        rng_.below(1'000'000) < config_.resets_per_million;
    const bool can_grow =
        config_.max_vertices > 0 && n < config_.max_vertices;
    graph::Vertex v;
    if (want_reset || !can_grow) {
      v = static_cast<graph::Vertex>(rng_.below(n));
      engine.reset_vertex(v);
      ++injected;
    } else {
      v = engine.add_vertex();
      ++injected;
    }
    // Degree-biased attachment: land on a uniform vertex, step to one of its
    // neighbors — the friend-of-a-friend walk lands on a vertex with
    // probability proportional to its degree, matching preferential
    // attachment without any global bookkeeping.
    const std::size_t total = engine.graph().n();
    std::size_t added = 0;
    std::size_t guard = 0;
    while (added < config_.attach && guard < 20 * config_.attach + 50) {
      ++guard;
      const auto x = static_cast<graph::Vertex>(rng_.below(total));
      const auto nb = engine.graph().neighbors(x);
      const graph::Vertex t = nb.empty() ? x : nb[rng_.below(nb.size())];
      if (t == v) continue;
      if (engine.graph().degree(t) >= config_.dmax ||
          engine.graph().degree(v) >= config_.dmax) {
        continue;
      }
      if (engine.add_edge(v, t)) {
        ++added;
        ++injected;
      }
    }
  }
  events_ += injected;
  return injected;
}

// ---------------------------------------------------------------------------
// FaultAdversaryChain
// ---------------------------------------------------------------------------

std::size_t FaultAdversaryChain::inject(runtime::Engine& engine,
                                        std::size_t round) {
  std::size_t total = 0;
  for (runtime::FaultAdversary* adversary : adversaries_) {
    total += adversary->inject(engine, round);
  }
  return total;
}

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

void append_channel_hooks(ChannelHookChain& chain, const ZooSpec& zoo,
                          std::uint64_t seed,
                          runtime::FaultEventSink* recorder) {
  if (zoo.outage.enabled()) {
    chain.own(std::make_unique<RegionalOutage>(zoo.outage, recorder));
  }
  if (zoo.flap.enabled()) {
    chain.own(
        std::make_unique<FlappingLinks>(zoo.flap, seed ^ kFlapStream, recorder));
  }
  if (zoo.byz.enabled()) {
    chain.own(std::make_unique<ByzantineNeighbors>(zoo.byz, seed ^ kByzStream,
                                                   recorder));
  }
}

void append_state_adversaries(FaultAdversaryChain& chain, const ZooSpec& zoo,
                              std::uint64_t seed) {
  if (zoo.adapt.enabled()) {
    chain.own(
        std::make_unique<AdaptiveAdversary>(zoo.adapt, seed ^ kAdaptStream));
  }
  if (zoo.churn.enabled()) {
    chain.own(std::make_unique<ChurnTrace>(zoo.churn, seed ^ kChurnStream));
  }
}

}  // namespace agc::faultlab
