#include "agc/faultlab/harness.hpp"

#include <algorithm>

#include "agc/graph/checks.hpp"
#include "agc/obs/event_sink.hpp"
#include "agc/runtime/faults.hpp"

namespace agc::faultlab {

namespace {

using runtime::Engine;
using runtime::RunOptions;

void emit_fault(const RunOptions& opts, const Engine& engine, const char* label,
                std::uint64_t count) {
  if (opts.sink == nullptr) return;
  obs::Event ev;
  ev.kind = obs::EventKind::Fault;
  ev.round = engine.rounds();
  ev.label = label;
  ev.value = count;
  opts.sink->emit(ev);
}

/// Phase 1 of the protocol: drive the engine from its current state (legal or
/// not — `initially_legal` says which, sparing a redundant check when phase 0
/// just certified legality) until the check holds for confirm_rounds
/// consecutive rounds, with the RunOptions fault hooks live and the watchdog
/// armed.  Fills everything in `out` except the settle bookkeeping; `executed`
/// counts engine rounds already spent against opts.max_rounds.
/// `attach_obs` additionally wires opts.sink / phase timers into the engine
/// for the duration (resettle does; run_stabilization keeps its historical
/// fault-events-only sink stream).
void repair_until_legal(Engine& engine, const RunOptions& opts,
                        const StabilizationSpec& spec,
                        const std::vector<std::uint64_t>& baseline,
                        bool initially_legal, bool attach_obs,
                        std::size_t executed, StabilizationOutcome& out) {
  obs::PhaseProfile profile;
  obs::PhaseProfile* const prev_profile = engine.profile();
  if (attach_obs && opts.collect_phase_times) engine.set_profile(&profile);
  obs::EventSink* const prev_sink = engine.sink();
  if (attach_obs && opts.sink != nullptr) engine.set_sink(opts.sink);
  runtime::ChannelHook* const prev_channel = engine.channel();
  if (opts.channel != nullptr) engine.set_channel(opts.channel);
  std::uint64_t channel_seen =
      opts.channel != nullptr ? opts.channel->events() : 0;

  // The entry state anchors the clocks: an already-legal configuration with
  // an empty fault schedule recovers in 0 rounds.
  out.last_fault_round = engine.rounds();
  out.first_legal_round = engine.rounds();
  bool legal = initially_legal;
  Violation v;
  std::size_t confirmed = 0;
  out.recovered = legal && spec.confirm_rounds == 0;

  // The adversary's schedule is relative to the start of the fault phase, not
  // to engine round 0 — a settle phase's length must not eat the schedule.
  std::size_t fault_round = 0;
  while (!out.recovered && executed < opts.max_rounds) {
    engine.step();
    ++executed;
    ++fault_round;
    std::uint64_t injected = 0;
    if (opts.channel != nullptr) {
      const std::uint64_t now = opts.channel->events();
      if (now > channel_seen) {
        injected += now - channel_seen;
        emit_fault(opts, engine, opts.channel->name(), now - channel_seen);
        channel_seen = now;
      }
    }
    if (opts.adversary != nullptr) {
      const std::size_t adv = opts.adversary->inject(engine, fault_round);
      if (adv > 0) {
        injected += adv;
        emit_fault(opts, engine, opts.adversary->name(), adv);
      }
    }
    if (injected > 0) {
      out.fault_events += injected;
      out.last_fault_round = engine.rounds();
      legal = false;
      confirmed = 0;
    }
    v = spec.check(engine);
    if (!v) {
      if (!legal) {
        legal = true;
        out.first_legal_round = engine.rounds();
        confirmed = 0;
      }
      ++confirmed;
      if (confirmed >= spec.confirm_rounds) out.recovered = true;
    } else {
      legal = false;
      confirmed = 0;
      // Watchdog: the adversary has been quiet for recovery_budget rounds
      // and the configuration is still illegal — report what we see and
      // stop burning rounds.
      if (engine.rounds() - out.last_fault_round > spec.recovery_budget) {
        out.violation = v;
        break;
      }
    }
  }

  if (out.recovered) {
    out.recovery_rounds = static_cast<std::size_t>(out.first_legal_round -
                                                   out.last_fault_round);
    const std::vector<std::uint64_t> after = spec.outputs(engine);
    const std::size_t common = std::min(baseline.size(), after.size());
    for (std::size_t i = 0; i < common; ++i) {
      if (after[i] != baseline[i]) {
        out.adjusted.push_back(static_cast<graph::Vertex>(i));
      }
    }
    for (std::size_t i = common; i < after.size(); ++i) {
      out.adjusted.push_back(static_cast<graph::Vertex>(i));
    }
  } else if (!out.violation) {
    // opts.max_rounds ran out before the watchdog or the confirm window.
    out.violation = v ? v : Violation{ViolationKind::InvalidState,
                                      engine.rounds(), 0, 0, 0};
  }

  if (opts.channel != nullptr) engine.set_channel(prev_channel);
  if (attach_obs && opts.sink != nullptr) engine.set_sink(prev_sink);
  if (attach_obs && opts.collect_phase_times) {
    engine.set_profile(prev_profile);
    out.phases = profile.folded();
  }
  out.rounds = executed;
  out.converged = out.recovered;
}

}  // namespace

const char* to_string(ViolationKind k) noexcept {
  switch (k) {
    case ViolationKind::None: return "none";
    case ViolationKind::MonochromaticEdge: return "monochromatic_edge";
    case ViolationKind::OutOfPalette: return "out_of_palette";
    case ViolationKind::InvalidState: return "invalid_state";
    case ViolationKind::NeverSettled: return "never_settled";
  }
  return "?";
}

StabilizationOutcome run_stabilization(Engine& engine, const RunOptions& opts,
                                       const StabilizationSpec& spec) {
  const std::uint64_t t0 = obs::monotonic_ns();
  StabilizationOutcome out;
  const runtime::Metrics before = engine.metrics();
  const std::size_t settle_budget =
      spec.settle_budget != 0 ? spec.settle_budget : spec.recovery_budget;

  // --- Phase 0: fault-free fixed point ------------------------------------
  std::size_t executed = 0;
  Violation v = spec.check(engine);
  while (v && executed < settle_budget && executed < opts.max_rounds) {
    engine.step();
    ++executed;
    v = spec.check(engine);
  }
  if (v) {
    out.violation = v;
    out.violation.kind = ViolationKind::NeverSettled;
    out.violation.round = engine.rounds();
    out.rounds = executed;
    out.wall_ns = obs::monotonic_ns() - t0;
    return out;
  }
  const std::vector<std::uint64_t> baseline = spec.outputs(engine);

  // --- Phase 1: fault schedule + recovery, under the watchdog -------------
  repair_until_legal(engine, opts, spec, baseline, /*initially_legal=*/true,
                     /*attach_obs=*/false, executed, out);

  const runtime::Metrics after_m = engine.metrics();
  out.metrics.rounds = after_m.rounds - before.rounds;
  out.metrics.messages = after_m.messages - before.messages;
  out.metrics.total_bits = after_m.total_bits - before.total_bits;
  out.metrics.max_edge_bits = after_m.max_edge_bits;
  out.wall_ns = obs::monotonic_ns() - t0;
  return out;
}

StabilizationOutcome resettle(Engine& engine, const RunOptions& opts,
                              const StabilizationSpec& spec,
                              const std::vector<std::uint64_t>& baseline) {
  const std::uint64_t t0 = obs::monotonic_ns();
  StabilizationOutcome out;
  const runtime::Metrics before = engine.metrics();
  const bool legal_now = !spec.check(engine);
  repair_until_legal(engine, opts, spec, baseline, legal_now,
                     /*attach_obs=*/true, /*executed=*/0, out);
  const runtime::Metrics after_m = engine.metrics();
  out.metrics.rounds = after_m.rounds - before.rounds;
  out.metrics.messages = after_m.messages - before.messages;
  out.metrics.total_bits = after_m.total_bits - before.total_bits;
  out.metrics.max_edge_bits = after_m.max_edge_bits;
  out.wall_ns = obs::monotonic_ns() - t0;
  return out;
}

CheckFn coloring_check(const selfstab::SsConfig& cfg) {
  return [&cfg](Engine& engine) -> Violation {
    const graph::GraphView g = engine.graph();
    for (graph::Vertex u = 0; u < g.n(); ++u) {
      const auto ram = engine.ram(u);
      const std::uint64_t cu = ram.empty() ? 0 : cfg.truncate(ram[0]);
      if (!cfg.is_final(cu)) {
        return {ViolationKind::OutOfPalette, engine.rounds(), u, u, cu};
      }
      for (const graph::Vertex w : g.neighbors(u)) {
        if (w <= u) continue;
        const auto wram = engine.ram(w);
        const std::uint64_t cw = wram.empty() ? 0 : cfg.truncate(wram[0]);
        if (cu == cw) {
          return {ViolationKind::MonochromaticEdge, engine.rounds(), u, w, cu};
        }
      }
    }
    return {};
  };
}

OutputFn coloring_outputs() {
  return [](Engine& engine) {
    std::vector<std::uint64_t> out(engine.graph().n(), 0);
    for (graph::Vertex v = 0; v < engine.graph().n(); ++v) {
      const auto ram = engine.ram(v);
      if (!ram.empty()) out[v] = ram[0];
    }
    return out;
  };
}

CheckFn mis_check(const selfstab::SsConfig& cfg) {
  return [&cfg](Engine& engine) -> Violation {
    const Violation color_v = coloring_check(cfg)(engine);
    if (color_v) return color_v;
    const graph::GraphView g = engine.graph();
    for (graph::Vertex v = 0; v < g.n(); ++v) {
      const auto ram = engine.ram(v);
      if (ram.size() < 2) {
        return {ViolationKind::InvalidState, engine.rounds(), v, v, 0};
      }
      const auto status = selfstab::packed_status(ram[1] & 3);
      bool mis_nbr = false;
      for (const graph::Vertex w : g.neighbors(v)) {
        const auto wram = engine.ram(w);
        if (wram.size() >= 2 &&
            selfstab::packed_status(wram[1] & 3) == selfstab::kMis) {
          mis_nbr = true;
          break;
        }
      }
      const bool ok = (status == selfstab::kMis && !mis_nbr) ||
                      (status == selfstab::kNotMis && mis_nbr);
      if (!ok) {
        return {ViolationKind::InvalidState, engine.rounds(), v, v,
                static_cast<std::uint64_t>(status)};
      }
    }
    return {};
  };
}

OutputFn mis_outputs() {
  return [](Engine& engine) {
    std::vector<std::uint64_t> out(engine.graph().n(), 0);
    for (graph::Vertex v = 0; v < engine.graph().n(); ++v) {
      const auto ram = engine.ram(v);
      if (ram.size() >= 2) out[v] = selfstab::pack_cs(ram[0], ram[1]);
    }
    return out;
  };
}

CheckFn line_check(const selfstab::SsLineConfig& cfg) {
  return [&cfg](Engine& engine) -> Violation {
    const graph::GraphView g = engine.graph();
    if (cfg.task() == selfstab::LineTask::EdgeColoring) {
      const auto colors = selfstab::current_edge_colors(engine);
      for (const auto c : colors) {
        if (!cfg.coloring().is_final(c)) {
          return {ViolationKind::OutOfPalette, engine.rounds(), 0, 0, c};
        }
      }
      if (!graph::is_proper_edge_coloring(g, colors)) {
        return {ViolationKind::MonochromaticEdge, engine.rounds(), 0, 0, 0};
      }
      return {};
    }
    // Maximal matching: no vertex matched twice, no edge with both endpoints
    // free.
    const auto matching = selfstab::current_matching(engine);
    std::vector<std::uint8_t> matched(g.n(), 0);
    for (const auto& [u, w] : matching) {
      if (matched[u] != 0 || matched[w] != 0) {
        return {ViolationKind::InvalidState, engine.rounds(), u, w, 1};
      }
      matched[u] = 1;
      matched[w] = 1;
    }
    Violation out{};
    g.for_each_edge([&](graph::Vertex u, graph::Vertex w) {
      if (!out && matched[u] == 0 && matched[w] == 0) {
        out = {ViolationKind::InvalidState, engine.rounds(), u, w, 0};
      }
    });
    return out;
  };
}

OutputFn line_outputs() {
  return [](Engine& engine) {
    std::vector<std::uint64_t> out(engine.graph().n(), 0);
    for (graph::Vertex v = 0; v < engine.graph().n(); ++v) {
      std::uint64_t h = 0;
      for (const std::uint64_t w : engine.ram(v)) h = h * 1099511628211ULL + w;
      out[v] = h;
    }
    return out;
  };
}

}  // namespace agc::faultlab
