#include "agc/faultlab/shrink.hpp"

#include <algorithm>

namespace agc::faultlab {

namespace {

/// The events of `plan` minus the chunk [begin, end).  Preserved unknown
/// fields (FaultPlan::extras) travel with their events, so a shrunk plan
/// emitted by this build keeps whatever annotations the recording build
/// attached.
[[nodiscard]] FaultPlan without(const FaultPlan& plan, std::size_t begin,
                                std::size_t end) {
  FaultPlan out;
  const bool with_extras = !plan.extras.empty();
  out.events.reserve(plan.events.size() - (end - begin));
  if (with_extras) out.extras.reserve(plan.events.size() - (end - begin));
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    if (i < begin || i >= end) {
      out.events.push_back(plan.events[i]);
      if (with_extras) {
        out.extras.push_back(i < plan.extras.size() ? plan.extras[i]
                                                    : std::string());
      }
    }
  }
  return out;
}

}  // namespace

FaultPlan shrink_plan(const FaultPlan& plan,
                      const std::function<bool(const FaultPlan&)>& reproduces,
                      ShrinkStats* stats, std::size_t max_probes) {
  ShrinkStats local;
  ShrinkStats& st = stats != nullptr ? *stats : local;
  st.initial_events = plan.events.size();
  st.final_events = plan.events.size();
  st.probes = 0;

  auto probe = [&](const FaultPlan& candidate) {
    ++st.probes;
    return reproduces(candidate);
  };
  auto budget_left = [&] { return max_probes == 0 || st.probes < max_probes; };

  FaultPlan current = plan;
  if (!probe(current)) return current;  // not reproducible to begin with

  // Classic ddmin: partition into `chunks` pieces; try deleting each piece;
  // on success restart at the coarsest granularity, otherwise refine.
  std::size_t chunks = 2;
  while (current.events.size() >= 2 && budget_left()) {
    const std::size_t n = current.events.size();
    chunks = std::min(chunks, n);
    bool reduced = false;
    for (std::size_t i = 0; i < chunks && budget_left(); ++i) {
      const std::size_t begin = i * n / chunks;
      const std::size_t end = (i + 1) * n / chunks;
      if (begin == end) continue;
      FaultPlan candidate = without(current, begin, end);
      if (probe(candidate)) {
        current = std::move(candidate);
        chunks = std::max<std::size_t>(2, chunks - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (chunks >= n) break;  // 1-minimal
      chunks = std::min(n, 2 * chunks);
    }
  }
  st.final_events = current.events.size();
  return current;
}

}  // namespace agc::faultlab
