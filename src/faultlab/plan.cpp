#include "agc/faultlab/plan.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace agc::faultlab {

namespace {

using runtime::FaultEvent;
using runtime::FaultKind;

[[nodiscard]] bool kind_from_string(const std::string& s, FaultKind& out) {
  for (int k = 0; k <= static_cast<int>(FaultKind::Lie); ++k) {
    const auto kind = static_cast<FaultKind>(k);
    if (s == runtime::to_string(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

/// Extract the value of `"key":` from a JSONL line.  The plan format is
/// machine-written with a fixed key set, so a targeted scan beats dragging a
/// JSON library into the core (same stance as tools/agc_trace.cpp).
[[nodiscard]] bool find_field(const std::string& line, const char* key,
                              std::string& out) {
  const std::string needle = std::string("\"") + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  std::size_t i = pos + needle.size();
  while (i < line.size() && line[i] == ' ') ++i;
  if (i >= line.size()) return false;
  if (line[i] == '"') {
    const auto end = line.find('"', i + 1);
    if (end == std::string::npos) return false;
    out = line.substr(i + 1, end - i - 1);
  } else {
    std::size_t end = i;
    while (end < line.size() && (std::isdigit(static_cast<unsigned char>(line[end])) ||
                                 line[end] == '-')) {
      ++end;
    }
    if (end == i) return false;
    out = line.substr(i, end - i);
  }
  return true;
}

[[nodiscard]] std::uint64_t to_u64(const std::string& s) {
  return std::stoull(s);
}

[[nodiscard]] bool is_known_key(const std::string& key) {
  return key == "round" || key == "kind" || key == "u" || key == "v" ||
         key == "word" || key == "value";
}

/// Collect every top-level `"key":value` pair the known schema does not
/// cover, as ready-to-emit raw text.  The scanner understands quoted strings
/// and nested braces/brackets just enough to skip over them; anything it
/// cannot make sense of is simply not preserved (never a parse failure —
/// forward compatibility must not make old plans brittle).
[[nodiscard]] std::string scan_extras(const std::string& line) {
  std::string extras;
  std::size_t i = line.find('{');
  if (i == std::string::npos) return extras;
  ++i;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == ',')) ++i;
    if (i >= line.size() || line[i] == '}') break;
    if (line[i] != '"') break;
    const std::size_t key_end = line.find('"', i + 1);
    if (key_end == std::string::npos) break;
    const std::string key = line.substr(i + 1, key_end - i - 1);
    i = key_end + 1;
    while (i < line.size() && line[i] == ' ') ++i;
    if (i >= line.size() || line[i] != ':') break;
    ++i;
    while (i < line.size() && line[i] == ' ') ++i;
    const std::size_t value_begin = i;
    int depth = 0;
    bool in_string = false;
    while (i < line.size()) {
      const char c = line[i];
      if (in_string) {
        if (c == '\\') ++i;
        else if (c == '"') in_string = false;
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        if (depth == 0) break;
        --depth;
      } else if (c == ',' && depth == 0) {
        break;
      }
      ++i;
    }
    if (!is_known_key(key)) {
      extras += ",\"" + key + "\":" + line.substr(value_begin, i - value_begin);
    }
  }
  return extras;
}

}  // namespace

void FaultPlan::canonicalize() {
  const auto before = [](const FaultEvent& a, const FaultEvent& b) {
    if (a.round != b.round) return a.round < b.round;
    const bool ca = runtime::is_channel_fault(a.kind);
    const bool cb = runtime::is_channel_fault(b.kind);
    if (ca != cb) return cb;  // RAM/topology first
    if (!ca) return false;    // keep injection order
    if (a.u != b.u) return a.u < b.u;
    if (a.v != b.v) return a.v < b.v;
    return a.word < b.word;
  };
  if (extras.empty()) {
    std::stable_sort(events.begin(), events.end(), before);
    return;
  }
  // Sort a permutation so each preserved-extras string stays attached to its
  // event through reordering.
  std::vector<std::size_t> order(events.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return before(events[a], events[b]);
                   });
  std::vector<FaultEvent> sorted_events(events.size());
  std::vector<std::string> sorted_extras(events.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    sorted_events[i] = events[order[i]];
    sorted_extras[i] = std::move(extras[order[i]]);
  }
  events = std::move(sorted_events);
  extras = std::move(sorted_extras);
}

std::string FaultPlan::to_jsonl() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& ev = events[i];
    out << "{\"round\":" << ev.round << ",\"kind\":\""
        << runtime::to_string(ev.kind) << "\",\"u\":" << ev.u
        << ",\"v\":" << ev.v << ",\"word\":" << ev.word
        << ",\"value\":" << ev.value;
    if (i < extras.size()) out << extras[i];
    out << "}\n";
  }
  return out.str();
}

void FaultPlan::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("FaultPlan::save: cannot open " + path);
  out << to_jsonl();
  if (!out) throw std::runtime_error("FaultPlan::save: write failed: " + path);
}

FaultPlan FaultPlan::parse(std::istream& in) {
  FaultPlan plan;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line.find_first_not_of(" \t\r") == std::string::npos) {
      continue;
    }
    FaultEvent ev;
    std::string field;
    if (!find_field(line, "kind", field) || !kind_from_string(field, ev.kind)) {
      throw std::runtime_error("FaultPlan: bad kind on line " +
                               std::to_string(lineno));
    }
    if (!find_field(line, "round", field)) {
      throw std::runtime_error("FaultPlan: missing round on line " +
                               std::to_string(lineno));
    }
    ev.round = to_u64(field);
    if (find_field(line, "u", field)) ev.u = static_cast<std::uint32_t>(to_u64(field));
    if (find_field(line, "v", field)) ev.v = static_cast<std::uint32_t>(to_u64(field));
    if (find_field(line, "word", field)) {
      ev.word = static_cast<std::uint32_t>(to_u64(field));
    }
    if (find_field(line, "value", field)) ev.value = to_u64(field);
    std::string extra = scan_extras(line);
    plan.events.push_back(ev);
    if (!extra.empty() || !plan.extras.empty()) {
      plan.extras.resize(plan.events.size() - 1);  // pad earlier extras-free lines
      plan.extras.push_back(std::move(extra));
    }
  }
  if (!plan.extras.empty()) plan.extras.resize(plan.events.size());
  return plan;
}

FaultPlan FaultPlan::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("FaultPlan::load: cannot open " + path);
  return parse(in);
}

PlanAdversary::PlanAdversary(FaultPlan plan) {
  plan.canonicalize();
  for (const FaultEvent& ev : plan.events) {
    last_round_ = std::max(last_round_, ev.round);
    if (!runtime::is_channel_fault(ev.kind)) events_.push_back(ev);
  }
}

std::size_t PlanAdversary::inject(runtime::Engine& engine,
                                  std::size_t /*round*/) {
  // Match on the engine's own completed-round counter, not the runner's loop
  // index: recorded rounds anchor to engine.rounds() at injection time, and
  // engines can be stepped across several runner calls.
  const std::uint64_t now = engine.rounds();
  std::size_t applied = 0;
  while (cursor_ < events_.size() && events_[cursor_].round <= now) {
    const FaultEvent& ev = events_[cursor_];
    if (ev.round == now) {
      switch (ev.kind) {
        case FaultKind::Ram:
          engine.corrupt_ram(ev.v, ev.word, ev.value);
          break;
        case FaultKind::AddEdge:
          engine.add_edge(ev.u, ev.v);
          break;
        case FaultKind::RemoveEdge:
          engine.remove_edge(ev.u, ev.v);
          break;
        case FaultKind::ResetVertex:
          engine.reset_vertex(ev.v);
          break;
        case FaultKind::AddVertex:
          engine.add_vertex();
          break;
        default:
          break;
      }
      ++applied;
    }
    // Events for rounds the runner already passed are unreachable: skip them
    // so a plan recorded against a different round cadence cannot wedge the
    // cursor.
    ++cursor_;
  }
  applied_ += applied;
  return applied;
}

}  // namespace agc::faultlab
