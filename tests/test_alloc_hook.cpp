// Zero-steady-state-allocation guarantee of the arena-backed message path
// (the tentpole property of the CSR mailbox refactor): once the engine,
// arena, spill lanes, scratch and ledger are warm, a round of
// send -> validate -> deliver -> receive performs NO heap allocation for the
// bounded models, sequential or sharded.
//
// The hook is a global operator new/delete override counting every
// allocation in the process, so this test lives in its own binary: the
// count is only examined around engine.step() calls, where the engine (and
// a non-allocating program) are the only actors.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "agc/exec/executor.hpp"
#include "agc/faultlab/channel.hpp"
#include "agc/graph/generators.hpp"
#include "agc/obs/event_sink.hpp"
#include "agc/obs/phase_timer.hpp"
#include "agc/runtime/engine.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace agc;
using namespace agc::runtime;

/// Broadcasts one bit (legal in every model, including BIT) and folds the
/// received multiset — without allocating itself.
class ParityProgram final : public VertexProgram {
 public:
  void on_send(const VertexEnv&, OutboxRef& out) override {
    out.broadcast({acc_ & 1, 1});
  }
  void on_receive(const VertexEnv&, const InboxRef& in) override {
    std::uint64_t s = 0;
    for (const std::uint64_t v : in.multiset()) s += v;
    acc_ += s + 1;
  }

 private:
  std::uint64_t acc_ = 1;
};

void expect_steady_state_alloc_free(Model model, std::size_t threads) {
  const auto g = graph::random_regular(256, 8, 5);
  Engine engine(g, Transport(model));
  engine.set_executor(exec::make_executor(threads));
  engine.install(
      [](const VertexEnv&) { return std::make_unique<ParityProgram>(); });
  for (int i = 0; i < 3; ++i) engine.step();  // warm arena, scratch, ledger

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 8; ++i) engine.step();
  const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << to_string(model) << " threads=" << threads << ": "
      << (after - before) << " allocations in 8 steady-state rounds";
}

TEST(AllocHook, HookIsLive) {
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  // Direct operator calls: a `delete new int` pair may legally be elided.
  ::operator delete(::operator new(16));
  EXPECT_GT(g_allocs.load(std::memory_order_relaxed), before);
}

TEST(AllocHook, RoundLoopIsAllocationFreeForBoundedModels) {
  for (const Model model : {Model::SET_LOCAL, Model::CONGEST, Model::BIT}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
      expect_steady_state_alloc_free(model, threads);
    }
  }
}

TEST(AllocHook, ObservabilityOnStaysAllocationFree) {
  // Phase timers AND a ring sink attached: the profile's shard vectors grow
  // during warm-up, the ring is preallocated, and Event records are
  // trivially-copyable — so the steady-state round loop stays at zero
  // allocations even with full observability enabled.
  const auto g = graph::random_regular(256, 8, 5);
  Engine engine(g, Transport(Model::SET_LOCAL));
  engine.set_executor(exec::make_executor(2));
  obs::PhaseProfile profile;
  obs::RingSink sink(64);
  engine.set_profile(&profile);
  engine.set_sink(&sink);
  engine.install(
      [](const VertexEnv&) { return std::make_unique<ParityProgram>(); });
  for (int i = 0; i < 3; ++i) engine.step();

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 8; ++i) engine.step();
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed) - before, 0u);

  // And the instrumentation actually observed the rounds.
  EXPECT_GT(profile.folded().total_ns(), 0u);
  EXPECT_EQ(sink.seen(), 11u);  // one RoundEnd per step
}

TEST(AllocHook, ChannelAdversaryStaysAllocationFree) {
  // The wire attacker mutates ports in place; drops and corruptions touch
  // existing words, duplicates land in the pre-reserved spill lanes
  // (RoundContext doubles the lane reservation when a channel hook is
  // attached), and the delay stash is bound once per topology.  With all four
  // fault kinds firing at high rates AND full observability attached, the
  // steady-state round loop still performs zero allocations — as long as no
  // plan recorder is installed, recording being the only allocating path.
  const auto g = graph::random_regular(256, 8, 5);
  Engine engine(g, Transport(Model::SET_LOCAL));
  engine.set_executor(exec::make_executor(2));
  obs::PhaseProfile profile;
  obs::RingSink sink(64);
  engine.set_profile(&profile);
  engine.set_sink(&sink);
  engine.install(
      [](const VertexEnv&) { return std::make_unique<ParityProgram>(); });
  faultlab::ChannelFaultConfig cfg;
  cfg.seed = 3;
  cfg.drop_per_million = 100'000;
  cfg.corrupt_per_million = 100'000;
  cfg.duplicate_per_million = 100'000;
  cfg.delay_per_million = 100'000;
  faultlab::ChannelAdversary chan(cfg);
  engine.set_channel(&chan);
  for (int i = 0; i < 4; ++i) engine.step();  // warm arena, lanes, stash

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 8; ++i) engine.step();
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed) - before, 0u);
  EXPECT_GT(chan.events(), 0u);  // the adversary really was firing
}

TEST(AllocHook, LocalModelSpillPathReachesSteadyState) {
  // LOCAL with multi-word messages: lanes grow for a few rounds, then the
  // geometric capacities saturate and the loop is allocation-free too.
  class MultiWordProgram final : public VertexProgram {
   public:
    void on_send(const VertexEnv& env, OutboxRef& out) override {
      for (std::size_t p = 0; p < env.degree; ++p) {
        for (int k = 0; k < 3; ++k) out.send(p, {acc_ & 0xff, 8});
      }
    }
    void on_receive(const VertexEnv&, const InboxRef& in) override {
      for (std::size_t p = 0; p < in.ports(); ++p) {
        for (const Word w : in.from_port(p)) acc_ += w.value;
      }
      ++acc_;
    }

   private:
    std::uint64_t acc_ = 1;
  };

  const auto g = graph::random_regular(128, 6, 9);
  Engine engine(g, Transport(Model::LOCAL));
  engine.install(
      [](const VertexEnv&) { return std::make_unique<MultiWordProgram>(); });
  for (int i = 0; i < 3; ++i) engine.step();

  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 8; ++i) engine.step();
  EXPECT_EQ(g_allocs.load(std::memory_order_relaxed) - before, 0u);
}

}  // namespace
