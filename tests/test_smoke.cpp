// Quick end-to-end smoke checks of the core pipelines; the real suites live
// in the per-module test files.
#include <gtest/gtest.h>

#include "agc/coloring/pipeline.hpp"
#include "agc/graph/generators.hpp"

namespace {

using namespace agc;

TEST(Smoke, DeltaPlusOneOnRandomRegular) {
  const auto g = graph::random_regular(200, 8, 42);
  const auto rep = coloring::color_delta_plus_one(g);
  EXPECT_TRUE(rep.converged);
  EXPECT_TRUE(rep.proper);
  EXPECT_TRUE(rep.proper_each_round);
  EXPECT_LE(graph::max_color(rep.colors), g.max_degree());
}

TEST(Smoke, ExactDeltaPlusOneOnGnp) {
  const auto g = graph::random_gnp(300, 0.05, 7);
  const auto rep = coloring::color_delta_plus_one_exact(g);
  EXPECT_TRUE(rep.converged);
  EXPECT_TRUE(rep.proper);
  EXPECT_LE(graph::max_color(rep.colors), g.max_degree());
}

TEST(Smoke, KwBaseline) {
  const auto g = graph::random_regular(200, 8, 1);
  const auto rep = coloring::color_kuhn_wattenhofer(g);
  EXPECT_TRUE(rep.converged);
  EXPECT_TRUE(rep.proper);
  EXPECT_LE(graph::max_color(rep.colors), g.max_degree());
}

TEST(Smoke, AgBeatsKwInRounds) {
  const auto g = graph::random_regular(400, 32, 3);
  const auto ours = coloring::color_delta_plus_one(g);
  const auto kw = coloring::color_kuhn_wattenhofer(g);
  ASSERT_TRUE(ours.converged && kw.converged);
  // The headline: O(Delta) vs O(Delta log Delta).
  EXPECT_LT(ours.rounds, kw.rounds);
}

}  // namespace
