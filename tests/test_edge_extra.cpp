// Edge-coloring extras: schedule arithmetic, model equivalence, shrinking
// Cole-Vishkin widths, and graph-family sweeps of the distributed pipeline.
#include <gtest/gtest.h>

#include <map>

#include "agc/edge/defective_edge.hpp"
#include "agc/edge/edge_coloring.hpp"
#include "agc/graph/generators.hpp"

namespace {

using namespace agc;

TEST(EdgeSchedule, WidthsShrinkThroughCv) {
  const edge::EdgeSchedule sched(1 << 20, 16, true);
  std::uint32_t last_cv_width = 0;
  bool in_cv = false;
  for (std::size_t lr = 0; lr < sched.logical_rounds(); ++lr) {
    const auto& s = sched.slot(lr);
    if (s.phase == edge::EdgeSchedule::Phase::Cv) {
      if (in_cv) {
        EXPECT_LE(s.width, last_cv_width);
      }
      last_cv_width = s.width;
      in_cv = true;
    }
    if (s.phase == edge::EdgeSchedule::Phase::Ag) {
      EXPECT_EQ(s.width, 1u);
    }
    if (s.phase == edge::EdgeSchedule::Phase::Exact) {
      EXPECT_EQ(s.width, 2u);
    }
  }
}

TEST(EdgeSchedule, TotalBitsIsDeltaPlusLogN) {
  // Fixing Delta, total bits grow ~ c*log n; fixing n, ~ c*Delta.
  const auto b1 = edge::EdgeSchedule(1ULL << 10, 8, true).total_bits();
  const auto b2 = edge::EdgeSchedule(1ULL << 40, 8, true).total_bits();
  EXPECT_GT(b2, b1);
  EXPECT_LT(b2 - b1, 400u);  // only the log n share grows

  const auto d1 = edge::EdgeSchedule(1ULL << 10, 8, true).total_bits();
  const auto d2 = edge::EdgeSchedule(1ULL << 10, 64, true).total_bits();
  EXPECT_GT(d2, 4 * d1 / 2);  // the Delta share dominates
}

TEST(EdgeColoringModels, CongestAndBitRoundAgreeOnValidity) {
  const auto g = graph::random_regular(80, 6, 55);
  const auto congest = edge::color_edges_distributed(g);
  edge::EdgeColoringOptions bopts;
  bopts.bit_round = true;
  const auto bit = edge::color_edges_distributed(g, bopts);
  EXPECT_TRUE(congest.proper && bit.proper);
  EXPECT_LT(graph::max_color(congest.colors), 2 * g.max_degree() - 1);
  EXPECT_LT(graph::max_color(bit.colors), 2 * g.max_degree() - 1);
  // Bit-Round pays more rounds but never more than the serialized schedule.
  EXPECT_GT(bit.rounds, congest.rounds);
}

class EdgeFamilies : public ::testing::TestWithParam<int> {};

TEST_P(EdgeFamilies, DistributedPipelineSweep) {
  graph::Graph g;
  switch (GetParam()) {
    case 0: g = graph::grid(6, 9); break;
    case 1: g = graph::complete(10); break;
    case 2: g = graph::complete_bipartite(6, 8); break;
    case 3: g = graph::binary_tree(63); break;
    case 4: g = graph::random_geometric(90, 0.16, 5); break;
    case 5: g = graph::barabasi_albert(90, 2, 6); break;
    default: g = graph::cycle(31); break;
  }
  const auto res = edge::color_edges_distributed(g);
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(res.proper);
  const std::size_t delta = std::max<std::size_t>(g.max_degree(), 1);
  EXPECT_LE(graph::max_color(res.colors),
            std::max<std::uint64_t>(2 * delta - 1, 1) - 1);
}

INSTANTIATE_TEST_SUITE_P(Families, EdgeFamilies, ::testing::Range(0, 7));

TEST(EdgeColoringMetrics, BitsPerEdgeTracksDeltaPlusLogN) {
  const auto small = edge::color_edges_distributed(graph::random_regular(60, 4, 1));
  const auto big = edge::color_edges_distributed(graph::random_regular(60, 12, 1));
  EXPECT_GT(big.avg_bits_per_edge, small.avg_bits_per_edge);
  // Even at Delta=12 the whole protocol costs only a few hundred bits/edge.
  EXPECT_LT(big.avg_bits_per_edge, 1500.0);
}

TEST(DefectiveEdgeExtra, EveryClassIsAtMostTwoPerVertex) {
  const auto g = graph::barabasi_albert(120, 4, 17);
  const auto pairs = edge::kuhn_defective_pairs(g);
  const auto edges = graph::edge_list(g);
  // Count class multiplicity per vertex.
  std::map<std::pair<graph::Vertex, std::uint64_t>, int> count;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const std::uint64_t cls = pairs[e].i * 100000ULL + pairs[e].j;
    ++count[{edges[e].first, cls}];
    ++count[{edges[e].second, cls}];
  }
  for (const auto& [k, c] : count) EXPECT_LE(c, 2);
}

TEST(DefectiveEdgeExtra, HostAndDistributedPalettesAgreeInShape) {
  const auto g = graph::random_regular(70, 6, 77);
  const auto host = edge::defect_free_edge_coloring(g);
  EXPECT_TRUE(graph::is_proper_edge_coloring(g, host));
  const auto delta = g.max_degree();
  EXPECT_LT(graph::max_color(host), 3 * delta * delta);
}

}  // namespace
