// Graph substrate: structure, generators, line graph, validity oracles,
// orientation/degeneracy.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "agc/graph/checks.hpp"
#include "agc/graph/generators.hpp"
#include "agc/graph/line_graph.hpp"
#include "agc/graph/orientation.hpp"
#include "agc/graph/spec.hpp"

namespace {

using namespace agc::graph;

TEST(GraphCore, EdgeInsertRemove) {
  Graph g(5);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_TRUE(g.add_edge(1, 2));
  EXPECT_FALSE(g.add_edge(0, 1));  // duplicate
  EXPECT_FALSE(g.add_edge(2, 1));  // duplicate, reversed
  EXPECT_FALSE(g.add_edge(3, 3));  // self-loop
  EXPECT_EQ(g.m(), 2u);
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.remove_edge(0, 1));
  EXPECT_EQ(g.m(), 1u);
  EXPECT_EQ(g.degree(1), 1u);
}

TEST(GraphCore, NeighborsSorted) {
  Graph g(6);
  g.add_edge(3, 5);
  g.add_edge(3, 0);
  g.add_edge(3, 4);
  g.add_edge(3, 1);
  const auto nbrs = g.neighbors(3);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  EXPECT_EQ(nbrs.size(), 4u);
}

TEST(GraphCore, IsolateAndAddVertex) {
  Graph g = star(6);
  EXPECT_EQ(g.degree(0), 5u);
  g.isolate(0);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_EQ(g.m(), 0u);
  const Vertex v = g.add_vertex();
  EXPECT_EQ(v, 6u);
  EXPECT_EQ(g.n(), 7u);
}

TEST(GraphCore, EdgesSortedCanonical) {
  const auto g = random_gnp(50, 0.2, 3);
  const auto edges = edge_list(g);
  EXPECT_EQ(edges.size(), g.m());
  EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end()));
  for (const auto& [u, v] : edges) EXPECT_LT(u, v);
}

TEST(Generators, StructuredShapes) {
  EXPECT_EQ(path(10).m(), 9u);
  EXPECT_EQ(cycle(10).m(), 10u);
  EXPECT_EQ(cycle(10).max_degree(), 2u);
  EXPECT_EQ(star(10).max_degree(), 9u);
  EXPECT_EQ(complete(8).m(), 28u);
  EXPECT_EQ(complete_bipartite(3, 4).m(), 12u);
  EXPECT_EQ(grid(4, 5).m(), 4 * 4 + 3 * 5u);
  EXPECT_EQ(binary_tree(15).max_degree(), 3u);
}

TEST(Generators, Deterministic) {
  const auto a = random_gnp(100, 0.1, 77);
  const auto b = random_gnp(100, 0.1, 77);
  EXPECT_EQ(edge_list(a), edge_list(b));
  const auto c = random_gnp(100, 0.1, 78);
  EXPECT_NE(edge_list(a), edge_list(c));
}

TEST(Generators, RegularDegrees) {
  for (std::size_t d : {2u, 3u, 8u, 15u}) {
    const std::size_t n = (d % 2 == 1) ? 100 : 101;  // n*d must be even
    const auto g = random_regular(n % 2 == 0 || d % 2 == 0 ? n : n + 1, d, d);
    std::size_t exact = 0;
    for (Vertex v = 0; v < g.n(); ++v) {
      EXPECT_LE(g.degree(v), d);
      exact += g.degree(v) == d;
    }
    // The pairing + repair model leaves at most a few vertices short.
    EXPECT_GE(exact, g.n() - 4);
  }
}

TEST(Generators, BoundedDegreeRespectsCap) {
  const auto g = random_bounded_degree(200, 7, 600, 5);
  EXPECT_LE(g.max_degree(), 7u);
  EXPECT_GT(g.m(), 400u);
}

TEST(Generators, GeometricAndBarabasi) {
  const auto geo = random_geometric(150, 0.15, 9);
  EXPECT_GT(geo.m(), 0u);
  const auto ba = barabasi_albert(200, 3, 4);
  EXPECT_GE(ba.m(), 3 * (200 - 4) * 9 / 10u);  // ~3 per arriving vertex
  // Preferential attachment: the max degree dwarfs the attach parameter.
  EXPECT_GT(ba.max_degree(), 9u);
}

TEST(Generators, RngUniformity) {
  Rng rng(1);
  std::size_t buckets[8] = {};
  for (int i = 0; i < 8000; ++i) ++buckets[rng.below(8)];
  for (auto b : buckets) {
    EXPECT_GT(b, 800u);
    EXPECT_LT(b, 1200u);
  }
}

TEST(LineGraphTest, TriangleIsTriangle) {
  const auto lg = line_graph(complete(3));
  EXPECT_EQ(lg.graph.n(), 3u);
  EXPECT_EQ(lg.graph.m(), 3u);
}

TEST(LineGraphTest, DegreesAndMapping) {
  const auto g = random_gnp(40, 0.15, 6);
  const auto lg = line_graph(g);
  EXPECT_EQ(lg.graph.n(), g.m());
  const auto edges = edge_list(g);
  for (Vertex i = 0; i < lg.graph.n(); ++i) {
    const auto [u, v] = lg.edge_of[i];
    EXPECT_EQ(lg.graph.degree(i), g.degree(u) + g.degree(v) - 2);
    EXPECT_EQ(lg.vertex_of({u, v}), i);
  }
  // Max degree of L(G) <= 2*Delta - 2.
  EXPECT_LE(lg.graph.max_degree(), 2 * g.max_degree() - 2);
}

TEST(Checks, ProperColoring) {
  const auto g = cycle(6);
  std::vector<Color> ok = {0, 1, 0, 1, 0, 1};
  std::vector<Color> bad = {0, 1, 0, 1, 0, 0};
  EXPECT_TRUE(is_proper_coloring(g, ok));
  EXPECT_FALSE(is_proper_coloring(g, bad));
  EXPECT_EQ(palette_size(ok), 2u);
  EXPECT_EQ(max_color(bad), 1u);
}

TEST(Checks, DefectVector) {
  const auto g = complete(4);
  std::vector<Color> colors = {0, 0, 1, 1};
  const auto d = defect_vector(g, colors);
  EXPECT_EQ(d, (std::vector<std::size_t>{1, 1, 1, 1}));
  EXPECT_TRUE(is_defective_coloring(g, colors, 1));
  EXPECT_FALSE(is_defective_coloring(g, colors, 0));
}

TEST(Checks, DegeneracyKnownValues) {
  EXPECT_EQ(degeneracy(path(10)), 1u);
  EXPECT_EQ(degeneracy(cycle(10)), 2u);
  EXPECT_EQ(degeneracy(complete(6)), 5u);
  EXPECT_EQ(degeneracy(binary_tree(31)), 1u);
  EXPECT_EQ(degeneracy(grid(5, 5)), 2u);
  EXPECT_EQ(degeneracy(complete_bipartite(3, 7)), 3u);
}

TEST(Checks, MisOracle) {
  const auto g = path(5);
  EXPECT_TRUE(is_mis(g, {true, false, true, false, true}));
  EXPECT_TRUE(is_mis(g, {false, true, false, true, false}));
  EXPECT_FALSE(is_mis(g, {true, true, false, false, true}));   // not independent
  EXPECT_FALSE(is_mis(g, {true, false, false, false, true}));  // not maximal
}

TEST(Checks, MatchingOracle) {
  const auto g = path(6);
  EXPECT_TRUE(is_maximal_matching(g, std::vector<Edge>{{0, 1}, {2, 3}, {4, 5}}));
  EXPECT_FALSE(is_maximal_matching(g, std::vector<Edge>{{0, 1}}));  // not maximal
  EXPECT_FALSE(is_maximal_matching(
      g, std::vector<Edge>{{0, 1}, {1, 2}}));  // shares endpoint
  EXPECT_TRUE(is_maximal_matching(g, std::vector<Edge>{{1, 2}, {3, 4}}));
}

TEST(Checks, EdgeColoringOracle) {
  const auto g = star(4);
  EXPECT_TRUE(is_proper_edge_coloring(g, std::vector<Color>{0, 1, 2}));
  EXPECT_FALSE(is_proper_edge_coloring(g, std::vector<Color>{0, 1, 1}));
}

TEST(OrientationTest, ByIdAndDegeneracy) {
  const auto g = random_gnp(80, 0.1, 8);
  const auto by_id = orient_by_id(g);
  EXPECT_EQ(by_id.edges.size(), g.m());

  const auto order = smallest_last_order(g);
  const auto o = orient_by_order(g, order);
  // Smallest-last orientation witnesses degeneracy.
  EXPECT_LE(o.max_out_degree(g.n()), degeneracy(g));
}

TEST(OrientationTest, ArbdefectWitnessConsistency) {
  // Every color class with degeneracy <= d admits an orientation with
  // out-degree <= d; cross-check max_class_degeneracy against classes.
  const auto g = random_regular(120, 10, 11);
  std::vector<Color> classes(g.n());
  for (Vertex v = 0; v < g.n(); ++v) classes[v] = v % 4;
  const auto cd = max_class_degeneracy(g, classes);
  EXPECT_TRUE(is_arbdefective_coloring(g, classes, cd));
  if (cd > 0) {
    EXPECT_FALSE(is_arbdefective_coloring(g, classes, (cd + 1) / 2 - 1));
  }
}

// Long-lived consumers (the agcd service) key caches and snapshots on the
// topology version, so churn that re-creates the same edge must never reuse
// a version number.
TEST(GraphCore, TopologyVersionMonotoneUnderChurn) {
  Graph g(4);
  const std::uint64_t v0 = g.topology_version();
  std::uint64_t last = v0;
  // The same edge added and removed repeatedly: every successful mutation
  // bumps, and no version ever repeats even though the topology does.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(g.add_edge(1, 2));
    EXPECT_GT(g.topology_version(), last);
    last = g.topology_version();
    ASSERT_TRUE(g.remove_edge(1, 2));
    EXPECT_GT(g.topology_version(), last);
    last = g.topology_version();
  }
  EXPECT_EQ(last, v0 + 6);
}

TEST(GraphCore, TopologyVersionIgnoresFailedOps) {
  Graph g(4);
  g.add_edge(0, 1);
  const std::uint64_t v = g.topology_version();
  EXPECT_FALSE(g.add_edge(0, 1));     // duplicate
  EXPECT_FALSE(g.add_edge(2, 2));     // self-loop
  EXPECT_FALSE(g.remove_edge(1, 3));  // absent
  EXPECT_EQ(g.topology_version(), v);
  g.isolate(3);  // already isolated: removes nothing
  EXPECT_EQ(g.topology_version(), v);
  g.isolate(0);  // drops {0,1}
  EXPECT_GT(g.topology_version(), v);
  const std::uint64_t w = g.topology_version();
  EXPECT_EQ(g.add_vertex(), 4u);
  EXPECT_GT(g.topology_version(), w);
}

// GraphSpec churn headroom: the estimate grows monotonically with the extra
// vertices/edges a service may grow into, while the spec's identity —
// canonical spelling and content hash — never budges.
TEST(SpecTest, EstimatedBytesChurnHeadroom) {
  const auto spec = GraphSpec::parse("gnp:1000,0.01,7");
  const auto base = spec.estimated_bytes();
  EXPECT_EQ(base, spec.estimated_bytes(0, 0));
  EXPECT_GT(spec.estimated_bytes(100, 0), base);
  EXPECT_GT(spec.estimated_bytes(0, 1000), base);
  EXPECT_GT(spec.estimated_bytes(100, 1000), spec.estimated_bytes(100, 0));
  // Headroom is linear in the declared per-vertex/per-edge constants
  // (mutable adjacency-vector rate: 48/vertex, 16/edge).
  EXPECT_EQ(spec.estimated_bytes(10, 20) - base, 10 * 48 + 20 * 16);

  const auto canon = spec.to_string();
  const auto hash = spec.content_hash();
  (void)spec.estimated_bytes(1 << 20, 1 << 20);
  EXPECT_EQ(spec.to_string(), canon);
  EXPECT_EQ(spec.content_hash(), hash);
}

}  // namespace
