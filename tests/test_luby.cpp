// Seeded Luby-style randomized (Delta+1)-coloring (coloring::luby): the
// determinism contract is the whole point of the suite.  Per-vertex
// randomness is a pure function of (RunOptions::seed, round, vertex id), so
// one seed must replay bit-identically across 1/2/8 threads AND across the
// bsp/async executors, while distinct seeds must drive distinct trajectories.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "agc/coloring/luby.hpp"
#include "agc/coloring/registry.hpp"
#include "agc/exec/async_executor.hpp"
#include "agc/exec/executor.hpp"
#include "agc/graph/checks.hpp"
#include "agc/graph/frozen.hpp"
#include "agc/graph/generators.hpp"

namespace {

using namespace agc;
using coloring::Color;

coloring::PipelineReport run_luby(graph::GraphView g, std::uint64_t seed,
                                  std::shared_ptr<runtime::RoundExecutor> ex = {}) {
  coloring::PipelineOptions opts;
  opts.run().seed = seed;
  opts.run().executor = std::move(ex);
  return coloring::color_luby(g, opts);
}

TEST(Luby, ProperAndWithinPalette) {
  for (std::size_t delta : {3u, 8u, 32u, 96u}) {
    const auto g = graph::random_regular(800, delta, 55 + delta);
    const auto rep = run_luby(g, 42);
    ASSERT_TRUE(rep.converged) << "delta=" << delta;
    EXPECT_TRUE(rep.proper);
    EXPECT_TRUE(graph::is_proper_coloring(g, rep.colors));
    for (const Color c : rep.colors) EXPECT_LE(c, g.max_degree());
    // Luby is NOT locally-iterative: mid-run it holds candidates, not a
    // proper coloring, and the report must say so honestly.
    EXPECT_FALSE(rep.proper_each_round);
    // O(log n) expected: far below any Delta-dependent bound.
    EXPECT_LE(rep.rounds, 40u) << "delta=" << delta;
  }
}

TEST(Luby, SeedReplayAcrossThreadsAndExecutors) {
  const auto g = graph::random_regular(1000, 40, 733);
  const auto base = run_luby(g, 7);
  ASSERT_TRUE(base.converged);
  for (std::size_t threads : {1u, 2u, 8u}) {
    const auto bsp = run_luby(g, 7, exec::make_executor(threads));
    EXPECT_EQ(bsp.colors, base.colors) << "bsp threads=" << threads;
    EXPECT_EQ(bsp.rounds, base.rounds) << "bsp threads=" << threads;
    const auto async = run_luby(g, 7, exec::make_async_executor(threads));
    EXPECT_EQ(async.colors, base.colors) << "async threads=" << threads;
  }
}

TEST(Luby, DistinctSeedsDistinctTrajectories) {
  const auto g = graph::random_regular(600, 24, 88);
  std::set<std::vector<Color>> colorings;
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 99ull, 0xDEADBEEFull}) {
    const auto rep = run_luby(g, seed);
    ASSERT_TRUE(rep.converged) << "seed=" << seed;
    EXPECT_TRUE(graph::is_proper_coloring(g, rep.colors));
    colorings.insert(rep.colors);
  }
  // On a 600-vertex 24-regular graph the probability of two seeds colliding
  // is negligible; all five trajectories must differ.
  EXPECT_EQ(colorings.size(), 5u);
}

TEST(Luby, SameSeedSameRunIsStable) {
  // Replay determinism on the same executor config: two invocations with
  // identical options are byte-equal, including the round count.
  const auto g = graph::random_gnp(500, 0.04, 11);
  const auto a = run_luby(g, 31337);
  const auto b = run_luby(g, 31337);
  EXPECT_EQ(a.colors, b.colors);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(Luby, FrozenBackendMatchesDynamicBackend) {
  const auto g = graph::random_regular(700, 16, 204);
  const auto frozen = graph::FrozenGraph::from_graph(g);
  const auto dyn = run_luby(g, 5);
  const auto frz = run_luby(frozen, 5);
  ASSERT_TRUE(dyn.converged);
  ASSERT_TRUE(frz.converged);
  EXPECT_EQ(dyn.colors, frz.colors);
  EXPECT_EQ(dyn.rounds, frz.rounds);
}

TEST(Luby, TrivialGraphs) {
  {
    graph::Graph g(1);
    const auto rep = run_luby(g, 1);
    ASSERT_TRUE(rep.converged);
    EXPECT_EQ(rep.colors[0], 0u);
  }
  {
    graph::Graph g(2);
    g.add_edge(0, 1);
    const auto rep = run_luby(g, 1);
    ASSERT_TRUE(rep.converged);
    EXPECT_NE(rep.colors[0], rep.colors[1]);
    EXPECT_LE(rep.colors[0], 1u);
    EXPECT_LE(rep.colors[1], 1u);
  }
  {
    graph::Graph g(8);  // Delta = 0: everyone takes color 0 immediately
    const auto rep = run_luby(g, 1);
    ASSERT_TRUE(rep.converged);
    for (const Color c : rep.colors) EXPECT_EQ(c, 0u);
  }
}

TEST(Luby, RegistryEntryCarriesTheSeed) {
  // The ONE seed spelling: the registry run() must pick the seed up from
  // RunOptions::seed, matching a direct color_luby call.
  const auto g = graph::random_regular(400, 12, 61);
  const auto* a = coloring::find_algo("luby");
  ASSERT_NE(a, nullptr);
  EXPECT_TRUE(a->requires_seed);
  coloring::PipelineOptions opts;
  opts.run().seed = 1234;
  const auto via_registry = a->run(g, opts);
  const auto direct = run_luby(g, 1234);
  EXPECT_EQ(via_registry.colors, direct.colors);
  EXPECT_EQ(via_registry.rounds, direct.rounds);
}

}  // namespace
