// The async (dependency-driven) executor's contract (docs/EXEC.md), pinned
// differentially against the BSP backends:
//
//   * per-round driving (Engine::step) is bit-identical to BSP — states AND
//     metrics — for every thread count and schedule, including under channel
//     faults and topology churn;
//   * fixed-length windows with no early halts are bit-identical to the same
//     number of BSP rounds;
//   * adaptive halting inside a window stops each vertex exactly when its
//     halt predicate fires (the per-vertex fired-round bound the theorems
//     speak about) while neighbors keep reading its mirrored final message;
//   * the full coloring pipeline reaches the same final colors as the BSP
//     oracle, legally, with per-stage rounds within one of the oracle's.
//
// The TSan CI job runs this binary, covering the sent_/halted_ publication
// protocol and the ParkingLot under real concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "agc/coloring/pipeline.hpp"
#include "agc/exec/async_executor.hpp"
#include "agc/exec/executor.hpp"
#include "agc/exec/thread_pool.hpp"
#include "agc/faultlab/channel.hpp"
#include "agc/graph/checks.hpp"
#include "agc/graph/generators.hpp"
#include "agc/runtime/engine.hpp"
#include "agc/selfstab/ss_coloring.hpp"
#include "agc/selfstab/ss_line.hpp"
#include "agc/selfstab/ss_mis.hpp"

namespace {

using namespace agc;

void expect_same_metrics(const runtime::Metrics& a, const runtime::Metrics& b) {
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.total_bits, b.total_bits);
  EXPECT_EQ(a.max_edge_bits, b.max_edge_bits);
}

void expect_same_ram(runtime::Engine& a, runtime::Engine& b) {
  ASSERT_EQ(a.graph().n(), b.graph().n());
  for (graph::Vertex v = 0; v < a.graph().n(); ++v) {
    const auto ra = a.program(v).ram();
    const auto rb = b.program(v).ram();
    ASSERT_EQ(ra.size(), rb.size()) << "vertex " << v;
    for (std::size_t w = 0; w < ra.size(); ++w) {
      ASSERT_EQ(ra[w], rb[w]) << "vertex " << v << " word " << w;
    }
  }
}

std::vector<graph::Graph> test_graphs() {
  std::vector<graph::Graph> gs;
  gs.push_back(graph::random_gnp(300, 0.05, 42));
  gs.push_back(graph::random_regular(400, 8, 7));
  gs.push_back(graph::grid(15, 20));
  return gs;
}

// ---------------------------------------------------------------------------
// Pipeline oracle: async reaches the BSP oracle's exact colors, legally.
// Adaptive halting may trim trailing rounds per vertex, so the round count is
// bounded by the oracle's plus one per stage, not required to match exactly.
TEST(AsyncDifferential, PipelineAcrossModelsThreadsGraphs) {
  for (const auto& g : test_graphs()) {
    for (const runtime::Model model :
         {runtime::Model::SET_LOCAL, runtime::Model::LOCAL,
          runtime::Model::CONGEST}) {
      coloring::PipelineOptions base;
      base.iter.model = model;
      const auto seq = coloring::color_delta_plus_one(g, base);
      ASSERT_TRUE(seq.converged);
      ASSERT_TRUE(seq.proper);

      for (const exec::AsyncSchedule schedule :
           {exec::AsyncSchedule::VertexOrder, exec::AsyncSchedule::DegreeOrder}) {
        for (const std::size_t threads : {1, 2, 8}) {
          coloring::PipelineOptions par = base;
          par.iter.executor = exec::make_async_executor(threads, schedule);
          const auto rep = coloring::color_delta_plus_one(g, par);
          ASSERT_TRUE(rep.converged) << "threads=" << threads;
          EXPECT_TRUE(rep.proper) << "threads=" << threads;
          EXPECT_TRUE(graph::is_proper_coloring(g, rep.colors));
          EXPECT_EQ(rep.colors, seq.colors) << "threads=" << threads;
          EXPECT_EQ(rep.palette, seq.palette);
          // Each stage halts at most one round past the oracle's all-final
          // detection; the pipeline runs a handful of stages.
          EXPECT_LE(rep.rounds, seq.rounds + 8) << "threads=" << threads;
          if (seq.proper_each_round) {
            // Window-boundary checks see a subset of the oracle's states.
            EXPECT_TRUE(rep.proper_each_round) << "threads=" << threads;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Per-round driving: selfstab harnesses call Engine::step, where the async
// executor runs windows of one — bit-identical to BSP including metrics.
TEST(AsyncDifferential, SsColoringPerStepBitIdentical) {
  const std::size_t delta = 10;
  const auto g = graph::random_regular(200, 6, 11);
  selfstab::SsConfig cfg(g.n(), delta, selfstab::PaletteMode::ExactDeltaPlusOne);
  auto make_engine = [&](std::shared_ptr<runtime::RoundExecutor> ex) {
    runtime::EngineOptions eo;
    eo.delta_bound = delta;
    runtime::Engine e(g, runtime::Transport(runtime::Model::LOCAL), eo);
    if (ex) e.set_executor(std::move(ex));
    e.install(selfstab::ss_coloring_factory(cfg));
    return e;
  };

  auto seq = make_engine(nullptr);
  const auto rs = selfstab::run_until_stable(seq, cfg, 100000);
  ASSERT_TRUE(rs.stabilized);

  for (const std::size_t threads : {1, 2, 8}) {
    auto par = make_engine(exec::make_async_executor(threads));
    const auto rp = selfstab::run_until_stable(par, cfg, 100000);
    ASSERT_TRUE(rp.stabilized) << "threads=" << threads;
    EXPECT_EQ(rp.rounds_to_stable, rs.rounds_to_stable) << "threads=" << threads;
    EXPECT_EQ(rp.colors, rs.colors) << "threads=" << threads;
    expect_same_ram(seq, par);
    expect_same_metrics(seq.metrics(), par.metrics());
  }
}

TEST(AsyncDifferential, SsMisAndSsLinePerStepBitIdentical) {
  {
    const auto g = graph::random_gnp(120, 0.06, 5);
    selfstab::SsConfig cfg(g.n(), g.max_degree(), selfstab::PaletteMode::ODelta);
    auto make_engine = [&](std::shared_ptr<runtime::RoundExecutor> ex) {
      runtime::EngineOptions eo;
      eo.delta_bound = g.max_degree();
      runtime::Engine e(g, runtime::Transport(runtime::Model::LOCAL), eo);
      if (ex) e.set_executor(std::move(ex));
      e.install(selfstab::ss_mis_factory(cfg));
      return e;
    };
    auto seq = make_engine(nullptr);
    const auto rs = selfstab::run_until_mis_stable(seq, cfg, 100000);
    ASSERT_TRUE(rs.stabilized);
    for (const std::size_t threads : {2, 8}) {
      auto par = make_engine(exec::make_async_executor(threads));
      const auto rp = selfstab::run_until_mis_stable(par, cfg, 100000);
      ASSERT_TRUE(rp.stabilized) << "threads=" << threads;
      EXPECT_EQ(rp.rounds_to_stable, rs.rounds_to_stable);
      EXPECT_EQ(rp.in_mis, rs.in_mis);
      expect_same_ram(seq, par);
      expect_same_metrics(seq.metrics(), par.metrics());
    }
  }
  {
    const auto g = graph::random_gnp(40, 0.15, 21);
    selfstab::SsLineConfig cfg(g.n(), g.max_degree(),
                               selfstab::LineTask::MaximalMatching);
    auto make_engine = [&](std::shared_ptr<runtime::RoundExecutor> ex) {
      runtime::EngineOptions eo;
      eo.delta_bound = g.max_degree();
      runtime::Engine e(g, runtime::Transport(runtime::Model::LOCAL), eo);
      if (ex) e.set_executor(std::move(ex));
      e.install(selfstab::ss_line_factory(cfg));
      return e;
    };
    auto seq = make_engine(nullptr);
    const auto rs = selfstab::run_until_line_stable(seq, cfg, 100000);
    ASSERT_TRUE(rs.stabilized);
    for (const std::size_t threads : {2, 8}) {
      auto par = make_engine(exec::make_async_executor(threads));
      const auto rp = selfstab::run_until_line_stable(par, cfg, 100000);
      ASSERT_TRUE(rp.stabilized) << "threads=" << threads;
      EXPECT_EQ(rp.rounds_to_stable, rs.rounds_to_stable);
      expect_same_ram(seq, par);
      expect_same_metrics(seq.metrics(), par.metrics());
    }
  }
}

// ---------------------------------------------------------------------------
// Channel faults: the adversary's decisions are pure in (seed, round, u, v)
// and it resolves the mailbox parity via arena.parity_for(round), so a faulted
// per-step async run must replay the BSP trajectory bit-for-bit.
TEST(AsyncDifferential, ChannelAdversaryBitIdenticalToBsp) {
  const std::size_t delta = 8;
  const auto g = graph::random_regular(150, 6, 13);
  selfstab::SsConfig cfg(g.n(), delta, selfstab::PaletteMode::ODelta);
  faultlab::ChannelFaultConfig fc;
  fc.seed = 5;
  fc.drop_per_million = 20000;
  fc.corrupt_per_million = 10000;
  fc.duplicate_per_million = 10000;
  fc.delay_per_million = 10000;
  fc.last_round = 40;

  auto make_engine = [&](std::shared_ptr<runtime::RoundExecutor> ex,
                         faultlab::ChannelAdversary& adv) {
    runtime::EngineOptions eo;
    eo.delta_bound = delta;
    runtime::Engine e(g, runtime::Transport(runtime::Model::LOCAL), eo);
    if (ex) e.set_executor(std::move(ex));
    e.set_channel(&adv);
    e.install(selfstab::ss_coloring_factory(cfg));
    return e;
  };

  faultlab::ChannelAdversary adv_seq(fc);
  auto seq = make_engine(nullptr, adv_seq);
  const auto rs = selfstab::run_until_stable(seq, cfg, 100000);
  ASSERT_TRUE(rs.stabilized);
  ASSERT_GT(adv_seq.events(), 0u);  // the wire really was attacked

  for (const std::size_t threads : {1, 4}) {
    faultlab::ChannelAdversary adv_par(fc);
    auto par = make_engine(exec::make_async_executor(threads), adv_par);
    const auto rp = selfstab::run_until_stable(par, cfg, 100000);
    ASSERT_TRUE(rp.stabilized) << "threads=" << threads;
    EXPECT_EQ(rp.rounds_to_stable, rs.rounds_to_stable) << "threads=" << threads;
    EXPECT_EQ(rp.colors, rs.colors) << "threads=" << threads;
    EXPECT_EQ(adv_par.events(), adv_seq.events()) << "threads=" << threads;
    expect_same_ram(seq, par);
    expect_same_metrics(seq.metrics(), par.metrics());
  }
}

// ---------------------------------------------------------------------------
// Windows.  A 1-bit hash-chain program (order-sensitive over ports) that
// never halts: a fixed window of R rounds must equal R BSP steps exactly.
class BitChainProgram final : public runtime::VertexProgram {
 public:
  void on_start(const runtime::VertexEnv& env) override {
    ram_ = {0, env.padded_id & 1};
  }
  void on_send(const runtime::VertexEnv&, runtime::OutboxRef& out) override {
    out.broadcast(runtime::Word{ram_[1] & 1, 1});
  }
  void on_receive(const runtime::VertexEnv&,
                  const runtime::InboxRef& in) override {
    for (std::size_t p = 0; p < in.ports(); ++p) {
      for (const runtime::Word w : in.from_port(p)) {
        ram_[0] = ram_[0] * 1099511628211ULL + (w.value << 1 | 1);
      }
    }
    ram_[1] ^= ram_[0] & 1;
  }
  std::span<std::uint64_t> ram() override { return ram_; }

 private:
  std::vector<std::uint64_t> ram_ = {0, 0};
};

TEST(AsyncWindow, FixedWindowBitIdenticalToBspSteps) {
  const auto g = graph::random_gnp(250, 0.04, 9);
  auto make_engine = [&] {
    runtime::Engine e(g, runtime::Transport(runtime::Model::BIT));
    e.install([](const runtime::VertexEnv&) {
      return std::make_unique<BitChainProgram>();
    });
    return e;
  };

  auto seq = make_engine();
  for (int r = 0; r < 6; ++r) seq.step();

  for (const std::size_t threads : {1, 2, 8}) {
    auto par = make_engine();
    par.set_executor(exec::make_async_executor(threads));
    // No program ever halts, so the whole window is exhausted.
    EXPECT_EQ(par.step_window(6), 6u) << "threads=" << threads;
    expect_same_ram(seq, par);
    expect_same_metrics(seq.metrics(), par.metrics());
  }
  // The Bit-Round model really was exercised: 1 bit per edge per round.
  EXPECT_EQ(seq.metrics().max_edge_bits, 6u);
}

// step_window with a barriered executor (or none) falls back to per-step
// driving and still executes the requested number of rounds.
TEST(AsyncWindow, BspExecutorFallsBackToPerStepLoop) {
  const auto g = graph::grid(6, 6);
  runtime::Engine e(g, runtime::Transport(runtime::Model::BIT));
  e.set_executor(exec::make_executor(2));
  e.install([](const runtime::VertexEnv&) {
    return std::make_unique<BitChainProgram>();
  });
  EXPECT_EQ(e.step_window(4), 4u);
  EXPECT_EQ(e.metrics().rounds, 4u);
}

// ---------------------------------------------------------------------------
// Per-vertex halting.  Each vertex halts after a cap of 1 + (id mod 4)
// firings; past its cap, neighbors must keep reading its mirrored final
// message.  The resulting RAM is a pure function of the dependency graph, so
// it must be identical across thread counts and schedules, and last_fired()
// must hit each cap exactly — the per-vertex fired-round bound.
class CapProgram final : public runtime::VertexProgram {
 public:
  void on_start(const runtime::VertexEnv& env) override {
    id_ = env.id;
    cap_ = 1 + (env.id % 4);
  }
  void on_send(const runtime::VertexEnv&, runtime::OutboxRef& out) override {
    out.broadcast(runtime::Word{ram_[0] * 1024 + (id_ & 1023), 16});
  }
  void on_receive(const runtime::VertexEnv&,
                  const runtime::InboxRef& in) override {
    for (const std::uint64_t w : in.multiset()) {
      ram_[1] = ram_[1] * 1099511628211ULL + (w << 1 | 1);
    }
    ++ram_[0];
  }
  [[nodiscard]] bool halted(const runtime::VertexEnv&) const override {
    return ram_[0] >= cap_;
  }
  std::span<std::uint64_t> ram() override { return ram_; }

 private:
  std::uint64_t id_ = 0;
  std::uint64_t cap_ = 0;
  std::vector<std::uint64_t> ram_ = {0, 0};  ///< {receive count, inbox hash}
};

TEST(AsyncWindow, PerVertexHaltingFiredBoundsAndDeterminism) {
  const auto g = graph::random_gnp(200, 0.05, 17);
  std::vector<std::uint64_t> golden_ram;
  bool first = true;
  for (const exec::AsyncSchedule schedule :
       {exec::AsyncSchedule::VertexOrder, exec::AsyncSchedule::DegreeOrder}) {
    for (const std::size_t threads : {1, 2, 8}) {
      auto ex = std::make_shared<exec::AsyncExecutor>(threads, schedule);
      runtime::Engine e(g, runtime::Transport(runtime::Model::LOCAL));
      e.set_executor(ex);
      e.install([](const runtime::VertexEnv&) {
        return std::make_unique<CapProgram>();
      });
      // Caps are at most 4, well under the 10-round window: the return value
      // is the max per-vertex firing count, and every vertex stops at its cap.
      EXPECT_EQ(e.step_window(10), 4u)
          << "threads=" << threads << " schedule=" << int(schedule);
      const auto& fired = ex->last_fired();
      ASSERT_EQ(fired.size(), g.n());
      for (graph::Vertex v = 0; v < g.n(); ++v) {
        EXPECT_EQ(fired[v], 1 + (v % 4)) << "vertex " << v;
      }
      std::vector<std::uint64_t> ram;
      for (graph::Vertex v = 0; v < g.n(); ++v) {
        // count_ is word 0 of the program's RAM after the window.
        const auto r = e.program(v).ram();
        for (const std::uint64_t w : r) ram.push_back(w);
      }
      if (first) {
        golden_ram = ram;
        first = false;
      } else {
        EXPECT_EQ(ram, golden_ram)
            << "threads=" << threads << " schedule=" << int(schedule);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Exceptions raised inside a window must propagate (lowest-indexed shard
// wins, matching ThreadPool), not hang parked neighbors; the executor stays
// usable afterwards.
class ThrowOnceProgram final : public runtime::VertexProgram {
 public:
  void on_start(const runtime::VertexEnv& env) override { id_ = env.id; }
  void on_send(const runtime::VertexEnv&, runtime::OutboxRef& out) override {
    out.broadcast(runtime::Word{1, 1});
  }
  void on_receive(const runtime::VertexEnv&,
                  const runtime::InboxRef&) override {
    if (id_ == 37 && ++count_ == 2) throw std::runtime_error("boom");
  }
  std::span<std::uint64_t> ram() override { return {}; }

 private:
  std::uint64_t id_ = 0;
  int count_ = 0;
};

TEST(AsyncWindow, ExceptionPropagatesWithoutHang) {
  const auto g = graph::random_gnp(100, 0.05, 3);
  auto ex = exec::make_async_executor(8);
  {
    runtime::Engine e(g, runtime::Transport(runtime::Model::BIT));
    e.set_executor(ex);
    e.install([](const runtime::VertexEnv&) {
      return std::make_unique<ThrowOnceProgram>();
    });
    EXPECT_THROW(e.step_window(10), std::runtime_error);
  }
  // Same executor, fresh engine: the abort flag and parked shards must have
  // been fully reset.
  runtime::Engine e2(g, runtime::Transport(runtime::Model::BIT));
  e2.set_executor(ex);
  e2.install([](const runtime::VertexEnv&) {
    return std::make_unique<BitChainProgram>();
  });
  EXPECT_EQ(e2.step_window(3), 3u);
}

// ---------------------------------------------------------------------------
// Topology churn under per-step async driving: the SET-LOCAL regression from
// test_mailbox_arena.cpp, re-run on the dependency-driven backend.  Every
// mutation class (edge add/remove, vertex reset, vertex add) must leave each
// vertex hearing exactly its current sorted neighborhood.
class IdEchoProgram final : public runtime::VertexProgram {
 public:
  void on_send(const runtime::VertexEnv& env, runtime::OutboxRef& out) override {
    out.broadcast({env.padded_id, runtime::width_of(env.id_space - 1)});
  }
  void on_receive(const runtime::VertexEnv&,
                  const runtime::InboxRef& in) override {
    const auto ms = in.multiset();
    heard.assign(ms.begin(), ms.end());
  }
  std::span<std::uint64_t> ram() override { return {}; }
  std::vector<std::uint64_t> heard;
};

TEST(AsyncChurn, TopologyChurnEveryRoundUnderSetLocal) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
    runtime::Engine engine(graph::path(6),
                           runtime::Transport(runtime::Model::SET_LOCAL));
    engine.set_executor(exec::make_async_executor(threads));
    engine.install([](const runtime::VertexEnv&) {
      return std::make_unique<IdEchoProgram>();
    });

    graph::Rng rng(99);
    for (int round = 0; round < 40; ++round) {
      const std::size_t n = engine.graph().n();
      switch (round % 4) {
        case 0:
          engine.add_edge(static_cast<graph::Vertex>(rng.below(n)),
                          static_cast<graph::Vertex>(rng.below(n)));
          break;
        case 1: {
          const auto edges = graph::edge_list(engine.graph());
          if (!edges.empty()) {
            const auto& e = edges[rng.below(edges.size())];
            engine.remove_edge(e.first, e.second);
          }
          break;
        }
        case 2:
          engine.reset_vertex(static_cast<graph::Vertex>(rng.below(n)));
          break;
        case 3: {
          const auto v = engine.add_vertex();
          engine.add_edge(v, static_cast<graph::Vertex>(rng.below(v)));
          break;
        }
      }
      engine.step();
      const auto& g = engine.graph();
      for (graph::Vertex v = 0; v < g.n(); ++v) {
        const auto nbrs = g.neighbors(v);
        const std::vector<std::uint64_t> want(nbrs.begin(), nbrs.end());
        const auto& heard =
            dynamic_cast<IdEchoProgram&>(engine.program(v)).heard;
        EXPECT_EQ(heard, want) << "vertex " << v << " threads " << threads;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ParkingLot: the Dekker handshake must never lose a wake.
TEST(ParkingLot, WakeBeforeParkReturnsImmediately) {
  exec::ParkingLot lot;
  const std::uint64_t seen = lot.tick();
  lot.wake_all();
  lot.park(seen);  // tick moved past the snapshot: must not block
  SUCCEED();
}

TEST(ParkingLot, StressPublishersNeverStrandParkers) {
  exec::ParkingLot lot;
  std::atomic<std::uint64_t> published{0};
  constexpr std::uint64_t kTarget = 20000;

  std::vector<std::thread> parkers;
  for (int t = 0; t < 4; ++t) {
    parkers.emplace_back([&] {
      for (;;) {
        const std::uint64_t seen = lot.tick();
        if (published.load(std::memory_order_acquire) >= kTarget) return;
        lot.park(seen);  // a publish between the checks moves the tick
      }
    });
  }
  std::thread publisher([&] {
    for (std::uint64_t i = 0; i < kTarget; ++i) {
      published.fetch_add(1, std::memory_order_release);
      lot.wake_all();
    }
  });
  publisher.join();
  // Termination IS the assertion: a lost wakeup would hang a parker here.
  for (auto& t : parkers) t.join();
  SUCCEED();
}

}  // namespace
