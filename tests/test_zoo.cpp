// The adversary zoo (docs/FAULTS.md): production-shaped fault models behind
// the ChannelHook / FaultAdversary seams — regional outages, flapping links,
// Byzantine-valued neighbors, the adaptive RAM adversary, and power-law churn
// traces.  Every adversary is pinned bit-identical across 1/2/8 executor
// threads, one golden recovery/radius row per kind, plus record/replay of the
// Lie kind and unknown-field preservation in plan JSONL.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "agc/exec/executor.hpp"
#include "agc/faultlab/channel.hpp"
#include "agc/faultlab/harness.hpp"
#include "agc/faultlab/plan.hpp"
#include "agc/faultlab/shrink.hpp"
#include "agc/faultlab/zoo.hpp"
#include "agc/graph/generators.hpp"
#include "agc/runtime/faults.hpp"
#include "agc/selfstab/ss_coloring.hpp"

namespace {

using namespace agc;
using faultlab::ChannelPlayback;
using faultlab::FaultPlan;
using faultlab::FaultPlanRecorder;
using faultlab::PlanAdversary;
using faultlab::ZooSpec;
using runtime::FaultEvent;
using runtime::FaultKind;
using selfstab::PaletteMode;
using selfstab::SsConfig;

constexpr std::uint64_t kSeed = 0x5eedULL;

// ---------------------------------------------------------------------------
// Per-adversary wire semantics on a tiny probe engine
// ---------------------------------------------------------------------------

// Two-vertex probe: broadcasts 100 + round in 8 bits, logs what arrives.
class ProbeProgram final : public runtime::VertexProgram {
 public:
  explicit ProbeProgram(std::vector<std::vector<std::uint64_t>>* log)
      : log_(log) {}
  void on_send(const runtime::VertexEnv& env, runtime::OutboxRef& out) override {
    out.broadcast(runtime::Word{100 + env.round, 8});
  }
  void on_receive(const runtime::VertexEnv&,
                  const runtime::InboxRef& in) override {
    std::vector<std::uint64_t> got;
    for (std::size_t p = 0; p < in.ports(); ++p) {
      for (const runtime::Word& w : in.from_port(p)) got.push_back(w.value);
    }
    log_->push_back(std::move(got));
  }

 private:
  std::vector<std::vector<std::uint64_t>>* log_;
};

runtime::Engine probe_engine(std::vector<std::vector<std::uint64_t>>* log) {
  graph::Graph g(2);
  g.add_edge(0, 1);
  runtime::EngineOptions opts;
  opts.delta_bound = 1;
  runtime::Engine engine(std::move(g), runtime::Transport(runtime::Model::LOCAL),
                         opts);
  engine.install([log](const runtime::VertexEnv&) {
    return std::make_unique<ProbeProgram>(log);
  });
  return engine;
}

TEST(OutageSemantics, RegionDarkExactlyInsideTheWindow) {
  std::vector<std::vector<std::uint64_t>> log;
  auto engine = probe_engine(&log);
  faultlab::RegionalOutageConfig cfg;
  cfg.lo = 1;
  cfg.hi = 1;  // vertex 1 dark: both directions of edge {0,1} die
  cfg.first_round = 1;
  cfg.last_round = 2;
  FaultPlanRecorder rec;
  faultlab::RegionalOutage outage(cfg, &rec);
  engine.set_channel(&outage);
  for (int i = 0; i < 4; ++i) engine.step();
  engine.set_channel(nullptr);
  // Rounds are 0-based on the wire: round 0 delivers, rounds 1-2 are dark
  // (either endpoint in region kills the message), round 3 delivers again.
  ASSERT_EQ(log.size(), 8u);
  EXPECT_FALSE(log[0].empty());
  EXPECT_FALSE(log[1].empty());
  for (int i = 2; i < 6; ++i) EXPECT_TRUE(log[i].empty()) << "entry " << i;
  EXPECT_FALSE(log[6].empty());
  EXPECT_FALSE(log[7].empty());
  EXPECT_EQ(outage.events(), 4u);  // 2 directed ports x 2 rounds
  const FaultPlan plan = rec.take();
  ASSERT_EQ(plan.size(), 4u);
  for (const FaultEvent& ev : plan.events) EXPECT_EQ(ev.kind, FaultKind::Drop);
}

TEST(FlapSemantics, BothDirectionsOfALinkFlapInLockstep) {
  std::vector<std::vector<std::uint64_t>> log;
  auto engine = probe_engine(&log);
  faultlab::FlappingLinksConfig cfg;
  cfg.down_per_million = 400'000;
  cfg.up_per_million = 400'000;
  faultlab::FlappingLinks flap(cfg, 99);
  engine.set_channel(&flap);
  const int rounds = 40;
  for (int i = 0; i < rounds; ++i) engine.step();
  engine.set_channel(nullptr);
  // The per-port Markov chains hash the canonical endpoint pair, so message
  // 0->1 and 1->0 always live or die together.
  ASSERT_EQ(log.size(), 2u * rounds);
  std::size_t down_rounds = 0;
  for (int r = 0; r < rounds; ++r) {
    EXPECT_EQ(log[2 * r].empty(), log[2 * r + 1].empty()) << "round " << r;
    down_rounds += log[2 * r].empty();
  }
  // With p(down)=p(up)=0.4 the link spends roughly half the run dark; all-up
  // or all-down would mean the chain never advanced.
  EXPECT_GT(down_rounds, 5u);
  EXPECT_LT(down_rounds, 35u);
  EXPECT_EQ(flap.events(), 2 * down_rounds);
}

TEST(ByzSemantics, LiarsReplaceWordZeroWidthPreserving) {
  std::vector<std::vector<std::uint64_t>> log;
  auto engine = probe_engine(&log);
  faultlab::ByzantineConfig cfg;
  cfg.liars_per_million = 1'000'000;  // everyone lies
  cfg.lie_per_million = 1'000'000;    // on every message
  FaultPlanRecorder rec;
  faultlab::ByzantineNeighbors byz(cfg, 7, &rec);
  EXPECT_TRUE(byz.is_liar(0));
  EXPECT_TRUE(byz.is_liar(1));
  engine.set_channel(&byz);
  for (int i = 0; i < 3; ++i) engine.step();
  engine.set_channel(nullptr);
  ASSERT_EQ(log.size(), 6u);
  for (std::size_t i = 0; i < log.size(); ++i) {
    ASSERT_EQ(log[i].size(), 1u);
    EXPECT_NE(log[i][0], 100u + i / 2);  // never the truth
    EXPECT_LT(log[i][0], 256u);          // still fits the declared 8 bits
  }
  const FaultPlan plan = rec.take();
  ASSERT_EQ(plan.size(), 6u);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan.events[i].kind, FaultKind::Lie);
    EXPECT_LT(plan.events[i].value, 256u);
  }
}

// ---------------------------------------------------------------------------
// Stabilization scenarios: one per adversary kind, deterministic at 1/2/8
// threads, with a pinned golden recovery/radius row
// ---------------------------------------------------------------------------

struct ZooRun {
  faultlab::StabilizationOutcome out;
  std::vector<graph::Color> colors;
  std::uint64_t wire_events = 0;
};

/// Self-stabilizing coloring on gnp(140, 0.05, 59) under `zoo`, harness
/// semantics identical to the sched runner's fault path.
ZooRun run_zoo(const ZooSpec& zoo, std::size_t threads,
               FaultPlan* record = nullptr) {
  const auto g = graph::random_gnp(140, 0.05, 59);
  const std::size_t delta = std::max<std::size_t>(g.max_degree(), 1);
  const std::uint64_t n_cap = g.n() + 20;  // churn headroom
  const SsConfig cfg(n_cap, delta, PaletteMode::ODelta);
  runtime::EngineOptions eo;
  eo.delta_bound = delta;
  eo.n_bound = n_cap;
  runtime::Engine engine(g, runtime::Transport(runtime::Model::LOCAL), eo);
  if (threads > 1) engine.set_executor(exec::make_executor(threads));
  engine.install(selfstab::ss_coloring_factory(cfg));

  FaultPlanRecorder rec;
  if (record != nullptr) engine.set_fault_recorder(&rec);
  faultlab::ChannelHookChain hooks;
  faultlab::append_channel_hooks(hooks, zoo, kSeed,
                                 record != nullptr ? &rec : nullptr);
  faultlab::FaultAdversaryChain advs;
  faultlab::append_state_adversaries(advs, zoo, kSeed);

  runtime::RunOptions opts;
  if (!hooks.empty()) opts.channel = &hooks;
  if (zoo.any_state()) opts.adversary = &advs;
  opts.max_rounds = 9000;
  faultlab::StabilizationSpec spec;
  spec.check = faultlab::coloring_check(cfg);
  spec.outputs = faultlab::coloring_outputs();
  spec.recovery_budget = 3000;
  ZooRun r;
  r.out = faultlab::run_stabilization(engine, opts, spec);
  engine.set_fault_recorder(nullptr);
  r.colors = selfstab::current_colors(engine);
  r.wire_events = hooks.events();
  if (record != nullptr) *record = rec.take();
  return r;
}

void expect_thread_deterministic(const ZooSpec& zoo, const ZooRun& base) {
  for (const std::size_t threads : {2, 8}) {
    const ZooRun rep = run_zoo(zoo, threads);
    EXPECT_EQ(rep.out.recovered, base.out.recovered) << "threads=" << threads;
    EXPECT_EQ(rep.out.recovery_rounds, base.out.recovery_rounds)
        << "threads=" << threads;
    EXPECT_EQ(rep.out.last_fault_round, base.out.last_fault_round)
        << "threads=" << threads;
    EXPECT_EQ(rep.out.first_legal_round, base.out.first_legal_round)
        << "threads=" << threads;
    EXPECT_EQ(rep.out.adjusted, base.out.adjusted) << "threads=" << threads;
    EXPECT_EQ(rep.out.fault_events, base.out.fault_events)
        << "threads=" << threads;
    EXPECT_EQ(rep.wire_events, base.wire_events) << "threads=" << threads;
    EXPECT_EQ(rep.colors, base.colors) << "threads=" << threads;
  }
}

// The golden rows below pin the full (recovery, radius, last-fault, events)
// tuple for one canonical scenario per adversary kind, so ANY trajectory
// change — engine, hook order, hashing — is caught, not just divergence
// across thread counts.

TEST(ZooDeterminism, RegionalOutageGolden) {
  ZooSpec zoo;
  zoo.outage.lo = 10;
  zoo.outage.hi = 40;
  zoo.outage.first_round = 2;
  zoo.outage.last_round = 9;
  const ZooRun base = run_zoo(zoo, 1);
  ASSERT_TRUE(base.out.recovered);
  EXPECT_GT(base.wire_events, 0u);
  EXPECT_EQ(base.out.recovery_rounds, 0u);   // golden
  EXPECT_EQ(base.out.adjusted.size(), 0u);   // golden
  EXPECT_EQ(base.out.last_fault_round, 10u);  // golden
  EXPECT_EQ(base.out.fault_events, 3440u);      // golden
  expect_thread_deterministic(zoo, base);
}

TEST(ZooDeterminism, FlappingLinksGolden) {
  ZooSpec zoo;
  zoo.flap.down_per_million = 150'000;
  zoo.flap.up_per_million = 400'000;
  zoo.flap.first_round = 2;
  zoo.flap.last_round = 14;
  const ZooRun base = run_zoo(zoo, 1);
  ASSERT_TRUE(base.out.recovered);
  EXPECT_GT(base.wire_events, 0u);
  EXPECT_EQ(base.out.recovery_rounds, 0u);   // golden
  EXPECT_EQ(base.out.adjusted.size(), 0u);   // golden
  EXPECT_EQ(base.out.last_fault_round, 15u);  // golden
  EXPECT_EQ(base.out.fault_events, 3520u);      // golden
  expect_thread_deterministic(zoo, base);
}

TEST(ZooDeterminism, ByzantineNeighborsGolden) {
  ZooSpec zoo;
  zoo.byz.liars_per_million = 120'000;
  zoo.byz.lie_per_million = 600'000;
  zoo.byz.first_round = 2;
  zoo.byz.last_round = 10;
  const ZooRun base = run_zoo(zoo, 1);
  ASSERT_TRUE(base.out.recovered);
  EXPECT_GT(base.wire_events, 0u);
  EXPECT_EQ(base.out.recovery_rounds, 0u);   // golden
  EXPECT_EQ(base.out.adjusted.size(), 0u);   // golden
  EXPECT_EQ(base.out.last_fault_round, 11u);  // golden
  EXPECT_EQ(base.out.fault_events, 501u);      // golden
  expect_thread_deterministic(zoo, base);
}

TEST(ZooDeterminism, AdaptiveAdversaryGolden) {
  ZooSpec zoo;
  zoo.adapt.count = 3;
  zoo.adapt.period = 2;
  zoo.adapt.last_round = 8;
  zoo.adapt.target = faultlab::AdaptiveConfig::Target::HighestDegree;
  const ZooRun base = run_zoo(zoo, 1);
  ASSERT_TRUE(base.out.recovered);
  EXPECT_EQ(base.out.recovery_rounds, 2u);   // golden
  EXPECT_EQ(base.out.adjusted.size(), 0u);   // golden
  EXPECT_EQ(base.out.last_fault_round, 10u);  // golden
  EXPECT_EQ(base.out.fault_events, 12u);      // golden
  expect_thread_deterministic(zoo, base);
}

TEST(ZooDeterminism, AdaptiveRecentTargetDiverges) {
  // Same knobs, different snapshot policy: the two targeting modes must
  // produce different fault trajectories or "adaptive" is a misnomer.
  // Churn resets give the recency mode fresh victims away from the static
  // degree leaders (an undisturbed fixed point recolors nothing, so without
  // them both modes collapse onto the same all-tied snapshot).
  // The first firing lands at round 4, after the churn resets have already
  // forced repairs: the recency snapshot then points at the reset
  // neighborhoods while the degree ranking still points at the static hubs.
  ZooSpec degree;
  degree.adapt.count = 3;
  degree.adapt.period = 4;
  degree.adapt.last_round = 8;
  degree.churn.events = 4;
  degree.churn.attach = 0;
  degree.churn.resets_per_million = 1'000'000;
  degree.churn.first_round = 1;
  degree.churn.last_round = 8;
  degree.churn.max_vertices = 140;
  ZooSpec recent = degree;
  recent.adapt.target = faultlab::AdaptiveConfig::Target::RecentlyRecolored;
  FaultPlan plan_degree;
  FaultPlan plan_recent;
  const ZooRun a = run_zoo(degree, 1, &plan_degree);
  const ZooRun b = run_zoo(recent, 1, &plan_recent);
  ASSERT_TRUE(a.out.recovered);
  ASSERT_TRUE(b.out.recovered);
  ASSERT_FALSE(plan_degree.empty());
  ASSERT_FALSE(plan_recent.empty());
  // Compare the injected Ram targets: recency-chasing must aim at different
  // vertices than the static degree ranking at least once.
  std::vector<graph::Vertex> targets_degree;
  std::vector<graph::Vertex> targets_recent;
  for (const FaultEvent& ev : plan_degree.events) {
    if (ev.kind == FaultKind::Ram) targets_degree.push_back(ev.v);
  }
  for (const FaultEvent& ev : plan_recent.events) {
    if (ev.kind == FaultKind::Ram) targets_recent.push_back(ev.v);
  }
  EXPECT_NE(targets_degree, targets_recent);
}

TEST(ZooDeterminism, ChurnTraceGolden) {
  ZooSpec zoo;
  zoo.churn.events = 6;
  zoo.churn.attach = 2;
  zoo.churn.resets_per_million = 400'000;
  zoo.churn.first_round = 2;
  zoo.churn.last_round = 40;
  zoo.churn.dmax = 16;
  zoo.churn.max_vertices = 140 + 20;
  const ZooRun base = run_zoo(zoo, 1);
  ASSERT_TRUE(base.out.recovered);
  EXPECT_GT(base.out.fault_events, 0u);
  EXPECT_EQ(base.out.recovery_rounds, 1u);   // golden
  EXPECT_EQ(base.out.adjusted.size(), 4u);   // golden
  EXPECT_EQ(base.out.last_fault_round, 14u);  // golden
  EXPECT_EQ(base.out.fault_events, 18u);      // golden
  expect_thread_deterministic(zoo, base);
}

TEST(ZooDeterminism, FullZooComposesAndStaysDeterministic) {
  ZooSpec zoo;
  zoo.outage.lo = 20;
  zoo.outage.hi = 35;
  zoo.outage.first_round = 3;
  zoo.outage.last_round = 6;
  zoo.flap.down_per_million = 80'000;
  zoo.flap.first_round = 2;
  zoo.flap.last_round = 12;
  zoo.byz.liars_per_million = 80'000;
  zoo.byz.first_round = 2;
  zoo.byz.last_round = 10;
  zoo.adapt.count = 2;
  zoo.adapt.period = 3;
  zoo.adapt.last_round = 9;
  zoo.churn.events = 4;
  zoo.churn.resets_per_million = 500'000;
  zoo.churn.first_round = 2;
  zoo.churn.last_round = 30;
  zoo.churn.dmax = 16;
  zoo.churn.max_vertices = 140 + 20;
  ASSERT_TRUE(zoo.any_channel());
  ASSERT_TRUE(zoo.any_state());
  const ZooRun base = run_zoo(zoo, 1);
  ASSERT_TRUE(base.out.recovered);
  EXPECT_GT(base.out.fault_events, 0u);
  EXPECT_GT(base.wire_events, 0u);
  expect_thread_deterministic(zoo, base);
}

// ---------------------------------------------------------------------------
// Record / replay through the zoo (including the Lie kind)
// ---------------------------------------------------------------------------

TEST(ZooRecordReplay, RecordedZooRunReplaysBitForBit) {
  ZooSpec zoo;
  zoo.byz.liars_per_million = 150'000;
  zoo.byz.first_round = 2;
  zoo.byz.last_round = 8;
  zoo.outage.lo = 15;
  zoo.outage.hi = 30;
  zoo.outage.first_round = 4;
  zoo.outage.last_round = 7;
  zoo.adapt.count = 2;
  zoo.adapt.period = 2;
  zoo.adapt.last_round = 6;
  zoo.churn.events = 3;
  zoo.churn.resets_per_million = 1'000'000;
  zoo.churn.first_round = 2;
  zoo.churn.last_round = 20;
  FaultPlan plan;
  const ZooRun live = run_zoo(zoo, 1, &plan);
  ASSERT_TRUE(live.out.recovered);
  ASSERT_FALSE(plan.empty());
  std::set<FaultKind> kinds;
  for (const FaultEvent& ev : plan.events) kinds.insert(ev.kind);
  EXPECT_TRUE(kinds.count(FaultKind::Lie));
  EXPECT_TRUE(kinds.count(FaultKind::Drop));
  EXPECT_TRUE(kinds.count(FaultKind::Ram));

  // JSONL round trip, then replay the plan on a fresh engine with the zoo
  // switched off: the trajectory must match the live run exactly.
  const std::string path = testing::TempDir() + "/zoo_replay.jsonl";
  plan.save(path);
  const FaultPlan loaded = FaultPlan::load(path);
  std::remove(path.c_str());
  ASSERT_EQ(loaded.size(), plan.size());

  const auto g = graph::random_gnp(140, 0.05, 59);
  const std::size_t delta = std::max<std::size_t>(g.max_degree(), 1);
  const SsConfig cfg(g.n() + 20, delta, PaletteMode::ODelta);
  runtime::EngineOptions eo;
  eo.delta_bound = delta;
  eo.n_bound = g.n() + 20;
  runtime::Engine engine(g, runtime::Transport(runtime::Model::LOCAL), eo);
  engine.install(selfstab::ss_coloring_factory(cfg));
  PlanAdversary adv(loaded);
  ChannelPlayback chan(loaded.events);
  runtime::RunOptions opts;
  opts.adversary = &adv;
  opts.channel = &chan;
  opts.max_rounds = 9000;
  faultlab::StabilizationSpec spec;
  spec.check = faultlab::coloring_check(cfg);
  spec.outputs = faultlab::coloring_outputs();
  spec.recovery_budget = 3000;
  const auto replay = faultlab::run_stabilization(engine, opts, spec);
  EXPECT_EQ(replay.recovered, live.out.recovered);
  EXPECT_EQ(replay.recovery_rounds, live.out.recovery_rounds);
  EXPECT_EQ(replay.last_fault_round, live.out.last_fault_round);
  EXPECT_EQ(replay.adjusted, live.out.adjusted);
  EXPECT_EQ(selfstab::current_colors(engine), live.colors);
}

TEST(ZooRecordReplay, LiePlaybackMasksToDeclaredWidth) {
  // A hand-written Lie event with a too-wide value must land masked to the
  // message's declared width, mirroring the live adversary's guarantee.
  std::vector<std::vector<std::uint64_t>> log;
  auto engine = probe_engine(&log);
  FaultEvent ev;
  ev.round = 0;
  ev.kind = FaultKind::Lie;
  ev.u = 0;
  ev.v = 1;
  ev.value = 0xffff;  // wider than the probe's 8-bit words
  ChannelPlayback chan({ev});
  engine.set_channel(&chan);
  engine.step();
  engine.set_channel(nullptr);
  ASSERT_EQ(log.size(), 2u);
  ASSERT_EQ(log[0].size(), 1u);  // vertex 1's inbox: the lied-to direction
  ASSERT_EQ(log[1].size(), 1u);
  const bool lied_0 = log[0][0] == 0xffu;
  const bool lied_1 = log[1][0] == 0xffu;
  EXPECT_TRUE(lied_0 || lied_1);         // exactly the 0->1 message replaced
  EXPECT_NE(lied_0, lied_1);
  EXPECT_TRUE(log[0][0] == 100u || log[1][0] == 100u);  // other side truthful
}

// ---------------------------------------------------------------------------
// Plan JSONL: unknown fields survive load -> canonicalize -> save -> shrink
// ---------------------------------------------------------------------------

TEST(PlanExtras, UnknownFieldsRoundTripThroughSaveAndShrink) {
  const std::string jsonl =
      "{\"round\":3,\"kind\":\"lie\",\"u\":1,\"v\":2,\"word\":0,\"value\":9,"
      "\"origin\":\"byz\",\"note\":{\"a\":[1,2]}}\n"
      "{\"round\":1,\"kind\":\"ram\",\"u\":0,\"v\":4,\"word\":0,\"value\":7}\n"
      "{\"round\":1,\"kind\":\"drop\",\"u\":5,\"v\":6,\"word\":0,\"value\":0,"
      "\"tag\":\"flap#7\"}\n";
  const std::string path = testing::TempDir() + "/extras.jsonl";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(jsonl.c_str(), f);
    std::fclose(f);
  }
  FaultPlan plan = FaultPlan::load(path);
  std::remove(path.c_str());
  ASSERT_EQ(plan.size(), 3u);
  // canonicalize(): round 1 first (ram before the channel drop), the round-3
  // lie last, each keeping its unknown fields attached through the reorder.
  plan.canonicalize();
  EXPECT_EQ(plan.events[0].kind, FaultKind::Ram);
  EXPECT_EQ(plan.events[1].kind, FaultKind::Drop);
  EXPECT_EQ(plan.events[2].kind, FaultKind::Lie);
  const std::string out = plan.to_jsonl();
  EXPECT_NE(out.find("\"origin\":\"byz\""), std::string::npos);
  EXPECT_NE(out.find("\"note\":{\"a\":[1,2]}"), std::string::npos);
  EXPECT_NE(out.find("\"tag\":\"flap#7\""), std::string::npos);
  // The lie's extras live on the lie's line, not somebody else's.
  const auto lie_line = out.find("\"kind\":\"lie\"");
  ASSERT_NE(lie_line, std::string::npos);
  const auto lie_end = out.find('\n', lie_line);
  EXPECT_LT(out.find("\"origin\":\"byz\""), lie_end);
  EXPECT_GT(out.find("\"origin\":\"byz\""), lie_line);

  // ddmin to the single event a predicate cares about: its extras ride along.
  faultlab::ShrinkStats stats;
  const FaultPlan small = faultlab::shrink_plan(
      plan,
      [](const FaultPlan& cand) {
        for (const FaultEvent& ev : cand.events) {
          if (ev.kind == FaultKind::Lie) return true;
        }
        return false;
      },
      &stats);
  ASSERT_EQ(small.size(), 1u);
  EXPECT_EQ(small.events[0].kind, FaultKind::Lie);
  EXPECT_NE(small.to_jsonl().find("\"origin\":\"byz\""), std::string::npos);
}

}  // namespace
