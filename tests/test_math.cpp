// Math substrate: primality, modular arithmetic, GF(p), polynomials, log*.
#include <gtest/gtest.h>

#include "agc/math/gf.hpp"
#include "agc/math/iterated_log.hpp"
#include "agc/math/polynomial.hpp"
#include "agc/math/primes.hpp"

namespace {

using namespace agc::math;

TEST(Primes, SmallValues) {
  EXPECT_FALSE(is_prime(0));
  EXPECT_FALSE(is_prime(1));
  EXPECT_TRUE(is_prime(2));
  EXPECT_TRUE(is_prime(3));
  EXPECT_FALSE(is_prime(4));
  EXPECT_TRUE(is_prime(5));
  EXPECT_FALSE(is_prime(1000));
  EXPECT_TRUE(is_prime(1009));
}

TEST(Primes, AgainstSieve) {
  // Cross-check Miller-Rabin against a classic sieve up to 10000.
  const int limit = 10000;
  std::vector<bool> composite(limit + 1, false);
  for (int i = 2; i * i <= limit; ++i) {
    if (!composite[i]) {
      for (int j = i * i; j <= limit; j += i) composite[j] = true;
    }
  }
  for (int i = 2; i <= limit; ++i) {
    EXPECT_EQ(is_prime(i), !composite[i]) << i;
  }
}

TEST(Primes, LargeKnownValues) {
  EXPECT_TRUE(is_prime(2147483647ULL));          // Mersenne prime 2^31-1
  EXPECT_TRUE(is_prime(1000000007ULL));
  EXPECT_TRUE(is_prime(18446744073709551557ULL));  // largest 64-bit prime
  EXPECT_FALSE(is_prime(18446744073709551555ULL));
  EXPECT_FALSE(is_prime(3215031751ULL));  // strong pseudoprime to bases 2,3,5,7
}

TEST(Primes, NextPrime) {
  EXPECT_EQ(next_prime(0), 2u);
  EXPECT_EQ(next_prime(8), 11u);
  EXPECT_EQ(next_prime(11), 11u);
  EXPECT_EQ(next_prime_above(11), 13u);
  EXPECT_EQ(next_prime(1000000), 1000003u);
}

TEST(Primes, BertrandWindow) {
  // A prime always exists in [n, 2n): the AG modulus search relies on it.
  for (std::uint64_t n = 2; n < 4000; n = n * 3 / 2 + 1) {
    const auto p = prime_in_range(n, 2 * n);
    ASSERT_TRUE(p.has_value()) << n;
    EXPECT_GE(*p, n);
    EXPECT_LT(*p, 2 * n);
  }
}

TEST(Primes, MulModAndPowMod) {
  const std::uint64_t m = 18446744073709551557ULL;
  EXPECT_EQ(mul_mod(m - 1, m - 1, m), 1u);  // (-1)^2 = 1
  EXPECT_EQ(pow_mod(2, 64, 97), (1ULL << 32) % 97 * ((1ULL << 32) % 97) % 97);
  EXPECT_EQ(pow_mod(5, 0, 7), 1u);
  EXPECT_EQ(pow_mod(5, 1, 1), 0u);
}

TEST(Zm, GroupLaws) {
  const Zm z(12);
  EXPECT_EQ(z.add(7, 8), 3u);
  EXPECT_EQ(z.sub(3, 8), 7u);
  EXPECT_EQ(z.neg(0), 0u);
  EXPECT_EQ(z.neg(5), 7u);
  for (std::uint64_t a = 0; a < 12; ++a) {
    EXPECT_EQ(z.add(a, z.neg(a)), 0u);
    EXPECT_EQ(z.sub(z.add(a, 5), 5), a);
  }
}

TEST(GFTest, FieldLaws) {
  const GF f(101);
  for (std::uint64_t a = 1; a < 101; a += 7) {
    EXPECT_EQ(f.mul(a, f.inv(a)), 1u) << a;
  }
  EXPECT_EQ(f.pow(2, 100), 1u);  // Fermat
}

TEST(PolynomialTest, DigitsRoundTrip) {
  const GF f(7);
  // 123 = 4 + 3*7 + 2*49 -> coefficients [4, 3, 2]
  const auto p = Polynomial::from_digits(f, 123, 4);
  ASSERT_EQ(p.coefficients().size(), 3u);  // trailing zeros trimmed
  EXPECT_EQ(p.coefficients()[0], 4u);
  EXPECT_EQ(p.coefficients()[1], 3u);
  EXPECT_EQ(p.coefficients()[2], 2u);
  EXPECT_EQ(p.eval(0), 4u);
  EXPECT_EQ(p.eval(1), (4 + 3 + 2) % 7u);
}

TEST(PolynomialTest, DistinctValuesDistinctPolys) {
  const GF f(11);
  for (std::uint64_t x = 0; x < 50; ++x) {
    for (std::uint64_t y = x + 1; y < 50; ++y) {
      EXPECT_FALSE(Polynomial::from_digits(f, x, 3) ==
                   Polynomial::from_digits(f, y, 3));
    }
  }
}

TEST(PolynomialTest, DegreeDBoundsAgreement) {
  // Two distinct degree-<=d polynomials agree on at most d points — the
  // heart of Linial's reduction.
  const GF f(31);
  const int d = 3;
  for (std::uint64_t x = 0; x < 40; x += 3) {
    for (std::uint64_t y = x + 1; y < 40; y += 5) {
      const auto px = Polynomial::from_digits(f, x, d);
      const auto py = Polynomial::from_digits(f, y, d);
      int agreements = 0;
      for (std::uint64_t e = 0; e < 31; ++e) {
        if (px.eval(e) == py.eval(e)) ++agreements;
      }
      EXPECT_LE(agreements, d);
    }
  }
}

TEST(IteratedLog, Values) {
  EXPECT_EQ(log_star(1), 0);
  EXPECT_EQ(log_star(2), 1);
  EXPECT_EQ(log_star(4), 2);
  EXPECT_EQ(log_star(16), 3);
  EXPECT_EQ(log_star(65536), 4);
  EXPECT_EQ(log_star(1ULL << 63), 4);  // 63 -> 5.98 -> 2.58 -> 1.37
}

TEST(IteratedLog, Log2Helpers) {
  EXPECT_EQ(log2_floor(1), 0);
  EXPECT_EQ(log2_floor(2), 1);
  EXPECT_EQ(log2_floor(3), 1);
  EXPECT_EQ(log2_ceil(1), 0);
  EXPECT_EQ(log2_ceil(3), 2);
  EXPECT_EQ(log2_ceil(1ULL << 40), 40);
  EXPECT_EQ(log2_ceil((1ULL << 40) + 1), 41);
}

}  // namespace
