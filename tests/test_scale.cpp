// The web-graph-scale substrate (docs/SCALE.md): frozen CSR vs mutable
// backend conformance, streamed-vs-materialized generator bit-identity,
// bit-packed color storage, and the flat runner's color contract against the
// engine pipeline — across thread counts.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "agc/coloring/pipeline.hpp"
#include "agc/exec/executor.hpp"
#include "agc/graph/frozen.hpp"
#include "agc/graph/generators.hpp"
#include "agc/graph/spec.hpp"
#include "agc/graph/view.hpp"
#include "agc/runtime/trace.hpp"
#include "agc/scale/flat.hpp"
#include "agc/scale/packed.hpp"

namespace {

using namespace agc;
using graph::Color;
using graph::FrozenGraph;
using graph::Graph;
using graph::GraphSpec;
using graph::GraphView;
using graph::Vertex;

// --- GraphView conformance: both backends answer identically ----------------

void expect_view_conformance(GraphView a, GraphView b) {
  ASSERT_EQ(a.n(), b.n());
  ASSERT_EQ(a.m(), b.m());
  EXPECT_EQ(a.max_degree(), b.max_degree());
  for (Vertex v = 0; v < a.n(); ++v) {
    ASSERT_EQ(a.degree(v), b.degree(v)) << "vertex " << v;
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
        << "vertex " << v;
  }
  EXPECT_EQ(graph::edge_list(a), graph::edge_list(b));
  for (Vertex v = 0; v < a.n(); ++v) {
    for (const Vertex u : a.neighbors(v)) {
      EXPECT_TRUE(a.has_edge(v, u));
      EXPECT_TRUE(b.has_edge(v, u));
    }
  }
  // A few guaranteed non-edges (self-loops never exist).
  for (Vertex v = 0; v < a.n(); ++v) {
    EXPECT_FALSE(a.has_edge(v, v));
    EXPECT_FALSE(b.has_edge(v, v));
  }
}

TEST(FrozenGraph, ConformsToMutableBackend) {
  for (const char* spec :
       {"gnp:n=300,p=0.03,seed=5", "regular:n=200,d=8,seed=3", "grid:12,17",
        "star:40", "path:1", "powerlaw:n=400,gamma=2.5,avgdeg=8,seed=9"}) {
    SCOPED_TRACE(spec);
    const Graph g = GraphSpec::parse(spec).build();
    const FrozenGraph f = FrozenGraph::from_graph(g);
    expect_view_conformance(GraphView(g), GraphView(f));
  }
}

TEST(FrozenGraph, EmptyAndIsolated) {
  const Graph g(5);  // no edges at all
  const FrozenGraph f = FrozenGraph::from_graph(g);
  EXPECT_EQ(f.n(), 5u);
  EXPECT_EQ(f.m(), 0u);
  EXPECT_EQ(f.max_degree(), 0u);
  expect_view_conformance(GraphView(g), GraphView(f));

  const FrozenGraph none;
  EXPECT_EQ(none.n(), 0u);
  EXPECT_EQ(none.m(), 0u);
}

TEST(FrozenGraph, FromCsrRejectsMalformedShapes) {
  EXPECT_THROW(FrozenGraph::from_csr({}, {}), std::invalid_argument);
  EXPECT_THROW(FrozenGraph::from_csr({1, 2}, {0}), std::invalid_argument);
  EXPECT_THROW(FrozenGraph::from_csr({0, 2}, {1}), std::invalid_argument);
  EXPECT_THROW(FrozenGraph::from_csr({0, 2, 1}, {1, 0}), std::invalid_argument);
}

// --- Streamed generators: bit-identical to build-then-freeze ----------------

TEST(StreamedGenerators, GnpMatchesMaterialized) {
  for (const double p : {0.0, 0.002, 0.05, 0.5, 1.0}) {
    SCOPED_TRACE(p);
    const auto streamed = graph::stream_gnp_frozen(500, p, 42);
    const auto frozen = FrozenGraph::from_graph(graph::random_gnp(500, p, 42));
    EXPECT_EQ(streamed, frozen);
  }
}

TEST(StreamedGenerators, PowerlawMatchesMaterialized) {
  for (const double gamma : {2.1, 2.5, 3.0}) {
    SCOPED_TRACE(gamma);
    const auto streamed = graph::stream_powerlaw_frozen(600, gamma, 10.0, 7);
    const auto frozen =
        FrozenGraph::from_graph(graph::random_powerlaw(600, gamma, 10.0, 7));
    EXPECT_EQ(streamed, frozen);
    EXPECT_GT(streamed.m(), 0u);
  }
}

TEST(StreamedGenerators, PowerlawDegreesSkew) {
  // Chung-Lu with the descending weight sequence: early vertices carry the
  // heavy tail, and the mean degree lands near the requested one.
  const auto f = graph::stream_powerlaw_frozen(2000, 2.5, 8.0, 11);
  const double mean = 2.0 * double(f.m()) / double(f.n());
  EXPECT_GT(mean, 4.0);
  EXPECT_LT(mean, 12.0);
  std::size_t head = 0, tail = 0;
  for (Vertex v = 0; v < 100; ++v) head += f.degree(v);
  for (Vertex v = 1900; v < 2000; ++v) tail += f.degree(v);
  EXPECT_GT(head, 4 * tail);
}

TEST(StreamedGenerators, SpecBuildFrozenMatchesBuild) {
  for (const char* spec :
       {"gnp:n=400,p=0.01,seed=3", "powerlaw:n=300,gamma=2.2,avgdeg=6,seed=1",
        "regular:n=120,d=6,seed=8", "hypercube:6"}) {
    SCOPED_TRACE(spec);
    const auto s = GraphSpec::parse(spec);
    EXPECT_EQ(s.build_frozen(), FrozenGraph::from_graph(s.build()));
  }
}

// --- The resolve() seam -----------------------------------------------------

TEST(ResolvedGraph, BackendFollowsMutabilityNeed) {
  const auto spec = GraphSpec::parse("gnp:n=100,p=0.05,seed=2");
  auto ro = spec.resolve(graph::Mutability::ReadOnly);
  EXPECT_TRUE(ro.frozen());
  EXPECT_THROW((void)ro.graph(), std::logic_error);

  auto mu = spec.resolve(graph::Mutability::Mutable);
  EXPECT_FALSE(mu.frozen());
  EXPECT_EQ(mu.graph().n(), 100u);
  expect_view_conformance(ro.view(), mu.view());

  // Views stay valid across moves of the owner (heap-backed storage).
  auto moved = std::move(ro);
  EXPECT_EQ(moved.view().n(), 100u);
}

TEST(ResolvedGraph, PowerlawSpecRoundTrips) {
  const auto s = GraphSpec::parse("powerlaw:500,2.5,8,13");
  EXPECT_EQ(s.to_string(), "powerlaw:n=500,gamma=2.5,avgdeg=8,seed=13");
  EXPECT_EQ(GraphSpec::parse(s.to_string()), s);
  EXPECT_GT(s.estimated_bytes(), 0u);
}

// --- PackedColors -----------------------------------------------------------

TEST(PackedColors, WidthForCoversBoundaries) {
  EXPECT_EQ(scale::PackedColors::width_for(0), 1u);
  EXPECT_EQ(scale::PackedColors::width_for(1), 1u);
  EXPECT_EQ(scale::PackedColors::width_for(2), 2u);
  EXPECT_EQ(scale::PackedColors::width_for(255), 8u);
  EXPECT_EQ(scale::PackedColors::width_for(256), 9u);
  EXPECT_EQ(scale::PackedColors::width_for(~std::uint64_t{0}), 64u);
}

TEST(PackedColors, RoundTripsAcrossWordStraddles) {
  // Widths that do not divide 64 force entries to straddle word boundaries.
  for (const std::uint32_t bits : {1u, 3u, 7u, 13u, 31u, 33u, 63u, 64u}) {
    SCOPED_TRACE(bits);
    const std::size_t n = 257;
    scale::PackedColors p(n, bits);
    const std::uint64_t mask =
        bits == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << bits) - 1;
    for (std::size_t i = 0; i < n; ++i) {
      p.set(i, (0x9E3779B97F4A7C15ULL * (i + 1)) & mask);
    }
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(p.get(i), (0x9E3779B97F4A7C15ULL * (i + 1)) & mask) << i;
    }
    // Overwrites must not disturb neighbors.
    p.set(100, 0);
    EXPECT_EQ(p.get(99), (0x9E3779B97F4A7C15ULL * 100) & mask);
    EXPECT_EQ(p.get(101), (0x9E3779B97F4A7C15ULL * 102) & mask);
    EXPECT_EQ(p.get(100), 0u);
  }
}

// --- Flat runner: engine-color contract across threads and backends ---------

TEST(FlatRunner, MatchesEnginePipelineAcrossThreadsAndBackends) {
  for (const char* spec :
       {"gnp:n=400,p=0.02,seed=17", "regular:n=300,d=10,seed=4",
        "powerlaw:n=350,gamma=2.4,avgdeg=7,seed=6"}) {
    SCOPED_TRACE(spec);
    const auto s = GraphSpec::parse(spec);
    const Graph g = s.build();
    const FrozenGraph f = s.build_frozen();

    coloring::PipelineOptions popts;
    const auto oracle = coloring::color_delta_plus_one(GraphView(g), popts);
    ASSERT_TRUE(oracle.proper);

    for (const std::size_t threads : {1u, 2u, 8u}) {
      SCOPED_TRACE(threads);
      scale::FlatOptions fo;
      fo.threads = threads;
      const auto flat = scale::color_delta_plus_one_flat(GraphView(f), fo);
      EXPECT_TRUE(flat.converged);
      EXPECT_TRUE(flat.proper);
      EXPECT_EQ(flat.colors, oracle.colors);
      EXPECT_EQ(flat.rounds, oracle.rounds);
      EXPECT_GT(flat.state_bytes, 0u);
    }
  }
}

TEST(FlatRunner, TrivialGraphs) {
  const FrozenGraph f = GraphSpec::parse("path:1").build_frozen();
  const auto one = scale::color_delta_plus_one_flat(GraphView(f));
  EXPECT_TRUE(one.converged);
  EXPECT_TRUE(one.proper);
  EXPECT_EQ(one.colors.size(), 1u);

  const FrozenGraph none;
  const auto zero = scale::color_delta_plus_one_flat(GraphView(none));
  EXPECT_TRUE(zero.converged);
  EXPECT_TRUE(zero.colors.empty());
}

// --- Cross-backend golden traces --------------------------------------------

TEST(FrozenGraph, EnginePipelineTraceIdenticalAcrossBackends) {
  const auto s = GraphSpec::parse("gnp:n=250,p=0.04,seed=23");
  const Graph g = s.build();
  const FrozenGraph f = s.build_frozen();

  auto run_traced = [](GraphView view, std::size_t threads) {
    coloring::PipelineOptions opts;
    if (threads > 1) opts.iter.executor = exec::make_executor(threads);
    runtime::TraceRecorder trace(view, nullptr);
    opts.iter.on_round = trace.observer();
    const auto rep = coloring::color_delta_plus_one(view, opts);
    std::vector<std::size_t> digest;
    for (const auto& p : trace.points()) {
      digest.push_back(p.round);
      digest.push_back(p.distinct_colors);
      digest.push_back(p.monochromatic_edges);
    }
    digest.push_back(rep.rounds);
    digest.insert(digest.end(), rep.colors.begin(), rep.colors.end());
    return digest;
  };

  const auto base = run_traced(GraphView(g), 1);
  for (const std::size_t threads : {1u, 2u, 8u}) {
    SCOPED_TRACE(threads);
    EXPECT_EQ(run_traced(GraphView(f), threads), base);
    EXPECT_EQ(run_traced(GraphView(g), threads), base);
  }
}

}  // namespace
