// Trace recorder and metrics accounting units.
#include <gtest/gtest.h>

#include <sstream>

#include "agc/coloring/ag.hpp"
#include "agc/coloring/linial.hpp"
#include "agc/coloring/pipeline.hpp"
#include "agc/graph/generators.hpp"
#include "agc/runtime/trace.hpp"

namespace {

using namespace agc;

TEST(Trace, RecordsMonotoneFinalization) {
  const auto g = graph::random_regular(150, 6, 2);
  auto lin = coloring::linial_color(g, coloring::identity_coloring(g.n()), g.n(), 6);
  const std::uint64_t q = coloring::ag_modulus(6, graph::max_color(lin.colors) + 1);
  coloring::AgRule rule(q);

  runtime::TraceRecorder trace(g, [&](runtime::Color c) { return rule.is_final(c); });
  runtime::IterativeOptions io;
  io.on_round = trace.observer();
  auto res = runtime::run_locally_iterative(g, std::move(lin.colors), rule, io);
  ASSERT_TRUE(res.converged);

  const auto& pts = trace.points();
  ASSERT_EQ(pts.size(), res.rounds + 1);  // includes the round-0 snapshot
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    EXPECT_EQ(pts[i].round, i);
    EXPECT_LE(pts[i].finalized, pts[i + 1].finalized);  // finalization is monotone
    EXPECT_EQ(pts[i].monochromatic_edges, 0u);          // proper throughout
  }
  EXPECT_EQ(pts.back().finalized, g.n());
}

TEST(Trace, SplicesPipelineStages) {
  const auto g = graph::random_regular(100, 5, 9);
  runtime::TraceRecorder trace(g, nullptr);
  coloring::PipelineOptions opts;
  opts.iter.on_round = trace.observer();
  const auto rep = coloring::color_delta_plus_one(g, opts);
  ASSERT_TRUE(rep.converged);
  // Rounds are strictly increasing across stage boundaries.
  const auto& pts = trace.points();
  for (std::size_t i = 0; i + 1 < pts.size(); ++i) {
    EXPECT_LT(pts[i].round, pts[i + 1].round);
  }
  EXPECT_EQ(pts.back().round, rep.rounds);
}

TEST(Trace, CsvAndAsciiOutput) {
  const auto g = graph::cycle(8);
  runtime::TraceRecorder trace(g, nullptr);
  std::vector<runtime::Color> colors = {0, 1, 0, 1, 0, 1, 0, 1};
  trace.record(0, colors);
  std::stringstream csv;
  trace.write_csv(csv);
  EXPECT_EQ(csv.str(),
            "round,distinct_colors,finalized,monochromatic_edges\n0,2,0,0\n");
  std::stringstream art;
  trace.write_ascii(art);
  EXPECT_NE(art.str().find('#'), std::string::npos);
}

TEST(Metrics, BitsScaleWithPaletteWidth) {
  // The same graph colored from a wider ID space must ship more bits.
  const auto g = graph::random_regular(200, 6, 4);
  coloring::PipelineOptions narrow;
  coloring::PipelineOptions wide;
  wide.id_space_factor = 1ULL << 40;
  const auto a = coloring::color_delta_plus_one(g, narrow);
  const auto b = coloring::color_delta_plus_one(g, wide);
  ASSERT_TRUE(a.converged && b.converged);
  EXPECT_GT(b.metrics.total_bits, a.metrics.total_bits);
}

TEST(Metrics, MergeSumsCountersButMaxesEdgeBits) {
  // max_edge_bits is a per-edge maximum, not a flow: merging two stages (or
  // two shards) must take the max, never the sum.
  runtime::Metrics a;
  a.rounds = 2;
  a.messages = 10;
  a.total_bits = 100;
  a.max_edge_bits = 40;
  runtime::Metrics b;
  b.rounds = 3;
  b.messages = 5;
  b.total_bits = 50;
  b.max_edge_bits = 25;
  a.merge(b);
  EXPECT_EQ(a.rounds, 5u);
  EXPECT_EQ(a.messages, 15u);
  EXPECT_EQ(a.total_bits, 150u);
  EXPECT_EQ(a.max_edge_bits, 40u);  // max, not 65

  runtime::Metrics c;
  c.max_edge_bits = 90;
  a.merge(c);
  EXPECT_EQ(a.max_edge_bits, 90u);
}

TEST(Metrics, PipelineMaxEdgeBitsIsMaxAcrossStages) {
  // Regression for the old sum-across-stages bug: the pipeline's
  // max_edge_bits must be achievable by a single stage, i.e. bounded by its
  // own total_bits and far below the sum of stage totals.
  const auto g = graph::random_regular(120, 5, 3);
  const auto rep = coloring::color_delta_plus_one(g);
  ASSERT_TRUE(rep.converged);
  EXPECT_GT(rep.metrics.max_edge_bits, 0u);
  EXPECT_LE(rep.metrics.max_edge_bits, rep.metrics.total_bits);
}

TEST(Metrics, SummaryMentionsEveryCounter) {
  runtime::Metrics m;
  m.rounds = 3;
  m.messages = 7;
  m.total_bits = 42;
  m.max_edge_bits = 9;
  const auto s = m.summary();
  EXPECT_NE(s.find("rounds=3"), std::string::npos);
  EXPECT_NE(s.find("messages=7"), std::string::npos);
  EXPECT_NE(s.find("bits=42"), std::string::npos);
}

}  // namespace
