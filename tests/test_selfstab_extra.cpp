// Self-stabilization robustness: parameter sweeps of the exact mode's number
// theory, restricted-bandwidth operation, continuous-fault torture, growth,
// and the Section 4.2 adjustment-radius guarantees.
#include <gtest/gtest.h>

#include "agc/graph/checks.hpp"
#include "agc/graph/generators.hpp"
#include "agc/runtime/faults.hpp"
#include "agc/selfstab/ss_coloring.hpp"
#include "agc/selfstab/ss_line.hpp"
#include "agc/selfstab/ss_mis.hpp"

namespace {

using namespace agc;
using selfstab::PaletteMode;
using selfstab::SsConfig;

TEST(SsConfigSweep, ExactModeConstructsForAllSmallDelta) {
  // The exact mode needs q_excl^2 <= p^3 for the largest prime p <= 2*Delta+1;
  // verify the arithmetic works out for every Delta up to 128 (prime gaps
  // could in principle break it — they don't).
  for (std::size_t delta = 1; delta <= 128; ++delta) {
    ASSERT_NO_THROW({
      SsConfig cfg(100000, delta, PaletteMode::ExactDeltaPlusOne);
      EXPECT_EQ(cfg.final_palette(), delta + 1);
    }) << "delta=" << delta;
  }
}

TEST(SsConfigSweep, StepNeverEscapesStateSpace) {
  // Property: from any (possibly corrupted) state and any neighbor multiset
  // drawn from the state space, step() stays inside the state space.
  SsConfig cfg(500, 6, PaletteMode::ExactDeltaPlusOne);
  graph::Rng rng(5);
  for (int trial = 0; trial < 5000; ++trial) {
    const std::uint64_t color = rng.below(cfg.span() + 10);  // incl. invalid
    std::vector<std::uint64_t> nbrs(rng.below(7));
    for (auto& c : nbrs) c = rng.below(cfg.span());
    std::sort(nbrs.begin(), nbrs.end());
    const auto next = cfg.step(rng.below(500), cfg.truncate(color), nbrs);
    EXPECT_LT(next, cfg.span());
  }
}

TEST(SsCongest, ColorsFitInLogarithmicMessages) {
  // The self-stabilizing coloring sends one color per round; its width is
  // O(log n + log Delta) bits, so it runs under CONGEST.
  const auto g = graph::random_regular(150, 6, 3);
  SsConfig cfg(g.n(), 6, PaletteMode::ODelta);
  ASSERT_LE(cfg.color_bits(), 32u);
  runtime::EngineOptions eo;
  eo.delta_bound = 6;
  runtime::Engine engine(g, runtime::Transport(runtime::Model::CONGEST, 32), eo);
  engine.install(selfstab::ss_coloring_factory(cfg));
  const auto rep = selfstab::run_until_stable(engine, cfg, 10000);
  EXPECT_TRUE(rep.stabilized);
}

TEST(SsTorture, ContinuousFaultsThenQuiescence) {
  // Faults EVERY round for 60 rounds; stabilization measured after the last.
  const std::size_t dmax = 8;
  const auto g = graph::random_bounded_degree(200, dmax, 600, 13);
  SsConfig cfg(g.n(), dmax, PaletteMode::ExactDeltaPlusOne);
  runtime::EngineOptions eo;
  eo.delta_bound = dmax;
  runtime::Engine engine(g, runtime::Transport(runtime::Model::LOCAL), eo);
  engine.install(selfstab::ss_coloring_factory(cfg));

  runtime::Adversary adv(17);
  for (int round = 0; round < 60; ++round) {
    adv.corrupt_random(engine, 3, cfg.span());
    adv.churn_edges(engine, 1, 1, dmax);
    engine.step();
  }
  const auto rep = selfstab::run_until_stable(engine, cfg, 10000);
  EXPECT_TRUE(rep.stabilized);
  EXPECT_LE(graph::max_color(rep.colors), dmax);
}

TEST(SsGrowth, VerticesJoinDuringExecution) {
  const std::size_t dmax = 6;
  graph::Graph g = graph::cycle(40);
  SsConfig cfg(200, dmax, PaletteMode::ODelta);  // n-bound covers future growth
  runtime::EngineOptions eo;
  eo.delta_bound = dmax;
  eo.n_bound = 200;
  runtime::Engine engine(std::move(g), runtime::Transport(runtime::Model::LOCAL),
                         eo);
  engine.install(selfstab::ss_coloring_factory(cfg));
  ASSERT_TRUE(selfstab::run_until_stable(engine, cfg, 5000).stabilized);

  graph::Rng rng(23);
  for (int i = 0; i < 30; ++i) {
    const auto v = engine.add_vertex();
    for (int k = 0; k < 3; ++k) {
      const auto u = static_cast<graph::Vertex>(rng.below(v));
      if (engine.graph().degree(u) < dmax && engine.graph().degree(v) < dmax) {
        engine.add_edge(v, u);
      }
    }
    engine.step();  // joins are interleaved with execution
  }
  const auto rep = selfstab::run_until_stable(engine, cfg, 5000);
  EXPECT_TRUE(rep.stabilized);
  EXPECT_TRUE(graph::is_proper_coloring(engine.graph(), rep.colors));
}

TEST(SsMisExtra, StableMisVertexSurvivesRemoteFaults) {
  // Theorem 4.6's core: a vertex in the MIS whose 1-hop neighborhood is
  // untouched stays in the MIS, whatever happens further away.
  const auto g = graph::random_regular(150, 5, 47);
  SsConfig cfg(g.n(), 5, PaletteMode::ODelta);
  runtime::EngineOptions eo;
  eo.delta_bound = 5;
  runtime::Engine engine(g, runtime::Transport(runtime::Model::LOCAL), eo);
  engine.install(selfstab::ss_mis_factory(cfg));
  ASSERT_TRUE(selfstab::run_until_mis_stable(engine, cfg, 20000).stabilized);

  const auto mis_before = selfstab::current_mis(engine);
  // Pick an MIS vertex and fault everything at distance >= 2 from it.
  graph::Vertex anchor = 0;
  while (!mis_before[anchor]) ++anchor;
  std::vector<bool> protected_zone(g.n(), false);
  protected_zone[anchor] = true;
  for (auto u : g.neighbors(anchor)) protected_zone[u] = true;

  graph::Rng rng(3);
  for (graph::Vertex v = 0; v < g.n(); ++v) {
    if (!protected_zone[v] && rng.below(3) == 0) {
      engine.corrupt_ram(v, 0, rng.below(cfg.span()));
      engine.corrupt_ram(v, 1, rng.below(3));
    }
  }
  const auto rep = selfstab::run_until_mis_stable(engine, cfg, 20000);
  ASSERT_TRUE(rep.stabilized);
  EXPECT_TRUE(rep.in_mis[anchor]);
}

TEST(SsLineExtra, EdgeChurnHealsEdgeColoring) {
  const std::size_t dmax = 6;
  const auto g = graph::random_bounded_degree(80, dmax, 180, 29);
  selfstab::SsLineConfig cfg(g.n(), dmax, selfstab::LineTask::EdgeColoring);
  runtime::EngineOptions eo;
  eo.delta_bound = dmax;
  runtime::Engine engine(g, runtime::Transport(runtime::Model::LOCAL), eo);
  engine.install(selfstab::ss_line_factory(cfg));
  ASSERT_TRUE(selfstab::run_until_line_stable(engine, cfg, 60000).stabilized);

  runtime::Adversary adv(31);
  adv.churn_edges(engine, 15, 15, dmax);
  const auto rep = selfstab::run_until_line_stable(engine, cfg, 60000);
  ASSERT_TRUE(rep.stabilized);
  const auto colors = selfstab::current_edge_colors(engine);
  EXPECT_TRUE(graph::is_proper_edge_coloring(engine.graph(), colors));
  EXPECT_LT(graph::max_color(colors), 2 * dmax - 1);
}

TEST(SsModes, ODeltaPaletteIsActuallyODelta) {
  for (std::size_t delta : {2u, 5u, 11u, 23u}) {
    SsConfig cfg(10000, delta, PaletteMode::ODelta);
    // The I_0 AG field is the Excl stage's field: about 4*Delta.
    EXPECT_LE(cfg.final_palette(), 5 * delta + 12);
    EXPECT_GT(cfg.final_palette(), delta);
  }
}

}  // namespace
