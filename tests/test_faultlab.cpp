// The fault laboratory: channel adversaries inside the message path,
// recorded/replayable/shrinkable fault plans, the stabilization harness with
// its convergence watchdog, and the PeriodicAdversary boundary semantics —
// all pinned across 1/2/8 executor threads.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <vector>

#include "agc/arb/arbag.hpp"
#include "agc/arb/eps_coloring.hpp"
#include "agc/edge/edge_coloring.hpp"
#include "agc/exec/executor.hpp"
#include "agc/faultlab/channel.hpp"
#include "agc/faultlab/harness.hpp"
#include "agc/faultlab/plan.hpp"
#include "agc/faultlab/shrink.hpp"
#include "agc/graph/checks.hpp"
#include "agc/graph/generators.hpp"
#include "agc/runtime/faults.hpp"
#include "agc/selfstab/ss_coloring.hpp"
#include "agc/selfstab/ss_line.hpp"
#include "agc/selfstab/ss_mis.hpp"

namespace {

using namespace agc;
using faultlab::ChannelAdversary;
using faultlab::ChannelFaultConfig;
using faultlab::ChannelPlayback;
using faultlab::FaultPlan;
using faultlab::FaultPlanRecorder;
using faultlab::PlanAdversary;
using runtime::FaultEvent;
using runtime::FaultKind;
using selfstab::PaletteMode;
using selfstab::SsConfig;

runtime::Engine make_engine(graph::Graph g, std::size_t delta_bound,
                            runtime::Model model = runtime::Model::LOCAL) {
  runtime::EngineOptions opts;
  opts.delta_bound = delta_bound;
  return runtime::Engine(std::move(g), runtime::Transport(model), opts);
}

// Tiny two-vertex probe program: broadcasts 100 + round, logs what arrives.
class ProbeProgram final : public runtime::VertexProgram {
 public:
  explicit ProbeProgram(std::vector<std::vector<std::uint64_t>>* log)
      : log_(log) {}
  void on_send(const runtime::VertexEnv& env, runtime::OutboxRef& out) override {
    out.broadcast(runtime::Word{100 + env.round, 8});
  }
  void on_receive(const runtime::VertexEnv&,
                  const runtime::InboxRef& in) override {
    std::vector<std::uint64_t> got;
    for (std::size_t p = 0; p < in.ports(); ++p) {
      for (const runtime::Word& w : in.from_port(p)) got.push_back(w.value);
    }
    log_->push_back(std::move(got));
  }

 private:
  std::vector<std::vector<std::uint64_t>>* log_;
};

graph::Graph k2() {
  graph::Graph g(2);
  g.add_edge(0, 1);
  return g;
}

// ---------------------------------------------------------------------------
// Channel fault semantics on a single edge
// ---------------------------------------------------------------------------

TEST(ChannelSemantics, DropDiscardsTheWholeMessage) {
  auto engine = make_engine(k2(), 1);
  std::vector<std::vector<std::uint64_t>> log;
  engine.install([&](const runtime::VertexEnv&) {
    return std::make_unique<ProbeProgram>(&log);
  });
  ChannelFaultConfig cfg;
  cfg.drop_per_million = 1'000'000;
  ChannelAdversary chan(cfg);
  engine.set_channel(&chan);
  engine.step();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_TRUE(log[0].empty());
  EXPECT_TRUE(log[1].empty());
  EXPECT_EQ(chan.events(), 2u);  // one per directed port
}

TEST(ChannelSemantics, CorruptFlipsOneBitWithinDeclaredWidth) {
  auto engine = make_engine(k2(), 1);
  std::vector<std::vector<std::uint64_t>> log;
  engine.install([&](const runtime::VertexEnv&) {
    return std::make_unique<ProbeProgram>(&log);
  });
  ChannelFaultConfig cfg;
  cfg.corrupt_per_million = 1'000'000;
  FaultPlanRecorder rec;
  ChannelAdversary chan(cfg, &rec);
  engine.set_channel(&chan);
  engine.step();
  ASSERT_EQ(log.size(), 2u);
  for (const auto& got : log) {
    ASSERT_EQ(got.size(), 1u);
    EXPECT_NE(got[0], 100u);     // some bit flipped
    EXPECT_LT(got[0], 256u);     // still fits the declared 8-bit width
  }
  const FaultPlan plan = rec.take();
  ASSERT_EQ(plan.size(), 2u);
  for (const FaultEvent& ev : plan.events) {
    EXPECT_EQ(ev.kind, FaultKind::Corrupt);
    EXPECT_LT(ev.value, 8u);  // the flipped bit index honors the width
  }
}

TEST(ChannelSemantics, DuplicateDeliversTheWordTwice) {
  auto engine = make_engine(k2(), 1);
  std::vector<std::vector<std::uint64_t>> log;
  engine.install([&](const runtime::VertexEnv&) {
    return std::make_unique<ProbeProgram>(&log);
  });
  ChannelFaultConfig cfg;
  cfg.duplicate_per_million = 1'000'000;
  ChannelAdversary chan(cfg);
  engine.set_channel(&chan);
  engine.step();
  ASSERT_EQ(log.size(), 2u);
  for (const auto& got : log) {
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], 100u);
    EXPECT_EQ(got[1], 100u);
  }
}

TEST(ChannelSemantics, DelayHoldsOneRoundAndPrepends) {
  auto engine = make_engine(k2(), 1);
  std::vector<std::vector<std::uint64_t>> log;
  engine.install([&](const runtime::VertexEnv&) {
    return std::make_unique<ProbeProgram>(&log);
  });
  ChannelFaultConfig cfg;
  cfg.delay_per_million = 1'000'000;
  cfg.last_round = 0;  // only round 0 is attacked; the flush is in-flight
  ChannelAdversary chan(cfg);
  engine.set_channel(&chan);
  engine.step();  // round 0: both directions stashed
  engine.step();  // round 1: delayed word prepended to the live one
  engine.step();  // round 2: clean wire again
  ASSERT_EQ(log.size(), 6u);  // 2 vertices x 3 rounds
  EXPECT_TRUE(log[0].empty());
  EXPECT_TRUE(log[1].empty());
  EXPECT_EQ(log[2], (std::vector<std::uint64_t>{100, 101}));
  EXPECT_EQ(log[3], (std::vector<std::uint64_t>{100, 101}));
  EXPECT_EQ(log[4], (std::vector<std::uint64_t>{102}));
  EXPECT_EQ(log[5], (std::vector<std::uint64_t>{102}));
  EXPECT_EQ(chan.events(), 2u);
}

// ---------------------------------------------------------------------------
// PeriodicAdversary boundary semantics
// ---------------------------------------------------------------------------

TEST(PeriodicBoundary, RoundZeroNeverFires) {
  const auto g = graph::random_regular(40, 4, 3);
  SsConfig cfg(g.n(), g.max_degree(), PaletteMode::ODelta);
  auto engine = make_engine(g, g.max_degree());
  engine.install(selfstab::ss_coloring_factory(cfg));
  runtime::PeriodicAdversary adv(7, {.period = 1, .corrupt = 3});
  EXPECT_EQ(adv.inject(engine, 0), 0u);  // period divides 0, still quiet
  EXPECT_EQ(adv.total_events(), 0u);
  EXPECT_EQ(adv.inject(engine, 1), 3u);
}

TEST(PeriodicBoundary, LastRoundIsInclusive) {
  const auto g = graph::random_regular(40, 4, 4);
  SsConfig cfg(g.n(), g.max_degree(), PaletteMode::ODelta);
  auto engine = make_engine(g, g.max_degree());
  engine.install(selfstab::ss_coloring_factory(cfg));
  runtime::PeriodicAdversary adv(7, {.period = 5, .last_round = 10, .corrupt = 2});
  EXPECT_EQ(adv.inject(engine, 5), 2u);
  EXPECT_EQ(adv.inject(engine, 10), 2u);  // == last_round: fires
  EXPECT_EQ(adv.inject(engine, 15), 0u);  // > last_round: quiesced
  EXPECT_EQ(adv.total_events(), 4u);
}

TEST(PeriodicBoundary, FaultEventsEqualsAdversaryEventsAcrossEpochs) {
  const auto g = graph::random_gnp(80, 0.08, 9);
  SsConfig cfg(g.n(), g.max_degree(), PaletteMode::ODelta);
  auto engine = make_engine(g, g.max_degree());
  engine.install(selfstab::ss_coloring_factory(cfg));
  runtime::PeriodicAdversary adv(
      11, {.period = 3, .last_round = 12, .corrupt = 2, .edge_adds = 1,
           .edge_removes = 1, .dmax = g.max_degree() + 2});
  runtime::RunOptions opts;
  opts.adversary = &adv;
  opts.max_rounds = 4000;
  auto rep = selfstab::run_until_stable(engine, cfg, opts);
  ASSERT_TRUE(rep.stabilized);
  // Second epoch rolls up via absorb(): counts must still reconcile.
  auto rep2 = selfstab::run_until_stable(engine, cfg, opts);
  rep.absorb(rep2);
  EXPECT_EQ(rep.fault_events, adv.total_events());
}

TEST(PeriodicBoundary, ChurnVerticesCountsReconnectEdges) {
  const auto g = graph::random_regular(60, 4, 5);
  SsConfig cfg(g.n(), g.max_degree(), PaletteMode::ODelta);
  auto engine = make_engine(g, g.max_degree() + 3);
  engine.install(selfstab::ss_coloring_factory(cfg));
  FaultPlanRecorder rec;
  engine.set_fault_recorder(&rec);
  runtime::Adversary adv(21);
  adv.churn_vertices(engine, 3, 2, g.max_degree() + 3);
  adv.corrupt_random(engine, 4, cfg.span());
  adv.clone_neighbor(engine, 2);
  engine.set_fault_recorder(nullptr);
  // Every counted event left exactly one record — including the reconnect
  // add_edge events of churn_vertices.
  EXPECT_EQ(rec.take().size(), adv.events());
}

// ---------------------------------------------------------------------------
// Determinism across executor threads
// ---------------------------------------------------------------------------

selfstab::StabilizationReport run_ss_with_channel(
    std::size_t threads, std::uint64_t* chan_events = nullptr) {
  const auto g = graph::random_regular(150, 6, 31);
  SsConfig cfg(g.n(), g.max_degree(), PaletteMode::ODelta);
  auto engine = make_engine(g, g.max_degree());
  engine.install(selfstab::ss_coloring_factory(cfg));
  ChannelFaultConfig ccfg;
  ccfg.seed = 77;
  ccfg.drop_per_million = 30'000;
  ccfg.corrupt_per_million = 20'000;
  ccfg.duplicate_per_million = 20'000;
  ccfg.delay_per_million = 20'000;
  ccfg.first_round = 1;
  ccfg.last_round = 30;
  ChannelAdversary chan(ccfg);
  runtime::RunOptions opts;
  opts.channel = &chan;
  opts.max_rounds = 5000;
  if (threads > 1) opts.executor = exec::make_executor(threads);
  auto rep = selfstab::run_until_stable(engine, cfg, opts);
  if (chan_events != nullptr) *chan_events = chan.events();
  return rep;
}

TEST(ChannelDeterminism, TrajectoryIdenticalForOneTwoEightThreads) {
  std::uint64_t ev1 = 0;
  const auto base = run_ss_with_channel(1, &ev1);
  ASSERT_TRUE(base.stabilized);
  EXPECT_GT(base.fault_events, 0u);
  EXPECT_EQ(base.fault_events, ev1);
  for (const std::size_t threads : {2, 8}) {
    std::uint64_t ev = 0;
    const auto rep = run_ss_with_channel(threads, &ev);
    EXPECT_EQ(rep.colors, base.colors) << "threads=" << threads;
    EXPECT_EQ(rep.rounds, base.rounds) << "threads=" << threads;
    EXPECT_EQ(rep.fault_events, base.fault_events) << "threads=" << threads;
    EXPECT_EQ(ev, ev1) << "threads=" << threads;
    EXPECT_EQ(rep.metrics.messages, base.metrics.messages);
    EXPECT_EQ(rep.metrics.total_bits, base.metrics.total_bits);
  }
}

// ---------------------------------------------------------------------------
// Record -> replay -> shrink
// ---------------------------------------------------------------------------

struct RecordedRun {
  selfstab::StabilizationReport report;
  FaultPlan plan;
};

RecordedRun record_fuzz_run() {
  const auto g = graph::random_gnp(100, 0.07, 13);
  SsConfig cfg(g.n(), g.max_degree(), PaletteMode::ODelta);
  auto engine = make_engine(g, g.max_degree() + 2);
  engine.install(selfstab::ss_coloring_factory(cfg));
  FaultPlanRecorder rec;
  engine.set_fault_recorder(&rec);
  ChannelFaultConfig ccfg;
  ccfg.seed = 5;
  ccfg.drop_per_million = 40'000;
  ccfg.corrupt_per_million = 30'000;
  ccfg.delay_per_million = 20'000;
  ccfg.first_round = 1;
  ccfg.last_round = 20;
  ChannelAdversary chan(ccfg, &rec);
  runtime::PeriodicAdversary adv(
      3, {.period = 4, .last_round = 16, .corrupt = 3, .clones = 1,
          .edge_adds = 1, .edge_removes = 1, .dmax = g.max_degree() + 2});
  runtime::RunOptions opts;
  opts.adversary = &adv;
  opts.channel = &chan;
  opts.max_rounds = 5000;
  RecordedRun out;
  out.report = selfstab::run_until_stable(engine, cfg, opts);
  out.plan = rec.take();
  return out;
}

selfstab::StabilizationReport replay_run(const FaultPlan& plan,
                                         std::size_t threads) {
  const auto g = graph::random_gnp(100, 0.07, 13);
  SsConfig cfg(g.n(), g.max_degree(), PaletteMode::ODelta);
  auto engine = make_engine(g, g.max_degree() + 2);
  engine.install(selfstab::ss_coloring_factory(cfg));
  PlanAdversary adv(plan);
  ChannelPlayback chan(plan.events);
  runtime::RunOptions opts;
  opts.adversary = &adv;
  opts.channel = &chan;
  opts.max_rounds = 5000;
  if (threads > 1) opts.executor = exec::make_executor(threads);
  return selfstab::run_until_stable(engine, cfg, opts);
}

TEST(RecordReplay, ReplayedPlanReproducesTheRunBitForBit) {
  const RecordedRun live = record_fuzz_run();
  ASSERT_TRUE(live.report.stabilized);
  ASSERT_GT(live.plan.size(), 0u);
  EXPECT_EQ(live.plan.size(), live.report.fault_events);
  for (const std::size_t threads : {1, 2, 8}) {
    const auto rep = replay_run(live.plan, threads);
    EXPECT_EQ(rep.colors, live.report.colors) << "threads=" << threads;
    EXPECT_EQ(rep.rounds, live.report.rounds) << "threads=" << threads;
    EXPECT_EQ(rep.stabilized, live.report.stabilized);
    EXPECT_EQ(rep.fault_events, live.report.fault_events)
        << "threads=" << threads;
    EXPECT_EQ(rep.metrics.messages, live.report.metrics.messages);
    EXPECT_EQ(rep.metrics.total_bits, live.report.metrics.total_bits);
  }
}

TEST(RecordReplay, JsonlRoundTripsExactly) {
  const RecordedRun live = record_fuzz_run();
  std::istringstream in(live.plan.to_jsonl());
  const FaultPlan back = FaultPlan::parse(in);
  EXPECT_EQ(back.events, live.plan.events);
}

TEST(RecordReplay, ShrinkerReducesAFailingPlanToAFewEvents) {
  const RecordedRun live = record_fuzz_run();
  ASSERT_GT(live.plan.size(), 10u);  // a real campaign-sized plan

  // "Failing" predicate: replaying the candidate plan breaks the coloring at
  // some round (the fault-free trajectory stays proper forever).
  const auto g = graph::random_gnp(100, 0.07, 13);
  SsConfig cfg(g.n(), g.max_degree(), PaletteMode::ODelta);
  auto reproduces = [&](const FaultPlan& candidate) {
    auto engine = make_engine(g, g.max_degree() + 2);
    engine.install(selfstab::ss_coloring_factory(cfg));
    // Settle fault-free first.
    runtime::RunOptions settle;
    settle.max_rounds = 4000;
    if (!selfstab::run_until_stable(engine, cfg, settle).stabilized) {
      return false;
    }
    PlanAdversary adv(candidate);
    ChannelPlayback chan(candidate.events);
    engine.set_channel(&chan);
    const auto check = faultlab::coloring_check(cfg);
    bool broke = false;
    const std::size_t horizon =
        static_cast<std::size_t>(adv.last_event_round()) + 4;
    for (std::size_t r = 0; r < horizon; ++r) {
      engine.step();
      adv.inject(engine, r + 1);
      if (check(engine)) {
        broke = true;
        break;
      }
    }
    engine.set_channel(nullptr);
    return broke;
  };

  // The recorded plan replays against an engine that ALSO ran the recorded
  // pre-fault trajectory; here the predicate replays onto a freshly settled
  // engine instead, so first re-anchor rounds: keep events as-is (the ss
  // algorithm is memoryless once stable, and the adversary acts by absolute
  // round — a corrupt lands whatever the round).  The predicate must hold
  // for the full plan before shrinking is meaningful.
  FaultPlan seed_plan = live.plan;
  ASSERT_TRUE(reproduces(seed_plan));

  faultlab::ShrinkStats stats;
  const FaultPlan small = faultlab::shrink_plan(seed_plan, reproduces, &stats);
  EXPECT_LE(small.size(), 10u);
  EXPECT_GT(small.size(), 0u);
  EXPECT_TRUE(reproduces(small));
  EXPECT_LT(stats.final_events, stats.initial_events);
}

// ---------------------------------------------------------------------------
// Truthful injection on the static entry points
// ---------------------------------------------------------------------------

TEST(EntryPointFaults, EdgeColoringCountsChannelAndAdversaryEvents) {
  const auto g = graph::random_regular(60, 4, 17);
  ChannelFaultConfig ccfg;
  ccfg.seed = 9;
  ccfg.corrupt_per_million = 5'000;
  ChannelAdversary chan(ccfg);
  runtime::PeriodicAdversary adv(5, {.period = 6, .last_round = 18,
                                     .edge_adds = 1, .edge_removes = 1,
                                     .dmax = g.max_degree() + 1});
  edge::EdgeColoringOptions opts;
  opts.adversary = &adv;
  opts.channel = &chan;
  const auto rep = edge::color_edges_distributed(g, opts);
  EXPECT_EQ(rep.fault_events, adv.total_events() + chan.events());
  EXPECT_GT(rep.fault_events, 0u);
}

TEST(EntryPointFaults, ArbAgCountsChannelAndAdversaryEvents) {
  const auto g = graph::random_gnp(80, 0.1, 23);
  ChannelFaultConfig ccfg;
  ccfg.seed = 4;
  ccfg.drop_per_million = 10'000;
  ChannelAdversary chan(ccfg);
  runtime::PeriodicAdversary adv(8, {.period = 2, .last_round = 6, .corrupt = 1});
  runtime::RunOptions opts;
  opts.adversary = &adv;
  opts.channel = &chan;
  const auto rep = arb::arbdefective_color(g, 2, 2 * g.n(), opts);
  EXPECT_EQ(rep.fault_events, adv.total_events() + chan.events());
  EXPECT_GT(rep.fault_events, 0u);
}

TEST(EntryPointFaults, EpsColoringCountsChannelEvents) {
  const auto g = graph::random_gnp(80, 0.1, 29);
  ChannelFaultConfig ccfg;
  ccfg.seed = 2;
  ccfg.duplicate_per_million = 20'000;
  ChannelAdversary chan(ccfg);
  runtime::RunOptions opts;
  opts.channel = &chan;
  const auto rep = arb::eps_delta_coloring(g, 0.5, 0, opts);
  EXPECT_EQ(rep.fault_events, chan.events());
  EXPECT_GT(rep.fault_events, 0u);
}

// ---------------------------------------------------------------------------
// Stabilization harness: recovery time, adjustment radius, watchdog
// ---------------------------------------------------------------------------

faultlab::StabilizationOutcome harness_coloring_run(std::size_t threads) {
  const auto g = graph::random_regular(120, 6, 41);
  SsConfig cfg(g.n(), g.max_degree(), PaletteMode::ODelta);
  auto engine = make_engine(g, g.max_degree());
  if (threads > 1) engine.set_executor(exec::make_executor(threads));
  engine.install(selfstab::ss_coloring_factory(cfg));
  runtime::PeriodicAdversary adv(19, {.period = 3, .last_round = 6,
                                      .corrupt = 4, .clones = 2});
  runtime::RunOptions opts;
  opts.adversary = &adv;
  opts.max_rounds = 5000;
  faultlab::StabilizationSpec spec;
  spec.check = faultlab::coloring_check(cfg);
  spec.outputs = faultlab::coloring_outputs();
  spec.recovery_budget = 2000;
  return faultlab::run_stabilization(engine, opts, spec);
}

TEST(Harness, ColoringRecoveryAndAdjustmentRadiusAreDeterministic) {
  const auto base = harness_coloring_run(1);
  ASSERT_TRUE(base.recovered);
  // Golden values for seed 41 / seed 19 schedule, pinned so ANY change to the
  // trajectory (engine, channel, adversary, harness) is caught, not just
  // thread divergence.
  EXPECT_EQ(base.recovery_rounds, 2u);
  EXPECT_EQ(base.adjusted.size(), 7u);
  EXPECT_EQ(base.last_fault_round, 8u);
  EXPECT_EQ(base.first_legal_round, 10u);
  EXPECT_EQ(base.fault_events, 12u);
  EXPECT_GT(base.fault_events, 0u);
  EXPECT_GT(base.recovery_rounds, 0u);
  EXPECT_FALSE(base.adjusted.empty());
  // Locality: a handful of faulted vertices only drag a bounded neighborhood
  // with them, not the whole graph.
  EXPECT_LT(base.adjusted.size(), 120u / 2);
  for (const std::size_t threads : {2, 8}) {
    const auto rep = harness_coloring_run(threads);
    EXPECT_EQ(rep.recovered, base.recovered) << "threads=" << threads;
    EXPECT_EQ(rep.recovery_rounds, base.recovery_rounds)
        << "threads=" << threads;
    EXPECT_EQ(rep.first_legal_round, base.first_legal_round);
    EXPECT_EQ(rep.last_fault_round, base.last_fault_round);
    EXPECT_EQ(rep.adjusted, base.adjusted) << "threads=" << threads;
    EXPECT_EQ(rep.fault_events, base.fault_events);
  }
}

faultlab::StabilizationOutcome harness_mis_run(std::size_t threads) {
  const auto g = graph::random_gnp(100, 0.06, 43);
  SsConfig cfg(g.n(), g.max_degree(), PaletteMode::ODelta);
  auto engine = make_engine(g, g.max_degree());
  if (threads > 1) engine.set_executor(exec::make_executor(threads));
  engine.install(selfstab::ss_mis_factory(cfg));
  runtime::PeriodicAdversary adv(23, {.period = 4, .last_round = 8,
                                      .corrupt = 3, .clones = 1});
  runtime::RunOptions opts;
  opts.adversary = &adv;
  opts.max_rounds = 6000;
  faultlab::StabilizationSpec spec;
  spec.check = [&cfg](runtime::Engine& engine) -> faultlab::Violation {
    const auto& gg = engine.graph();
    const auto color_v = faultlab::coloring_check(cfg)(engine);
    if (color_v) return color_v;
    for (graph::Vertex v = 0; v < gg.n(); ++v) {
      const auto status =
          selfstab::packed_status(engine.ram(v)[1] & 3);
      bool mis_nbr = false;
      for (const graph::Vertex w : gg.neighbors(v)) {
        if (selfstab::packed_status(engine.ram(w)[1] & 3) == selfstab::kMis) {
          mis_nbr = true;
          break;
        }
      }
      const bool ok = (status == selfstab::kMis && !mis_nbr) ||
                      (status == selfstab::kNotMis && mis_nbr);
      if (!ok) {
        return {faultlab::ViolationKind::InvalidState, engine.rounds(), v, v,
                static_cast<std::uint64_t>(status)};
      }
    }
    return {};
  };
  spec.outputs = [](runtime::Engine& engine) {
    std::vector<std::uint64_t> out(engine.graph().n(), 0);
    for (graph::Vertex v = 0; v < engine.graph().n(); ++v) {
      const auto ram = engine.ram(v);
      out[v] = selfstab::pack_cs(ram[0], ram[1]);
    }
    return out;
  };
  spec.recovery_budget = 3000;
  return faultlab::run_stabilization(engine, opts, spec);
}

TEST(Harness, MisRecoveryIsDeterministicAcrossThreads) {
  const auto base = harness_mis_run(1);
  ASSERT_TRUE(base.recovered);
  EXPECT_EQ(base.recovery_rounds, 2u);   // golden, seeds 43/23
  EXPECT_EQ(base.adjusted.size(), 4u);
  EXPECT_EQ(base.fault_events, 8u);
  EXPECT_GT(base.recovery_rounds, 0u);
  for (const std::size_t threads : {2, 8}) {
    const auto rep = harness_mis_run(threads);
    EXPECT_EQ(rep.recovery_rounds, base.recovery_rounds)
        << "threads=" << threads;
    EXPECT_EQ(rep.adjusted, base.adjusted) << "threads=" << threads;
  }
}

faultlab::StabilizationOutcome harness_line_run(std::size_t threads) {
  const auto g = graph::random_regular(60, 4, 47);
  selfstab::SsLineConfig cfg(g.n(), g.max_degree(), selfstab::LineTask::EdgeColoring);
  runtime::EngineOptions eo;
  eo.delta_bound = g.max_degree();
  runtime::Engine engine(g, runtime::Transport(runtime::Model::LOCAL), eo);
  if (threads > 1) engine.set_executor(exec::make_executor(threads));
  engine.install(selfstab::ss_line_factory(cfg));
  runtime::PeriodicAdversary adv(29, {.period = 5, .last_round = 10, .corrupt = 3});
  runtime::RunOptions opts;
  opts.adversary = &adv;
  opts.max_rounds = 8000;
  faultlab::StabilizationSpec spec;
  spec.check = [&cfg, &g](runtime::Engine& engine) -> faultlab::Violation {
    const auto colors = selfstab::current_edge_colors(engine);
    for (std::size_t i = 0; i < colors.size(); ++i) {
      if (!cfg.coloring().is_final(colors[i])) {
        return {faultlab::ViolationKind::OutOfPalette, engine.rounds(),
                0, 0, colors[i]};
      }
    }
    if (!graph::is_proper_edge_coloring(g, colors)) {
      return {faultlab::ViolationKind::MonochromaticEdge, engine.rounds(),
              0, 0, 0};
    }
    return {};
  };
  spec.outputs = [](runtime::Engine& engine) {
    std::vector<std::uint64_t> out(engine.graph().n(), 0);
    for (graph::Vertex v = 0; v < engine.graph().n(); ++v) {
      std::uint64_t h = 0;
      for (const std::uint64_t w : engine.ram(v)) h = h * 1099511628211ULL + w;
      out[v] = h;
    }
    return out;
  };
  spec.recovery_budget = 4000;
  return faultlab::run_stabilization(engine, opts, spec);
}

TEST(Harness, LineEdgeColoringRecoveryIsDeterministicAcrossThreads) {
  const auto base = harness_line_run(1);
  ASSERT_TRUE(base.recovered);
  EXPECT_EQ(base.recovery_rounds, 6u);   // golden, seeds 47/29 (engine rounds)
  EXPECT_EQ(base.adjusted.size(), 2u);
  EXPECT_EQ(base.fault_events, 6u);
  for (const std::size_t threads : {2, 8}) {
    const auto rep = harness_line_run(threads);
    EXPECT_EQ(rep.recovery_rounds, base.recovery_rounds)
        << "threads=" << threads;
    EXPECT_EQ(rep.adjusted, base.adjusted) << "threads=" << threads;
  }
}

TEST(Harness, WatchdogReportsTheFirstInvariantViolation) {
  const auto g = graph::random_regular(80, 4, 53);
  SsConfig cfg(g.n(), g.max_degree(), PaletteMode::ODelta);
  auto engine = make_engine(g, g.max_degree());
  engine.install(selfstab::ss_coloring_factory(cfg));
  runtime::PeriodicAdversary adv(31, {.period = 2, .last_round = 2,
                                      .corrupt = 20, .clones = 10});
  runtime::RunOptions opts;
  opts.adversary = &adv;
  opts.max_rounds = 5000;
  faultlab::StabilizationSpec spec;
  spec.check = faultlab::coloring_check(cfg);
  spec.outputs = faultlab::coloring_outputs();
  spec.recovery_budget = 1;  // recovery takes longer than one round
  spec.settle_budget = 2000;  // ...but phase 0 still gets a real budget
  const auto out = faultlab::run_stabilization(engine, opts, spec);
  EXPECT_FALSE(out.recovered);
  ASSERT_TRUE(out.violation);
  EXPECT_TRUE(out.violation.kind == faultlab::ViolationKind::MonochromaticEdge ||
              out.violation.kind == faultlab::ViolationKind::OutOfPalette);
  EXPECT_GT(out.violation.round, 0u);
  EXPECT_LT(out.violation.v, g.n());
}

TEST(Harness, CleanScheduleRecoversInZeroRoundsWithEmptyAdjustment) {
  const auto g = graph::random_regular(60, 4, 59);
  SsConfig cfg(g.n(), g.max_degree(), PaletteMode::ODelta);
  auto engine = make_engine(g, g.max_degree());
  engine.install(selfstab::ss_coloring_factory(cfg));
  runtime::RunOptions opts;
  opts.max_rounds = 4000;
  faultlab::StabilizationSpec spec;
  spec.check = faultlab::coloring_check(cfg);
  spec.outputs = faultlab::coloring_outputs();
  const auto out = faultlab::run_stabilization(engine, opts, spec);
  ASSERT_TRUE(out.recovered);
  EXPECT_EQ(out.recovery_rounds, 0u);
  EXPECT_EQ(out.fault_events, 0u);
  EXPECT_TRUE(out.adjusted.empty());
}

}  // namespace
