// The full cross-product: every end-to-end pipeline against every graph
// family, validating convergence, properness, palette bound, and (for the
// locally-iterative ones) the per-round invariant.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "agc/arb/eps_coloring.hpp"
#include "agc/coloring/pipeline.hpp"
#include "agc/coloring/symmetry.hpp"
#include "agc/edge/edge_coloring.hpp"
#include "agc/graph/generators.hpp"

namespace {

using namespace agc;

struct Family {
  std::string name;
  std::function<graph::Graph()> make;
};

const Family kFamilies[] = {
    {"path", [] { return graph::path(40); }},
    {"odd_cycle", [] { return graph::cycle(25); }},
    {"complete", [] { return graph::complete(14); }},
    {"hypercube", [] { return graph::hypercube(5); }},
    {"multipartite", [] { return graph::complete_multipartite(3, 6); }},
    {"caterpillar", [] { return graph::caterpillar(12, 3); }},
    {"blowup", [] { return graph::cycle_blowup(5, 4); }},
    {"gnp", [] { return graph::random_gnp(140, 0.07, 11); }},
    {"regular", [] { return graph::random_regular(140, 9, 13); }},
    {"geometric", [] { return graph::random_geometric(110, 0.14, 17); }},
};

class Matrix : public ::testing::TestWithParam<Family> {};

TEST_P(Matrix, AgPipeline) {
  const auto g = GetParam().make();
  const auto rep = coloring::color_delta_plus_one(g);
  EXPECT_TRUE(rep.converged && rep.proper && rep.proper_each_round);
  EXPECT_LE(graph::max_color(rep.colors), std::max<std::size_t>(g.max_degree(), 1));
}

TEST_P(Matrix, ExactPipeline) {
  const auto g = GetParam().make();
  const auto rep = coloring::color_delta_plus_one_exact(g);
  EXPECT_TRUE(rep.converged && rep.proper && rep.proper_each_round);
  EXPECT_LE(graph::max_color(rep.colors), std::max<std::size_t>(g.max_degree(), 1));
}

TEST_P(Matrix, KwBaseline) {
  const auto g = GetParam().make();
  const auto rep = coloring::color_kuhn_wattenhofer(g);
  EXPECT_TRUE(rep.converged && rep.proper && rep.proper_each_round);
  EXPECT_LE(graph::max_color(rep.colors), std::max<std::size_t>(g.max_degree(), 1));
}

TEST_P(Matrix, EpsColoring) {
  const auto g = GetParam().make();
  const auto rep = arb::eps_delta_coloring(g, 0.5);
  EXPECT_TRUE(rep.converged && rep.proper);
}

TEST_P(Matrix, EdgeColoringCongest) {
  const auto g = GetParam().make();
  const auto res = edge::color_edges_distributed(g);
  EXPECT_TRUE(res.converged && res.proper);
  const std::size_t delta = std::max<std::size_t>(g.max_degree(), 1);
  EXPECT_LE(graph::max_color(res.colors),
            std::max<std::uint64_t>(2 * delta - 1, 1) - 1);
}

TEST_P(Matrix, MisAndMatching) {
  const auto g = GetParam().make();
  EXPECT_TRUE(coloring::maximal_independent_set(g).valid);
  EXPECT_TRUE(coloring::maximal_matching(g).valid);
}

INSTANTIATE_TEST_SUITE_P(Families, Matrix, ::testing::ValuesIn(kFamilies),
                         [](const auto& info) { return info.param.name; });

}  // namespace
